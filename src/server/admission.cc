#include "server/admission.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>

namespace adaptidx {
namespace server {

const char* ToString(OverloadState state) {
  switch (state) {
    case OverloadState::kNormal:
      return "normal";
    case OverloadState::kElevated:
      return "elevated";
    case OverloadState::kCritical:
      return "critical";
  }
  return "?";
}

AdmissionController::AdmissionController(AdmissionOptions opts)
    : opts_(opts) {
  opts_.global_inflight = std::max<size_t>(1, opts_.global_inflight);
  opts_.per_connection_inflight =
      std::max<size_t>(1, opts_.per_connection_inflight);
  opts_.rss_sample_period = std::max<size_t>(1, opts_.rss_sample_period);
  // Eager first sample: the STATS gauge reads sensibly before the first
  // re-sample window elapses.
  rss_bytes_.store(ReadRssBytes(), std::memory_order_relaxed);
}

size_t AdmissionController::ReadRssBytes() {
  // /proc/self/statm: size resident shared text lib data dt (pages).
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size_pages = 0;
  unsigned long long resident_pages = 0;
  const int got = std::fscanf(f, "%llu %llu", &size_pages, &resident_pages);
  std::fclose(f);
  if (got != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return static_cast<size_t>(resident_pages) *
         static_cast<size_t>(page > 0 ? page : 4096);
}

void AdmissionController::UpdateGaugeLocked() {
  const size_t cap = opts_.global_inflight;
  const size_t rss = rss_bytes_.load(std::memory_order_relaxed);
  OverloadState s = OverloadState::kNormal;
  if (global_ >= cap ||
      (opts_.max_rss_bytes != 0 && rss >= opts_.max_rss_bytes)) {
    s = OverloadState::kCritical;
  } else if (static_cast<double>(global_) >=
             opts_.elevated_fraction * static_cast<double>(cap)) {
    s = OverloadState::kElevated;
  }
  state_.store(static_cast<uint8_t>(s), std::memory_order_relaxed);
}

bool AdmissionController::TryAdmit(uint64_t conn_id, size_t n) {
  if (n == 0) return true;
  std::lock_guard<std::mutex> lk(mu_);
  // Resource monitor: re-sample RSS every few decisions, not per request.
  if (opts_.max_rss_bytes != 0 &&
      ++admits_since_rss_sample_ >= opts_.rss_sample_period) {
    admits_since_rss_sample_ = 0;
    rss_bytes_.store(ReadRssBytes(), std::memory_order_relaxed);
  }
  const size_t rss = rss_bytes_.load(std::memory_order_relaxed);
  const bool rss_critical =
      opts_.max_rss_bytes != 0 && rss >= opts_.max_rss_bytes;
  size_t& mine = per_conn_[conn_id];
  const bool fits = !rss_critical &&
                    global_ + n <= opts_.global_inflight &&
                    mine + n <= opts_.per_connection_inflight;
  if (!fits) {
    if (mine == 0) per_conn_.erase(conn_id);
    shed_total_.fetch_add(n, std::memory_order_relaxed);
    UpdateGaugeLocked();
    return false;
  }
  mine += n;
  global_ += n;
  admitted_total_.fetch_add(n, std::memory_order_relaxed);
  UpdateGaugeLocked();
  return true;
}

void AdmissionController::Release(uint64_t conn_id, size_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  global_ -= std::min(global_, n);
  auto it = per_conn_.find(conn_id);
  if (it != per_conn_.end()) {
    it->second -= std::min(it->second, n);
    if (it->second == 0) per_conn_.erase(it);
  }
  UpdateGaugeLocked();
}

size_t AdmissionController::global_in_flight() const {
  std::lock_guard<std::mutex> lk(mu_);
  return global_;
}

size_t AdmissionController::connection_in_flight(uint64_t conn_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = per_conn_.find(conn_id);
  return it != per_conn_.end() ? it->second : 0;
}

}  // namespace server
}  // namespace adaptidx
