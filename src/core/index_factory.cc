#include "core/index_factory.h"

#include <cstdint>
#include <thread>

#include "core/partitioned_index.h"
#include "core/scan_index.h"
#include "core/sort_index.h"

namespace adaptidx {

std::string ToString(IndexMethod method) {
  switch (method) {
    case IndexMethod::kScan:
      return "scan";
    case IndexMethod::kSort:
      return "sort";
    case IndexMethod::kCrack:
      return "crack";
    case IndexMethod::kAdaptiveMerge:
      return "merge";
    case IndexMethod::kHybrid:
      return "hybrid";
    case IndexMethod::kBTreeMerge:
      return "btree-merge";
  }
  return "unknown";
}

std::string IndexConfigKey(const IndexConfig& config) {
  std::string key = ToString(config.method);
  // Partitioning changes the physical structure (P independent shards vs.
  // one monolithic index), so a partitioned and an unpartitioned config on
  // the same column must denote distinct catalog entries. The pool pointer
  // stays out: it is an execution resource, not index identity.
  if (config.partitions > 1) {
    key += "@P" + std::to_string(config.partitions);
    // The shard and hardware floors decide whether @P actually materializes
    // for a given column on a given machine, so they are part of the
    // physical identity too.
    key += "m" + std::to_string(config.min_rows_per_shard);
    key += "h" + std::to_string(config.partition_needs_cores);
  }
  // The maintained version chain of the differential layer is physical
  // state: a snapshot-enabled and a plain updatable wrapper over the same
  // method must denote distinct entries.
  if (config.snapshot_reads) {
    key += "+snap";
    // Publication mode (and, for delta chains, the consolidation bounds)
    // shape what physical version state the writer maintains.
    if (config.snapshot_publication == SnapshotPublication::kCopyChain) {
      key += ":copy";
    } else {
      key += ":delta(" + std::to_string(config.snapshot_consolidate_min) +
             "," + std::to_string(config.snapshot_consolidate_max) + ")";
    }
  }
  // Only the option block the method consults participates — two configs
  // that differ in an unconsulted block denote the same physical index.
  switch (config.method) {
    case IndexMethod::kScan:
    case IndexMethod::kSort:
      break;
    case IndexMethod::kCrack: {
      const CrackingOptions& c = config.cracking;
      key += ":mode=" + std::to_string(static_cast<int>(c.mode));
      key += ",sched=" + std::to_string(static_cast<int>(c.scheduling));
      key += ",layout=" + std::to_string(static_cast<int>(c.layout));
      key += ",tier=" + std::to_string(static_cast<int>(c.kernel_tier));
      key += ",c3=" + std::to_string(c.use_crack_in_three);
      key += ",swap=" + std::to_string(c.swap_bound_on_conflict);
      key += ",gc=" + std::to_string(c.group_crack) + "/" +
             std::to_string(c.group_crack_max);
      key += ",strat=" + std::to_string(static_cast<int>(c.strategy));
      key += ",sortthr=" + std::to_string(c.sort_piece_threshold);
      key += ",floor=" + std::to_string(c.min_piece_size);
      // The crack pool pointer stays out (execution resource), but the
      // parallel-crack thresholds shape crack granularity and the resulting
      // intra-piece physical order, so they participate.
      key += ",pcrack=" + std::to_string(c.parallel_crack_min_piece) + "/" +
             std::to_string(c.parallel_crack_chunks);
      // The crack policy decides which pivots physically reorganize the
      // array, so it (and its recursion floor) is index identity. The seed
      // participates only for the randomized policies that consult it —
      // kExact/kDDC configs differing only in an unused seed stay one
      // physical index.
      if (c.crack_policy != CrackPolicy::kExact) {
        key += ",policy=" + ToString(c.crack_policy) + "/" +
               std::to_string(c.policy_min_piece);
        if (c.crack_policy == CrackPolicy::kDDR ||
            c.crack_policy == CrackPolicy::kMDD1R) {
          key += "/s" + std::to_string(c.policy_seed);
        }
      }
      if (c.mode == ConcurrencyMode::kOptimistic ||
          c.mode == ConcurrencyMode::kAdaptive) {
        // The optimistic policy block shapes runtime behavior (retry budget,
        // demotion thresholds) but is only consulted under the optimistic
        // modes; keep it out of the key otherwise so latched configs that
        // differ only in unused knobs stay one physical index.
        const OptimisticReadPolicy& o = c.optimistic;
        key += ",opt=" + std::to_string(o.max_retries) + "/" +
               std::to_string(o.demote_threshold) + "/" +
               std::to_string(o.fallback_penalty) + "/" +
               std::to_string(o.contention_cap) + "/" +
               std::to_string(o.probe_period);
      }
      if (c.lock_manager != nullptr) {
        // Identity of the manager matters, not just the resource name: the
        // same resource string under two managers is two distinct conflict
        // domains.
        key += ",lock=" +
               std::to_string(reinterpret_cast<uintptr_t>(c.lock_manager)) +
               "@" + c.lock_resource;
      }
      break;
    }
    case IndexMethod::kAdaptiveMerge: {
      const MergeOptions& m = config.merge;
      key += ":run=" + std::to_string(m.run_size);
      key += ",et=" + std::to_string(m.early_termination);
      key += ",cc=" + std::to_string(m.concurrency_control);
      key += ",mvcc=" + std::to_string(m.mvcc_commit);
      break;
    }
    case IndexMethod::kHybrid: {
      const HybridOptions& h = config.hybrid;
      key += ":part=" + std::to_string(h.partition_size);
      key += ",cc=" + std::to_string(h.concurrency_control);
      break;
    }
    case IndexMethod::kBTreeMerge: {
      const BTreeMergeOptions& b = config.btree;
      key += ":run=" + std::to_string(b.run_size);
      key += ",node=" + std::to_string(b.node_capacity);
      key += ",et=" + std::to_string(b.early_termination);
      key += ",cc=" + std::to_string(b.concurrency_control);
      break;
    }
  }
  return key;
}

std::unique_ptr<AdaptiveIndex> MakeIndex(const Column* column,
                                         const IndexConfig& config) {
  // Honor the fan-out only when every shard would clear the row floor and
  // the machine can actually run shards in parallel; a column too small to
  // amortize scatter/route/merge overhead — or a single-core host where the
  // fan-out can never win — gets the method directly (the config key keeps
  // the @P notation so the catalog still distinguishes what was requested).
  if (config.partitions > 1 &&
      (!config.partition_needs_cores ||
       std::thread::hardware_concurrency() > 1) &&
      (config.min_rows_per_shard == 0 ||
       column->size() >= config.partitions * config.min_rows_per_shard)) {
    return std::make_unique<PartitionedIndex>(column, config);
  }
  switch (config.method) {
    case IndexMethod::kScan:
      return std::make_unique<ScanIndex>(column);
    case IndexMethod::kSort:
      return std::make_unique<SortIndex>(column);
    case IndexMethod::kCrack:
      return std::make_unique<CrackingIndex>(column, config.cracking);
    case IndexMethod::kAdaptiveMerge:
      return std::make_unique<AdaptiveMergeIndex>(column, config.merge);
    case IndexMethod::kHybrid:
      return std::make_unique<HybridCrackSortIndex>(column, config.hybrid);
    case IndexMethod::kBTreeMerge:
      return std::make_unique<BTreeMergeIndex>(column, config.btree);
  }
  return nullptr;
}

}  // namespace adaptidx
