#ifndef ADAPTIDX_ENGINE_QUERY_H_
#define ADAPTIDX_ENGINE_QUERY_H_

// Forwarding header only. The whole unified query vocabulary — `Query`,
// `QueryKind`, `QueryResult` (mergeable partials), `MinMaxAccumulator`,
// and the workload bridge `ToQueries` — lives in `core/query.h` since the
// Execute(Query) API redesign made it the currency of the access-method
// interface itself (`AdaptiveIndex::Execute`), below the engine layer.
// Include "core/query.h" directly in new code; this header remains solely
// so pre-redesign engine-level includes keep compiling.
#include "core/query.h"

#endif  // ADAPTIDX_ENGINE_QUERY_H_
