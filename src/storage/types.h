#ifndef ADAPTIDX_STORAGE_TYPES_H_
#define ADAPTIDX_STORAGE_TYPES_H_

#include <cstdint>

namespace adaptidx {

/// \brief Key/attribute value type. The paper's experiments use unique
/// randomly distributed integers; 64-bit signed integers cover that and any
/// dictionary-encoded attribute.
using Value = int64_t;

/// \brief Row identifier (MonetDB-style oid). 32 bits bound the addressable
/// table size at ~4.29 billion rows, which matches the paper's in-memory
/// column-store setting and halves cracker-array footprint versus 64-bit
/// ids.
using RowId = uint32_t;

/// \brief Position inside a column or cracker array.
using Position = uint64_t;

/// \brief Inclusive/exclusive bound handling for crack pivots.
///
/// Every crack in this library is normalized to the semantics "the crack at
/// value v sits at the first position whose value is >= v". Query predicates
/// of the paper's form `v1 < A < v2` are translated by the operator layer to
/// the half-open integer range [v1+1, v2).
struct ValueRange {
  Value lo;  ///< inclusive lower bound
  Value hi;  ///< exclusive upper bound

  bool Contains(Value v) const { return v >= lo && v < hi; }
  bool Empty() const { return lo >= hi; }
};

}  // namespace adaptidx

#endif  // ADAPTIDX_STORAGE_TYPES_H_
