#ifndef ADAPTIDX_BENCH_BENCH_COMMON_H_
#define ADAPTIDX_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/index_factory.h"
#include "engine/driver.h"
#include "storage/column.h"
#include "workload/workload.h"

namespace adaptidx {
namespace bench {

/// \brief Reads a size_t from the environment, falling back to `def`.
/// Benchmarks default to laptop scale; export AI_BENCH_ROWS / AI_BENCH_QUERIES
/// / AI_BENCH_MAX_CLIENTS to run the paper's full scale (100M rows).
inline size_t EnvSize(const char* name, size_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return def;
  return static_cast<size_t>(parsed);
}

/// \brief The paper's data set: a column of unique randomly distributed
/// integers (Section 6, "100 million tuples populated with unique randomly
/// distributed integers").
inline Column MakeUniqueRandomColumn(size_t rows, uint64_t seed = 2012) {
  return Column::UniqueRandom("A", rows, seed);
}

/// \brief Runs `queries` against a fresh index of `config` with
/// `num_clients` concurrent clients. `batch_size` 0 keeps the driver's
/// batch-admission default; figure benches that reproduce the paper's
/// per-query synchronous clients pass 1. AI_BENCH_BATCH overrides either.
inline RunResult RunWorkload(const Column& column, const IndexConfig& config,
                             const std::vector<RangeQuery>& queries,
                             size_t num_clients,
                             bool record_per_query = false,
                             size_t batch_size = 0) {
  auto index = MakeIndex(&column, config);
  DriverOptions dopts;
  dopts.num_clients = num_clients;
  dopts.record_per_query = record_per_query;
  if (batch_size != 0) dopts.batch_size = batch_size;
  dopts.batch_size = EnvSize("AI_BENCH_BATCH", dopts.batch_size);
  return Driver::Run(index.get(), queries, dopts);
}

inline void PrintHeader(const std::string& title, const std::string& setup) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", setup.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace adaptidx

#endif  // ADAPTIDX_BENCH_BENCH_COMMON_H_
