#ifndef ADAPTIDX_CRACKING_KERNEL_TIERS_H_
#define ADAPTIDX_CRACKING_KERNEL_TIERS_H_

/// Single definition of "this build can carry x86 SIMD tiers": GCC/Clang on
/// x86-64 (per-function `target` attributes + `__builtin_cpu_supports`).
/// Ports (MSVC, aarch64) extend this one condition.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ADAPTIDX_X86_SIMD 1
#endif

namespace adaptidx {

/// \brief Implementation tier for the crack/scan hot-path kernels.
///
/// Every tier implements the same normalized crack semantics (see
/// crack_kernels.h); tiers differ only in how the work is executed:
///
///  - kReference: the original branchy accessor-templated kernels, pinned to
///    scalar codegen (see reference_kernels.cc). Ground truth for the
///    differential tests and the baseline for the micro-benchmarks.
///  - kBranchless: predicated (cmov-style) cracks and unrolled,
///    unsigned-range-trick scans. Compiles everywhere; immune to branch
///    misprediction on random pivots.
///  - kAvx2: AVX2 scan kernels (compare + mask accumulate). Cracks fall back
///    to the predicated kernels — AVX2 lacks the compress instructions that
///    make vectorized in-place partitioning profitable.
///  - kAvx512: AVX-512 vpcompress-based in-place crack-in-two plus the AVX2
///    scan kernels.
enum class KernelTier {
  kReference,
  kBranchless,
  kAvx2,
  kAvx512,
  /// Resolve to the best tier the running CPU supports (BestKernelTier()).
  kAuto,
};

/// \brief Best tier the running CPU supports; never returns kAuto. The
/// result is computed once (cpuid) and cached.
KernelTier BestKernelTier();

/// \brief True when `tier` can execute on the running CPU. kAuto and the
/// portable tiers are always supported.
bool KernelTierSupported(KernelTier tier);

/// \brief Resolves kAuto to BestKernelTier(); clamps unsupported SIMD tiers
/// down to the best supported one.
KernelTier ResolveKernelTier(KernelTier tier);

/// \brief Display name ("reference", "branchless", "avx2", "avx512").
const char* KernelTierName(KernelTier tier);

}  // namespace adaptidx

#endif  // ADAPTIDX_CRACKING_KERNEL_TIERS_H_
