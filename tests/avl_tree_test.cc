#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "cracking/avl_tree.h"
#include "util/rng.h"

namespace adaptidx {
namespace {

TEST(AvlTreeTest, EmptyTree) {
  AvlTree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.Height(), 0);
  Position pos;
  EXPECT_FALSE(t.Find(5, &pos));
  AvlTree::Entry e;
  EXPECT_FALSE(t.Floor(5, &e));
  EXPECT_FALSE(t.Ceiling(5, &e));
  EXPECT_TRUE(t.Validate());
}

TEST(AvlTreeTest, SingleInsertAndFind) {
  AvlTree t;
  EXPECT_TRUE(t.Insert(10, 3));
  EXPECT_EQ(t.size(), 1u);
  Position pos;
  ASSERT_TRUE(t.Find(10, &pos));
  EXPECT_EQ(pos, 3u);
  EXPECT_FALSE(t.Find(11, &pos));
}

TEST(AvlTreeTest, DuplicateInsertIgnored) {
  AvlTree t;
  EXPECT_TRUE(t.Insert(10, 3));
  EXPECT_FALSE(t.Insert(10, 99));  // crack positions are immutable
  Position pos;
  ASSERT_TRUE(t.Find(10, &pos));
  EXPECT_EQ(pos, 3u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(AvlTreeTest, FloorSemantics) {
  AvlTree t;
  t.Insert(10, 1);
  t.Insert(20, 2);
  t.Insert(30, 3);
  AvlTree::Entry e;
  EXPECT_FALSE(t.Floor(9, &e));
  ASSERT_TRUE(t.Floor(10, &e));
  EXPECT_EQ(e.value, 10);
  ASSERT_TRUE(t.Floor(25, &e));
  EXPECT_EQ(e.value, 20);
  ASSERT_TRUE(t.Floor(1000, &e));
  EXPECT_EQ(e.value, 30);
}

TEST(AvlTreeTest, CeilingIsStrictlyGreater) {
  AvlTree t;
  t.Insert(10, 1);
  t.Insert(20, 2);
  AvlTree::Entry e;
  ASSERT_TRUE(t.Ceiling(5, &e));
  EXPECT_EQ(e.value, 10);
  ASSERT_TRUE(t.Ceiling(10, &e));
  EXPECT_EQ(e.value, 20);  // strictly greater than 10
  EXPECT_FALSE(t.Ceiling(20, &e));
}

TEST(AvlTreeTest, NextByPosition) {
  AvlTree t;
  t.Insert(10, 100);
  t.Insert(20, 200);
  t.Insert(30, 300);
  AvlTree::Entry e;
  ASSERT_TRUE(t.NextByPosition(0, &e));
  EXPECT_EQ(e.pos, 100u);
  ASSERT_TRUE(t.NextByPosition(100, &e));
  EXPECT_EQ(e.pos, 200u);
  ASSERT_TRUE(t.NextByPosition(250, &e));
  EXPECT_EQ(e.pos, 300u);
  EXPECT_FALSE(t.NextByPosition(300, &e));
}

TEST(AvlTreeTest, InOrderIsSortedByValue) {
  AvlTree t;
  for (Value v : {50, 20, 80, 10, 30, 70, 90}) {
    t.Insert(v, static_cast<Position>(v));
  }
  std::vector<AvlTree::Entry> entries;
  t.InOrder(&entries);
  ASSERT_EQ(entries.size(), 7u);
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].value, entries[i].value);
  }
}

TEST(AvlTreeTest, AscendingInsertStaysBalanced) {
  AvlTree t;
  for (Value v = 0; v < 1024; ++v) t.Insert(v, static_cast<Position>(v));
  EXPECT_TRUE(t.Validate());
  // AVL height bound: 1.44 * log2(n + 2).
  EXPECT_LE(t.Height(), 15);
}

TEST(AvlTreeTest, DescendingInsertStaysBalanced) {
  AvlTree t;
  for (Value v = 1023; v >= 0; --v) t.Insert(v, static_cast<Position>(v));
  EXPECT_TRUE(t.Validate());
  EXPECT_LE(t.Height(), 15);
}

TEST(AvlTreeTest, ClearEmptiesTree) {
  AvlTree t;
  t.Insert(1, 1);
  t.Insert(2, 2);
  t.Clear();
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.Validate());
  EXPECT_TRUE(t.Insert(1, 5));
}

TEST(AvlTreeTest, RandomizedAgainstStdMap) {
  Rng rng(77);
  AvlTree t;
  std::map<Value, Position> oracle;
  for (int i = 0; i < 3000; ++i) {
    const Value v = rng.UniformRange(0, 1000);
    const Position pos = static_cast<Position>(v) * 7;
    const bool inserted = t.Insert(v, pos);
    const bool oracle_inserted = oracle.emplace(v, pos).second;
    ASSERT_EQ(inserted, oracle_inserted);
  }
  ASSERT_EQ(t.size(), oracle.size());
  ASSERT_TRUE(t.Validate());
  // Spot-check lookups across the domain.
  for (Value v = -5; v < 1005; ++v) {
    Position pos;
    const bool found = t.Find(v, &pos);
    auto it = oracle.find(v);
    ASSERT_EQ(found, it != oracle.end());
    if (found) {
      ASSERT_EQ(pos, it->second);
    }

    AvlTree::Entry e;
    const bool has_floor = t.Floor(v, &e);
    auto up = oracle.upper_bound(v);
    if (up == oracle.begin()) {
      ASSERT_FALSE(has_floor);
    } else {
      ASSERT_TRUE(has_floor);
      ASSERT_EQ(e.value, std::prev(up)->first);
    }

    const bool has_ceil = t.Ceiling(v, &e);
    if (up == oracle.end()) {
      ASSERT_FALSE(has_ceil);
    } else {
      ASSERT_TRUE(has_ceil);
      ASSERT_EQ(e.value, up->first);
    }
  }
}

class AvlHeightTest : public ::testing::TestWithParam<size_t> {};

TEST_P(AvlHeightTest, HeightWithinAvlBound) {
  const size_t n = GetParam();
  AvlTree t;
  Rng rng(n);
  size_t inserted = 0;
  while (inserted < n) {
    // Positions proportional to values, as real cracks over a uniform
    // permutation would be (Validate checks that monotonicity).
    const Value v = rng.UniformRange(0, static_cast<Value>(n) * 4);
    if (t.Insert(v, static_cast<Position>(v))) ++inserted;
  }
  EXPECT_TRUE(t.Validate());
  const double bound = 1.4405 * std::log2(static_cast<double>(n) + 2) + 1;
  EXPECT_LE(t.Height(), static_cast<int>(bound));
}

INSTANTIATE_TEST_SUITE_P(Sizes, AvlHeightTest,
                         ::testing::Values(1, 2, 3, 10, 100, 1000, 10000),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace adaptidx
