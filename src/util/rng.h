#ifndef ADAPTIDX_UTIL_RNG_H_
#define ADAPTIDX_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace adaptidx {

/// \brief Deterministic, fast 64-bit PRNG (xoshiro256** seeded by
/// SplitMix64). Used everywhere randomness is needed so that experiments are
/// reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// \brief Re-seeds the generator deterministically.
  void Seed(uint64_t seed) {
    // SplitMix64 to fill the state; avoids the all-zero state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// \brief Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// \brief Uniform value in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// \brief Uniform value in [lo, hi). Requires lo < hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo)));
  }

  /// \brief Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// \brief Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = Uniform(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// \brief Zipf-like skewed sample in [0, n): repeatedly halves the domain
  /// with probability `skew`, concentrating mass near 0. `skew` in [0, 1);
  /// 0 yields uniform.
  uint64_t Skewed(uint64_t n, double skew) {
    uint64_t lo = 0;
    uint64_t hi = n;
    while (hi - lo > 1 && NextDouble() < skew) {
      hi = lo + (hi - lo) / 2;
    }
    if (hi <= lo) return lo;
    return lo + Uniform(hi - lo);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace adaptidx

#endif  // ADAPTIDX_UTIL_RNG_H_
