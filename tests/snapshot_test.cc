#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "core/updatable_index.h"
#include "engine/session.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace adaptidx {
namespace {

IndexConfig SnapConfig(IndexMethod method = IndexMethod::kCrack) {
  IndexConfig config;
  config.method = method;
  config.snapshot_reads = true;
  return config;
}

/// A multiset-backed oracle mirroring the logical content of an
/// UpdatableIndex, with O(log n) range count/sum.
struct LogicalOracle {
  std::multiset<Value> values;

  uint64_t Count(Value lo, Value hi) const {
    return static_cast<uint64_t>(
        std::distance(values.lower_bound(lo), values.lower_bound(hi)));
  }
  int64_t Sum(Value lo, Value hi) const {
    int64_t s = 0;
    for (auto it = values.lower_bound(lo);
         it != values.end() && *it < hi; ++it) {
      s += *it;
    }
    return s;
  }
};

// ---------------------------------------------------------------- basics

TEST(SnapshotTest, CaptureReflectsCurrentState) {
  Column col = Column::UniqueRandom("A", 2000, 1);
  RangeOracle oracle(col);
  UpdatableIndex index(col, SnapConfig());
  Snapshot snap = index.CaptureSnapshot();
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(snap.epoch(), 0u);
  EXPECT_EQ(snap.base_generation(), 0u);

  QueryContext ctx;
  QueryResult result;
  ASSERT_TRUE(
      index.ExecuteSnapshot(Query::Count("", "", 100, 900), snap, &ctx,
                            &result)
          .ok());
  EXPECT_EQ(result.count, oracle.Count(100, 900));
  ASSERT_TRUE(
      index.ExecuteSnapshot(Query::Sum("", "", 100, 900), snap, &ctx, &result)
          .ok());
  EXPECT_EQ(result.sum, oracle.Sum(100, 900));
}

TEST(SnapshotTest, InvalidSnapshotIsRejected) {
  Column col = Column::UniqueRandom("A", 100, 2);
  UpdatableIndex index(col, SnapConfig());
  Snapshot empty;  // never captured
  QueryContext ctx;
  QueryResult result;
  EXPECT_TRUE(index
                  .ExecuteSnapshot(Query::Count("", "", 0, 10), empty, &ctx,
                                   &result)
                  .IsInvalidArgument());

  // A snapshot of another index is rejected, not silently mis-answered.
  UpdatableIndex other(Column::UniqueRandom("A", 100, 3), SnapConfig());
  Snapshot foreign = other.CaptureSnapshot();
  EXPECT_TRUE(index
                  .ExecuteSnapshot(Query::Count("", "", 0, 10), foreign, &ctx,
                                   &result)
                  .IsInvalidArgument());
}

// ------------------------------------------------------- repeatable reads

TEST(SnapshotTest, RepeatableReadUnderUpdateStream) {
  // The acceptance differential: a snapshot query re-run mid-update-stream
  // returns results identical to its at-capture oracle, across >= 1000
  // committed updates.
  Column col = Column::UniformRandom("A", 4000, 0, 10000, 4);
  UpdatableIndex index(col, SnapConfig());
  QueryContext uctx;
  uctx.txn_id = 1;

  // Pre-stream: some differential state so the snapshot is not trivially
  // the pristine base.
  std::vector<std::pair<Value, RowId>> live;
  for (int i = 0; i < 50; ++i) {
    RowId id;
    ASSERT_TRUE(index.Insert(20000 + i, &uctx, &id).ok());
    live.emplace_back(20000 + i, id);
  }

  Snapshot snap = index.CaptureSnapshot();
  const uint64_t capture_epoch = snap.epoch();

  // At-capture oracle answers over a spread of ranges.
  struct Probe {
    ValueRange range;
    uint64_t count;
    int64_t sum;
    QueryResult rows;
    QueryResult minmax;
  };
  std::vector<Probe> probes;
  QueryContext ctx;
  for (Value lo = 0; lo < 25000; lo += 2500) {
    Probe p;
    p.range = ValueRange{lo, lo + 4000};
    QueryResult r;
    ASSERT_TRUE(index
                    .ExecuteSnapshot(Query::Count("", "", lo, lo + 4000),
                                     snap, &ctx, &r)
                    .ok());
    p.count = r.count;
    ASSERT_TRUE(index
                    .ExecuteSnapshot(Query::Sum("", "", lo, lo + 4000), snap,
                                     &ctx, &r)
                    .ok());
    p.sum = r.sum;
    ASSERT_TRUE(index
                    .ExecuteSnapshot(Query::RowIds("", "", lo, lo + 4000),
                                     snap, &ctx, &p.rows)
                    .ok());
    std::sort(p.rows.row_ids.begin(), p.rows.row_ids.end());
    ASSERT_TRUE(index
                    .ExecuteSnapshot(Query::MinMax("", "", lo, lo + 4000),
                                     snap, &ctx, &p.minmax)
                    .ok());
    probes.push_back(std::move(p));
  }

  // Commit >= 1000 updates (inserts, base deletes, cancellations).
  Rng rng(9);
  uint64_t committed = 0;
  while (committed < 1200) {
    uctx.txn_id = 100 + committed;
    const int op = static_cast<int>(rng.Uniform(10));
    if (op < 6 || live.empty()) {
      const Value v = rng.UniformRange(0, 25000);
      RowId id;
      ASSERT_TRUE(index.Insert(v, &uctx, &id).ok());
      live.emplace_back(v, id);
      ++committed;
    } else {
      const size_t pick = rng.Uniform(live.size());
      const auto [v, id] = live[pick];
      if (index.Delete(v, id, &uctx).ok()) ++committed;
      live.erase(live.begin() + static_cast<long>(pick));
    }
  }
  ASSERT_GE(index.commit_epoch(), capture_epoch + 1000);

  // Re-run every probe against the held snapshot: identical answers.
  for (const Probe& p : probes) {
    QueryResult r;
    ASSERT_TRUE(index
                    .ExecuteSnapshot(
                        Query::Count("", "", p.range.lo, p.range.hi), snap,
                        &ctx, &r)
                    .ok());
    EXPECT_EQ(r.count, p.count);
    ASSERT_TRUE(index
                    .ExecuteSnapshot(Query::Sum("", "", p.range.lo, p.range.hi),
                                     snap, &ctx, &r)
                    .ok());
    EXPECT_EQ(r.sum, p.sum);
    ASSERT_TRUE(index
                    .ExecuteSnapshot(
                        Query::RowIds("", "", p.range.lo, p.range.hi), snap,
                        &ctx, &r)
                    .ok());
    std::sort(r.row_ids.begin(), r.row_ids.end());
    EXPECT_EQ(r.row_ids, p.rows.row_ids);
    ASSERT_TRUE(index
                    .ExecuteSnapshot(
                        Query::MinMax("", "", p.range.lo, p.range.hi), snap,
                        &ctx, &r)
                    .ok());
    EXPECT_EQ(r, p.minmax);
  }

  // Epoch-lag accounting: the re-runs above read at >= 1000 epochs behind.
  EXPECT_GE(index.latch_stats().snapshot_max_epoch_lag(), 1000u);
}

// ------------------------------------------- snapshot vs latched differential

TEST(SnapshotTest, SnapshotMatchesLatchedOracleAcrossKinds) {
  // Interleaved update stream; after every burst, the snapshot path, the
  // latched path, and a logical multiset oracle must agree on all kinds.
  Column col = Column::UniformRandom("A", 3000, 0, 5000, 5);
  UpdatableIndex index(col, SnapConfig());
  LogicalOracle oracle;
  for (Value v : col.values()) oracle.values.insert(v);
  std::vector<std::pair<Value, RowId>> live;
  for (size_t i = 0; i < col.size(); ++i) {
    live.emplace_back(col[i], static_cast<RowId>(i));
  }

  Rng rng(11);
  QueryContext uctx;
  QueryContext latched_ctx;
  QueryContext snap_ctx;
  snap_ctx.snapshot_reads = true;  // context-stamped dispatch, as a session
  for (int round = 0; round < 60; ++round) {
    for (int i = 0; i < 10; ++i) {
      uctx.txn_id = static_cast<uint64_t>(round) * 100 + i + 1;
      if (rng.Uniform(2) == 0 || live.empty()) {
        const Value v = rng.UniformRange(0, 5000);
        RowId id;
        ASSERT_TRUE(index.Insert(v, &uctx, &id).ok());
        oracle.values.insert(v);
        live.emplace_back(v, id);
      } else {
        const size_t pick = rng.Uniform(live.size());
        const auto [v, id] = live[pick];
        ASSERT_TRUE(index.Delete(v, id, &uctx).ok());
        oracle.values.erase(oracle.values.find(v));
        live.erase(live.begin() + static_cast<long>(pick));
      }
    }
    Value lo = rng.UniformRange(0, 5000);
    Value hi = rng.UniformRange(0, 5000);
    if (lo > hi) std::swap(lo, hi);

    // Count + sum: snapshot == latched == oracle.
    uint64_t c_latched = 0;
    uint64_t c_snap = 0;
    ASSERT_TRUE(
        index.RangeCount(ValueRange{lo, hi}, &latched_ctx, &c_latched).ok());
    ASSERT_TRUE(index.RangeCount(ValueRange{lo, hi}, &snap_ctx, &c_snap).ok());
    EXPECT_EQ(c_latched, oracle.Count(lo, hi));
    EXPECT_EQ(c_snap, oracle.Count(lo, hi));
    int64_t s_latched = 0;
    int64_t s_snap = 0;
    ASSERT_TRUE(
        index.RangeSum(ValueRange{lo, hi}, &latched_ctx, &s_latched).ok());
    ASSERT_TRUE(index.RangeSum(ValueRange{lo, hi}, &snap_ctx, &s_snap).ok());
    EXPECT_EQ(s_latched, oracle.Sum(lo, hi));
    EXPECT_EQ(s_snap, oracle.Sum(lo, hi));

    // RowIds and MinMax: the two paths agree exactly (same epoch, nothing
    // committed in between).
    std::vector<RowId> ids_latched;
    std::vector<RowId> ids_snap;
    ASSERT_TRUE(
        index.RangeRowIds(ValueRange{lo, hi}, &latched_ctx, &ids_latched)
            .ok());
    ASSERT_TRUE(
        index.RangeRowIds(ValueRange{lo, hi}, &snap_ctx, &ids_snap).ok());
    std::sort(ids_latched.begin(), ids_latched.end());
    std::sort(ids_snap.begin(), ids_snap.end());
    EXPECT_EQ(ids_latched, ids_snap);
    Value mn_l = 0, mx_l = 0, mn_s = 0, mx_s = 0;
    bool found_l = false, found_s = false;
    ASSERT_TRUE(index
                    .RangeMinMax(ValueRange{lo, hi}, &latched_ctx, &mn_l,
                                 &mx_l, &found_l)
                    .ok());
    ASSERT_TRUE(index
                    .RangeMinMax(ValueRange{lo, hi}, &snap_ctx, &mn_s, &mx_s,
                                 &found_s)
                    .ok());
    EXPECT_EQ(found_l, found_s);
    if (found_l) {
      EXPECT_EQ(mn_l, mn_s);
      EXPECT_EQ(mx_l, mx_s);
    }
  }
  EXPECT_GT(index.latch_stats().snapshot_reads(), 0u);
}

TEST(SnapshotTest, OnDemandCaptureWorksWithoutMaintainedChain) {
  // config.snapshot_reads = false: captures materialize under a short
  // latch instead of pinning the chain, with identical semantics.
  IndexConfig config;
  config.method = IndexMethod::kCrack;
  ASSERT_FALSE(config.snapshot_reads);
  Column col = Column::UniqueRandom("A", 1000, 6);
  UpdatableIndex index(col, config);
  QueryContext uctx;
  uctx.txn_id = 1;
  ASSERT_TRUE(index.Insert(500, &uctx).ok());

  Snapshot snap = index.CaptureSnapshot();
  QueryContext ctx;
  QueryResult r;
  ASSERT_TRUE(
      index.ExecuteSnapshot(Query::Count("", "", 500, 501), snap, &ctx, &r)
          .ok());
  EXPECT_EQ(r.count, 2u);  // base 500 + pending insert
  ASSERT_TRUE(index.Insert(500, &uctx).ok());  // invisible to the snapshot
  ASSERT_TRUE(
      index.ExecuteSnapshot(Query::Count("", "", 500, 501), snap, &ctx, &r)
          .ok());
  EXPECT_EQ(r.count, 2u);
  // The chain is not maintained: nothing was published by the writes.
  EXPECT_EQ(index.snapshots().versions_published(), 0u);
}

// ------------------------------------------------ checkpoint drain + reclaim

TEST(SnapshotTest, CheckpointDrainsOutstandingSnapshots) {
  Column col = Column::UniqueRandom("A", 1000, 7);
  auto index = std::make_unique<UpdatableIndex>(col, SnapConfig());
  QueryContext uctx;
  uctx.txn_id = 1;
  ASSERT_TRUE(index->Insert(123456, &uctx).ok());

  Snapshot held = index->CaptureSnapshot();
  std::atomic<bool> checkpoint_done{false};
  std::thread checkpointer([&] {
    ASSERT_TRUE(index->Checkpoint().ok());
    checkpoint_done.store(true, std::memory_order_release);
  });

  // The checkpoint must not complete while the snapshot is held. (A bounded
  // sleep cannot *prove* blocking, but a non-draining checkpoint would
  // complete in microseconds — 50ms is 3 orders of magnitude of margin.)
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(checkpoint_done.load(std::memory_order_acquire));
  // The held snapshot still answers, against the pre-checkpoint base.
  QueryContext ctx;
  QueryResult r;
  ASSERT_TRUE(
      index->ExecuteSnapshot(Query::Count("", "", 123456, 123457), held, &ctx,
                             &r)
          .ok());
  EXPECT_EQ(r.count, 1u);

  held.Release();
  checkpointer.join();
  EXPECT_TRUE(checkpoint_done.load());

  // Post-checkpoint capture sees the folded state under the next base
  // generation.
  Snapshot fresh = index->CaptureSnapshot();
  EXPECT_EQ(fresh.base_generation(), 1u);
  EXPECT_TRUE(fresh.version().inserts.empty());
  ASSERT_TRUE(
      index->ExecuteSnapshot(Query::Count("", "", 123456, 123457), fresh,
                             &ctx, &r)
          .ok());
  EXPECT_EQ(r.count, 1u);  // folded into the base
}

TEST(SnapshotTest, CheckpointCompletesWhilePinHolderUsesIndex) {
  // Deadlock regression: Checkpoint() must drain BEFORE taking the
  // side-table latch. A thread that holds a snapshot and then performs
  // latch-taking operations (updates, latched reads) must glide through
  // while the checkpoint waits on its pin; the old order (latch first,
  // then drain) deadlocked the whole index on this shape.
  Column col = Column::UniqueRandom("A", 1000, 21);
  UpdatableIndex index(col, SnapConfig());
  std::atomic<bool> pin_taken{false};

  std::thread holder([&] {
    QueryContext ctx;
    ctx.txn_id = 5;
    Snapshot pin = index.CaptureSnapshot();
    pin_taken.store(true, std::memory_order_release);
    // Give the checkpointer time to enter its drain, then keep using the
    // index under the pin: these must not block behind the checkpoint.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(index.Insert(2000 + i, &ctx, nullptr).ok());
      uint64_t count = 0;
      ASSERT_TRUE(index.RangeCount(ValueRange{0, 5000}, &ctx, &count).ok());
    }
    // pin released here -> checkpoint may proceed
  });
  while (!pin_taken.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(index.Checkpoint().ok());
  holder.join();
  EXPECT_EQ(index.num_rows(), 1005u);
  EXPECT_EQ(index.pending_inserts(), 0u);  // all five folded by the drain
}

TEST(SnapshotTest, DestructionDrainsOutstandingSnapshots) {
  // Lifetime regression: a pin held by another thread must block index
  // destruction (not dangle into freed memory); once released, the
  // surviving handle's destructor touches nothing of the index.
  auto index = std::make_unique<UpdatableIndex>(
      Column::UniqueRandom("A", 500, 23), SnapConfig());
  std::atomic<bool> pin_taken{false};
  std::atomic<bool> destroyed{false};
  std::thread holder([&] {
    Snapshot pin = index->CaptureSnapshot();
    pin_taken.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(destroyed.load(std::memory_order_acquire));
    // pin released here -> destruction may proceed
  });
  while (!pin_taken.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  index.reset();  // must block until the holder releases
  destroyed.store(true, std::memory_order_release);
  holder.join();
}

TEST(SnapshotTest, ConcurrentCheckpointsSerialize) {
  Column col = Column::UniqueRandom("A", 500, 22);
  UpdatableIndex index(col, SnapConfig());
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      QueryContext ctx;
      ctx.txn_id = static_cast<uint64_t>(t) + 1;
      for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(index.Insert(1000 + t * 10 + i, &ctx).ok());
        ASSERT_TRUE(index.Checkpoint().ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(index.num_rows(), 515u);
  EXPECT_EQ(index.pending_inserts(), 0u);
  Snapshot snap = index.CaptureSnapshot();
  EXPECT_EQ(snap.base_generation(), 15u);  // one bump per checkpoint
}

TEST(SnapshotTest, EpochReclamationRetiresUnpinnedVersions) {
  // Copy-chain publication: one full version per commit, retired and
  // reclaimed individually. (Delta-chain publication retires nothing per
  // commit — see DeltaChainConsolidationBoundsReaderFold below.)
  Column col = Column::UniqueRandom("A", 500, 8);
  IndexConfig config = SnapConfig();
  config.snapshot_publication = SnapshotPublication::kCopyChain;
  UpdatableIndex index(col, config);
  QueryContext uctx;
  uctx.txn_id = 1;

  // With no snapshot active, every superseded version is reclaimed as soon
  // as it retires.
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(index.Insert(i, &uctx).ok());
  EXPECT_EQ(index.snapshots().versions_retired(), 20u);
  EXPECT_EQ(index.snapshots().versions_reclaimed(), 20u);
  EXPECT_EQ(index.snapshots().retired_chain_length(), 0u);

  // A pinned snapshot holds the reclamation floor at its epoch...
  Snapshot pin = index.CaptureSnapshot();
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(index.Insert(100 + i, &uctx).ok());
  EXPECT_EQ(index.snapshots().oldest_active_epoch(), pin.epoch());
  EXPECT_GT(index.snapshots().retired_chain_length(), 0u);

  // ...and releasing it reclaims the whole tail.
  pin.Release();
  // Reclamation runs on release and on the next publish; one more commit
  // flushes deterministically.
  ASSERT_TRUE(index.Insert(999, &uctx).ok());
  EXPECT_EQ(index.snapshots().retired_chain_length(), 0u);
  EXPECT_EQ(index.snapshots().versions_reclaimed(),
            index.snapshots().versions_retired());
  EXPECT_EQ(index.snapshots().active_snapshots(), 0u);
}

// ------------------------------------------------- delta-chain publication

TEST(SnapshotTest, DeltaChainPublishesO1NodesAndConsolidates) {
  // Delta-chain publication (the default): each commit links one O(1)
  // delta node; a full flat version is materialized only when the chain
  // crosses the consolidation threshold. A pin taken before the stream
  // keeps answering at its epoch across every consolidation behind it.
  Column col = Column::UniqueRandom("A", 500, 9);
  IndexConfig config = SnapConfig();
  config.snapshot_consolidate_min = 8;
  config.snapshot_consolidate_max = 32;
  UpdatableIndex index(col, config);
  QueryContext uctx;
  uctx.txn_id = 1;

  Snapshot pin = index.CaptureSnapshot();

  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(index.Insert(10000 + i, &uctx).ok());
  }

  const SnapshotManager& mgr = index.snapshots();
  EXPECT_EQ(mgr.deltas_published(), 200u);
  EXPECT_GE(mgr.consolidations(), 200u / 32u);   // cap forces periodic folds
  EXPECT_LE(mgr.chain_length(), 32u);            // never above the cap
  EXPECT_EQ(index.latch_stats().delta_publishes(), 200u);
  EXPECT_LE(index.latch_stats().delta_chain_max(), 32u);
  EXPECT_GT(index.latch_stats().consolidated_deltas(), 0u);

  // The pinned epoch still answers pre-stream state.
  QueryContext ctx;
  QueryResult r;
  ASSERT_TRUE(
      index.ExecuteSnapshot(Query::Count("", "", 0, 20000), pin, &ctx, &r)
          .ok());
  EXPECT_EQ(r.count, 500u);

  // A fresh capture with a non-empty chain folds the suffix at read time.
  ASSERT_TRUE(index.Insert(10500, &uctx).ok());
  ASSERT_TRUE(index.Insert(10501, &uctx).ok());
  Snapshot fresh = index.CaptureSnapshot();
  EXPECT_GE(fresh.chain_length(), 1u);
  ASSERT_TRUE(
      index.ExecuteSnapshot(Query::Count("", "", 0, 20000), fresh, &ctx, &r)
          .ok());
  EXPECT_EQ(r.count, 702u);
  ASSERT_TRUE(
      index.ExecuteSnapshot(Query::Sum("", "", 10500, 10502), fresh, &ctx, &r)
          .ok());
  EXPECT_EQ(r.sum, 10500 + 10501);
}

TEST(SnapshotTest, DeltaChainFoldsDeletesAndCancellations) {
  // The read-time fold must honor all three delta ops: pending inserts,
  // anti-matter against base rows, and cancellation of still-pending
  // inserts — against the logical multiset oracle after every commit.
  Column col = Column::UniformRandom("A", 400, 0, 1000, 10);
  IndexConfig config = SnapConfig();
  config.snapshot_consolidate_min = 1u << 20;  // never consolidate: pure chain
  UpdatableIndex index(col, config);
  LogicalOracle oracle;
  for (Value v : col.values()) oracle.values.insert(v);
  std::vector<std::pair<Value, RowId>> pending;
  std::vector<std::pair<Value, RowId>> base_live;
  for (size_t i = 0; i < col.size(); ++i) {
    base_live.emplace_back(col[i], static_cast<RowId>(i));
  }

  Rng rng(25);
  QueryContext uctx;
  QueryContext snap_ctx;
  snap_ctx.snapshot_reads = true;
  for (int i = 0; i < 300; ++i) {
    uctx.txn_id = static_cast<uint64_t>(i) + 1;
    const int op = static_cast<int>(rng.Uniform(3));
    if (op == 0 || (pending.empty() && base_live.empty())) {
      const Value v = rng.UniformRange(0, 1000);
      RowId id;
      ASSERT_TRUE(index.Insert(v, &uctx, &id).ok());
      oracle.values.insert(v);
      pending.emplace_back(v, id);
    } else if (op == 1 && !pending.empty()) {
      const size_t pick = rng.Uniform(pending.size());
      const auto [v, id] = pending[pick];
      ASSERT_TRUE(index.Delete(v, id, &uctx).ok());  // kCancelInsert
      oracle.values.erase(oracle.values.find(v));
      pending.erase(pending.begin() + static_cast<long>(pick));
    } else if (!base_live.empty()) {
      const size_t pick = rng.Uniform(base_live.size());
      const auto [v, id] = base_live[pick];
      ASSERT_TRUE(index.Delete(v, id, &uctx).ok());  // kAntiMatter
      oracle.values.erase(oracle.values.find(v));
      base_live.erase(base_live.begin() + static_cast<long>(pick));
    }
    if (i % 10 == 9) {
      Value lo = rng.UniformRange(0, 1000);
      Value hi = rng.UniformRange(0, 1000);
      if (lo > hi) std::swap(lo, hi);
      uint64_t count = 0;
      int64_t sum = 0;
      ASSERT_TRUE(index.RangeCount(ValueRange{lo, hi}, &snap_ctx, &count).ok());
      ASSERT_TRUE(index.RangeSum(ValueRange{lo, hi}, &snap_ctx, &sum).ok());
      EXPECT_EQ(count, oracle.Count(lo, hi)) << "at commit " << i;
      EXPECT_EQ(sum, oracle.Sum(lo, hi)) << "at commit " << i;
    }
  }
  EXPECT_EQ(index.snapshots().consolidations(), 0u);
  EXPECT_EQ(index.snapshots().chain_length(), 300u);
}

// --------------------------------------------------- concurrent consistency

TEST(SnapshotTest, ConcurrentSnapshotReadsStayConsistent) {
  // Writers stream inserts while snapshot readers verify two invariants on
  // every read: (a) the full-domain count at a snapshot equals base +
  // inserts visible at its epoch — i.e. equals epoch + initial rows under
  // an insert-only stream; (b) per reader thread, epochs (and thus counts)
  // are monotonically non-decreasing across successive captures.
  constexpr size_t kRows = 2000;
  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  constexpr int kInsertsPerWriter = 400;
  Column col = Column::UniqueRandom("A", kRows, 12);
  UpdatableIndex index(col, SnapConfig());
  std::atomic<bool> failed{false};
  std::atomic<uint64_t> txn{1};
  std::atomic<bool> writers_done{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(100 + w);
      QueryContext ctx;
      for (int i = 0; i < kInsertsPerWriter && !failed.load(); ++i) {
        ctx.txn_id = txn.fetch_add(1);
        // Insert strictly above the base domain so base cracking bounds
        // stay untouched and the count invariant is exact.
        if (!index.Insert(static_cast<Value>(kRows) + rng.UniformRange(0, 1000),
                          &ctx, nullptr)
                 .ok()) {
          failed.store(true);
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      QueryContext ctx;
      ctx.snapshot_reads = true;
      uint64_t last_count = 0;
      while (!writers_done.load(std::memory_order_acquire) && !failed.load()) {
        Snapshot snap = index.CaptureSnapshot();
        const uint64_t epoch = snap.epoch();
        QueryResult result;
        if (!index
                 .ExecuteSnapshot(
                     Query::Count("", "", 0,
                                  static_cast<Value>(kRows) + 2000),
                     snap, &ctx, &result)
                 .ok()) {
          failed.store(true);
          break;
        }
        if (result.count != kRows + epoch) failed.store(true);  // (a)
        if (result.count < last_count) failed.store(true);      // (b)
        last_count = result.count;
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  writers_done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(index.commit_epoch(),
            static_cast<uint64_t>(kWriters) * kInsertsPerWriter);
  EXPECT_EQ(index.snapshots().active_snapshots(), 0u);
}

// ---------------------------------------------- transactional snapshot scopes

TEST(SnapshotTest, ScopeGivesRepeatableReadsAcrossCommits) {
  // A scope pins ONE epoch for the whole read transaction: every query
  // between BeginSnapshot and EndSnapshot answers at the epoch the scope's
  // first query captured, across >= 1000 interleaved commits.
  Column col = Column::UniformRandom("A", 3000, 0, 10000, 15);
  UpdatableIndex index(col, SnapConfig());
  ThreadPool pool(2);
  SessionOptions sopts;
  sopts.snapshot_reads = true;
  auto session = Session::OnIndex(&index, &pool, sopts);

  QueryContext uctx;
  uctx.txn_id = 77;
  std::vector<std::pair<Value, RowId>> live;
  for (int i = 0; i < 40; ++i) {
    RowId id;
    ASSERT_TRUE(index.Insert(15000 + i, &uctx, &id).ok());
    live.emplace_back(15000 + i, id);
  }

  ASSERT_TRUE(session->BeginSnapshot().ok());
  EXPECT_TRUE(session->InSnapshotScope());

  struct Probe {
    Value lo, hi;
    uint64_t count;
    int64_t sum;
  };
  std::vector<Probe> probes;
  for (Value lo = 0; lo < 16000; lo += 2000) {
    Probe p{lo, lo + 3000, 0, 0};
    ASSERT_TRUE(session->Count("", "", p.lo, p.hi, &p.count).ok());
    ASSERT_TRUE(session->Sum("", "", p.lo, p.hi, &p.sum).ok());
    probes.push_back(p);
  }

  // >= 1000 commits (inserts, base deletes, cancellations) while the scope
  // stays open; consolidations fire behind the pin.
  Rng rng(16);
  uint64_t committed = 0;
  while (committed < 1100) {
    uctx.txn_id = 1000 + committed;
    if (rng.Uniform(10) < 6 || live.empty()) {
      const Value v = rng.UniformRange(0, 16000);
      RowId id;
      ASSERT_TRUE(index.Insert(v, &uctx, &id).ok());
      live.emplace_back(v, id);
      ++committed;
    } else {
      const size_t pick = rng.Uniform(live.size());
      const auto [v, id] = live[pick];
      if (index.Delete(v, id, &uctx).ok()) ++committed;
      live.erase(live.begin() + static_cast<long>(pick));
    }
  }

  // Sync and async re-runs: identical answers at the pinned epoch.
  for (const Probe& p : probes) {
    uint64_t c = 0;
    int64_t s = 0;
    ASSERT_TRUE(session->Count("", "", p.lo, p.hi, &c).ok());
    ASSERT_TRUE(session->Sum("", "", p.lo, p.hi, &s).ok());
    EXPECT_EQ(c, p.count);
    EXPECT_EQ(s, p.sum);
    std::vector<Query> batch;
    batch.push_back(Query::Count("", "", p.lo, p.hi));
    auto tickets = session->SubmitBatch(std::move(batch));
    ASSERT_TRUE(tickets[0].status().ok());
    EXPECT_EQ(tickets[0].result().count, p.count);
  }

  ASSERT_TRUE(session->EndSnapshot().ok());
  EXPECT_FALSE(session->InSnapshotScope());
  // After the scope closes, the session observes the live state again.
  uint64_t live_count = 0;
  ASSERT_TRUE(session->Count("", "", 0, 100000, &live_count).ok());
  EXPECT_EQ(live_count, 3000u + live.size());
}

TEST(SnapshotTest, ScopedSumOtherPlanPinsOneEpoch) {
  // The two-column plan (select sum(B) where lo <= A < hi) under a scope:
  // the select phase resolves rowIDs at the pinned epoch, so the fetched
  // B-sum is repeatable across commits. B is aligned positionally with A's
  // base and oversized to cover pending-insert rowIDs.
  constexpr size_t kRows = 2000;
  Column a = Column::UniformRandom("A", kRows, 0, 5000, 17);
  Column b = Column::UniformRandom("B", kRows + 300, 1, 100, 18);
  UpdatableIndex index(a, SnapConfig());
  ThreadPool pool(1);
  SessionOptions sopts;
  sopts.snapshot_reads = true;
  auto session = Session::OnIndex(&index, &pool, sopts);

  QueryContext uctx;
  uctx.txn_id = 5;
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(index.Insert(2500, &uctx).ok());

  ASSERT_TRUE(session->BeginSnapshot().ok());
  QueryContext ctx = session->MakeContext();
  RangeQuery rq{2000, 3000, QueryType::kSum};
  int64_t pinned = 0;
  ASSERT_TRUE(FetchSum(&index, b, rq, &ctx, &pinned).ok());

  // Commits inside the probed range are invisible to the scope.
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(index.Insert(2500, &uctx).ok());
  int64_t again = 0;
  ASSERT_TRUE(FetchSum(&index, b, rq, &ctx, &again).ok());
  EXPECT_EQ(again, pinned);

  ASSERT_TRUE(session->EndSnapshot().ok());
  QueryContext after = session->MakeContext();
  int64_t live_sum = 0;
  ASSERT_TRUE(FetchSum(&index, b, rq, &after, &live_sum).ok());
  // The 200 extra qualifying rows each fetch a B value >= 1.
  EXPECT_GT(live_sum, pinned);
}

TEST(SnapshotTest, ScopesDoNotNestAndRequireBalance) {
  Column col = Column::UniqueRandom("A", 100, 24);
  UpdatableIndex index(col, SnapConfig());
  ThreadPool pool(1);
  auto session = Session::OnIndex(&index, &pool, SessionOptions{});
  EXPECT_TRUE(session->EndSnapshot().IsInvalidArgument());  // nothing open
  ASSERT_TRUE(session->BeginSnapshot().ok());
  EXPECT_TRUE(session->BeginSnapshot().IsInvalidArgument());  // no nesting
  EXPECT_TRUE(session->InSnapshotScope());
  ASSERT_TRUE(session->EndSnapshot().ok());
  EXPECT_FALSE(session->InSnapshotScope());
  EXPECT_TRUE(session->EndSnapshot().IsInvalidArgument());  // unbalanced
  ASSERT_TRUE(session->BeginSnapshot().ok());  // balanced reopen is fine
  ASSERT_TRUE(session->EndSnapshot().ok());
}

TEST(SnapshotTest, ScopePinBlocksCheckpointUntilEnd) {
  Column col = Column::UniqueRandom("A", 800, 19);
  UpdatableIndex index(col, SnapConfig());
  ThreadPool pool(1);
  SessionOptions sopts;
  sopts.snapshot_reads = true;
  auto session = Session::OnIndex(&index, &pool, sopts);
  QueryContext uctx;
  uctx.txn_id = 3;
  ASSERT_TRUE(index.Insert(4242, &uctx).ok());

  ASSERT_TRUE(session->BeginSnapshot().ok());
  uint64_t count = 0;
  ASSERT_TRUE(session->Count("", "", 0, 10000, &count).ok());  // adopts pin
  EXPECT_EQ(count, 801u);

  std::atomic<bool> done{false};
  std::thread checkpointer([&] {
    ASSERT_TRUE(index.Checkpoint().ok());
    done.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(done.load(std::memory_order_acquire));
  // The scope keeps answering at its pinned epoch while the checkpoint's
  // drain waits on the pin.
  ASSERT_TRUE(session->Count("", "", 0, 10000, &count).ok());
  EXPECT_EQ(count, 801u);

  ASSERT_TRUE(session->EndSnapshot().ok());
  checkpointer.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(index.pending_inserts(), 0u);  // the fold drained the side store
}

TEST(SnapshotTest, SessionCloseReleasesScopePins) {
  Column col = Column::UniqueRandom("A", 600, 20);
  UpdatableIndex index(col, SnapConfig());
  ThreadPool pool(1);
  SessionOptions sopts;
  sopts.snapshot_reads = true;
  auto session = Session::OnIndex(&index, &pool, sopts);
  QueryContext uctx;
  uctx.txn_id = 2;
  ASSERT_TRUE(index.Insert(77, &uctx).ok());
  ASSERT_TRUE(session->BeginSnapshot().ok());
  uint64_t count = 0;
  ASSERT_TRUE(session->Count("", "", 0, 10000, &count).ok());
  EXPECT_EQ(index.snapshots().active_snapshots(), 1u);
  session.reset();  // closed without EndSnapshot: pins must not leak
  EXPECT_EQ(index.snapshots().active_snapshots(), 0u);
  ASSERT_TRUE(index.Checkpoint().ok());  // would deadlock on a leaked pin
}

// ----------------------------------------------------- session integration

TEST(SnapshotTest, SessionStampsSnapshotReads) {
  Column col = Column::UniqueRandom("A", 2000, 13);
  RangeOracle oracle(col);
  UpdatableIndex index(col, SnapConfig());
  ThreadPool pool(2);

  SessionOptions sopts;
  sopts.snapshot_reads = true;
  auto session = Session::OnIndex(&index, &pool, sopts);
  QueryContext probe = session->MakeContext();
  EXPECT_TRUE(probe.snapshot_reads);

  // Sync and async submissions both ride the snapshot path.
  uint64_t count = 0;
  ASSERT_TRUE(session->Count("", "", 100, 900, &count).ok());
  EXPECT_EQ(count, oracle.Count(100, 900));
  std::vector<Query> batch;
  batch.push_back(Query::Sum("", "", 100, 900));
  batch.push_back(Query::Count("", "", 200, 300));
  auto tickets = session->SubmitBatch(std::move(batch));
  ASSERT_TRUE(tickets[0].status().ok());
  ASSERT_TRUE(tickets[1].status().ok());
  EXPECT_EQ(tickets[0].result().sum, oracle.Sum(100, 900));
  EXPECT_EQ(tickets[1].result().count, oracle.Count(200, 300));
  EXPECT_EQ(index.latch_stats().snapshot_reads(), 3u);

  // A plain session on the same index keeps the latched path.
  auto latched = Session::OnIndex(&index, &pool, SessionOptions{});
  ASSERT_TRUE(latched->Count("", "", 100, 900, &count).ok());
  EXPECT_EQ(count, oracle.Count(100, 900));
  EXPECT_EQ(index.latch_stats().snapshot_reads(), 3u);  // unchanged
}

TEST(SnapshotTest, ConfigKeySeparatesSnapshotReads) {
  IndexConfig plain;
  plain.method = IndexMethod::kCrack;
  IndexConfig snap = plain;
  snap.snapshot_reads = true;
  EXPECT_NE(IndexConfigKey(plain), IndexConfigKey(snap));
  EXPECT_EQ(IndexConfigKey(snap), IndexConfigKey(snap));

  // Publication mode and consolidation tuning are part of the key: a
  // copy-chain index and a delta-chain index must not alias in a catalog.
  IndexConfig copy = snap;
  copy.snapshot_publication = SnapshotPublication::kCopyChain;
  EXPECT_NE(IndexConfigKey(snap), IndexConfigKey(copy));
  IndexConfig tuned = snap;
  tuned.snapshot_consolidate_min = 16;
  EXPECT_NE(IndexConfigKey(snap), IndexConfigKey(tuned));
}

TEST(SnapshotTest, SnapshotReadsWorkOverEveryBaseMethod) {
  for (IndexMethod method :
       {IndexMethod::kScan, IndexMethod::kSort, IndexMethod::kCrack,
        IndexMethod::kAdaptiveMerge, IndexMethod::kHybrid,
        IndexMethod::kBTreeMerge}) {
    IndexConfig config = SnapConfig(method);
    config.merge.run_size = 512;
    config.hybrid.partition_size = 512;
    config.btree.run_size = 512;
    Column col = Column::UniqueRandom("A", 3000, 14);
    UpdatableIndex index(col, config);
    QueryContext uctx;
    uctx.txn_id = 1;
    ASSERT_TRUE(index.Insert(1500, &uctx).ok());
    QueryContext ctx;
    ctx.snapshot_reads = true;
    uint64_t count = 0;
    ASSERT_TRUE(index.RangeCount(ValueRange{1000, 2000}, &ctx, &count).ok());
    EXPECT_EQ(count, 1001u) << ToString(method);  // 1000 base + 1 pending
  }
}

}  // namespace
}  // namespace adaptidx
