#include "btree/btree.h"

#include <algorithm>

namespace adaptidx {

PartitionedBTree::PartitionedBTree(size_t node_capacity)
    : node_capacity_(std::max<size_t>(4, node_capacity)),
      root_(new LeafNode()) {}

PartitionedBTree::~PartitionedBTree() { DestroyRec(root_); }

void PartitionedBTree::DestroyRec(Node* node) {
  if (!node->is_leaf) {
    auto* inner = static_cast<InnerNode*>(node);
    for (Node* child : inner->children) DestroyRec(child);
  }
  if (node->is_leaf) {
    delete static_cast<LeafNode*>(node);
  } else {
    delete static_cast<InnerNode*>(node);
  }
}

PartitionedBTree::SplitResult PartitionedBTree::InsertRec(Node* node,
                                                          const BTreeKey& key,
                                                          bool* inserted) {
  if (node->is_leaf) {
    auto* leaf = static_cast<LeafNode*>(node);
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    const size_t idx = static_cast<size_t>(it - leaf->keys.begin());
    if (it != leaf->keys.end() && *it == key) {
      if (leaf->ghost[idx]) {
        leaf->ghost[idx] = 0;  // resurrect the ghost record
        --ghost_count_;
        ++live_count_;
        *inserted = true;
      }
      return {};
    }
    leaf->keys.insert(it, key);
    leaf->ghost.insert(leaf->ghost.begin() + static_cast<long>(idx), 0);
    ++live_count_;
    *inserted = true;
    if (leaf->keys.size() <= node_capacity_) return {};
    // Split the leaf in half.
    auto* right = new LeafNode();
    const size_t mid = leaf->keys.size() / 2;
    right->keys.assign(leaf->keys.begin() + static_cast<long>(mid),
                       leaf->keys.end());
    right->ghost.assign(leaf->ghost.begin() + static_cast<long>(mid),
                        leaf->ghost.end());
    leaf->keys.resize(mid);
    leaf->ghost.resize(mid);
    right->next = leaf->next;
    leaf->next = right;
    return SplitResult{right, right->keys.front()};
  }

  auto* inner = static_cast<InnerNode*>(node);
  const size_t child_idx = static_cast<size_t>(
      std::upper_bound(inner->seps.begin(), inner->seps.end(), key) -
      inner->seps.begin());
  SplitResult child_split = InsertRec(inner->children[child_idx], key,
                                      inserted);
  if (child_split.right == nullptr) return {};
  inner->seps.insert(inner->seps.begin() + static_cast<long>(child_idx),
                     child_split.sep);
  inner->children.insert(
      inner->children.begin() + static_cast<long>(child_idx) + 1,
      child_split.right);
  if (inner->seps.size() <= node_capacity_) return {};
  // Split the inner node; the middle separator moves up.
  auto* right = new InnerNode();
  const size_t mid = inner->seps.size() / 2;
  const BTreeKey up = inner->seps[mid];
  right->seps.assign(inner->seps.begin() + static_cast<long>(mid) + 1,
                     inner->seps.end());
  right->children.assign(inner->children.begin() + static_cast<long>(mid) + 1,
                         inner->children.end());
  inner->seps.resize(mid);
  inner->children.resize(mid + 1);
  return SplitResult{right, up};
}

void PartitionedBTree::Insert(const BTreeKey& key) {
  bool inserted = false;
  SplitResult split = InsertRec(root_, key, &inserted);
  if (split.right != nullptr) {
    auto* new_root = new InnerNode();
    new_root->seps.push_back(split.sep);
    new_root->children.push_back(root_);
    new_root->children.push_back(split.right);
    root_ = new_root;
  }
}

void PartitionedBTree::BulkLoadPartition(
    uint32_t pid, const std::vector<CrackerEntry>& sorted) {
  for (const CrackerEntry& e : sorted) {
    Insert(BTreeKey{pid, e.value, e.row_id});
  }
}

const PartitionedBTree::LeafNode* PartitionedBTree::FindLeaf(
    const BTreeKey& key) const {
  const Node* node = root_;
  while (!node->is_leaf) {
    const auto* inner = static_cast<const InnerNode*>(node);
    const size_t idx = static_cast<size_t>(
        std::upper_bound(inner->seps.begin(), inner->seps.end(), key) -
        inner->seps.begin());
    node = inner->children[idx];
  }
  return static_cast<const LeafNode*>(node);
}

void PartitionedBTree::ScanRange(
    uint32_t pid, Value lo, Value hi,
    const std::function<void(const BTreeKey&)>& fn) const {
  if (lo >= hi) return;
  const BTreeKey start{pid, lo, 0};
  const BTreeKey stop{pid, hi, 0};
  const LeafNode* leaf = FindLeaf(start);
  while (leaf != nullptr) {
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), start);
    for (; it != leaf->keys.end(); ++it) {
      if (!(*it < stop)) return;
      const size_t idx = static_cast<size_t>(it - leaf->keys.begin());
      if (!leaf->ghost[idx]) fn(*it);
    }
    leaf = leaf->next;
  }
}

size_t PartitionedBTree::DeleteRange(uint32_t pid, Value lo, Value hi) {
  if (lo >= hi) return 0;
  const BTreeKey start{pid, lo, 0};
  const BTreeKey stop{pid, hi, 0};
  // FindLeaf is const; ghost flags are logically mutable record state.
  auto* leaf = const_cast<LeafNode*>(FindLeaf(start));
  size_t deleted = 0;
  while (leaf != nullptr) {
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), start);
    for (; it != leaf->keys.end(); ++it) {
      if (!(*it < stop)) {
        live_count_ -= deleted;
        ghost_count_ += deleted;
        return deleted;
      }
      const size_t idx = static_cast<size_t>(it - leaf->keys.begin());
      if (!leaf->ghost[idx]) {
        leaf->ghost[idx] = 1;
        ++deleted;
      }
    }
    leaf = leaf->next;
  }
  live_count_ -= deleted;
  ghost_count_ += deleted;
  return deleted;
}

void PartitionedBTree::PurgeGhosts() {
  std::vector<BTreeKey> live;
  live.reserve(live_count_);
  const Node* node = root_;
  while (!node->is_leaf) {
    node = static_cast<const InnerNode*>(node)->children.front();
  }
  const auto* leaf = static_cast<const LeafNode*>(node);
  for (; leaf != nullptr; leaf = leaf->next) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (!leaf->ghost[i]) live.push_back(leaf->keys[i]);
    }
  }
  DestroyRec(root_);
  BuildFromSorted(live);
  ghost_count_ = 0;
  live_count_ = live.size();
}

void PartitionedBTree::BuildFromSorted(const std::vector<BTreeKey>& keys) {
  if (keys.empty()) {
    root_ = new LeafNode();
    return;
  }
  // Pack leaves at 2/3 fill so post-build inserts have room.
  const size_t pack = std::max<size_t>(2, node_capacity_ * 2 / 3);
  std::vector<std::pair<Node*, BTreeKey>> level;  // (node, min key)
  LeafNode* prev = nullptr;
  for (size_t base = 0; base < keys.size(); base += pack) {
    const size_t end = std::min(keys.size(), base + pack);
    auto* leaf = new LeafNode();
    leaf->keys.assign(keys.begin() + static_cast<long>(base),
                      keys.begin() + static_cast<long>(end));
    leaf->ghost.assign(leaf->keys.size(), 0);
    if (prev != nullptr) prev->next = leaf;
    prev = leaf;
    level.emplace_back(leaf, leaf->keys.front());
  }
  while (level.size() > 1) {
    std::vector<std::pair<Node*, BTreeKey>> upper;
    for (size_t base = 0; base < level.size(); base += pack) {
      const size_t end = std::min(level.size(), base + pack);
      auto* inner = new InnerNode();
      for (size_t i = base; i < end; ++i) {
        if (i > base) inner->seps.push_back(level[i].second);
        inner->children.push_back(level[i].first);
      }
      upper.emplace_back(inner, level[base].second);
    }
    level = std::move(upper);
  }
  root_ = level.front().first;
}

size_t PartitionedBTree::CountLeavesRec(const Node* node) {
  if (node->is_leaf) return 1;
  const auto* inner = static_cast<const InnerNode*>(node);
  size_t n = 0;
  for (const Node* child : inner->children) n += CountLeavesRec(child);
  return n;
}

size_t PartitionedBTree::num_leaves() const { return CountLeavesRec(root_); }

int PartitionedBTree::HeightRec(const Node* node) {
  if (node->is_leaf) return 1;
  return 1 + HeightRec(static_cast<const InnerNode*>(node)->children.front());
}

int PartitionedBTree::height() const { return HeightRec(root_); }

std::vector<uint32_t> PartitionedBTree::Partitions() const {
  std::vector<uint32_t> pids;
  const Node* node = root_;
  while (!node->is_leaf) {
    node = static_cast<const InnerNode*>(node)->children.front();
  }
  for (const auto* leaf = static_cast<const LeafNode*>(node); leaf != nullptr;
       leaf = leaf->next) {
    // Keys are globally sorted, so live partition ids appear in ascending
    // runs; collecting on change of id yields the distinct ascending set.
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (leaf->ghost[i]) continue;
      if (pids.empty() || pids.back() != leaf->keys[i].partition) {
        pids.push_back(leaf->keys[i].partition);
      }
    }
  }
  return pids;
}

int PartitionedBTree::LeafDepth() const {
  int d = 1;
  const Node* node = root_;
  while (!node->is_leaf) {
    node = static_cast<const InnerNode*>(node)->children.front();
    ++d;
  }
  return d;
}

bool PartitionedBTree::ValidateRec(const Node* node, const BTreeKey* lo,
                                   const BTreeKey* hi, int depth,
                                   int leaf_depth) const {
  if (node->is_leaf) {
    if (depth != leaf_depth) return false;
    const auto* leaf = static_cast<const LeafNode*>(node);
    if (leaf->keys.size() != leaf->ghost.size()) return false;
    if (leaf->keys.size() > node_capacity_ + 1) return false;
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (i > 0 && !(leaf->keys[i - 1] < leaf->keys[i])) return false;
      if (lo != nullptr && leaf->keys[i] < *lo) return false;
      if (hi != nullptr && !(leaf->keys[i] < *hi)) return false;
    }
    return true;
  }
  const auto* inner = static_cast<const InnerNode*>(node);
  if (inner->children.size() != inner->seps.size() + 1) return false;
  if (inner->seps.empty()) return false;
  for (size_t i = 1; i < inner->seps.size(); ++i) {
    if (!(inner->seps[i - 1] < inner->seps[i])) return false;
  }
  for (size_t i = 0; i < inner->children.size(); ++i) {
    const BTreeKey* clo = i == 0 ? lo : &inner->seps[i - 1];
    const BTreeKey* chi = i == inner->seps.size() ? hi : &inner->seps[i];
    if (!ValidateRec(inner->children[i], clo, chi, depth + 1, leaf_depth)) {
      return false;
    }
  }
  return true;
}

bool PartitionedBTree::Validate() const {
  return ValidateRec(root_, nullptr, nullptr, 1, LeafDepth());
}

}  // namespace adaptidx
