/// \file Reproduces Figure 15: per-query breakdown of index-refinement
/// (crack) time and latch wait time as the workload sequence evolves.
/// Set-up per the paper: Q2 (sum) queries, piece latches, 50% selectivity,
/// 8 concurrent clients.
///
/// Expected shape: both series start high (the first query latches the
/// whole column; the next 7 wait for it) and decay by orders of magnitude —
/// "the crack time of one query is in practice the wait time for another".

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace adaptidx {
namespace bench {
namespace {

void Run() {
  const size_t rows = EnvSize("AI_BENCH_ROWS", 1000000);
  const size_t num_queries = EnvSize("AI_BENCH_QUERIES", 1024);
  const size_t clients = EnvSize("AI_BENCH_FIG15_CLIENTS", 8);
  PrintHeader("Figure 15: per-query wait time vs. index refinement time",
              "rows=" + std::to_string(rows) +
                  " queries=" + std::to_string(num_queries) +
                  " selectivity=50% type=Q2(sum) clients=" +
                  std::to_string(clients) + " piece latches");

  Column column = MakeUniqueRandomColumn(rows);
  WorkloadGenerator gen(0, static_cast<Value>(rows));
  WorkloadOptions wopts;
  wopts.num_queries = num_queries;
  wopts.selectivity = 0.50;
  wopts.type = QueryType::kSum;
  wopts.seed = 7;
  const auto queries = gen.Generate(wopts);

  IndexConfig config;
  config.method = IndexMethod::kCrack;
  // batch_size 1: the paper's clients are synchronous, and this figure's
  // wait dynamics depend on a client never racing past its blocked query.
  RunResult r = RunWorkload(column, config, queries, clients,
                            /*record_per_query=*/true, /*batch_size=*/1);

  // Log-spaced sample of the completion-ordered sequence (the paper plots
  // all points on a log-log scale; we print a representative subset).
  std::printf("\n%-8s %16s %16s\n", "query#", "refine (secs)", "wait (secs)");
  size_t step = 1;
  for (size_t i = 0; i < r.records.size(); i += step) {
    const auto& s = r.records[i].stats;
    std::printf("%-8zu %16.6f %16.6f\n", i + 1,
                static_cast<double>(s.crack_ns) / 1e9,
                static_cast<double>(s.wait_ns) / 1e9);
    if (i + 1 >= 16) step = (i + 1) / 4;
  }

  // Aggregate decay check: first vs. last quarter of the sequence, via the
  // driver's shared stats accumulation.
  const size_t q = r.records.size() / 4;
  const StatTotals first = SumStats(r.records, 0, q);
  const StatTotals last =
      SumStats(r.records, r.records.size() - q, r.records.size());
  std::printf("\nfirst quarter:  refine %.4fs  wait %.4fs\n",
              static_cast<double>(first.crack_ns) / 1e9,
              static_cast<double>(first.wait_ns) / 1e9);
  std::printf("last quarter:   refine %.4fs  wait %.4fs\n",
              static_cast<double>(last.crack_ns) / 1e9,
              static_cast<double>(last.wait_ns) / 1e9);
  std::printf("run totals:     refine %.4fs  wait %.4fs  read %.4fs "
              "(RunResult totals)\n",
              static_cast<double>(r.total_crack_ns) / 1e9,
              static_cast<double>(r.total_wait_ns) / 1e9,
              static_cast<double>(r.total_read_ns) / 1e9);
  std::printf(
      "\npaper-shape check: refine decays (%s), wait decays with it (%s)\n",
      last.crack_ns < first.crack_ns ? "yes" : "NO",
      last.wait_ns < first.wait_ns ? "yes" : "NO");
}

}  // namespace
}  // namespace bench
}  // namespace adaptidx

int main() {
  adaptidx::bench::Run();
  return 0;
}
