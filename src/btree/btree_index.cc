#include "btree/btree_index.h"

#include <algorithm>

#include "util/stopwatch.h"

namespace adaptidx {

namespace {

struct CountAgg {
  uint64_t result = 0;
  void Record(const BTreeKey& k) {
    (void)k;
    ++result;
  }
};

struct SumAgg {
  int64_t result = 0;
  void Record(const BTreeKey& k) { result += k.value; }
};

struct RowIdAgg {
  std::vector<RowId>* out;
  void Record(const BTreeKey& k) { out->push_back(k.row_id); }
};

struct MinMaxAgg {
  MinMaxAccumulator acc;
  void Record(const BTreeKey& k) { acc.Feed(k.value); }
};

}  // namespace

BTreeMergeIndex::BTreeMergeIndex(const Column* column, BTreeMergeOptions opts)
    : column_(column),
      opts_(std::move(opts)),
      tree_(opts_.node_capacity) {}

void BTreeMergeIndex::EnsureInitialized(QueryContext* ctx) {
  if (initialized_.load(std::memory_order_acquire)) return;
  const bool cc = opts_.concurrency_control;
  LatchAcquireContext lat = ctx->LatchCtx(&latch_stats_);
  if (cc) latch_.WriteLock(0, lat);
  if (!initialized_.load(std::memory_order_relaxed)) {
    ScopedTimer init_timer(&ctx->stats.init_ns);
    const size_t n = column_->size();
    const size_t run_size = std::max<size_t>(1, opts_.run_size);
    Value lo = 0;
    Value hi = 0;
    if (n > 0) {
      lo = (*column_)[0];
      hi = (*column_)[0];
    }
    uint32_t pid = 0;
    for (size_t base = 0; base < n; base += run_size) {
      const size_t end = std::min(n, base + run_size);
      std::vector<CrackerEntry> run;
      run.reserve(end - base);
      for (size_t i = base; i < end; ++i) {
        const Value v = (*column_)[i];
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        run.push_back(CrackerEntry{static_cast<RowId>(i), v});
      }
      std::sort(run.begin(), run.end(),
                [](const CrackerEntry& a, const CrackerEntry& b) {
                  return a.value < b.value ||
                         (a.value == b.value && a.row_id < b.row_id);
                });
      tree_.BulkLoadPartition(++pid, run);
    }
    num_runs_ = pid;
    domain_lo_ = lo;
    domain_hi_ = hi + 1;
    initialized_.store(true, std::memory_order_release);
  }
  if (cc) latch_.WriteUnlock();
}

void BTreeMergeIndex::MergeGapLocked(Value lo, Value hi, QueryContext* ctx) {
  ScopedTimer t(&ctx->stats.crack_ns);
  // Move records of [lo, hi) from every run partition into the final
  // partition; the old pages stay readable as ghosts until purged, which is
  // the limited multi-version behavior Section 4.3 points out.
  std::vector<BTreeKey> moved;
  for (uint32_t pid = 1; pid <= num_runs_; ++pid) {
    tree_.ScanRange(pid, lo, hi,
                    [&moved](const BTreeKey& k) { moved.push_back(k); });
  }
  for (const BTreeKey& k : moved) {
    tree_.Insert(BTreeKey{kFinalPartition, k.value, k.row_id});
  }
  for (uint32_t pid = 1; pid <= num_runs_; ++pid) {
    tree_.DeleteRange(pid, lo, hi);
  }
  covered_.Add(lo, hi);
  ++ctx->stats.cracks;
}

template <typename Agg>
Status BTreeMergeIndex::ExecuteRange(const ValueRange& range,
                                     QueryContext* ctx, Agg* agg) {
  if (range.Empty()) return Status::OK();
  EnsureInitialized(ctx);
  const Value lo = std::max(range.lo, domain_lo_);
  const Value hi = std::min(range.hi, domain_hi_);
  if (lo >= hi) return Status::OK();

  const bool cc = opts_.concurrency_control;
  LatchAcquireContext lat = ctx->LatchCtx(&latch_stats_);

  std::vector<ValueRange> covered_parts;
  std::vector<ValueRange> gaps;
  if (cc) latch_.ReadLock(lat);
  {
    ScopedTimer t(&ctx->stats.read_ns);
    covered_.Decompose(lo, hi, &covered_parts, &gaps);
    for (const ValueRange& part : covered_parts) {
      tree_.ScanRange(kFinalPartition, part.lo, part.hi,
                      [agg](const BTreeKey& k) { agg->Record(k); });
    }
    ctx->stats.pieces_touched += covered_parts.size();
  }
  if (cc) latch_.ReadUnlock();

  bool merging_stopped = false;
  for (const ValueRange& gap : gaps) {
    if (!merging_stopped) {
      if (cc) latch_.WriteLock(gap.lo, lat);
      std::vector<ValueRange> sub_covered;
      std::vector<ValueRange> sub_gaps;
      covered_.Decompose(gap.lo, gap.hi, &sub_covered, &sub_gaps);
      for (const ValueRange& g : sub_gaps) MergeGapLocked(g.lo, g.hi, ctx);
      {
        // The whole gap is covered now; read it from the final partition.
        ScopedTimer t(&ctx->stats.read_ns);
        tree_.ScanRange(kFinalPartition, gap.lo, gap.hi,
                        [agg](const BTreeKey& k) { agg->Record(k); });
      }
      ctx->stats.pieces_touched += sub_gaps.size() + 1;
      const bool contended = cc && latch_.HasWaiters();
      if (cc) latch_.WriteUnlock();
      if (opts_.early_termination && contended) {
        merging_stopped = true;
        ctx->stats.refinement_skipped = true;
      }
    } else {
      // Read-only: answer from run partitions (plus anything merged by
      // concurrent queries in the meantime).
      if (cc) latch_.ReadLock(lat);
      std::vector<ValueRange> sub_covered;
      std::vector<ValueRange> sub_gaps;
      covered_.Decompose(gap.lo, gap.hi, &sub_covered, &sub_gaps);
      {
        ScopedTimer t(&ctx->stats.read_ns);
        for (const ValueRange& part : sub_covered) {
          tree_.ScanRange(kFinalPartition, part.lo, part.hi,
                          [agg](const BTreeKey& k) { agg->Record(k); });
        }
        for (const ValueRange& g : sub_gaps) {
          for (uint32_t pid = 1; pid <= num_runs_; ++pid) {
            tree_.ScanRange(pid, g.lo, g.hi,
                            [agg](const BTreeKey& k) { agg->Record(k); });
          }
        }
      }
      ctx->stats.pieces_touched += sub_covered.size() + sub_gaps.size();
      if (cc) latch_.ReadUnlock();
    }
  }
  return Status::OK();
}

Status BTreeMergeIndex::ExecuteImpl(const Query& query, QueryContext* ctx,
                                    QueryResult* result) {
  switch (query.kind) {
    case QueryKind::kCount: {
      CountAgg agg;
      Status s = ExecuteRange(query.range, ctx, &agg);
      result->count = agg.result;
      return s;
    }
    case QueryKind::kSum: {
      SumAgg agg;
      Status s = ExecuteRange(query.range, ctx, &agg);
      result->sum = agg.result;
      return s;
    }
    case QueryKind::kRowIds: {
      RowIdAgg agg{&result->row_ids};
      return ExecuteRange(query.range, ctx, &agg);
    }
    case QueryKind::kMinMax: {
      MinMaxAgg agg;
      Status s = ExecuteRange(query.range, ctx, &agg);
      agg.acc.Store(result);
      return s;
    }
    case QueryKind::kSumOther:
      return Status::NotSupported("btree-merge holds no second column");
  }
  return Status::InvalidArgument("unknown query kind");
}

size_t BTreeMergeIndex::NumPieces() const {
  if (!initialized_.load(std::memory_order_acquire)) return 0;
  latch_.ReadLock();
  const size_t n = tree_.Partitions().size();
  latch_.ReadUnlock();
  return n;
}

bool BTreeMergeIndex::FullyMerged() const {
  if (!initialized_.load(std::memory_order_acquire)) return false;
  latch_.ReadLock();
  const bool full = covered_.Covers(domain_lo_, domain_hi_);
  latch_.ReadUnlock();
  return full;
}

bool BTreeMergeIndex::ValidateStructure() const {
  if (!initialized_.load(std::memory_order_acquire)) return true;
  return tree_.Validate();
}

}  // namespace adaptidx
