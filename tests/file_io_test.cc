#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "storage/file_io.h"

namespace adaptidx {
namespace {

class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("adaptidx_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(FileIoTest, ColumnRoundTrip) {
  Column col = Column::UniqueRandom("A", 10000, 5);
  ASSERT_TRUE(WriteColumn(col, Path("a.col")).ok());
  Column loaded;
  ASSERT_TRUE(ReadColumn(Path("a.col"), "A", &loaded).ok());
  EXPECT_EQ(loaded.name(), "A");
  EXPECT_EQ(loaded.values(), col.values());
}

TEST_F(FileIoTest, EmptyColumnRoundTrip) {
  Column col("E");
  ASSERT_TRUE(WriteColumn(col, Path("e.col")).ok());
  Column loaded;
  ASSERT_TRUE(ReadColumn(Path("e.col"), "E", &loaded).ok());
  EXPECT_EQ(loaded.size(), 0u);
}

TEST_F(FileIoTest, NegativeValuesSurvive) {
  Column col("N", {-5, 0, 7, -1000000000000LL});
  ASSERT_TRUE(WriteColumn(col, Path("n.col")).ok());
  Column loaded;
  ASSERT_TRUE(ReadColumn(Path("n.col"), "N", &loaded).ok());
  EXPECT_EQ(loaded.values(), col.values());
}

TEST_F(FileIoTest, MissingFileIsNotFound) {
  Column loaded;
  EXPECT_TRUE(ReadColumn(Path("missing.col"), "X", &loaded).IsNotFound());
}

TEST_F(FileIoTest, BadMagicIsCorruption) {
  {
    std::FILE* f = std::fopen(Path("bad.col").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTACOLFILE.............", f);
    std::fclose(f);
  }
  Column loaded;
  EXPECT_TRUE(ReadColumn(Path("bad.col"), "X", &loaded).IsCorruption());
}

TEST_F(FileIoTest, TruncatedBodyIsCorruption) {
  Column col("T", {1, 2, 3, 4});
  ASSERT_TRUE(WriteColumn(col, Path("t.col")).ok());
  std::filesystem::resize_file(Path("t.col"), 16 + 2 * sizeof(Value));
  Column loaded;
  EXPECT_TRUE(ReadColumn(Path("t.col"), "T", &loaded).IsCorruption());
}

TEST_F(FileIoTest, TrailingBytesIsCorruption) {
  Column col("T", {1, 2});
  ASSERT_TRUE(WriteColumn(col, Path("t.col")).ok());
  {
    std::FILE* f = std::fopen(Path("t.col").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputc('x', f);
    std::fclose(f);
  }
  Column loaded;
  EXPECT_TRUE(ReadColumn(Path("t.col"), "T", &loaded).IsCorruption());
}

TEST_F(FileIoTest, TableRoundTrip) {
  Table table("R");
  ASSERT_TRUE(table.AddColumn(Column::UniqueRandom("A", 500, 1)).ok());
  ASSERT_TRUE(table.AddColumn(Column::Sequential("B", 500)).ok());
  ASSERT_TRUE(WriteTable(table, Path("R")).ok());

  std::unique_ptr<Table> loaded;
  ASSERT_TRUE(ReadTable(Path("R"), "R", &loaded).ok());
  ASSERT_EQ(loaded->num_columns(), 2u);
  EXPECT_EQ(loaded->num_rows(), 500u);
  EXPECT_EQ(loaded->ColumnNames(),
            (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(loaded->GetColumn("A")->values(),
            table.GetColumn("A")->values());
  EXPECT_EQ(loaded->GetColumn("B")->values(),
            table.GetColumn("B")->values());
}

TEST_F(FileIoTest, ReadTableMissingDirIsNotFound) {
  std::unique_ptr<Table> loaded;
  EXPECT_TRUE(ReadTable(Path("nope"), "R", &loaded).IsNotFound());
}

}  // namespace
}  // namespace adaptidx
