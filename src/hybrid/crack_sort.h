#ifndef ADAPTIDX_HYBRID_CRACK_SORT_H_
#define ADAPTIDX_HYBRID_CRACK_SORT_H_

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "core/adaptive_index.h"
#include "latch/wait_queue_latch.h"
#include "merging/segment_store.h"
#include "storage/column.h"

namespace adaptidx {

/// \brief Tunables for hybrid crack-sort.
struct HybridOptions {
  /// Records per unsorted initial partition.
  size_t partition_size = 1u << 20;
  /// Latch the index (off = single-threaded measurement mode).
  bool concurrency_control = true;
  std::string name = "hybrid";
};

/// \brief Hybrid "crack-sort" adaptive indexing (Section 2, Figure 4; [23]):
/// data is loaded into unsorted initial partitions (cheap first touch, like
/// cracking); each query cracks every initial partition on its bounds and
/// merges the qualifying values into a fully sorted final partition (fast
/// convergence, like adaptive merging).
///
/// "Once a given range of data has moved out of initial partitions and into
/// final partitions, the initial partitions will never be accessed again for
/// data in that range" — extraction physically removes the qualifying region
/// from each initial partition and rebuilds its local table of contents with
/// shifted positions.
///
/// Concurrency: one WaitQueueLatch over the index; gap extractions run in
/// write mode and commit per gap, reads of the final partition share.
class HybridCrackSortIndex : public AdaptiveIndex {
 public:
  explicit HybridCrackSortIndex(const Column* column, HybridOptions opts = {});

  std::string Name() const override { return opts_.name; }

  /// \brief Initial partitions + final segments.
  size_t NumPieces() const override;

  size_t num_partitions() const;
  size_t num_segments() const;
  bool initialized() const {
    return initialized_.load(std::memory_order_acquire);
  }

  /// \brief Total records still residing in initial partitions.
  size_t ResidualEntries() const;

  /// \brief Structural invariants; requires a quiesced index.
  bool ValidateStructure() const;

 protected:
  Status ExecuteImpl(const Query& query, QueryContext* ctx,
                     QueryResult* result) override;

 private:
  /// An unsorted initial partition with a local table of contents of the
  /// cracks applied to it so far (std::map stands in for the per-partition
  /// AVL tree; positions shift on extraction, which requires rebuilding).
  struct InitialPartition {
    std::vector<CrackerEntry> entries;
    std::map<Value, size_t> cracks;
  };

  void EnsureInitialized(QueryContext* ctx);

  /// Position of the first entry >= v, cracking the partition when needed.
  size_t ResolveInPartition(InitialPartition* part, Value v,
                            QueryContext* ctx);

  /// Cracks `part` on [lo, hi), moves the qualifying entries into `out`,
  /// removes them from the partition, and rebuilds its local ToC.
  void ExtractFromPartition(InitialPartition* part, Value lo, Value hi,
                            std::vector<CrackerEntry>* out, QueryContext* ctx);

  /// Extracts [lo, hi) from all partitions into a new sorted final segment.
  /// Caller holds the index latch in write mode.
  void MergeGapLocked(Value lo, Value hi, QueryContext* ctx);

  template <typename Agg>
  Status ExecuteRange(const ValueRange& range, QueryContext* ctx, Agg* agg);

  const Column* column_;
  const HybridOptions opts_;

  std::atomic<bool> initialized_{false};
  mutable WaitQueueLatch latch_{SchedulingPolicy::kFifo};
  std::vector<InitialPartition> partitions_;
  SegmentStore final_;
  Value domain_lo_ = 0;
  Value domain_hi_ = 0;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_HYBRID_CRACK_SORT_H_
