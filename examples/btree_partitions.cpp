/// \file Partitioned B-tree walkthrough (Section 4 of the paper): one
/// B-tree, many partitions distinguished only by an artificial leading key
/// field; merge steps move records between partitions with ghost deletes;
/// partitions appear and disappear without any catalog operation.
///
///   $ ./build/examples/btree_partitions

#include <cstdio>
#include <vector>

#include "btree/btree.h"
#include "btree/btree_index.h"
#include "storage/column.h"

using namespace adaptidx;

namespace {

void PrintTreeState(const char* when, const PartitionedBTree& tree) {
  std::printf("%-34s height=%d leaves=%4zu live=%6zu ghosts=%6zu "
              "partitions=[",
              when, tree.height(), tree.num_leaves(), tree.size(),
              tree.num_ghosts());
  auto parts = tree.Partitions();
  for (size_t i = 0; i < parts.size(); ++i) {
    std::printf("%s%u", i > 0 ? " " : "", parts[i]);
  }
  std::printf("]\n");
}

}  // namespace

int main() {
  // --- Low-level tour of the partitioned B-tree itself. ------------------
  std::printf("== PartitionedBTree: one tree, many partitions ==\n\n");
  PartitionedBTree tree(/*node_capacity=*/32);

  // Three sorted runs loaded as partitions 1..3 — in a partitioned B-tree a
  // partition exists as soon as records with its leading key exist.
  for (uint32_t pid = 1; pid <= 3; ++pid) {
    std::vector<CrackerEntry> run;
    for (Value v = 0; v < 2000; ++v) {
      run.push_back(CrackerEntry{static_cast<RowId>(v * 3 + pid),
                                 v * 3 + static_cast<Value>(pid)});
    }
    tree.BulkLoadPartition(pid, run);
  }
  PrintTreeState("after loading 3 runs:", tree);

  // A "merge step" as a system transaction: move key range [1000, 2000)
  // from every run into the final partition 0, then instantly commit.
  std::vector<BTreeKey> moved;
  for (uint32_t pid = 1; pid <= 3; ++pid) {
    tree.ScanRange(pid, 1000, 2000,
                   [&moved](const BTreeKey& k) { moved.push_back(k); });
  }
  for (const BTreeKey& k : moved) {
    tree.Insert(BTreeKey{0, k.value, k.row_id});
  }
  for (uint32_t pid = 1; pid <= 3; ++pid) tree.DeleteRange(pid, 1000, 2000);
  PrintTreeState("after merging [1000,2000):", tree);

  // Ghosts (pseudo-deleted records, Section 3.1) linger until a maintenance
  // transaction compacts the tree.
  tree.PurgeGhosts();
  PrintTreeState("after PurgeGhosts():", tree);
  std::printf("tree invariants hold: %s\n\n",
              tree.Validate() ? "yes" : "NO");

  // --- The same mechanics driven automatically by queries. ---------------
  std::printf("== BTreeMergeIndex: adaptive merging as query side effect "
              "==\n\n");
  constexpr size_t kRows = 100'000;
  Column column = Column::UniqueRandom("A", kRows, 17);
  BTreeMergeOptions opts;
  opts.run_size = kRows / 8;
  BTreeMergeIndex index(&column, opts);

  const ValueRange queries[] = {
      {10'000, 12'000}, {50'000, 55'000}, {11'000, 13'000}, {0, 100'000},
  };
  for (const auto& q : queries) {
    QueryContext ctx;
    uint64_t count = 0;
    (void)index.RangeCount(q, &ctx, &count);
    std::printf("count(*) where %6lld<=A<%6lld -> %6llu   "
                "(merge steps: %llu, live partitions now: %zu)\n",
                static_cast<long long>(q.lo), static_cast<long long>(q.hi),
                static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(ctx.stats.cracks),
                index.NumPieces());
  }
  std::printf("\nfully merged: %s — every run partition emptied itself into "
              "the final\npartition purely through query side effects.\n",
              index.FullyMerged() ? "yes" : "no");
  return 0;
}
