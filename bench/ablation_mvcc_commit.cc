/// \file MVCC commit ablations.
///
/// Part 1 (Section 4.3): multi-version commit for adaptive merging —
/// standard merge steps hold the index write latch for the whole
/// gather+sort+publish, while the MVCC variant gathers under shared access
/// and takes the write latch only for a short revalidated publication.
///
/// Part 2 (version publication): copy-chain vs delta-chain publication of
/// the differential side store, swept over pending-differential size ×
/// snapshot hold × publication mode. Copy-chain materializes a full flat
/// version per commit (O(pending)); delta-chain links one O(1) delta node
/// and consolidates periodically. The sweep measures per-commit publication
/// latency percentiles and writes BENCH_mvcc.json (override the path with
/// AI_BENCH_MVCC_JSON).
///
/// Gate (non-zero exit on failure): with a snapshot held open, delta-chain
/// commit p99 must be <= 0.5x copy-chain commit p99 at the LARGEST swept
/// pending size — the O(1)-publication claim the delta chain exists for.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/updatable_index.h"
#include "merging/adaptive_merge.h"
#include "util/rng.h"

namespace adaptidx {
namespace bench {
namespace {

void RunMergeAblation() {
  const size_t rows = EnvSize("AI_BENCH_ROWS", 2000000);
  const size_t num_queries = EnvSize("AI_BENCH_QUERIES", 512);
  const size_t clients = EnvSize("AI_BENCH_ABLATION_CLIENTS", 8);
  PrintHeader("Ablation: merge-step commit protocol (Section 4.3 MVCC)",
              "rows=" + std::to_string(rows) +
                  " queries=" + std::to_string(num_queries) +
                  " selectivity=2% type=Q2(sum) clients=" +
                  std::to_string(clients) + " overlap-heavy workload");

  Column column = MakeUniqueRandomColumn(rows);
  WorkloadGenerator gen(0, static_cast<Value>(rows));
  WorkloadOptions wopts;
  wopts.num_queries = num_queries;
  wopts.selectivity = 0.02;
  wopts.type = QueryType::kSum;
  wopts.seed = 29;
  const auto queries = gen.Generate(wopts);

  std::printf("\n%-22s %12s %14s %12s %12s\n", "commit protocol", "total (s)",
              "wait (ms)", "conflicts", "merge steps");
  double waits[2];
  int i = 0;
  for (bool mvcc : {false, true}) {
    IndexConfig config;
    config.method = IndexMethod::kAdaptiveMerge;
    config.merge.run_size = rows / 16 + 1;
    config.merge.mvcc_commit = mvcc;
    config.merge.early_termination = false;  // isolate the commit protocol
    // batch_size 1: wait-dynamics comparison under the paper's
    // synchronous clients (see fig15).
    RunResult r = RunWorkload(column, config, queries, clients,
                              /*record_per_query=*/false,
                              /*batch_size=*/1);
    waits[i++] = static_cast<double>(r.total_wait_ns) / 1e6;
    std::printf("%-22s %12.3f %14.3f %12llu %12llu\n",
                mvcc ? "mvcc (short commit)" : "standard (long X)",
                r.total_seconds, static_cast<double>(r.total_wait_ns) / 1e6,
                static_cast<unsigned long long>(r.total_conflicts),
                static_cast<unsigned long long>(r.total_cracks));
  }
  std::printf(
      "\npaper-shape check: mvcc commit does not wait more than the "
      "standard long write latch (the *gain* requires readers that can "
      "overlap the gather on other cores; this host has %u): %s\n",
      std::thread::hardware_concurrency(),
      waits[1] <= waits[0] * 1.15 ? "yes" : "NO");
}

// ------------------------------------------ version-publication sweep

struct PublicationCell {
  const char* publication;  // "copy" | "delta"
  size_t pending = 0;
  bool held_snapshot = false;
  double commit_p50_ns = 0;
  double commit_p99_ns = 0;
  int64_t commit_max_ns = 0;
  uint64_t deltas_published = 0;
  uint64_t consolidations = 0;
  uint64_t chain_max = 0;
};

double Percentile(std::vector<int64_t>* lat, double p) {
  if (lat->empty()) return 0;
  std::sort(lat->begin(), lat->end());
  const size_t i = static_cast<size_t>(p / 100.0 *
                                       static_cast<double>(lat->size() - 1));
  return static_cast<double>((*lat)[i]);
}

PublicationCell RunPublicationCell(const Column& column,
                                   SnapshotPublication publication,
                                   size_t pending, bool held,
                                   size_t commits) {
  IndexConfig config;
  config.method = IndexMethod::kCrack;
  config.snapshot_reads = true;
  config.snapshot_publication = publication;
  UpdatableIndex index(column, config);
  Rng rng(2012);
  QueryContext ctx;
  uint64_t txn = 0;
  const Value domain = static_cast<Value>(column.size());
  // Pre-load the pending differential: copy-chain publication cost is
  // O(pending) per commit, so this is the swept axis.
  for (size_t i = 0; i < pending; ++i) {
    ctx.txn_id = ++txn;
    index.Insert(domain + static_cast<Value>(rng.Uniform(1u << 20)), &ctx);
  }

  Snapshot pin;
  if (held) pin = index.CaptureSnapshot();

  std::vector<int64_t> lat;
  lat.reserve(commits);
  for (size_t i = 0; i < commits; ++i) {
    ctx.txn_id = ++txn;
    const Value v = domain + static_cast<Value>(rng.Uniform(1u << 20));
    const auto start = std::chrono::steady_clock::now();
    index.Insert(v, &ctx);
    lat.push_back(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count());
  }
  if (held) pin.Release();

  PublicationCell cell;
  cell.publication =
      publication == SnapshotPublication::kCopyChain ? "copy" : "delta";
  cell.pending = pending;
  cell.held_snapshot = held;
  cell.commit_max_ns = *std::max_element(lat.begin(), lat.end());
  cell.commit_p50_ns = Percentile(&lat, 50.0);
  cell.commit_p99_ns = Percentile(&lat, 99.0);
  cell.deltas_published = index.snapshots().deltas_published();
  cell.consolidations = index.snapshots().consolidations();
  cell.chain_max = index.latch_stats().delta_chain_max();
  return cell;
}

bool RunPublicationSweep() {
  const size_t base_rows = EnvSize("AI_BENCH_MVCC_BASE", 200000);
  const size_t commits = EnvSize("AI_BENCH_MVCC_COMMITS", 512);
  PrintHeader(
      "Ablation: version publication (copy-chain vs delta-chain)",
      "base_rows=" + std::to_string(base_rows) + " measured_commits=" +
          std::to_string(commits) +
          " sweep: pending x held-snapshot x publication");

  Column column = MakeUniqueRandomColumn(base_rows);
  const size_t pendings[] = {1024, 8192, 32768};
  std::vector<PublicationCell> cells;
  double gate_copy_p99 = 0;
  double gate_delta_p99 = 0;
  const size_t gate_pending = pendings[2];

  std::printf("\n%-8s %10s %6s %14s %14s %14s %8s %8s\n", "mode", "pending",
              "held", "p50(us)", "p99(us)", "max(us)", "consol", "chainmax");
  for (size_t pending : pendings) {
    for (bool held : {false, true}) {
      for (SnapshotPublication mode : {SnapshotPublication::kCopyChain,
                                       SnapshotPublication::kDeltaChain}) {
        PublicationCell cell =
            RunPublicationCell(column, mode, pending, held, commits);
        std::printf("%-8s %10zu %6s %14.2f %14.2f %14.2f %8llu %8llu\n",
                    cell.publication, cell.pending, held ? "yes" : "no",
                    cell.commit_p50_ns / 1e3, cell.commit_p99_ns / 1e3,
                    static_cast<double>(cell.commit_max_ns) / 1e3,
                    static_cast<unsigned long long>(cell.consolidations),
                    static_cast<unsigned long long>(cell.chain_max));
        if (held && pending == gate_pending) {
          if (mode == SnapshotPublication::kCopyChain) {
            gate_copy_p99 = cell.commit_p99_ns;
          } else {
            gate_delta_p99 = cell.commit_p99_ns;
          }
        }
        cells.push_back(cell);
      }
    }
  }

  // Gate: O(1) publication must show up as a large commit-latency gap
  // under a held snapshot at the largest pending size.
  const bool gate_ok =
      gate_copy_p99 > 0 && gate_delta_p99 <= 0.5 * gate_copy_p99;
  std::printf(
      "\ngate (held snapshot, pending=%zu): delta p99 %.2f us vs copy p99 "
      "%.2f us -> delta <= 0.5x copy: %s\n",
      gate_pending, gate_delta_p99 / 1e3, gate_copy_p99 / 1e3,
      gate_ok ? "yes" : "NO");

  const char* json_env = std::getenv("AI_BENCH_MVCC_JSON");
  const std::string json_path =
      json_env != nullptr && *json_env != '\0' ? json_env : "BENCH_mvcc.json";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"ablation_mvcc_commit\",\n"
               "  \"base_rows\": %zu,\n  \"commits_per_cell\": %zu,\n"
               "  \"cells\": [\n",
               base_rows, commits);
  for (size_t i = 0; i < cells.size(); ++i) {
    const PublicationCell& c = cells[i];
    std::fprintf(
        f,
        "    {\"publication\": \"%s\", \"pending\": %zu, "
        "\"held_snapshot\": %s, \"commit_p50_ns\": %.0f, "
        "\"commit_p99_ns\": %.0f, \"commit_max_ns\": %lld, "
        "\"deltas_published\": %llu, \"consolidations\": %llu, "
        "\"chain_max\": %llu}%s\n",
        c.publication, c.pending, c.held_snapshot ? "true" : "false",
        c.commit_p50_ns, c.commit_p99_ns,
        static_cast<long long>(c.commit_max_ns),
        static_cast<unsigned long long>(c.deltas_published),
        static_cast<unsigned long long>(c.consolidations),
        static_cast<unsigned long long>(c.chain_max),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"gate_pending\": %zu,\n"
               "  \"gate_held_snapshot\": true,\n"
               "  \"gate_copy_p99_ns\": %.0f,\n"
               "  \"gate_delta_p99_ns\": %.0f,\n"
               "  \"delta_p99_leq_half_copy\": %s\n}\n",
               gate_pending, gate_copy_p99, gate_delta_p99,
               gate_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return gate_ok;
}

}  // namespace
}  // namespace bench
}  // namespace adaptidx

int main() {
  adaptidx::bench::RunMergeAblation();
  // Non-zero exit enforces the delta-publication acceptance criterion in
  // the CI bench-smoke step; the JSON records the raw numbers either way.
  return adaptidx::bench::RunPublicationSweep() ? 0 : 1;
}
