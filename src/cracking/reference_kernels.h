#ifndef ADAPTIDX_CRACKING_REFERENCE_KERNELS_H_
#define ADAPTIDX_CRACKING_REFERENCE_KERNELS_H_

#include <cstdint>
#include <utility>

#include "cracking/cracker_array.h"
#include "storage/types.h"

namespace adaptidx {
namespace reference {

/// \file
/// Concrete instantiations of the original accessor-templated kernels
/// (crack_kernels.h) for both cracker-array layouts — the retained
/// *reference tier*.
///
/// They serve two purposes:
///  - ground truth for the randomized differential kernel tests, and
///  - the stable baseline that bench/micro_kernels.cc measures the
///    branchless/SIMD tiers against.
///
/// The defining TU (reference_kernels.cc) pins codegen to scalar
/// (-fno-tree-vectorize / `#pragma GCC optimize`), so the baseline measures
/// the kernels as written — branchy, one element at a time — independent of
/// how aggressively the rest of the build is auto-vectorized.

Position CrackInTwoSplit(Value* values, RowId* row_ids, Position begin,
                         Position end, Value pivot);
std::pair<Position, Position> CrackInThreeSplit(Value* values, RowId* row_ids,
                                                Position begin, Position end,
                                                Value lo, Value hi);
uint64_t ScanCountSplit(const Value* values, Position begin, Position end,
                        Value lo, Value hi);
int64_t ScanSumSplit(const Value* values, Position begin, Position end,
                     Value lo, Value hi);
int64_t PositionalSumSplit(const Value* values, Position begin, Position end);

Position CrackInTwoPairs(CrackerEntry* entries, Position begin, Position end,
                         Value pivot);
std::pair<Position, Position> CrackInThreePairs(CrackerEntry* entries,
                                                Position begin, Position end,
                                                Value lo, Value hi);
uint64_t ScanCountPairs(const CrackerEntry* entries, Position begin,
                        Position end, Value lo, Value hi);
int64_t ScanSumPairs(const CrackerEntry* entries, Position begin, Position end,
                     Value lo, Value hi);
int64_t PositionalSumPairs(const CrackerEntry* entries, Position begin,
                           Position end);

}  // namespace reference
}  // namespace adaptidx

#endif  // ADAPTIDX_CRACKING_REFERENCE_KERNELS_H_
