#include "engine/session.h"

#include <atomic>
#include <utility>

#include "core/updatable_index.h"
#include "engine/database.h"
#include "util/stopwatch.h"

namespace adaptidx {

namespace {

/// Session ids are process-global so direct-index sessions and sessions of
/// several Database instances never alias.
std::atomic<uint32_t> g_next_session_id{1};

/// Auto-assigned user-transaction ids live far above any hand-picked id a
/// test or application would use for its own transactions.
std::atomic<uint64_t> g_next_txn_id{uint64_t{1} << 32};

}  // namespace

// ----------------------------------------------------------- QueryTicket

namespace {

/// Terminal answers for never-submitted (default-constructed) tickets:
/// complete-with-error rather than undefined behavior.
const Status& InvalidTicketStatus() {
  static const Status* s =
      new Status(Status::InvalidArgument("ticket was never submitted"));
  return *s;
}

}  // namespace

void QueryTicket::Wait() const {
  if (state_ == nullptr) return;
  std::unique_lock<std::mutex> lk(state_->mu);
  state_->cv.wait(lk, [this] { return state_->done; });
}

bool QueryTicket::WaitFor(std::chrono::milliseconds timeout) const {
  if (state_ == nullptr) return true;  // terminally failed == complete
  std::unique_lock<std::mutex> lk(state_->mu);
  return state_->cv.wait_for(lk, timeout, [this] { return state_->done; });
}

bool QueryTicket::done() const {
  if (state_ == nullptr) return true;
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->done;
}

const Status& QueryTicket::status() const {
  if (state_ == nullptr) return InvalidTicketStatus();
  Wait();
  return state_->status;
}

const QueryResult& QueryTicket::result() const {
  if (state_ == nullptr) {
    static const QueryResult* empty = new QueryResult();
    return *empty;
  }
  Wait();
  return state_->result;
}

const QueryStats& QueryTicket::stats() const {
  if (state_ == nullptr) {
    static const QueryStats* empty = new QueryStats();
    return *empty;
  }
  Wait();
  return state_->stats;
}

// --------------------------------------------------------------- Session

Session::Session(Database* db, AdaptiveIndex* direct_index, ThreadPool* pool,
                 SessionOptions opts, uint32_t session_id)
    : db_(db),
      direct_(direct_index),
      pool_(pool),
      opts_(std::move(opts)),
      session_id_(session_id) {
  client_id_ = opts_.client_id != 0 ? opts_.client_id : session_id_;
  txn_id_ = opts_.txn_id != 0 ? opts_.txn_id
                              : g_next_txn_id.fetch_add(1,
                                                        std::memory_order_relaxed);
}

Session::~Session() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    drained_cv_.wait(lk, [this] {
      return in_flight_.load(std::memory_order_acquire) == 0;
    });
  }
  // With every query drained, an open scope's pins have no reader left;
  // close it so they cannot outlive the session (a held pin would block
  // index checkpoints/destruction forever).
  std::lock_guard<std::mutex> lk(scope_mu_);
  if (scope_ != nullptr) scope_->Close();
}

uint32_t Session::NextSessionId() {
  return g_next_session_id.fetch_add(1, std::memory_order_relaxed);
}

std::unique_ptr<Session> Session::OnIndex(AdaptiveIndex* index,
                                          ThreadPool* pool,
                                          SessionOptions opts) {
  return std::unique_ptr<Session>(
      new Session(nullptr, index, pool, std::move(opts), NextSessionId()));
}

QueryContext Session::MakeContext() const {
  QueryContext ctx;
  ctx.client_id = client_id_;
  ctx.txn_id = txn_id_;
  ctx.session_id = session_id_;
  ctx.snapshot_reads = opts_.snapshot_reads;
  {
    std::lock_guard<std::mutex> lk(scope_mu_);
    ctx.snapshot_scope = scope_;
  }
  return ctx;
}

Status Session::BeginSnapshot() {
  std::lock_guard<std::mutex> lk(scope_mu_);
  if (scope_ != nullptr) {
    return Status::InvalidArgument(
        "a snapshot scope is already open (scopes do not nest)");
  }
  scope_ = std::make_shared<SnapshotScope>();
  return Status::OK();
}

Status Session::EndSnapshot() {
  std::shared_ptr<SnapshotScope> scope;
  {
    std::lock_guard<std::mutex> lk(scope_mu_);
    if (scope_ == nullptr) {
      return Status::InvalidArgument("no snapshot scope is open");
    }
    scope.swap(scope_);
  }
  // Close outside scope_mu_: releasing the last pin may unblock a draining
  // checkpoint, and new contexts must already see no scope.
  scope->Close();
  return Status::OK();
}

bool Session::InSnapshotScope() const {
  std::lock_guard<std::mutex> lk(scope_mu_);
  return scope_ != nullptr;
}

size_t Session::queries_submitted() const {
  return submitted_.load(std::memory_order_relaxed);
}

size_t Session::in_flight() const {
  return in_flight_.load(std::memory_order_acquire);
}

Status Session::ExecuteWithContext(const Query& query, QueryContext* ctx,
                                   QueryResult* result) {
  // kSumOther validates its second column before any index is resolved, so
  // a mistyped statement cannot register (and leak) a catalog entry. On
  // direct-index sessions there is no catalog; the descriptor goes straight
  // to the bound index, which answers natively when it holds the second
  // column (sideways cracker maps) and NotSupported otherwise.
  const Column* agg = nullptr;
  if (query.kind == QueryKind::kSumOther && db_ != nullptr) {
    Table* t = db_->GetTable(query.table);
    if (t == nullptr) {
      return Status::NotFound("no such table: " + query.table);
    }
    agg = t->GetColumn(query.agg_column);
    if (agg == nullptr) {
      return Status::NotFound("no such column: " + query.agg_column);
    }
  }
  AdaptiveIndex* index = ResolveIndex(query.table, query.column);
  if (index == nullptr) {
    return Status::NotFound("no such table/column: " + query.table + "." +
                            query.column);
  }
  // The unified entry point: every single-column kind is one virtual call
  // into the index. The two-column plan (kSumOther) is the sole exception —
  // it composes the index's rowID fragment with a positional fetch of the
  // second column, operator-at-a-time style, unless the index answers it
  // natively (a sideways cracker map would).
  if (query.kind == QueryKind::kSumOther && agg != nullptr) {
    result->Reset(query.kind);
    RangeQuery rq{query.range.lo, query.range.hi, QueryType::kSum};
    return FetchSum(index, *agg, rq, ctx, &result->sum);
  }
  return index->Execute(query, ctx, result);
}

AdaptiveIndex* Session::ResolveIndex(const std::string& table,
                                     const std::string& column) {
  // The bound index for direct sessions, a catalog lookup under the pinned
  // config otherwise — memoized per (table, column) so the hot path skips
  // the config-key construction and the catalog latch after the first
  // query; the cached shared_ptr keeps the index alive across a concurrent
  // DropIndex.
  if (direct_ != nullptr) return direct_;
  if (db_ == nullptr) return nullptr;
  const std::string cache_key = table + "." + column;
  {
    std::lock_guard<std::mutex> lk(resolve_mu_);
    auto it = resolved_.find(cache_key);
    if (it != resolved_.end()) return it->second.get();
  }
  std::shared_ptr<AdaptiveIndex> pinned =
      db_->GetOrCreateIndex(table, column, opts_.config);
  if (pinned == nullptr) return nullptr;
  std::lock_guard<std::mutex> lk(resolve_mu_);
  auto it = resolved_.emplace(cache_key, std::move(pinned)).first;
  return it->second.get();
}

const LatchStats* Session::IndexLatchStats(const std::string& table,
                                           const std::string& column) {
  AdaptiveIndex* index = ResolveIndex(table, column);
  return index != nullptr ? &index->latch_stats() : nullptr;
}

QueryTicket Session::Submit(Query query) {
  auto state = std::make_shared<QueryTicket::State>();
  // Database sessions draw the shared pool on first use (Database::pool()
  // is itself a lazy thread-safe singleton), so purely synchronous sessions
  // never spin up worker threads.
  ThreadPool* pool = db_ != nullptr ? db_->pool() : pool_;
  if (pool == nullptr) {
    // Direct session opened without a pool: fail the ticket, don't crash.
    std::lock_guard<std::mutex> lk(state->mu);
    state->status =
        Status::InvalidArgument("direct session has no thread pool");
    state->done = true;
    return QueryTicket(state);
  }
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  pool->Submit([this, state, query = std::move(query)]() {
    QueryContext ctx = MakeContext();
    ctx.stats.start_ns = NowNanos();
    Status s = ExecuteWithContext(query, &ctx, &state->result);
    ctx.stats.finish_ns = NowNanos();
    ctx.stats.response_ns = ctx.stats.finish_ns - ctx.stats.start_ns;
    {
      std::lock_guard<std::mutex> lk(state->mu);
      state->status = std::move(s);
      state->stats = ctx.stats;
      state->done = true;
    }
    state->cv.notify_all();
    // The decrement MUST happen under mu_: a ticket waiter woken by the
    // notify above may destroy the session the moment the count reaches
    // zero, and the destructor's drain-wait re-acquires mu_ — so the
    // session cannot be freed before this critical section ends, after
    // which the worker touches nothing of the session.
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        drained_cv_.notify_all();
      }
    }
  });
  return QueryTicket(state);
}

std::vector<QueryTicket> Session::SubmitBatch(std::vector<Query> batch) {
  std::vector<QueryTicket> tickets;
  tickets.reserve(batch.size());
  for (auto& q : batch) tickets.push_back(Submit(std::move(q)));
  return tickets;
}

Status Session::Execute(const Query& query, QueryResult* result,
                        QueryStats* stats) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  QueryContext ctx = MakeContext();
  ctx.stats.start_ns = NowNanos();
  Status s = ExecuteWithContext(query, &ctx, result);
  ctx.stats.finish_ns = NowNanos();
  ctx.stats.response_ns = ctx.stats.finish_ns - ctx.stats.start_ns;
  if (stats != nullptr) *stats = ctx.stats;
  return s;
}

Status Session::Count(const std::string& table, const std::string& column,
                      Value lo, Value hi, uint64_t* out, QueryStats* stats) {
  QueryResult result;
  Status s = Execute(Query::Count(table, column, lo, hi), &result, stats);
  if (s.ok()) *out = result.count;
  return s;
}

Status Session::Sum(const std::string& table, const std::string& column,
                    Value lo, Value hi, int64_t* out, QueryStats* stats) {
  QueryResult result;
  Status s = Execute(Query::Sum(table, column, lo, hi), &result, stats);
  if (s.ok()) *out = result.sum;
  return s;
}

Status Session::SumOther(const std::string& table, const std::string& column,
                         const std::string& agg_column, Value lo, Value hi,
                         int64_t* out, QueryStats* stats) {
  QueryResult result;
  Status s = Execute(Query::SumOther(table, column, agg_column, lo, hi),
                     &result, stats);
  if (s.ok()) *out = result.sum;
  return s;
}

Status Session::RowIds(const std::string& table, const std::string& column,
                       Value lo, Value hi, std::vector<RowId>* out,
                       QueryStats* stats) {
  QueryResult result;
  Status s = Execute(Query::RowIds(table, column, lo, hi), &result, stats);
  if (s.ok()) *out = std::move(result.row_ids);
  return s;
}

Status Session::MinMax(const std::string& table, const std::string& column,
                       Value lo, Value hi, Value* min, Value* max,
                       bool* found, QueryStats* stats) {
  QueryResult result;
  Status s = Execute(Query::MinMax(table, column, lo, hi), &result, stats);
  if (!s.ok()) return s;
  *found = result.has_minmax;
  if (result.has_minmax) {
    *min = result.min_value;
    *max = result.max_value;
  }
  return s;
}

Status Session::Insert(UpdatableIndex* index, Value v, RowId* row_id) {
  QueryContext ctx = MakeContext();
  return index->Insert(v, &ctx, row_id);
}

Status Session::Delete(UpdatableIndex* index, Value v, RowId row_id) {
  QueryContext ctx = MakeContext();
  return index->Delete(v, row_id, &ctx);
}

}  // namespace adaptidx
