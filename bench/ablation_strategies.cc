/// \file Ablation of the Section 7 refinement strategies: standard vs lazy
/// (forgo refinement under contention) vs active (sort small pieces) vs
/// dynamic (switch on observed conflict rate), plus group cracking and
/// stochastic cracking, all under concurrent clients.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/cracking_index.h"

namespace adaptidx {
namespace bench {
namespace {

struct Variant {
  const char* name;
  CrackingOptions opts;
};

void Run() {
  const size_t rows = EnvSize("AI_BENCH_ROWS", 2000000);
  const size_t num_queries = EnvSize("AI_BENCH_QUERIES", 1024);
  const size_t clients = EnvSize("AI_BENCH_ABLATION_CLIENTS", 8);
  PrintHeader("Ablation: refinement strategies (Section 7)",
              "rows=" + std::to_string(rows) +
                  " queries=" + std::to_string(num_queries) +
                  " selectivity=0.5% type=Q2(sum) clients=" +
                  std::to_string(clients));

  Column column = MakeUniqueRandomColumn(rows);
  WorkloadGenerator gen(0, static_cast<Value>(rows));
  WorkloadOptions wopts;
  wopts.num_queries = num_queries;
  wopts.selectivity = 0.005;
  wopts.type = QueryType::kSum;
  wopts.seed = 19;
  const auto queries = gen.Generate(wopts);

  Variant variants[6];
  variants[0].name = "standard";
  variants[1].name = "lazy";
  variants[1].opts.strategy = RefinementStrategy::kLazy;
  variants[2].name = "active";
  variants[2].opts.strategy = RefinementStrategy::kActive;
  variants[2].opts.sort_piece_threshold = 4096;
  variants[3].name = "dynamic";
  variants[3].opts.strategy = RefinementStrategy::kDynamic;
  variants[3].opts.sort_piece_threshold = 4096;
  variants[4].name = "group-crack";
  variants[4].opts.group_crack = true;
  variants[5].name = "stochastic";
  variants[5].opts.crack_policy = CrackPolicy::kDDR;

  std::printf("\n%-12s %12s %12s %12s %12s %12s\n", "strategy", "total (s)",
              "wait (ms)", "conflicts", "cracks", "skipped");
  for (const Variant& v : variants) {
    IndexConfig config;
    config.method = IndexMethod::kCrack;
    config.cracking = v.opts;
    // batch_size 1: wait-dynamics comparison under the paper's
    // synchronous clients (see fig15).
    RunResult r = RunWorkload(column, config, queries, clients,
                              /*record_per_query=*/false,
                              /*batch_size=*/1);
    std::printf("%-12s %12.3f %12.3f %12llu %12llu %12llu\n", v.name,
                r.total_seconds,
                static_cast<double>(r.total_wait_ns) / 1e6,
                static_cast<unsigned long long>(r.total_conflicts),
                static_cast<unsigned long long>(r.total_cracks),
                static_cast<unsigned long long>(r.refinements_skipped));
  }
  std::printf(
      "\nReading guide: lazy trades cracks for skipped refinements (lower "
      "write contention, slower convergence); active/group-crack/stochastic "
      "invest extra refinement early to shrink later conflicts; dynamic "
      "moves between the two based on the observed conflict rate.\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptidx

int main() {
  adaptidx::bench::Run();
  return 0;
}
