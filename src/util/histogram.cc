#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace adaptidx {

Histogram::Histogram()
    : count_(0),
      min_(std::numeric_limits<int64_t>::max()),
      max_(0),
      sum_(0.0),
      buckets_(kNumBuckets, 0) {}

size_t Histogram::BucketFor(int64_t value) {
  // Zero (and any clamped negative) gets the first bucket explicitly:
  // __builtin_clzll has undefined behavior for an argument of 0, so it must
  // never see the zero bucket.
  if (value <= 0) return 0;
  // Two buckets per power of two: bucket = 2*log2(v) + (second half? 1 : 0).
  int msb = 63 - __builtin_clzll(static_cast<uint64_t>(value));
  size_t b = static_cast<size_t>(2 * msb);
  if (msb > 0 && (static_cast<uint64_t>(value) & (1ULL << (msb - 1)))) {
    b += 1;
  }
  return std::min(b, kNumBuckets - 1);
}

int64_t Histogram::BucketLimit(size_t b) {
  // Inverse of BucketFor: limit of bucket 2k is 2^k * 1.5, of 2k+1 is 2^(k+1).
  size_t k = b / 2;
  if (k >= 62) return std::numeric_limits<int64_t>::max();
  int64_t base = static_cast<int64_t>(1) << k;
  if (b % 2 == 0) return base + base / 2;
  return base * 2;
}

void Histogram::Add(int64_t value) {
  if (value < 0) value = 0;
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value);
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  count_ += other.count_;
  if (other.count_ > 0) {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

void Histogram::Clear() {
  count_ = 0;
  min_ = std::numeric_limits<int64_t>::max();
  max_ = 0;
  sum_ = 0.0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

double Histogram::Mean() const {
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double threshold = static_cast<double>(count_) * (p / 100.0);
  double seen = 0.0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    double next = seen + static_cast<double>(buckets_[b]);
    if (next >= threshold) {
      // Interpolate within the bucket.
      int64_t left = b == 0 ? 0 : BucketLimit(b - 1);
      int64_t right = BucketLimit(b);
      double frac =
          buckets_[b] == 0 ? 0.0 : (threshold - seen) / buckets_[b];
      double v = static_cast<double>(left) +
                 frac * static_cast<double>(right - left);
      return std::clamp(v, static_cast<double>(min()),
                        static_cast<double>(max_));
    }
    seen = next;
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString(const std::string& unit) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f%s p50=%.1f%s p95=%.1f%s p99=%.1f%s "
                "max=%lld%s",
                static_cast<unsigned long long>(count_), Mean(), unit.c_str(),
                Percentile(50), unit.c_str(), Percentile(95), unit.c_str(),
                Percentile(99), unit.c_str(),
                static_cast<long long>(max_), unit.c_str());
  return std::string(buf);
}

}  // namespace adaptidx
