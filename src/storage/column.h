#ifndef ADAPTIDX_STORAGE_COLUMN_H_
#define ADAPTIDX_STORAGE_COLUMN_H_

#include <string>
#include <vector>

#include "storage/types.h"
#include "util/rng.h"

namespace adaptidx {

/// \brief A single attribute stored as a dense in-memory array
/// (Section 5.1: "every attribute of a table is stored separately as a dense
/// array", identical representation in memory and on disk).
///
/// The column itself is immutable once loaded in the read-only-query setting
/// of the paper; adaptive indexes keep their own auxiliary copy of the values
/// (the cracker array) and never mutate the base column.
class Column {
 public:
  Column() = default;
  explicit Column(std::string name) : name_(std::move(name)) {}
  Column(std::string name, std::vector<Value> values)
      : name_(std::move(name)), values_(std::move(values)) {}

  const std::string& name() const { return name_; }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// \brief Positional access; positions are the tuple order shared by all
  /// columns of a table.
  Value operator[](Position pos) const { return values_[pos]; }

  const std::vector<Value>& values() const { return values_; }
  const Value* data() const { return values_.data(); }

  /// \brief Appends a value during load; not thread-safe (loads are
  /// single-threaded, queries start afterwards).
  void Append(Value v) { values_.push_back(v); }

  void Reserve(size_t n) { values_.reserve(n); }

  /// \brief Builds a column of `n` unique values 0..n-1 in random order —
  /// the paper's data set ("populated with unique randomly distributed
  /// integers").
  static Column UniqueRandom(std::string name, size_t n, uint64_t seed);

  /// \brief Builds a column of `n` uniformly random (possibly duplicated)
  /// values in [lo, hi).
  static Column UniformRandom(std::string name, size_t n, Value lo, Value hi,
                              uint64_t seed);

  /// \brief Builds a column of `n` sequential values 0..n-1 (fully sorted);
  /// useful for tests and adversarial benchmarks.
  static Column Sequential(std::string name, size_t n);

 private:
  std::string name_;
  std::vector<Value> values_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_STORAGE_COLUMN_H_
