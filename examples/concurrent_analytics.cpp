/// \file Concurrent analytics: many dashboard clients fire range aggregates
/// at the same unindexed column at once, each through its own `Session`.
/// Demonstrates the paper's central result — adaptive indexing under
/// concurrency *benefits* from the extra queries instead of suffering from
/// them, and latch waits decay as the index refines.
///
///   $ ./build/examples/concurrent_analytics [clients] [queries]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/cracking_index.h"
#include "engine/database.h"
#include "util/stopwatch.h"

using namespace adaptidx;

namespace {

struct WaveResult {
  double seconds = 0;
  double qps = 0;
  int64_t wait_ns = 0;
  uint64_t conflicts = 0;
};

/// One dashboard refresh: every client session submits its whole slice of
/// the workload as one asynchronous batch, then all answers are awaited —
/// "the time perceived by the last client to receive all answers".
WaveResult RunWave(std::vector<std::unique_ptr<Session>>& sessions,
                   const std::vector<RangeQuery>& workload) {
  const size_t clients = sessions.size();
  const auto slices = SplitStreams(workload.size(), clients);
  StopWatch wall;
  std::vector<std::vector<QueryTicket>> tickets(slices.size());
  for (size_t c = 0; c < slices.size(); ++c) {
    std::vector<Query> batch;
    batch.reserve(slices[c].second - slices[c].first);
    for (size_t i = slices[c].first; i < slices[c].second; ++i) {
      batch.push_back(Query::From("R", "A", workload[i]));
    }
    tickets[c] = sessions[c]->SubmitBatch(std::move(batch));
  }
  WaveResult r;
  for (auto& client_tickets : tickets) {
    for (auto& t : client_tickets) {
      r.wait_ns += t.stats().wait_ns;  // stats() waits for completion
      r.conflicts += t.stats().conflicts;
    }
  }
  r.seconds = wall.ElapsedSeconds();
  r.qps = r.seconds > 0 ? static_cast<double>(workload.size()) / r.seconds : 0;
  return r;
}

void PrintPhase(const char* label, const WaveResult& r) {
  std::printf("%-26s %8.3f s %10.1f q/s %10.2f ms wait %8llu conflicts\n",
              label, r.seconds, r.qps,
              static_cast<double>(r.wait_ns) / 1e6,
              static_cast<unsigned long long>(r.conflicts));
}

std::vector<std::unique_ptr<Session>> OpenSessions(Database* db,
                                                   size_t clients,
                                                   const IndexConfig& config) {
  std::vector<std::unique_ptr<Session>> sessions;
  sessions.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    SessionOptions sopts;
    sopts.config = config;
    sopts.client_id = static_cast<uint32_t>(c + 1);
    sessions.push_back(db->OpenSession(std::move(sopts)));
  }
  return sessions;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t clients = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const size_t queries = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1024;
  constexpr size_t kRows = 2'000'000;

  std::printf("Concurrent analytics demo: %zu client sessions, %zu queries, "
              "%zu-row column\n\n",
              clients, queries, kRows);
  Database db;
  std::vector<Column> columns;
  columns.push_back(Column::UniqueRandom("A", kRows, 7));
  if (Status s = db.CreateTable("R", std::move(columns)); !s.ok()) {
    std::fprintf(stderr, "CreateTable failed: %s\n", s.ToString().c_str());
    return 1;
  }

  WorkloadGenerator gen(0, static_cast<Value>(kRows));
  WorkloadOptions wopts;
  wopts.num_queries = queries;
  wopts.selectivity = 0.001;
  wopts.type = QueryType::kSum;
  wopts.seed = 99;
  const auto workload = gen.Generate(wopts);
  wopts.seed = 100;  // the refresh asks new questions over the same data
  const auto refresh = gen.Generate(wopts);

  // Phase 1: cold start — the first wave of client sessions hits a column
  // with no index at all. The very first query builds the cracker array
  // while everyone else queues (the expensive moment of Figure 15), after
  // which piece latches let the wave spread across disjoint pieces.
  IndexConfig config;
  config.method = IndexMethod::kCrack;
  auto sessions = OpenSessions(&db, clients, config);

  std::printf("phase 1: cold column, piece latches\n");
  PrintPhase("  wave 1 (cold)", RunWave(sessions, workload));

  // Phase 2: the dashboard refreshes with *new* queries. The index the
  // first wave built as a side effect now pays off: latch waits and
  // response times collapse.
  PrintPhase("  wave 2 (warmed by w1)", RunWave(sessions, refresh));

  auto index = db.GetOrCreateIndex("R", "A", config);
  auto* crack = static_cast<CrackingIndex*>(index.get());
  std::printf("  index state: %zu cracks, %zu pieces (built entirely as a "
              "side effect)\n\n",
              crack->NumCracks(), crack->NumPieces());

  // Phase 3: partitioned parallel cracking. The same method under
  // `partitions = 4` is a distinct catalog entry: the column splits into
  // four value-range shards, each an independent cracker with its own
  // latches, so clients working disjoint ranges never meet and a single
  // wide query fans its fragments across cores.
  std::printf("phase 3: partitioned cracking (P=4), fresh shards\n");
  IndexConfig partitioned;
  partitioned.method = IndexMethod::kCrack;
  partitioned.partitions = 4;
  auto part_sessions = OpenSessions(&db, clients, partitioned);
  PrintPhase("  wave 1 (cold)", RunWave(part_sessions, workload));
  PrintPhase("  wave 2 (warmed)", RunWave(part_sessions, refresh));

  // Contrast: the same two waves under a single column-grain latch. The
  // coarse config is a distinct catalog entry on the same column (the
  // configs differ in ConcurrencyMode), so both indexes coexist.
  std::printf("\ncontrast: same workload, column latch\n");
  IndexConfig coarse;
  coarse.method = IndexMethod::kCrack;
  coarse.cracking.mode = ConcurrencyMode::kColumnLatch;
  coarse.cracking.name = "crack-column";
  auto coarse_sessions = OpenSessions(&db, clients, coarse);
  PrintPhase("  wave 1 (cold)", RunWave(coarse_sessions, workload));
  PrintPhase("  wave 2 (warmed)", RunWave(coarse_sessions, refresh));

  std::printf(
      "\nTakeaways: (1) wave 2 is far cheaper than wave 1 — the read-only\n"
      "dashboard built its own index; (2) piece latches accumulate less\n"
      "wait time than the column latch under identical load; (3) with\n"
      "partitioned shards, disjoint-range clients stop conflicting at all\n"
      "— on a multi-core machine the partitioned waves accumulate the\n"
      "least wait time of the three configurations.\n");
  return 0;
}
