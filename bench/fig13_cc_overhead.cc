/// \file Reproduces Figure 13: the administrative overhead of concurrency
/// control in adaptive indexing. 1024 sum queries run sequentially through
/// one client for every ConcurrencyMode, with kNone (all latching machinery
/// compiled out of the path) as the baseline. Sequential execution means the
/// only difference is concurrency-control administration; the paper
/// measures < 1% for the latched modes, and the optimistic mode must cost
/// at most half of the piece-latch mode (its reads replace two mutex
/// round-trips per piece with two atomic loads and a fence).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/cracking_index.h"
#include "engine/operators.h"
#include "util/stopwatch.h"

namespace adaptidx {
namespace bench {
namespace {

/// Inline sequential execution (no driver, no pool): the measured delta must
/// be latch administration alone, so the async submission machinery — whose
/// handoffs dwarf a sub-microsecond latch acquire — stays out of the loop.
double RunOnce(const Column& column, const std::vector<RangeQuery>& queries,
               ConcurrencyMode mode) {
  IndexConfig config;
  config.method = IndexMethod::kCrack;
  config.cracking.mode = mode;
  auto index = MakeIndex(&column, config);
  StopWatch sw;
  for (const auto& q : queries) {
    QueryContext ctx;
    QueryResult result;
    (void)ExecuteQuery(index.get(), q, &ctx, &result);
  }
  return sw.ElapsedSeconds();
}

/// Returns true when the optimistic acceptance criterion held.
bool Run() {
  const size_t rows = EnvSize("AI_BENCH_ROWS", 4000000);
  const size_t num_queries = EnvSize("AI_BENCH_QUERIES", 1024);
  const int reps = static_cast<int>(EnvSize("AI_BENCH_FIG13_REPS", 3));
  PrintHeader("Figure 13: concurrency control overhead of adaptive indexing",
              "rows=" + std::to_string(rows) +
                  " queries=" + std::to_string(num_queries) +
                  " selectivity=0.01% type=Q2(sum) clients=1 (sequential), "
                  "best of " + std::to_string(reps));

  Column column = MakeUniqueRandomColumn(rows);
  WorkloadGenerator gen(0, static_cast<Value>(rows));
  WorkloadOptions wopts;
  wopts.num_queries = num_queries;
  wopts.selectivity = 0.0001;
  wopts.type = QueryType::kSum;
  wopts.seed = 7;
  const auto queries = gen.Generate(wopts);

  const ConcurrencyMode modes[] = {
      ConcurrencyMode::kNone, ConcurrencyMode::kColumnLatch,
      ConcurrencyMode::kPieceLatch, ConcurrencyMode::kOptimistic,
      ConcurrencyMode::kAdaptive};
  constexpr size_t kNumModes = sizeof(modes) / sizeof(modes[0]);
  // Interleave repetitions round-robin across the modes (mode0 rep0, mode1
  // rep0, ..., mode0 rep1, ...) so slow machine drift — thermal, noisy
  // co-tenants — biases every mode equally instead of penalizing whichever
  // mode happens to run last; best-of per mode then compares like with
  // like. The admin deltas being measured are smaller than the drift on a
  // shared VM, so this matters more than it looks.
  std::vector<double> secs(kNumModes, 1e100);
  for (int rep = 0; rep < reps; ++rep) {
    for (size_t i = 0; i < kNumModes; ++i) {
      secs[i] = std::min(secs[i], RunOnce(column, queries, modes[i]));
    }
  }
  const double baseline = secs[0];  // kNone: all machinery disabled

  std::printf("\nTotal time for %zu queries, sequential execution (secs)\n",
              num_queries);
  std::printf("%-16s %12s %12s\n", "mode", "total_secs", "overhead");
  std::vector<double> overhead_pct;
  for (size_t i = 0; i < secs.size(); ++i) {
    const double pct =
        baseline > 0 ? (secs[i] - baseline) / baseline * 100.0 : 0.0;
    overhead_pct.push_back(pct);
    std::printf("%-16s %12.4f %11.2f%%\n", ToString(modes[i]).c_str(),
                secs[i], pct);
  }

  // Look the two acceptance modes up by value, not by position, so editing
  // the sweep order cannot silently re-point the ratio at the wrong modes.
  auto pct_of = [&](ConcurrencyMode m) {
    for (size_t i = 0; i < kNumModes; ++i) {
      if (modes[i] == m) return overhead_pct[i];
    }
    return 0.0;
  };
  const double piece_pct = pct_of(ConcurrencyMode::kPieceLatch);
  const double opt_pct = pct_of(ConcurrencyMode::kOptimistic);
  // Acceptance: the optimistic read path must cost at most half the
  // piece-latch administration. Sub-percent overheads drown in timer noise
  // on shared VMs/CI runners — even with the interleaved best-of above,
  // per-mode overheads wobble by a percentage point or two run to run at
  // smoke scale — so an absolute floor of 2.5 percentage points also
  // passes. At that magnitude the mode is within noise of the paper's
  // "< 1%" target and the ratio is meaningless; the floor is a noise
  // guard, not a loophole — a genuine regression (the read path re-growing
  // per-piece mutex round-trips) shows up at paper scale
  // (AI_BENCH_ROWS=100000000), where the signal clears the floor.
  const bool opt_le_half_piece = opt_pct <= 0.5 * piece_pct || opt_pct <= 2.5;
  std::printf(
      "\npaper-shape check: piece-latch overhead below 5%% (paper reports "
      "<1%% at 100M rows; smaller columns inflate the relative cost): %s\n",
      piece_pct < 5.0 ? "yes" : "NO");
  std::printf(
      "optimistic admin overhead <= 0.5x piece-latch (or below the 2.5%% "
      "noise floor): %s\n",
      opt_le_half_piece ? "yes" : "NO");

  const char* json_env = std::getenv("AI_BENCH_CC_OVERHEAD_JSON");
  const std::string json_path = json_env != nullptr && *json_env != '\0'
                                    ? json_env
                                    : "BENCH_cc_overhead.json";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"fig13_cc_overhead\",\n"
               "  \"rows\": %zu,\n  \"queries\": %zu,\n"
               "  \"clients\": 1,\n  \"reps\": %d,\n  \"results\": [\n",
               rows, num_queries, reps);
  for (size_t i = 0; i < secs.size(); ++i) {
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"total_secs\": %.6f, "
                 "\"overhead_pct\": %.4f}%s\n",
                 ToString(modes[i]).c_str(), secs[i], overhead_pct[i],
                 i + 1 < secs.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"piece_overhead_pct\": %.4f,\n"
               "  \"optimistic_overhead_pct\": %.4f,\n"
               "  \"optimistic_le_half_piece\": %s\n}\n",
               piece_pct, opt_pct, opt_le_half_piece ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return opt_le_half_piece;
}

}  // namespace
}  // namespace bench
}  // namespace adaptidx

int main() {
  // Non-zero exit enforces the acceptance criterion in the CI bench-smoke
  // step; the JSON records the raw numbers either way.
  return adaptidx::bench::Run() ? 0 : 1;
}
