#include "storage/catalog.h"

#include <functional>

namespace adaptidx {

Status Catalog::AddTable(std::unique_ptr<Table> table) {
  std::lock_guard<std::mutex> guard(mu_);
  const std::string& name = table->name();
  if (tables_.count(name) > 0) {
    return Status::InvalidArgument("duplicate table: " + name);
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

Table* Catalog::GetTable(const std::string& name) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::shared_ptr<void> Catalog::GetOrCreateIndexEntry(
    const std::string& key,
    const std::function<std::shared_ptr<void>()>& factory) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = indexes_.find(key);
  if (it != indexes_.end()) return it->second;
  auto entry = factory();
  indexes_.emplace(key, entry);
  return entry;
}

std::shared_ptr<void> Catalog::GetIndexEntry(const std::string& key) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = indexes_.find(key);
  return it == indexes_.end() ? nullptr : it->second;
}

bool Catalog::DropIndexEntry(const std::string& key) {
  std::lock_guard<std::mutex> guard(mu_);
  return indexes_.erase(key) > 0;
}

size_t Catalog::num_tables() const {
  std::lock_guard<std::mutex> guard(mu_);
  return tables_.size();
}

size_t Catalog::num_indexes() const {
  std::lock_guard<std::mutex> guard(mu_);
  return indexes_.size();
}

}  // namespace adaptidx
