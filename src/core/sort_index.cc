#include "core/sort_index.h"

#include <algorithm>
#include <numeric>

#include "util/stopwatch.h"

namespace adaptidx {

void SortIndex::EnsureBuilt(QueryContext* ctx) {
  if (built_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> guard(build_mu_);
  if (built_.load(std::memory_order_relaxed)) return;
  ScopedTimer init_timer(&ctx->stats.init_ns);
  const size_t n = column_->size();
  std::vector<RowId> perm(n);
  std::iota(perm.begin(), perm.end(), static_cast<RowId>(0));
  const Value* data = column_->data();
  std::sort(perm.begin(), perm.end(),
            [data](RowId a, RowId b) { return data[a] < data[b]; });
  sorted_values_.resize(n);
  sorted_row_ids_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    sorted_row_ids_[i] = perm[i];
    sorted_values_[i] = data[perm[i]];
  }
  built_.store(true, std::memory_order_release);
}

size_t SortIndex::LowerBound(Value v) const {
  return static_cast<size_t>(
      std::lower_bound(sorted_values_.begin(), sorted_values_.end(), v) -
      sorted_values_.begin());
}

Status SortIndex::ExecuteImpl(const Query& query, QueryContext* ctx,
                              QueryResult* result) {
  if (query.kind == QueryKind::kSumOther) {
    // Rejected before EnsureBuilt: an unanswerable kind must not trigger
    // the full sorted-copy build.
    return Status::NotSupported("sort holds no second column");
  }
  EnsureBuilt(ctx);
  ScopedTimer read_timer(&ctx->stats.read_ns);
  const size_t lo = LowerBound(query.range.lo);
  const size_t hi = LowerBound(query.range.hi);
  switch (query.kind) {
    case QueryKind::kCount:
      result->count = hi - lo;
      return Status::OK();
    case QueryKind::kSum: {
      int64_t s = 0;
      for (size_t i = lo; i < hi; ++i) s += sorted_values_[i];
      result->sum = s;
      return Status::OK();
    }
    case QueryKind::kRowIds:
      result->row_ids.assign(
          sorted_row_ids_.begin() + static_cast<long>(lo),
          sorted_row_ids_.begin() + static_cast<long>(hi));
      return Status::OK();
    case QueryKind::kMinMax:
      if (lo < hi) {
        // Binary search hands min/max over for free: the qualifying stretch
        // of a sorted array starts at its minimum and ends at its maximum.
        result->min_value = sorted_values_[lo];
        result->max_value = sorted_values_[hi - 1];
        result->has_minmax = true;
      }
      return Status::OK();
    case QueryKind::kSumOther:
      break;  // rejected above, before the build
  }
  return Status::InvalidArgument("unknown query kind");
}

}  // namespace adaptidx
