/// \file Reproduces Figure 13: the administrative overhead of concurrency
/// control in adaptive indexing. 1024 sum queries run sequentially through
/// one client, once with the latching machinery enabled (piece latches) and
/// once with all concurrency control disabled. Sequential execution means
/// the only difference is latch management cost; the paper measures < 1%.

#include <cstdio>

#include "bench_common.h"
#include "core/cracking_index.h"
#include "engine/operators.h"
#include "util/stopwatch.h"

namespace adaptidx {
namespace bench {
namespace {

/// Inline sequential execution (no driver, no pool): the measured delta must
/// be latch administration alone, so the async submission machinery — whose
/// handoffs dwarf a sub-microsecond latch acquire — stays out of the loop.
double RunOnce(const Column& column, const std::vector<RangeQuery>& queries,
               ConcurrencyMode mode, int repetitions) {
  double best = 1e100;
  for (int rep = 0; rep < repetitions; ++rep) {
    IndexConfig config;
    config.method = IndexMethod::kCrack;
    config.cracking.mode = mode;
    auto index = MakeIndex(&column, config);
    StopWatch sw;
    for (const auto& q : queries) {
      QueryContext ctx;
      QueryResult result;
      (void)ExecuteQuery(index.get(), q, &ctx, &result);
    }
    best = std::min(best, sw.ElapsedSeconds());
  }
  return best;
}

void Run() {
  const size_t rows = EnvSize("AI_BENCH_ROWS", 4000000);
  const size_t num_queries = EnvSize("AI_BENCH_QUERIES", 1024);
  const int reps = static_cast<int>(EnvSize("AI_BENCH_FIG13_REPS", 3));
  PrintHeader("Figure 13: concurrency control overhead of adaptive indexing",
              "rows=" + std::to_string(rows) +
                  " queries=" + std::to_string(num_queries) +
                  " selectivity=0.01% type=Q2(sum) clients=1 (sequential), "
                  "best of " + std::to_string(reps));

  Column column = MakeUniqueRandomColumn(rows);
  WorkloadGenerator gen(0, static_cast<Value>(rows));
  WorkloadOptions wopts;
  wopts.num_queries = num_queries;
  wopts.selectivity = 0.0001;
  wopts.type = QueryType::kSum;
  wopts.seed = 7;
  const auto queries = gen.Generate(wopts);

  const double enabled =
      RunOnce(column, queries, ConcurrencyMode::kPieceLatch, reps);
  const double disabled =
      RunOnce(column, queries, ConcurrencyMode::kNone, reps);

  std::printf("\nTotal time for %zu queries, sequential execution (secs)\n",
              num_queries);
  std::printf("%-28s %12.4f\n", "concurrency control ENABLED", enabled);
  std::printf("%-28s %12.4f\n", "concurrency control DISABLED", disabled);
  const double overhead_pct = (enabled - disabled) / disabled * 100.0;
  std::printf("%-28s %11.2f%%\n", "administrative overhead", overhead_pct);
  std::printf(
      "\npaper-shape check: overhead below 5%% (paper reports <1%% at 100M "
      "rows; smaller columns inflate the relative cost): %s\n",
      overhead_pct < 5.0 ? "yes" : "NO");
}

}  // namespace
}  // namespace bench
}  // namespace adaptidx

int main() {
  adaptidx::bench::Run();
  return 0;
}
