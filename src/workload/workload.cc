#include "workload/workload.h"

#include <algorithm>

#include "util/rng.h"

namespace adaptidx {

std::string ToString(QueryType type) {
  switch (type) {
    case QueryType::kCount:
      return "count";
    case QueryType::kSum:
      return "sum";
    case QueryType::kMinMax:
      return "min-max";
  }
  return "unknown";
}

std::string ToString(QueryDistribution dist) {
  switch (dist) {
    case QueryDistribution::kUniform:
      return "uniform";
    case QueryDistribution::kSkewed:
      return "skewed";
    case QueryDistribution::kSequential:
      return "sequential";
  }
  return "unknown";
}

std::vector<std::pair<size_t, size_t>> SplitStreams(size_t num_queries,
                                                    size_t num_clients) {
  num_clients = std::max<size_t>(1, std::min(num_clients, num_queries));
  std::vector<std::pair<size_t, size_t>> slices;
  slices.reserve(num_clients);
  const size_t per = num_queries / num_clients;
  const size_t extra = num_queries % num_clients;
  size_t cursor = 0;
  for (size_t c = 0; c < num_clients; ++c) {
    const size_t len = per + (c < extra ? 1 : 0);
    slices.emplace_back(cursor, cursor + len);
    cursor += len;
  }
  return slices;
}

std::vector<RangeQuery> WorkloadGenerator::Generate(
    const WorkloadOptions& opts) const {
  std::vector<RangeQuery> queries;
  queries.reserve(opts.num_queries);
  const int64_t domain = domain_hi_ - domain_lo_;
  if (domain <= 0) return queries;
  int64_t width = static_cast<int64_t>(
      static_cast<double>(domain) * std::clamp(opts.selectivity, 0.0, 1.0));
  width = std::clamp<int64_t>(width, 1, domain);
  const int64_t slack = domain - width;  // room for the lower bound

  Rng rng(opts.seed);
  for (size_t i = 0; i < opts.num_queries; ++i) {
    int64_t offset = 0;
    switch (opts.distribution) {
      case QueryDistribution::kUniform:
        offset = slack == 0 ? 0 : rng.UniformRange(0, slack + 1);
        break;
      case QueryDistribution::kSkewed:
        offset = slack == 0
                     ? 0
                     : static_cast<int64_t>(rng.Skewed(
                           static_cast<uint64_t>(slack + 1), opts.skew));
        break;
      case QueryDistribution::kSequential: {
        // Slide the window left to right, wrapping around.
        if (slack == 0) {
          offset = 0;
        } else {
          const int64_t steps = static_cast<int64_t>(opts.num_queries);
          offset = static_cast<int64_t>(i) * slack / std::max<int64_t>(1, steps - 1);
        }
        break;
      }
    }
    const Value lo = domain_lo_ + offset;
    queries.push_back(RangeQuery{lo, lo + width, opts.type});
  }
  return queries;
}

}  // namespace adaptidx
