#include <gtest/gtest.h>

#include <vector>

#include "engine/plan.h"
#include "util/rng.h"

namespace adaptidx {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<Column> cols;
    a_ = Column::UniqueRandom("A", kRows, 7);
    Column b("B", {});
    Column c("C", {});
    for (size_t i = 0; i < kRows; ++i) {
      b.Append(static_cast<Value>((i * 13) % 500));
      c.Append(static_cast<Value>(i));
    }
    b_ = b;
    c_ = c;
    cols.push_back(a_);
    cols.push_back(std::move(b));
    cols.push_back(std::move(c));
    ASSERT_TRUE(db_.CreateTable("R", std::move(cols)).ok());
    config_.method = IndexMethod::kCrack;
  }

  /// Row-at-a-time oracle for conjunctive plans.
  template <typename Pred>
  std::vector<RowId> OracleRows(Pred pred) const {
    std::vector<RowId> out;
    for (size_t i = 0; i < kRows; ++i) {
      if (pred(i)) out.push_back(static_cast<RowId>(i));
    }
    return out;
  }

  static constexpr size_t kRows = 5000;
  Database db_;
  Column a_;
  Column b_;
  Column c_;
  IndexConfig config_;
};

TEST_F(PlanTest, SingleSelectCount) {
  QueryContext ctx;
  uint64_t count = 0;
  ASSERT_TRUE(PlanBuilder(&db_, "R")
                  .SelectRange("A", 1000, 2000, config_)
                  .Count(&ctx, &count)
                  .ok());
  EXPECT_EQ(count, 1000u);
}

TEST_F(PlanTest, ConjunctionMatchesOracle) {
  QueryContext ctx;
  std::vector<RowId> ids;
  ASSERT_TRUE(PlanBuilder(&db_, "R")
                  .SelectRange("A", 500, 4000, config_)
                  .FilterRange("B", 100, 300)
                  .RowIds(&ctx, &ids)
                  .ok());
  auto expected = OracleRows([&](size_t i) {
    return a_[i] >= 500 && a_[i] < 4000 && b_[i] >= 100 && b_[i] < 300;
  });
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, expected);
}

TEST_F(PlanTest, TriplePredicateSum) {
  QueryContext ctx;
  int64_t sum = 0;
  ASSERT_TRUE(PlanBuilder(&db_, "R")
                  .SelectRange("A", 0, 4500, config_)
                  .FilterRange("B", 50, 450)
                  .FilterRange("C", 1000, 4000)
                  .Sum("C", &ctx, &sum)
                  .ok());
  int64_t expected = 0;
  for (size_t i = 0; i < kRows; ++i) {
    if (a_[i] >= 0 && a_[i] < 4500 && b_[i] >= 50 && b_[i] < 450 &&
        c_[i] >= 1000 && c_[i] < 4000) {
      expected += c_[i];
    }
  }
  EXPECT_EQ(sum, expected);
}

TEST_F(PlanTest, CollectInCandidateOrder) {
  QueryContext ctx;
  std::vector<Value> values;
  ASSERT_TRUE(PlanBuilder(&db_, "R")
                  .SelectRange("A", 100, 120, config_)
                  .Collect("C", &ctx, &values)
                  .ok());
  EXPECT_EQ(values.size(), 20u);
  // Every collected C value must belong to a row whose A qualifies.
  for (Value v : values) {
    const size_t row = static_cast<size_t>(v);  // C == row index
    EXPECT_GE(a_[row], 100);
    EXPECT_LT(a_[row], 120);
  }
}

TEST_F(PlanTest, SelectCracksAsSideEffect) {
  auto index = db_.GetOrCreateIndex("R", "A", config_);
  auto* crack = static_cast<CrackingIndex*>(index.get());
  const size_t cracks_before = crack->NumCracks();
  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(PlanBuilder(&db_, "R")
                  .SelectRange("A", 2222, 3333, config_)
                  .Count(&ctx, &count)
                  .ok());
  EXPECT_GT(crack->NumCracks(), cracks_before);
}

TEST_F(PlanTest, ErrorsSurfaceAtExecution) {
  QueryContext ctx;
  uint64_t count;
  // No select operator.
  EXPECT_TRUE(PlanBuilder(&db_, "R").Count(&ctx, &count).IsInvalidArgument());
  // Unknown table.
  EXPECT_TRUE(PlanBuilder(&db_, "S")
                  .SelectRange("A", 0, 1, config_)
                  .Count(&ctx, &count)
                  .IsNotFound());
  // Unknown select column.
  EXPECT_TRUE(PlanBuilder(&db_, "R")
                  .SelectRange("Z", 0, 1, config_)
                  .Count(&ctx, &count)
                  .IsNotFound());
  // Unknown filter column.
  EXPECT_TRUE(PlanBuilder(&db_, "R")
                  .SelectRange("A", 0, 1, config_)
                  .FilterRange("Z", 0, 1)
                  .Count(&ctx, &count)
                  .IsNotFound());
  // Double select.
  EXPECT_TRUE(PlanBuilder(&db_, "R")
                  .SelectRange("A", 0, 1, config_)
                  .SelectRange("B", 0, 1, config_)
                  .Count(&ctx, &count)
                  .IsInvalidArgument());
}

TEST_F(PlanTest, EmptySelection) {
  QueryContext ctx;
  int64_t sum = 123;
  ASSERT_TRUE(PlanBuilder(&db_, "R")
                  .SelectRange("A", 100000, 200000, config_)
                  .Sum("C", &ctx, &sum)
                  .ok());
  EXPECT_EQ(sum, 0);
}

TEST_F(PlanTest, WorksOverEveryAccessMethod) {
  for (IndexMethod m :
       {IndexMethod::kScan, IndexMethod::kSort, IndexMethod::kCrack,
        IndexMethod::kAdaptiveMerge, IndexMethod::kHybrid,
        IndexMethod::kBTreeMerge}) {
    IndexConfig config;
    config.method = m;
    config.merge.run_size = 1024;
    config.hybrid.partition_size = 1024;
    config.btree.run_size = 1024;
    QueryContext ctx;
    uint64_t count = 0;
    ASSERT_TRUE(PlanBuilder(&db_, "R")
                    .SelectRange("A", 1000, 1500, config)
                    .FilterRange("B", 0, 250)
                    .Count(&ctx, &count)
                    .ok())
        << ToString(m);
    uint64_t expected = 0;
    for (size_t i = 0; i < kRows; ++i) {
      expected += (a_[i] >= 1000 && a_[i] < 1500 && b_[i] < 250) ? 1 : 0;
    }
    EXPECT_EQ(count, expected) << ToString(m);
  }
}

}  // namespace
}  // namespace adaptidx
