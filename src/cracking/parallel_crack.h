#ifndef ADAPTIDX_CRACKING_PARALLEL_CRACK_H_
#define ADAPTIDX_CRACKING_PARALLEL_CRACK_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "cracking/cracker_array.h"
#include "storage/types.h"

namespace adaptidx {

class ThreadPool;

/// \file
/// Intra-query data-parallel cracking (Alvarez, Schuhknecht, Dittrich,
/// Richter: "Main Memory Adaptive Indexing for Multi-core Systems").
///
/// The expensive cracks are the first-touch ones: the first query of a shard
/// partitions the whole (still monolithic) piece with a single thread while
/// the rest of the machine idles. The parallel crack splits the piece into T
/// contiguous chunks, cracks each chunk independently on the shared thread
/// pool with the existing layout/tier kernels, and then repairs the
/// chunk-local partitions into one global partition with a *swap-based
/// refined merge*: the k-th ">= pivot" element stranded left of the global
/// split position is exchanged with the k-th "< pivot" element stranded at
/// or right of it. No element is copied out of the array; every element
/// moves at most once more than in the sequential crack.
///
/// The final arrangement satisfies exactly the normalized crack contract of
/// crack_kernels.h — [begin, split) all < pivot, [split, end) all >= pivot,
/// (value, rowID) pairing preserved — and the split position equals the one
/// the sequential kernel returns (it is the count of qualifying elements,
/// which no algorithm can change). Element *order within* a partition
/// differs from the sequential kernel, which cracking never relies on.
///
/// Threading: chunk tasks touch pairwise disjoint ranges and merge tasks
/// touch pairwise disjoint swap pairs, so the workers share no element.
/// Completion is a mutex/condition-variable handshake, so every worker
/// write happens-before the caller's return — callers run the whole
/// operation inside a piece's seqlock odd window with the piece write latch
/// held, exactly like a sequential crack.

/// \brief Counters describing one or more parallel crack invocations.
struct ParallelCrackStats {
  size_t chunks = 0;    ///< chunk tasks dispatched (incl. the caller's own)
  int64_t merge_ns = 0;  ///< time spent in the swap-based refined merge
};

/// \brief Runs `fn(0) .. fn(tasks-1)` with pool help. Claim-based: the
/// caller participates and tasks are claimed from a shared counter, so the
/// call makes progress (and never deadlocks) even when every pool worker is
/// itself blocked inside another ParallelRun. Returns only after every task
/// finished; a null pool or a single task degrades to a serial loop.
void ParallelRun(ThreadPool* pool, size_t tasks,
                 const std::function<void(size_t)>& fn);

/// \brief Two-way crack of [begin, end) around `pivot` using up to
/// `num_chunks` parallel chunks (clamped so chunks stay at least a cache-
/// friendly minimum size; 0 or 1 chunks, or a null pool, fall back to the
/// sequential kernel). Same contract as CrackerArray::CrackTwo.
Position ParallelCrackTwo(CrackerArray* array, Position begin, Position end,
                          Value pivot, ThreadPool* pool, size_t num_chunks,
                          ParallelCrackStats* stats);

/// \brief Three-way crack of [begin, end) into `< lo` / `[lo, hi)` / `>= hi`
/// as two parallel two-way passes (the second pass touches only the upper
/// remainder). Same contract as CrackerArray::CrackThree. Requires lo <= hi.
std::pair<Position, Position> ParallelCrackThree(CrackerArray* array,
                                                 Position begin, Position end,
                                                 Value lo, Value hi,
                                                 ThreadPool* pool,
                                                 size_t num_chunks,
                                                 ParallelCrackStats* stats);

/// \brief Pool-parallel merge sort of a value vector: chunk-local std::sort
/// followed by a tree of pairwise in-place merges, each level parallel.
/// The "parallel sort" baseline the paper's crossover claim is measured
/// against — a fully sorted column is what adaptive indexing amortizes away.
void ParallelSortValues(std::vector<Value>* values, ThreadPool* pool,
                        size_t num_chunks);

}  // namespace adaptidx

#endif  // ADAPTIDX_CRACKING_PARALLEL_CRACK_H_
