#include "durability/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "storage/file_io.h"
#include "util/crc32.h"
#include "util/wire.h"

namespace adaptidx {

namespace {

constexpr char kMagic[8] = {'A', 'D', 'I', 'X', 'C', 'K', 'P', '1'};
constexpr uint32_t kFormatVersion = 1;

std::string CheckpointName(uint64_t epoch) {
  return "checkpoint-" + std::to_string(epoch) + ".ckpt";
}

void PutPairs(WireWriter* w,
              const std::vector<std::pair<Value, RowId>>& pairs) {
  w->PutU32(static_cast<uint32_t>(pairs.size()));
  for (const auto& [v, id] : pairs) {
    w->PutI64(v);
    w->PutU32(id);
  }
}

bool GetPairs(WireReader* r, std::vector<std::pair<Value, RowId>>* out) {
  uint32_t count = 0;
  if (!r->GetU32(&count)) return false;
  // Every pair occupies 12 bytes; validate before reserving so a forged
  // count cannot drive an allocation (same discipline as the wire codec).
  if (static_cast<uint64_t>(count) * 12 > r->remaining()) return false;
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Value v = 0;
    uint32_t id = 0;
    if (!r->GetI64(&v) || !r->GetU32(&id)) return false;
    out->emplace_back(v, static_cast<RowId>(id));
  }
  return true;
}

}  // namespace

Status WriteCheckpoint(const std::string& dir, const CheckpointImage& image) {
  WireWriter w;
  w.PutU32(kFormatVersion);
  w.PutU64(image.epoch);
  w.PutU32(image.next_row_id);
  w.PutString(image.column_name);
  w.PutU32(static_cast<uint32_t>(image.base_values.size()));
  for (Value v : image.base_values) w.PutI64(v);
  PutPairs(&w, image.inserts);
  PutPairs(&w, image.anti_matter);
  w.PutU8(image.has_adapted ? 1 : 0);
  if (image.has_adapted) {
    const auto& a = image.adapted;
    w.PutU32(static_cast<uint32_t>(a.values.size()));
    for (Value v : a.values) w.PutI64(v);
    for (RowId id : a.row_ids) w.PutU32(id);
    w.PutU32(static_cast<uint32_t>(a.pieces.size()));
    for (const auto& p : a.pieces) {
      w.PutU64(p.begin);
      w.PutU64(p.end);
      w.PutI64(p.lo_value);
      w.PutI64(p.hi_value);
      w.PutU8(p.sorted ? 1 : 0);
    }
  }
  const std::string payload = w.Take();

  WireWriter file;
  for (char c : kMagic) file.PutU8(static_cast<uint8_t>(c));
  file.PutU64(payload.size());
  file.PutU32(Crc32(payload.data(), payload.size()));
  std::string bytes = file.Take();
  bytes += payload;
  return AtomicWriteFile(dir + "/" + CheckpointName(image.epoch),
                         bytes.data(), bytes.size());
}

Status LoadCheckpoint(const std::string& path, CheckpointImage* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open checkpoint: " + path);
  std::string data;
  {
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  }
  std::fclose(f);

  constexpr size_t kHeaderBytes = sizeof(kMagic) + 8 + 4;
  if (data.size() < kHeaderBytes ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad checkpoint header: " + path);
  }
  uint64_t payload_len = 0;
  uint32_t crc = 0;
  {
    WireReader h(data.data() + sizeof(kMagic), 12);
    h.GetU64(&payload_len);
    h.GetU32(&crc);
  }
  if (data.size() - kHeaderBytes != payload_len) {
    return Status::Corruption("checkpoint length mismatch: " + path);
  }
  const char* payload = data.data() + kHeaderBytes;
  if (Crc32(payload, payload_len) != crc) {
    return Status::Corruption("checkpoint crc mismatch: " + path);
  }

  WireReader r(payload, payload_len);
  uint32_t version = 0;
  if (!r.GetU32(&version) || version != kFormatVersion) {
    return Status::Corruption("unknown checkpoint version: " + path);
  }
  uint32_t next_row_id = 0;
  uint32_t base_count = 0;
  bool ok = r.GetU64(&out->epoch) && r.GetU32(&next_row_id) &&
            r.GetString(&out->column_name) && r.GetU32(&base_count);
  if (!ok || static_cast<uint64_t>(base_count) * 8 > r.remaining()) {
    return Status::Corruption("bad checkpoint base header: " + path);
  }
  out->next_row_id = static_cast<RowId>(next_row_id);
  out->base_values.clear();
  out->base_values.reserve(base_count);
  for (uint32_t i = 0; ok && i < base_count; ++i) {
    Value v = 0;
    ok = r.GetI64(&v);
    out->base_values.push_back(v);
  }
  ok = ok && GetPairs(&r, &out->inserts) && GetPairs(&r, &out->anti_matter);
  uint8_t has_adapted = 0;
  ok = ok && r.GetU8(&has_adapted);
  out->has_adapted = has_adapted != 0;
  out->adapted = CrackingIndex::AdaptedState{};
  if (ok && out->has_adapted) {
    auto& a = out->adapted;
    uint32_t n = 0;
    ok = r.GetU32(&n) && static_cast<uint64_t>(n) * 12 <= r.remaining();
    if (ok) {
      a.values.reserve(n);
      a.row_ids.reserve(n);
      for (uint32_t i = 0; ok && i < n; ++i) {
        Value v = 0;
        ok = r.GetI64(&v);
        a.values.push_back(v);
      }
      for (uint32_t i = 0; ok && i < n; ++i) {
        uint32_t id = 0;
        ok = r.GetU32(&id);
        a.row_ids.push_back(static_cast<RowId>(id));
      }
    }
    uint32_t piece_count = 0;
    ok = ok && r.GetU32(&piece_count) &&
         static_cast<uint64_t>(piece_count) * 33 <= r.remaining();
    if (ok) {
      a.pieces.reserve(piece_count);
      for (uint32_t i = 0; ok && i < piece_count; ++i) {
        CrackingIndex::AdaptedPiece p;
        uint64_t begin = 0;
        uint64_t end = 0;
        uint8_t sorted = 0;
        ok = r.GetU64(&begin) && r.GetU64(&end) && r.GetI64(&p.lo_value) &&
             r.GetI64(&p.hi_value) && r.GetU8(&sorted);
        p.begin = begin;
        p.end = end;
        p.sorted = sorted != 0;
        a.pieces.push_back(p);
      }
    }
  }
  if (!ok || !r.Exhausted()) {
    return Status::Corruption("malformed checkpoint payload: " + path);
  }
  return Status::OK();
}

std::vector<std::pair<uint64_t, std::string>> ListCheckpoints(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("checkpoint-", 0) != 0) continue;
    const size_t dot = name.rfind(".ckpt");
    if (dot == std::string::npos || dot != name.size() - 5) continue;
    char* end = nullptr;
    const uint64_t epoch = std::strtoull(name.c_str() + 11, &end, 10);
    if (end != name.c_str() + dot) continue;
    out.emplace_back(epoch, entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status PruneCheckpoints(const std::string& dir, size_t keep) {
  auto checkpoints = ListCheckpoints(dir);
  if (checkpoints.size() <= keep) return Status::OK();
  for (size_t i = 0; i + keep < checkpoints.size(); ++i) {
    std::error_code ec;
    std::filesystem::remove(checkpoints[i].second, ec);
    if (ec) {
      return Status::Corruption("cannot remove checkpoint: " +
                                checkpoints[i].second);
    }
  }
  return SyncPath(dir);
}

}  // namespace adaptidx
