/// \file Unit tests of the durability subsystem below recovery: the
/// group-commit WAL (format, policies, rotation, concurrent committers),
/// checkpoint image round trips, and the cracked-state export/restore pair
/// on the cracking index. Crash/restart end-to-end coverage lives in
/// recovery_test.cc.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/cracking_index.h"
#include "core/updatable_index.h"
#include "durability/checkpoint.h"
#include "durability/durable_index.h"
#include "durability/wal.h"
#include "test_util.h"
#include "util/rng.h"

namespace adaptidx {
namespace {

namespace fs = std::filesystem;

/// Fresh temp directory per test, removed on teardown.
class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("adaptidx_dur_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir_;
};

using OpType = CommitSink::OpType;

Status OpenWal(const std::string& dir, FsyncPolicy policy, uint64_t next_lsn,
               std::unique_ptr<WriteAheadLog>* out) {
  WalOptions opts;
  opts.fsync_policy = policy;
  return WriteAheadLog::Open(dir, opts, next_lsn, out);
}

// ------------------------------------------------------------------ WAL core

TEST_F(DurabilityTest, WalAppendScanRoundTrip) {
  std::unique_ptr<WriteAheadLog> wal;
  ASSERT_TRUE(OpenWal(dir_, FsyncPolicy::kGroup, 1, &wal).ok());
  for (int i = 0; i < 100; ++i) {
    const uint64_t lsn = wal->LogCommit(
        i % 3 == 2 ? OpType::kDelete : OpType::kInsert, 1000 + i,
        static_cast<RowId>(i));
    EXPECT_EQ(lsn, static_cast<uint64_t>(i + 1));
    ASSERT_TRUE(wal->WaitDurable(lsn).ok());
  }
  EXPECT_EQ(wal->last_lsn(), 100u);
  EXPECT_EQ(wal->durable_lsn(), 100u);
  const WalStats stats = wal->stats();
  EXPECT_EQ(stats.records_appended, 100u);
  EXPECT_GT(stats.bytes_written, 0u);
  wal.reset();

  auto segments = ListWalSegments(dir_);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].first, 1u);
  WalSegmentScan scan;
  ASSERT_TRUE(ScanWalSegment(segments[0].second, &scan).ok());
  EXPECT_FALSE(scan.torn);
  ASSERT_EQ(scan.records.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(scan.records[i].lsn, static_cast<uint64_t>(i + 1));
    EXPECT_EQ(scan.records[i].value, 1000 + i);
    EXPECT_EQ(scan.records[i].row_id, static_cast<RowId>(i));
    EXPECT_EQ(scan.records[i].op,
              i % 3 == 2 ? OpType::kDelete : OpType::kInsert);
  }
}

TEST_F(DurabilityTest, WalAllPoliciesDurableAtAck) {
  for (FsyncPolicy policy :
       {FsyncPolicy::kAlways, FsyncPolicy::kGroup, FsyncPolicy::kNone}) {
    const std::string sub = dir_ + "/p" +
                            std::to_string(static_cast<int>(policy));
    fs::create_directories(sub);
    std::unique_ptr<WriteAheadLog> wal;
    ASSERT_TRUE(OpenWal(sub, policy, 1, &wal).ok());
    for (int i = 0; i < 20; ++i) {
      const uint64_t lsn = wal->LogCommit(OpType::kInsert, i, i);
      ASSERT_TRUE(wal->WaitDurable(lsn).ok());
    }
    ASSERT_TRUE(wal->Sync().ok());
    wal.reset();
    WalSegmentScan scan;
    auto segments = ListWalSegments(sub);
    ASSERT_EQ(segments.size(), 1u);
    ASSERT_TRUE(ScanWalSegment(segments[0].second, &scan).ok());
    EXPECT_EQ(scan.records.size(), 20u);
  }
}

TEST_F(DurabilityTest, WalAlwaysFsyncsPerRecordGroupAmortizes) {
  // Sequential committers: kAlways must fsync once per record; kGroup may
  // batch but never syncs more often than kAlways.
  for (FsyncPolicy policy : {FsyncPolicy::kAlways, FsyncPolicy::kGroup}) {
    const std::string sub = dir_ + "/f" +
                            std::to_string(static_cast<int>(policy));
    fs::create_directories(sub);
    std::unique_ptr<WriteAheadLog> wal;
    ASSERT_TRUE(OpenWal(sub, policy, 1, &wal).ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(wal->WaitDurable(wal->LogCommit(OpType::kInsert, i, i)).ok());
    }
    const WalStats stats = wal->stats();
    if (policy == FsyncPolicy::kAlways) {
      EXPECT_GE(stats.fsync_count, 50u);
    } else {
      EXPECT_LE(stats.fsync_count, 50u);
      EXPECT_GE(stats.flush_batches, 1u);
    }
  }
}

TEST_F(DurabilityTest, WalRotateSealsAndStartsFreshSegment) {
  std::unique_ptr<WriteAheadLog> wal;
  ASSERT_TRUE(OpenWal(dir_, FsyncPolicy::kGroup, 1, &wal).ok());
  for (int i = 0; i < 10; ++i) wal->LogCommit(OpType::kInsert, i, i);
  ASSERT_TRUE(wal->Rotate().ok());
  for (int i = 10; i < 15; ++i) wal->LogCommit(OpType::kInsert, i, i);
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_EQ(wal->stats().rotations, 1u);
  wal.reset();

  auto segments = ListWalSegments(dir_);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].first, 1u);
  EXPECT_EQ(segments[1].first, 11u);
  WalSegmentScan first, second;
  ASSERT_TRUE(ScanWalSegment(segments[0].second, &first).ok());
  ASSERT_TRUE(ScanWalSegment(segments[1].second, &second).ok());
  EXPECT_EQ(first.records.size(), 10u);
  EXPECT_EQ(second.records.size(), 5u);
  EXPECT_EQ(second.records.front().lsn, 11u);
}

TEST_F(DurabilityTest, WalRemoveSegmentsBelowKeepsCoveringTail) {
  std::unique_ptr<WriteAheadLog> wal;
  ASSERT_TRUE(OpenWal(dir_, FsyncPolicy::kGroup, 1, &wal).ok());
  for (int i = 0; i < 10; ++i) wal->LogCommit(OpType::kInsert, i, i);
  ASSERT_TRUE(wal->Rotate().ok());  // seals [1,10]
  for (int i = 10; i < 20; ++i) wal->LogCommit(OpType::kInsert, i, i);
  ASSERT_TRUE(wal->Rotate().ok());  // seals [11,20]
  ASSERT_TRUE(wal->Sync().ok());

  // A checkpoint at epoch 10 covers exactly the first sealed segment.
  ASSERT_TRUE(wal->RemoveSegmentsBelow(10).ok());
  auto segments = ListWalSegments(dir_);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].first, 11u);

  // Epoch 5 covers nothing that remains: no segment may vanish.
  ASSERT_TRUE(wal->RemoveSegmentsBelow(5).ok());
  EXPECT_EQ(ListWalSegments(dir_).size(), 2u);
}

TEST_F(DurabilityTest, WalConcurrentCommittersContiguousAndDurable) {
  // The group-commit race suite: many committers interleaving LogCommit
  // (each under its own "commit point") with WaitDurable. The log must
  // come out gap-free and strictly LSN-ordered.
  std::unique_ptr<WriteAheadLog> wal;
  ASSERT_TRUE(OpenWal(dir_, FsyncPolicy::kGroup, 1, &wal).ok());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::atomic<int> failures{0};
  std::mutex commit_mu;  // stands in for the index writer latch
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t lsn = 0;
        {
          std::lock_guard<std::mutex> lk(commit_mu);
          lsn = wal->LogCommit(OpType::kInsert, t * kPerThread + i,
                               static_cast<RowId>(i));
        }
        if (!wal->WaitDurable(lsn).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(wal->last_lsn(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(wal->durable_lsn(), wal->last_lsn());
  const WalStats stats = wal->stats();
  EXPECT_EQ(stats.records_appended,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_GE(stats.max_batch, 1u);
  wal.reset();

  auto segments = ListWalSegments(dir_);
  ASSERT_EQ(segments.size(), 1u);
  WalSegmentScan scan;
  ASSERT_TRUE(ScanWalSegment(segments[0].second, &scan).ok());
  ASSERT_EQ(scan.records.size(), static_cast<size_t>(kThreads * kPerThread));
  for (size_t i = 0; i < scan.records.size(); ++i) {
    ASSERT_EQ(scan.records[i].lsn, i + 1);
  }
}

TEST_F(DurabilityTest, WalConcurrentWithRotationStaysOrdered) {
  // Rotations racing the flusher must never reorder records across the
  // segment boundary (the in-flight-batch barrier inside Rotate).
  std::unique_ptr<WriteAheadLog> wal;
  ASSERT_TRUE(OpenWal(dir_, FsyncPolicy::kGroup, 1, &wal).ok());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 150;
  std::mutex commit_mu;
  std::atomic<bool> stop{false};
  std::thread rotator([&] {
    while (!stop.load()) {
      ASSERT_TRUE(wal->Rotate().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t lsn = 0;
        {
          std::lock_guard<std::mutex> lk(commit_mu);
          lsn = wal->LogCommit(OpType::kInsert, i, static_cast<RowId>(i));
        }
        ASSERT_TRUE(wal->WaitDurable(lsn).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  stop.store(true);
  rotator.join();
  ASSERT_TRUE(wal->Sync().ok());
  wal.reset();

  uint64_t expect = 1;
  for (const auto& [first_lsn, path] : ListWalSegments(dir_)) {
    WalSegmentScan scan;
    ASSERT_TRUE(ScanWalSegment(path, &scan).ok());
    EXPECT_FALSE(scan.torn) << path;
    for (const WalRecord& rec : scan.records) {
      ASSERT_EQ(rec.lsn, expect) << path;
      ++expect;
    }
  }
  EXPECT_EQ(expect, static_cast<uint64_t>(kThreads * kPerThread) + 1);
}

// ------------------------------------------------------- WAL corruption edge

TEST_F(DurabilityTest, WalTornTailAcceptsLongestValidPrefix) {
  std::unique_ptr<WriteAheadLog> wal;
  ASSERT_TRUE(OpenWal(dir_, FsyncPolicy::kGroup, 1, &wal).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(wal->WaitDurable(wal->LogCommit(OpType::kInsert, i, i)).ok());
  }
  wal.reset();
  auto segments = ListWalSegments(dir_);
  ASSERT_EQ(segments.size(), 1u);
  const std::string path = segments[0].second;
  const auto full_size = fs::file_size(path);

  // Chop the file at every byte offset inside the last record: every cut
  // must yield exactly the first 9 records and a torn flag.
  WalSegmentScan base;
  ASSERT_TRUE(ScanWalSegment(path, &base).ok());
  ASSERT_EQ(base.records.size(), 10u);
  const auto record_bytes = (full_size - 16) / 10;  // header is 16 bytes
  for (uintmax_t cut = full_size - record_bytes + 1; cut < full_size; ++cut) {
    fs::resize_file(path, cut);
    WalSegmentScan scan;
    ASSERT_TRUE(ScanWalSegment(path, &scan).ok());
    EXPECT_TRUE(scan.torn) << "cut at " << cut;
    EXPECT_EQ(scan.records.size(), 9u) << "cut at " << cut;
    EXPECT_EQ(scan.valid_bytes, full_size - record_bytes);
    fs::resize_file(path, full_size);  // restore is a no-op data-wise
  }
}

TEST_F(DurabilityTest, WalBitFlipSweepNeverYieldsPhantomRecord) {
  std::unique_ptr<WriteAheadLog> wal;
  ASSERT_TRUE(OpenWal(dir_, FsyncPolicy::kGroup, 1, &wal).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        wal->WaitDurable(wal->LogCommit(OpType::kInsert, 7000 + i, i)).ok());
  }
  wal.reset();
  const std::string path = ListWalSegments(dir_)[0].second;
  std::string pristine;
  {
    std::ifstream in(path, std::ios::binary);
    pristine.assign(std::istreambuf_iterator<char>(in), {});
  }
  // Flip one bit at a time across the last record's bytes: the scan must
  // either reject that record (CRC) or — for the header-of-record length
  // field — reject the framing; it must never decode different content.
  const size_t record_bytes = (pristine.size() - 16) / 4;
  const size_t last_begin = pristine.size() - record_bytes;
  for (size_t off = last_begin; off < pristine.size(); ++off) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = pristine;
      mutated[off] = static_cast<char>(mutated[off] ^ (1 << bit));
      {
        std::ofstream outf(path, std::ios::binary | std::ios::trunc);
        outf.write(mutated.data(),
                   static_cast<std::streamsize>(mutated.size()));
      }
      WalSegmentScan scan;
      Status s = ScanWalSegment(path, &scan);
      if (!s.ok()) continue;  // rejected outright: fine
      ASSERT_LE(scan.records.size(), 4u);
      for (size_t i = 0; i < scan.records.size() && i < 3; ++i) {
        // The untouched prefix always survives intact.
        EXPECT_EQ(scan.records[i].value, 7000 + static_cast<Value>(i));
      }
      if (scan.records.size() == 4) {
        // A full parse despite the flip is only legitimate when the flip
        // landed outside what the codec reads (impossible here: every byte
        // of a record is covered by length, CRC, or payload).
        EXPECT_EQ(scan.records[3].value, 7003);
        EXPECT_TRUE(false) << "bit flip at offset " << off << " bit " << bit
                           << " went undetected";
      }
    }
  }
}

TEST_F(DurabilityTest, WalBadHeaderIsCorruption) {
  const std::string path = dir_ + "/wal-1.log";
  std::ofstream out(path, std::ios::binary);
  out << "NOTAWAL!";
  out.close();
  WalSegmentScan scan;
  EXPECT_TRUE(ScanWalSegment(path, &scan).IsCorruption());
}

// ------------------------------------------------------------- checkpoints

TEST_F(DurabilityTest, CheckpointImageRoundTrip) {
  CheckpointImage image;
  image.epoch = 42;
  image.next_row_id = 1234;
  image.column_name = "A";
  image.base_values = {5, 3, 9, 1, 7};
  image.inserts = {{6, 1000}, {8, 1001}};
  image.anti_matter = {{3, 1}};
  image.has_adapted = true;
  image.adapted.values = {1, 3, 5, 7, 9};
  image.adapted.row_ids = {3, 1, 0, 4, 2};
  image.adapted.pieces = {{0, 2, -100, 4, false}, {2, 5, 5, 100, true}};
  ASSERT_TRUE(WriteCheckpoint(dir_, image).ok());

  auto list = ListCheckpoints(dir_);
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].first, 42u);
  CheckpointImage loaded;
  ASSERT_TRUE(LoadCheckpoint(list[0].second, &loaded).ok());
  EXPECT_EQ(loaded.epoch, 42u);
  EXPECT_EQ(loaded.next_row_id, 1234u);
  EXPECT_EQ(loaded.column_name, "A");
  EXPECT_EQ(loaded.base_values, image.base_values);
  EXPECT_EQ(loaded.inserts, image.inserts);
  EXPECT_EQ(loaded.anti_matter, image.anti_matter);
  ASSERT_TRUE(loaded.has_adapted);
  EXPECT_EQ(loaded.adapted.values, image.adapted.values);
  EXPECT_EQ(loaded.adapted.row_ids, image.adapted.row_ids);
  ASSERT_EQ(loaded.adapted.pieces.size(), 2u);
  EXPECT_EQ(loaded.adapted.pieces[1].begin, 2u);
  EXPECT_EQ(loaded.adapted.pieces[1].lo_value, 5);
  EXPECT_TRUE(loaded.adapted.pieces[1].sorted);
}

TEST_F(DurabilityTest, CheckpointCorruptionDetectedByteByByte) {
  CheckpointImage image;
  image.epoch = 7;
  image.column_name = "A";
  image.base_values = {1, 2, 3};
  ASSERT_TRUE(WriteCheckpoint(dir_, image).ok());
  const std::string path = ListCheckpoints(dir_)[0].second;
  std::string pristine;
  {
    std::ifstream in(path, std::ios::binary);
    pristine.assign(std::istreambuf_iterator<char>(in), {});
  }
  for (size_t off = 0; off < pristine.size(); ++off) {
    std::string mutated = pristine;
    mutated[off] = static_cast<char>(mutated[off] ^ 0x40);
    {
      std::ofstream outf(path, std::ios::binary | std::ios::trunc);
      outf.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    }
    CheckpointImage loaded;
    EXPECT_FALSE(LoadCheckpoint(path, &loaded).ok())
        << "flip at offset " << off << " went undetected";
  }
}

TEST_F(DurabilityTest, PruneCheckpointsKeepsNewest) {
  for (uint64_t epoch : {5u, 10u, 15u, 20u}) {
    CheckpointImage image;
    image.epoch = epoch;
    image.column_name = "A";
    image.base_values = {1};
    ASSERT_TRUE(WriteCheckpoint(dir_, image).ok());
  }
  ASSERT_TRUE(PruneCheckpoints(dir_, 2).ok());
  auto list = ListCheckpoints(dir_);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].first, 15u);
  EXPECT_EQ(list[1].first, 20u);
}

// ------------------------------------------- cracked-state export / restore

IndexConfig CrackConfig() {
  IndexConfig config;
  config.method = IndexMethod::kCrack;
  return config;
}

TEST_F(DurabilityTest, ExportRestoreAdaptedStateRoundTrip) {
  Column col = Column::UniqueRandom("A", 4000, 77);
  RangeOracle oracle(col);
  CrackingIndex source(&col);
  QueryContext ctx;
  Rng rng(123);
  for (int i = 0; i < 60; ++i) {
    const Value lo = static_cast<Value>(rng.Next() % 3800);
    uint64_t count = 0;
    ASSERT_TRUE(source.RangeCount(ValueRange{lo, lo + 150}, &ctx, &count).ok());
    ASSERT_EQ(count, oracle.Count(lo, lo + 150));
  }
  ASSERT_GT(source.NumPieces(), 10u);

  CrackingIndex::AdaptedState state;
  ASSERT_TRUE(source.ExportAdaptedState(&state).ok());
  ASSERT_EQ(state.values.size(), col.size());
  ASSERT_EQ(state.pieces.size(), source.NumPieces());

  CrackingIndex restored(&col);
  ASSERT_TRUE(restored.RestoreAdaptedState(state).ok());
  EXPECT_EQ(restored.NumPieces(), source.NumPieces());
  // The restored index answers correctly and from the inherited pieces: a
  // point probe cracks at most its two bounds, never re-partitions from
  // scratch.
  for (int i = 0; i < 40; ++i) {
    const Value lo = static_cast<Value>(rng.Next() % 3800);
    uint64_t count = 0;
    ASSERT_TRUE(
        restored.RangeCount(ValueRange{lo, lo + 99}, &ctx, &count).ok());
    EXPECT_EQ(count, oracle.Count(lo, lo + 99));
  }
  ASSERT_TRUE(restored.ValidateStructure());
}

TEST_F(DurabilityTest, RestoreAdaptedStateRejectsBadTiling) {
  // Large enough that the coarse-piece floor still permits real cracks.
  Column col = Column::UniqueRandom("A", 8000, 5);
  CrackingIndex source(&col);
  QueryContext ctx;
  for (Value lo : {1000, 3000, 5000, 7000}) {
    uint64_t count = 0;
    ASSERT_TRUE(source.RangeCount(ValueRange{lo, lo + 500}, &ctx, &count).ok());
  }
  CrackingIndex::AdaptedState state;
  ASSERT_TRUE(source.ExportAdaptedState(&state).ok());

  CrackingIndex target(&col);
  CrackingIndex::AdaptedState bad = state;
  bad.values.pop_back();
  bad.row_ids.pop_back();
  EXPECT_FALSE(target.RestoreAdaptedState(bad).ok());

  bad = state;
  ASSERT_GT(bad.pieces.size(), 1u);
  bad.pieces[0].end -= 1;  // gap between piece 0 and 1
  EXPECT_FALSE(target.RestoreAdaptedState(bad).ok());
}

TEST_F(DurabilityTest, ExportUnderConcurrentQueriesStaysConsistent) {
  // Queries keep cracking while exports run; every export must be a valid
  // tiling whose values are a permutation of the column.
  Column col = Column::UniqueRandom("A", 20000, 31);
  CrackingIndex index(&col);
  {
    // Initialize the cracker before exports start (an untouched index
    // exports the legitimate empty state, which is not what this test is
    // probing).
    QueryContext ctx;
    uint64_t count = 0;
    ASSERT_TRUE(index.RangeCount(ValueRange{5000, 15000}, &ctx, &count).ok());
  }
  std::atomic<bool> stop{false};
  std::thread querier([&] {
    QueryContext ctx;
    Rng rng(7);
    while (!stop.load()) {
      const Value lo = static_cast<Value>(rng.Next() % 19000);
      uint64_t count = 0;
      ASSERT_TRUE(index.RangeCount(ValueRange{lo, lo + 500}, &ctx, &count).ok());
    }
  });
  for (int round = 0; round < 30; ++round) {
    CrackingIndex::AdaptedState state;
    ASSERT_TRUE(index.ExportAdaptedState(&state).ok());
    ASSERT_EQ(state.values.size(), col.size());
    // Contiguous tiling with in-bounds piece payloads.
    size_t pos = 0;
    for (const auto& piece : state.pieces) {
      ASSERT_EQ(piece.begin, pos);
      ASSERT_GT(piece.end, piece.begin);
      for (size_t i = piece.begin; i < piece.end; ++i) {
        ASSERT_GE(state.values[i], piece.lo_value);
        ASSERT_LE(state.values[i], piece.hi_value);
      }
      pos = piece.end;
    }
    ASSERT_EQ(pos, col.size());
    // Permutation check via row-id uniqueness.
    std::vector<bool> seen(col.size(), false);
    for (RowId r : state.row_ids) {
      ASSERT_LT(r, col.size());
      ASSERT_FALSE(seen[r]);
      seen[r] = true;
    }
  }
  stop.store(true);
  querier.join();
}

// -------------------------------------------------------------- DurableIndex

TEST_F(DurabilityTest, DurableIndexCommitsAreLoggedInCommitOrder) {
  Column seed = Column::UniqueRandom("A", 500, 9);
  LockManager lm;
  DurabilityOptions opts;
  opts.data_dir = dir_;
  std::unique_ptr<DurableIndex> di;
  ASSERT_TRUE(
      DurableIndex::Open(seed, CrackConfig(), opts, &lm, "t", &di).ok());
  QueryContext ctx;
  ctx.txn_id = 1;
  RowId first = 0;
  ASSERT_TRUE(di->index()->Insert(10000, &ctx, &first).ok());
  RowId second = 0;
  ASSERT_TRUE(di->index()->Insert(10001, &ctx, &second).ok());
  ASSERT_TRUE(di->index()->Delete(10000, first, &ctx).ok());
  EXPECT_EQ(di->last_lsn(), 3u);
  EXPECT_EQ(di->durable_lsn(), 3u);
  EXPECT_EQ(di->index()->commit_epoch(), 3u);
  di.reset();

  auto segments = ListWalSegments(dir_);
  ASSERT_EQ(segments.size(), 1u);
  WalSegmentScan scan;
  ASSERT_TRUE(ScanWalSegment(segments[0].second, &scan).ok());
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0].op, OpType::kInsert);
  EXPECT_EQ(scan.records[0].value, 10000);
  EXPECT_EQ(scan.records[0].row_id, first);
  EXPECT_EQ(scan.records[2].op, OpType::kDelete);
}

TEST_F(DurabilityTest, DurableIndexCheckpointTruncatesWal) {
  Column seed = Column::UniqueRandom("A", 1000, 11);
  LockManager lm;
  DurabilityOptions opts;
  opts.data_dir = dir_;
  std::unique_ptr<DurableIndex> di;
  ASSERT_TRUE(
      DurableIndex::Open(seed, CrackConfig(), opts, &lm, "t", &di).ok());
  QueryContext ctx;
  ctx.txn_id = 1;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(di->index()->Insert(100000 + i, &ctx).ok());
  }
  uint64_t epoch = 0;
  ASSERT_TRUE(di->Checkpoint(&epoch).ok());
  EXPECT_EQ(epoch, 50u);
  EXPECT_EQ(di->last_checkpoint_epoch(), 50u);
  EXPECT_EQ(di->checkpoints_taken(), 1u);
  // The sealed pre-checkpoint segment is gone; only the live one remains.
  auto segments = ListWalSegments(dir_);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].first, 51u);
  ASSERT_EQ(ListCheckpoints(dir_).size(), 1u);
}

TEST_F(DurabilityTest, DurableIndexCheckpointBesideConcurrentCommitters) {
  Column seed = Column::UniqueRandom("A", 2000, 13);
  LockManager lm;
  DurabilityOptions opts;
  opts.data_dir = dir_;
  std::unique_ptr<DurableIndex> di;
  ASSERT_TRUE(
      DurableIndex::Open(seed, CrackConfig(), opts, &lm, "t", &di).ok());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      QueryContext ctx;
      ctx.txn_id = static_cast<uint64_t>(t) + 1;
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(
            di->index()->Insert(500000 + t * kPerThread + i, &ctx).ok());
      }
    });
  }
  std::thread checkpointer([&] {
    for (int i = 0; i < 5; ++i) {
      Status s = di->Checkpoint();
      ASSERT_TRUE(s.ok()) << s.ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (auto& th : threads) th.join();
  checkpointer.join();
  EXPECT_EQ(di->index()->commit_epoch(),
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(di->checkpoints_taken(), 5u);
  uint64_t count = 0;
  QueryContext ctx;
  ASSERT_TRUE(di->index()
                  ->RangeCount(ValueRange{500000, 500000 + 1000}, &ctx, &count)
                  .ok());
  EXPECT_EQ(count, static_cast<uint64_t>(kThreads * kPerThread));
}

TEST_F(DurabilityTest, AutoCheckpointerTriggersOnLag) {
  Column seed = Column::UniqueRandom("A", 500, 17);
  LockManager lm;
  DurabilityOptions opts;
  opts.data_dir = dir_;
  opts.checkpoint_interval = 20;
  std::unique_ptr<DurableIndex> di;
  ASSERT_TRUE(
      DurableIndex::Open(seed, CrackConfig(), opts, &lm, "t", &di).ok());
  QueryContext ctx;
  ctx.txn_id = 1;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(di->index()->Insert(90000 + i, &ctx).ok());
  }
  // The 100ms poll fires well within this bound on any machine.
  for (int spin = 0; spin < 100 && di->checkpoints_taken() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(di->checkpoints_taken(), 1u);
  EXPECT_GE(di->last_checkpoint_epoch(), 20u);
}

}  // namespace
}  // namespace adaptidx
