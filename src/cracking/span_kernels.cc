#include "cracking/span_kernels.h"

#include <limits>

#include "cracking/crack_kernels.h"
#include "cracking/reference_kernels.h"

#ifdef ADAPTIDX_X86_SIMD
#include <immintrin.h>
#endif

namespace adaptidx {
namespace detail {

bool HaveAvx2() { return KernelTierSupported(KernelTier::kAvx2); }

bool HaveAvx512() { return KernelTierSupported(KernelTier::kAvx512); }

// ----------------------------------------------------- branchless scans
//
// The filter predicate `lo <= v < hi` is evaluated with the unsigned-range
// trick: (uint64)(v - lo) < (uint64)(hi - lo) — one comparison, no
// short-circuit branch. Four independent accumulators hide the add latency
// and give the auto-vectorizer a clean reduction shape.

uint64_t ScanCountBranchless(const Value* values, Position begin, Position end,
                             Value lo, Value hi) {
  if (hi <= lo) return 0;
  const uint64_t width =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  uint64_t c0 = 0;
  uint64_t c1 = 0;
  uint64_t c2 = 0;
  uint64_t c3 = 0;
  Position i = begin;
  for (; i + 4 <= end; i += 4) {
    c0 += (static_cast<uint64_t>(values[i + 0]) - static_cast<uint64_t>(lo)) <
          width;
    c1 += (static_cast<uint64_t>(values[i + 1]) - static_cast<uint64_t>(lo)) <
          width;
    c2 += (static_cast<uint64_t>(values[i + 2]) - static_cast<uint64_t>(lo)) <
          width;
    c3 += (static_cast<uint64_t>(values[i + 3]) - static_cast<uint64_t>(lo)) <
          width;
  }
  for (; i < end; ++i) {
    c0 += (static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(lo)) <
          width;
  }
  return c0 + c1 + c2 + c3;
}

int64_t ScanSumBranchless(const Value* values, Position begin, Position end,
                          Value lo, Value hi) {
  if (hi <= lo) return 0;
  const uint64_t width =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  int64_t s0 = 0;
  int64_t s1 = 0;
  Position i = begin;
  for (; i + 2 <= end; i += 2) {
    // v & -(v in range): contributes v or 0 without a branch.
    s0 += values[i] &
          -static_cast<int64_t>((static_cast<uint64_t>(values[i]) -
                                 static_cast<uint64_t>(lo)) < width);
    s1 += values[i + 1] &
          -static_cast<int64_t>((static_cast<uint64_t>(values[i + 1]) -
                                 static_cast<uint64_t>(lo)) < width);
  }
  for (; i < end; ++i) {
    s0 += values[i] &
          -static_cast<int64_t>((static_cast<uint64_t>(values[i]) -
                                 static_cast<uint64_t>(lo)) < width);
  }
  return s0 + s1;
}

int64_t PositionalSumUnrolled(const Value* values, Position begin,
                              Position end) {
  int64_t s0 = 0;
  int64_t s1 = 0;
  int64_t s2 = 0;
  int64_t s3 = 0;
  Position i = begin;
  for (; i + 4 <= end; i += 4) {
    s0 += values[i + 0];
    s1 += values[i + 1];
    s2 += values[i + 2];
    s3 += values[i + 3];
  }
  for (; i < end; ++i) s0 += values[i];
  return s0 + s1 + s2 + s3;
}

// ----------------------------------------------------- predicated crack

Position CrackInTwoPredSpan(Value* values, RowId* row_ids, Position begin,
                            Position end, Value pivot) {
  SplitAccessor a(values, row_ids);
  return CrackInTwoPred(a, begin, end, pivot);
}

#ifdef ADAPTIDX_X86_SIMD

// ----------------------------------------------------------- AVX2 scans
//
// 64-bit lanes; the predicate mask is accumulated directly (a true lane is
// the constant -1, so subtracting masks counts, and AND-masking sums). The
// epilogue reuses the branchless scalar kernels.

__attribute__((target("avx2"))) uint64_t ScanCountAvx2(const Value* values,
                                                       Position begin,
                                                       Position end, Value lo,
                                                       Value hi) {
  if (hi <= lo) return 0;
  // Signed compares implement lo <= v < hi as (v > lo-1) & (hi > v); that
  // needs lo-1 to exist, so the one value without a predecessor falls back
  // to the (modular-exact) scalar kernel.
  if (lo == std::numeric_limits<Value>::min()) {
    return ScanCountBranchless(values, begin, end, lo, hi);
  }
  const __m256i vlo = _mm256_set1_epi64x(lo - 1);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  __m256i acc = _mm256_setzero_si256();
  Position i = begin;
  for (; i + 8 <= end; i += 8) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i + 4));
    const __m256i ma = _mm256_and_si256(_mm256_cmpgt_epi64(a, vlo),
                                        _mm256_cmpgt_epi64(vhi, a));
    const __m256i mb = _mm256_and_si256(_mm256_cmpgt_epi64(b, vlo),
                                        _mm256_cmpgt_epi64(vhi, b));
    acc = _mm256_sub_epi64(acc, ma);
    acc = _mm256_sub_epi64(acc, mb);
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] +
         ScanCountBranchless(values, i, end, lo, hi);
}

__attribute__((target("avx2"))) int64_t ScanSumAvx2(const Value* values,
                                                    Position begin,
                                                    Position end, Value lo,
                                                    Value hi) {
  if (hi <= lo) return 0;
  if (lo == std::numeric_limits<Value>::min()) {
    return ScanSumBranchless(values, begin, end, lo, hi);
  }
  const __m256i vlo = _mm256_set1_epi64x(lo - 1);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  __m256i acc = _mm256_setzero_si256();
  Position i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const __m256i m = _mm256_and_si256(_mm256_cmpgt_epi64(a, vlo),
                                       _mm256_cmpgt_epi64(vhi, a));
    acc = _mm256_add_epi64(acc, _mm256_and_si256(a, m));
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] +
         ScanSumBranchless(values, i, end, lo, hi);
}

__attribute__((target("avx2"))) int64_t PositionalSumAvx2(const Value* values,
                                                          Position begin,
                                                          Position end) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  Position i = begin;
  for (; i + 8 <= end; i += 8) {
    acc0 = _mm256_add_epi64(
        acc0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i)));
    acc1 = _mm256_add_epi64(
        acc1,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i + 4)));
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                     _mm256_add_epi64(acc0, acc1));
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] +
         PositionalSumUnrolled(values, i, end);
}

// ------------------------------------------------------ AVX-512 crack
//
// Two-sided in-place partition with compress stores (after Blacher et al.'s
// vectorized-quicksort partition): one vector is buffered from each end to
// open write room, then each loaded vector is split by mask — lanes < pivot
// compress-stored at the left write cursor, the rest at the right write
// cursor. Row ids ride along through the 32-bit compress with the same
// mask. Free space between the cursors is invariant at 2W, and the side
// with less head-room is always read next, which bounds every write into
// already-consumed slots.

namespace {

/// Splits one (possibly partial) vector of values+rowIDs by `piv` and
/// compress-stores the two halves at the left/right write cursors. Separate
/// function (not a lambda) so the avx512f target attribute applies.
__attribute__((target("avx512f"), always_inline)) inline void CompressFlush(
    Value* values, RowId* row_ids, Position* lw, Position* rw, __m512i piv,
    __m512i vv, __m512i vr, __mmask8 valid) {
  const __mmask8 lo_m = _mm512_mask_cmplt_epi64_mask(valid, vv, piv);
  const __mmask8 hi_m = static_cast<__mmask8>(~lo_m & valid);
  const Position n_lo = static_cast<Position>(__builtin_popcount(lo_m));
  const Position n_hi = static_cast<Position>(__builtin_popcount(hi_m));
  _mm512_mask_compressstoreu_epi64(values + *lw, lo_m, vv);
  _mm512_mask_compressstoreu_epi32(row_ids + *lw,
                                   static_cast<__mmask16>(lo_m), vr);
  *lw += n_lo;
  *rw -= n_hi;
  _mm512_mask_compressstoreu_epi64(values + *rw, hi_m, vv);
  _mm512_mask_compressstoreu_epi32(row_ids + *rw,
                                   static_cast<__mmask16>(hi_m), vr);
}

}  // namespace

__attribute__((target("avx512f"))) Position CrackInTwoAvx512(
    Value* values, RowId* row_ids, Position begin, Position end, Value pivot) {
  constexpr Position kW = 8;  // 64-bit lanes per zmm
  if (end - begin < 4 * kW) {
    return CrackInTwoPredSpan(values, row_ids, begin, end, pivot);
  }
  const __m512i piv = _mm512_set1_epi64(pivot);

  __m512i buf_lv = _mm512_loadu_si512(values + begin);
  __m512i buf_lr = _mm512_maskz_loadu_epi32(0xFF, row_ids + begin);
  __m512i buf_rv = _mm512_loadu_si512(values + end - kW);
  __m512i buf_rr = _mm512_maskz_loadu_epi32(0xFF, row_ids + end - kW);

  Position lw = begin;      // left write cursor
  Position rw = end;        // right write cursor (exclusive)
  Position lr = begin + kW; // left read cursor
  Position rr = end - kW;   // right read cursor (exclusive)

  while (rr - lr >= kW) {
    __m512i vv;
    __m512i vr;
    if (lr - lw <= rw - rr) {
      vv = _mm512_loadu_si512(values + lr);
      vr = _mm512_maskz_loadu_epi32(0xFF, row_ids + lr);
      lr += kW;
    } else {
      rr -= kW;
      vv = _mm512_loadu_si512(values + rr);
      vr = _mm512_maskz_loadu_epi32(0xFF, row_ids + rr);
    }
    CompressFlush(values, row_ids, &lw, &rw, piv, vv, vr, 0xFF);
  }

  // Partial final vector (fewer than W unread elements between the read
  // cursors): masked load keeps the free-space invariant intact.
  if (lr < rr) {
    const Position rem = rr - lr;
    const __mmask8 mrem = static_cast<__mmask8>((1u << rem) - 1u);
    const __m512i vv = _mm512_maskz_loadu_epi64(mrem, values + lr);
    const __m512i vr = _mm512_maskz_loadu_epi32(static_cast<__mmask16>(mrem),
                                                row_ids + lr);
    lr = rr;
    CompressFlush(values, row_ids, &lw, &rw, piv, vv, vr, mrem);
  }

  // Drain the two buffered vectors into the remaining 2W-wide gap.
  CompressFlush(values, row_ids, &lw, &rw, piv, buf_lv, buf_lr, 0xFF);
  CompressFlush(values, row_ids, &lw, &rw, piv, buf_rv, buf_rr, 0xFF);
  return lw;
}

#endif  // ADAPTIDX_X86_SIMD

}  // namespace detail

// ------------------------------------------------------------ dispatchers

uint64_t ScanCountSpan(const Value* values, Position begin, Position end,
                       Value lo, Value hi, KernelTier tier) {
  tier = ResolveKernelTier(tier);
#ifdef ADAPTIDX_X86_SIMD
  // ResolveKernelTier clamped unsupported tiers, so SIMD here is runnable.
  if (tier == KernelTier::kAvx2 || tier == KernelTier::kAvx512) {
    return detail::ScanCountAvx2(values, begin, end, lo, hi);
  }
#endif
  if (tier == KernelTier::kReference) {
    return reference::ScanCountSplit(values, begin, end, lo, hi);
  }
  return detail::ScanCountBranchless(values, begin, end, lo, hi);
}

int64_t ScanSumSpan(const Value* values, Position begin, Position end,
                    Value lo, Value hi, KernelTier tier) {
  tier = ResolveKernelTier(tier);
#ifdef ADAPTIDX_X86_SIMD
  // ResolveKernelTier clamped unsupported tiers, so SIMD here is runnable.
  if (tier == KernelTier::kAvx2 || tier == KernelTier::kAvx512) {
    return detail::ScanSumAvx2(values, begin, end, lo, hi);
  }
#endif
  if (tier == KernelTier::kReference) {
    return reference::ScanSumSplit(values, begin, end, lo, hi);
  }
  return detail::ScanSumBranchless(values, begin, end, lo, hi);
}

int64_t PositionalSumSpan(const Value* values, Position begin, Position end,
                          KernelTier tier) {
  tier = ResolveKernelTier(tier);
#ifdef ADAPTIDX_X86_SIMD
  // ResolveKernelTier clamped unsupported tiers, so SIMD here is runnable.
  if (tier == KernelTier::kAvx2 || tier == KernelTier::kAvx512) {
    return detail::PositionalSumAvx2(values, begin, end);
  }
#endif
  if (tier == KernelTier::kReference) {
    return reference::PositionalSumSplit(values, begin, end);
  }
  return detail::PositionalSumUnrolled(values, begin, end);
}

void MinMaxSpan(const Value* values, Position begin, Position end, Value* lo,
                Value* hi) {
  Value mn = values[begin];
  Value mx = values[begin];
  for (Position i = begin + 1; i < end; ++i) {
    const Value v = values[i];
    mn = v < mn ? v : mn;
    mx = v > mx ? v : mx;
  }
  *lo = mn;
  *hi = mx;
}

Position CrackInTwoSpan(Value* values, RowId* row_ids, Position begin,
                        Position end, Value pivot, KernelTier tier) {
  tier = ResolveKernelTier(tier);
#ifdef ADAPTIDX_X86_SIMD
  if (tier == KernelTier::kAvx512) {
    return detail::CrackInTwoAvx512(values, row_ids, begin, end, pivot);
  }
#endif
  if (tier == KernelTier::kReference) {
    return reference::CrackInTwoSplit(values, row_ids, begin, end, pivot);
  }
  return detail::CrackInTwoPredSpan(values, row_ids, begin, end, pivot);
}

std::pair<Position, Position> CrackInThreeSpan(Value* values, RowId* row_ids,
                                               Position begin, Position end,
                                               Value lo, Value hi,
                                               KernelTier tier) {
  tier = ResolveKernelTier(tier);
  if (tier == KernelTier::kReference) {
    return reference::CrackInThreeSplit(values, row_ids, begin, end, lo, hi);
  }
  // Two vectorized/predicated passes; the second only touches the upper
  // remainder, so the result matches crack-on-lo followed by crack-on-hi.
  const Position p1 = CrackInTwoSpan(values, row_ids, begin, end, lo, tier);
  const Position p2 = CrackInTwoSpan(values, row_ids, p1, end, hi, tier);
  return {p1, p2};
}

// ----------------------------------------------------- entry (AoS) kernels

uint64_t ScanCountEntries(const CrackerEntry* entries, Position begin,
                          Position end, Value lo, Value hi) {
  if (hi <= lo) return 0;
  const uint64_t width =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  uint64_t c0 = 0;
  uint64_t c1 = 0;
  Position i = begin;
  for (; i + 2 <= end; i += 2) {
    c0 += (static_cast<uint64_t>(entries[i].value) -
           static_cast<uint64_t>(lo)) < width;
    c1 += (static_cast<uint64_t>(entries[i + 1].value) -
           static_cast<uint64_t>(lo)) < width;
  }
  for (; i < end; ++i) {
    c0 += (static_cast<uint64_t>(entries[i].value) -
           static_cast<uint64_t>(lo)) < width;
  }
  return c0 + c1;
}

int64_t ScanSumEntries(const CrackerEntry* entries, Position begin,
                       Position end, Value lo, Value hi) {
  if (hi <= lo) return 0;
  const uint64_t width =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  int64_t s0 = 0;
  int64_t s1 = 0;
  Position i = begin;
  for (; i + 2 <= end; i += 2) {
    s0 += entries[i].value &
          -static_cast<int64_t>((static_cast<uint64_t>(entries[i].value) -
                                 static_cast<uint64_t>(lo)) < width);
    s1 += entries[i + 1].value &
          -static_cast<int64_t>((static_cast<uint64_t>(entries[i + 1].value) -
                                 static_cast<uint64_t>(lo)) < width);
  }
  for (; i < end; ++i) {
    s0 += entries[i].value &
          -static_cast<int64_t>((static_cast<uint64_t>(entries[i].value) -
                                 static_cast<uint64_t>(lo)) < width);
  }
  return s0 + s1;
}

int64_t PositionalSumEntries(const CrackerEntry* entries, Position begin,
                             Position end) {
  int64_t s0 = 0;
  int64_t s1 = 0;
  Position i = begin;
  for (; i + 2 <= end; i += 2) {
    s0 += entries[i].value;
    s1 += entries[i + 1].value;
  }
  for (; i < end; ++i) s0 += entries[i].value;
  return s0 + s1;
}

Position CrackInTwoEntries(CrackerEntry* entries, Position begin, Position end,
                           Value pivot) {
  PairAccessor a(entries);
  return CrackInTwoPred(a, begin, end, pivot);
}

std::pair<Position, Position> CrackInThreeEntries(CrackerEntry* entries,
                                                  Position begin, Position end,
                                                  Value lo, Value hi) {
  PairAccessor a(entries);
  return CrackInThreePred(a, begin, end, lo, hi);
}

}  // namespace adaptidx
