#include "server/server.h"

#include <errno.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <utility>
#include <vector>

#include "engine/session.h"

namespace adaptidx {
namespace server {

namespace {

/// Cap on bytes drained from one socket per readiness event, so a
/// firehose connection cannot monopolize the loop inside a single read
/// callback; level-triggered poll re-arms it on the next pass.
constexpr size_t kMaxReadPerEvent = 256 * 1024;

}  // namespace

/// Per-connection state machine; every field is confined to the I/O loop
/// thread (completion threads reach a connection only via PostResponse).
struct Server::Connection {
  uint64_t id = 0;
  int fd = -1;
  std::string in;                 // receive buffer (decoded frame by frame)
  std::deque<std::string> out;    // encoded responses awaiting write
  size_t out_offset = 0;          // bytes of out.front() already written
  std::shared_ptr<Session> session;  // null until OPEN_SESSION
  bool closing = false;           // flush out, then close
  bool process_scheduled = false;  // fairness continuation already posted
};

Server::Server(Column base, ServerOptions opts)
    : opts_(std::move(opts)), admission_(opts_.admission) {
  opts_.fairness_quantum = std::max<size_t>(1, opts_.fairness_quantum);
  opts_.completion_threads = std::max<size_t>(1, opts_.completion_threads);
  if (opts_.durability.data_dir.empty()) {
    owned_index_.reset(new UpdatableIndex(std::move(base), opts_.index_config,
                                          &lock_manager_, "served/A"));
    index_ = owned_index_.get();
  } else {
    // Recovery can fail, and a constructor cannot report that — hold the
    // seed until Start() opens the durable index.
    seed_.reset(new Column(std::move(base)));
  }
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  if (!opts_.durability.data_dir.empty()) {
    Status s = DurableIndex::Open(*seed_, opts_.index_config,
                                  opts_.durability, &lock_manager_,
                                  "served/A", &durable_);
    if (!s.ok()) return s;
    seed_.reset();  // the durable image owns the state from here on
    index_ = durable_->index();
  }
  Status s = loop_.Init();
  if (!s.ok()) return s;
  s = listener_.Listen(opts_.host, opts_.port);
  if (!s.ok()) return s;
  port_ = listener_.port();

  const size_t engine_threads = opts_.engine_threads != 0
                                    ? opts_.engine_threads
                                    : ThreadPool::DefaultConcurrency(1);
  engine_pool_.reset(new ThreadPool(engine_threads));
  completion_pool_.reset(new ThreadPool(opts_.completion_threads));

  // Registration happens before the loop thread exists, so the
  // loop-thread-only contract holds trivially.
  loop_.Register(listener_.fd(),
                 [this](bool readable, bool) {
                   if (readable) OnAcceptReady();
                 });
  io_thread_ = std::thread([this] { loop_.Run(); });
  return Status::OK();
}

void Server::Stop() {
  if (!started_.load()) return;
  if (stopped_.exchange(true)) return;
  // The teardown closure runs on the loop thread (in the post-exit drain
  // if the loop already noticed the stop flag), so connection state is
  // still single-threaded during shutdown.
  loop_.Post([this] {
    loop_.Unregister(listener_.fd());
    listener_.Close();
    std::vector<uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) ids.push_back(id);
    for (uint64_t id : ids) CloseConnection(id);
  });
  loop_.Stop();
  if (io_thread_.joinable()) io_thread_.join();
  // Completion tasks drain first (they hold Session references and post
  // now-discarded responses), then the engine pool joins once every
  // session's in-flight work has been waited out by its destructor.
  completion_pool_.reset();
  engine_pool_.reset();
}

// -------------------------------------------------------------- accept path

void Server::OnAcceptReady() {
  for (;;) {
    int fd = -1;
    Status s = listener_.Accept(&fd);
    if (!s.ok()) return;  // Busy (would-block) or listener torn down
    auto conn = std::make_shared<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conns_.emplace(conn->id, conn);
    connections_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t conn_id = conn->id;
    loop_.Register(fd, [this, conn_id](bool readable, bool writable) {
      OnConnectionIo(conn_id, readable, writable);
    });
  }
}

// ----------------------------------------------------------------- I/O path

void Server::OnConnectionIo(uint64_t conn_id, bool readable, bool writable) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  std::shared_ptr<Connection> conn = it->second;
  if (writable) {
    FlushWrites(conn);
    if (conns_.find(conn_id) == conns_.end()) return;  // flush closed it
  }
  if (!readable || conn->closing) return;

  char buf[64 * 1024];
  size_t total = 0;
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->in.append(buf, static_cast<size_t>(n));
      total += static_cast<size_t>(n);
      if (total >= kMaxReadPerEvent) break;  // fairness: let peers run
      continue;
    }
    if (n == 0) {  // peer closed
      CloseConnection(conn_id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn_id);
    return;
  }
  ProcessFrames(conn);
}

void Server::ProcessFrames(const std::shared_ptr<Connection>& conn) {
  size_t handled = 0;
  while (handled < opts_.fairness_quantum && !conn->closing) {
    Frame frame;
    size_t consumed = 0;
    Status s = TryDecodeFrame(
        reinterpret_cast<const uint8_t*>(conn->in.data()), conn->in.size(),
        opts_.max_frame_bytes, &frame, &consumed);
    if (!s.ok()) {
      ProtocolError(conn, s);
      return;
    }
    if (consumed == 0) return;  // only a frame prefix buffered: need bytes
    conn->in.erase(0, consumed);
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    ++handled;
    DispatchFrame(conn, frame);
  }
  // Round-robin fairness: the quantum is spent but more input is already
  // buffered — yield to the other connections and continue next pass.
  if (!conn->closing && conn->in.size() >= kFrameLengthBytes &&
      !conn->process_scheduled) {
    conn->process_scheduled = true;
    const uint64_t conn_id = conn->id;
    loop_.Post([this, conn_id] {
      auto it = conns_.find(conn_id);
      if (it == conns_.end()) return;
      it->second->process_scheduled = false;
      ProcessFrames(it->second);
    });
  }
}

void Server::DispatchFrame(const std::shared_ptr<Connection>& conn,
                           const Frame& frame) {
  switch (frame.type) {
    case FrameType::kOpenSession:
      HandleOpenSession(conn, frame);
      return;
    case FrameType::kQuery:
      HandleQuery(conn, frame);
      return;
    case FrameType::kBatch:
      HandleBatch(conn, frame);
      return;
    case FrameType::kInsert:
    case FrameType::kDelete:
      HandleUpdate(conn, frame);
      return;
    case FrameType::kStats:
      HandleStats(conn, frame);
      return;
    case FrameType::kCheckpoint:
      HandleCheckpoint(conn, frame);
      return;
    case FrameType::kClose:
      SendFrame(conn, FrameType::kCloseOk, frame.request_id, "");
      conn->closing = true;
      FlushWrites(conn);
      return;
    default:
      // Response-typed tags arriving at the server are a protocol breach.
      ProtocolError(conn,
                    Status::InvalidArgument("response frame sent to server"));
      return;
  }
}

// ------------------------------------------------------------- frame logic

void Server::HandleOpenSession(const std::shared_ptr<Connection>& conn,
                               const Frame& frame) {
  OpenSessionReq req;
  Status s = req.Decode(frame.payload);
  if (!s.ok()) {
    ProtocolError(conn, s);
    return;
  }
  if (conn->session != nullptr) {
    ProtocolError(conn,
                  Status::InvalidArgument("session already open on connection"));
    return;
  }
  SessionOptions sopts;
  sopts.config = opts_.index_config;
  sopts.client_id = req.client_id;
  sopts.snapshot_reads = (req.flags & OpenSessionReq::kFlagSnapshotReads) != 0;
  conn->session =
      Session::OnIndex(index_, engine_pool_.get(), std::move(sopts));
  OpenOkMsg ok;
  ok.session_id = conn->session->session_id();
  SendFrame(conn, FrameType::kOpenOk, frame.request_id, ok.Encode());
}

void Server::HandleQuery(const std::shared_ptr<Connection>& conn,
                         const Frame& frame) {
  QueryReq req;
  Status s = req.Decode(frame.payload);
  if (!s.ok()) {
    ProtocolError(conn, s);
    return;
  }
  if (conn->session == nullptr) {
    ProtocolError(conn, Status::InvalidArgument("QUERY before OPEN_SESSION"));
    return;
  }
  if (!admission_.TryAdmit(conn->id)) {
    SendBusy(conn, frame.request_id);
    return;
  }
  QueryTicket ticket = conn->session->Submit(req.ToQuery());
  const uint64_t conn_id = conn->id;
  const uint64_t request_id = frame.request_id;
  const int64_t deadline_ms = DeadlineMs();
  completion_pool_->Submit([this, conn_id, request_id, ticket, deadline_ms] {
    bool completed = true;
    if (deadline_ms > 0) {
      completed = ticket.WaitFor(std::chrono::milliseconds(deadline_ms));
    } else {
      ticket.Wait();
    }
    ResultMsg m;
    if (!completed) {
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      m = ResultMsg::FromStatus(
          Status::TimedOut("request deadline exceeded"));
    } else if (!ticket.status().ok()) {
      m = ResultMsg::FromStatus(ticket.status());
    } else {
      m = ResultMsg::FromResult(ticket.result());
    }
    PostResponse(conn_id, FrameType::kResult, request_id, m.Encode());
    admission_.Release(conn_id);
  });
}

void Server::HandleBatch(const std::shared_ptr<Connection>& conn,
                         const Frame& frame) {
  BatchReq req;
  Status s = req.Decode(frame.payload);
  if (!s.ok()) {
    ProtocolError(conn, s);
    return;
  }
  if (conn->session == nullptr) {
    ProtocolError(conn, Status::InvalidArgument("BATCH before OPEN_SESSION"));
    return;
  }
  const size_t n = req.queries.size();
  if (n == 0) {
    SendFrame(conn, FrameType::kBatchResult, frame.request_id,
              BatchResultMsg().Encode());
    return;
  }
  // One admission unit: the batch is admitted or shed whole, so partial
  // batches never wedge capacity.
  if (!admission_.TryAdmit(conn->id, n)) {
    SendBusy(conn, frame.request_id);
    return;
  }
  std::vector<Query> queries;
  queries.reserve(n);
  for (const auto& q : req.queries) queries.push_back(q.ToQuery());
  std::vector<QueryTicket> tickets =
      conn->session->SubmitBatch(std::move(queries));
  const uint64_t conn_id = conn->id;
  const uint64_t request_id = frame.request_id;
  const int64_t deadline_ms = DeadlineMs();
  completion_pool_->Submit([this, conn_id, request_id, tickets, deadline_ms] {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(deadline_ms);
    BatchResultMsg batch;
    batch.results.reserve(tickets.size());
    for (const auto& ticket : tickets) {
      bool completed = true;
      if (deadline_ms > 0) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now());
        completed = ticket.WaitFor(
            remaining.count() > 0 ? remaining : std::chrono::milliseconds(0));
      } else {
        ticket.Wait();
      }
      if (!completed) {
        deadline_expired_.fetch_add(1, std::memory_order_relaxed);
        batch.results.push_back(ResultMsg::FromStatus(
            Status::TimedOut("batch deadline exceeded")));
      } else if (!ticket.status().ok()) {
        batch.results.push_back(ResultMsg::FromStatus(ticket.status()));
      } else {
        batch.results.push_back(ResultMsg::FromResult(ticket.result()));
      }
    }
    PostResponse(conn_id, FrameType::kBatchResult, request_id, batch.Encode());
    admission_.Release(conn_id, tickets.size());
  });
}

void Server::HandleUpdate(const std::shared_ptr<Connection>& conn,
                          const Frame& frame) {
  if (conn->session == nullptr) {
    ProtocolError(conn,
                  Status::InvalidArgument("update before OPEN_SESSION"));
    return;
  }
  const bool is_insert = frame.type == FrameType::kInsert;
  InsertReq insert;
  DeleteReq del;
  Status s = is_insert ? insert.Decode(frame.payload)
                       : del.Decode(frame.payload);
  if (!s.ok()) {
    ProtocolError(conn, s);
    return;
  }
  if (!admission_.TryAdmit(conn->id)) {
    SendBusy(conn, frame.request_id);
    return;
  }
  const uint64_t conn_id = conn->id;
  const uint64_t request_id = frame.request_id;
  std::shared_ptr<Session> session = conn->session;
  completion_pool_->Submit(
      [this, conn_id, request_id, session, is_insert, insert, del] {
        ResultMsg m;
        if (is_insert) {
          RowId row_id = 0;
          Status us = session->Insert(index_, insert.value, &row_id);
          m = us.ok() ? ResultMsg() : ResultMsg::FromStatus(us);
          if (us.ok()) {
            m.kind = ResultMsg::kUpdateAck;
            m.row_id = row_id;
          }
        } else {
          Status us = session->Delete(index_, del.value, del.row_id);
          m = us.ok() ? ResultMsg() : ResultMsg::FromStatus(us);
          if (us.ok()) m.kind = ResultMsg::kUpdateAck;
        }
        PostResponse(conn_id, FrameType::kResult, request_id, m.Encode());
        admission_.Release(conn_id);
      });
}

void Server::HandleStats(const std::shared_ptr<Connection>& conn,
                         const Frame& frame) {
  StatsMsg stats;
  auto put = [&stats](const char* key, uint64_t v) {
    stats.entries.emplace_back(key, v);
  };
  // Admission layer: the overload story in numbers.
  put("admission.shed_total", admission_.shed_total());
  put("admission.admitted_total", admission_.admitted_total());
  put("admission.global_in_flight", admission_.global_in_flight());
  put("admission.global_cap", admission_.options().global_inflight);
  put("admission.per_connection_cap",
      admission_.options().per_connection_inflight);
  put("admission.overload_state",
      static_cast<uint64_t>(admission_.state()));
  put("admission.rss_bytes", admission_.sampled_rss_bytes());
  // Server front-end counters.
  put("server.connections", connections_.load(std::memory_order_relaxed));
  put("server.frames_received",
      frames_received_.load(std::memory_order_relaxed));
  put("server.responses_sent",
      responses_sent_.load(std::memory_order_relaxed));
  put("server.protocol_errors",
      protocol_errors_.load(std::memory_order_relaxed));
  put("server.deadline_expired",
      deadline_expired_.load(std::memory_order_relaxed));
  // This connection's session.
  if (conn->session != nullptr) {
    put("session.session_id", conn->session->session_id());
    put("session.queries_submitted", conn->session->queries_submitted());
    put("session.in_flight", conn->session->in_flight());
  }
  // Served index: differential-layer shape plus both LatchStats tiers —
  // the side-table latch of the updatable wrapper and the piece/column
  // latches of the wrapped adaptive method.
  put("index.num_rows", index_->num_rows());
  put("index.pending_inserts", index_->pending_inserts());
  put("index.pending_deletes", index_->pending_deletes());
  put("index.commit_epoch", index_->commit_epoch());
  put("index.num_pieces", index_->NumPieces());
  auto put_latch_stats = [&stats](const std::string& prefix,
                                  const LatchStats& ls) {
    auto add = [&stats, &prefix](const char* name, uint64_t v) {
      stats.entries.emplace_back(prefix + name, v);
    };
    add("read_acquires", ls.read_acquires());
    add("write_acquires", ls.write_acquires());
    add("read_conflicts", ls.read_conflicts());
    add("write_conflicts", ls.write_conflicts());
    add("try_failures", ls.try_failures());
    add("read_wait_ns", static_cast<uint64_t>(ls.read_wait_ns()));
    add("write_wait_ns", static_cast<uint64_t>(ls.write_wait_ns()));
    add("optimistic_attempts", ls.optimistic_attempts());
    add("optimistic_retries", ls.optimistic_retries());
    add("optimistic_fallbacks", ls.optimistic_fallbacks());
    add("snapshot_reads", ls.snapshot_reads());
    add("snapshot_epoch_lag", ls.snapshot_epoch_lag());
    add("delta_publishes", ls.delta_publishes());
    add("delta_chain_max", ls.delta_chain_max());
    add("consolidations", ls.consolidations());
    add("consolidated_deltas", ls.consolidated_deltas());
  };
  put_latch_stats("index.side.", index_->latch_stats());
  put_latch_stats("index.base.", index_->base_index()->latch_stats());
  // Durability: WAL counters, recovery outcome, checkpoint progress.
  if (durable_ != nullptr) {
    const WalStats ws = durable_->wal_stats();
    put("wal.records_appended", ws.records_appended);
    put("wal.bytes_written", ws.bytes_written);
    put("wal.fsync_count", ws.fsync_count);
    put("wal.flush_batches", ws.flush_batches);
    put("wal.max_batch", ws.max_batch);
    put("wal.rotations", ws.rotations);
    put("wal.last_lsn", durable_->last_lsn());
    put("wal.durable_lsn", durable_->durable_lsn());
    const RecoveryStats& rs = durable_->recovery_stats();
    put("recovery.checkpoint_loaded", rs.checkpoint_loaded ? 1 : 0);
    put("recovery.checkpoint_epoch", rs.checkpoint_epoch);
    put("recovery.invalid_checkpoints", rs.invalid_checkpoints);
    put("recovery.adapted_restored", rs.adapted_restored ? 1 : 0);
    put("recovery.records_replayed", rs.records_replayed);
    put("recovery.records_skipped", rs.records_skipped);
    put("recovery.truncated_bytes", rs.truncated_bytes);
    put("checkpoint.last_epoch", durable_->last_checkpoint_epoch());
    put("checkpoint.taken", durable_->checkpoints_taken());
  }
  SendFrame(conn, FrameType::kStatsResult, frame.request_id, stats.Encode());
}

void Server::HandleCheckpoint(const std::shared_ptr<Connection>& conn,
                              const Frame& frame) {
  if (durable_ == nullptr) {
    ResultMsg m = ResultMsg::FromStatus(
        Status::NotSupported("server is running without durability"));
    SendFrame(conn, FrameType::kResult, frame.request_id, m.Encode());
    return;
  }
  // Checkpointing walks the whole cracked state — far too slow for the
  // I/O thread. A completion thread runs it; concurrent requests simply
  // serialize inside DurableIndex.
  const uint64_t conn_id = conn->id;
  const uint64_t request_id = frame.request_id;
  completion_pool_->Submit([this, conn_id, request_id] {
    uint64_t epoch = 0;
    Status s = durable_->Checkpoint(&epoch);
    ResultMsg m;
    if (!s.ok()) {
      m = ResultMsg::FromStatus(s);
    } else {
      m.kind = ResultMsg::kCheckpointAck;
      m.count = epoch;  // the captured epoch rides the count field
    }
    PostResponse(conn_id, FrameType::kResult, request_id, m.Encode());
  });
}

// ------------------------------------------------------------ response path

void Server::SendBusy(const std::shared_ptr<Connection>& conn,
                      uint64_t request_id) {
  BusyMsg busy;
  busy.overload_state = static_cast<uint8_t>(admission_.state());
  busy.shed_total = admission_.shed_total();
  SendFrame(conn, FrameType::kServerBusy, request_id, busy.Encode());
}

void Server::SendFrame(const std::shared_ptr<Connection>& conn,
                       FrameType type, uint64_t request_id,
                       const std::string& payload) {
  conn->out.push_back(EncodeFrame(type, request_id, payload));
  responses_sent_.fetch_add(1, std::memory_order_relaxed);
  FlushWrites(conn);
}

void Server::FlushWrites(const std::shared_ptr<Connection>& conn) {
  while (!conn->out.empty()) {
    const std::string& front = conn->out.front();
    const ssize_t n = ::write(conn->fd, front.data() + conn->out_offset,
                              front.size() - conn->out_offset);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      if (conn->out_offset == front.size()) {
        conn->out.pop_front();
        conn->out_offset = 0;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      loop_.EnableWrite(conn->fd, true);  // resume when the socket drains
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn->id);
    return;
  }
  loop_.EnableWrite(conn->fd, false);
  if (conn->closing) CloseConnection(conn->id);
}

void Server::ProtocolError(const std::shared_ptr<Connection>& conn,
                           const Status& error) {
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  conn->in.clear();  // nothing after a breach is trustworthy
  conn->closing = true;
  SendFrame(conn, FrameType::kError, 0,
            ResultMsg::FromStatus(error).Encode());
  // SendFrame's flush closes the connection once the error frame drains.
}

void Server::CloseConnection(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  std::shared_ptr<Connection> conn = it->second;
  loop_.Unregister(conn->fd);
  ::close(conn->fd);
  conn->fd = -1;
  conns_.erase(it);
  connections_.fetch_sub(1, std::memory_order_relaxed);
  if (conn->session != nullptr) {
    // Session close drains in-flight queries — that wait belongs on a
    // completion thread, never on the I/O loop.
    std::shared_ptr<Session> session = std::move(conn->session);
    completion_pool_->Submit([session]() mutable { session.reset(); });
  }
}

void Server::PostResponse(uint64_t conn_id, FrameType type,
                          uint64_t request_id, std::string payload) {
  loop_.Post([this, conn_id, type, request_id,
              payload = std::move(payload)] {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;  // connection gone: drop the response
    if (it->second->closing) return;
    SendFrame(it->second, type, request_id, payload);
  });
}

}  // namespace server
}  // namespace adaptidx
