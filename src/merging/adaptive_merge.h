#ifndef ADAPTIDX_MERGING_ADAPTIVE_MERGE_H_
#define ADAPTIDX_MERGING_ADAPTIVE_MERGE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/adaptive_index.h"
#include "latch/wait_queue_latch.h"
#include "merging/segment_store.h"
#include "storage/column.h"

namespace adaptidx {

/// \brief Tunables for adaptive merging.
struct MergeOptions {
  /// Records per initial sorted run — "the size of each new partition is
  /// equal to (or twice) the size of the memory available for sorting
  /// arriving records" (Section 4.2).
  size_t run_size = 1u << 20;

  /// Adaptive early termination (Section 3.3): when another query is
  /// waiting on the index latch, the merge step "commits work already
  /// completed and defers further planned work"; the remaining gaps of the
  /// current query are answered read-only from the runs.
  bool early_termination = true;

  /// Latch the index at all (off reproduces the Figure 13 experiment shape
  /// for merging).
  bool concurrency_control = true;

  /// Limited multi-version concurrency control (Section 4.3): "merge steps
  /// take records from many existing B-tree pages and write new pages ...
  /// shared access to the old pages and exclusive access to the new pages
  /// until they are committed". When set, the expensive gather+sort of a
  /// merge step runs under a *read* latch against the immutable runs, and
  /// only the final publication takes the write latch — revalidating
  /// coverage and discarding whatever a concurrent merge committed first.
  bool mvcc_commit = false;

  std::string name = "merge";
};

/// \brief Adaptive merging (Section 2, Figure 3; transactional treatment in
/// Section 4): "the first query ... produces sorted runs. Each subsequent
/// query ... applies at most one additional merge step to each record in the
/// desired key range."
///
/// Physical design:
///  - initial runs: sorted arrays built by the first query (its response
///    time absorbs run creation, the high first-touch cost of Figure 3);
///  - final partition: a SegmentStore of merged, fully sorted value ranges.
///
/// Records merged out of runs are removed *logically*: segment coverage
/// guarantees a covered range is never read from the runs again (the
/// in-memory analog of the partitioned-B-tree deletion of Section 4; the
/// B-tree realization in src/btree performs physical ghost deletes).
///
/// Concurrency: one WaitQueueLatch over the index — merge steps (and run
/// creation) take it in write mode, pure reads in read mode. Each gap merge
/// is a separately committed system transaction: the latch is released
/// between gaps, and with `early_termination` the query stops merging as
/// soon as contention appears.
class AdaptiveMergeIndex : public AdaptiveIndex {
 public:
  explicit AdaptiveMergeIndex(const Column* column, MergeOptions opts = {});

  std::string Name() const override { return opts_.name; }

  /// \brief Runs + final segments.
  size_t NumPieces() const override;

  size_t num_runs() const;
  size_t num_segments() const;
  bool initialized() const {
    return initialized_.load(std::memory_order_acquire);
  }

  /// \brief True once every value of the domain has been merged into the
  /// final partition (index fully optimized, state 5 of Figure 5).
  bool FullyMerged() const;

  /// \brief Structural invariants (sorted runs, valid segment store);
  /// requires a quiesced index.
  bool ValidateStructure() const;

 protected:
  Status ExecuteImpl(const Query& query, QueryContext* ctx,
                     QueryResult* result) override;

 private:
  struct Run {
    std::vector<CrackerEntry> entries;  ///< sorted by value
  };

  /// Sorted-run creation by the first query.
  void EnsureInitialized(QueryContext* ctx);

  /// Entries of `run` with value in [lo, hi), via binary search.
  static void RunRange(const Run& run, Value lo, Value hi, size_t* begin,
                       size_t* end);

  /// Merges the gap [lo, hi) out of all runs into a new final segment.
  /// Caller holds the index latch in write mode.
  void MergeGapLocked(Value lo, Value hi, QueryContext* ctx);

  /// K-way-merges the records of [lo, hi) out of the (immutable) runs
  /// without touching the final partition; used by both merge paths.
  std::vector<CrackerEntry> GatherGap(Value lo, Value hi,
                                      QueryContext* ctx) const;

  /// MVCC-style handling of one gap: gather under read latch, commit under
  /// a short write latch with coverage revalidation. Aggregates the whole
  /// gap into `consume` afterwards.
  template <typename Agg>
  void MergeGapMvcc(const ValueRange& gap, QueryContext* ctx, Agg* agg);

  /// Shared driver; `Agg` consumes covered parts and (read-only) run ranges.
  template <typename Agg>
  Status ExecuteRange(const ValueRange& range, QueryContext* ctx, Agg* agg);

  const Column* column_;
  const MergeOptions opts_;

  std::atomic<bool> initialized_{false};
  mutable WaitQueueLatch latch_{SchedulingPolicy::kFifo};
  std::vector<Run> runs_;
  SegmentStore final_;
  Value domain_lo_ = 0;
  Value domain_hi_ = 0;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_MERGING_ADAPTIVE_MERGE_H_
