#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "cracking/crack_kernels.h"
#include "cracking/cracker_array.h"
#include "storage/column.h"
#include "util/rng.h"

namespace adaptidx {
namespace {

std::vector<CrackerEntry> MakeEntries(const std::vector<Value>& values) {
  std::vector<CrackerEntry> out;
  out.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out.push_back(CrackerEntry{static_cast<RowId>(i), values[i]});
  }
  return out;
}

std::multiset<Value> ValueSet(const CrackerArray& a, Position b, Position e) {
  std::multiset<Value> s;
  for (Position i = b; i < e; ++i) s.insert(a.ValueAt(i));
  return s;
}

// ----------------------------------------------------- CrackInTwo basics

TEST(CrackInTwoTest, SimplePartition) {
  auto entries = MakeEntries({5, 1, 9, 3, 7});
  PairAccessor acc(entries.data());
  const Position split = CrackInTwo(acc, 0, 5, 5);
  EXPECT_EQ(split, 2u);
  EXPECT_TRUE(VerifyCrackInTwo(acc, 0, split, 5, 5));
}

TEST(CrackInTwoTest, AllBelowPivot) {
  auto entries = MakeEntries({1, 2, 3});
  PairAccessor acc(entries.data());
  EXPECT_EQ(CrackInTwo(acc, 0, 3, 100), 3u);
}

TEST(CrackInTwoTest, AllAtOrAbovePivot) {
  auto entries = MakeEntries({5, 6, 7});
  PairAccessor acc(entries.data());
  EXPECT_EQ(CrackInTwo(acc, 0, 3, 5), 0u);
}

TEST(CrackInTwoTest, EmptyRange) {
  auto entries = MakeEntries({1, 2, 3});
  PairAccessor acc(entries.data());
  EXPECT_EQ(CrackInTwo(acc, 1, 1, 2), 1u);
}

TEST(CrackInTwoTest, SingleElementBelow) {
  auto entries = MakeEntries({1});
  PairAccessor acc(entries.data());
  EXPECT_EQ(CrackInTwo(acc, 0, 1, 5), 1u);
}

TEST(CrackInTwoTest, SingleElementAtPivot) {
  auto entries = MakeEntries({5});
  PairAccessor acc(entries.data());
  EXPECT_EQ(CrackInTwo(acc, 0, 1, 5), 0u);
}

TEST(CrackInTwoTest, DuplicateValuesAroundPivot) {
  auto entries = MakeEntries({5, 5, 1, 5, 1});
  PairAccessor acc(entries.data());
  const Position split = CrackInTwo(acc, 0, 5, 5);
  EXPECT_EQ(split, 2u);
  EXPECT_TRUE(VerifyCrackInTwo(acc, 0, split, 5, 5));
}

TEST(CrackInTwoTest, SubrangeOnlyTouched) {
  auto entries = MakeEntries({100, 4, 2, 9, 200});
  PairAccessor acc(entries.data());
  CrackInTwo(acc, 1, 4, 5);
  // Positions outside [1, 4) are untouched.
  EXPECT_EQ(entries[0].value, 100);
  EXPECT_EQ(entries[4].value, 200);
}

TEST(CrackInTwoTest, PreservesRowIdPairing) {
  Column col = Column::UniqueRandom("a", 100, 5);
  CrackerArray arr(col, ArrayLayout::kRowIdValuePairs);
  arr.CrackTwo(0, 100, 50);
  for (Position i = 0; i < 100; ++i) {
    // Each value must still travel with its original rowID.
    EXPECT_EQ(col[arr.RowIdAt(i)], arr.ValueAt(i));
  }
}

// --------------------------------------------------- CrackInThree basics

TEST(CrackInThreeTest, SimpleThreeWay) {
  auto entries = MakeEntries({5, 1, 9, 3, 7, 2, 8});
  PairAccessor acc(entries.data());
  auto [p1, p2] = CrackInThree(acc, 0, 7, 3, 8);
  EXPECT_EQ(p1, 2u);  // {1, 2}
  EXPECT_EQ(p2, 5u);  // {5, 3, 7}
  for (Position i = 0; i < p1; ++i) EXPECT_LT(acc.ValueAt(i), 3);
  for (Position i = p1; i < p2; ++i) {
    EXPECT_GE(acc.ValueAt(i), 3);
    EXPECT_LT(acc.ValueAt(i), 8);
  }
  for (Position i = p2; i < 7; ++i) EXPECT_GE(acc.ValueAt(i), 8);
}

TEST(CrackInThreeTest, EmptyMiddle) {
  auto entries = MakeEntries({1, 10, 2, 20});
  PairAccessor acc(entries.data());
  auto [p1, p2] = CrackInThree(acc, 0, 4, 5, 6);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(p1, 2u);
}

TEST(CrackInThreeTest, AllInMiddle) {
  auto entries = MakeEntries({5, 6, 7});
  PairAccessor acc(entries.data());
  auto [p1, p2] = CrackInThree(acc, 0, 3, 5, 8);
  EXPECT_EQ(p1, 0u);
  EXPECT_EQ(p2, 3u);
}

TEST(CrackInThreeTest, EqualBounds) {
  auto entries = MakeEntries({3, 1, 5});
  PairAccessor acc(entries.data());
  auto [p1, p2] = CrackInThree(acc, 0, 3, 3, 3);
  EXPECT_EQ(p1, p2);
  for (Position i = 0; i < p1; ++i) EXPECT_LT(acc.ValueAt(i), 3);
}

// -------------------------------------------------------- Scan kernels

TEST(ScanKernelsTest, ScanCountAndSum) {
  auto entries = MakeEntries({1, 5, 3, 8, 2});
  PairAccessor acc(entries.data());
  EXPECT_EQ(ScanCount(acc, 0, 5, 2, 6), 3u);  // {5, 3, 2}
  EXPECT_EQ(ScanSum(acc, 0, 5, 2, 6), 10);
}

TEST(ScanKernelsTest, PositionalSum) {
  auto entries = MakeEntries({1, 5, 3});
  PairAccessor acc(entries.data());
  EXPECT_EQ(PositionalSum(acc, 0, 3), 9);
  EXPECT_EQ(PositionalSum(acc, 1, 2), 5);
  EXPECT_EQ(PositionalSum(acc, 2, 2), 0);
}

// ------------------------------------------- CrackerArray layout parity

class CrackerArrayLayoutTest : public ::testing::TestWithParam<ArrayLayout> {};

TEST_P(CrackerArrayLayoutTest, BuildFromColumn) {
  Column col("a", {30, 10, 20});
  CrackerArray arr(col, GetParam());
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr.ValueAt(0), 30);
  EXPECT_EQ(arr.RowIdAt(0), 0u);
  EXPECT_EQ(arr.ValueAt(2), 20);
  EXPECT_EQ(arr.RowIdAt(2), 2u);
}

TEST_P(CrackerArrayLayoutTest, CrackTwoPartitions) {
  Column col = Column::UniqueRandom("a", 512, 11);
  CrackerArray arr(col, GetParam());
  const Position split = arr.CrackTwo(0, 512, 256);
  EXPECT_EQ(split, 256u);  // unique 0..511: exactly 256 below the pivot
  for (Position i = 0; i < split; ++i) EXPECT_LT(arr.ValueAt(i), 256);
  for (Position i = split; i < 512; ++i) EXPECT_GE(arr.ValueAt(i), 256);
}

TEST_P(CrackerArrayLayoutTest, CrackThreePartitions) {
  Column col = Column::UniqueRandom("a", 512, 13);
  CrackerArray arr(col, GetParam());
  auto [p1, p2] = arr.CrackThree(0, 512, 100, 400);
  EXPECT_EQ(p1, 100u);
  EXPECT_EQ(p2, 400u);
}

TEST_P(CrackerArrayLayoutTest, CrackPreservesMultiset) {
  Column col = Column::UniformRandom("a", 300, 0, 50, 17);
  CrackerArray arr(col, GetParam());
  auto before = ValueSet(arr, 0, 300);
  arr.CrackTwo(0, 300, 25);
  arr.CrackThree(0, 300, 10, 40);
  EXPECT_EQ(ValueSet(arr, 0, 300), before);
}

TEST_P(CrackerArrayLayoutTest, SortRangeSortsAndKeepsPairs) {
  Column col = Column::UniqueRandom("a", 200, 19);
  CrackerArray arr(col, GetParam());
  arr.SortRange(50, 150);
  for (Position i = 51; i < 150; ++i) {
    EXPECT_LE(arr.ValueAt(i - 1), arr.ValueAt(i));
  }
  for (Position i = 0; i < 200; ++i) {
    EXPECT_EQ(col[arr.RowIdAt(i)], arr.ValueAt(i));
  }
}

TEST_P(CrackerArrayLayoutTest, ScanRangesMatchKernel) {
  Column col = Column::UniformRandom("a", 400, 0, 100, 23);
  CrackerArray arr(col, GetParam());
  uint64_t count = 0;
  int64_t sum = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    if (col[i] >= 20 && col[i] < 60) {
      ++count;
      sum += col[i];
    }
  }
  EXPECT_EQ(arr.ScanCountRange(0, 400, 20, 60), count);
  EXPECT_EQ(arr.ScanSumRange(0, 400, 20, 60), sum);
}

TEST_P(CrackerArrayLayoutTest, PositionalSumWholeArray) {
  Column col = Column::Sequential("a", 100);
  CrackerArray arr(col, GetParam());
  EXPECT_EQ(arr.PositionalSumRange(0, 100), 99 * 100 / 2);
}

TEST_P(CrackerArrayLayoutTest, CollectRowIds) {
  Column col("a", {30, 10, 20});
  CrackerArray arr(col, GetParam());
  std::vector<RowId> ids;
  arr.CollectRowIds(0, 3, &ids);
  EXPECT_EQ(ids, (std::vector<RowId>{0, 1, 2}));
}

TEST_P(CrackerArrayLayoutTest, LowerBoundInSorted) {
  Column col = Column::Sequential("a", 100);
  CrackerArray arr(col, GetParam());
  EXPECT_EQ(arr.LowerBoundInSorted(0, 100, 0), 0u);
  EXPECT_EQ(arr.LowerBoundInSorted(0, 100, 50), 50u);
  EXPECT_EQ(arr.LowerBoundInSorted(0, 100, 1000), 100u);
  EXPECT_EQ(arr.LowerBoundInSorted(20, 80, 10), 20u);
}

INSTANTIATE_TEST_SUITE_P(Layouts, CrackerArrayLayoutTest,
                         ::testing::Values(ArrayLayout::kRowIdValuePairs,
                                           ArrayLayout::kPairOfArrays),
                         [](const auto& info) {
                           return info.param == ArrayLayout::kRowIdValuePairs
                                      ? "Pairs"
                                      : "SplitArrays";
                         });

// ------------------------------------- Property sweep: random pivots

struct KernelPropertyParam {
  size_t n;
  uint64_t seed;
  bool duplicates;
};

class KernelPropertyTest
    : public ::testing::TestWithParam<KernelPropertyParam> {};

TEST_P(KernelPropertyTest, CrackInTwoInvariantHolds) {
  const auto p = GetParam();
  Column col = p.duplicates
                   ? Column::UniformRandom("a", p.n, 0,
                                           static_cast<Value>(p.n / 4 + 1),
                                           p.seed)
                   : Column::UniqueRandom("a", p.n, p.seed);
  CrackerArray arr(col, ArrayLayout::kPairOfArrays);
  auto before = ValueSet(arr, 0, p.n);
  Rng rng(p.seed ^ 0xabc);
  for (int i = 0; i < 16; ++i) {
    const Value pivot = rng.UniformRange(0, static_cast<Value>(p.n) + 1);
    const Position split = arr.CrackTwo(0, p.n, pivot);
    for (Position j = 0; j < split; ++j) ASSERT_LT(arr.ValueAt(j), pivot);
    for (Position j = split; j < p.n; ++j) ASSERT_GE(arr.ValueAt(j), pivot);
  }
  EXPECT_EQ(ValueSet(arr, 0, p.n), before);
}

TEST_P(KernelPropertyTest, CrackInThreeEquivalentToTwoTwos) {
  const auto p = GetParam();
  Column col = p.duplicates
                   ? Column::UniformRandom("a", p.n, 0,
                                           static_cast<Value>(p.n / 4 + 1),
                                           p.seed)
                   : Column::UniqueRandom("a", p.n, p.seed);
  Rng rng(p.seed ^ 0xdef);
  Value lo = rng.UniformRange(0, static_cast<Value>(p.n));
  Value hi = rng.UniformRange(0, static_cast<Value>(p.n));
  if (lo > hi) std::swap(lo, hi);

  CrackerArray three(col, ArrayLayout::kPairOfArrays);
  auto [p1, p2] = three.CrackThree(0, p.n, lo, hi);

  CrackerArray twos(col, ArrayLayout::kPairOfArrays);
  const Position q1 = twos.CrackTwo(0, p.n, lo);
  const Position q2 = twos.CrackTwo(q1, p.n, hi);

  EXPECT_EQ(p1, q1);
  EXPECT_EQ(p2, q2);
  EXPECT_EQ(ValueSet(three, p1, p2), ValueSet(twos, q1, q2));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelPropertyTest,
    ::testing::Values(KernelPropertyParam{1, 1, false},
                      KernelPropertyParam{2, 2, false},
                      KernelPropertyParam{17, 3, false},
                      KernelPropertyParam{256, 4, false},
                      KernelPropertyParam{1000, 5, false},
                      KernelPropertyParam{4096, 6, false},
                      KernelPropertyParam{17, 7, true},
                      KernelPropertyParam{256, 8, true},
                      KernelPropertyParam{1000, 9, true},
                      KernelPropertyParam{4096, 10, true}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_seed" +
             std::to_string(info.param.seed) +
             (info.param.duplicates ? "_dup" : "_uniq");
    });

}  // namespace
}  // namespace adaptidx
