#ifndef ADAPTIDX_CORE_ADAPTIVE_INDEX_H_
#define ADAPTIDX_CORE_ADAPTIVE_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/query.h"
#include "latch/latch_stats.h"
#include "storage/types.h"
#include "util/status.h"

namespace adaptidx {

class SnapshotScope;

/// \brief Per-query instrumentation, filled in by index implementations.
///
/// The fields mirror the paper's measurements: `crack_ns` is the "index
/// refinement" series of Figure 15, `wait_ns` the "wait time" series
/// (all blocked latch acquisitions, write and read), and `conflicts` the
/// count plotted conceptually in Figure 1 (right).
struct QueryStats {
  int64_t response_ns = 0;  ///< end-to-end query latency
  int64_t wait_ns = 0;      ///< time blocked on latches
  int64_t crack_ns = 0;     ///< time spent refining under write latches
  int64_t init_ns = 0;      ///< one-off index initialization charged here
  int64_t read_ns = 0;      ///< time reading data under read latches
  uint64_t conflicts = 0;   ///< blocked latch acquisitions
  uint64_t cracks = 0;      ///< crack/merge/sort refinement actions applied
  uint64_t pieces_touched = 0;       ///< pieces read or cracked
  bool refinement_skipped = false;   ///< conflict avoidance fired
  int64_t start_ns = 0;     ///< wall-clock start (sequence ordering)
  int64_t finish_ns = 0;    ///< wall-clock finish

  /// \brief Rolls another execution's stats into this one — the
  /// per-fragment accumulation of partitioned execution. Work counters add;
  /// the conflict-avoidance flag ORs (any fragment skipping refinement
  /// marks the query). The wall-clock fields (`response_ns`, `start_ns`,
  /// `finish_ns`) describe the whole query and stay with the caller —
  /// summing per-fragment wall time would double-count parallel fragments.
  void Accumulate(const QueryStats& other) {
    wait_ns += other.wait_ns;
    crack_ns += other.crack_ns;
    init_ns += other.init_ns;
    read_ns += other.read_ns;
    conflicts += other.conflicts;
    cracks += other.cracks;
    pieces_touched += other.pieces_touched;
    refinement_skipped |= other.refinement_skipped;
  }
};

/// \brief Carried through every query execution; owns the stats and
/// identifies the client/transaction for lock-manager interplay.
///
/// Contexts created through a `Session` carry the full identity triple:
/// the session that submitted the query, the client it belongs to, and the
/// user-transaction id its update operations lock under.
struct QueryContext {
  QueryStats stats;
  uint32_t client_id = 0;
  uint64_t txn_id = 0;
  uint32_t session_id = 0;  ///< issuing session; 0 outside the session API
  /// MVCC read hint: an `UpdatableIndex` answers this query against a
  /// per-query epoch snapshot of its differential side stores (no
  /// side-table latch held during the read) instead of the latched shared
  /// path. Stamped by sessions opened with `SessionOptions::snapshot_reads`;
  /// ignored by indexes without a differential layer.
  bool snapshot_reads = false;
  /// Transactional read scope (`Session::BeginSnapshot`): when set, an
  /// `UpdatableIndex` answers this query against the scope's pinned epoch
  /// — the same one for every query of the scope — instead of capturing
  /// per query. Shared ownership so async submissions that outlive an
  /// `EndSnapshot` race find a closed (never dangling) scope. Ignored by
  /// indexes without a differential layer.
  std::shared_ptr<SnapshotScope> snapshot_scope;

  /// \brief A context carrying this one's identity with fresh stats — the
  /// per-fragment context of partitioned execution.
  QueryContext SpawnFragment() const {
    QueryContext ctx;
    ctx.client_id = client_id;
    ctx.txn_id = txn_id;
    ctx.session_id = session_id;
    ctx.snapshot_reads = snapshot_reads;
    ctx.snapshot_scope = snapshot_scope;
    return ctx;
  }

  /// \brief Builds the latch acquisition sink wired to this query's stats
  /// and the index-wide aggregate.
  LatchAcquireContext LatchCtx(LatchStats* global) {
    return LatchAcquireContext{global, &stats.wait_ns, &stats.conflicts};
  }
};

/// \brief Abstract access method evaluated in the paper's experiments: plain
/// scan, full index (sort), database cracking, adaptive merging, hybrid
/// crack-sort, and the partitioned-B-tree realization of adaptive merging
/// all implement this interface; `PartitionedIndex` composes any of them
/// into range-partitioned shards.
///
/// Semantics: the index answers over a fixed base column (read-only user
/// data) with the predicate normalized to the half-open range [lo, hi).
/// All methods are thread-safe; adaptive implementations may refine their
/// physical structure as a side effect under the concurrency control being
/// studied.
///
/// The single entry point is `Execute(Query, ctx, result)`: one virtual
/// (`ExecuteImpl`) answers every query kind into a mergeable `QueryResult`,
/// so results can be computed per fragment and combined — the property
/// partitioned parallel execution depends on. The per-kind methods
/// (`RangeCount`/`RangeSum`/`RangeRowIds`/`RangeMinMax`) are non-virtual
/// convenience wrappers over `Execute`.
class AdaptiveIndex {
 public:
  virtual ~AdaptiveIndex() = default;

  /// \brief Short method name used in benchmark output ("scan", "sort",
  /// "crack", ...).
  virtual std::string Name() const = 0;

  /// \brief Executes one query of any kind. `result` is fully reset (and
  /// stamped with the query's kind) before dispatch; for kRowIds, `count`
  /// additionally reports the number of materialized ids. Indexes answer
  /// over their bound column and ignore the descriptor's name fields;
  /// kSumOther requires a second column and is only answerable by indexes
  /// that hold one (the engine's session layer plans it otherwise).
  Status Execute(const Query& query, QueryContext* ctx, QueryResult* result) {
    result->Reset(query.kind);
    // Empty (including inverted) predicates answer zero/none for every
    // kind; guarded here once so no implementation's arithmetic ever sees
    // lo > hi (a sorted index's hi-position minus lo-position would wrap).
    if (query.range.Empty()) return Status::OK();
    Status s = ExecuteImpl(query, ctx, result);
    if (s.ok() && query.kind == QueryKind::kRowIds) {
      result->count = result->row_ids.size();
    }
    return s;
  }

  // ---- convenience wrappers over Execute ------------------------------

  /// \brief Q1: `select count(*) from R where lo <= A < hi`.
  Status RangeCount(const ValueRange& range, QueryContext* ctx,
                    uint64_t* count) {
    QueryResult r;
    Status s = Execute(Query::Count("", "", range.lo, range.hi), ctx, &r);
    if (s.ok()) *count = r.count;
    return s;
  }

  /// \brief Q2: `select sum(A) from R where lo <= A < hi`.
  Status RangeSum(const ValueRange& range, QueryContext* ctx, int64_t* sum) {
    QueryResult r;
    Status s = Execute(Query::Sum("", "", range.lo, range.hi), ctx, &r);
    if (s.ok()) *sum = r.sum;
    return s;
  }

  /// \brief Materializes the rowIDs of qualifying tuples (the positional
  /// intermediate of Figure 6, used to fetch other columns).
  Status RangeRowIds(const ValueRange& range, QueryContext* ctx,
                     std::vector<RowId>* row_ids) {
    QueryResult r;
    Status s = Execute(Query::RowIds("", "", range.lo, range.hi), ctx, &r);
    if (s.ok()) *row_ids = std::move(r.row_ids);
    return s;
  }

  /// \brief Q3: `select min(A), max(A) from R where lo <= A < hi`.
  /// `*found` reports whether any row qualified; `*min`/`*max` are only
  /// written when it did.
  Status RangeMinMax(const ValueRange& range, QueryContext* ctx, Value* min,
                     Value* max, bool* found) {
    QueryResult r;
    Status s = Execute(Query::MinMax("", "", range.lo, range.hi), ctx, &r);
    if (!s.ok()) return s;
    *found = r.has_minmax;
    if (r.has_minmax) {
      *min = r.min_value;
      *max = r.max_value;
    }
    return s;
  }

  /// \brief Number of physical pieces/partitions currently in the index;
  /// 1 for non-adaptive methods. Diagnostics only.
  virtual size_t NumPieces() const { return 1; }

  /// \brief Index-wide latch statistics (thread-safe relaxed atomics).
  const LatchStats& latch_stats() const { return latch_stats_; }
  /// \brief Mutable access for implementations wiring acquisition sinks.
  LatchStats* mutable_latch_stats() { return &latch_stats_; }

 protected:
  /// \brief The one per-method virtual: answers `query` into the (already
  /// reset) result. Implementations dispatch on `query.kind` internally —
  /// the only per-kind switch left in the system lives next to each
  /// method's aggregation machinery.
  virtual Status ExecuteImpl(const Query& query, QueryContext* ctx,
                             QueryResult* result) = 0;

  LatchStats latch_stats_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_CORE_ADAPTIVE_INDEX_H_
