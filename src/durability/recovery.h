#ifndef ADAPTIDX_DURABILITY_RECOVERY_H_
#define ADAPTIDX_DURABILITY_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/updatable_index.h"
#include "storage/column.h"
#include "util/status.h"

namespace adaptidx {

/// \file
/// Crash recovery: checkpoint load + WAL replay, producing a ready-to-serve
/// `UpdatableIndex` whose adapted state is *inherited* from the previous
/// incarnation.
///
/// The protocol:
///  1. Load the newest checkpoint image that passes its CRC; a corrupt
///     newest image (torn by bit rot — a torn *write* is impossible, images
///     install by rename) falls back to the next-older one, and with none
///     valid recovery starts from the seed column at epoch 0.
///  2. Construct the index from the image: base column, differential side
///     stores, row-id sequence, commit epoch, and — when the wrapped method
///     is cracking — the cracked array and piece tiling.
///  3. Scan WAL segments in LSN order. A CRC-invalid tail is truncated on
///     the NEWEST segment only (the one a crash could tear); a bad record
///     in any sealed segment is hard corruption.
///  4. Replay every record with lsn > the image's epoch through the normal
///     Insert/Delete/Checkpoint path. LSNs and commit epochs advance in
///     lockstep (the WAL appends inside the commit critical section), so
///     replay re-assigns exactly the row ids the original run acknowledged
///     — verified per record, divergence is Corruption.

/// \brief What recovery did, for logging/STATS and tests.
struct RecoveryStats {
  bool checkpoint_loaded = false;   ///< an image was used (else seed start)
  uint64_t checkpoint_epoch = 0;    ///< epoch of the loaded image
  uint64_t invalid_checkpoints = 0;  ///< images skipped for bad CRC/format
  bool adapted_restored = false;    ///< cracked state inherited
  uint64_t records_replayed = 0;    ///< WAL records applied
  uint64_t records_skipped = 0;     ///< records at or below the image epoch
  uint64_t truncated_bytes = 0;     ///< torn tail cut from the newest segment
  uint64_t next_lsn = 1;            ///< where the reopened WAL continues
};

/// \brief Recovers the index from `data_dir`. `seed` is the column served
/// on a virgin directory (no checkpoint, no log) — its values participate
/// only then; a loaded checkpoint supersedes it entirely. `config`,
/// `lock_manager`, and `lock_resource` mirror the `UpdatableIndex`
/// constructor. On success `*out` is ready to serve (bind a WAL opened at
/// `stats->next_lsn` to it via `SetCommitSink`).
Status RecoverIndex(const std::string& data_dir, const Column& seed,
                    const IndexConfig& config, LockManager* lock_manager,
                    const std::string& lock_resource,
                    std::unique_ptr<UpdatableIndex>* out,
                    RecoveryStats* stats);

}  // namespace adaptidx

#endif  // ADAPTIDX_DURABILITY_RECOVERY_H_
