#include "cracking/optimistic_kernels.h"

namespace adaptidx {
namespace optkern {

// Disables TSAN instrumentation for one function: the optimistic read path
// races with crackers by design and discards every result that fails the
// seqlock validation, so the race is never observable. GCC (>= 8) and Clang
// both honor the attribute; other compilers simply keep the instrumentation
// they never had.
#if defined(__clang__) || defined(__GNUC__)
#define ADAPTIDX_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))
#else
#define ADAPTIDX_NO_SANITIZE_THREAD
#endif

namespace {

// Layout-specialized scalar loops. Kept free of function calls in the loop
// body (push_back aside, which only touches the thread-local output vector)
// so that everything the kernel reads racily lives inside the
// uninstrumented function.

ADAPTIDX_NO_SANITIZE_THREAD
uint64_t CountSplit(const Value* v, Position b, Position e, Value lo,
                    Value hi) {
  uint64_t n = 0;
  for (Position i = b; i < e; ++i) {
    n += static_cast<uint64_t>(v[i] >= lo && v[i] < hi);
  }
  return n;
}

ADAPTIDX_NO_SANITIZE_THREAD
uint64_t CountPairs(const CrackerEntry* p, Position b, Position e, Value lo,
                    Value hi) {
  uint64_t n = 0;
  for (Position i = b; i < e; ++i) {
    n += static_cast<uint64_t>(p[i].value >= lo && p[i].value < hi);
  }
  return n;
}

ADAPTIDX_NO_SANITIZE_THREAD
int64_t SumSplit(const Value* v, Position b, Position e) {
  int64_t s = 0;
  for (Position i = b; i < e; ++i) s += v[i];
  return s;
}

ADAPTIDX_NO_SANITIZE_THREAD
int64_t SumPairs(const CrackerEntry* p, Position b, Position e) {
  int64_t s = 0;
  for (Position i = b; i < e; ++i) s += p[i].value;
  return s;
}

ADAPTIDX_NO_SANITIZE_THREAD
int64_t SumFilteredSplit(const Value* v, Position b, Position e, Value lo,
                         Value hi) {
  int64_t s = 0;
  for (Position i = b; i < e; ++i) {
    s += (v[i] >= lo && v[i] < hi) ? v[i] : 0;
  }
  return s;
}

ADAPTIDX_NO_SANITIZE_THREAD
int64_t SumFilteredPairs(const CrackerEntry* p, Position b, Position e,
                         Value lo, Value hi) {
  int64_t s = 0;
  for (Position i = b; i < e; ++i) {
    s += (p[i].value >= lo && p[i].value < hi) ? p[i].value : 0;
  }
  return s;
}

// NOTE: the loop bodies below make no function calls on racy data — not
// even std::min/std::max. A call that the compiler chooses not to inline
// (std::min at -O1, say) executes in its own out-of-line, *instrumented*
// copy, silently undoing the no_sanitize attribute for exactly the racy
// access it performs.

ADAPTIDX_NO_SANITIZE_THREAD
void MinMaxSplit(const Value* v, Position b, Position e, Value* mn,
                 Value* mx) {
  Value lo = v[b];
  Value hi = v[b];
  for (Position i = b + 1; i < e; ++i) {
    const Value x = v[i];
    lo = x < lo ? x : lo;
    hi = x > hi ? x : hi;
  }
  *mn = lo;
  *mx = hi;
}

ADAPTIDX_NO_SANITIZE_THREAD
void MinMaxPairs(const CrackerEntry* p, Position b, Position e, Value* mn,
                 Value* mx) {
  Value lo = p[b].value;
  Value hi = p[b].value;
  for (Position i = b + 1; i < e; ++i) {
    const Value x = p[i].value;
    lo = x < lo ? x : lo;
    hi = x > hi ? x : hi;
  }
  *mn = lo;
  *mx = hi;
}

ADAPTIDX_NO_SANITIZE_THREAD
bool MinMaxFilteredSplit(const Value* v, Position b, Position e, Value flo,
                         Value fhi, Value* mn, Value* mx) {
  bool found = false;
  Value lo = 0;
  Value hi = 0;
  for (Position i = b; i < e; ++i) {
    const Value x = v[i];
    if (x < flo || x >= fhi) continue;
    lo = found && lo < x ? lo : x;
    hi = found && hi > x ? hi : x;
    found = true;
  }
  if (found) {
    *mn = lo;
    *mx = hi;
  }
  return found;
}

ADAPTIDX_NO_SANITIZE_THREAD
bool MinMaxFilteredPairs(const CrackerEntry* p, Position b, Position e,
                         Value flo, Value fhi, Value* mn, Value* mx) {
  bool found = false;
  Value lo = 0;
  Value hi = 0;
  for (Position i = b; i < e; ++i) {
    const Value x = p[i].value;
    if (x < flo || x >= fhi) continue;
    lo = found && lo < x ? lo : x;
    hi = found && hi > x ? hi : x;
    found = true;
  }
  if (found) {
    *mn = lo;
    *mx = hi;
  }
  return found;
}

// The rowID collectors copy the racy element into a local BEFORE calling
// push_back: push_back takes its argument by reference, so passing r[i]
// directly would let an out-of-line (instrumented) push_back perform the
// racy read itself.

ADAPTIDX_NO_SANITIZE_THREAD
void RowIdsSplit(const RowId* r, Position b, Position e,
                 std::vector<RowId>* out) {
  for (Position i = b; i < e; ++i) {
    const RowId x = r[i];
    out->push_back(x);
  }
}

ADAPTIDX_NO_SANITIZE_THREAD
void RowIdsPairs(const CrackerEntry* p, Position b, Position e,
                 std::vector<RowId>* out) {
  for (Position i = b; i < e; ++i) {
    const RowId x = p[i].row_id;
    out->push_back(x);
  }
}

ADAPTIDX_NO_SANITIZE_THREAD
void RowIdsFilteredSplit(const Value* v, const RowId* r, Position b,
                         Position e, Value lo, Value hi,
                         std::vector<RowId>* out) {
  for (Position i = b; i < e; ++i) {
    const Value val = v[i];
    const RowId x = r[i];
    if (val >= lo && val < hi) out->push_back(x);
  }
}

ADAPTIDX_NO_SANITIZE_THREAD
void RowIdsFilteredPairs(const CrackerEntry* p, Position b, Position e,
                         Value lo, Value hi, std::vector<RowId>* out) {
  for (Position i = b; i < e; ++i) {
    const Value val = p[i].value;
    const RowId x = p[i].row_id;
    if (val >= lo && val < hi) out->push_back(x);
  }
}

}  // namespace

uint64_t CountFiltered(const CrackerArray& a, Position b, Position e,
                       const ValueRange& r) {
  if (a.layout() == ArrayLayout::kPairOfArrays) {
    return CountSplit(a.ValuesSpan(), b, e, r.lo, r.hi);
  }
  return CountPairs(a.PairsSpan(), b, e, r.lo, r.hi);
}

int64_t SumPositional(const CrackerArray& a, Position b, Position e) {
  if (a.layout() == ArrayLayout::kPairOfArrays) {
    return SumSplit(a.ValuesSpan(), b, e);
  }
  return SumPairs(a.PairsSpan(), b, e);
}

int64_t SumFiltered(const CrackerArray& a, Position b, Position e,
                    const ValueRange& r) {
  if (a.layout() == ArrayLayout::kPairOfArrays) {
    return SumFilteredSplit(a.ValuesSpan(), b, e, r.lo, r.hi);
  }
  return SumFilteredPairs(a.PairsSpan(), b, e, r.lo, r.hi);
}

void MinMaxPositional(const CrackerArray& a, Position b, Position e,
                      Value* mn, Value* mx) {
  if (a.layout() == ArrayLayout::kPairOfArrays) {
    MinMaxSplit(a.ValuesSpan(), b, e, mn, mx);
  } else {
    MinMaxPairs(a.PairsSpan(), b, e, mn, mx);
  }
}

bool MinMaxFiltered(const CrackerArray& a, Position b, Position e,
                    const ValueRange& r, Value* mn, Value* mx) {
  if (a.layout() == ArrayLayout::kPairOfArrays) {
    return MinMaxFilteredSplit(a.ValuesSpan(), b, e, r.lo, r.hi, mn, mx);
  }
  return MinMaxFilteredPairs(a.PairsSpan(), b, e, r.lo, r.hi, mn, mx);
}

void CollectRowIds(const CrackerArray& a, Position b, Position e,
                   std::vector<RowId>* out) {
  if (a.layout() == ArrayLayout::kPairOfArrays) {
    RowIdsSplit(a.RowIdsSpan(), b, e, out);
  } else {
    RowIdsPairs(a.PairsSpan(), b, e, out);
  }
}

void CollectRowIdsFiltered(const CrackerArray& a, Position b, Position e,
                           const ValueRange& r, std::vector<RowId>* out) {
  if (a.layout() == ArrayLayout::kPairOfArrays) {
    RowIdsFilteredSplit(a.ValuesSpan(), a.RowIdsSpan(), b, e, r.lo, r.hi,
                        out);
  } else {
    RowIdsFilteredPairs(a.PairsSpan(), b, e, r.lo, r.hi, out);
  }
}

}  // namespace optkern
}  // namespace adaptidx
