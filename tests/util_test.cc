#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "util/histogram.h"
#include "util/interval_set.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace adaptidx {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryAndPredicates) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::Conflict().IsConflict());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
}

TEST(StatusTest, MessagePropagates) {
  Status s = Status::Busy("piece latch held");
  EXPECT_EQ(s.message(), "piece latch held");
  EXPECT_EQ(s.ToString(), "Busy: piece latch held");
}

TEST(StatusTest, CodeEquality) {
  EXPECT_EQ(Status::Busy("a"), Status::Busy("b"));
  EXPECT_FALSE(Status::Busy() == Status::Aborted());
}

TEST(StatusTest, NotOkPredicatesAreExclusive) {
  Status s = Status::Aborted();
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.IsBusy());
  EXPECT_TRUE(s.IsAborted());
}

// ------------------------------------------------------------- StopWatch

TEST(StopWatchTest, ElapsedIsMonotonic) {
  StopWatch sw;
  const int64_t a = sw.ElapsedNanos();
  const int64_t b = sw.ElapsedNanos();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

TEST(StopWatchTest, ResetRestarts) {
  StopWatch sw;
  while (sw.ElapsedNanos() < 100000) {
  }
  sw.Reset();
  EXPECT_LT(sw.ElapsedNanos(), 100000000);
}

TEST(StopWatchTest, UnitConversions) {
  StopWatch sw;
  while (sw.ElapsedNanos() < 1000000) {
  }
  EXPECT_GE(sw.ElapsedMillis(), 1.0);
  EXPECT_GE(sw.ElapsedMicros(), 1000.0);
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
}

TEST(ScopedTimerTest, AccumulatesIntoSink) {
  int64_t sink = 0;
  {
    ScopedTimer t(&sink);
    StopWatch sw;
    while (sw.ElapsedNanos() < 200000) {
    }
  }
  EXPECT_GE(sink, 200000);
}

TEST(ScopedTimerTest, NullSinkIsSafe) {
  ScopedTimer t(nullptr);  // must not crash on destruction
}

// ------------------------------------------------------------------ Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformRange(-50, 50);
    EXPECT_GE(v, -50);
    EXPECT_LT(v, 50);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  Rng rng(3);
  rng.Shuffle(&v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(*s.begin(), 0);
  EXPECT_EQ(*s.rbegin(), 99);
}

TEST(RngTest, ShuffleEmptyIsSafe) {
  std::vector<int> v;
  Rng rng(3);
  rng.Shuffle(&v);
  EXPECT_TRUE(v.empty());
}

TEST(RngTest, SkewedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Skewed(1000, 0.8), 1000u);
}

TEST(RngTest, SkewedConcentratesLow) {
  Rng rng(5);
  uint64_t low = 0;
  const int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Skewed(1000, 0.9) < 100) ++low;
  }
  // With 0.9 skew, far more than the uniform 10% land in the lowest decile.
  EXPECT_GT(low, static_cast<uint64_t>(kTrials) / 4);
}

TEST(RngTest, SkewZeroIsRoughlyUniform) {
  Rng rng(11);
  uint64_t low = 0;
  const int kTrials = 8000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Skewed(1000, 0.0) < 500) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / kTrials, 0.5, 0.05);
}

// ------------------------------------------------------------ Histogram

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_DOUBLE_EQ(h.Mean(), 1000.0);
}

TEST(HistogramTest, MeanOfKnownValues) {
  Histogram h;
  for (int64_t v : {100, 200, 300}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Mean(), 200.0);
}

TEST(HistogramTest, PercentileIsOrdered) {
  Histogram h;
  for (int64_t v = 1; v <= 10000; ++v) h.Add(v);
  EXPECT_LE(h.Percentile(10), h.Percentile(50));
  EXPECT_LE(h.Percentile(50), h.Percentile(90));
  EXPECT_LE(h.Percentile(90), h.Percentile(99));
  EXPECT_LE(h.Percentile(99), static_cast<double>(h.max()));
}

TEST(HistogramTest, MedianRoughlyCorrect) {
  Histogram h;
  for (int64_t v = 1; v <= 4096; ++v) h.Add(v);
  // Log-bucketed: expect the median within a factor of ~1.6.
  EXPECT_GT(h.Median(), 4096 / 2 / 1.7);
  EXPECT_LT(h.Median(), 4096 / 2 * 1.7);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Add(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, ZeroValueLandsInFirstBucket) {
  // Regression: the bucket computation uses __builtin_clzll, which is
  // undefined for 0 — zero must be routed to the first bucket explicitly.
  Histogram h;
  h.Add(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, ZeroAndOneStaySeparable) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Add(0);
  h.Add(1);
  EXPECT_EQ(h.count(), 101u);
  EXPECT_EQ(h.max(), 1);
  EXPECT_LE(h.Percentile(50), 1.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
}

TEST(HistogramTest, MergeEmptyKeepsStats) {
  Histogram a;
  Histogram b;
  a.Add(42);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 42);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(5);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Add(123);
  EXPECT_NE(h.ToString().find("count=1"), std::string::npos);
}

TEST(HistogramTest, LargeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Add(std::numeric_limits<int64_t>::max() / 2);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.Percentile(50), 0.0);
}

// ----------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, TasksRunConcurrentlyAcrossThreads) {
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      const int cur = in_flight.fetch_add(1) + 1;
      int prev = max_in_flight.load();
      while (prev < cur && !max_in_flight.compare_exchange_weak(prev, cur)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      in_flight.fetch_sub(1);
    });
  }
  pool.WaitIdle();
  EXPECT_GE(max_in_flight.load(), 1);
  EXPECT_LE(max_in_flight.load(), 2);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) pool.Submit([&counter] { ++counter; });
    pool.WaitIdle();
  }
  EXPECT_EQ(counter.load(), 10);
}

// ---------------------------------------------------------- IntervalSet

TEST(IntervalSetTest, EmptyCoversNothing) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.Covers(0, 1));
}

TEST(IntervalSetTest, SingleInterval) {
  IntervalSet s;
  s.Add(10, 20);
  EXPECT_TRUE(s.Covers(10, 20));
  EXPECT_TRUE(s.Covers(12, 15));
  EXPECT_FALSE(s.Covers(5, 15));
  EXPECT_FALSE(s.Covers(15, 25));
}

TEST(IntervalSetTest, EmptyIntervalIgnored) {
  IntervalSet s;
  s.Add(10, 10);
  s.Add(20, 15);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSetTest, AdjacentIntervalsCoalesce) {
  IntervalSet s;
  s.Add(0, 10);
  s.Add(10, 20);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Covers(0, 20));
}

TEST(IntervalSetTest, OverlappingIntervalsCoalesce) {
  IntervalSet s;
  s.Add(0, 15);
  s.Add(10, 30);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Covers(0, 30));
}

TEST(IntervalSetTest, ContainedIntervalAbsorbed) {
  IntervalSet s;
  s.Add(0, 100);
  s.Add(20, 30);
  EXPECT_EQ(s.size(), 1u);
}

TEST(IntervalSetTest, SpanningAddMergesMany) {
  IntervalSet s;
  s.Add(0, 10);
  s.Add(20, 30);
  s.Add(40, 50);
  s.Add(5, 45);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Covers(0, 50));
}

TEST(IntervalSetTest, DecomposeMixed) {
  IntervalSet s;
  s.Add(10, 20);
  s.Add(30, 40);
  std::vector<ValueRange> covered;
  std::vector<ValueRange> gaps;
  s.Decompose(5, 45, &covered, &gaps);
  ASSERT_EQ(covered.size(), 2u);
  EXPECT_EQ(covered[0].lo, 10);
  EXPECT_EQ(covered[0].hi, 20);
  EXPECT_EQ(covered[1].lo, 30);
  EXPECT_EQ(covered[1].hi, 40);
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0].lo, 5);
  EXPECT_EQ(gaps[0].hi, 10);
  EXPECT_EQ(gaps[1].lo, 20);
  EXPECT_EQ(gaps[1].hi, 30);
  EXPECT_EQ(gaps[2].lo, 40);
  EXPECT_EQ(gaps[2].hi, 45);
}

TEST(IntervalSetTest, DecomposeFullyCovered) {
  IntervalSet s;
  s.Add(0, 100);
  std::vector<ValueRange> covered;
  std::vector<ValueRange> gaps;
  s.Decompose(10, 90, &covered, &gaps);
  ASSERT_EQ(covered.size(), 1u);
  EXPECT_TRUE(gaps.empty());
}

TEST(IntervalSetTest, DecomposeFullyUncovered) {
  IntervalSet s;
  s.Add(100, 200);
  std::vector<ValueRange> covered;
  std::vector<ValueRange> gaps;
  s.Decompose(0, 50, &covered, &gaps);
  EXPECT_TRUE(covered.empty());
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].lo, 0);
  EXPECT_EQ(gaps[0].hi, 50);
}

TEST(IntervalSetTest, RandomizedCoverageAgainstBitmapOracle) {
  const int kDomain = 256;
  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    IntervalSet s;
    std::vector<bool> oracle(kDomain, false);
    for (int i = 0; i < 30; ++i) {
      const Value lo = rng.UniformRange(0, kDomain);
      const Value hi = rng.UniformRange(0, kDomain);
      if (lo < hi) {
        s.Add(lo, hi);
        for (Value v = lo; v < hi; ++v) oracle[static_cast<size_t>(v)] = true;
      }
    }
    // Decompose the whole domain and cross-check against the bitmap.
    std::vector<ValueRange> covered;
    std::vector<ValueRange> gaps;
    s.Decompose(0, kDomain, &covered, &gaps);
    std::vector<bool> rebuilt(kDomain, false);
    for (const auto& c : covered) {
      for (Value v = c.lo; v < c.hi; ++v) rebuilt[static_cast<size_t>(v)] = true;
    }
    for (const auto& g : gaps) {
      for (Value v = g.lo; v < g.hi; ++v) {
        EXPECT_FALSE(oracle[static_cast<size_t>(v)]);
      }
    }
    EXPECT_EQ(rebuilt, oracle);
  }
}

}  // namespace
}  // namespace adaptidx
