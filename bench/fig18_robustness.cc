/// \file Robustness of the crack-decision policies under hostile query
/// distributions (the stochastic-cracking study [16] grafted onto this
/// codebase's concurrency machinery). Each crack policy — exact-bound
/// cracking plus the stochastic variants DDC, DDR, and MDD1R — runs the
/// same single-client query sequence for every hostile distribution, and
/// the bench records per-query latency percentiles, worst case, variance,
/// and a convergence curve (mean per-query latency per eighth of the
/// sequence). Acceptance: under the sequential sweep — the distribution
/// that drives plain cracking quadratic — at least one of DDR/MDD1R must
/// beat the exact policy on steady-state worst-case per-query latency
/// (after a short common warm-up that pays the one-off data-arrival cost
/// for every policy alike).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "core/cracking_index.h"
#include "core/updatable_index.h"

namespace adaptidx {
namespace bench {
namespace {

/// Queries that pay the one-off column copy-in and are excluded from the
/// steady-state worst case (identical for every policy).
constexpr size_t kWarmup = 8;
constexpr size_t kCurveBuckets = 8;

struct Cell {
  std::string distribution;
  std::string policy;
  double total_secs = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  int64_t max_ns = 0;
  int64_t steady_max_ns = 0;  ///< max over queries after the warm-up
  double variance_ns2 = 0;
  uint64_t cracks = 0;
  std::vector<double> curve_mean_ns;  ///< mean latency per eighth
};

Cell RunCell(const Column& column, const std::vector<RangeQuery>& queries,
             QueryDistribution dist, CrackPolicy policy, uint64_t seed) {
  IndexConfig config;
  config.method = IndexMethod::kCrack;
  config.cracking.crack_policy = policy;
  config.cracking.policy_seed = seed;
  RunResult r = RunWorkload(column, config, queries, /*num_clients=*/1,
                            /*record_per_query=*/true, /*batch_size=*/1);
  Cell cell;
  cell.distribution = ToString(dist);
  cell.policy = ToString(policy);
  cell.total_secs = r.total_seconds;
  cell.p50_ns = r.response_hist.Percentile(50.0);
  cell.p99_ns = r.response_hist.Percentile(99.0);
  cell.max_ns = r.response_hist.max();
  cell.cracks = r.total_cracks;
  const auto& recs = r.records;
  double mean = 0;
  for (const auto& rec : recs) {
    mean += static_cast<double>(rec.stats.response_ns);
  }
  if (!recs.empty()) mean /= static_cast<double>(recs.size());
  double var = 0;
  for (const auto& rec : recs) {
    const double d = static_cast<double>(rec.stats.response_ns) - mean;
    var += d * d;
  }
  if (!recs.empty()) var /= static_cast<double>(recs.size());
  cell.variance_ns2 = var;
  for (size_t i = kWarmup; i < recs.size(); ++i) {
    cell.steady_max_ns =
        std::max(cell.steady_max_ns, recs[i].stats.response_ns);
  }
  for (size_t b = 0; b < kCurveBuckets; ++b) {
    const size_t from = recs.size() * b / kCurveBuckets;
    const size_t to = recs.size() * (b + 1) / kCurveBuckets;
    double bucket_mean = 0;
    for (size_t i = from; i < to; ++i) {
      bucket_mean += static_cast<double>(recs[i].stats.response_ns);
    }
    cell.curve_mean_ns.push_back(
        to > from ? bucket_mean / static_cast<double>(to - from) : 0.0);
  }
  return cell;
}

/// One policy × distribution cell of the mixed phase: a hostile
/// `GenerateMixed` read/write stream driven through the differential-update
/// layer (UpdatableIndex), so hostile query placement and the side-store
/// write path stress the crack policy together.
struct MixedCell {
  std::string distribution;
  std::string policy;
  double total_secs = 0;
  double read_p50_ns = 0;
  double read_p99_ns = 0;
  int64_t read_max_ns = 0;
  double write_p99_ns = 0;
  uint64_t reads = 0;
  uint64_t inserts = 0;
  uint64_t deletes = 0;
};

double Percentile(std::vector<int64_t>* lat, double p) {
  if (lat->empty()) return 0;
  std::sort(lat->begin(), lat->end());
  const size_t i = static_cast<size_t>(p / 100.0 *
                                       static_cast<double>(lat->size() - 1));
  return static_cast<double>((*lat)[i]);
}

MixedCell RunMixedCell(const Column& column, const std::vector<MixedOp>& ops,
                       QueryDistribution dist, CrackPolicy policy,
                       uint64_t seed) {
  IndexConfig config;
  config.method = IndexMethod::kCrack;
  config.cracking.crack_policy = policy;
  config.cracking.policy_seed = seed;
  UpdatableIndex index(column, config);
  QueryContext ctx;
  uint64_t txn = 0;
  // GenerateMixed deletes name previously inserted VALUES; the differential
  // layer deletes (value, rowid) pairs — resolve through a live multimap.
  std::unordered_multimap<Value, RowId> live;
  std::vector<int64_t> read_lat;
  std::vector<int64_t> write_lat;
  MixedCell cell;
  cell.distribution = ToString(dist);
  cell.policy = ToString(policy);
  const auto bench_start = std::chrono::steady_clock::now();
  for (const MixedOp& op : ops) {
    const auto start = std::chrono::steady_clock::now();
    switch (op.kind) {
      case MixedOp::Kind::kQuery: {
        const ValueRange range{op.query.lo, op.query.hi};
        if (op.query.type == QueryType::kCount) {
          uint64_t count = 0;
          index.RangeCount(range, &ctx, &count);
        } else if (op.query.type == QueryType::kSum) {
          int64_t sum = 0;
          index.RangeSum(range, &ctx, &sum);
        } else {
          Value mn = 0, mx = 0;
          bool found = false;
          index.RangeMinMax(range, &ctx, &mn, &mx, &found);
        }
        ++cell.reads;
        break;
      }
      case MixedOp::Kind::kInsert: {
        ctx.txn_id = ++txn;
        RowId id;
        if (index.Insert(op.value, &ctx, &id).ok()) live.emplace(op.value, id);
        ++cell.inserts;
        break;
      }
      case MixedOp::Kind::kDelete: {
        ctx.txn_id = ++txn;
        auto it = live.find(op.value);
        if (it != live.end()) {
          index.Delete(it->first, it->second, &ctx);
          live.erase(it);
        }
        ++cell.deletes;
        break;
      }
    }
    const int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
    (op.kind == MixedOp::Kind::kQuery ? read_lat : write_lat).push_back(ns);
  }
  cell.total_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();
  cell.read_max_ns = read_lat.empty()
                         ? 0
                         : *std::max_element(read_lat.begin(), read_lat.end());
  cell.read_p50_ns = Percentile(&read_lat, 50.0);
  cell.read_p99_ns = Percentile(&read_lat, 99.0);
  cell.write_p99_ns = Percentile(&write_lat, 99.0);
  return cell;
}

bool Run() {
  const size_t rows = EnvSize("AI_BENCH_ROWS", 1000000);
  const size_t num_queries = EnvSize("AI_BENCH_QUERIES", 512);
  const uint64_t policy_seed = EnvSize("AI_BENCH_POLICY_SEED", 2012);
  PrintHeader("Robustness: crack policies under hostile distributions",
              "rows=" + std::to_string(rows) +
                  " queries=" + std::to_string(num_queries) +
                  " selectivity=0.1% type=Q2(sum) clients=1 policy_seed=" +
                  std::to_string(policy_seed));

  Column column = MakeUniqueRandomColumn(rows);
  WorkloadGenerator gen(0, static_cast<Value>(rows));

  const QueryDistribution distributions[] = {
      QueryDistribution::kSequential,      QueryDistribution::kZipfian,
      QueryDistribution::kShiftingHotspot, QueryDistribution::kPeriodicPhases,
      QueryDistribution::kAdversarial,     QueryDistribution::kOltpOlap};
  const CrackPolicy policies[] = {CrackPolicy::kExact, CrackPolicy::kDDC,
                                  CrackPolicy::kDDR, CrackPolicy::kMDD1R};

  std::vector<Cell> cells;
  int64_t seq_plain_max = 0;
  int64_t seq_stochastic_max = 0;
  for (QueryDistribution dist : distributions) {
    WorkloadOptions wopts;
    wopts.num_queries = num_queries;
    wopts.selectivity = 0.001;
    wopts.type = QueryType::kSum;
    wopts.distribution = dist;
    wopts.seed = 18;
    const auto queries = gen.Generate(wopts);

    std::printf("\n%-18s %-8s %10s %12s %12s %12s %10s\n",
                ToString(dist).c_str(), "policy", "total(s)", "p99(ms)",
                "max(ms)", "steady(ms)", "cracks");
    for (CrackPolicy policy : policies) {
      Cell cell = RunCell(column, queries, dist, policy, policy_seed);
      std::printf("%-18s %-8s %10.3f %12.3f %12.3f %12.3f %10llu\n", "",
                  cell.policy.c_str(), cell.total_secs, cell.p99_ns / 1e6,
                  static_cast<double>(cell.max_ns) / 1e6,
                  static_cast<double>(cell.steady_max_ns) / 1e6,
                  static_cast<unsigned long long>(cell.cracks));
      if (dist == QueryDistribution::kSequential) {
        if (policy == CrackPolicy::kExact) {
          seq_plain_max = cell.steady_max_ns;
        } else if (policy == CrackPolicy::kDDR ||
                   policy == CrackPolicy::kMDD1R) {
          seq_stochastic_max =
              seq_stochastic_max == 0
                  ? cell.steady_max_ns
                  : std::min(seq_stochastic_max, cell.steady_max_ns);
        }
      }
      cells.push_back(std::move(cell));
    }
  }

  // Mixed phase (ROADMAP: hostile GenerateMixed streams through the
  // differential-update layer): a write_fraction share of each hostile
  // stream becomes inserts/deletes against an UpdatableIndex, so crack
  // policies are measured with the side-store write path interleaved —
  // informational (the gate below stays on the read-only sequential case).
  const QueryDistribution mixed_distributions[] = {
      QueryDistribution::kSequential, QueryDistribution::kShiftingHotspot,
      QueryDistribution::kOltpOlap};
  std::vector<MixedCell> mixed_cells;
  for (QueryDistribution dist : mixed_distributions) {
    WorkloadOptions wopts;
    wopts.num_queries = num_queries;
    wopts.selectivity = 0.001;
    wopts.type = QueryType::kSum;
    wopts.distribution = dist;
    wopts.seed = 18;
    wopts.write_fraction = 0.2;
    const auto ops = gen.GenerateMixed(wopts);

    std::printf("\nmixed/%-12s %-8s %10s %12s %12s %12s %6s %5s %5s\n",
                ToString(dist).c_str(), "policy", "total(s)", "r_p99(ms)",
                "r_max(ms)", "w_p99(ms)", "reads", "ins", "del");
    for (CrackPolicy policy : policies) {
      MixedCell cell = RunMixedCell(column, ops, dist, policy, policy_seed);
      std::printf(
          "%-18s %-8s %10.3f %12.3f %12.3f %12.3f %6llu %5llu %5llu\n", "",
          cell.policy.c_str(), cell.total_secs, cell.read_p99_ns / 1e6,
          static_cast<double>(cell.read_max_ns) / 1e6,
          cell.write_p99_ns / 1e6,
          static_cast<unsigned long long>(cell.reads),
          static_cast<unsigned long long>(cell.inserts),
          static_cast<unsigned long long>(cell.deletes));
      mixed_cells.push_back(std::move(cell));
    }
  }

  // Acceptance: sequential is the quadratic-collapse case for exact-bound
  // cracking; a random-pivot policy must improve the steady-state worst
  // case (the best of DDR/MDD1R is compared so one unlucky seed cannot
  // fail the gate while the property holds).
  const bool stochastic_wins =
      seq_stochastic_max > 0 && seq_stochastic_max < seq_plain_max;
  std::printf(
      "\nsequential steady-state worst case: exact %.3f ms, best "
      "stochastic (DDR/MDD1R) %.3f ms -> stochastic beats plain: %s\n",
      static_cast<double>(seq_plain_max) / 1e6,
      static_cast<double>(seq_stochastic_max) / 1e6,
      stochastic_wins ? "yes" : "NO");

  const char* json_env = std::getenv("AI_BENCH_ROBUSTNESS_JSON");
  const std::string json_path = json_env != nullptr && *json_env != '\0'
                                    ? json_env
                                    : "BENCH_robustness.json";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"fig18_robustness\",\n"
               "  \"rows\": %zu,\n  \"queries\": %zu,\n  \"clients\": 1,\n"
               "  \"policy_seed\": %llu,\n  \"warmup_queries\": %zu,\n"
               "  \"results\": [\n",
               rows, num_queries,
               static_cast<unsigned long long>(policy_seed), kWarmup);
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "    {\"distribution\": \"%s\", \"policy\": \"%s\", "
                 "\"total_secs\": %.6f, \"p50_ns\": %.0f, \"p99_ns\": %.0f, "
                 "\"max_ns\": %lld, \"steady_max_ns\": %lld, "
                 "\"variance_ns2\": %.3e, \"cracks\": %llu, "
                 "\"curve_mean_ns\": [",
                 c.distribution.c_str(), c.policy.c_str(), c.total_secs,
                 c.p50_ns, c.p99_ns, static_cast<long long>(c.max_ns),
                 static_cast<long long>(c.steady_max_ns), c.variance_ns2,
                 static_cast<unsigned long long>(c.cracks));
    for (size_t b = 0; b < c.curve_mean_ns.size(); ++b) {
      std::fprintf(f, "%.0f%s", c.curve_mean_ns[b],
                   b + 1 < c.curve_mean_ns.size() ? ", " : "");
    }
    std::fprintf(f, "]}%s\n", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"mixed_write_fraction\": 0.2,\n"
                  "  \"mixed_results\": [\n");
  for (size_t i = 0; i < mixed_cells.size(); ++i) {
    const MixedCell& c = mixed_cells[i];
    std::fprintf(
        f,
        "    {\"distribution\": \"%s\", \"policy\": \"%s\", "
        "\"total_secs\": %.6f, \"read_p50_ns\": %.0f, \"read_p99_ns\": "
        "%.0f, \"read_max_ns\": %lld, \"write_p99_ns\": %.0f, "
        "\"reads\": %llu, \"inserts\": %llu, \"deletes\": %llu}%s\n",
        c.distribution.c_str(), c.policy.c_str(), c.total_secs,
        c.read_p50_ns, c.read_p99_ns, static_cast<long long>(c.read_max_ns),
        c.write_p99_ns, static_cast<unsigned long long>(c.reads),
        static_cast<unsigned long long>(c.inserts),
        static_cast<unsigned long long>(c.deletes),
        i + 1 < mixed_cells.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"sequential_plain_steady_max_ns\": %lld,\n"
               "  \"sequential_stochastic_steady_max_ns\": %lld,\n"
               "  \"stochastic_beats_plain_worst_case\": %s\n}\n",
               static_cast<long long>(seq_plain_max),
               static_cast<long long>(seq_stochastic_max),
               stochastic_wins ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return stochastic_wins;
}

}  // namespace
}  // namespace bench
}  // namespace adaptidx

int main() {
  // Non-zero exit enforces the acceptance criterion in the CI bench-smoke
  // step; the JSON records the raw numbers either way.
  return adaptidx::bench::Run() ? 0 : 1;
}
