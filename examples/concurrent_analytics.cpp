/// \file Concurrent analytics: many dashboard clients fire range aggregates
/// at the same unindexed column at once. Demonstrates the paper's central
/// result — adaptive indexing under concurrency *benefits* from the extra
/// queries instead of suffering from them, and latch waits decay as the
/// index refines.
///
///   $ ./build/examples/concurrent_analytics [clients] [queries]

#include <cstdio>
#include <cstdlib>

#include "core/cracking_index.h"
#include "core/index_factory.h"
#include "engine/driver.h"
#include "workload/workload.h"

using namespace adaptidx;

namespace {

void PrintPhase(const char* label, const RunResult& r) {
  std::printf("%-26s %8.3f s %10.1f q/s %10.2f ms wait %8llu conflicts\n",
              label, r.total_seconds, r.throughput_qps,
              static_cast<double>(r.total_wait_ns) / 1e6,
              static_cast<unsigned long long>(r.total_conflicts));
}

}  // namespace

int main(int argc, char** argv) {
  const size_t clients = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const size_t queries = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1024;
  constexpr size_t kRows = 2'000'000;

  std::printf("Concurrent analytics demo: %zu clients, %zu queries, "
              "%zu-row column\n\n",
              clients, queries, kRows);
  Column column = Column::UniqueRandom("A", kRows, 7);

  WorkloadGenerator gen(0, static_cast<Value>(kRows));
  WorkloadOptions wopts;
  wopts.num_queries = queries;
  wopts.selectivity = 0.001;
  wopts.type = QueryType::kSum;
  wopts.seed = 99;
  const auto workload = gen.Generate(wopts);
  wopts.seed = 100;  // the refresh asks new questions over the same data
  const auto refresh = gen.Generate(wopts);

  // Phase 1: cold start — the first wave of clients hits a column with no
  // index at all. The very first query builds the cracker array while
  // everyone else queues (the expensive moment of Figure 15), after which
  // piece latches let the wave spread across disjoint pieces.
  IndexConfig config;
  config.method = IndexMethod::kCrack;
  auto index = MakeIndex(&column, config);
  DriverOptions dopts;
  dopts.num_clients = clients;

  std::printf("phase 1: cold column, piece latches\n");
  RunResult wave1 = Driver::Run(index.get(), workload, dopts);
  PrintPhase("  wave 1 (cold)", wave1);

  // Phase 2: the dashboard refreshes with *new* queries. The index the
  // first wave built as a side effect now pays off: latch waits and
  // response times collapse.
  RunResult wave2 = Driver::Run(index.get(), refresh, dopts);
  PrintPhase("  wave 2 (warmed by w1)", wave2);

  auto* crack = static_cast<CrackingIndex*>(index.get());
  std::printf("  index state: %zu cracks, %zu pieces (built entirely as a "
              "side effect)\n\n",
              crack->NumCracks(), crack->NumPieces());

  // Contrast: the same two waves under a single column-grain latch.
  std::printf("contrast: same workload, column latch\n");
  IndexConfig coarse;
  coarse.method = IndexMethod::kCrack;
  coarse.cracking.mode = ConcurrencyMode::kColumnLatch;
  coarse.cracking.name = "crack-column";
  auto column_latched = MakeIndex(&column, coarse);
  RunResult c1 = Driver::Run(column_latched.get(), workload, dopts);
  PrintPhase("  wave 1 (cold)", c1);
  RunResult c2 = Driver::Run(column_latched.get(), refresh, dopts);
  PrintPhase("  wave 2 (warmed)", c2);

  std::printf(
      "\nTakeaways: (1) wave 2 is far cheaper than wave 1 — the read-only\n"
      "dashboard built its own index; (2) piece latches accumulate less\n"
      "wait time than the column latch under identical load.\n");
  return 0;
}
