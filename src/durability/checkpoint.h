#ifndef ADAPTIDX_DURABILITY_CHECKPOINT_H_
#define ADAPTIDX_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/cracking_index.h"
#include "storage/types.h"
#include "util/status.h"

namespace adaptidx {

/// \file
/// Checkpoint images of the durability subsystem: one self-contained file
/// `checkpoint-<epoch>.ckpt` holding the base column, the differential
/// side stores, AND the adapted (cracked) state at one commit epoch.
///
/// Persisting the cracked state is the point of the exercise: recovery
/// restores the piece tiling, so the knowledge thousands of queries paid
/// to accumulate survives a restart — the first post-recovery query
/// answers from binary search on the restored pieces instead of re-paying
/// the cold full-column crack (the "adaptation is inherited" property the
/// recovery benchmark measures).
///
/// File format:
///
///     8 bytes magic "ADIXCKP1" | u64 payload_len | u32 crc32(payload)
///     | payload
///
/// with the payload encoded by the strict codec (util/wire.h):
/// format version, epoch, next row id, column name, base values,
/// insert/anti-matter pairs, and the optional adapted image (cracker
/// array + piece tiling). Images are installed with
/// `AtomicWriteFile` (write-temp-then-rename), so a crash mid-checkpoint
/// can never leave a torn file under a `checkpoint-*` name; a torn temp
/// file is simply ignored by `ListCheckpoints`. The CRC additionally
/// guards against bit rot, and recovery falls back to the next-older
/// image when the newest fails it.

/// \brief Everything a `checkpoint-<epoch>.ckpt` file holds — the full
/// recoverable state of a `DurableIndex` at one commit epoch.
struct CheckpointImage {
  uint64_t epoch = 0;       ///< commit epoch the image captures
  RowId next_row_id = 0;    ///< row-id sequence position at that epoch
  std::string column_name;  ///< served column's name
  std::vector<Value> base_values;  ///< the immutable base column
  /// Pending inserts / anti-matter at the epoch, (value, rowID)-sorted.
  std::vector<std::pair<Value, RowId>> inserts;
  std::vector<std::pair<Value, RowId>> anti_matter;
  /// Cracked state of the wrapped index; `pieces` empty when the index was
  /// never initialized (or the wrapped method is not cracking).
  bool has_adapted = false;
  CrackingIndex::AdaptedState adapted;
};

/// \brief Serializes `image` and atomically installs it as
/// `dir`/checkpoint-<epoch>.ckpt.
Status WriteCheckpoint(const std::string& dir, const CheckpointImage& image);

/// \brief Strictly decodes one image file; Corruption on a bad magic,
/// CRC mismatch, or malformed payload (recovery treats any of these as
/// "try the next-older image").
Status LoadCheckpoint(const std::string& path, CheckpointImage* out);

/// \brief Checkpoint files in `dir` by ascending epoch.
std::vector<std::pair<uint64_t, std::string>> ListCheckpoints(
    const std::string& dir);

/// \brief Deletes all but the newest `keep` checkpoint files (the runner-up
/// is kept as the fallback should the newest turn out corrupt).
Status PruneCheckpoints(const std::string& dir, size_t keep);

}  // namespace adaptidx

#endif  // ADAPTIDX_DURABILITY_CHECKPOINT_H_
