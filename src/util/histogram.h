#ifndef ADAPTIDX_UTIL_HISTOGRAM_H_
#define ADAPTIDX_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace adaptidx {

/// \brief Log-bucketed latency histogram (RocksDB-style).
///
/// Values (typically nanoseconds) are recorded into exponentially sized
/// buckets; percentiles are interpolated within buckets. Not thread-safe;
/// either use one per thread and `Merge`, or guard externally.
class Histogram {
 public:
  Histogram();

  /// \brief Records a single non-negative value.
  void Add(int64_t value);

  /// \brief Merges another histogram into this one.
  void Merge(const Histogram& other);

  /// \brief Removes all recorded values.
  void Clear();

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return max_; }
  double sum() const { return sum_; }

  /// \brief Arithmetic mean of recorded values; 0 when empty.
  double Mean() const;

  /// \brief Interpolated percentile, `p` in [0, 100].
  double Percentile(double p) const;

  double Median() const { return Percentile(50.0); }

  /// \brief One-line summary: count, mean, p50/p95/p99, max.
  std::string ToString(const std::string& unit = "ns") const;

 private:
  static constexpr size_t kNumBuckets = 128;

  /// Bucket index for a value: ~2 buckets per power of two.
  static size_t BucketFor(int64_t value);
  /// Upper bound (exclusive) of bucket `b`.
  static int64_t BucketLimit(size_t b);

  uint64_t count_;
  int64_t min_;
  int64_t max_;
  double sum_;
  std::vector<uint64_t> buckets_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_UTIL_HISTOGRAM_H_
