#ifndef ADAPTIDX_STORAGE_TABLE_H_
#define ADAPTIDX_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/column.h"
#include "util/status.h"

namespace adaptidx {

/// \brief A table is a set of aligned columns: all attribute values of tuple
/// i appear at position i of their respective columns (Section 5.1, Fig. 6).
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// \brief Number of tuples; 0 for a table with no columns.
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_.front()->size();
  }
  size_t num_columns() const { return columns_.size(); }

  /// \brief Adds a column. All columns must have the same length
  /// (positional alignment); a mismatched length is rejected.
  Status AddColumn(Column column);

  /// \brief Looks up a column by name; nullptr when absent.
  const Column* GetColumn(const std::string& name) const;

  /// \brief Column by ordinal position (order of AddColumn calls).
  const Column* GetColumnAt(size_t idx) const {
    return idx < columns_.size() ? columns_[idx].get() : nullptr;
  }

  std::vector<std::string> ColumnNames() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Column>> columns_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_STORAGE_TABLE_H_
