#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "latch/wait_queue_latch.h"

namespace adaptidx {
namespace {

using namespace std::chrono_literals;

TEST(WaitQueueLatchTest, UncontendedReadLock) {
  WaitQueueLatch latch;
  latch.ReadLock();
  latch.ReadUnlock();
  SUCCEED();
}

TEST(WaitQueueLatchTest, UncontendedWriteLock) {
  WaitQueueLatch latch;
  latch.WriteLock(0);
  latch.WriteUnlock();
  SUCCEED();
}

TEST(WaitQueueLatchTest, MultipleReadersShare) {
  WaitQueueLatch latch;
  latch.ReadLock();
  EXPECT_TRUE(latch.TryReadLock());
  latch.ReadUnlock();
  latch.ReadUnlock();
}

TEST(WaitQueueLatchTest, WriterExcludesReaders) {
  WaitQueueLatch latch;
  latch.WriteLock(0);
  EXPECT_FALSE(latch.TryReadLock());
  latch.WriteUnlock();
  EXPECT_TRUE(latch.TryReadLock());
  latch.ReadUnlock();
}

TEST(WaitQueueLatchTest, ReaderExcludesWriter) {
  WaitQueueLatch latch;
  latch.ReadLock();
  EXPECT_FALSE(latch.TryWriteLock());
  latch.ReadUnlock();
  EXPECT_TRUE(latch.TryWriteLock());
  latch.WriteUnlock();
}

TEST(WaitQueueLatchTest, WriterExcludesWriter) {
  WaitQueueLatch latch;
  latch.WriteLock(0);
  EXPECT_FALSE(latch.TryWriteLock());
  latch.WriteUnlock();
}

TEST(WaitQueueLatchTest, TryFailureRecordedInStats) {
  WaitQueueLatch latch;
  LatchStats stats;
  LatchAcquireContext ctx{&stats, nullptr, nullptr};
  latch.WriteLock(0, ctx);
  EXPECT_FALSE(latch.TryWriteLock(ctx));
  EXPECT_FALSE(latch.TryReadLock(ctx));
  latch.WriteUnlock();
  EXPECT_EQ(stats.try_failures(), 2u);
  EXPECT_EQ(stats.write_acquires(), 1u);
}

TEST(WaitQueueLatchTest, BlockedWriterWaitsForReader) {
  WaitQueueLatch latch;
  latch.ReadLock();
  std::atomic<bool> acquired{false};
  std::thread writer([&] {
    latch.WriteLock(0);
    acquired.store(true);
    latch.WriteUnlock();
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(acquired.load());
  latch.ReadUnlock();
  writer.join();
  EXPECT_TRUE(acquired.load());
}

TEST(WaitQueueLatchTest, BlockedReaderWaitsForWriter) {
  WaitQueueLatch latch;
  latch.WriteLock(0);
  std::atomic<bool> acquired{false};
  std::thread reader([&] {
    latch.ReadLock();
    acquired.store(true);
    latch.ReadUnlock();
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(acquired.load());
  latch.WriteUnlock();
  reader.join();
  EXPECT_TRUE(acquired.load());
}

TEST(WaitQueueLatchTest, WaitTimeAttributedToQueryStats) {
  WaitQueueLatch latch;
  LatchStats stats;
  int64_t wait_ns = 0;
  uint64_t conflicts = 0;
  LatchAcquireContext ctx{&stats, &wait_ns, &conflicts};
  latch.WriteLock(0);
  std::thread writer([&] {
    latch.WriteLock(1, ctx);
    latch.WriteUnlock();
  });
  std::this_thread::sleep_for(30ms);
  latch.WriteUnlock();
  writer.join();
  EXPECT_GE(wait_ns, 20 * 1000 * 1000);
  EXPECT_EQ(conflicts, 1u);
  EXPECT_EQ(stats.write_conflicts(), 1u);
}

TEST(WaitQueueLatchTest, ReaderBatchGrantedTogether) {
  // Figure 8 column-latch narrative: when the writer releases, all waiting
  // readers aggregate in parallel while later writers keep waiting.
  WaitQueueLatch latch;
  latch.WriteLock(0);
  std::atomic<int> readers_in{0};
  std::atomic<int> max_parallel{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      latch.ReadLock();
      const int cur = readers_in.fetch_add(1) + 1;
      int prev = max_parallel.load();
      while (prev < cur && !max_parallel.compare_exchange_weak(prev, cur)) {
      }
      std::this_thread::sleep_for(20ms);
      readers_in.fetch_sub(1);
      latch.ReadUnlock();
    });
  }
  std::this_thread::sleep_for(20ms);  // let all readers queue up
  latch.WriteUnlock();
  for (auto& t : readers) t.join();
  EXPECT_GE(max_parallel.load(), 2);
}

TEST(WaitQueueLatchTest, ReadersPreferredOverQueuedWriter) {
  WaitQueueLatch latch;
  latch.WriteLock(0);
  std::atomic<bool> w2_acquired{false};
  std::atomic<int> readers_done{0};
  std::thread w2([&] {
    latch.WriteLock(1);
    w2_acquired.store(true);
    latch.WriteUnlock();
  });
  std::this_thread::sleep_for(10ms);  // writer queues first
  std::vector<std::thread> readers;
  for (int i = 0; i < 2; ++i) {
    readers.emplace_back([&] {
      latch.ReadLock();
      std::this_thread::sleep_for(20ms);
      readers_done.fetch_add(1);
      latch.ReadUnlock();
    });
  }
  std::this_thread::sleep_for(10ms);
  latch.WriteUnlock();
  for (auto& t : readers) t.join();
  w2.join();
  // Both readers finished; the queued writer eventually acquired as well.
  EXPECT_EQ(readers_done.load(), 2);
  EXPECT_TRUE(w2_acquired.load());
}

TEST(WaitQueueLatchTest, PendingWriterBoundsSortedUnderMiddleOut) {
  WaitQueueLatch latch(SchedulingPolicy::kMiddleOut);
  latch.WriteLock(50);
  std::vector<std::thread> writers;
  std::atomic<int> started{0};
  for (Value b : {90, 20, 70, 30}) {
    writers.emplace_back([&latch, &started, b] {
      started.fetch_add(1);
      latch.WriteLock(b);
      latch.WriteUnlock();
    });
  }
  while (started.load() < 4) std::this_thread::yield();
  std::this_thread::sleep_for(30ms);  // let them enqueue
  auto bounds = latch.PendingWriterBounds();
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
  EXPECT_TRUE(latch.HasWaiters());
  latch.WriteUnlock();
  for (auto& t : writers) t.join();
  EXPECT_FALSE(latch.HasWaiters());
}

TEST(WaitQueueLatchTest, MiddleOutWakesMedianFirst) {
  // Paper example: bounds {20, 30, 50, 70, 90} queued; the median (50)
  // must run first so the remaining waiters can proceed in parallel.
  WaitQueueLatch latch(SchedulingPolicy::kMiddleOut);
  latch.WriteLock(0);
  std::mutex order_mu;
  std::vector<Value> order;
  std::vector<std::thread> writers;
  std::atomic<int> started{0};
  for (Value b : {20, 30, 50, 70, 90}) {
    writers.emplace_back([&, b] {
      started.fetch_add(1);
      latch.WriteLock(b);
      {
        std::lock_guard<std::mutex> g(order_mu);
        order.push_back(b);
      }
      latch.WriteUnlock();
    });
  }
  while (started.load() < 5) std::this_thread::yield();
  // Ensure all five are actually enqueued before releasing.
  while (latch.PendingWriterBounds().size() < 5) {
    std::this_thread::sleep_for(1ms);
  }
  latch.WriteUnlock();
  for (auto& t : writers) t.join();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], 50);  // the median waiter goes first
}

TEST(WaitQueueLatchTest, FifoWakesArrivalOrder) {
  WaitQueueLatch latch(SchedulingPolicy::kFifo);
  latch.WriteLock(0);
  std::mutex order_mu;
  std::vector<Value> order;
  std::vector<std::thread> writers;
  size_t enqueued = 0;
  for (Value b : {90, 20, 70}) {
    writers.emplace_back([&, b] {
      latch.WriteLock(b);
      {
        std::lock_guard<std::mutex> g(order_mu);
        order.push_back(b);
      }
      latch.WriteUnlock();
    });
    // Serialize enqueue order so arrival order is deterministic.
    ++enqueued;
    while (latch.PendingWriterBounds().size() < enqueued) {
      std::this_thread::sleep_for(1ms);
    }
  }
  latch.WriteUnlock();
  for (auto& t : writers) t.join();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 90);  // arrival order preserved
}

TEST(WaitQueueLatchTest, WriterCannotBargeOnGrantedReaderBatch) {
  // Regression for the grant-steal race: WriteUnlock wakes a waiting reader
  // batch, but the woken readers only become "active" after they re-acquire
  // the internal mutex. The old fast path read that window — no active
  // writer, zero active readers — as a free latch and barged in, stealing
  // the batch's grant. The fix publishes the batch size in
  // granted_readers_ at grant time, so an exclusive acquisition attempted
  // anywhere in the window must refuse: either the reader already converted
  // its grant (active) or the grant is still outstanding (granted > 0).
  // Loop to hit the window under many interleavings; under the fix the
  // check below is deterministic in every one of them.
  for (int iter = 0; iter < 200; ++iter) {
    WaitQueueLatch latch;
    latch.WriteLock(0);
    std::atomic<bool> reader_held{false};
    std::thread reader([&] {
      latch.ReadLock();
      // Stored while still holding the latch, so a later successful
      // exclusive acquisition is ordered after this store.
      reader_held.store(true);
      latch.ReadUnlock();
    });
    while (!latch.HasWaiters()) std::this_thread::yield();
    latch.WriteUnlock();  // grants the reader batch
    // We are now (very likely) inside the wakeup window: the reader was
    // granted but has not necessarily re-acquired the mutex yet. An
    // exclusive claim may only succeed after the reader actually held and
    // released its grant — claiming while reader_held is still false is
    // exactly the old steal.
    if (latch.TryWriteLock()) {
      EXPECT_TRUE(reader_held.load())
          << "exclusive fast path stole a granted reader batch (iter "
          << iter << ")";
      latch.WriteUnlock();
    }
    reader.join();
    EXPECT_TRUE(reader_held.load());
    // After the batch fully drained the latch really is free.
    EXPECT_TRUE(latch.TryWriteLock());
    latch.WriteUnlock();
  }
}

TEST(WaitQueueLatchTest, FastPathDoesNotBypassQueuedWriters) {
  // A free-looking latch with a non-empty writer queue must not be claimed
  // by a newcomer: that would jump the kMiddleOut schedule. Construct the
  // state via the grant window: writer queued behind a reader batch.
  for (int iter = 0; iter < 100; ++iter) {
    WaitQueueLatch latch(SchedulingPolicy::kMiddleOut);
    latch.WriteLock(0);
    std::thread reader([&] {
      latch.ReadLock();
      latch.ReadUnlock();
    });
    while (!latch.HasWaiters()) std::this_thread::yield();
    std::atomic<bool> w_done{false};
    std::thread queued_writer([&] {
      latch.WriteLock(42);
      w_done.store(true);
      latch.WriteUnlock();
    });
    while (latch.PendingWriterBounds().empty()) std::this_thread::yield();
    latch.WriteUnlock();  // batch-grants the reader; writer stays queued
    // No newcomer may claim the latch while the writer is queued. A
    // successful claim is legitimate only if the queued writer had already
    // acquired AND released first — in which case its w_done store is
    // ordered before our acquisition.
    if (latch.TryWriteLock()) {
      EXPECT_TRUE(w_done.load())
          << "fast path bypassed a queued writer (iter " << iter << ")";
      latch.WriteUnlock();
    }
    reader.join();
    queued_writer.join();
  }
}

TEST(WaitQueueLatchTest, WriterNotStarvedByContinuousReaderStream) {
  // Reader preference is the paper's policy, but a continuous stream of
  // overlapping readers must not starve a writer forever: after the
  // starvation limit of reader admissions, new readers queue and the writer
  // is admitted.
  WaitQueueLatch latch;
  std::atomic<bool> stop{false};
  std::atomic<bool> writer_acquired{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        latch.ReadLock();
        // Hold briefly so reader holds overlap and the latch never drains
        // on its own.
        for (volatile int spin = 0; spin < 50; ++spin) {
        }
        latch.ReadUnlock();
      }
    });
  }
  std::this_thread::sleep_for(10ms);  // stream is flowing
  std::thread writer([&] {
    latch.WriteLock(7);
    writer_acquired.store(true);
    latch.WriteUnlock();
  });
  // The backstop admits the writer after at most ~64 reader admissions slip
  // past it; seconds of wall clock is orders of magnitude more than needed.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!writer_acquired.load() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  stop.store(true);
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_TRUE(writer_acquired.load())
      << "writer starved by a continuous reader stream";
}

TEST(WaitQueueLatchTest, MiddleOutGrantOrderPinsMedianSemantics) {
  // Pins PickWriterLocked: with the queue sorted by bound, the grant always
  // picks index size/2. For bounds {10,20,30,40} queued together the full
  // grant order is therefore 30 (of 4), 20 (of {10,20,40}), 40 (of
  // {10,40}), 10.
  WaitQueueLatch latch(SchedulingPolicy::kMiddleOut);
  latch.WriteLock(0);
  std::mutex order_mu;
  std::vector<Value> order;
  std::vector<std::thread> writers;
  for (Value b : {40, 10, 30, 20}) {  // arrival order irrelevant: sorted
    writers.emplace_back([&, b] {
      latch.WriteLock(b);
      {
        std::lock_guard<std::mutex> g(order_mu);
        order.push_back(b);
      }
      latch.WriteUnlock();
    });
  }
  while (latch.PendingWriterBounds().size() < 4) {
    std::this_thread::sleep_for(1ms);
  }
  latch.WriteUnlock();
  for (auto& t : writers) t.join();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 30);
  EXPECT_EQ(order[1], 20);
  EXPECT_EQ(order[2], 40);
  EXPECT_EQ(order[3], 10);
}

TEST(WaitQueueLatchTest, GuardsReleaseOnScopeExit) {
  WaitQueueLatch latch;
  {
    WriteLatchGuard guard(&latch, 5);
    EXPECT_FALSE(latch.TryReadLock());
  }
  {
    ReadLatchGuard guard(&latch);
    EXPECT_TRUE(latch.TryReadLock());
    latch.ReadUnlock();
  }
  EXPECT_TRUE(latch.TryWriteLock());
  latch.WriteUnlock();
}

TEST(WaitQueueLatchTest, GuardEarlyRelease) {
  WaitQueueLatch latch;
  WriteLatchGuard guard(&latch, 1);
  guard.Release();
  EXPECT_TRUE(latch.TryWriteLock());
  latch.WriteUnlock();
  guard.Release();  // idempotent
}

TEST(WaitQueueLatchStressTest, ManyThreadsMixedLoad) {
  WaitQueueLatch latch(SchedulingPolicy::kMiddleOut);
  std::atomic<int> shared_state{0};
  std::atomic<bool> corrupted{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        if ((t + i) % 3 == 0) {
          latch.WriteLock(static_cast<Value>(i));
          // Writers must be exclusive: observe and restore.
          const int before = shared_state.exchange(t * 1000 + i);
          if (before != 0) corrupted.store(true);
          std::this_thread::yield();
          shared_state.store(0);
          latch.WriteUnlock();
        } else {
          latch.ReadLock();
          if (shared_state.load() != 0) corrupted.store(true);
          latch.ReadUnlock();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(corrupted.load());
  EXPECT_FALSE(latch.HasWaiters());
}

}  // namespace
}  // namespace adaptidx
