#ifndef ADAPTIDX_CRACKING_PIECE_MAP_H_
#define ADAPTIDX_CRACKING_PIECE_MAP_H_

#include <functional>
#include <map>
#include <memory>

#include "latch/wait_queue_latch.h"
#include "storage/types.h"

namespace adaptidx {

/// \brief A piece (segment) of the cracker array between two cracks
/// (Section 5.3). Pieces are the unit of piece-grained latching: "each
/// distinct column piece can be accessed by one query at a time for
/// cracking, while it can be accessed by multiple queries concurrently for
/// aggregation".
///
/// Field protection protocol:
///  - `begin` is immutable: splits always cut the tail off a piece.
///  - `end`, `hi_value`, `lo_value`, `sorted` change only while holding both
///    the owning index's structure latch (exclusive) and this piece's write
///    latch; readers see them stably while holding either the structure
///    latch (shared) or this piece's read latch.
///  - The piece object outlives map removal via shared_ptr, so a waiter
///    blocked on `latch` can safely wake after the piece has been split.
struct Piece {
  Piece(Position begin_pos, Position end_pos, Value lo, Value hi,
        SchedulingPolicy policy)
      : begin(begin_pos),
        end(end_pos),
        lo_value(lo),
        hi_value(hi),
        latch(policy) {}

  const Position begin;  ///< first position of the piece (immutable)
  Position end;          ///< one past the last position; shrinks on split
  Value lo_value;        ///< inclusive lower bound on values in the piece
  Value hi_value;        ///< exclusive upper bound on values in the piece
  bool sorted = false;   ///< piece known fully sorted (active strategy)
  WaitQueueLatch latch;  ///< piece latch

  size_t size() const { return end - begin; }
};

/// \brief Bookkeeping for the pieces of one cracker array: a position-keyed
/// map of Piece objects that tile [0, n).
///
/// Not internally synchronized: the owning index guards the map and all
/// piece boundary fields with its structure latch so that the AVL table of
/// contents and the piece map always change together atomically.
class PieceMap {
 public:
  /// \brief Starts with a single piece covering [0, array_size) and the
  /// whole value domain [domain_lo, domain_hi).
  PieceMap(size_t array_size, Value domain_lo, Value domain_hi,
           SchedulingPolicy policy);

  /// \brief The piece containing position `pos`; never null for
  /// pos < array_size.
  std::shared_ptr<Piece> FindByPosition(Position pos) const;

  /// \brief The piece starting exactly at `begin`; null when none does.
  std::shared_ptr<Piece> FindByBegin(Position begin) const;

  /// \brief The piece immediately after `p` in position order (the Figure 10
  /// walk); null when `p` is the last piece.
  std::shared_ptr<Piece> NextPiece(const Piece& p) const;

  /// \brief Splits `p` at `split_pos` where a crack on `pivot` was just
  /// placed. Caller holds the structure latch exclusively and `p`'s write
  /// latch.
  ///
  ///  - Interior split: `p` keeps [begin, split_pos) with hi_value=pivot; a
  ///    new piece [split_pos, old_end) with lo_value=pivot is inserted and
  ///    returned.
  ///  - `split_pos == p.begin` (no element < pivot): no new piece; `p`'s
  ///    lo_value is raised to pivot and `p` itself is returned.
  ///  - `split_pos == p.end` (all elements < pivot): no new piece; `p`'s
  ///    hi_value is lowered to pivot and the successor piece (or null at the
  ///    array end) is returned.
  ///
  /// The returned piece is always the one whose values are >= pivot.
  std::shared_ptr<Piece> Split(const std::shared_ptr<Piece>& p,
                               Position split_pos, Value pivot);

  size_t num_pieces() const { return by_begin_.size(); }
  size_t array_size() const { return array_size_; }
  SchedulingPolicy policy() const { return policy_; }

  /// \brief Visits pieces in position order.
  void ForEach(const std::function<void(const Piece&)>& fn) const;

  /// \brief Checks tiling invariants (pieces cover [0, n) without gaps or
  /// overlaps; value bounds are monotone); used by tests.
  bool Validate() const;

 private:
  const size_t array_size_;
  const SchedulingPolicy policy_;
  std::map<Position, std::shared_ptr<Piece>> by_begin_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_CRACKING_PIECE_MAP_H_
