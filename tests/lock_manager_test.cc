#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "lock/lock_manager.h"

namespace adaptidx {
namespace {

using namespace std::chrono_literals;

// -------------------------------------------------- Compatibility matrix

TEST(LockModesTest, CompatibilityMatrix) {
  using M = LockMode;
  // IS is compatible with everything but X.
  EXPECT_TRUE(LockModesCompatible(M::kIS, M::kIS));
  EXPECT_TRUE(LockModesCompatible(M::kIS, M::kIX));
  EXPECT_TRUE(LockModesCompatible(M::kIS, M::kS));
  EXPECT_TRUE(LockModesCompatible(M::kIS, M::kSIX));
  EXPECT_FALSE(LockModesCompatible(M::kIS, M::kX));
  // IX with IS/IX only.
  EXPECT_TRUE(LockModesCompatible(M::kIX, M::kIX));
  EXPECT_FALSE(LockModesCompatible(M::kIX, M::kS));
  EXPECT_FALSE(LockModesCompatible(M::kIX, M::kSIX));
  EXPECT_FALSE(LockModesCompatible(M::kIX, M::kX));
  // S with IS/S.
  EXPECT_TRUE(LockModesCompatible(M::kS, M::kS));
  EXPECT_FALSE(LockModesCompatible(M::kS, M::kIX));
  EXPECT_FALSE(LockModesCompatible(M::kS, M::kX));
  // SIX with IS only.
  EXPECT_TRUE(LockModesCompatible(M::kSIX, M::kIS));
  EXPECT_FALSE(LockModesCompatible(M::kSIX, M::kS));
  EXPECT_FALSE(LockModesCompatible(M::kSIX, M::kSIX));
  // X with nothing.
  EXPECT_FALSE(LockModesCompatible(M::kX, M::kIS));
  EXPECT_FALSE(LockModesCompatible(M::kX, M::kX));
}

TEST(LockModesTest, MatrixIsSymmetric) {
  for (int a = 0; a < 5; ++a) {
    for (int b = 0; b < 5; ++b) {
      EXPECT_EQ(LockModesCompatible(static_cast<LockMode>(a),
                                    static_cast<LockMode>(b)),
                LockModesCompatible(static_cast<LockMode>(b),
                                    static_cast<LockMode>(a)))
          << "modes " << a << "," << b;
    }
  }
}

TEST(LockModesTest, IntentionMapping) {
  EXPECT_EQ(IntentionFor(LockMode::kS), LockMode::kIS);
  EXPECT_EQ(IntentionFor(LockMode::kIS), LockMode::kIS);
  EXPECT_EQ(IntentionFor(LockMode::kX), LockMode::kIX);
  EXPECT_EQ(IntentionFor(LockMode::kIX), LockMode::kIX);
  EXPECT_EQ(IntentionFor(LockMode::kSIX), LockMode::kIX);
}

TEST(LockModesTest, ToStringNames) {
  EXPECT_STREQ(ToString(LockMode::kS), "S");
  EXPECT_STREQ(ToString(LockMode::kX), "X");
  EXPECT_STREQ(ToString(LockMode::kSIX), "SIX");
}

// ----------------------------------------------------- Basic operations

TEST(LockManagerTest, AcquireAndRelease) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "R/A", LockMode::kS).ok());
  LockMode held;
  EXPECT_TRUE(lm.HeldMode(1, "R/A", &held));
  EXPECT_EQ(held, LockMode::kS);
  lm.ReleaseAll(1);
  EXPECT_FALSE(lm.HeldMode(1, "R/A", &held));
  EXPECT_EQ(lm.num_locked_resources(), 0u);
}

TEST(LockManagerTest, HierarchicalIntentionLocks) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "R/A/piece:3", LockMode::kX).ok());
  LockMode held;
  ASSERT_TRUE(lm.HeldMode(1, "R", &held));
  EXPECT_EQ(held, LockMode::kIX);
  ASSERT_TRUE(lm.HeldMode(1, "R/A", &held));
  EXPECT_EQ(held, LockMode::kIX);
  ASSERT_TRUE(lm.HeldMode(1, "R/A/piece:3", &held));
  EXPECT_EQ(held, LockMode::kX);
}

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "R/A", LockMode::kS).ok());
  EXPECT_TRUE(lm.TryAcquire(2, "R/A", LockMode::kS).ok());
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, TryAcquireConflictIsBusy) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "R/A", LockMode::kX).ok());
  EXPECT_TRUE(lm.TryAcquire(2, "R/A", LockMode::kS).IsBusy());
  EXPECT_TRUE(lm.TryAcquire(2, "R/A", LockMode::kX).IsBusy());
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.TryAcquire(2, "R/A", LockMode::kX).ok());
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, TryAcquireFailureLeavesNoResidue) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "R/A/k1", LockMode::kX).ok());
  // Intention on R and R/A would succeed, but the leaf conflicts; nothing
  // may remain held by txn 2 afterwards.
  EXPECT_TRUE(lm.TryAcquire(2, "R/A/k1", LockMode::kX).IsBusy());
  EXPECT_FALSE(lm.HeldMode(2, "R", nullptr));
  EXPECT_FALSE(lm.HeldMode(2, "R/A", nullptr));
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, IntentionLocksDoNotConflict) {
  LockManager lm;
  // Two transactions locking different pieces of the same column.
  EXPECT_TRUE(lm.Acquire(1, "R/A/piece:1", LockMode::kX).ok());
  EXPECT_TRUE(lm.TryAcquire(2, "R/A/piece:2", LockMode::kX).ok());
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, CoarseLockBlocksFinerIntent) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "R/A", LockMode::kS).ok());
  // X on a piece requires IX on R/A, incompatible with the held S.
  EXPECT_TRUE(lm.TryAcquire(2, "R/A/piece:1", LockMode::kX).IsBusy());
  // But another S on a piece (IS on R/A) is fine.
  EXPECT_TRUE(lm.TryAcquire(2, "R/A/piece:1", LockMode::kS).ok());
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, ReacquireSameModeIsNoOp) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "R/A", LockMode::kS).ok());
  EXPECT_TRUE(lm.Acquire(1, "R/A", LockMode::kS).ok());
  lm.Release(1, "R/A");
  EXPECT_FALSE(lm.HeldMode(1, "R/A", nullptr));
}

TEST(LockManagerTest, UpgradeSToX) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "R/A", LockMode::kS).ok());
  ASSERT_TRUE(lm.Acquire(1, "R/A", LockMode::kX).ok());
  LockMode held;
  ASSERT_TRUE(lm.HeldMode(1, "R/A", &held));
  EXPECT_EQ(held, LockMode::kX);
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, UpgradeBlockedByOtherReader) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "R/A", LockMode::kS).ok());
  ASSERT_TRUE(lm.Acquire(2, "R/A", LockMode::kS).ok());
  EXPECT_TRUE(lm.TryAcquire(1, "R/A", LockMode::kX).IsBusy());
  lm.ReleaseAll(2);
  EXPECT_TRUE(lm.TryAcquire(1, "R/A", LockMode::kX).ok());
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, SPlusIXBecomesSIX) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "R/A", LockMode::kS).ok());
  ASSERT_TRUE(lm.Acquire(1, "R/A/k", LockMode::kX).ok());  // needs IX on R/A
  LockMode held;
  ASSERT_TRUE(lm.HeldMode(1, "R/A", &held));
  EXPECT_EQ(held, LockMode::kSIX);
  lm.ReleaseAll(1);
}

// ------------------------------------------------------ Blocking grants

TEST(LockManagerTest, BlockedAcquireGrantedOnRelease) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "R/A", LockMode::kX).ok());
  std::atomic<bool> granted{false};
  std::thread t([&] {
    EXPECT_TRUE(lm.Acquire(2, "R/A", LockMode::kX).ok());
    granted.store(true);
    lm.ReleaseAll(2);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(granted.load());
  lm.ReleaseAll(1);
  t.join();
  EXPECT_TRUE(granted.load());
}

TEST(LockManagerTest, FifoPreventsBarging) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "R", LockMode::kX).ok());
  std::atomic<bool> w2{false};
  std::thread t([&] {
    EXPECT_TRUE(lm.Acquire(2, "R", LockMode::kX).ok());
    w2.store(true);
    lm.ReleaseAll(2);
  });
  std::this_thread::sleep_for(20ms);
  // Txn 3 must not try-grab ahead of waiting txn 2.
  EXPECT_TRUE(lm.TryAcquire(3, "R", LockMode::kS).IsBusy());
  lm.ReleaseAll(1);
  t.join();
  EXPECT_TRUE(w2.load());
}

// --------------------------------------------------- Deadlock detection

TEST(LockManagerTest, SimpleDeadlockDetected) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "A", LockMode::kX).ok());
  ASSERT_TRUE(lm.Acquire(2, "B", LockMode::kX).ok());
  std::atomic<bool> t1_done{false};
  Status s1;
  std::thread t1([&] {
    s1 = lm.Acquire(1, "B", LockMode::kX);  // blocks on txn 2
    t1_done.store(true);
  });
  std::this_thread::sleep_for(30ms);
  EXPECT_FALSE(t1_done.load());
  // Txn 2 requesting A closes the cycle and must be aborted.
  Status s2 = lm.Acquire(2, "A", LockMode::kX);
  EXPECT_TRUE(s2.IsAborted());
  EXPECT_GE(lm.deadlocks_detected(), 1u);
  // Roll txn 2 back; txn 1 then proceeds.
  lm.ReleaseAll(2);
  t1.join();
  EXPECT_TRUE(s1.ok());
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, NoFalseDeadlockOnIndependentResources) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "A", LockMode::kX).ok());
  ASSERT_TRUE(lm.Acquire(2, "B", LockMode::kX).ok());
  EXPECT_TRUE(lm.TryAcquire(1, "C", LockMode::kX).ok());
  EXPECT_TRUE(lm.TryAcquire(2, "D", LockMode::kX).ok());
  EXPECT_EQ(lm.deadlocks_detected(), 0u);
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
}

// ------------------------------------- System-transaction conflict probe

TEST(LockManagerTest, HasConflictingDirectLock) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "R/A", LockMode::kS).ok());
  EXPECT_TRUE(lm.HasConflicting("R/A", LockMode::kX));
  EXPECT_FALSE(lm.HasConflicting("R/A", LockMode::kS));
  lm.ReleaseAll(1);
  EXPECT_FALSE(lm.HasConflicting("R/A", LockMode::kX));
}

TEST(LockManagerTest, HasConflictingCoveringAncestor) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "R/A", LockMode::kS).ok());
  // S on the column covers every piece: refining piece 7 would conflict.
  EXPECT_TRUE(lm.HasConflicting("R/A/piece:7", LockMode::kX));
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, IntentionAncestorDoesNotConflict) {
  LockManager lm;
  // Txn 1 locks one key; its IX on R/A must not block refinement of an
  // unrelated piece.
  ASSERT_TRUE(lm.Acquire(1, "R/A/key:5", LockMode::kX).ok());
  EXPECT_FALSE(lm.HasConflicting("R/A/piece:7", LockMode::kX));
  // But refinement of the whole column conflicts with the key lock below.
  EXPECT_TRUE(lm.HasConflicting("R/A", LockMode::kX));
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, HasConflictingIgnoresSelf) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(7, "R/A", LockMode::kS).ok());
  EXPECT_FALSE(lm.HasConflicting("R/A", LockMode::kX, /*self_txn=*/7));
  lm.ReleaseAll(7);
}

TEST(LockManagerTest, HasConflictingDescendantProbe) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "R/A/key:10", LockMode::kS).ok());
  EXPECT_TRUE(lm.HasConflicting("R/A", LockMode::kX));
  EXPECT_FALSE(lm.HasConflicting("R/B", LockMode::kX));
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, ProbeNeverAcquires) {
  LockManager lm;
  EXPECT_FALSE(lm.HasConflicting("R/A", LockMode::kX));
  EXPECT_EQ(lm.num_locked_resources(), 0u);
}

TEST(LockManagerTest, ReleaseAllIsIdempotent) {
  LockManager lm;
  lm.ReleaseAll(42);  // unknown txn: no-op
  ASSERT_TRUE(lm.Acquire(1, "R", LockMode::kS).ok());
  lm.ReleaseAll(1);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.num_locked_resources(), 0u);
}

// --------------------------------------------------------------- Stress

TEST(LockManagerStressTest, ManyTxnsDisjointResources) {
  LockManager lm;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&lm, &failures, t] {
      const uint64_t txn = static_cast<uint64_t>(t) + 1;
      for (int i = 0; i < 100; ++i) {
        const std::string res =
            "R/A/piece:" + std::to_string((t * 100 + i) % 16);
        Status s = lm.Acquire(txn, res, LockMode::kX);
        if (!s.ok()) {
          // Deadlock aborts are legal under contention; retry after
          // releasing, like a real transaction would.
          lm.ReleaseAll(txn);
          continue;
        }
        lm.ReleaseAll(txn);
      }
      (void)failures;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(lm.num_locked_resources(), 0u);
}

}  // namespace
}  // namespace adaptidx
