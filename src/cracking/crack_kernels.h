#ifndef ADAPTIDX_CRACKING_CRACK_KERNELS_H_
#define ADAPTIDX_CRACKING_CRACK_KERNELS_H_

#include <algorithm>
#include <cstdint>
#include <utility>

#include "storage/types.h"

namespace adaptidx {

/// \file
/// In-place partitioning kernels used by database cracking (Section 5.2).
///
/// Every crack in this library has the normalized semantics: a crack on
/// pivot `v` over the range [begin, end) leaves all elements with value < v
/// before the returned split position and all elements with value >= v at or
/// after it. Cracking is "an incremental quicksort where each query may
/// result in a partitioning step".
///
/// The kernels are templated over an accessor with
///   `Value ValueAt(Position) const` and `void Swap(Position, Position)`
/// so that both cracker-array layouts of Figure 7 (rowID-value pairs and
/// pair-of-arrays) share one implementation without virtual dispatch on the
/// hot path.
///
/// Two kernel families live here:
///  - the original branchy kernels (CrackInTwo, CrackInThree, Scan*). They
///    are the *reference tier*: ground truth for differential tests and the
///    baseline the micro-benchmarks compare against (reference_kernels.cc
///    pins their codegen to scalar).
///  - predicated (cmov-style) variants (CrackInTwoPred, CrackInThreePred)
///    that replace the data-dependent branches of the partition loop with
///    conditional moves. On random pivots the branchy kernel mispredicts
///    roughly every other element; the predicated kernel trades that for a
///    fixed number of unconditional loads/stores per step. These need the
///    accessor to additionally provide
///      `CrackerEntry Load(Position) const` and
///      `void Store(Position, const CrackerEntry&)`.
///
/// Raw-span kernels with SIMD tiers (AVX2 scans, AVX-512 compress-based
/// cracks) live in span_kernels.h; CrackerArray dispatches once per call to
/// the right layout/tier instance.

/// \brief Two-way crack: partitions [begin, end) around `pivot`.
/// \return the split position p: [begin, p) all < pivot, [p, end) all
/// >= pivot.
template <typename Accessor>
Position CrackInTwo(Accessor& a, Position begin, Position end, Value pivot) {
  int64_t x1 = static_cast<int64_t>(begin);
  int64_t x2 = static_cast<int64_t>(end) - 1;
  while (x1 <= x2) {
    if (a.ValueAt(static_cast<Position>(x1)) < pivot) {
      ++x1;
    } else {
      while (x2 >= x1 && a.ValueAt(static_cast<Position>(x2)) >= pivot) {
        --x2;
      }
      if (x1 < x2) {
        a.Swap(static_cast<Position>(x1), static_cast<Position>(x2));
        ++x1;
        --x2;
      }
    }
  }
  return static_cast<Position>(x1);
}

/// \brief Three-way crack (single pass): partitions [begin, end) into
/// `< lo`, `[lo, hi)`, and `>= hi` regions. Used when both query bounds fall
/// into the same piece, saving one pass over the piece.
/// \return pair (p1, p2): [begin, p1) < lo, [p1, p2) in [lo, hi),
/// [p2, end) >= hi. Requires lo <= hi.
template <typename Accessor>
std::pair<Position, Position> CrackInThree(Accessor& a, Position begin,
                                           Position end, Value lo, Value hi) {
  // Dutch-national-flag style three-way partition.
  int64_t low = static_cast<int64_t>(begin);   // next slot for "< lo"
  int64_t mid = static_cast<int64_t>(begin);   // scan cursor
  int64_t high = static_cast<int64_t>(end);    // first "> = hi" slot
  while (mid < high) {
    const Value v = a.ValueAt(static_cast<Position>(mid));
    if (v < lo) {
      if (low != mid) {
        a.Swap(static_cast<Position>(low), static_cast<Position>(mid));
      }
      ++low;
      ++mid;
    } else if (v >= hi) {
      --high;
      a.Swap(static_cast<Position>(mid), static_cast<Position>(high));
    } else {
      ++mid;
    }
  }
  return {static_cast<Position>(low), static_cast<Position>(mid)};
}

/// \brief Predicated two-way crack: same contract as CrackInTwo, but the
/// partition loop is branch-free. Both cursor elements are loaded, a single
/// predicate decides whether they must be exchanged, and the (possibly
/// swapped) elements are stored back unconditionally; cursor advancement is
/// arithmetic on the predicate results, so the only branch left is the loop
/// bound. Selects are written member-wise so compilers lower them to cmov.
template <typename Accessor>
Position CrackInTwoPred(Accessor& a, Position begin, Position end,
                        Value pivot) {
  Position left = begin;
  Position right = end;
  while (left + 1 < right) {
    // Invariant: [begin, left) < pivot and [right, end) >= pivot.
    const auto el = a.Load(left);
    const auto er = a.Load(right - 1);
    const Value vl = el.value;
    const Value vr = er.value;
    const bool sw = (vl >= pivot) & (vr < pivot);
    const Value nl_v = sw ? vr : vl;
    const Value nr_v = sw ? vl : vr;
    const RowId nl_r = sw ? er.row_id : el.row_id;
    const RowId nr_r = sw ? el.row_id : er.row_id;
    a.Store(left, {nl_r, nl_v});
    a.Store(right - 1, {nr_r, nr_v});
    // Each iteration classifies at least one element: if neither store
    // placed a "< pivot" at `left` nor a ">= pivot" at `right - 1`, the
    // swap predicate would have fired.
    left += static_cast<Position>(nl_v < pivot);
    right -= static_cast<Position>(nr_v >= pivot);
  }
  if (left < right && a.ValueAt(left) < pivot) ++left;
  return left;
}

/// \brief Predicated three-way crack: two predicated two-way passes. The
/// second pass only touches the upper remainder, so the result (and every
/// intermediate position) is identical to CrackInTwo on `lo` followed by
/// CrackInTwo on `hi` — which is also what the differential tests assert
/// against the single-pass reference kernel. Requires lo <= hi.
template <typename Accessor>
std::pair<Position, Position> CrackInThreePred(Accessor& a, Position begin,
                                               Position end, Value lo,
                                               Value hi) {
  const Position p1 = CrackInTwoPred(a, begin, end, lo);
  const Position p2 = CrackInTwoPred(a, p1, end, hi);
  return {p1, p2};
}

/// \brief Verifies the crack-in-two postcondition over [begin, end); used by
/// tests and debug assertions.
template <typename Accessor>
bool VerifyCrackInTwo(const Accessor& a, Position begin, Position split,
                      Position end, Value pivot) {
  for (Position i = begin; i < split; ++i) {
    if (a.ValueAt(i) >= pivot) return false;
  }
  for (Position i = split; i < end; ++i) {
    if (a.ValueAt(i) < pivot) return false;
  }
  return true;
}

/// \brief Counts elements of [begin, end) whose value lies in [lo, hi)
/// without reorganizing — the refinement-free fallback used by conflict
/// avoidance and the lazy strategy.
template <typename Accessor>
uint64_t ScanCount(const Accessor& a, Position begin, Position end, Value lo,
                   Value hi) {
  uint64_t n = 0;
  for (Position i = begin; i < end; ++i) {
    const Value v = a.ValueAt(i);
    n += (v >= lo && v < hi) ? 1 : 0;
  }
  return n;
}

/// \brief Sums elements of [begin, end) whose value lies in [lo, hi) without
/// reorganizing.
template <typename Accessor>
int64_t ScanSum(const Accessor& a, Position begin, Position end, Value lo,
                Value hi) {
  int64_t s = 0;
  for (Position i = begin; i < end; ++i) {
    const Value v = a.ValueAt(i);
    if (v >= lo && v < hi) s += v;
  }
  return s;
}

/// \brief Sums all elements of [begin, end) positionally (the region is
/// known to qualify because it lies between two cracks).
template <typename Accessor>
int64_t PositionalSum(const Accessor& a, Position begin, Position end) {
  int64_t s = 0;
  for (Position i = begin; i < end; ++i) s += a.ValueAt(i);
  return s;
}

}  // namespace adaptidx

#endif  // ADAPTIDX_CRACKING_CRACK_KERNELS_H_
