#include "core/index_factory.h"

#include "core/scan_index.h"
#include "core/sort_index.h"

namespace adaptidx {

std::string ToString(IndexMethod method) {
  switch (method) {
    case IndexMethod::kScan:
      return "scan";
    case IndexMethod::kSort:
      return "sort";
    case IndexMethod::kCrack:
      return "crack";
    case IndexMethod::kAdaptiveMerge:
      return "merge";
    case IndexMethod::kHybrid:
      return "hybrid";
    case IndexMethod::kBTreeMerge:
      return "btree-merge";
  }
  return "unknown";
}

std::unique_ptr<AdaptiveIndex> MakeIndex(const Column* column,
                                         const IndexConfig& config) {
  switch (config.method) {
    case IndexMethod::kScan:
      return std::make_unique<ScanIndex>(column);
    case IndexMethod::kSort:
      return std::make_unique<SortIndex>(column);
    case IndexMethod::kCrack:
      return std::make_unique<CrackingIndex>(column, config.cracking);
    case IndexMethod::kAdaptiveMerge:
      return std::make_unique<AdaptiveMergeIndex>(column, config.merge);
    case IndexMethod::kHybrid:
      return std::make_unique<HybridCrackSortIndex>(column, config.hybrid);
    case IndexMethod::kBTreeMerge:
      return std::make_unique<BTreeMergeIndex>(column, config.btree);
  }
  return nullptr;
}

}  // namespace adaptidx
