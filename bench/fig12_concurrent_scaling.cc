/// \file Reproduces Figure 12: effect of concurrency on total time (a) and
/// throughput (b). 1024 random sum queries of 0.01% selectivity, split over
/// 1..32 concurrent clients, for scan / sort / crack (piece latches).
///
/// Expected shape: all methods speed up with clients up to the core count,
/// then level out; cracking keeps its advantage at every client count —
/// concurrency is "not only possible but also beneficial".

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace adaptidx {
namespace bench {
namespace {

void Run() {
  const size_t rows = EnvSize("AI_BENCH_ROWS", 4000000);
  const size_t num_queries = EnvSize("AI_BENCH_QUERIES", 1024);
  const size_t max_clients = EnvSize("AI_BENCH_MAX_CLIENTS", 32);
  PrintHeader("Figure 12: effect of concurrency control on total time",
              "rows=" + std::to_string(rows) +
                  " queries=" + std::to_string(num_queries) +
                  " selectivity=0.01% type=Q2(sum) clients=1..32");

  Column column = MakeUniqueRandomColumn(rows);
  WorkloadGenerator gen(0, static_cast<Value>(rows));
  WorkloadOptions wopts;
  wopts.num_queries = num_queries;
  wopts.selectivity = 0.0001;
  wopts.type = QueryType::kSum;
  wopts.seed = 7;
  const auto queries = gen.Generate(wopts);

  std::vector<size_t> client_counts;
  for (size_t c = 1; c <= max_clients; c *= 2) client_counts.push_back(c);

  struct MethodRow {
    const char* name;
    IndexMethod method;
    std::vector<double> total_secs;
    std::vector<double> qps;
  };
  MethodRow methods[] = {{"scan", IndexMethod::kScan, {}, {}},
                         {"sort", IndexMethod::kSort, {}, {}},
                         {"crack", IndexMethod::kCrack, {}, {}}};

  for (auto& m : methods) {
    for (size_t clients : client_counts) {
      IndexConfig config;
      config.method = m.method;
      // Fresh index per run, exactly like the paper repeats the sequence.
      RunResult r = RunWorkload(column, config, queries, clients);
      m.total_secs.push_back(r.total_seconds);
      m.qps.push_back(r.throughput_qps);
    }
  }

  std::printf("\n(a) Total time for %zu queries (secs)\n", num_queries);
  std::printf("%-8s", "clients");
  for (const auto& m : methods) std::printf(" %12s", m.name);
  std::printf("\n");
  for (size_t i = 0; i < client_counts.size(); ++i) {
    std::printf("%-8zu", client_counts[i]);
    for (const auto& m : methods) std::printf(" %12.3f", m.total_secs[i]);
    std::printf("\n");
  }

  std::printf("\n(b) Throughput (queries / sec)\n");
  std::printf("%-8s", "clients");
  for (const auto& m : methods) std::printf(" %12s", m.name);
  std::printf("\n");
  for (size_t i = 0; i < client_counts.size(); ++i) {
    std::printf("%-8zu", client_counts[i]);
    for (const auto& m : methods) std::printf(" %12.1f", m.qps[i]);
    std::printf("\n");
  }

  const size_t last = client_counts.size() - 1;
  std::printf(
      "\npaper-shape check: crack faster than scan at 1 client: %s; at %zu "
      "clients: %s\n",
      methods[2].total_secs[0] < methods[0].total_secs[0] ? "yes" : "NO",
      client_counts[last],
      methods[2].total_secs[last] < methods[0].total_secs[last] ? "yes"
                                                                : "NO");
}

}  // namespace
}  // namespace bench
}  // namespace adaptidx

int main() {
  adaptidx::bench::Run();
  return 0;
}
