#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/updatable_index.h"
#include "test_util.h"
#include "util/rng.h"

namespace adaptidx {
namespace {

IndexConfig CrackConfig() {
  IndexConfig config;
  config.method = IndexMethod::kCrack;
  return config;
}

TEST(UpdatableIndexTest, ReadOnlyMatchesBase) {
  Column col = Column::UniqueRandom("A", 2000, 1);
  RangeOracle oracle(col);
  UpdatableIndex index(col, CrackConfig());
  QueryContext ctx;
  uint64_t count;
  int64_t sum;
  ASSERT_TRUE(index.RangeCount(ValueRange{100, 900}, &ctx, &count).ok());
  EXPECT_EQ(count, oracle.Count(100, 900));
  ASSERT_TRUE(index.RangeSum(ValueRange{100, 900}, &ctx, &sum).ok());
  EXPECT_EQ(sum, oracle.Sum(100, 900));
  EXPECT_EQ(index.num_rows(), 2000u);
  EXPECT_EQ(index.Name(), "updatable(crack)");
}

TEST(UpdatableIndexTest, InsertVisibleImmediately) {
  Column col = Column::UniqueRandom("A", 1000, 2);
  UpdatableIndex index(col, CrackConfig());
  QueryContext ctx;
  ctx.txn_id = 1;
  RowId id;
  ASSERT_TRUE(index.Insert(500, &ctx, &id).ok());
  EXPECT_GE(id, 1000u);  // fresh row id beyond the base
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{500, 501}, &ctx, &count).ok());
  EXPECT_EQ(count, 2u);  // base value 500 plus the insert
  int64_t sum;
  ASSERT_TRUE(index.RangeSum(ValueRange{500, 501}, &ctx, &sum).ok());
  EXPECT_EQ(sum, 1000);
  EXPECT_EQ(index.num_rows(), 1001u);
  EXPECT_EQ(index.pending_inserts(), 1u);
}

TEST(UpdatableIndexTest, DeleteBaseRowViaAntiMatter) {
  Column col = Column::UniqueRandom("A", 1000, 3);
  UpdatableIndex index(col, CrackConfig());
  // Find the row holding value 42.
  RowId target = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    if (col[i] == 42) target = static_cast<RowId>(i);
  }
  QueryContext ctx;
  ctx.txn_id = 2;
  ASSERT_TRUE(index.Delete(42, target, &ctx).ok());
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{42, 43}, &ctx, &count).ok());
  EXPECT_EQ(count, 0u);
  EXPECT_EQ(index.pending_deletes(), 1u);
  EXPECT_EQ(index.num_rows(), 999u);
  // Double delete is NotFound.
  EXPECT_TRUE(index.Delete(42, target, &ctx).IsNotFound());
}

TEST(UpdatableIndexTest, DeletePendingInsertCancels) {
  Column col = Column::UniqueRandom("A", 100, 4);
  UpdatableIndex index(col, CrackConfig());
  QueryContext ctx;
  ctx.txn_id = 3;
  RowId id;
  ASSERT_TRUE(index.Insert(1000, &ctx, &id).ok());
  ASSERT_TRUE(index.Delete(1000, id, &ctx).ok());
  EXPECT_EQ(index.pending_inserts(), 0u);
  EXPECT_EQ(index.pending_deletes(), 0u);  // cancelled, no anti-matter
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{1000, 1001}, &ctx, &count).ok());
  EXPECT_EQ(count, 0u);
}

TEST(UpdatableIndexTest, DeleteMissingTupleIsNotFound) {
  Column col("A", {10, 20, 30});
  UpdatableIndex index(col, CrackConfig());
  QueryContext ctx;
  EXPECT_TRUE(index.Delete(99, 0, &ctx).IsNotFound());   // wrong value
  EXPECT_TRUE(index.Delete(10, 5, &ctx).IsNotFound());   // row beyond base
}

TEST(UpdatableIndexTest, RowIdsReflectDifferentials) {
  Column col("A", {10, 20, 30, 40});
  UpdatableIndex index(col, CrackConfig());
  QueryContext ctx;
  ctx.txn_id = 4;
  ASSERT_TRUE(index.Delete(20, 1, &ctx).ok());
  RowId new_id;
  ASSERT_TRUE(index.Insert(25, &ctx, &new_id).ok());
  std::vector<RowId> ids;
  ASSERT_TRUE(index.RangeRowIds(ValueRange{0, 100}, &ctx, &ids).ok());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<RowId>{0, 2, 3, new_id}));
}

TEST(UpdatableIndexTest, CheckpointFoldsDifferentials) {
  Column col = Column::UniqueRandom("A", 1000, 5);
  UpdatableIndex index(col, CrackConfig());
  QueryContext ctx;
  ctx.txn_id = 5;
  for (Value v = 5000; v < 5100; ++v) {
    ASSERT_TRUE(index.Insert(v, &ctx).ok());
  }
  RowId target = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    if (col[i] == 7) target = static_cast<RowId>(i);
  }
  ASSERT_TRUE(index.Delete(7, target, &ctx).ok());

  const size_t rows_before = index.num_rows();
  ASSERT_TRUE(index.Checkpoint().ok());
  EXPECT_EQ(index.num_rows(), rows_before);
  EXPECT_EQ(index.pending_inserts(), 0u);
  EXPECT_EQ(index.pending_deletes(), 0u);

  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{5000, 5100}, &ctx, &count).ok());
  EXPECT_EQ(count, 100u);
  ASSERT_TRUE(index.RangeCount(ValueRange{7, 8}, &ctx, &count).ok());
  EXPECT_EQ(count, 0u);
}

TEST(UpdatableIndexTest, MixedWorkloadMatchesOracle) {
  // Apply a random update stream and mirror it into a multiset oracle.
  Column col = Column::UniformRandom("A", 2000, 0, 1000, 6);
  UpdatableIndex index(col, CrackConfig());
  std::multiset<Value> oracle(col.values().begin(), col.values().end());
  std::vector<std::pair<Value, RowId>> live;
  for (size_t i = 0; i < col.size(); ++i) {
    live.emplace_back(col[i], static_cast<RowId>(i));
  }
  Rng rng(7);
  QueryContext ctx;
  for (int i = 0; i < 500; ++i) {
    ctx.txn_id = static_cast<uint64_t>(i) + 10;
    const int op = static_cast<int>(rng.Uniform(10));
    if (op < 4) {
      const Value v = rng.UniformRange(0, 1000);
      RowId id;
      ASSERT_TRUE(index.Insert(v, &ctx, &id).ok());
      oracle.insert(v);
      live.emplace_back(v, id);
    } else if (op < 6 && !live.empty()) {
      const size_t pick = rng.Uniform(live.size());
      const auto [v, id] = live[pick];
      ASSERT_TRUE(index.Delete(v, id, &ctx).ok());
      oracle.erase(oracle.find(v));
      live.erase(live.begin() + static_cast<long>(pick));
    } else {
      Value lo = rng.UniformRange(0, 1000);
      Value hi = rng.UniformRange(0, 1000);
      if (lo > hi) std::swap(lo, hi);
      uint64_t count;
      ASSERT_TRUE(index.RangeCount(ValueRange{lo, hi}, &ctx, &count).ok());
      const uint64_t expected = std::distance(oracle.lower_bound(lo),
                                              oracle.lower_bound(hi));
      ASSERT_EQ(count, expected) << "range [" << lo << "," << hi << ")";
    }
    if (i == 250) {
      // Checkpoint re-assigns row ids; rebuild the live list through the
      // public rowID interface.
      ASSERT_TRUE(index.Checkpoint().ok());
      live.clear();
      for (Value v = 0; v < 1000; ++v) {
        std::vector<RowId> ids;
        ASSERT_TRUE(
            index.RangeRowIds(ValueRange{v, v + 1}, &ctx, &ids).ok());
        for (RowId id : ids) live.emplace_back(v, id);
      }
      ASSERT_EQ(live.size(), oracle.size());
    }
  }
  EXPECT_EQ(index.num_rows(), oracle.size());
}

TEST(UpdatableIndexTest, UpdaterLocksForceRefinementSkip) {
  // Section 3.3: while a user transaction holds a conflicting lock, the
  // system transaction forgoes refinement — wired end-to-end here.
  Column col = Column::UniqueRandom("A", 2000, 8);
  LockManager lm;
  UpdatableIndex index(col, CrackConfig(), &lm, "R/A");

  // A long-running user transaction holds a key lock (not auto-committed:
  // acquired directly on the lock manager, as a multi-statement txn would).
  ASSERT_TRUE(lm.Acquire(77, "R/A/key:123", LockMode::kX).ok());

  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{100, 200}, &ctx, &count).ok());
  EXPECT_TRUE(ctx.stats.refinement_skipped);  // IX on R/A conflicts with X probe

  lm.ReleaseAll(77);
  QueryContext ctx2;
  ASSERT_TRUE(index.RangeCount(ValueRange{100, 200}, &ctx2, &count).ok());
  EXPECT_FALSE(ctx2.stats.refinement_skipped);
}

TEST(UpdatableIndexTest, ConcurrentReadersAndWriters) {
  Column col = Column::UniqueRandom("A", 5000, 9);
  UpdatableIndex index(col, CrackConfig());
  std::atomic<bool> ok{true};
  std::atomic<uint64_t> txn{100};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 50);
      QueryContext ctx;
      for (int i = 0; i < 100 && ok.load(); ++i) {
        ctx.txn_id = txn.fetch_add(1);
        if (t % 3 == 0) {
          if (!index.Insert(rng.UniformRange(0, 5000), &ctx).ok()) {
            ok.store(false);
          }
        } else {
          Value lo = rng.UniformRange(0, 5000);
          uint64_t count;
          if (!index.RangeCount(ValueRange{lo, lo + 100}, &ctx, &count)
                   .ok()) {
            ok.store(false);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  // 2 writer threads x 100 inserts.
  EXPECT_EQ(index.num_rows(), 5000u + 200u);
  // Global invariant: full-domain count equals the logical row count.
  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(
      index.RangeCount(ValueRange{-1000000, 1000000}, &ctx, &count).ok());
  EXPECT_EQ(count, index.num_rows());
}

class UpdatableOverMethodsTest : public ::testing::TestWithParam<IndexMethod> {
};

TEST_P(UpdatableOverMethodsTest, DifferentialsWorkOverAnyBase) {
  Column col = Column::UniqueRandom("A", 3000, 10);
  IndexConfig config;
  config.method = GetParam();
  config.merge.run_size = 512;
  config.hybrid.partition_size = 512;
  config.btree.run_size = 512;
  UpdatableIndex index(col, config);
  QueryContext ctx;
  ctx.txn_id = 1;
  ASSERT_TRUE(index.Insert(1500, &ctx).ok());
  RowId target = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    if (col[i] == 1500) target = static_cast<RowId>(i);
  }
  ASSERT_TRUE(index.Delete(1500, target, &ctx).ok());
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{1000, 2000}, &ctx, &count).ok());
  EXPECT_EQ(count, 1000u);  // net unchanged: one in, one out
}

INSTANTIATE_TEST_SUITE_P(Methods, UpdatableOverMethodsTest,
                         ::testing::Values(IndexMethod::kScan,
                                           IndexMethod::kSort,
                                           IndexMethod::kCrack,
                                           IndexMethod::kAdaptiveMerge,
                                           IndexMethod::kHybrid,
                                           IndexMethod::kBTreeMerge),
                         [](const auto& info) {
                           std::string n = ToString(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace adaptidx
