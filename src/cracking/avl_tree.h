#ifndef ADAPTIDX_CRACKING_AVL_TREE_H_
#define ADAPTIDX_CRACKING_AVL_TREE_H_

#include <cstddef>
#include <vector>

#include "storage/types.h"

namespace adaptidx {

/// \brief AVL tree mapping crack values to array positions — the cracker
/// index's "table of contents" (Section 5.2: "a memory resident AVL tree
/// ... keeps track of the key ranges that have been requested so far").
///
/// Each entry records that a crack on `value` exists at `pos`: every element
/// before `pos` in the cracker array is < `value`, every element at or after
/// it is >= `value`. The tree answers "which piece holds value v" via
/// Floor/Ceiling and therefore "the shortest possible qualifying range for
/// further cracking".
///
/// Not internally synchronized: the owning index guards it with its
/// structure latch (reads shared, inserts exclusive).
class AvlTree {
 public:
  struct Entry {
    Value value;
    Position pos;
  };

  AvlTree() = default;
  ~AvlTree();

  AvlTree(const AvlTree&) = delete;
  AvlTree& operator=(const AvlTree&) = delete;

  /// \brief Inserts a crack. Returns false (no change) when a crack on
  /// `value` already exists.
  bool Insert(Value value, Position pos);

  /// \brief Exact lookup. Returns true and fills `*pos` when a crack on
  /// `value` exists.
  bool Find(Value value, Position* pos) const;

  /// \brief Greatest crack with crack value <= `value`; false when none
  /// (value lies before the first crack).
  bool Floor(Value value, Entry* out) const;

  /// \brief Least crack with crack value strictly greater than `value`;
  /// false when none (value lies in the last piece).
  bool Ceiling(Value value, Entry* out) const;

  /// \brief Least crack with position strictly greater than `pos`; false
  /// when none. Crack positions are strictly increasing in crack value, so
  /// this walks pieces in position order (the Figure 10 walk).
  bool NextByPosition(Position pos, Entry* out) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// \brief Height of the tree (0 for empty); O(1) via root node.
  int Height() const;

  /// \brief All cracks in ascending value order.
  void InOrder(std::vector<Entry>* out) const;

  /// \brief Checks AVL balance and BST order invariants plus monotonicity of
  /// positions in value order; used by tests.
  bool Validate() const;

  void Clear();

 private:
  struct Node {
    Value value;
    Position pos;
    Node* left = nullptr;
    Node* right = nullptr;
    int height = 1;
  };

  static int NodeHeight(const Node* n) { return n == nullptr ? 0 : n->height; }
  static void UpdateHeight(Node* n);
  static int BalanceFactor(const Node* n);
  static Node* RotateLeft(Node* n);
  static Node* RotateRight(Node* n);
  static Node* Rebalance(Node* n);
  Node* InsertRec(Node* n, Value value, Position pos, bool* inserted);
  static void DestroyRec(Node* n);
  static void InOrderRec(const Node* n, std::vector<Entry>* out);
  static bool ValidateRec(const Node* n, const Value* min, const Value* max,
                          int* height);

  Node* root_ = nullptr;
  size_t size_ = 0;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_CRACKING_AVL_TREE_H_
