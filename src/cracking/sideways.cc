#include "cracking/sideways.h"

#include <algorithm>

#include "cracking/crack_kernels.h"
#include "util/stopwatch.h"

namespace adaptidx {

SidewaysIndex::SidewaysIndex(const Column* a, const Column* b,
                             std::string name)
    : a_(a), b_(b), name_(std::move(name)) {}

void SidewaysIndex::EnsureInitialized(QueryContext* ctx) {
  if (initialized_.load(std::memory_order_acquire)) return;
  const int64_t wait_start = NowNanos();
  std::unique_lock<std::shared_mutex> lk(structure_mu_);
  if (initialized_.load(std::memory_order_relaxed)) {
    ctx->stats.wait_ns += NowNanos() - wait_start;
    return;
  }
  ScopedTimer init_timer(&ctx->stats.init_ns);
  const size_t n = a_->size();
  entries_.resize(n);
  Value lo = 0;
  Value hi = 0;
  if (n > 0) {
    lo = (*a_)[0];
    hi = (*a_)[0];
  }
  for (Position i = 0; i < n; ++i) {
    const Value av = (*a_)[i];
    lo = std::min(lo, av);
    hi = std::max(hi, av);
    entries_[i] = MapEntry{av, (*b_)[i], static_cast<RowId>(i)};
  }
  domain_lo_ = lo;
  domain_hi_ = hi + 1;
  initialized_.store(true, std::memory_order_release);
}

Position SidewaysIndex::ResolveBoundLocked(Value v, QueryContext* ctx) {
  const size_t n = entries_.size();
  if (v <= domain_lo_) return 0;
  if (v >= domain_hi_) return n;
  Position pos;
  {
    std::shared_lock<std::shared_mutex> sl(structure_mu_);
    if (avl_.Find(v, &pos)) return pos;
  }
  // Narrow to the enclosing piece and crack it.
  Position begin = 0;
  Position end = n;
  {
    std::shared_lock<std::shared_mutex> sl(structure_mu_);
    AvlTree::Entry e;
    if (avl_.Floor(v, &e)) begin = e.pos;
    if (avl_.Ceiling(v, &e)) end = e.pos;
  }
  Accessor acc(entries_.data());
  {
    ScopedTimer t(&ctx->stats.crack_ns);
    pos = CrackInTwo(acc, begin, end, v);
    ++ctx->stats.cracks;
  }
  {
    std::unique_lock<std::shared_mutex> xl(structure_mu_);
    avl_.Insert(v, pos);
  }
  return pos;
}

void SidewaysIndex::CrackSelect(const ValueRange& range, QueryContext* ctx,
                                Position* lo, Position* hi) {
  // Column-latch protocol: one exclusive burst covers both cracks.
  LatchAcquireContext lat = ctx->LatchCtx(&latch_stats_);
  latch_.WriteLock(range.lo, lat);
  // Crack-in-three when both bounds land in the same uncracked piece.
  bool done = false;
  {
    Position plo;
    Position phi;
    bool lo_known;
    bool hi_known;
    Position begin = 0;
    Position end = entries_.size();
    {
      std::shared_lock<std::shared_mutex> sl(structure_mu_);
      lo_known = avl_.Find(range.lo, &plo) || range.lo <= domain_lo_ ||
                 range.lo >= domain_hi_;
      hi_known = avl_.Find(range.hi, &phi) || range.hi <= domain_lo_ ||
                 range.hi >= domain_hi_;
      AvlTree::Entry e;
      if (avl_.Floor(range.lo, &e)) begin = e.pos;
      if (avl_.Ceiling(range.hi, &e)) end = std::min(end, e.pos);
      AvlTree::Entry between;
      const bool crack_between =
          avl_.Ceiling(range.lo, &between) && between.value < range.hi;
      if (!lo_known && !hi_known && !crack_between &&
          range.lo > domain_lo_ && range.hi < domain_hi_) {
        // Same piece: single pass.
        done = true;
      }
    }
    if (done) {
      Accessor acc(entries_.data());
      Position p1;
      Position p2;
      {
        ScopedTimer t(&ctx->stats.crack_ns);
        std::tie(p1, p2) = CrackInThree(acc, begin, end, range.lo, range.hi);
        ctx->stats.cracks += 2;
      }
      {
        std::unique_lock<std::shared_mutex> xl(structure_mu_);
        avl_.Insert(range.lo, p1);
        avl_.Insert(range.hi, p2);
      }
      *lo = p1;
      *hi = p2;
    }
  }
  if (!done) {
    *lo = ResolveBoundLocked(range.lo, ctx);
    *hi = ResolveBoundLocked(range.hi, ctx);
  }
  latch_.WriteUnlock();
}

Status SidewaysIndex::ExecuteImpl(const Query& query, QueryContext* ctx,
                                  QueryResult* result) {
  const ValueRange& range = query.range;  // non-empty: Execute() guards
  EnsureInitialized(ctx);
  Position lo;
  Position hi;
  CrackSelect(range, ctx, &lo, &hi);
  if (query.kind == QueryKind::kCount) {
    result->count = hi - lo;  // crack positions are immutable facts
    return Status::OK();
  }
  LatchAcquireContext lat = ctx->LatchCtx(&latch_stats_);
  latch_.ReadLock(lat);
  {
    ScopedTimer t(&ctx->stats.read_ns);
    switch (query.kind) {
      case QueryKind::kSum:
        for (Position i = lo; i < hi; ++i) result->sum += entries_[i].a;
        break;
      case QueryKind::kSumOther:
        // The payoff: B is read sequentially from the map, no positional
        // fetches into the base column.
        for (Position i = lo; i < hi; ++i) result->sum += entries_[i].b;
        break;
      case QueryKind::kRowIds:
        result->row_ids.reserve(hi - lo);
        for (Position i = lo; i < hi; ++i) {
          result->row_ids.push_back(entries_[i].row_id);
        }
        break;
      case QueryKind::kMinMax: {
        MinMaxAccumulator acc;
        for (Position i = lo; i < hi; ++i) acc.Feed(entries_[i].a);
        acc.Store(result);
        break;
      }
      case QueryKind::kCount:
        break;  // handled above
    }
  }
  latch_.ReadUnlock();
  return Status::OK();
}

Status SidewaysIndex::RangeSumOther(const ValueRange& range,
                                    QueryContext* ctx, int64_t* sum_b) {
  QueryResult r;
  Status s = Execute(Query::SumOther("", "", "", range.lo, range.hi), ctx, &r);
  if (s.ok()) *sum_b = r.sum;
  return s;
}

size_t SidewaysIndex::NumPieces() const {
  if (!initialized_.load(std::memory_order_acquire)) return 0;
  std::shared_lock<std::shared_mutex> sl(structure_mu_);
  return avl_.size() + 1;
}

size_t SidewaysIndex::NumCracks() const {
  if (!initialized_.load(std::memory_order_acquire)) return 0;
  std::shared_lock<std::shared_mutex> sl(structure_mu_);
  return avl_.size();
}

bool SidewaysIndex::ValidateStructure() const {
  if (!initialized_.load(std::memory_order_acquire)) return true;
  std::shared_lock<std::shared_mutex> sl(structure_mu_);
  if (!avl_.Validate()) return false;
  std::vector<AvlTree::Entry> cracks;
  avl_.InOrder(&cracks);
  for (const auto& c : cracks) {
    for (Position i = 0; i < c.pos; ++i) {
      if (entries_[i].a >= c.value) return false;
    }
    for (Position i = c.pos; i < entries_.size(); ++i) {
      if (entries_[i].a < c.value) return false;
    }
  }
  // Pairing must survive reorganization: each entry's (a, b) must equal the
  // base columns at its row id.
  for (const MapEntry& e : entries_) {
    if ((*a_)[e.row_id] != e.a || (*b_)[e.row_id] != e.b) return false;
  }
  return true;
}

}  // namespace adaptidx
