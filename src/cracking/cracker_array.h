#ifndef ADAPTIDX_CRACKING_CRACKER_ARRAY_H_
#define ADAPTIDX_CRACKING_CRACKER_ARRAY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "cracking/kernel_tiers.h"
#include "storage/column.h"
#include "storage/types.h"

namespace adaptidx {

/// \brief Physical layout of the cracker array (Section 5.2, Figure 7).
enum class ArrayLayout {
  /// One densely populated array of (rowID, value) pairs — the original
  /// database cracking design.
  kRowIdValuePairs,
  /// A pair of arrays: a values array and a rowIDs array — the layout used
  /// by the latest cracking release; gives better cache locality for
  /// operators that touch only one of the two.
  kPairOfArrays,
};

/// \brief A (rowID, value) entry of the pair layout.
struct CrackerEntry {
  RowId row_id;
  Value value;
};

/// \brief Accessor for the rowID-value-pairs layout; swaps move whole
/// entries.
class PairAccessor {
 public:
  explicit PairAccessor(CrackerEntry* data) : data_(data) {}
  Value ValueAt(Position i) const { return data_[i].value; }
  RowId RowIdAt(Position i) const { return data_[i].row_id; }
  void Swap(Position i, Position j) { std::swap(data_[i], data_[j]); }
  CrackerEntry Load(Position i) const { return data_[i]; }
  void Store(Position i, const CrackerEntry& e) { data_[i] = e; }

 private:
  CrackerEntry* data_;
};

/// \brief Accessor for the pair-of-arrays layout; swaps touch both arrays
/// but value-only scans stream a dense Value array.
class SplitAccessor {
 public:
  SplitAccessor(Value* values, RowId* row_ids)
      : values_(values), row_ids_(row_ids) {}
  Value ValueAt(Position i) const { return values_[i]; }
  RowId RowIdAt(Position i) const { return row_ids_[i]; }
  void Swap(Position i, Position j) {
    std::swap(values_[i], values_[j]);
    std::swap(row_ids_[i], row_ids_[j]);
  }
  CrackerEntry Load(Position i) const {
    return CrackerEntry{row_ids_[i], values_[i]};
  }
  void Store(Position i, const CrackerEntry& e) {
    values_[i] = e.value;
    row_ids_[i] = e.row_id;
  }

 private:
  Value* values_;
  RowId* row_ids_;
};

/// \brief The cracker array: an auxiliary copy of the indexed column that is
/// continuously physically reorganized (incrementally sorted) as a side
/// effect of query processing (Section 5.2).
///
/// The base column is never modified; the cracker array pairs each value
/// with its original rowID so qualifying tuples can be reconstructed
/// positionally from other columns of the table.
///
/// Every bulk operation (CrackTwo/CrackThree/Scan*/CollectRowIds*) inspects
/// `layout_` and the kernel tier exactly once per call, then runs a tight
/// layout-specialized kernel — the per-element layout test that ValueAt pays
/// never appears on a hot path; the index's aggregators stream regions
/// through these bulk calls under piece read-latches. For the pair-of-arrays
/// layout the dense value/rowID spans are additionally exposed (ValuesSpan /
/// RowIdsSpan) so code outside this class — custom operators, the kernel
/// micro-benchmarks and differential tests — can feed the raw arrays
/// straight into the span kernels of span_kernels.h.
///
/// Not internally synchronized — callers serialize access with the column or
/// piece latches, which is the entire subject of the paper.
class CrackerArray {
 public:
  /// \brief Copies `column` into a fresh cracker array with rowIDs 0..n-1 in
  /// the requested layout. This is the "first touch" cost of cracking.
  /// `tier` selects the kernel implementation (kAuto picks the best the CPU
  /// supports; see kernel_tiers.h).
  CrackerArray(const Column& column, ArrayLayout layout,
               KernelTier tier = KernelTier::kAuto);

  /// \brief Builds from explicit entries (used by hybrid initial partitions
  /// and tests).
  CrackerArray(std::vector<CrackerEntry> entries, ArrayLayout layout,
               KernelTier tier = KernelTier::kAuto);

  size_t size() const { return size_; }
  ArrayLayout layout() const { return layout_; }

  /// \brief Resolved kernel tier used by all bulk operations.
  KernelTier kernel_tier() const { return tier_; }

  /// \brief Forces a kernel tier (tests/benchmarks); kAuto restores the best
  /// supported tier, and unsupported SIMD tiers are clamped down.
  void set_kernel_tier(KernelTier tier);

  Value ValueAt(Position i) const {
    return layout_ == ArrayLayout::kRowIdValuePairs ? pairs_[i].value
                                                    : values_[i];
  }
  RowId RowIdAt(Position i) const {
    return layout_ == ArrayLayout::kRowIdValuePairs ? pairs_[i].row_id
                                                    : row_ids_[i];
  }

  /// \brief Dense value span of the pair-of-arrays layout; nullptr for the
  /// rowID-value-pairs layout. Valid until the array is destroyed; contents
  /// change under cracks, so read under the appropriate latch.
  const Value* ValuesSpan() const {
    return layout_ == ArrayLayout::kPairOfArrays ? values_.data() : nullptr;
  }

  /// \brief Dense rowID span of the pair-of-arrays layout; nullptr for the
  /// rowID-value-pairs layout.
  const RowId* RowIdsSpan() const {
    return layout_ == ArrayLayout::kPairOfArrays ? row_ids_.data() : nullptr;
  }

  /// \brief Dense entry span of the rowID-value-pairs layout; nullptr for
  /// the pair-of-arrays layout. Companion of ValuesSpan/RowIdsSpan so
  /// layout-dispatching code outside this class (the optimistic read
  /// kernels) can reach the raw storage for either layout.
  const CrackerEntry* PairsSpan() const {
    return layout_ == ArrayLayout::kRowIdValuePairs ? pairs_.data() : nullptr;
  }

  /// \brief Two-way crack over [begin, end); see CrackInTwo in
  /// crack_kernels.h. Dispatches once on layout and tier, then runs the
  /// tight kernel.
  Position CrackTwo(Position begin, Position end, Value pivot);

  /// \brief Three-way crack over [begin, end); see CrackInThree.
  std::pair<Position, Position> CrackThree(Position begin, Position end,
                                           Value lo, Value hi);

  /// \brief Fully sorts [begin, end) by value (used by the active strategy
  /// and hybrid final partitions). Small ranges — the active strategy's
  /// sort_piece_threshold regime — use an in-place tandem insertion sort;
  /// larger ranges sort zipped entries.
  void SortRange(Position begin, Position end);

  /// \brief Counts values in [lo, hi) within [begin, end) without
  /// reorganizing.
  uint64_t ScanCountRange(Position begin, Position end, Value lo,
                          Value hi) const;

  /// \brief Sums values in [lo, hi) within [begin, end) without
  /// reorganizing.
  int64_t ScanSumRange(Position begin, Position end, Value lo, Value hi) const;

  /// \brief Sums every value in [begin, end) positionally.
  int64_t PositionalSumRange(Position begin, Position end) const;

  /// \brief Min and max value in [begin, end); requires begin < end.
  void MinMax(Position begin, Position end, Value* lo, Value* hi) const;

  /// \brief Min and max of values in [range.lo, range.hi) within
  /// [begin, end); returns false when no value qualifies (then `*mn`/`*mx`
  /// are untouched). The filtered companion of MinMax, used by the kMinMax
  /// query kind on boundary pieces that are not yet cracked on the bounds.
  bool MinMaxFiltered(Position begin, Position end, const ValueRange& range,
                      Value* mn, Value* mx) const;

  /// \brief Appends rowIDs of [begin, end) to `out` (positional fetch).
  void CollectRowIds(Position begin, Position end,
                     std::vector<RowId>* out) const;

  /// \brief Appends rowIDs of elements in [begin, end) whose value lies in
  /// [range.lo, range.hi). Dispatches once on layout, unlike a per-element
  /// ValueAt/RowIdAt loop.
  void CollectRowIdsFiltered(Position begin, Position end,
                             const ValueRange& range,
                             std::vector<RowId>* out) const;

  /// \brief In a sorted range, the offset of the first value >= v (binary
  /// search). Precondition: [begin, end) sorted.
  Position LowerBoundInSorted(Position begin, Position end, Value v) const;

  /// \brief Exchanges the `n` entries starting at `a` with the `n` entries
  /// starting at `b` (values and rowIDs move together). The two ranges must
  /// not overlap. Building block of the parallel swap-based refined merge
  /// (parallel_crack.h), which repairs chunk-local partitions into one
  /// global partition without a full copy.
  void SwapRanges(Position a, Position b, size_t n);

 private:
  ArrayLayout layout_;
  KernelTier tier_;
  size_t size_;
  // Exactly one representation is populated, chosen by layout_.
  std::vector<CrackerEntry> pairs_;
  std::vector<Value> values_;
  std::vector<RowId> row_ids_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_CRACKING_CRACKER_ARRAY_H_
