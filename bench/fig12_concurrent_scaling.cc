/// \file Reproduces Figure 12: effect of concurrency on total time (a) and
/// throughput (b). 1024 random sum queries of 0.01% selectivity, split over
/// 1..32 concurrent clients, for scan / sort / crack (piece latches).
///
/// Expected shape: all methods speed up with clients up to the core count,
/// then level out; cracking keeps its advantage at every client count —
/// concurrency is "not only possible but also beneficial".
///
/// Part (c) goes beyond the paper: a partition-count sweep
/// (P in {1, 2, 4, 8}) of range-partitioned cracking under multi-client
/// load, emitting BENCH_partition.json (override the path with
/// AI_BENCH_PARTITION_JSON). On a multi-core machine P=4 should beat the
/// monolithic P=1 cracker: disjoint-range clients stop conflicting and
/// boundary-straddling queries use several cores. Each P also reports the
/// first-query latency (the chunked parallel first-touch crack) next to a
/// pool-parallel full sort of the column — the "parallel crack beats
/// parallel sort early" crossover claim.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cracking/parallel_crack.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace adaptidx {
namespace bench {
namespace {

void Run() {
  const size_t rows = EnvSize("AI_BENCH_ROWS", 4000000);
  const size_t num_queries = EnvSize("AI_BENCH_QUERIES", 1024);
  const size_t max_clients = EnvSize("AI_BENCH_MAX_CLIENTS", 32);
  PrintHeader("Figure 12: effect of concurrency control on total time",
              "rows=" + std::to_string(rows) +
                  " queries=" + std::to_string(num_queries) +
                  " selectivity=0.01% type=Q2(sum) clients=1..32");

  Column column = MakeUniqueRandomColumn(rows);
  WorkloadGenerator gen(0, static_cast<Value>(rows));
  WorkloadOptions wopts;
  wopts.num_queries = num_queries;
  wopts.selectivity = 0.0001;
  wopts.type = QueryType::kSum;
  wopts.seed = 7;
  const auto queries = gen.Generate(wopts);

  std::vector<size_t> client_counts;
  for (size_t c = 1; c <= max_clients; c *= 2) client_counts.push_back(c);

  struct MethodRow {
    const char* name;
    IndexMethod method;
    std::vector<double> total_secs;
    std::vector<double> qps;
  };
  MethodRow methods[] = {{"scan", IndexMethod::kScan, {}, {}},
                         {"sort", IndexMethod::kSort, {}, {}},
                         {"crack", IndexMethod::kCrack, {}, {}}};

  for (auto& m : methods) {
    for (size_t clients : client_counts) {
      IndexConfig config;
      config.method = m.method;
      // Fresh index per run, exactly like the paper repeats the sequence.
      RunResult r = RunWorkload(column, config, queries, clients);
      m.total_secs.push_back(r.total_seconds);
      m.qps.push_back(r.throughput_qps);
    }
  }

  std::printf("\n(a) Total time for %zu queries (secs)\n", num_queries);
  std::printf("%-8s", "clients");
  for (const auto& m : methods) std::printf(" %12s", m.name);
  std::printf("\n");
  for (size_t i = 0; i < client_counts.size(); ++i) {
    std::printf("%-8zu", client_counts[i]);
    for (const auto& m : methods) std::printf(" %12.3f", m.total_secs[i]);
    std::printf("\n");
  }

  std::printf("\n(b) Throughput (queries / sec)\n");
  std::printf("%-8s", "clients");
  for (const auto& m : methods) std::printf(" %12s", m.name);
  std::printf("\n");
  for (size_t i = 0; i < client_counts.size(); ++i) {
    std::printf("%-8zu", client_counts[i]);
    for (const auto& m : methods) std::printf(" %12.1f", m.qps[i]);
    std::printf("\n");
  }

  const size_t last = client_counts.size() - 1;
  std::printf(
      "\npaper-shape check: crack faster than scan at 1 client: %s; at %zu "
      "clients: %s\n",
      methods[2].total_secs[0] < methods[0].total_secs[0] ? "yes" : "NO",
      client_counts[last],
      methods[2].total_secs[last] < methods[0].total_secs[last] ? "yes"
                                                                : "NO");

  // ---- (c) partition-count sweep --------------------------------------
  const size_t hardware_threads =
      std::max<unsigned>(1, std::thread::hardware_concurrency());
  const size_t part_clients = std::min<size_t>(8, max_clients);
  const size_t partition_counts[] = {1, 2, 4, 8};
  std::printf("\n(c) Partitioned cracking, %zu clients, %zu hw threads\n",
              part_clients, hardware_threads);
  std::printf("%-12s %12s %12s %16s\n", "partitions", "total_secs", "qps",
              "first_query_secs");
  std::vector<double> part_secs;
  std::vector<double> part_qps;
  std::vector<double> first_query_secs;
  const std::vector<RangeQuery> first_query(queries.begin(),
                                            queries.begin() + 1);
  for (size_t p : partition_counts) {
    IndexConfig config;
    config.method = IndexMethod::kCrack;
    config.partitions = p;  // P=1 is the monolithic baseline
    // First-query latency on a fresh index: the first touch pays the
    // scatter and the chunked parallel crack, so this is the number the
    // crack-vs-sort crossover is about.
    const RunResult first = RunWorkload(column, config, first_query, 1);
    first_query_secs.push_back(first.total_seconds);
    RunResult r = RunWorkload(column, config, queries, part_clients);
    part_secs.push_back(r.total_seconds);
    part_qps.push_back(r.throughput_qps);
    std::printf("%-12zu %12.3f %12.1f %16.3f\n", p, r.total_seconds,
                r.throughput_qps, first.total_seconds);
  }
  const double speedup_p4 = part_qps[0] > 0 ? part_qps[2] / part_qps[0] : 0;
  std::printf("P=4 vs P=1 throughput: %.2fx (%s on this machine)\n",
              speedup_p4, speedup_p4 > 1.0 ? "faster" : "NOT faster");
  if (hardware_threads <= 1) {
    std::printf(
        "note: single hardware thread — the factory's hardware floor built "
        "every P as the monolithic cracker, so this sweep is a "
        "no-regression check, not a scaling measurement\n");
  }

  // Parallel-sort baseline: fully sorting the column with every core is
  // what adaptive indexing competes against. The claim worth checking on a
  // multi-core box is that even the *parallel* first-touch crack answers
  // its query long before a *parallel* sort completes.
  double parallel_sort_secs;
  {
    std::vector<Value> values(column.data(), column.data() + column.size());
    ThreadPool sort_pool(std::max<size_t>(1, hardware_threads));
    const int64_t t0 = NowNanos();
    ParallelSortValues(&values, &sort_pool, hardware_threads);
    parallel_sort_secs = static_cast<double>(NowNanos() - t0) / 1e9;
  }
  std::printf(
      "parallel sort of %zu rows: %.3f s; first crack query (P=1): %.3f s "
      "(%s)\n",
      rows, parallel_sort_secs, first_query_secs[0],
      first_query_secs[0] < parallel_sort_secs
          ? "crack answers before sort finishes"
          : "sort finished first at this scale");

  const char* json_env = std::getenv("AI_BENCH_PARTITION_JSON");
  const std::string json_path =
      json_env != nullptr && *json_env != '\0' ? json_env
                                               : "BENCH_partition.json";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"fig12_partition_sweep\",\n"
               "  \"rows\": %zu,\n  \"queries\": %zu,\n"
               "  \"clients\": %zu,\n  \"hardware_threads\": %zu,\n"
               "  \"method\": \"crack\",\n"
               "  \"results\": [\n",
               rows, num_queries, part_clients, hardware_threads);
  for (size_t i = 0; i < part_qps.size(); ++i) {
    std::fprintf(f,
                 "    {\"partitions\": %zu, \"total_secs\": %.6f, "
                 "\"qps\": %.1f, \"first_query_secs\": %.6f}%s\n",
                 partition_counts[i], part_secs[i], part_qps[i],
                 first_query_secs[i], i + 1 < part_qps.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"parallel_sort_secs\": %.6f,\n"
               "  \"p4_vs_p1_speedup\": %.4f,\n"
               "  \"p4_beats_p1\": %s\n}\n",
               parallel_sort_secs, speedup_p4,
               speedup_p4 > 1.0 ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace adaptidx

int main() {
  adaptidx::bench::Run();
  return 0;
}
