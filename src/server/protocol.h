#ifndef ADAPTIDX_SERVER_PROTOCOL_H_
#define ADAPTIDX_SERVER_PROTOCOL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/query.h"
#include "storage/types.h"
#include "util/status.h"
#include "util/wire.h"

namespace adaptidx {
namespace server {

/// \brief Length-prefixed binary wire format shared by `Server` and
/// `Client`.
///
/// Every frame is
///
///     u32 length | u8 type | u64 request_id | payload[length - 9]
///
/// with all integers little-endian. `length` counts everything after
/// itself (type byte + request id + payload), so the smallest legal value
/// is `kFrameOverhead` and the decoder rejects any length below that or
/// above the configured cap *before* reserving a single byte of payload
/// buffer — a hostile length field cannot drive an allocation.
///
/// Request ids are chosen by the client and echoed verbatim on the
/// response, which is what lets the server complete requests out of order
/// (a slow analytical query does not head-of-line-block a point query
/// pipelined behind it).
constexpr size_t kFrameOverhead = 1 + 8;  ///< type byte + request id
/// \brief Bytes of the leading length word.
constexpr size_t kFrameLengthBytes = 4;
/// \brief Default per-frame size cap (1 MiB) enforced before any reserve.
constexpr size_t kDefaultMaxFrameBytes = size_t{1} << 20;

/// \brief Frame type tags. Requests have the high bit clear, responses
/// have it set; an unknown tag is a protocol error that closes the
/// connection.
enum class FrameType : uint8_t {
  // ---- client -> server -------------------------------------------------
  kOpenSession = 0x01,  ///< payload: OpenSessionReq
  kQuery = 0x02,        ///< payload: QueryReq
  kBatch = 0x03,        ///< payload: BatchReq
  kInsert = 0x04,       ///< payload: InsertReq
  kDelete = 0x05,       ///< payload: DeleteReq
  kStats = 0x06,        ///< payload: empty
  kClose = 0x07,        ///< payload: empty; server acks then closes
  kCheckpoint = 0x08,   ///< payload: empty; admin frame — write a durable
                        ///< checkpoint and truncate the WAL (durable servers
                        ///< only; answered kResult with kind=kCheckpointAck)

  // ---- server -> client -------------------------------------------------
  kOpenOk = 0x81,       ///< payload: OpenOkMsg
  kResult = 0x82,       ///< payload: ResultMsg (query/insert/delete answer)
  kBatchResult = 0x83,  ///< payload: BatchResultMsg
  kStatsResult = 0x84,  ///< payload: StatsMsg
  kServerBusy = 0x85,   ///< payload: BusyMsg — request load-shed, retry later
  kCloseOk = 0x86,      ///< payload: empty
  kError = 0x87,        ///< payload: ResultMsg (status only); connection-level
};

/// \brief One decoded frame: tag, echoable request id, raw payload bytes.
struct Frame {
  FrameType type = FrameType::kError;
  uint64_t request_id = 0;
  std::string payload;
};

// ----------------------------------------------------------------- encode

// The strict bounds-checked codec moved to util/wire.h so the durability
// subsystem's log/checkpoint formats share the exact same discipline
// (length-validated-before-allocation, Exhausted() acceptance) instead of
// re-implementing it. The aliases keep the server namespace spelling.
using adaptidx::WireReader;
using adaptidx::WireWriter;

/// \brief Assembles one complete frame (length word included) ready to
/// write to a socket.
std::string EncodeFrame(FrameType type, uint64_t request_id,
                        const std::string& payload);

/// \brief Incremental strict decoder over a connection's receive buffer.
///
/// Outcomes: OK with `*consumed > 0` — one well-formed frame extracted;
/// OK with `*consumed == 0` — the buffer holds only a frame prefix, read
/// more; non-OK — the bytes cannot be a legal frame (length below the
/// fixed overhead, above `max_frame_bytes`, or an unknown type tag) and
/// the connection must be closed. The length check precedes any buffer
/// reservation.
Status TryDecodeFrame(const uint8_t* data, size_t size, size_t max_frame_bytes,
                      Frame* out, size_t* consumed);

// --------------------------------------------------------------- payloads

/// \brief OPEN_SESSION request payload.
struct OpenSessionReq {
  /// Bit 0: request MVCC snapshot reads for every query of the session.
  uint8_t flags = 0;
  /// Client identity stamped on contexts; 0 auto-assigns the session id.
  uint32_t client_id = 0;

  /// \brief Flag bit for `SessionOptions::snapshot_reads`.
  static constexpr uint8_t kFlagSnapshotReads = 0x01;

  /// \brief Serializes the payload.
  std::string Encode() const;
  /// \brief Strict decode; InvalidArgument on malformed bytes.
  Status Decode(const std::string& payload);
};

/// \brief OPEN_SESSION acknowledgement payload.
struct OpenOkMsg {
  uint32_t session_id = 0;  ///< server-assigned session id

  /// \brief Serializes the payload.
  std::string Encode() const;
  /// \brief Strict decode; InvalidArgument on malformed bytes.
  Status Decode(const std::string& payload);
};

/// \brief One range query over the served column: kind + half-open
/// predicate [lo, hi). kSumOther is not expressible on the wire (the
/// server fronts a single column), so its tag is rejected at decode.
struct QueryReq {
  QueryKind kind = QueryKind::kCount;
  Value lo = 0;
  Value hi = 0;

  /// \brief Serializes the payload.
  std::string Encode() const;
  /// \brief Strict decode; InvalidArgument on malformed bytes or a kind
  /// tag that is unknown/not servable over the wire.
  Status Decode(const std::string& payload);
  /// \brief Lifts into the engine's unified descriptor (names are ignored
  /// by the server's direct-index sessions).
  Query ToQuery() const;

  /// \brief Appends this request's fields to an open writer (the BATCH
  /// element encoding).
  void EncodeTo(WireWriter* w) const;
  /// \brief Reads one element from an open reader; false on malformed
  /// bytes or a bad kind tag.
  bool DecodeFrom(WireReader* r);
};

/// \brief BATCH request payload: `count` queries submitted as one
/// admission unit and answered by one kBatchResult frame.
struct BatchReq {
  std::vector<QueryReq> queries;

  /// \brief Serializes the payload.
  std::string Encode() const;
  /// \brief Strict decode. The element count is validated against the
  /// payload size before the vector reserves, so a forged count cannot
  /// drive an allocation.
  Status Decode(const std::string& payload);
};

/// \brief INSERT request payload.
struct InsertReq {
  Value value = 0;  ///< value to insert into the served column

  /// \brief Serializes the payload.
  std::string Encode() const;
  /// \brief Strict decode; InvalidArgument on malformed bytes.
  Status Decode(const std::string& payload);
};

/// \brief DELETE request payload: the (value, row id) pair addressing one
/// live tuple.
struct DeleteReq {
  Value value = 0;      ///< value of the tuple to delete
  RowId row_id = 0;     ///< row id returned by the INSERT that created it

  /// \brief Serializes the payload.
  std::string Encode() const;
  /// \brief Strict decode; InvalidArgument on malformed bytes.
  Status Decode(const std::string& payload);
};

/// \brief Answer payload of kResult/kError frames: an engine `Status`
/// plus, when OK, the flattened `QueryResult` fields (and the assigned row
/// id for INSERT acks).
struct ResultMsg {
  uint8_t status_code = 0;    ///< Status::Code of the execution
  std::string message;        ///< status message (empty when OK)
  uint8_t kind = 0;           ///< QueryKind byte; kUpdateAck for updates
  uint64_t count = 0;         ///< kCount / kRowIds cardinality
  int64_t sum = 0;            ///< kSum
  uint8_t has_minmax = 0;     ///< kMinMax matched at least one row
  int64_t min_value = 0;      ///< kMinMax
  int64_t max_value = 0;      ///< kMinMax
  uint32_t row_id = 0;        ///< INSERT ack: assigned row id
  std::vector<uint32_t> row_ids;  ///< kRowIds payload

  /// \brief `kind` tag of insert/delete acknowledgements.
  static constexpr uint8_t kUpdateAck = 0xFE;
  /// \brief `kind` tag of CHECKPOINT acknowledgements; `count` carries the
  /// epoch the durable image captured.
  static constexpr uint8_t kCheckpointAck = 0xFD;

  /// \brief Serializes the payload.
  std::string Encode() const;
  /// \brief Strict decode. The row-id count is validated against the
  /// remaining payload bytes before the vector reserves.
  Status Decode(const std::string& payload);

  /// \brief Appends to an open writer (the BATCH_RESULT element encoding).
  void EncodeTo(WireWriter* w) const;
  /// \brief Reads one element from an open reader.
  bool DecodeFrom(WireReader* r);

  /// \brief Lifts the wire status back into an engine `Status`.
  Status ToStatus() const;
  /// \brief Builds a failure message carrying `s`.
  static ResultMsg FromStatus(const Status& s);
  /// \brief Builds a success message from an executed query's result.
  static ResultMsg FromResult(const QueryResult& r);
};

/// \brief BATCH_RESULT payload: one ResultMsg per batched query, in
/// submission order.
struct BatchResultMsg {
  std::vector<ResultMsg> results;

  /// \brief Serializes the payload.
  std::string Encode() const;
  /// \brief Strict decode with the element count validated against the
  /// payload size before any reserve.
  Status Decode(const std::string& payload);
};

/// \brief STATS_RESULT payload: named u64 gauges/counters — `LatchStats`
/// of the served index, per-session counters, and the admission gauges —
/// as an open-ended key/value list so new counters never break old
/// clients.
struct StatsMsg {
  std::vector<std::pair<std::string, uint64_t>> entries;

  /// \brief Convenience lookup; false when `key` is absent.
  bool Find(const std::string& key, uint64_t* value) const;

  /// \brief Serializes the payload.
  std::string Encode() const;
  /// \brief Strict decode; every string length is validated against the
  /// remaining bytes before allocation.
  Status Decode(const std::string& payload);
};

/// \brief SERVER_BUSY payload: the admission controller's overload gauge
/// and running shed total at the moment the request was refused.
struct BusyMsg {
  uint8_t overload_state = 0;  ///< OverloadState at shed time
  uint64_t shed_total = 0;     ///< requests shed since server start

  /// \brief Serializes the payload.
  std::string Encode() const;
  /// \brief Strict decode; InvalidArgument on malformed bytes.
  Status Decode(const std::string& payload);
};

/// \brief Status::Code -> wire byte (stable across versions).
uint8_t StatusCodeToWire(const Status& s);
/// \brief Wire byte -> engine Status carrying `message`.
Status WireToStatus(uint8_t code, const std::string& message);

}  // namespace server
}  // namespace adaptidx

#endif  // ADAPTIDX_SERVER_PROTOCOL_H_
