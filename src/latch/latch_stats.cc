#include "latch/latch_stats.h"

#include <cstdio>

namespace adaptidx {

std::string LatchStats::ToString() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "reads=%llu (blocked %llu, %.3f ms) writes=%llu (blocked %llu, "
      "%.3f ms) try_failures=%llu optimistic=%llu (retries %llu, "
      "fallbacks %llu) lookups=%llu/%llu (snapshot/locked) "
      "pcracks=%llu (chunks %llu, merge %.3f ms) coarse_sorts=%llu "
      "snapshots=%llu (lag %llu, max %llu) deltas=%llu (chain max %llu) "
      "consolidations=%llu (folded %llu)",
      static_cast<unsigned long long>(read_acquires()),
      static_cast<unsigned long long>(read_conflicts()),
      static_cast<double>(read_wait_ns()) / 1e6,
      static_cast<unsigned long long>(write_acquires()),
      static_cast<unsigned long long>(write_conflicts()),
      static_cast<double>(write_wait_ns()) / 1e6,
      static_cast<unsigned long long>(try_failures()),
      static_cast<unsigned long long>(optimistic_attempts()),
      static_cast<unsigned long long>(optimistic_retries()),
      static_cast<unsigned long long>(optimistic_fallbacks()),
      static_cast<unsigned long long>(piece_lookups_snapshot()),
      static_cast<unsigned long long>(piece_lookups_locked()),
      static_cast<unsigned long long>(parallel_cracks()),
      static_cast<unsigned long long>(parallel_crack_chunks()),
      static_cast<double>(parallel_crack_merge_ns()) / 1e6,
      static_cast<unsigned long long>(coarse_sort_hits()),
      static_cast<unsigned long long>(snapshot_reads()),
      static_cast<unsigned long long>(snapshot_epoch_lag()),
      static_cast<unsigned long long>(snapshot_max_epoch_lag()),
      static_cast<unsigned long long>(delta_publishes()),
      static_cast<unsigned long long>(delta_chain_max()),
      static_cast<unsigned long long>(consolidations()),
      static_cast<unsigned long long>(consolidated_deltas()));
  return std::string(buf);
}

}  // namespace adaptidx
