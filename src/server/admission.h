#ifndef ADAPTIDX_SERVER_ADMISSION_H_
#define ADAPTIDX_SERVER_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace adaptidx {
namespace server {

/// \brief Three-state overload gauge driven by the resource monitor:
/// normal operation, elevated pressure (the shed threshold is in sight),
/// and critical (every new request is shed until in-flight work drains or
/// memory recedes).
enum class OverloadState : uint8_t {
  kNormal = 0,
  kElevated = 1,
  kCritical = 2,
};

/// \brief Display name of an overload state ("normal", ...).
const char* ToString(OverloadState state);

/// \brief Admission-control tuning knobs.
struct AdmissionOptions {
  /// Global in-flight request cap across all connections: requests beyond
  /// it are shed with SERVER_BUSY instead of queueing into the engine
  /// pool, so latch/thread-pool pressure never builds behind the socket
  /// layer. Minimum 1.
  size_t global_inflight = 256;
  /// Per-connection in-flight cap — the fairness backstop: one firehose
  /// connection can occupy at most this many global slots, leaving the
  /// rest for everyone else. Minimum 1.
  size_t per_connection_inflight = 32;
  /// Resident-set ceiling in bytes; 0 disables the memory monitor. While
  /// sampled RSS is at or above the ceiling the gauge reads kCritical and
  /// everything is shed.
  size_t max_rss_bytes = 0;
  /// In-flight fraction of `global_inflight` at which the gauge leaves
  /// kNormal for kElevated.
  double elevated_fraction = 0.75;
  /// RSS is re-sampled from /proc at most once per this many admission
  /// decisions (a procfs read per request would dominate point queries).
  size_t rss_sample_period = 64;
};

/// \brief Bounded-queue admission control with per-connection fairness and
/// a queue-depth + RSS resource monitor.
///
/// The server consults `TryAdmit` before mapping a frame onto the engine;
/// a refusal becomes a SERVER_BUSY response immediately — load is shed at
/// the admission edge, before any thread-pool queue or latch wait absorbs
/// it, which is what keeps tail latency of *admitted* requests bounded
/// when offered load exceeds capacity. `Release` returns the slots when
/// the response is handed back.
///
/// Thread-safety: fully synchronized; `TryAdmit` runs on the I/O loop
/// thread while `Release` arrives from engine completion threads.
class AdmissionController {
 public:
  /// \brief Clamps the caps to at least 1 and starts in kNormal.
  explicit AdmissionController(AdmissionOptions opts);

  /// \brief Attempts to admit `n` requests for connection `conn_id`
  /// (all-or-nothing, so a BATCH is one admission unit). On refusal the
  /// shed counter advances and the caller must answer SERVER_BUSY.
  bool TryAdmit(uint64_t conn_id, size_t n = 1);

  /// \brief Returns `n` slots of `conn_id`; the per-connection entry is
  /// dropped when it reaches zero (closed connections leave no residue).
  void Release(uint64_t conn_id, size_t n = 1);

  /// \brief Current gauge value (recomputed on every admission decision).
  OverloadState state() const {
    return static_cast<OverloadState>(state_.load(std::memory_order_relaxed));
  }

  uint64_t shed_total() const {  ///< \brief Requests refused since start.
    return shed_total_.load(std::memory_order_relaxed);
  }
  uint64_t admitted_total() const {  ///< \brief Requests admitted since start.
    return admitted_total_.load(std::memory_order_relaxed);
  }

  /// \brief Currently admitted (in-flight) requests across connections.
  size_t global_in_flight() const;

  /// \brief In-flight requests of one connection (0 when unknown).
  size_t connection_in_flight(uint64_t conn_id) const;

  /// \brief Last sampled resident-set size in bytes (0 before the first
  /// sample or when procfs is unavailable).
  size_t sampled_rss_bytes() const {
    return rss_bytes_.load(std::memory_order_relaxed);
  }

  /// \brief Reads the current RSS from /proc/self/statm (0 on failure);
  /// exposed for tests and the resource-monitor stats.
  static size_t ReadRssBytes();

  const AdmissionOptions& options() const { return opts_; }  ///< \brief Tuning in effect.

 private:
  void UpdateGaugeLocked();

  AdmissionOptions opts_;
  mutable std::mutex mu_;
  size_t global_ = 0;
  std::unordered_map<uint64_t, size_t> per_conn_;
  size_t admits_since_rss_sample_ = 0;

  std::atomic<uint8_t> state_{0};
  std::atomic<uint64_t> shed_total_{0};
  std::atomic<uint64_t> admitted_total_{0};
  std::atomic<size_t> rss_bytes_{0};
};

}  // namespace server
}  // namespace adaptidx

#endif  // ADAPTIDX_SERVER_ADMISSION_H_
