#ifndef ADAPTIDX_CRACKING_PIECE_MAP_H_
#define ADAPTIDX_CRACKING_PIECE_MAP_H_

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "latch/wait_queue_latch.h"
#include "storage/types.h"

namespace adaptidx {

/// \brief A piece (segment) of the cracker array between two cracks
/// (Section 5.3). Pieces are the unit of piece-grained latching: "each
/// distinct column piece can be accessed by one query at a time for
/// cracking, while it can be accessed by multiple queries concurrently for
/// aggregation".
///
/// Field protection protocol:
///  - `begin` is immutable: splits always cut the tail off a piece.
///  - `end`, `hi_value`, `lo_value`, `sorted` change only while holding both
///    the owning index's structure latch (exclusive) and this piece's write
///    latch; readers see them stably while holding either the structure
///    latch (shared) or this piece's read latch. `end` is additionally
///    atomic so optimistic readers can re-check the extent latch-free.
///  - The piece object outlives map removal via shared_ptr, so a waiter
///    blocked on `latch` can safely wake after the piece has been split.
///
/// Optimistic (seqlock) protocol — ConcurrencyMode::kOptimistic/kAdaptive:
///  - `version` is even while the piece is stable and odd while a crack is
///    reorganizing it. Writers (who additionally hold the piece write latch,
///    so versions never interleave) bump it odd *before* the first data
///    movement or extent change and even again only *after* the cracks are
///    published — every extent change is therefore inside an odd window.
///  - Readers: load `version` (acquire; odd means a crack is in flight),
///    then load `end` (acquire), read the data with no latch at all, and
///    re-load `version`. An unchanged even version proves both that the data
///    did not move during the read and that `end` was the stable extent for
///    the whole window — so the read never leaked into a successor piece
///    whose own cracks this piece's version would not observe. On mismatch
///    the read is discarded and retried; after a bounded number of failures
///    the reader falls back to the piece read latch so continuous cracking
///    cannot livelock it.
///  - `contention` / `probe_ticks` carry the kAdaptive per-piece demotion
///    state (see OptimisticReadPolicy in core/strategies.h); both are
///    relaxed-atomic heuristics, never correctness-bearing.
struct Piece {
  Piece(Position begin_pos, Position end_pos, Value lo, Value hi,
        SchedulingPolicy policy)
      : begin(begin_pos),
        end(end_pos),
        lo_value(lo),
        hi_value(hi),
        latch(policy) {}

  const Position begin;       ///< first position of the piece (immutable)
  std::atomic<Position> end;  ///< one past the last position; shrinks on
                              ///< split (atomic for optimistic extent checks)
  Value lo_value;        ///< inclusive lower bound on values in the piece
  Value hi_value;        ///< exclusive upper bound on values in the piece
  bool sorted = false;   ///< piece known fully sorted (active strategy)
  WaitQueueLatch latch;  ///< piece latch

  /// Seqlock version: even = stable, odd = crack in progress. Maintained by
  /// writers only under the optimistic concurrency modes.
  std::atomic<uint64_t> version{0};
  /// kAdaptive demotion score: raised by optimistic fallbacks, decayed by
  /// validated reads; at or above the policy threshold readers latch.
  std::atomic<int32_t> contention{0};
  /// kAdaptive probe clock for demoted pieces: every Nth guarded read
  /// re-attempts the optimistic path so the piece can re-promote.
  std::atomic<uint32_t> probe_ticks{0};

  size_t size() const { return end - begin; }
};

/// \brief An immutable, latch-free published view of the piece tiling: the
/// sorted piece begins plus the matching Piece pointers. Optimistic readers
/// binary-search it to locate the piece for a position with zero structure
/// latch acquisitions.
///
/// A snapshot may be stale — pieces split after publication still appear as
/// their pre-split extent — but never unsafe:
///  - `begin` is immutable, so every entry still names a live piece whose
///    first position is exactly `begins[i]`.
///  - The reader validates the piece's atomic `end` (the position may have
///    moved into a successor carved off after the snapshot) and the piece
///    seqlock version, exactly as for a locked lookup. A position at or past
///    the snapshot piece's current `end` means the snapshot is stale for
///    this region; the reader re-resolves through the locked path.
struct PieceMapSnapshot {
  std::vector<Position> begins;
  std::vector<std::shared_ptr<Piece>> pieces;

  /// \brief The snapshot piece containing `pos`; never null for
  /// pos < array_size.
  std::shared_ptr<Piece> FindByPosition(Position pos) const {
    auto it = std::upper_bound(begins.begin(), begins.end(), pos);
    if (it == begins.begin()) return nullptr;
    return pieces[static_cast<size_t>(it - begins.begin()) - 1];
  }
};

/// \brief Bookkeeping for the pieces of one cracker array: a position-keyed
/// map of Piece objects that tile [0, n).
///
/// Not internally synchronized: the owning index guards the map and all
/// piece boundary fields with its structure latch so that the AVL table of
/// contents and the piece map always change together atomically. The one
/// exception is the published PieceMapSnapshot, which is swapped with
/// std::atomic_store under the structure latch and read with
/// std::atomic_load by optimistic readers holding no latch at all.
class PieceMap {
 public:
  /// \brief Starts with a single piece covering [0, array_size) and the
  /// whole value domain [domain_lo, domain_hi).
  PieceMap(size_t array_size, Value domain_lo, Value domain_hi,
           SchedulingPolicy policy);

  /// \brief The piece containing position `pos`; never null for
  /// pos < array_size.
  std::shared_ptr<Piece> FindByPosition(Position pos) const;

  /// \brief The piece starting exactly at `begin`; null when none does.
  std::shared_ptr<Piece> FindByBegin(Position begin) const;

  /// \brief The piece immediately after `p` in position order (the Figure 10
  /// walk); null when `p` is the last piece.
  std::shared_ptr<Piece> NextPiece(const Piece& p) const;

  /// \brief Splits `p` at `split_pos` where a crack on `pivot` was just
  /// placed. Caller holds the structure latch exclusively and `p`'s write
  /// latch.
  ///
  ///  - Interior split: `p` keeps [begin, split_pos) with hi_value=pivot; a
  ///    new piece [split_pos, old_end) with lo_value=pivot is inserted and
  ///    returned.
  ///  - `split_pos == p.begin` (no element < pivot): no new piece; `p`'s
  ///    lo_value is raised to pivot and `p` itself is returned.
  ///  - `split_pos == p.end` (all elements < pivot): no new piece; `p`'s
  ///    hi_value is lowered to pivot and the successor piece (or null at the
  ///    array end) is returned.
  ///
  /// The returned piece is always the one whose values are >= pivot.
  std::shared_ptr<Piece> Split(const std::shared_ptr<Piece>& p,
                               Position split_pos, Value pivot);

  /// \brief The latest published snapshot of the tiling; latch-free (safe
  /// with no latch held). Republished by every structure change that adds a
  /// piece, so a snapshot is stale only while a reader races a split — which
  /// the reader detects through the piece's atomic `end` and seqlock.
  std::shared_ptr<const PieceMapSnapshot> AcquireSnapshot() const {
    return std::atomic_load(&snapshot_);
  }

  size_t num_pieces() const { return by_begin_.size(); }
  size_t array_size() const { return array_size_; }
  SchedulingPolicy policy() const { return policy_; }

  /// \brief Visits pieces in position order.
  void ForEach(const std::function<void(const Piece&)>& fn) const;

  /// \brief Checks tiling invariants (pieces cover [0, n) without gaps or
  /// overlaps; value bounds are monotone); used by tests.
  bool Validate() const;

 private:
  /// Rebuilds and atomically publishes the snapshot from by_begin_. Caller
  /// holds the structure latch exclusively (same rule as every map change).
  void PublishSnapshot();

  const size_t array_size_;
  const SchedulingPolicy policy_;
  std::map<Position, std::shared_ptr<Piece>> by_begin_;
  /// Accessed with std::atomic_load/atomic_store only.
  std::shared_ptr<const PieceMapSnapshot> snapshot_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_CRACKING_PIECE_MAP_H_
