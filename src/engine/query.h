#ifndef ADAPTIDX_ENGINE_QUERY_H_
#define ADAPTIDX_ENGINE_QUERY_H_

#include <string>
#include <vector>

#include "storage/types.h"
#include "workload/workload.h"

namespace adaptidx {

/// \brief The statement kinds of the unified query descriptor. kCount/kSum
/// are the paper's Q1/Q2 templates; kSumOther is the two-column plan of
/// Figure 6 (select on one column, positional aggregation of another);
/// kRowIds materializes the qualifying positions themselves.
enum class QueryKind {
  kCount,
  kSum,
  kSumOther,
  kRowIds,
};

std::string ToString(QueryKind kind);

/// \brief Unified query descriptor submitted through a `Session`.
///
/// Every statement of the public API is one of these: a kind, the target
/// table/column, the half-open predicate range [lo, hi), and — for
/// kSumOther — the column being aggregated. Descriptors are plain values;
/// building one performs no catalog access and cannot fail (resolution
/// errors surface on the ticket when the query executes).
struct Query {
  QueryKind kind = QueryKind::kCount;
  std::string table;       ///< target table (ignored by direct-index sessions)
  std::string column;      ///< selection column (the indexed attribute)
  std::string agg_column;  ///< aggregated column, kSumOther only
  ValueRange range{0, 0};  ///< predicate: column in [lo, hi)

  // ---- convenience builders -------------------------------------------

  /// \brief `select count(*) from table where lo <= column < hi`.
  static Query Count(std::string table, std::string column, Value lo,
                     Value hi) {
    return Query{QueryKind::kCount, std::move(table), std::move(column), "",
                 ValueRange{lo, hi}};
  }

  /// \brief `select sum(column) from table where lo <= column < hi`.
  static Query Sum(std::string table, std::string column, Value lo, Value hi) {
    return Query{QueryKind::kSum, std::move(table), std::move(column), "",
                 ValueRange{lo, hi}};
  }

  /// \brief `select sum(agg_column) from table where lo <= column < hi`.
  static Query SumOther(std::string table, std::string column,
                        std::string agg_column, Value lo, Value hi) {
    return Query{QueryKind::kSumOther, std::move(table), std::move(column),
                 std::move(agg_column), ValueRange{lo, hi}};
  }

  /// \brief Materializes the qualifying rowIDs.
  static Query RowIds(std::string table, std::string column, Value lo,
                      Value hi) {
    return Query{QueryKind::kRowIds, std::move(table), std::move(column), "",
                 ValueRange{lo, hi}};
  }

  /// \brief Lifts a workload-generator `RangeQuery` into a descriptor
  /// (kCount/kSum depending on the query's type).
  static Query From(std::string table, std::string column,
                    const RangeQuery& q) {
    return Query{q.type == QueryType::kCount ? QueryKind::kCount
                                             : QueryKind::kSum,
                 std::move(table), std::move(column), "",
                 ValueRange{q.lo, q.hi}};
  }
};

/// \brief Lifts a whole generated workload into descriptors against one
/// table/column — the bridge between `WorkloadGenerator` and
/// `Session::SubmitBatch`.
std::vector<Query> ToQueries(const std::string& table,
                             const std::string& column,
                             const std::vector<RangeQuery>& queries);

}  // namespace adaptidx

#endif  // ADAPTIDX_ENGINE_QUERY_H_
