#include "server/listener.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

namespace adaptidx {
namespace server {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Listener::~Listener() { Close(); }

Status Listener::Listen(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::Corruption("socket() failed");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad listen address: " + host);
  }
  if (::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Close();
    return Status::Corruption("bind() failed: " +
                              std::string(::strerror(errno)));
  }
  if (::listen(fd_, /*backlog=*/128) != 0) {
    Close();
    return Status::Corruption("listen() failed");
  }
  if (!SetNonBlocking(fd_)) {
    Close();
    return Status::Corruption("listener O_NONBLOCK failed");
  }
  // Recover the ephemeral port for port-0 binds.
  struct sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  return Status::OK();
}

Status Listener::Accept(int* client_fd) {
  *client_fd = -1;
  if (fd_ < 0) return Status::Busy("listener closed");
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Busy("no pending connection");
    }
    return Status::Corruption("accept() failed: " +
                              std::string(::strerror(errno)));
  }
  if (!SetNonBlocking(fd)) {
    ::close(fd);
    return Status::Corruption("accepted fd O_NONBLOCK failed");
  }
  SetNoDelay(fd);
  *client_fd = fd;
  return Status::OK();
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace server
}  // namespace adaptidx
