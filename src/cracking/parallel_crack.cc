#include "cracking/parallel_crack.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace adaptidx {

namespace {

/// Chunks below this size are not worth a pool round-trip: the dispatch and
/// completion handshake would dominate the partitioning work itself.
constexpr size_t kMinChunkSize = 1u << 12;

/// A contiguous run of misplaced elements, [begin, end).
struct Run {
  Position begin;
  Position end;
};

/// Index of the run containing global misplaced-offset `k`, given the
/// exclusive prefix sums of run lengths (`pre[i]` = elements before run i).
size_t RunForOffset(const std::vector<size_t>& pre, size_t k) {
  return static_cast<size_t>(
             std::upper_bound(pre.begin(), pre.end(), k) - pre.begin()) -
         1;
}

}  // namespace

void ParallelRun(ThreadPool* pool, size_t tasks,
                 const std::function<void(size_t)>& fn) {
  if (tasks == 0) return;
  if (pool == nullptr || tasks == 1) {
    for (size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  // Shared by the caller and the helpers it enqueues; helpers that wake
  // after every task is claimed touch only this struct. The function is
  // copied in so a late-waking helper never dereferences caller stack.
  struct Shared {
    std::function<void(size_t)> fn;
    size_t tasks = 0;
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    size_t done = 0;
  };
  auto s = std::make_shared<Shared>();
  s->fn = fn;
  s->tasks = tasks;
  auto work = [](const std::shared_ptr<Shared>& st) {
    for (;;) {
      const size_t i = st->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= st->tasks) return;
      st->fn(i);
      std::lock_guard<std::mutex> lk(st->mu);
      if (++st->done == st->tasks) st->cv.notify_all();
    }
  };
  const size_t helpers = std::min(tasks - 1, pool->num_threads());
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([s, work] { work(s); });
  }
  work(s);
  // The handshake publishes every worker's writes to the caller: task
  // results are read only after `done` reached `tasks` under the mutex.
  std::unique_lock<std::mutex> lk(s->mu);
  s->cv.wait(lk, [&] { return s->done == s->tasks; });
}

Position ParallelCrackTwo(CrackerArray* array, Position begin, Position end,
                          Value pivot, ThreadPool* pool, size_t num_chunks,
                          ParallelCrackStats* stats) {
  const size_t n = end > begin ? end - begin : 0;
  size_t chunks = pool != nullptr ? num_chunks : 1;
  chunks = std::min(chunks, n / kMinChunkSize);
  if (chunks <= 1) {
    return array->CrackTwo(begin, end, pivot);
  }

  // Phase A: crack every contiguous chunk independently (disjoint ranges).
  std::vector<Position> cuts(chunks + 1);
  for (size_t c = 0; c <= chunks; ++c) {
    cuts[c] = begin + static_cast<Position>(n * c / chunks);
  }
  std::vector<Position> mid(chunks);
  ParallelRun(pool, chunks, [&](size_t c) {
    mid[c] = array->CrackTwo(cuts[c], cuts[c + 1], pivot);
  });

  // The global split is the total "< pivot" count — invariant under any
  // partitioning algorithm, so it matches the sequential kernel's result.
  Position split = begin;
  for (size_t c = 0; c < chunks; ++c) split += mid[c] - cuts[c];

  // Phase B: swap-based refined merge. Left misplacements are the chunk
  // high-regions that intersect [begin, split); right misplacements are the
  // chunk low-regions that intersect [split, end). Their totals are equal
  // by construction of `split`, and swapping the k-th left misplacement
  // with the k-th right one fixes both sides with zero copies.
  const int64_t merge_start = NowNanos();
  std::vector<Run> left;
  std::vector<Run> right;
  for (size_t c = 0; c < chunks; ++c) {
    const Position le = std::min(cuts[c + 1], split);
    if (mid[c] < le) left.push_back(Run{mid[c], le});
    const Position rb = std::max(cuts[c], split);
    if (rb < mid[c]) right.push_back(Run{rb, mid[c]});
  }
  std::vector<size_t> lpre(left.size() + 1, 0);
  for (size_t i = 0; i < left.size(); ++i) {
    lpre[i + 1] = lpre[i] + (left[i].end - left[i].begin);
  }
  std::vector<size_t> rpre(right.size() + 1, 0);
  for (size_t i = 0; i < right.size(); ++i) {
    rpre[i + 1] = rpre[i] + (right[i].end - right[i].begin);
  }
  const size_t misplaced = lpre.back();
  if (misplaced > 0) {
    // Parallelize over the misplaced-pair index space [0, misplaced): each
    // task owns a contiguous slice of pair indices, so the swapped position
    // sets of different tasks are disjoint on both sides.
    const size_t merge_tasks = std::min(
        chunks, std::max<size_t>(1, misplaced / kMinChunkSize));
    ParallelRun(pool, merge_tasks, [&](size_t t) {
      size_t k = misplaced * t / merge_tasks;
      const size_t k_end = misplaced * (t + 1) / merge_tasks;
      if (k >= k_end) return;
      size_t li = RunForOffset(lpre, k);
      size_t ri = RunForOffset(rpre, k);
      while (k < k_end) {
        const size_t len = std::min(
            {lpre[li + 1] - k, rpre[ri + 1] - k, k_end - k});
        array->SwapRanges(left[li].begin + (k - lpre[li]),
                          right[ri].begin + (k - rpre[ri]), len);
        k += len;
        if (k == lpre[li + 1]) ++li;
        if (k == rpre[ri + 1]) ++ri;
      }
    });
  }
  stats->merge_ns += NowNanos() - merge_start;
  stats->chunks += chunks;
  return split;
}

std::pair<Position, Position> ParallelCrackThree(CrackerArray* array,
                                                 Position begin, Position end,
                                                 Value lo, Value hi,
                                                 ThreadPool* pool,
                                                 size_t num_chunks,
                                                 ParallelCrackStats* stats) {
  // Two two-way passes; the second touches only the upper remainder. The
  // resulting regions match the single-pass kernel's (region membership is
  // value-determined; only intra-region order differs).
  const Position p1 =
      ParallelCrackTwo(array, begin, end, lo, pool, num_chunks, stats);
  const Position p2 =
      ParallelCrackTwo(array, p1, end, hi, pool, num_chunks, stats);
  return {p1, p2};
}

void ParallelSortValues(std::vector<Value>* values, ThreadPool* pool,
                        size_t num_chunks) {
  const size_t n = values->size();
  size_t chunks = pool != nullptr ? num_chunks : 1;
  // Power-of-two chunk count so the merge tree is a clean pairwise halving.
  size_t pow2 = 1;
  while (pow2 * 2 <= chunks) pow2 *= 2;
  chunks = std::min(pow2, std::max<size_t>(1, n / kMinChunkSize));
  pow2 = 1;
  while (pow2 * 2 <= chunks) pow2 *= 2;
  chunks = pow2;
  if (chunks <= 1) {
    std::sort(values->begin(), values->end());
    return;
  }
  std::vector<size_t> cuts(chunks + 1);
  for (size_t c = 0; c <= chunks; ++c) cuts[c] = n * c / chunks;
  Value* data = values->data();
  ParallelRun(pool, chunks, [&](size_t c) {
    std::sort(data + cuts[c], data + cuts[c + 1]);
  });
  for (size_t width = 1; width < chunks; width *= 2) {
    const size_t pairs = chunks / (2 * width);
    ParallelRun(pool, pairs, [&](size_t p) {
      const size_t lo = 2 * width * p;
      std::inplace_merge(data + cuts[lo], data + cuts[lo + width],
                         data + cuts[lo + 2 * width]);
    });
  }
}

}  // namespace adaptidx
