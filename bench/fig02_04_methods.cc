/// \file Reproduces the behavioral contrast of Figures 2-4: database
/// cracking (lazy start, slow convergence), adaptive merging (expensive
/// first query building sorted runs, fast convergence), and hybrid
/// crack-sort (lazy start *and* fast convergence), plus the partitioned
/// B-tree realization of merging.
///
/// Prints per-query response over the sequence and each method's structural
/// convergence state.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/cracking_index.h"
#include "hybrid/crack_sort.h"
#include "merging/adaptive_merge.h"
#include "util/stopwatch.h"

namespace adaptidx {
namespace bench {
namespace {

void Run() {
  const size_t rows = EnvSize("AI_BENCH_ROWS", 2000000);
  const size_t num_queries = EnvSize("AI_BENCH_FIG0204_QUERIES", 256);
  PrintHeader("Figures 2-4: cracking vs adaptive merging vs hybrid",
              "rows=" + std::to_string(rows) +
                  " queries=" + std::to_string(num_queries) +
                  " selectivity=0.1% type=Q1(count) clients=1");

  Column column = MakeUniqueRandomColumn(rows);
  WorkloadGenerator gen(0, static_cast<Value>(rows));
  WorkloadOptions wopts;
  wopts.num_queries = num_queries;
  wopts.selectivity = 0.001;
  wopts.type = QueryType::kCount;
  wopts.seed = 13;
  const auto queries = gen.Generate(wopts);

  IndexConfig configs[4];
  configs[0].method = IndexMethod::kCrack;
  configs[1].method = IndexMethod::kAdaptiveMerge;
  configs[1].merge.run_size = rows / 16 + 1;
  configs[2].method = IndexMethod::kHybrid;
  configs[2].hybrid.partition_size = rows / 16 + 1;
  configs[3].method = IndexMethod::kBTreeMerge;
  configs[3].btree.run_size = rows / 16 + 1;
  const char* names[4] = {"crack", "merge", "hybrid", "btree-merge"};

  std::vector<std::unique_ptr<AdaptiveIndex>> indexes;
  std::vector<std::vector<double>> per_query(4);
  for (int m = 0; m < 4; ++m) {
    indexes.push_back(MakeIndex(&column, configs[m]));
    for (const auto& q : queries) {
      QueryContext ctx;
      uint64_t count = 0;
      StopWatch sw;
      (void)indexes[m]->RangeCount(ValueRange{q.lo, q.hi}, &ctx, &count);
      per_query[m].push_back(sw.ElapsedMillis());
    }
  }

  std::printf("\nResponse time per query (ms), log-spaced samples\n");
  std::printf("%-8s", "query#");
  for (const char* n : names) std::printf(" %12s", n);
  std::printf("\n");
  size_t step = 1;
  for (size_t i = 0; i < num_queries; i += step) {
    std::printf("%-8zu", i + 1);
    for (int m = 0; m < 4; ++m) std::printf(" %12.3f", per_query[m][i]);
    std::printf("\n");
    if (i + 1 >= 8) step = (i + 1) / 2;
  }

  std::printf("\nConvergence state after %zu queries:\n", num_queries);
  std::printf("  crack:       %zu pieces\n", indexes[0]->NumPieces());
  std::printf("  merge:       %zu runs+segments\n", indexes[1]->NumPieces());
  std::printf("  hybrid:      %zu partitions+segments, %zu entries left in "
              "initial partitions\n",
              indexes[2]->NumPieces(),
              static_cast<HybridCrackSortIndex*>(indexes[2].get())
                  ->ResidualEntries());
  std::printf("  btree-merge: %zu live B-tree partitions\n",
              indexes[3]->NumPieces());

  // First-query cost ordering (Figures 2-4): cracking and hybrid are lazy
  // first-touchers; merging pays run-sorting up front.
  std::printf(
      "\npaper-shape check: first query crack (%.1f ms) < merge (%.1f ms): "
      "%s; hybrid first (%.1f ms) < merge: %s\n",
      per_query[0][0], per_query[1][0],
      per_query[0][0] < per_query[1][0] ? "yes" : "NO", per_query[2][0],
      per_query[2][0] < per_query[1][0] ? "yes" : "NO");
}

}  // namespace
}  // namespace bench
}  // namespace adaptidx

int main() {
  adaptidx::bench::Run();
  return 0;
}
