#include "core/updatable_index.h"

#include <algorithm>

#include "util/stopwatch.h"

namespace adaptidx {

namespace {

/// Acquires `mu` (shared or exclusive per the lock type) and accounts the
/// acquisition on `stats`: uncontended fast path via try-lock, otherwise the
/// blocked wait is timed. This makes reader/writer interference on the side
/// tables observable — the quantity the snapshot-read ablation measures.
template <typename Lock, typename Mutex>
Lock AccountedLock(Mutex& mu, void (LatchStats::*record)(int64_t, bool),
                   LatchStats* stats) {
  Lock lk(mu, std::try_to_lock);
  if (lk.owns_lock()) {
    (stats->*record)(0, false);
    return lk;
  }
  const int64_t t0 = NowNanos();
  lk.lock();
  (stats->*record)(NowNanos() - t0, true);
  return lk;
}

// The two differential views the shared combine logic below runs against.
// Latched reads walk the live ordered containers (under the shared
// side-table latch); snapshot reads walk an immutable SideStoreVersion's
// sorted vectors (no latch). Keeping ONE combine implementation over both
// is what guarantees the two paths can never diverge semantically.

/// Live side stores (mu_ held, shared suffices).
struct MapDiffView {
  const std::multimap<Value, RowId>& inserts;
  const std::set<std::pair<Value, RowId>>& anti_matter;

  void InsertCountSum(const ValueRange& range, uint64_t* count,
                      int64_t* sum) const {
    *count = 0;
    *sum = 0;
    for (auto it = inserts.lower_bound(range.lo);
         it != inserts.end() && it->first < range.hi; ++it) {
      ++*count;
      *sum += it->first;
    }
  }
  void AntiMatterCountSum(const ValueRange& range, uint64_t* count,
                          int64_t* sum) const {
    *count = 0;
    *sum = 0;
    for (auto it = anti_matter.lower_bound({range.lo, 0});
         it != anti_matter.end() && it->first < range.hi; ++it) {
      ++*count;
      *sum += it->first;
    }
  }
  bool AnyAntiMatter() const { return !anti_matter.empty(); }
  bool AnyAntiMatterIn(const ValueRange& range) const {
    auto it = anti_matter.lower_bound({range.lo, 0});
    return it != anti_matter.end() && it->first < range.hi;
  }
  bool HidesRow(Value v, RowId id) const {
    return anti_matter.count({v, id}) > 0;
  }
  template <typename Fn>
  void ForEachInsertIn(const ValueRange& range, Fn fn) const {
    for (auto it = inserts.lower_bound(range.lo);
         it != inserts.end() && it->first < range.hi; ++it) {
      fn(it->first, it->second);
    }
  }
};

/// Pinned immutable version (no latch needed).
struct VersionDiffView {
  const SideStoreVersion& v;

  void InsertCountSum(const ValueRange& range, uint64_t* count,
                      int64_t* sum) const {
    v.InsertCountSum(range, count, sum);
  }
  void AntiMatterCountSum(const ValueRange& range, uint64_t* count,
                          int64_t* sum) const {
    v.AntiMatterCountSum(range, count, sum);
  }
  bool AnyAntiMatter() const { return !v.anti_matter.empty(); }
  bool AnyAntiMatterIn(const ValueRange& range) const {
    return v.AnyAntiMatterIn(range);
  }
  bool HidesRow(Value value, RowId id) const { return v.HidesRow(value, id); }
  template <typename Fn>
  void ForEachInsertIn(const ValueRange& range, Fn fn) const {
    for (size_t i = v.FirstInsertAtOrAbove(range.lo);
         i < v.inserts.size() && v.inserts[i].first < range.hi; ++i) {
      fn(v.inserts[i].first, v.inserts[i].second);
    }
  }
};

/// Pinned delta-chain snapshot: the consolidated base plus the era-local
/// suffix of O(1) commit deltas, folded once per query into three sorted
/// vectors. The arithmetic leans on (value, rowID) uniqueness — row ids
/// are never reused, so a chained kCancelInsert names exactly one insert
/// that the base or the chain currently counts, and anti-matter is purely
/// additive until a checkpoint resets both stores. Fold cost is
/// O(chain log chain), bounded by the consolidation threshold.
struct DeltaChainView {
  const SideStoreVersion& base;
  std::vector<std::pair<Value, RowId>> chain_inserts;
  std::vector<std::pair<Value, RowId>> chain_anti;
  std::vector<std::pair<Value, RowId>> cancels;

  explicit DeltaChainView(const Snapshot& snapshot)
      : base(snapshot.version()) {
    for (const SideStoreDelta* d = snapshot.delta_head(); d != nullptr;
         d = d->prev.get()) {
      const std::pair<Value, RowId> entry{d->value, d->row_id};
      switch (d->op) {
        case SideStoreDelta::Op::kInsert:
          chain_inserts.push_back(entry);
          break;
        case SideStoreDelta::Op::kAntiMatter:
          chain_anti.push_back(entry);
          break;
        case SideStoreDelta::Op::kCancelInsert:
          cancels.push_back(entry);
          break;
      }
    }
    std::sort(chain_inserts.begin(), chain_inserts.end());
    std::sort(chain_anti.begin(), chain_anti.end());
    std::sort(cancels.begin(), cancels.end());
  }

  static void RangeCountSum(const std::vector<std::pair<Value, RowId>>& v,
                            const ValueRange& range, uint64_t* count,
                            int64_t* sum) {
    auto it = std::lower_bound(v.begin(), v.end(),
                               std::make_pair(range.lo, RowId{0}));
    for (; it != v.end() && it->first < range.hi; ++it) {
      ++*count;
      *sum += it->first;
    }
  }

  void InsertCountSum(const ValueRange& range, uint64_t* count,
                      int64_t* sum) const {
    // Each cancelled (value, rowID) is currently counted exactly once —
    // in the base if it was pending at consolidation, in the chain if it
    // was inserted after — so subtracting the in-range cancels nets the
    // live pending-insert population.
    base.InsertCountSum(range, count, sum);
    RangeCountSum(chain_inserts, range, count, sum);
    uint64_t cancel_count = 0;
    int64_t cancel_sum = 0;
    RangeCountSum(cancels, range, &cancel_count, &cancel_sum);
    *count -= cancel_count;
    *sum -= cancel_sum;
  }
  void AntiMatterCountSum(const ValueRange& range, uint64_t* count,
                          int64_t* sum) const {
    base.AntiMatterCountSum(range, count, sum);
    RangeCountSum(chain_anti, range, count, sum);
  }
  bool AnyAntiMatter() const {
    return !base.anti_matter.empty() || !chain_anti.empty();
  }
  bool AnyAntiMatterIn(const ValueRange& range) const {
    if (base.AnyAntiMatterIn(range)) return true;
    auto it = std::lower_bound(chain_anti.begin(), chain_anti.end(),
                               std::make_pair(range.lo, RowId{0}));
    return it != chain_anti.end() && it->first < range.hi;
  }
  bool HidesRow(Value value, RowId id) const {
    return base.HidesRow(value, id) ||
           std::binary_search(chain_anti.begin(), chain_anti.end(),
                              std::make_pair(value, id));
  }
  bool Cancelled(Value value, RowId id) const {
    return std::binary_search(cancels.begin(), cancels.end(),
                              std::make_pair(value, id));
  }
  template <typename Fn>
  void ForEachInsertIn(const ValueRange& range, Fn fn) const {
    for (size_t i = base.FirstInsertAtOrAbove(range.lo);
         i < base.inserts.size() && base.inserts[i].first < range.hi; ++i) {
      if (Cancelled(base.inserts[i].first, base.inserts[i].second)) continue;
      fn(base.inserts[i].first, base.inserts[i].second);
    }
    auto it = std::lower_bound(chain_inserts.begin(), chain_inserts.end(),
                               std::make_pair(range.lo, RowId{0}));
    for (; it != chain_inserts.end() && it->first < range.hi; ++it) {
      if (Cancelled(it->first, it->second)) continue;
      fn(it->first, it->second);
    }
  }
};

/// THE query evaluation of the differential layer — shared verbatim by the
/// latched and snapshot paths: combines the base index/column answer with
/// one differential view. The caller guarantees `diff`, `base`, and
/// `index` stay valid for the duration (shared latch or snapshot pin).
template <typename DiffView>
Status CombineWithDifferentials(const Query& query, const DiffView& diff,
                                const Column& base, AdaptiveIndex* index,
                                QueryContext* ctx, QueryResult* result) {
  const ValueRange& range = query.range;
  switch (query.kind) {
    case QueryKind::kCount:
    case QueryKind::kSum: {
      QueryResult base_result;
      Status s = index->Execute(query, ctx, &base_result);
      if (!s.ok()) return s;
      uint64_t ins_c;
      int64_t ins_s;
      uint64_t del_c;
      int64_t del_s;
      diff.InsertCountSum(range, &ins_c, &ins_s);
      diff.AntiMatterCountSum(range, &del_c, &del_s);
      if (query.kind == QueryKind::kCount) {
        result->count = base_result.count + ins_c - del_c;
      } else {
        result->sum = base_result.sum + ins_s - del_s;
      }
      return Status::OK();
    }
    case QueryKind::kRowIds: {
      QueryResult base_result;
      Status s = index->Execute(query, ctx, &base_result);
      if (!s.ok()) return s;
      result->row_ids = std::move(base_result.row_ids);
      if (diff.AnyAntiMatter()) {
        // Filter out rows hidden by anti-matter; values come from the base
        // column (row ids of base rows are positions).
        auto hidden = [&](RowId id) { return diff.HidesRow(base[id], id); };
        result->row_ids.erase(std::remove_if(result->row_ids.begin(),
                                             result->row_ids.end(), hidden),
                              result->row_ids.end());
      }
      diff.ForEachInsertIn(range, [&](Value, RowId id) {
        result->row_ids.push_back(id);
      });
      return Status::OK();
    }
    case QueryKind::kMinMax: {
      MinMaxAccumulator acc;
      if (!diff.AnyAntiMatterIn(range)) {
        // The base answer cannot name a deleted extreme; combine it with
        // the pending insertions directly.
        QueryResult base_result;
        Status s = index->Execute(query, ctx, &base_result);
        if (!s.ok()) return s;
        if (base_result.has_minmax) {
          acc.Feed(base_result.min_value, base_result.max_value);
        }
      } else {
        // A deleted row may have been the extreme; re-derive from the base
        // column skipping hidden rows. Deletions in the queried range are
        // the rare case, so the O(n) pass stays off the common path.
        for (size_t i = 0; i < base.size(); ++i) {
          const Value v = base[i];
          if (!range.Contains(v)) continue;
          if (diff.HidesRow(v, static_cast<RowId>(i))) continue;
          acc.Feed(v);
        }
      }
      diff.ForEachInsertIn(range, [&](Value v, RowId) { acc.Feed(v); });
      acc.Store(result);
      return Status::OK();
    }
    case QueryKind::kSumOther:
      return Status::NotSupported("updatable index holds no second column");
  }
  return Status::InvalidArgument("unknown query kind");
}

}  // namespace

UpdatableIndex::UpdatableIndex(Column base, IndexConfig config,
                               LockManager* lock_manager,
                               std::string lock_resource)
    : config_(std::move(config)),
      lock_manager_(lock_manager),
      lock_resource_(std::move(lock_resource)),
      base_(std::make_unique<Column>(std::move(base))),
      next_row_id_(static_cast<RowId>(base_->size())) {
  RebuildIndexLocked();
}

UpdatableIndex::~UpdatableIndex() {
  // Drain: block new captures and wait for every outstanding pin, exactly
  // as a checkpoint would. Once the registry is empty every Snapshot
  // handle has run Release() (which nulls its manager pointer), so no
  // destructor of a surviving handle can reach back into freed memory.
  // The rebase deliberately never completes — the manager dies rebasing.
  snapshots_.BeginRebase();
}

void UpdatableIndex::RebuildIndexLocked() {
  if (config_.method == IndexMethod::kCrack && lock_manager_ != nullptr) {
    config_.cracking.lock_manager = lock_manager_;
    config_.cracking.lock_resource = lock_resource_;
  }
  index_ = MakeIndex(base_.get(), config_);
}

std::string UpdatableIndex::Name() const {
  return "updatable(" + index_->Name() + ")";
}

std::shared_ptr<SideStoreVersion> UpdatableIndex::MaterializeVersionLocked()
    const {
  auto v = std::make_shared<SideStoreVersion>();
  v->epoch = commit_epoch_.load(std::memory_order_relaxed);
  v->next_row_id = next_row_id_;
  // Both copies come out (value, rowID)-sorted: the multimap preserves
  // insertion order within equal values and row ids are assigned
  // monotonically, so equal-value runs are rowID-ascending; the anti-matter
  // set is ordered by the pair directly.
  v->inserts.assign(inserts_.begin(), inserts_.end());
  v->anti_matter.assign(anti_matter_.begin(), anti_matter_.end());
  return v;
}

size_t UpdatableIndex::ConsolidateThresholdLocked() const {
  const size_t pending = inserts_.size() + anti_matter_.size();
  const size_t floor =
      std::max<size_t>(config_.snapshot_consolidate_min, 1);
  const size_t cap = std::max(config_.snapshot_consolidate_max, floor);
  return std::min(cap, std::max(floor, pending / 8));
}

void UpdatableIndex::CommitEpochLocked(SideStoreDelta::Op op, Value v,
                                       RowId row_id) {
  const uint64_t epoch =
      commit_epoch_.fetch_add(1, std::memory_order_release) + 1;
  if (!config_.snapshot_reads) return;
  if (config_.snapshot_publication == SnapshotPublication::kCopyChain) {
    // Ablation baseline: O(pending) flat copy per commit under the writer
    // latch — the cost delta chains remove.
    snapshots_.Publish(MaterializeVersionLocked());
    return;
  }
  // O(1) publication; the chain is consolidated into a flat base before
  // readers would fold a suffix longer than the adaptive threshold
  // (>= floor so tiny stores don't thrash, pending/8 so the occasional
  // O(pending) materialization stays amortized-O(1) per commit, capped so
  // per-read fold work is bounded).
  const size_t chain =
      snapshots_.PublishDelta(op, v, row_id, epoch, next_row_id_);
  latch_stats_.RecordDeltaPublish(chain);
  if (chain >= ConsolidateThresholdLocked()) {
    snapshots_.Consolidate(MaterializeVersionLocked());
    latch_stats_.RecordConsolidation(chain);
  }
}

Snapshot UpdatableIndex::CaptureSnapshot() const {
  if (config_.snapshot_reads) {
    // The chain is maintained by the write path: the capture is one short
    // pin on the manager, no side-table latch at all.
    return snapshots_.Acquire();
  }
  // Chain not maintained: materialize a consistent one-off version under
  // the shared latch (O(pending)); it still registers with the manager so
  // checkpoint drains account for it. The pin must never be awaited while
  // mu_ is held — a draining checkpoint is about to take mu_ exclusively —
  // so a rebase collision drops the latch and retries after the rebase.
  for (;;) {
    snapshots_.AwaitRebaseComplete();
    std::shared_lock<std::shared_mutex> lk(mu_);
    Snapshot snapshot =
        snapshots_.TryAcquireMaterialized(MaterializeVersionLocked());
    if (snapshot.valid()) return snapshot;
  }
}

Status UpdatableIndex::ExecuteSnapshot(const Query& query,
                                       const Snapshot& snapshot,
                                       QueryContext* ctx,
                                       QueryResult* result) {
  result->Reset(query.kind);
  if (!snapshot.valid()) {
    return Status::InvalidArgument("snapshot is empty/released");
  }
  if (snapshot.mgr_ != &snapshots_) {
    return Status::InvalidArgument("snapshot belongs to another index");
  }
  if (query.range.Empty()) return Status::OK();
  // No side-table latch for the duration of the read: the base column and
  // wrapped index are stable while the snapshot is pinned, because
  // Checkpoint() drains every outstanding snapshot before swapping them
  // (synchronized through the SnapshotManager mutex).
  Status s;
  if (snapshot.delta_head() == nullptr) {
    // Exactly a consolidated state — zero-copy view over its vectors.
    s = CombineWithDifferentials(query, VersionDiffView{snapshot.version()},
                                 *base_, index_.get(), ctx, result);
  } else {
    // Fold the era-local delta suffix over the consolidated base.
    s = CombineWithDifferentials(query, DeltaChainView(snapshot), *base_,
                                 index_.get(), ctx, result);
  }
  if (s.ok() && query.kind == QueryKind::kRowIds) {
    result->count = result->row_ids.size();
  }
  latch_stats_.RecordSnapshotRead(commit_epoch() - snapshot.epoch());
  return s;
}

Status UpdatableIndex::ExecuteImpl(const Query& query, QueryContext* ctx,
                                   QueryResult* result) {
  if (ctx != nullptr && ctx->snapshot_scope != nullptr) {
    // Transactional scope: every query of the scope reads at the ONE epoch
    // its first query pinned for this index (repeatable reads across a
    // multi-query transaction). A scope closed mid-flight (EndSnapshot
    // racing an async submission) refuses adoption; fall through to the
    // per-query paths below.
    SnapshotScope* scope = ctx->snapshot_scope.get();
    const Snapshot* pinned = scope->Find(this);
    if (pinned == nullptr) pinned = scope->Adopt(this, CaptureSnapshot());
    if (pinned != nullptr) {
      return ExecuteSnapshot(query, *pinned, ctx, result);
    }
  }
  if (ctx != nullptr && ctx->snapshot_reads) {
    // Per-query snapshot capture: each execution (each ticket of an async
    // batch) pins its own epoch, so every answer is individually
    // consistent and the side-table latch is never held across the read.
    Snapshot snapshot = CaptureSnapshot();
    return ExecuteSnapshot(query, snapshot, ctx, result);
  }
  auto lk = AccountedLock<std::shared_lock<std::shared_mutex>>(
      mu_, &LatchStats::RecordRead, &latch_stats_);
  return CombineWithDifferentials(query,
                                  MapDiffView{inserts_, anti_matter_},
                                  *base_, index_.get(), ctx, result);
}

Status UpdatableIndex::Insert(Value v, QueryContext* ctx, RowId* row_id) {
  // User transaction: exclusive key lock under the column resource.
  const bool locking = lock_manager_ != nullptr && !lock_resource_.empty();
  if (locking) {
    Status s = lock_manager_->Acquire(
        ctx->txn_id, lock_resource_ + "/key:" + std::to_string(v),
        LockMode::kX);
    if (!s.ok()) return s;
  }
  RowId assigned;
  CommitSink* sink = nullptr;
  uint64_t lsn = 0;
  {
    auto lk = AccountedLock<std::unique_lock<std::shared_mutex>>(
        mu_, &LatchStats::RecordWrite, &latch_stats_);
    assigned = next_row_id_++;
    inserts_.emplace(v, assigned);
    // Write-ahead: the record is sequenced at the commit point, before the
    // epoch advance makes the insert visible — log order == commit order.
    // LogCommit only buffers; the fsync wait happens after the latch drops.
    if (sink_ != nullptr) {
      sink = sink_;
      lsn = sink->LogCommit(CommitSink::OpType::kInsert, v, assigned);
    }
    CommitEpochLocked(SideStoreDelta::Op::kInsert, v, assigned);
  }
  if (locking) lock_manager_->ReleaseAll(ctx->txn_id);  // auto-commit
  if (sink != nullptr) {
    Status ds = sink->WaitDurable(lsn);
    if (!ds.ok()) return ds;
  }
  if (row_id != nullptr) *row_id = assigned;
  return Status::OK();
}

Status UpdatableIndex::Delete(Value v, RowId row_id, QueryContext* ctx) {
  const bool locking = lock_manager_ != nullptr && !lock_resource_.empty();
  if (locking) {
    Status s = lock_manager_->Acquire(
        ctx->txn_id, lock_resource_ + "/key:" + std::to_string(v),
        LockMode::kX);
    if (!s.ok()) return s;
  }
  Status result = Status::OK();
  CommitSink* sink = nullptr;
  uint64_t lsn = 0;
  {
    auto lk = AccountedLock<std::unique_lock<std::shared_mutex>>(
        mu_, &LatchStats::RecordWrite, &latch_stats_);
    // A pending insertion is cancelled directly.
    bool cancelled = false;
    for (auto it = inserts_.lower_bound(v);
         it != inserts_.end() && it->first == v; ++it) {
      if (it->second == row_id) {
        inserts_.erase(it);
        cancelled = true;
        break;
      }
    }
    if (!cancelled) {
      const bool in_base = row_id < base_->size() && (*base_)[row_id] == v;
      if (!in_base || anti_matter_.count({v, row_id}) > 0) {
        result = Status::NotFound("no live tuple (" + std::to_string(v) +
                                  ", " + std::to_string(row_id) + ")");
      } else {
        anti_matter_.emplace(v, row_id);
      }
    }
    if (result.ok()) {
      if (sink_ != nullptr) {
        sink = sink_;
        lsn = sink->LogCommit(CommitSink::OpType::kDelete, v, row_id);
      }
      CommitEpochLocked(cancelled ? SideStoreDelta::Op::kCancelInsert
                                  : SideStoreDelta::Op::kAntiMatter,
                        v, row_id);
    }
  }
  if (locking) lock_manager_->ReleaseAll(ctx->txn_id);
  if (sink != nullptr) {
    Status ds = sink->WaitDurable(lsn);
    if (!ds.ok()) return ds;
  }
  return result;
}

Status UpdatableIndex::Checkpoint() {
  // Drain FIRST, before taking mu_: block new snapshot captures and wait
  // until every outstanding snapshot is released — held snapshots
  // reference the current base column/index, which is about to be
  // replaced. The ordering matters: a snapshot holder may need mu_ to
  // finish the operation its pin brackets (e.g. another thread holding a
  // pin across an Insert), so waiting for pins while holding mu_
  // exclusively would deadlock the whole index. With the drain complete
  // and rebasing latched in the manager, no new pin can appear before the
  // exclusive acquisition below (both capture paths check the rebase
  // flag without holding mu_).
  snapshots_.BeginRebase();
  std::unique_lock<std::shared_mutex> lk(mu_);
  std::vector<Value> values;
  values.reserve(base_->size() + inserts_.size() - anti_matter_.size());
  for (size_t i = 0; i < base_->size(); ++i) {
    const Value v = (*base_)[i];
    if (anti_matter_.count({v, static_cast<RowId>(i)}) > 0) continue;
    values.push_back(v);
  }
  for (const auto& [v, id] : inserts_) values.push_back(v);
  base_ = std::make_unique<Column>(base_->name(), std::move(values));
  inserts_.clear();
  anti_matter_.clear();
  next_row_id_ = static_cast<RowId>(base_->size());
  RebuildIndexLocked();
  // The fold is one logged, committed system transaction: folding is a
  // pure function of the pre-fold state, so a single kFold record replays
  // it deterministically (recovery calls Checkpoint() with no sink bound).
  CommitSink* sink = sink_;
  uint64_t lsn = 0;
  if (sink != nullptr) {
    lsn = sink->LogCommit(CommitSink::OpType::kFold, 0, 0);
  }
  // The fold advances the epoch and installs the post-checkpoint
  // (empty-differential) version under the next base generation,
  // re-admitting snapshot captures.
  commit_epoch_.fetch_add(1, std::memory_order_release);
  snapshots_.CompleteRebase(MaterializeVersionLocked());
  lk.unlock();
  if (sink != nullptr) return sink->WaitDurable(lsn);
  return Status::OK();
}

void UpdatableIndex::SetCommitSink(CommitSink* sink) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  sink_ = sink;
}

void UpdatableIndex::RestoreState(
    const std::vector<std::pair<Value, RowId>>& inserts,
    const std::vector<std::pair<Value, RowId>>& anti_matter,
    RowId next_row_id, uint64_t epoch) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  inserts_.clear();
  anti_matter_.clear();
  for (const auto& [v, id] : inserts) inserts_.emplace(v, id);
  anti_matter_.insert(anti_matter.begin(), anti_matter.end());
  next_row_id_ = next_row_id;
  commit_epoch_.store(epoch, std::memory_order_release);
  if (config_.snapshot_reads) {
    // Re-seed the version chain at the restored epoch so the first
    // snapshot capture after recovery sees the restored differentials
    // (monotonic epochs hold: the constructor-time state sits at epoch 0,
    // below any restored epoch). Delta mode installs the restored state as
    // a consolidated base; copy mode publishes it as the next flat copy.
    if (config_.snapshot_publication == SnapshotPublication::kCopyChain) {
      snapshots_.Publish(MaterializeVersionLocked());
    } else {
      snapshots_.Consolidate(MaterializeVersionLocked());
    }
  }
}

size_t UpdatableIndex::num_rows() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return base_->size() + inserts_.size() - anti_matter_.size();
}

size_t UpdatableIndex::pending_inserts() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return inserts_.size();
}

size_t UpdatableIndex::pending_deletes() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return anti_matter_.size();
}

}  // namespace adaptidx
