#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/cracking_index.h"
#include "core/index_factory.h"
#include "core/updatable_index.h"
#include "test_util.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace adaptidx {
namespace {

/// The stochastic crack policies (DDC/DDR/MDD1R) against the exact oracle:
/// whatever pivots a policy injects — and however MDD1R's materialized
/// scans answer instead of exact cracks — query answers must be
/// indistinguishable from plain cracking, on every layout and on degenerate
/// data shapes, while the structural invariants keep holding.

struct StochasticParam {
  const char* name;
  CrackPolicy policy;
  ArrayLayout layout;
};

class StochasticDifferentialTest
    : public ::testing::TestWithParam<StochasticParam> {
 protected:
  CrackingOptions Options() const {
    CrackingOptions opts;
    opts.crack_policy = GetParam().policy;
    opts.layout = GetParam().layout;
    opts.policy_min_piece = 512;  // fire at test scale
    opts.policy_seed = 99;
    return opts;
  }

  /// Runs all four query kinds over `col` and checks every answer against
  /// the oracle; returns the index for further inspection.
  void RunDifferential(const Column& col, Value domain_hi) {
    RangeOracle oracle(col);
    CrackingIndex index(&col, Options());
    Rng rng(41);
    for (int i = 0; i < 120; ++i) {
      Value lo = static_cast<Value>(rng.UniformRange(0, domain_hi));
      Value hi = static_cast<Value>(rng.UniformRange(0, domain_hi));
      if (lo > hi) std::swap(lo, hi);
      const ValueRange range{lo, hi};
      QueryContext ctx;
      switch (i % 4) {
        case 0: {
          uint64_t count = 0;
          ASSERT_TRUE(index.RangeCount(range, &ctx, &count).ok());
          ASSERT_EQ(count, oracle.Count(lo, hi)) << "q" << i;
          break;
        }
        case 1: {
          int64_t sum = 0;
          ASSERT_TRUE(index.RangeSum(range, &ctx, &sum).ok());
          ASSERT_EQ(sum, oracle.Sum(lo, hi)) << "q" << i;
          break;
        }
        case 2: {
          Value mn = 0;
          Value mx = 0;
          bool found = false;
          ASSERT_TRUE(index.RangeMinMax(range, &ctx, &mn, &mx, &found).ok());
          Value omn = 0;
          Value omx = 0;
          const bool ofound = oracle.MinMax(lo, hi, &omn, &omx);
          ASSERT_EQ(found, ofound) << "q" << i;
          if (found) {
            ASSERT_EQ(mn, omn) << "q" << i;
            ASSERT_EQ(mx, omx) << "q" << i;
          }
          break;
        }
        default: {
          std::vector<RowId> ids;
          ASSERT_TRUE(index.RangeRowIds(range, &ctx, &ids).ok());
          ASSERT_TRUE(oracle.CheckRowIds(lo, hi, ids)) << "q" << i;
          break;
        }
      }
    }
    EXPECT_TRUE(index.ValidateStructure());
  }
};

TEST_P(StochasticDifferentialTest, MatchesOracleOnUniqueRandom) {
  RunDifferential(Column::UniqueRandom("A", 20000, 31), 20000);
}

TEST_P(StochasticDifferentialTest, MatchesOracleOnDuplicateHeavy) {
  // ~400 copies of each value: pivots collide with earlier cracks and the
  // no-progress guard of the pivot recursion must kick in.
  RunDifferential(Column::UniformRandom("A", 20000, 0, 50, 32), 60);
}

TEST_P(StochasticDifferentialTest, MatchesOracleOnPresortedData) {
  std::vector<Value> values(20000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<Value>(i);
  }
  RunDifferential(Column("A", std::move(values)), 20000);
}

TEST_P(StochasticDifferentialTest, MatchesOracleOnAllEqualValues) {
  // No pivot distinct from the single value exists; every policy must fall
  // back to exact bound cracking and still make progress.
  RunDifferential(Column("A", std::vector<Value>(5000, 7)), 20);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, StochasticDifferentialTest,
    ::testing::Values(
        StochasticParam{"ddc_pairs", CrackPolicy::kDDC,
                        ArrayLayout::kRowIdValuePairs},
        StochasticParam{"ddc_split", CrackPolicy::kDDC,
                        ArrayLayout::kPairOfArrays},
        StochasticParam{"ddr_pairs", CrackPolicy::kDDR,
                        ArrayLayout::kRowIdValuePairs},
        StochasticParam{"ddr_split", CrackPolicy::kDDR,
                        ArrayLayout::kPairOfArrays},
        StochasticParam{"mdd1r_pairs", CrackPolicy::kMDD1R,
                        ArrayLayout::kRowIdValuePairs},
        StochasticParam{"mdd1r_split", CrackPolicy::kMDD1R,
                        ArrayLayout::kPairOfArrays}),
    [](const ::testing::TestParamInfo<StochasticParam>& info) {
      return info.param.name;
    });

/// Structural convergence under the sequential sweep — the workload that
/// drives plain cracking quadratic. Plain cracking only ever cracks at the
/// sweep's current position, so the piece just beyond the frontier — the
/// one the NEXT query must scan and reorganize — is always the entire
/// unindexed remainder; the random-pivot policies chop the region around
/// every bound recursively, so that piece stays small. The assertion is on
/// piece sizes (PieceSizes() reports them in position order, so prefix
/// sums recover extents; the column is dense unique integers, so value ==
/// sorted position), not timing, making it immune to runner noise.
TEST(StochasticConvergenceTest, SequentialSweepKeepsFrontierPieceSmall) {
  const size_t n = 200000;
  const size_t frontier = 64 * 500;  // first value beyond the sweep
  Column col = Column::UniqueRandom("A", n, 77);

  auto frontier_piece_after_sweep = [&](CrackPolicy policy) {
    CrackingOptions opts;
    opts.crack_policy = policy;
    opts.policy_min_piece = 512;
    opts.policy_seed = 5;
    CrackingIndex index(&col, opts);
    for (int i = 0; i < 64; ++i) {
      const Value lo = static_cast<Value>(i) * 500;
      QueryContext ctx;
      uint64_t count = 0;
      EXPECT_TRUE(index.RangeCount(ValueRange{lo, lo + 100}, &ctx, &count).ok());
    }
    EXPECT_TRUE(index.ValidateStructure());
    size_t cursor = 0;
    for (size_t s : index.PieceSizes()) {
      if (frontier + 1000 < cursor + s) return s;
      cursor += s;
    }
    return size_t{0};
  };

  const size_t plain = frontier_piece_after_sweep(CrackPolicy::kExact);
  const size_t ddr = frontier_piece_after_sweep(CrackPolicy::kDDR);
  const size_t mdd1r = frontier_piece_after_sweep(CrackPolicy::kMDD1R);

  // Plain: the sweep covered [0, 32k); query 65 would have to reorganize
  // the whole >= n/2-element remainder — the quadratic collapse, pinned so
  // a future "optimization" of the exact path cannot silently change the
  // baseline this study compares against.
  EXPECT_GT(plain, n / 2);
  // Stochastic: the recursive pivots around each bound must have left only
  // a small piece at the frontier.
  EXPECT_LT(ddr, n / 8);
  EXPECT_LT(mdd1r, n / 8);
}

/// MDD1R answers out of materialized scans while pieces are large, but its
/// recursion floor reverts to exact cracks, so the index still converges:
/// repeated queries on the same ranges must stop reorganizing eventually.
TEST(StochasticConvergenceTest, Mdd1rReachesQuiescenceOnRepeatedRanges) {
  Column col = Column::UniqueRandom("A", 30000, 78);
  CrackingOptions opts;
  opts.crack_policy = CrackPolicy::kMDD1R;
  opts.policy_min_piece = 1024;
  CrackingIndex index(&col, opts);
  RangeOracle oracle(col);
  for (int round = 0; round < 30; ++round) {
    for (Value lo : {1000, 9000, 17000, 25000}) {
      QueryContext ctx;
      uint64_t count = 0;
      ASSERT_TRUE(
          index.RangeCount(ValueRange{lo, lo + 500}, &ctx, &count).ok());
      ASSERT_EQ(count, oracle.Count(lo, lo + 500));
    }
  }
  // The same four ranges forever: cracking activity must have died out.
  QueryContext ctx;
  uint64_t count = 0;
  ASSERT_TRUE(index.RangeCount(ValueRange{9000, 9500}, &ctx, &count).ok());
  EXPECT_EQ(ctx.stats.cracks, 0u);
  EXPECT_TRUE(index.ValidateStructure());
}

/// Random pivots under the latch-free optimistic read path: concurrent
/// readers must see consistent answers while DDR/MDD1R crackers publish
/// multi-crack steps. Run under TSAN in CI.
TEST(StochasticConcurrentTest, OptimisticReadersUnderStochasticCracking) {
  for (CrackPolicy policy : {CrackPolicy::kDDR, CrackPolicy::kMDD1R}) {
    const size_t n = 60000;
    Column col = Column::UniqueRandom("A", n, 79);
    RangeOracle oracle(col);
    CrackingOptions opts;
    opts.mode = ConcurrencyMode::kOptimistic;
    opts.crack_policy = policy;
    opts.policy_min_piece = 1024;
    CrackingIndex index(&col, opts);

    constexpr int kThreads = 4;
    constexpr int kQueriesPerThread = 150;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(1000 + static_cast<uint64_t>(t));
        for (int i = 0; i < kQueriesPerThread; ++i) {
          Value lo = static_cast<Value>(rng.UniformRange(0, n));
          Value hi = static_cast<Value>(rng.UniformRange(0, n));
          if (lo > hi) std::swap(lo, hi);
          QueryContext ctx;
          uint64_t count = 0;
          if (!index.RangeCount(ValueRange{lo, hi}, &ctx, &count).ok() ||
              count != oracle.Count(lo, hi)) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0) << ToString(policy);
    EXPECT_TRUE(index.ValidateStructure()) << ToString(policy);
  }
}

/// ROADMAP fig18 gap: hostile `GenerateMixed` read/write streams through
/// the differential-update layer. Every read answered mid-stream — while a
/// write_fraction share of the hostile sequence lands as side-store inserts
/// and deletes — must match a live-multiset oracle maintained op-for-op,
/// under every crack policy (the bench's mixed phase measures the same
/// shape; this pins its correctness).
TEST(StochasticMixedStreamTest, HostileMixedStreamsMatchLiveSetOracle) {
  constexpr size_t kRows = 20000;
  Column column = Column::UniqueRandom("A", kRows, 2012);
  WorkloadGenerator gen(0, static_cast<Value>(kRows));

  const QueryDistribution distributions[] = {
      QueryDistribution::kSequential, QueryDistribution::kShiftingHotspot,
      QueryDistribution::kOltpOlap};
  const CrackPolicy policies[] = {CrackPolicy::kExact, CrackPolicy::kDDC,
                                  CrackPolicy::kDDR, CrackPolicy::kMDD1R};
  for (QueryDistribution dist : distributions) {
    WorkloadOptions wopts;
    wopts.num_queries = 600;
    wopts.selectivity = 0.01;
    wopts.type = QueryType::kSum;
    wopts.distribution = dist;
    wopts.seed = 18;
    wopts.write_fraction = 0.3;
    const auto ops = gen.GenerateMixed(wopts);

    for (CrackPolicy policy : policies) {
      IndexConfig config;
      config.method = IndexMethod::kCrack;
      config.cracking.crack_policy = policy;
      config.cracking.policy_min_piece = 512;  // fire at test scale
      config.cracking.policy_seed = 99;
      UpdatableIndex index(column, config);

      std::multiset<Value> oracle(column.values().begin(),
                                  column.values().end());
      std::unordered_multimap<Value, RowId> inserted;  // value -> rowid
      QueryContext ctx;
      uint64_t txn = 0;
      size_t reads = 0;
      for (const MixedOp& op : ops) {
        switch (op.kind) {
          case MixedOp::Kind::kQuery: {
            const ValueRange range{op.query.lo, op.query.hi};
            uint64_t count = 0;
            int64_t sum = 0;
            ASSERT_TRUE(index.RangeCount(range, &ctx, &count).ok());
            ASSERT_TRUE(index.RangeSum(range, &ctx, &sum).ok());
            uint64_t want_count = 0;
            int64_t want_sum = 0;
            for (auto it = oracle.lower_bound(op.query.lo);
                 it != oracle.end() && *it < op.query.hi; ++it) {
              ++want_count;
              want_sum += *it;
            }
            ASSERT_EQ(count, want_count)
                << ToString(dist) << "/" << ToString(policy) << " read "
                << reads;
            ASSERT_EQ(sum, want_sum)
                << ToString(dist) << "/" << ToString(policy) << " read "
                << reads;
            ++reads;
            break;
          }
          case MixedOp::Kind::kInsert: {
            ctx.txn_id = ++txn;
            RowId id;
            ASSERT_TRUE(index.Insert(op.value, &ctx, &id).ok());
            oracle.insert(op.value);
            inserted.emplace(op.value, id);
            break;
          }
          case MixedOp::Kind::kDelete: {
            ctx.txn_id = ++txn;
            auto it = inserted.find(op.value);
            ASSERT_NE(it, inserted.end());  // deletes name prior inserts
            ASSERT_TRUE(index.Delete(it->first, it->second, &ctx).ok());
            oracle.erase(oracle.find(op.value));
            inserted.erase(it);
            break;
          }
        }
      }
      EXPECT_GT(reads, 0u);
      auto* cracking = dynamic_cast<CrackingIndex*>(index.base_index());
      ASSERT_NE(cracking, nullptr);
      EXPECT_TRUE(cracking->ValidateStructure())
          << ToString(dist) << "/" << ToString(policy);
    }
  }
}

/// The factory key must separate configurations exactly as far as the
/// policy consults them: policy and floor always, the seed only for the
/// randomized policies (kDDC is deterministic, kExact ignores all three).
TEST(StochasticConfigKeyTest, KeySeparatesPoliciesAndSeeds) {
  IndexConfig plain;
  plain.method = IndexMethod::kCrack;

  IndexConfig ddr = plain;
  ddr.cracking.crack_policy = CrackPolicy::kDDR;
  EXPECT_NE(IndexConfigKey(plain), IndexConfigKey(ddr));

  IndexConfig mdd1r = plain;
  mdd1r.cracking.crack_policy = CrackPolicy::kMDD1R;
  EXPECT_NE(IndexConfigKey(ddr), IndexConfigKey(mdd1r));

  IndexConfig ddr_seeded = ddr;
  ddr_seeded.cracking.policy_seed = ddr.cracking.policy_seed + 1;
  EXPECT_NE(IndexConfigKey(ddr), IndexConfigKey(ddr_seeded));

  IndexConfig ddr_floor = ddr;
  ddr_floor.cracking.policy_min_piece = 4096;
  EXPECT_NE(IndexConfigKey(ddr), IndexConfigKey(ddr_floor));

  // kDDC never consults the seed, kExact consults none of the knobs: the
  // key must not multiply identical indexes.
  IndexConfig ddc_a = plain;
  ddc_a.cracking.crack_policy = CrackPolicy::kDDC;
  IndexConfig ddc_b = ddc_a;
  ddc_b.cracking.policy_seed = 123456;
  EXPECT_EQ(IndexConfigKey(ddc_a), IndexConfigKey(ddc_b));

  IndexConfig plain_seeded = plain;
  plain_seeded.cracking.policy_seed = 123456;
  plain_seeded.cracking.policy_min_piece = 4096;
  EXPECT_EQ(IndexConfigKey(plain), IndexConfigKey(plain_seeded));
}

}  // namespace
}  // namespace adaptidx
