#ifndef ADAPTIDX_CORE_SORT_INDEX_H_
#define ADAPTIDX_CORE_SORT_INDEX_H_

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "core/adaptive_index.h"
#include "storage/column.h"

namespace adaptidx {

/// \brief Full-indexing baseline: "when the first query arrives, we build
/// the complete index before we evaluate the query ... it is sufficient to
/// completely sort the relevant column(s) and then use binary search"
/// (Section 6.1).
///
/// The sort happens lazily on the first query (whose response time absorbs
/// the full build cost, as in Figure 11), guarded by a build mutex with
/// double-checked publication. After the build the structure is immutable,
/// so queries are latch-free — "neither scans nor binary search actions used
/// in full indexing require any concurrency control" (Section 6.2).
class SortIndex : public AdaptiveIndex {
 public:
  explicit SortIndex(const Column* column) : column_(column) {}

  std::string Name() const override { return "sort"; }

  bool built() const { return built_.load(std::memory_order_acquire); }

 protected:
  Status ExecuteImpl(const Query& query, QueryContext* ctx,
                     QueryResult* result) override;

 private:
  /// Builds the sorted copy on first use; charges init time to `ctx`.
  void EnsureBuilt(QueryContext* ctx);

  /// Offset of the first sorted value >= v.
  size_t LowerBound(Value v) const;

  const Column* column_;
  std::mutex build_mu_;
  std::atomic<bool> built_{false};
  std::vector<Value> sorted_values_;
  std::vector<RowId> sorted_row_ids_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_CORE_SORT_INDEX_H_
