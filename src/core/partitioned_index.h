#ifndef ADAPTIDX_CORE_PARTITIONED_INDEX_H_
#define ADAPTIDX_CORE_PARTITIONED_INDEX_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/adaptive_index.h"
#include "core/index_factory.h"
#include "storage/column.h"

namespace adaptidx {

class ThreadPool;

/// \brief Range-partitioned composition of adaptive indexes (the multi-core
/// design of Alvarez et al., "Main Memory Adaptive Indexing for Multi-core
/// Systems"): the base column is split into P value-range shards at build,
/// each shard carrying an independent inner index of any method
/// (crack/sort/merge/hybrid/...) with its own latch hierarchy.
///
/// Concurrency consequences, and the reason this exists:
///  - concurrent queries over disjoint value ranges execute on different
///    shards and stop conflicting *entirely* — no shared latch, no shared
///    structure, not even cache-line traffic between them;
///  - a single query spanning several shards fans its fragments out on a
///    thread pool and merges the partial `QueryResult`s, so one query can
///    use multiple cores — something a monolithic cracker, whose refinement
///    serializes on one latch hierarchy, cannot express.
///
/// Partition boundaries are value quantiles estimated from a deterministic
/// sample of the column at first touch (cheap first query, in the adaptive
/// spirit — no full sort). Rows are scattered to shards by binary search
/// over the boundaries; each shard remembers the mapping from its local row
/// ids back to base-column row ids, so materialized rowIDs come out in
/// global terms.
///
/// Fan-out never deadlocks on a shared pool: fragments are *claimed*, not
/// awaited — the submitting thread executes fragments itself alongside the
/// pool workers until none are left, so progress is guaranteed even when
/// every pool worker is itself a query waiting on fragments.
///
/// Lock-manager scope: inner cracking shards keep the configured
/// `lock_manager`/`lock_resource` untouched — user transactions lock the
/// *logical* column, so an update's exclusive lock suppresses refinement in
/// every shard, while latch traffic (the per-query system transactions)
/// stays shard-private.
class PartitionedIndex : public AdaptiveIndex {
 public:
  /// \brief `config.partitions` (>= 2 to be useful) selects the shard
  /// count; `config.method` + its option block configure the inner indexes.
  /// `config.pool` provides the fan-out pool; when null, a private pool
  /// sized to min(P, hardware concurrency) is created at first touch.
  PartitionedIndex(const Column* column, const IndexConfig& config);
  ~PartitionedIndex() override;

  std::string Name() const override { return name_; }

  /// \brief Sum over the shards' pieces.
  size_t NumPieces() const override;

  /// \brief Effective shard count: the configured partition count before
  /// the first touch, the actual count afterwards (duplicate-heavy data can
  /// collapse quantiles into fewer shards).
  size_t num_shards() const {
    return initialized_.load(std::memory_order_acquire) ? shards_.size()
                                                        : num_partitions_;
  }
  bool initialized() const {
    return initialized_.load(std::memory_order_acquire);
  }

  /// \brief Shard boundary values (ascending, size num_shards()-1 at most;
  /// fewer when quantiles collapse on duplicate-heavy data). Empty before
  /// the first query.
  std::vector<Value> ShardBounds() const;

  /// \brief Row count per shard (diagnostics). Empty before the first
  /// query.
  std::vector<size_t> ShardSizes() const;

  /// \brief The inner index of shard `i`; requires initialized().
  AdaptiveIndex* shard(size_t i) { return shards_[i]->index.get(); }

 protected:
  Status ExecuteImpl(const Query& query, QueryContext* ctx,
                     QueryResult* result) override;

 private:
  struct Shard {
    Column column;                  ///< shard-local values
    std::vector<RowId> to_global;   ///< local row id -> base row id
    std::unique_ptr<AdaptiveIndex> index;
  };

  /// One query's fan-out ledger: fragments are claimed via `next` by pool
  /// workers and the submitting thread alike; `done` under `mu` gates the
  /// submitter's wait.
  struct FanState;

  /// Builds boundaries, scatters rows, and constructs the inner indexes on
  /// first touch; charges init time (and blocked waiters' time) to `ctx`.
  void EnsureInitialized(QueryContext* ctx);

  /// Executes claimed fragments until none remain.
  void RunFragments(const std::shared_ptr<FanState>& state);

  /// Shards whose value interval intersects [range.lo, range.hi), as the
  /// index interval [*begin, *end).
  void RouteRange(const ValueRange& range, size_t* begin, size_t* end) const;

  const Column* column_;
  IndexConfig inner_config_;       ///< the per-shard config (partitions == 1)
  const size_t num_partitions_;    ///< requested shard count
  std::string name_;
  ThreadPool* external_pool_;

  std::mutex init_mu_;
  std::atomic<bool> initialized_{false};
  std::unique_ptr<ThreadPool> owned_pool_;
  std::vector<Value> bounds_;  ///< ascending shard split values
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_CORE_PARTITIONED_INDEX_H_
