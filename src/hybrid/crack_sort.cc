#include "hybrid/crack_sort.h"

#include <algorithm>

#include "cracking/span_kernels.h"
#include "util/stopwatch.h"

namespace adaptidx {

namespace {

struct CountAgg {
  uint64_t result = 0;
  void Covered(const SegmentStore::CoveredPart& p) {
    result += SegmentStore::CountIn(p);
  }
};

struct SumAgg {
  int64_t result = 0;
  void Covered(const SegmentStore::CoveredPart& p) {
    result += SegmentStore::SumIn(p);
  }
};

struct RowIdAgg {
  std::vector<RowId>* out;
  void Covered(const SegmentStore::CoveredPart& p) {
    SegmentStore::CollectRowIds(p, out);
  }
};

struct MinMaxAgg {
  MinMaxAccumulator acc;
  void Covered(const SegmentStore::CoveredPart& p) {
    Value lo;
    Value hi;
    if (SegmentStore::MinMaxIn(p, &lo, &hi)) acc.Feed(lo, hi);
  }
};

}  // namespace

HybridCrackSortIndex::HybridCrackSortIndex(const Column* column,
                                           HybridOptions opts)
    : column_(column), opts_(std::move(opts)) {}

void HybridCrackSortIndex::EnsureInitialized(QueryContext* ctx) {
  if (initialized_.load(std::memory_order_acquire)) return;
  const bool cc = opts_.concurrency_control;
  LatchAcquireContext lat = ctx->LatchCtx(&latch_stats_);
  if (cc) latch_.WriteLock(0, lat);
  if (!initialized_.load(std::memory_order_relaxed)) {
    // Cheap first touch: data is copied into unsorted initial partitions
    // without any sorting (the defining difference from adaptive merging).
    ScopedTimer init_timer(&ctx->stats.init_ns);
    const size_t n = column_->size();
    const size_t psize = std::max<size_t>(1, opts_.partition_size);
    Value lo = 0;
    Value hi = 0;
    if (n > 0) {
      lo = (*column_)[0];
      hi = (*column_)[0];
    }
    for (size_t base = 0; base < n; base += psize) {
      const size_t end = std::min(n, base + psize);
      InitialPartition part;
      part.entries.reserve(end - base);
      for (size_t i = base; i < end; ++i) {
        const Value v = (*column_)[i];
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        part.entries.push_back(CrackerEntry{static_cast<RowId>(i), v});
      }
      partitions_.push_back(std::move(part));
    }
    domain_lo_ = lo;
    domain_hi_ = hi + 1;
    initialized_.store(true, std::memory_order_release);
  }
  if (cc) latch_.WriteUnlock();
}

size_t HybridCrackSortIndex::ResolveInPartition(InitialPartition* part,
                                                Value v, QueryContext* ctx) {
  auto exact = part->cracks.find(v);
  if (exact != part->cracks.end()) return exact->second;
  // Narrow to the enclosing sub-piece via the local table of contents.
  size_t begin = 0;
  size_t end = part->entries.size();
  auto it = part->cracks.lower_bound(v);
  if (it != part->cracks.end()) end = it->second;
  if (it != part->cracks.begin()) begin = std::prev(it)->second;
  Position pos;
  {
    ScopedTimer t(&ctx->stats.crack_ns);
    // Predicated kernel: partition pivots are query bounds, i.e. effectively
    // random within the sub-piece, which is the worst case for the branchy
    // reference kernel.
    pos = CrackInTwoEntries(part->entries.data(), begin, end, v);
    ++ctx->stats.cracks;
  }
  part->cracks.emplace(v, static_cast<size_t>(pos));
  return static_cast<size_t>(pos);
}

void HybridCrackSortIndex::ExtractFromPartition(InitialPartition* part,
                                                Value lo, Value hi,
                                                std::vector<CrackerEntry>* out,
                                                QueryContext* ctx) {
  const size_t pos_lo = ResolveInPartition(part, lo, ctx);
  const size_t pos_hi = ResolveInPartition(part, hi, ctx);
  if (pos_lo >= pos_hi) return;
  out->insert(out->end(),
              part->entries.begin() + static_cast<long>(pos_lo),
              part->entries.begin() + static_cast<long>(pos_hi));
  part->entries.erase(part->entries.begin() + static_cast<long>(pos_lo),
                      part->entries.begin() + static_cast<long>(pos_hi));
  // Rebuild the local ToC with shifted positions: cracks past the removed
  // region move left; cracks inside it collapse onto the cut.
  const size_t removed = pos_hi - pos_lo;
  std::map<Value, size_t> rebuilt;
  for (const auto& [cv, cp] : part->cracks) {
    size_t np;
    if (cp <= pos_lo) {
      np = cp;
    } else if (cp >= pos_hi) {
      np = cp - removed;
    } else {
      np = pos_lo;
    }
    rebuilt.emplace(cv, np);
  }
  part->cracks = std::move(rebuilt);
}

void HybridCrackSortIndex::MergeGapLocked(Value lo, Value hi,
                                          QueryContext* ctx) {
  std::vector<CrackerEntry> gathered;
  for (InitialPartition& part : partitions_) {
    ExtractFromPartition(&part, lo, hi, &gathered, ctx);
  }
  {
    // Sorting the gathered values is what makes this hybrid "crack-sort":
    // the final partition converges to a fully sorted state immediately.
    ScopedTimer t(&ctx->stats.crack_ns);
    std::sort(gathered.begin(), gathered.end(),
              [](const CrackerEntry& a, const CrackerEntry& b) {
                return a.value < b.value;
              });
  }
  final_.Insert(lo, hi, std::move(gathered));
}

template <typename Agg>
Status HybridCrackSortIndex::ExecuteRange(const ValueRange& range,
                                          QueryContext* ctx, Agg* agg) {
  if (range.Empty()) return Status::OK();
  EnsureInitialized(ctx);
  const Value lo = std::max(range.lo, domain_lo_);
  const Value hi = std::min(range.hi, domain_hi_);
  if (lo >= hi) return Status::OK();

  const bool cc = opts_.concurrency_control;
  LatchAcquireContext lat = ctx->LatchCtx(&latch_stats_);

  std::vector<SegmentStore::CoveredPart> covered;
  std::vector<ValueRange> gaps;
  if (cc) latch_.ReadLock(lat);
  {
    ScopedTimer t(&ctx->stats.read_ns);
    final_.Decompose(lo, hi, &covered, &gaps);
    for (const auto& part : covered) agg->Covered(part);
    ctx->stats.pieces_touched += covered.size();
  }
  if (cc) latch_.ReadUnlock();

  for (const ValueRange& gap : gaps) {
    if (cc) latch_.WriteLock(gap.lo, lat);
    std::vector<SegmentStore::CoveredPart> sub_covered;
    std::vector<ValueRange> sub_gaps;
    final_.Decompose(gap.lo, gap.hi, &sub_covered, &sub_gaps);
    {
      ScopedTimer t(&ctx->stats.read_ns);
      for (const auto& part : sub_covered) agg->Covered(part);
    }
    for (const ValueRange& g : sub_gaps) MergeGapLocked(g.lo, g.hi, ctx);
    if (!sub_gaps.empty()) {
      std::vector<SegmentStore::CoveredPart> fresh;
      std::vector<ValueRange> none;
      for (const ValueRange& g : sub_gaps) {
        final_.Decompose(g.lo, g.hi, &fresh, &none);
        ScopedTimer t(&ctx->stats.read_ns);
        for (const auto& part : fresh) agg->Covered(part);
      }
    }
    ctx->stats.pieces_touched += sub_covered.size() + sub_gaps.size();
    if (cc) latch_.WriteUnlock();
  }
  return Status::OK();
}

Status HybridCrackSortIndex::ExecuteImpl(const Query& query, QueryContext* ctx,
                                         QueryResult* result) {
  switch (query.kind) {
    case QueryKind::kCount: {
      CountAgg agg;
      Status s = ExecuteRange(query.range, ctx, &agg);
      result->count = agg.result;
      return s;
    }
    case QueryKind::kSum: {
      SumAgg agg;
      Status s = ExecuteRange(query.range, ctx, &agg);
      result->sum = agg.result;
      return s;
    }
    case QueryKind::kRowIds: {
      RowIdAgg agg{&result->row_ids};
      return ExecuteRange(query.range, ctx, &agg);
    }
    case QueryKind::kMinMax: {
      MinMaxAgg agg;
      Status s = ExecuteRange(query.range, ctx, &agg);
      agg.acc.Store(result);
      return s;
    }
    case QueryKind::kSumOther:
      return Status::NotSupported("hybrid holds no second column");
  }
  return Status::InvalidArgument("unknown query kind");
}

size_t HybridCrackSortIndex::NumPieces() const {
  return num_partitions() + num_segments();
}

size_t HybridCrackSortIndex::num_partitions() const {
  if (!initialized_.load(std::memory_order_acquire)) return 0;
  return partitions_.size();
}

size_t HybridCrackSortIndex::num_segments() const {
  if (!initialized_.load(std::memory_order_acquire)) return 0;
  latch_.ReadLock();
  const size_t n = final_.num_segments();
  latch_.ReadUnlock();
  return n;
}

size_t HybridCrackSortIndex::ResidualEntries() const {
  if (!initialized_.load(std::memory_order_acquire)) return 0;
  latch_.ReadLock();
  size_t n = 0;
  for (const auto& part : partitions_) n += part.entries.size();
  latch_.ReadUnlock();
  return n;
}

bool HybridCrackSortIndex::ValidateStructure() const {
  if (!initialized_.load(std::memory_order_acquire)) return true;
  if (!final_.Validate()) return false;
  for (const auto& part : partitions_) {
    // Local cracks must partition the partition's entries.
    for (const auto& [cv, cp] : part.cracks) {
      if (cp > part.entries.size()) return false;
      for (size_t i = 0; i < cp; ++i) {
        if (part.entries[i].value >= cv) return false;
      }
      for (size_t i = cp; i < part.entries.size(); ++i) {
        if (part.entries[i].value < cv) return false;
      }
    }
  }
  return true;
}

}  // namespace adaptidx
