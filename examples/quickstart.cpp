/// \file Quickstart: load a table, run range queries, and watch the adaptive
/// index build itself as a side effect of query processing.
///
///   $ ./build/examples/quickstart
///
/// Walks through the embedded `Database` facade: creating a table of unique
/// random integers, running Q1 (count) and Q2 (sum) range queries with
/// database cracking, and inspecting the per-query stats that show the index
/// getting cheaper to use with every query.

#include <cstdio>

#include "engine/database.h"
#include "storage/column.h"
#include "util/stopwatch.h"

using namespace adaptidx;

int main() {
  constexpr size_t kRows = 1'000'000;

  // 1. Create a table. Columns are dense aligned arrays (one per attribute).
  Database db;
  std::vector<Column> columns;
  columns.push_back(Column::UniqueRandom("A", kRows, /*seed=*/2012));
  Column b("B", {});
  for (size_t i = 0; i < kRows; ++i) b.Append(static_cast<Value>(i % 1000));
  columns.push_back(std::move(b));
  if (Status s = db.CreateTable("R", std::move(columns)); !s.ok()) {
    std::fprintf(stderr, "CreateTable failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("Loaded table R with %zu rows (columns A, B), unsorted.\n\n",
              kRows);

  // 2. Configure the access method: database cracking with piece-grained
  // latches (the paper's best configuration). No index is built up front;
  // the first query initializes it as a side effect.
  IndexConfig config;
  config.method = IndexMethod::kCrack;

  // 3. Run a sequence of range queries and watch response time fall while
  // the crack count rises.
  std::printf("%-6s %-28s %12s %10s %10s\n", "query",
              "predicate", "result", "ms", "cracks");
  Value lo = 100'000;
  for (int i = 0; i < 10; ++i, lo += 70'000) {
    const Value hi = lo + 50'000;
    uint64_t count = 0;
    QueryStats stats;
    StopWatch sw;
    if (Status s = db.Count("R", "A", lo, hi, config, &count, &stats);
        !s.ok()) {
      std::fprintf(stderr, "query failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const double ms = sw.ElapsedMillis();
    char pred[64];
    std::snprintf(pred, sizeof(pred), "count(*) where %lld<=A<%lld",
                  static_cast<long long>(lo), static_cast<long long>(hi));
    std::printf("%-6d %-28s %12llu %10.3f %10llu\n", i + 1, pred,
                static_cast<unsigned long long>(count), ms,
                static_cast<unsigned long long>(stats.cracks));
  }

  // 4. Sum over the same (now partially indexed) column: previously cracked
  // ranges are answered positionally with no further refinement.
  int64_t sum = 0;
  QueryStats stats;
  (void)db.Sum("R", "A", 100'000, 150'000, config, &sum, &stats);
  std::printf("\nsum(A) where 100000<=A<150000 = %lld (refinements: %llu — "
              "bounds were already cracked)\n",
              static_cast<long long>(sum),
              static_cast<unsigned long long>(stats.cracks));

  // 5. The two-column plan of the paper's Figure 6: select on A, fetch
  // aligned values of B positionally, aggregate.
  int64_t sum_b = 0;
  (void)db.SumOther("R", "A", "B", 100'000, 150'000, config, &sum_b);
  std::printf("sum(B)  where 100000<=A<150000 = %lld (select on A, "
              "positional fetch of B)\n",
              static_cast<long long>(sum_b));

  std::printf("\nDone. The index now exists purely as a side effect of the "
              "queries above;\nno CREATE INDEX was ever issued.\n");
  return 0;
}
