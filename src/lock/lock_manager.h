#ifndef ADAPTIDX_LOCK_LOCK_MANAGER_H_
#define ADAPTIDX_LOCK_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/status.h"

namespace adaptidx {

/// \brief Transactional lock modes (Table 1: "Shared, exclusive, update,
/// intention, ..."). Intention modes implement hierarchical locking
/// (Section 3.2): a transaction locking a piece first takes intention locks
/// on the column and table above it.
enum class LockMode : unsigned char {
  kIS = 0,  ///< intention shared
  kIX = 1,  ///< intention exclusive
  kS = 2,   ///< shared
  kSIX = 3, ///< shared + intention exclusive
  kX = 4,   ///< exclusive
};

const char* ToString(LockMode mode);

/// \brief Standard multi-granularity compatibility matrix.
bool LockModesCompatible(LockMode held, LockMode requested);

/// \brief The intention mode required on ancestors of a resource locked in
/// `mode` (kS -> kIS, kX/kSIX -> kIX, intentions map to themselves).
LockMode IntentionFor(LockMode mode);

/// \brief Transactional lock manager separating *user transactions*
/// (which lock logical contents) from the latch-only system transactions of
/// adaptive indexing (Sections 3.1-3.3, Table 1).
///
/// Resources are hierarchical slash-separated paths, mirroring the
/// containment hierarchy of incremental locking:
///
///     "R"                 the table
///     "R/A"               a column / index
///     "R/A/piece:17"      a cracker-array piece (the *incrementally* finer
///                         lockable sub-object created by refinement)
///     "R/A/key:100-200"   a key range
///
/// `Acquire` automatically takes intention locks root-to-leaf on all
/// ancestors (hierarchical locking, [7]). Deadlocks among blocking user
/// transactions are detected on the waits-for graph at wait time; the
/// requester whose wait would close a cycle is aborted (Status::Aborted).
///
/// System transactions performing index refinement never call `Acquire`;
/// they call `HasConflicting` ("it is required to verify that no concurrent
/// user transaction holds conflicting locks", Section 3.3) and forgo the
/// refinement when it returns true.
class LockManager {
 public:
  LockManager() = default;

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// \brief Blocking acquisition with hierarchical intention locks.
  /// Re-acquiring a held resource with an equal or weaker mode is a no-op;
  /// a stronger mode attempts an in-place upgrade.
  /// \return OK, or Aborted when granting would create a deadlock.
  Status Acquire(uint64_t txn_id, const std::string& resource, LockMode mode);

  /// \brief Non-blocking acquisition; Busy when any conflict exists.
  Status TryAcquire(uint64_t txn_id, const std::string& resource,
                    LockMode mode);

  /// \brief Releases one resource (and nothing else; intention ancestors
  /// stay until ReleaseAll, the common transactional pattern).
  void Release(uint64_t txn_id, const std::string& resource);

  /// \brief Releases every lock of the transaction (commit/abort).
  void ReleaseAll(uint64_t txn_id);

  /// \brief Conflict probe for system transactions: would `mode` on
  /// `resource` conflict with any lock held by another transaction? Checks
  /// the resource itself, covering locks on ancestors, and any lock on
  /// descendants. Never blocks, never acquires.
  bool HasConflicting(const std::string& resource, LockMode mode,
                      uint64_t self_txn = 0) const;

  /// \brief Mode held by `txn_id` on `resource`, if any.
  bool HeldMode(uint64_t txn_id, const std::string& resource,
                LockMode* mode) const;

  size_t num_locked_resources() const;
  uint64_t deadlocks_detected() const { return deadlocks_; }

 private:
  struct Holder {
    uint64_t txn_id;
    LockMode mode;
  };
  struct Waiter {
    uint64_t txn_id;
    LockMode mode;
    bool granted = false;
    bool aborted = false;
  };
  struct ResourceState {
    std::vector<Holder> holders;
    std::vector<Waiter*> waiters;  // FIFO
  };

  /// All ancestor paths of `resource`, root first (excluding the resource).
  static std::vector<std::string> Ancestors(const std::string& resource);

  /// Acquires a single resource without hierarchy handling. mu_ held.
  Status AcquireOneLocked(std::unique_lock<std::mutex>* lk, uint64_t txn_id,
                          const std::string& resource, LockMode mode,
                          bool blocking);

  /// True when `txn_id` may be granted `mode` on `rs` right now. mu_ held.
  bool GrantableLocked(const ResourceState& rs, uint64_t txn_id,
                       LockMode mode) const;

  /// Grants eligible waiters of `resource` after a release. mu_ held.
  void GrantWaitersLocked(const std::string& resource);

  /// True when txn `from` transitively waits for `to`. mu_ held.
  bool PathExistsLocked(uint64_t from, uint64_t to,
                        std::unordered_set<uint64_t>* visited) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  // Ordered so descendant probes can prefix-scan.
  std::map<std::string, ResourceState> resources_;
  // txn -> resources it holds (leaf-to-root release order preserved by
  // recording acquisition order).
  std::unordered_map<uint64_t, std::vector<std::string>> txn_locks_;
  // waits-for edges: waiting txn -> holders it waits on.
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> waits_for_;
  uint64_t deadlocks_ = 0;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_LOCK_LOCK_MANAGER_H_
