#ifndef ADAPTIDX_BTREE_BTREE_INDEX_H_
#define ADAPTIDX_BTREE_BTREE_INDEX_H_

#include <atomic>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "core/adaptive_index.h"
#include "latch/wait_queue_latch.h"
#include "storage/column.h"
#include "util/interval_set.h"

namespace adaptidx {

/// \brief Tunables for B-tree-based adaptive merging.
struct BTreeMergeOptions {
  /// Records per initial sorted run (one run = one partition).
  size_t run_size = 1u << 18;
  /// B-tree node capacity (keys per node).
  size_t node_capacity = 64;
  /// Commit the running merge and answer the rest read-only when another
  /// query starts waiting (Section 3.3 / 4.3 early termination).
  bool early_termination = true;
  bool concurrency_control = true;
  std::string name = "btree-merge";
};

/// \brief Adaptive merging realized on a partitioned B-tree (Section 4):
/// the first query loads sorted runs as partitions 1..k of a single B-tree;
/// subsequent queries merge the records of their key range out of the run
/// partitions into the final partition 0, deleting them from the sources
/// via ghost records.
///
/// Each gap merge is a system transaction that commits instantly
/// (Section 4.3: "concurrency control conflicts can be avoided or resolved
/// by instantly committing an active merge step and its result"); an
/// IntervalSet tracks which value ranges already live in partition 0.
class BTreeMergeIndex : public AdaptiveIndex {
 public:
  explicit BTreeMergeIndex(const Column* column, BTreeMergeOptions opts = {});

  std::string Name() const override { return opts_.name; }

  /// \brief Live partitions in the B-tree.
  size_t NumPieces() const override;

  bool initialized() const {
    return initialized_.load(std::memory_order_acquire);
  }

  /// \brief True once the whole domain has merged into partition 0.
  bool FullyMerged() const;

  /// \brief Direct access for tests and diagnostics. The tree is only safe
  /// to inspect while no queries run.
  const PartitionedBTree& tree() const { return tree_; }

  bool ValidateStructure() const;

 protected:
  Status ExecuteImpl(const Query& query, QueryContext* ctx,
                     QueryResult* result) override;

 private:
  /// Final partition id; runs use 1..k.
  static constexpr uint32_t kFinalPartition = 0;

  void EnsureInitialized(QueryContext* ctx);

  /// Merges [lo, hi) from every run partition into partition 0.
  /// Caller holds the latch in write mode.
  void MergeGapLocked(Value lo, Value hi, QueryContext* ctx);

  template <typename Agg>
  Status ExecuteRange(const ValueRange& range, QueryContext* ctx, Agg* agg);

  const Column* column_;
  const BTreeMergeOptions opts_;

  std::atomic<bool> initialized_{false};
  mutable WaitQueueLatch latch_{SchedulingPolicy::kFifo};
  PartitionedBTree tree_;
  IntervalSet covered_;
  uint32_t num_runs_ = 0;
  Value domain_lo_ = 0;
  Value domain_hi_ = 0;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_BTREE_BTREE_INDEX_H_
