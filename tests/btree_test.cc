#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "btree/btree.h"
#include "btree/btree_index.h"
#include "test_util.h"
#include "util/rng.h"

namespace adaptidx {
namespace {

std::vector<CrackerEntry> SortedRun(std::vector<Value> values) {
  std::sort(values.begin(), values.end());
  std::vector<CrackerEntry> out;
  for (size_t i = 0; i < values.size(); ++i) {
    out.push_back(CrackerEntry{static_cast<RowId>(i * 10), values[i]});
  }
  return out;
}

// ------------------------------------------------------------ BTreeKey

TEST(BTreeKeyTest, OrderingByPartitionFirst) {
  EXPECT_TRUE((BTreeKey{0, 100, 5}) < (BTreeKey{1, 0, 0}));
  EXPECT_TRUE((BTreeKey{1, 5, 0}) < (BTreeKey{1, 6, 0}));
  EXPECT_TRUE((BTreeKey{1, 5, 1}) < (BTreeKey{1, 5, 2}));
  EXPECT_TRUE((BTreeKey{1, 5, 2}) == (BTreeKey{1, 5, 2}));
}

// -------------------------------------------------------------- BTree

TEST(PartitionedBTreeTest, EmptyTree) {
  PartitionedBTree t(8);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.height(), 1);
  EXPECT_TRUE(t.Validate());
  EXPECT_TRUE(t.Partitions().empty());
}

TEST(PartitionedBTreeTest, InsertAndScan) {
  PartitionedBTree t(8);
  for (Value v : {5, 3, 9, 1, 7}) {
    t.Insert(BTreeKey{1, v, static_cast<RowId>(v)});
  }
  EXPECT_EQ(t.size(), 5u);
  std::vector<Value> seen;
  t.ScanRange(1, 0, 100, [&seen](const BTreeKey& k) { seen.push_back(k.value); });
  EXPECT_EQ(seen, (std::vector<Value>{1, 3, 5, 7, 9}));
  EXPECT_TRUE(t.Validate());
}

TEST(PartitionedBTreeTest, DuplicateInsertIgnored) {
  PartitionedBTree t(8);
  t.Insert(BTreeKey{1, 5, 1});
  t.Insert(BTreeKey{1, 5, 1});
  EXPECT_EQ(t.size(), 1u);
}

TEST(PartitionedBTreeTest, ScanRespectsPartitionBoundary) {
  PartitionedBTree t(8);
  t.Insert(BTreeKey{1, 5, 1});
  t.Insert(BTreeKey{2, 5, 2});
  std::vector<uint32_t> parts;
  t.ScanRange(1, 0, 100,
              [&parts](const BTreeKey& k) { parts.push_back(k.partition); });
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], 1u);
}

TEST(PartitionedBTreeTest, ScanRangeIsHalfOpen) {
  PartitionedBTree t(8);
  for (Value v = 0; v < 10; ++v) t.Insert(BTreeKey{1, v, 0});
  std::vector<Value> seen;
  t.ScanRange(1, 3, 7, [&seen](const BTreeKey& k) { seen.push_back(k.value); });
  EXPECT_EQ(seen, (std::vector<Value>{3, 4, 5, 6}));
}

TEST(PartitionedBTreeTest, SplitsKeepInvariants) {
  PartitionedBTree t(8);  // small capacity forces deep trees
  Rng rng(31);
  std::set<Value> inserted;
  for (int i = 0; i < 2000; ++i) {
    const Value v = rng.UniformRange(0, 10000);
    t.Insert(BTreeKey{1, v, 0});
    inserted.insert(v);
  }
  EXPECT_EQ(t.size(), inserted.size());
  EXPECT_TRUE(t.Validate());
  EXPECT_GT(t.height(), 2);
  // Full scan returns sorted distinct values.
  std::vector<Value> seen;
  t.ScanRange(1, -100000, 100000,
              [&seen](const BTreeKey& k) { seen.push_back(k.value); });
  EXPECT_EQ(seen.size(), inserted.size());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(PartitionedBTreeTest, GhostDeleteHidesFromScan) {
  PartitionedBTree t(8);
  for (Value v = 0; v < 20; ++v) t.Insert(BTreeKey{1, v, 0});
  EXPECT_EQ(t.DeleteRange(1, 5, 10), 5u);
  EXPECT_EQ(t.size(), 15u);
  EXPECT_EQ(t.num_ghosts(), 5u);
  std::vector<Value> seen;
  t.ScanRange(1, 0, 20, [&seen](const BTreeKey& k) { seen.push_back(k.value); });
  EXPECT_EQ(seen.size(), 15u);
  for (Value v : seen) EXPECT_TRUE(v < 5 || v >= 10);
  EXPECT_TRUE(t.Validate());
}

TEST(PartitionedBTreeTest, DeleteRangeIdempotent) {
  PartitionedBTree t(8);
  for (Value v = 0; v < 10; ++v) t.Insert(BTreeKey{1, v, 0});
  EXPECT_EQ(t.DeleteRange(1, 0, 5), 5u);
  EXPECT_EQ(t.DeleteRange(1, 0, 5), 0u);  // already ghosts
  EXPECT_EQ(t.num_ghosts(), 5u);
}

TEST(PartitionedBTreeTest, GhostResurrection) {
  PartitionedBTree t(8);
  t.Insert(BTreeKey{1, 5, 7});
  EXPECT_EQ(t.DeleteRange(1, 0, 10), 1u);
  EXPECT_EQ(t.size(), 0u);
  t.Insert(BTreeKey{1, 5, 7});
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.num_ghosts(), 0u);
}

TEST(PartitionedBTreeTest, PurgeGhostsRebuilds) {
  PartitionedBTree t(8);
  for (Value v = 0; v < 500; ++v) t.Insert(BTreeKey{1, v, 0});
  t.DeleteRange(1, 100, 400);
  const size_t leaves_before = t.num_leaves();
  t.PurgeGhosts();
  EXPECT_EQ(t.num_ghosts(), 0u);
  EXPECT_EQ(t.size(), 200u);
  EXPECT_LT(t.num_leaves(), leaves_before);
  EXPECT_TRUE(t.Validate());
  std::vector<Value> seen;
  t.ScanRange(1, 0, 500, [&seen](const BTreeKey& k) { seen.push_back(k.value); });
  EXPECT_EQ(seen.size(), 200u);
}

TEST(PartitionedBTreeTest, BulkLoadAndPartitionsList) {
  PartitionedBTree t(16);
  t.BulkLoadPartition(2, SortedRun({10, 20, 30}));
  t.BulkLoadPartition(1, SortedRun({5, 15}));
  auto parts = t.Partitions();
  EXPECT_EQ(parts, (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(t.size(), 5u);
  EXPECT_TRUE(t.Validate());
}

TEST(PartitionedBTreeTest, PartitionDisappearsWhenEmptied) {
  // Partitions "appear and disappear simply by insertion and deletion of
  // records" — no catalog operation involved.
  PartitionedBTree t(8);
  t.BulkLoadPartition(1, SortedRun({1, 2, 3}));
  t.BulkLoadPartition(2, SortedRun({4, 5}));
  t.DeleteRange(2, 0, 100);
  EXPECT_EQ(t.Partitions(), (std::vector<uint32_t>{1}));
}

TEST(PartitionedBTreeTest, RandomizedMixedOpsAgainstOracle) {
  PartitionedBTree t(8);
  std::set<std::pair<Value, RowId>> oracle;  // partition 1 only
  Rng rng(47);
  for (int i = 0; i < 1500; ++i) {
    const int op = static_cast<int>(rng.Uniform(10));
    if (op < 7) {
      const Value v = rng.UniformRange(0, 2000);
      const RowId r = static_cast<RowId>(rng.Uniform(4));
      t.Insert(BTreeKey{1, v, r});
      oracle.emplace(v, r);
    } else {
      Value lo = rng.UniformRange(0, 2000);
      Value hi = lo + rng.UniformRange(0, 100);
      t.DeleteRange(1, lo, hi);
      for (auto it = oracle.lower_bound({lo, 0}); it != oracle.end() &&
                                                  it->first < hi;) {
        it = oracle.erase(it);
      }
    }
  }
  EXPECT_EQ(t.size(), oracle.size());
  EXPECT_TRUE(t.Validate());
  std::vector<std::pair<Value, RowId>> seen;
  t.ScanRange(1, -10, 3000, [&seen](const BTreeKey& k) {
    seen.emplace_back(k.value, k.row_id);
  });
  std::vector<std::pair<Value, RowId>> expected(oracle.begin(), oracle.end());
  EXPECT_EQ(seen, expected);
}

// -------------------------------------------------------- BTreeMergeIndex

class BTreeMergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    column_ = Column::UniqueRandom("A", 5000, 53);
    oracle_ = std::make_unique<RangeOracle>(column_);
  }

  BTreeMergeOptions SmallRuns() const {
    BTreeMergeOptions opts;
    opts.run_size = 512;
    opts.node_capacity = 32;
    return opts;
  }

  Column column_;
  std::unique_ptr<RangeOracle> oracle_;
};

TEST_F(BTreeMergeTest, CountAndSumMatchOracle) {
  BTreeMergeIndex index(&column_, SmallRuns());
  Rng rng(54);
  for (int i = 0; i < 80; ++i) {
    Value lo = rng.UniformRange(0, 5000);
    Value hi = rng.UniformRange(0, 5000);
    if (lo > hi) std::swap(lo, hi);
    QueryContext ctx;
    uint64_t count;
    int64_t sum;
    ASSERT_TRUE(index.RangeCount(ValueRange{lo, hi}, &ctx, &count).ok());
    ASSERT_EQ(count, oracle_->Count(lo, hi));
    ASSERT_TRUE(index.RangeSum(ValueRange{lo, hi}, &ctx, &sum).ok());
    ASSERT_EQ(sum, oracle_->Sum(lo, hi));
  }
  EXPECT_TRUE(index.ValidateStructure());
}

TEST_F(BTreeMergeTest, MergeMovesRecordsIntoFinalPartition) {
  BTreeMergeIndex index(&column_, SmallRuns());
  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{1000, 2000}, &ctx, &count).ok());
  EXPECT_EQ(count, 1000u);
  // Final partition (0) now holds the merged range.
  size_t in_final = 0;
  index.tree().ScanRange(0, 1000, 2000,
                         [&in_final](const BTreeKey&) { ++in_final; });
  EXPECT_EQ(in_final, 1000u);
  // Sources hold ghosts for the moved records.
  EXPECT_EQ(index.tree().num_ghosts(), 1000u);
}

TEST_F(BTreeMergeTest, RepeatedQueryNoNewMerge) {
  BTreeMergeIndex index(&column_, SmallRuns());
  QueryContext ctx1;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{100, 400}, &ctx1, &count).ok());
  EXPECT_GT(ctx1.stats.cracks, 0u);
  QueryContext ctx2;
  ASSERT_TRUE(index.RangeCount(ValueRange{100, 400}, &ctx2, &count).ok());
  EXPECT_EQ(ctx2.stats.cracks, 0u);
}

TEST_F(BTreeMergeTest, ConvergesToSinglePartition) {
  BTreeMergeIndex index(&column_, SmallRuns());
  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{-10, 6000}, &ctx, &count).ok());
  EXPECT_EQ(count, 5000u);
  EXPECT_TRUE(index.FullyMerged());
  // All runs are fully ghosted: only partition 0 remains live.
  EXPECT_EQ(index.tree().Partitions(), (std::vector<uint32_t>{0}));
  EXPECT_EQ(index.NumPieces(), 1u);
}

TEST_F(BTreeMergeTest, RowIdsCorrect) {
  BTreeMergeIndex index(&column_, SmallRuns());
  QueryContext ctx;
  std::vector<RowId> ids;
  ASSERT_TRUE(index.RangeRowIds(ValueRange{2000, 2200}, &ctx, &ids).ok());
  ASSERT_EQ(ids.size(), 200u);
  for (RowId id : ids) {
    EXPECT_GE(column_[id], 2000);
    EXPECT_LT(column_[id], 2200);
  }
}

TEST_F(BTreeMergeTest, ConcurrentQueriesMatchOracle) {
  BTreeMergeIndex index(&column_, SmallRuns());
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(400 + t);
      for (int i = 0; i < 50 && ok.load(); ++i) {
        Value lo = rng.UniformRange(0, 5000);
        Value hi = rng.UniformRange(0, 5000);
        if (lo > hi) std::swap(lo, hi);
        QueryContext ctx;
        uint64_t count = 0;
        if (!index.RangeCount(ValueRange{lo, hi}, &ctx, &count).ok() ||
            count != oracle_->Count(lo, hi)) {
          ok.store(false);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_TRUE(index.ValidateStructure());
}

TEST_F(BTreeMergeTest, DuplicateValuesHandled) {
  Column col = Column::UniformRandom("A", 3000, 0, 25, 55);
  RangeOracle oracle(col);
  BTreeMergeIndex index(&col, SmallRuns());
  Rng rng(56);
  for (int i = 0; i < 50; ++i) {
    Value lo = rng.UniformRange(-2, 27);
    Value hi = rng.UniformRange(-2, 27);
    if (lo > hi) std::swap(lo, hi);
    QueryContext ctx;
    uint64_t count;
    ASSERT_TRUE(index.RangeCount(ValueRange{lo, hi}, &ctx, &count).ok());
    ASSERT_EQ(count, oracle.Count(lo, hi));
  }
  EXPECT_TRUE(index.ValidateStructure());
}

}  // namespace
}  // namespace adaptidx
