#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/rng.h"

namespace adaptidx {

std::string ToString(QueryType type) {
  switch (type) {
    case QueryType::kCount:
      return "count";
    case QueryType::kSum:
      return "sum";
    case QueryType::kMinMax:
      return "min-max";
  }
  return "unknown";
}

std::string ToString(QueryDistribution dist) {
  switch (dist) {
    case QueryDistribution::kUniform:
      return "uniform";
    case QueryDistribution::kSkewed:
      return "skewed";
    case QueryDistribution::kSequential:
      return "sequential";
    case QueryDistribution::kZipfian:
      return "zipfian";
    case QueryDistribution::kShiftingHotspot:
      return "shifting-hotspot";
    case QueryDistribution::kPeriodicPhases:
      return "periodic-phases";
    case QueryDistribution::kAdversarial:
      return "adversarial";
    case QueryDistribution::kOltpOlap:
      return "oltp-olap";
  }
  return "unknown";
}

std::vector<std::pair<size_t, size_t>> SplitStreams(size_t num_queries,
                                                    size_t num_clients) {
  num_clients = std::max<size_t>(1, std::min(num_clients, num_queries));
  std::vector<std::pair<size_t, size_t>> slices;
  slices.reserve(num_clients);
  const size_t per = num_queries / num_clients;
  const size_t extra = num_queries % num_clients;
  size_t cursor = 0;
  for (size_t c = 0; c < num_clients; ++c) {
    const size_t len = per + (c < extra ? 1 : 0);
    slices.emplace_back(cursor, cursor + len);
    cursor += len;
  }
  return slices;
}

std::vector<RangeQuery> WorkloadGenerator::Generate(
    const WorkloadOptions& opts) const {
  std::vector<RangeQuery> queries;
  queries.reserve(opts.num_queries);
  const int64_t domain = domain_hi_ - domain_lo_;
  if (domain <= 0) return queries;
  int64_t width = static_cast<int64_t>(
      static_cast<double>(domain) * std::clamp(opts.selectivity, 0.0, 1.0));
  width = std::clamp<int64_t>(width, 1, domain);
  const int64_t slack = domain - width;  // room for the lower bound

  Rng rng(opts.seed);
  const size_t phase_len = std::max<size_t>(1, opts.phase_length);

  // kZipfian: Zipf-weighted bucket CDF with ranks scattered over the domain.
  std::vector<double> zipf_cdf;
  std::vector<size_t> zipf_bucket_of_rank;
  if (opts.distribution == QueryDistribution::kZipfian) {
    const size_t buckets =
        static_cast<size_t>(std::clamp<int64_t>(domain, 1, 1024));
    double total = 0.0;
    zipf_cdf.reserve(buckets);
    for (size_t b = 0; b < buckets; ++b) {
      total += 1.0 / std::pow(static_cast<double>(b + 1),
                              std::max(0.0, opts.skew) + 0.5);
      zipf_cdf.push_back(total);
    }
    zipf_bucket_of_rank.resize(buckets);
    for (size_t b = 0; b < buckets; ++b) zipf_bucket_of_rank[b] = b;
    rng.Shuffle(&zipf_bucket_of_rank);
  }

  // kShiftingHotspot state: current hotspot placement.
  const int64_t hotspot_span = std::clamp<int64_t>(
      static_cast<int64_t>(static_cast<double>(domain) * opts.hotspot_width),
      width, domain);
  int64_t hotspot_lo = 0;

  // kAdversarial state: the crack positions a plain cracking index would
  // have after the queries issued so far (offsets into [0, domain]).
  std::set<int64_t> sim_cracks;
  if (opts.distribution == QueryDistribution::kAdversarial) {
    sim_cracks.insert(0);
    sim_cracks.insert(domain);
  }

  for (size_t i = 0; i < opts.num_queries; ++i) {
    int64_t offset = 0;
    int64_t qwidth = width;
    switch (opts.distribution) {
      case QueryDistribution::kUniform:
        offset = slack == 0 ? 0 : rng.UniformRange(0, slack + 1);
        break;
      case QueryDistribution::kSkewed:
        offset = slack == 0
                     ? 0
                     : static_cast<int64_t>(rng.Skewed(
                           static_cast<uint64_t>(slack + 1), opts.skew));
        break;
      case QueryDistribution::kSequential: {
        // Slide the window left to right, wrapping around.
        if (slack == 0) {
          offset = 0;
        } else {
          const int64_t steps = static_cast<int64_t>(opts.num_queries);
          offset = static_cast<int64_t>(i) * slack / std::max<int64_t>(1, steps - 1);
        }
        break;
      }
      case QueryDistribution::kZipfian: {
        const double r = rng.NextDouble() * zipf_cdf.back();
        const size_t rank = static_cast<size_t>(
            std::lower_bound(zipf_cdf.begin(), zipf_cdf.end(), r) -
            zipf_cdf.begin());
        const size_t bucket =
            zipf_bucket_of_rank[std::min(rank, zipf_bucket_of_rank.size() - 1)];
        const size_t buckets = zipf_bucket_of_rank.size();
        const int64_t b_lo =
            slack * static_cast<int64_t>(bucket) / static_cast<int64_t>(buckets);
        const int64_t b_hi = slack * static_cast<int64_t>(bucket + 1) /
                             static_cast<int64_t>(buckets);
        offset = b_hi > b_lo ? rng.UniformRange(b_lo, b_hi + 1) : b_lo;
        break;
      }
      case QueryDistribution::kShiftingHotspot: {
        if (i % phase_len == 0) {
          hotspot_lo = domain == hotspot_span
                           ? 0
                           : rng.UniformRange(0, domain - hotspot_span + 1);
        }
        offset = hotspot_lo + (hotspot_span == width
                                   ? 0
                                   : rng.UniformRange(0, hotspot_span - width + 1));
        break;
      }
      case QueryDistribution::kPeriodicPhases: {
        switch ((i / phase_len) % 3) {
          case 0:
            offset = slack == 0 ? 0 : rng.UniformRange(0, slack + 1);
            break;
          case 1: {
            const int64_t step = static_cast<int64_t>(i % phase_len);
            offset = slack * step / std::max<int64_t>(1, static_cast<int64_t>(phase_len) - 1);
            break;
          }
          default:
            offset = slack == 0
                         ? 0
                         : static_cast<int64_t>(rng.Skewed(
                               static_cast<uint64_t>(slack + 1), opts.skew));
            break;
        }
        break;
      }
      case QueryDistribution::kAdversarial: {
        // Query at the left edge of the largest not-yet-cracked region, so
        // each reorganization pass covers as many rows as possible.
        int64_t best_lo = 0;
        int64_t best_len = 0;
        int64_t prev = *sim_cracks.begin();
        for (auto it = std::next(sim_cracks.begin()); it != sim_cracks.end();
             ++it) {
          if (*it - prev > best_len) {
            best_len = *it - prev;
            best_lo = prev;
          }
          prev = *it;
        }
        offset = std::min(best_lo, slack);
        qwidth = std::clamp<int64_t>(best_len, 1, width);
        sim_cracks.insert(offset);
        sim_cracks.insert(std::min(offset + qwidth, domain));
        break;
      }
      case QueryDistribution::kOltpOlap: {
        if (rng.NextDouble() < opts.olap_fraction) {
          qwidth = std::clamp<int64_t>(
              static_cast<int64_t>(static_cast<double>(domain) *
                                   opts.olap_selectivity),
              1, domain);
          const int64_t olap_slack = domain - qwidth;
          offset = olap_slack == 0 ? 0 : rng.UniformRange(0, olap_slack + 1);
        } else {
          offset = slack == 0
                       ? 0
                       : static_cast<int64_t>(rng.Skewed(
                             static_cast<uint64_t>(slack + 1), opts.skew));
        }
        break;
      }
    }
    const Value lo = domain_lo_ + offset;
    queries.push_back(RangeQuery{lo, lo + qwidth, opts.type});
  }
  return queries;
}

std::vector<MixedOp> WorkloadGenerator::GenerateMixed(
    const WorkloadOptions& opts) const {
  const std::vector<RangeQuery> reads = Generate(opts);
  std::vector<MixedOp> ops;
  ops.reserve(opts.num_queries);
  if (reads.empty()) return ops;
  // Draw writes from a generator decorrelated from query placement so the
  // read sequence matches Generate() with the same options.
  Rng rng(opts.seed ^ 0xA5A5A5A5A5A5A5A5ULL);
  const double wf = std::clamp(opts.write_fraction, 0.0, 1.0);
  std::vector<Value> inserted;
  size_t next_read = 0;
  for (size_t i = 0; i < opts.num_queries; ++i) {
    MixedOp op;
    if (rng.NextDouble() < wf) {
      const bool del = !inserted.empty() && rng.Uniform(4) == 0;
      if (del) {
        const size_t victim = rng.Uniform(inserted.size());
        op.kind = MixedOp::Kind::kDelete;
        op.value = inserted[victim];
        inserted[victim] = inserted.back();
        inserted.pop_back();
      } else {
        op.kind = MixedOp::Kind::kInsert;
        op.value = domain_lo_ + rng.UniformRange(0, domain_hi_ - domain_lo_);
        inserted.push_back(op.value);
      }
    } else {
      op.kind = MixedOp::Kind::kQuery;
      op.query = reads[next_read % reads.size()];
      ++next_read;
    }
    ops.push_back(op);
  }
  return ops;
}

}  // namespace adaptidx
