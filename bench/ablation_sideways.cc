/// \file Sideways-cracking ablation for the two-column plan of Figure 6
/// (`select sum(B) from R where lo <= A < hi`): compares
///  (1) full scan of both columns,
///  (2) selection cracking on A + positional fetch of B (random access),
///  (3) a sideways cracker map holding (A, B) pairs (sequential access).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/cracking_index.h"
#include "cracking/sideways.h"
#include "engine/operators.h"
#include "util/stopwatch.h"

namespace adaptidx {
namespace bench {
namespace {

void Run() {
  const size_t rows = EnvSize("AI_BENCH_ROWS", 2000000);
  const size_t num_queries = EnvSize("AI_BENCH_QUERIES", 512);
  PrintHeader("Ablation: sideways cracking for select-project plans (Fig 6)",
              "rows=" + std::to_string(rows) +
                  " queries=" + std::to_string(num_queries) +
                  " selectivity=1% plan=sum(B) where A in range, clients=1");

  Column a = MakeUniqueRandomColumn(rows);
  Column b("B", {});
  b.Reserve(rows);
  Rng rng(71);
  for (size_t i = 0; i < rows; ++i) b.Append(rng.UniformRange(0, 1000));

  WorkloadGenerator gen(0, static_cast<Value>(rows));
  WorkloadOptions wopts;
  wopts.num_queries = num_queries;
  wopts.selectivity = 0.01;
  wopts.type = QueryType::kSum;
  wopts.seed = 73;
  const auto queries = gen.Generate(wopts);

  double scan_s = 0;
  double fetch_s = 0;
  double sideways_s = 0;
  int64_t check = 0;

  {
    StopWatch sw;
    for (const auto& q : queries) {
      int64_t sum = 0;
      for (size_t i = 0; i < rows; ++i) {
        if (a[i] >= q.lo && a[i] < q.hi) sum += b[i];
      }
      check ^= sum;
    }
    scan_s = sw.ElapsedSeconds();
  }
  {
    CrackingIndex index(&a);
    StopWatch sw;
    for (const auto& q : queries) {
      QueryContext ctx;
      int64_t sum = 0;
      (void)FetchSum(&index, b, q, &ctx, &sum);
      check ^= sum;
    }
    fetch_s = sw.ElapsedSeconds();
  }
  {
    SidewaysIndex index(&a, &b);
    StopWatch sw;
    for (const auto& q : queries) {
      QueryContext ctx;
      int64_t sum = 0;
      (void)index.RangeSumOther(ValueRange{q.lo, q.hi}, &ctx, &sum);
      check ^= sum;
    }
    sideways_s = sw.ElapsedSeconds();
  }

  std::printf("\n%-34s %12s\n", "plan", "total (s)");
  std::printf("%-34s %12.3f\n", "scan both columns", scan_s);
  std::printf("%-34s %12.3f\n", "crack A + positional fetch of B", fetch_s);
  std::printf("%-34s %12.3f\n", "sideways cracker map (A,B)", sideways_s);
  std::printf("(result checksum: %lld)\n", static_cast<long long>(check));
  std::printf(
      "\npaper-shape check: both adaptive plans beat scanning: %s; the map "
      "avoids the random fetches of the rowID plan: %s\n",
      (fetch_s < scan_s && sideways_s < scan_s) ? "yes" : "NO",
      sideways_s <= fetch_s * 1.1 ? "yes" : "NO");
}

}  // namespace
}  // namespace bench
}  // namespace adaptidx

int main() {
  adaptidx::bench::Run();
  return 0;
}
