#ifndef ADAPTIDX_TESTS_TEST_UTIL_H_
#define ADAPTIDX_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "storage/column.h"
#include "storage/types.h"

namespace adaptidx {

/// \brief O(log n) range-count/sum oracle over an immutable column, used to
/// verify adaptive indexes under heavy query volume (a full scan per check
/// would dominate test time).
class RangeOracle {
 public:
  explicit RangeOracle(const Column& column)
      : sorted_(column.values().begin(), column.values().end()),
        values_(column.values().begin(), column.values().end()) {
    std::sort(sorted_.begin(), sorted_.end());
    prefix_.resize(sorted_.size() + 1, 0);
    for (size_t i = 0; i < sorted_.size(); ++i) {
      prefix_[i + 1] = prefix_[i] + sorted_[i];
    }
  }

  uint64_t Count(Value lo, Value hi) const {
    if (lo >= hi) return 0;
    return Index(hi) - Index(lo);
  }

  int64_t Sum(Value lo, Value hi) const {
    if (lo >= hi) return 0;
    return prefix_[Index(hi)] - prefix_[Index(lo)];
  }

  /// \brief True when any value qualifies; then `*mn`/`*mx` are the range's
  /// min and max.
  bool MinMax(Value lo, Value hi, Value* mn, Value* mx) const {
    if (lo >= hi) return false;
    const size_t ilo = Index(lo);
    const size_t ihi = Index(hi);
    if (ilo >= ihi) return false;
    *mn = sorted_[ilo];
    *mx = sorted_[ihi - 1];
    return true;
  }

  /// \brief Verifies a materialized rowID answer: rowIDs are unique, so the
  /// answer is exactly the qualifying set iff it has the oracle's
  /// cardinality and every returned id's value qualifies.
  bool CheckRowIds(Value lo, Value hi,
                   const std::vector<RowId>& row_ids) const {
    if (row_ids.size() != Count(lo, hi)) return false;
    std::vector<RowId> dedup(row_ids);
    std::sort(dedup.begin(), dedup.end());
    if (std::adjacent_find(dedup.begin(), dedup.end()) != dedup.end()) {
      return false;
    }
    for (RowId r : row_ids) {
      if (r >= values_.size()) return false;
      const Value v = values_[r];
      if (v < lo || v >= hi) return false;
    }
    return true;
  }

 private:
  size_t Index(Value v) const {
    return static_cast<size_t>(
        std::lower_bound(sorted_.begin(), sorted_.end(), v) -
        sorted_.begin());
  }

  std::vector<Value> sorted_;
  std::vector<Value> values_;
  std::vector<int64_t> prefix_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_TESTS_TEST_UTIL_H_
