#ifndef ADAPTIDX_UTIL_STATUS_H_
#define ADAPTIDX_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace adaptidx {

/// \brief RocksDB-style status object returned by fallible operations.
///
/// The library does not throw exceptions on hot paths; operations that can
/// fail return a `Status`, and operations that produce a value either take an
/// out-parameter or return a small result struct carrying a `Status`.
///
/// `Status` is cheap to copy in the OK case (no allocation) and carries an
/// optional message otherwise.
class Status {
 public:
  /// Status codes. `kBusy` signals a failed try-acquire (conflict avoidance,
  /// Section 3.3 of the paper); `kConflict` signals a detected transactional
  /// lock conflict; `kAborted` signals a refinement that was abandoned via
  /// early termination.
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kInvalidArgument = 2,
    kBusy = 3,
    kConflict = 4,
    kAborted = 5,
    kTimedOut = 6,
    kNotSupported = 7,
    kCorruption = 8,
  };

  Status() = default;

  /// \brief Success singleton-style factory.
  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status Conflict(std::string msg = "") {
    return Status(Code::kConflict, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(Code::kTimedOut, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsConflict() const { return code_ == Code::kConflict; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// \brief Human-readable rendering, e.g. "Busy: piece latch held".
  std::string ToString() const {
    std::string out;
    switch (code_) {
      case Code::kOk:
        return "OK";
      case Code::kNotFound:
        out = "NotFound";
        break;
      case Code::kInvalidArgument:
        out = "InvalidArgument";
        break;
      case Code::kBusy:
        out = "Busy";
        break;
      case Code::kConflict:
        out = "Conflict";
        break;
      case Code::kAborted:
        out = "Aborted";
        break;
      case Code::kTimedOut:
        out = "TimedOut";
        break;
      case Code::kNotSupported:
        out = "NotSupported";
        break;
      case Code::kCorruption:
        out = "Corruption";
        break;
    }
    if (!msg_.empty()) {
      out += ": ";
      out += msg_;
    }
    return out;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string msg_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_UTIL_STATUS_H_
