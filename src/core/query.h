#ifndef ADAPTIDX_CORE_QUERY_H_
#define ADAPTIDX_CORE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/types.h"
#include "workload/workload.h"

namespace adaptidx {

/// \brief The statement kinds of the unified query descriptor. kCount/kSum
/// are the paper's Q1/Q2 templates; kSumOther is the two-column plan of
/// Figure 6 (select on one column, positional aggregation of another);
/// kRowIds materializes the qualifying positions themselves; kMinMax
/// returns the smallest and largest qualifying value.
enum class QueryKind {
  kCount,
  kSum,
  kSumOther,
  kRowIds,
  kMinMax,
};

/// \brief Display name of a query kind ("count", "sum", ...).
std::string ToString(QueryKind kind);

/// \brief Unified query descriptor — the single currency of the access
/// method API (`AdaptiveIndex::Execute`) and of `Session` submission.
///
/// Every statement of the public API is one of these: a kind, the target
/// table/column, the half-open predicate range [lo, hi), and — for
/// kSumOther — the column being aggregated. Descriptors are plain values;
/// building one performs no catalog access and cannot fail (resolution
/// errors surface when the query executes). Indexes ignore the name fields
/// (they are bound to their column); the engine uses them for catalog
/// resolution.
///
/// Thread-safety: a plain value type with no shared state — confine each
/// instance to one thread or copy freely.
struct Query {
  QueryKind kind = QueryKind::kCount;
  std::string table;       ///< target table (ignored by direct-index sessions)
  std::string column;      ///< selection column (the indexed attribute)
  std::string agg_column;  ///< aggregated column, kSumOther only
  ValueRange range{0, 0};  ///< predicate: column in [lo, hi)

  // ---- convenience builders -------------------------------------------

  /// \brief `select count(*) from table where lo <= column < hi`.
  static Query Count(std::string table, std::string column, Value lo,
                     Value hi) {
    return Query{QueryKind::kCount, std::move(table), std::move(column), "",
                 ValueRange{lo, hi}};
  }

  /// \brief `select sum(column) from table where lo <= column < hi`.
  static Query Sum(std::string table, std::string column, Value lo, Value hi) {
    return Query{QueryKind::kSum, std::move(table), std::move(column), "",
                 ValueRange{lo, hi}};
  }

  /// \brief `select sum(agg_column) from table where lo <= column < hi`.
  static Query SumOther(std::string table, std::string column,
                        std::string agg_column, Value lo, Value hi) {
    return Query{QueryKind::kSumOther, std::move(table), std::move(column),
                 std::move(agg_column), ValueRange{lo, hi}};
  }

  /// \brief Materializes the qualifying rowIDs.
  static Query RowIds(std::string table, std::string column, Value lo,
                      Value hi) {
    return Query{QueryKind::kRowIds, std::move(table), std::move(column), "",
                 ValueRange{lo, hi}};
  }

  /// \brief `select min(column), max(column) from table where
  /// lo <= column < hi`.
  static Query MinMax(std::string table, std::string column, Value lo,
                      Value hi) {
    return Query{QueryKind::kMinMax, std::move(table), std::move(column), "",
                 ValueRange{lo, hi}};
  }

  /// \brief Lifts a workload-generator `RangeQuery` into a descriptor.
  static Query From(std::string table, std::string column,
                    const RangeQuery& q) {
    QueryKind kind = QueryKind::kCount;
    switch (q.type) {
      case QueryType::kCount:
        kind = QueryKind::kCount;
        break;
      case QueryType::kSum:
        kind = QueryKind::kSum;
        break;
      case QueryType::kMinMax:
        kind = QueryKind::kMinMax;
        break;
    }
    return Query{kind, std::move(table), std::move(column), "",
                 ValueRange{q.lo, q.hi}};
  }
};

/// \brief Result of one query — a tagged union of mergeable partials.
///
/// Exactly the fields selected by `kind` are meaningful: `count` for
/// kCount (and, as a convenience, the number of materialized ids for
/// kRowIds), `sum` for kSum/kSumOther, `row_ids` for kRowIds, and
/// `min_value`/`max_value` (valid iff `has_minmax`) for kMinMax.
///
/// Results are designed to be computed per fragment and combined:
/// `Merge` folds another fragment's partial into this one (counts and sums
/// add, rowID lists concatenate, min/max combine), which is how
/// `PartitionedIndex` assembles one answer from per-shard executions.
/// RowID order after a merge is fragment order; callers needing a canonical
/// order sort — no index promises one.
///
/// Thread-safety: a plain value type with no shared state — confine each
/// instance to one thread or copy freely.
struct QueryResult {
  QueryKind kind = QueryKind::kCount;
  uint64_t count = 0;
  int64_t sum = 0;
  std::vector<RowId> row_ids;
  Value min_value = 0;        ///< kMinMax; valid iff has_minmax
  Value max_value = 0;        ///< kMinMax; valid iff has_minmax
  bool has_minmax = false;    ///< kMinMax matched at least one row

  /// \brief Clears every partial and stamps the kind; indexes call this at
  /// the top of Execute so stale fields never leak into a reused result.
  void Reset(QueryKind k) {
    kind = k;
    count = 0;
    sum = 0;
    row_ids.clear();
    min_value = 0;
    max_value = 0;
    has_minmax = false;
  }

  /// \brief Folds another partial of the same kind into this result.
  void Merge(const QueryResult& other);

  /// \brief Field-wise equality; min/max only compared when valid.
  friend bool operator==(const QueryResult& a, const QueryResult& b) {
    return a.kind == b.kind && a.count == b.count && a.sum == b.sum &&
           a.row_ids == b.row_ids && a.has_minmax == b.has_minmax &&
           (!a.has_minmax ||
            (a.min_value == b.min_value && a.max_value == b.max_value));
  }
};

/// \brief Running min/max fold shared by every kMinMax implementation:
/// feed values (or whole [lo, hi] extremes of a sub-range), then store
/// into a result. Keeps the "first value initializes, later values
/// tighten" semantics in exactly one place.
struct MinMaxAccumulator {
  Value min = 0;
  Value max = 0;
  bool any = false;

  /// \brief Folds in one qualifying value.
  void Feed(Value v) { Feed(v, v); }

  /// \brief Folds in a sub-range already known to span [lo, hi].
  void Feed(Value lo, Value hi) {
    if (!any) {
      min = lo;
      max = hi;
      any = true;
    } else {
      min = lo < min ? lo : min;
      max = hi > max ? hi : max;
    }
  }

  /// \brief Writes the fold into a result (`has_minmax` = any fed).
  void Store(QueryResult* result) const {
    result->has_minmax = any;
    if (any) {
      result->min_value = min;
      result->max_value = max;
    }
  }
};

/// \brief Lifts a whole generated workload into descriptors against one
/// table/column — the bridge between `WorkloadGenerator` and
/// `Session::SubmitBatch`.
std::vector<Query> ToQueries(const std::string& table,
                             const std::string& column,
                             const std::vector<RangeQuery>& queries);

}  // namespace adaptidx

#endif  // ADAPTIDX_CORE_QUERY_H_
