#include "cracking/avl_tree.h"

#include <algorithm>

namespace adaptidx {

AvlTree::~AvlTree() { Clear(); }

void AvlTree::Clear() {
  DestroyRec(root_);
  root_ = nullptr;
  size_ = 0;
}

void AvlTree::DestroyRec(Node* n) {
  if (n == nullptr) return;
  DestroyRec(n->left);
  DestroyRec(n->right);
  delete n;
}

void AvlTree::UpdateHeight(Node* n) {
  n->height = 1 + std::max(NodeHeight(n->left), NodeHeight(n->right));
}

int AvlTree::BalanceFactor(const Node* n) {
  return NodeHeight(n->left) - NodeHeight(n->right);
}

AvlTree::Node* AvlTree::RotateLeft(Node* n) {
  Node* r = n->right;
  n->right = r->left;
  r->left = n;
  UpdateHeight(n);
  UpdateHeight(r);
  return r;
}

AvlTree::Node* AvlTree::RotateRight(Node* n) {
  Node* l = n->left;
  n->left = l->right;
  l->right = n;
  UpdateHeight(n);
  UpdateHeight(l);
  return l;
}

AvlTree::Node* AvlTree::Rebalance(Node* n) {
  UpdateHeight(n);
  const int bf = BalanceFactor(n);
  if (bf > 1) {
    if (BalanceFactor(n->left) < 0) n->left = RotateLeft(n->left);
    return RotateRight(n);
  }
  if (bf < -1) {
    if (BalanceFactor(n->right) > 0) n->right = RotateRight(n->right);
    return RotateLeft(n);
  }
  return n;
}

AvlTree::Node* AvlTree::InsertRec(Node* n, Value value, Position pos,
                                  bool* inserted) {
  if (n == nullptr) {
    *inserted = true;
    Node* fresh = new Node;
    fresh->value = value;
    fresh->pos = pos;
    return fresh;
  }
  if (value < n->value) {
    n->left = InsertRec(n->left, value, pos, inserted);
  } else if (value > n->value) {
    n->right = InsertRec(n->right, value, pos, inserted);
  } else {
    *inserted = false;  // crack already present; positions are immutable
    return n;
  }
  return Rebalance(n);
}

bool AvlTree::Insert(Value value, Position pos) {
  bool inserted = false;
  root_ = InsertRec(root_, value, pos, &inserted);
  if (inserted) ++size_;
  return inserted;
}

bool AvlTree::Find(Value value, Position* pos) const {
  const Node* n = root_;
  while (n != nullptr) {
    if (value < n->value) {
      n = n->left;
    } else if (value > n->value) {
      n = n->right;
    } else {
      if (pos != nullptr) *pos = n->pos;
      return true;
    }
  }
  return false;
}

bool AvlTree::Floor(Value value, Entry* out) const {
  const Node* n = root_;
  const Node* best = nullptr;
  while (n != nullptr) {
    if (n->value <= value) {
      best = n;
      n = n->right;
    } else {
      n = n->left;
    }
  }
  if (best == nullptr) return false;
  if (out != nullptr) *out = Entry{best->value, best->pos};
  return true;
}

bool AvlTree::Ceiling(Value value, Entry* out) const {
  const Node* n = root_;
  const Node* best = nullptr;
  while (n != nullptr) {
    if (n->value > value) {
      best = n;
      n = n->left;
    } else {
      n = n->right;
    }
  }
  if (best == nullptr) return false;
  if (out != nullptr) *out = Entry{best->value, best->pos};
  return true;
}

bool AvlTree::NextByPosition(Position pos, Entry* out) const {
  // Crack positions are strictly increasing in crack value (a crack on a
  // larger value can never sit at an earlier position), so the successor by
  // position is the successor by value among cracks with pos' > pos.
  const Node* n = root_;
  const Node* best = nullptr;
  while (n != nullptr) {
    if (n->pos > pos) {
      best = n;
      n = n->left;
    } else {
      n = n->right;
    }
  }
  if (best == nullptr) return false;
  if (out != nullptr) *out = Entry{best->value, best->pos};
  return true;
}

int AvlTree::Height() const { return NodeHeight(root_); }

void AvlTree::InOrder(std::vector<Entry>* out) const {
  out->clear();
  out->reserve(size_);
  InOrderRec(root_, out);
}

void AvlTree::InOrderRec(const Node* n, std::vector<Entry>* out) {
  if (n == nullptr) return;
  InOrderRec(n->left, out);
  out->push_back(Entry{n->value, n->pos});
  InOrderRec(n->right, out);
}

bool AvlTree::ValidateRec(const Node* n, const Value* min, const Value* max,
                          int* height) {
  if (n == nullptr) {
    *height = 0;
    return true;
  }
  if (min != nullptr && n->value <= *min) return false;
  if (max != nullptr && n->value >= *max) return false;
  int hl = 0;
  int hr = 0;
  if (!ValidateRec(n->left, min, &n->value, &hl)) return false;
  if (!ValidateRec(n->right, &n->value, max, &hr)) return false;
  if (std::abs(hl - hr) > 1) return false;
  *height = 1 + std::max(hl, hr);
  if (*height != n->height) return false;
  return true;
}

bool AvlTree::Validate() const {
  int h = 0;
  if (!ValidateRec(root_, nullptr, nullptr, &h)) return false;
  // Positions must be non-decreasing in value order (strictly increasing for
  // distinct cracks of a permutation; duplicates in the base data can yield
  // equal positions for different crack values).
  std::vector<Entry> entries;
  InOrder(&entries);
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].pos < entries[i - 1].pos) return false;
  }
  return true;
}

}  // namespace adaptidx
