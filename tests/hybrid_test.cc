#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "hybrid/crack_sort.h"
#include "test_util.h"
#include "util/rng.h"

namespace adaptidx {
namespace {

class HybridTest : public ::testing::Test {
 protected:
  void SetUp() override {
    column_ = Column::UniqueRandom("A", 10000, 17);
    oracle_ = std::make_unique<RangeOracle>(column_);
  }

  HybridOptions SmallPartitions() const {
    HybridOptions opts;
    opts.partition_size = 1024;
    return opts;
  }

  Column column_;
  std::unique_ptr<RangeOracle> oracle_;
};

TEST_F(HybridTest, FirstQueryCreatesUnsortedPartitions) {
  HybridCrackSortIndex index(&column_, SmallPartitions());
  EXPECT_FALSE(index.initialized());
  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{100, 300}, &ctx, &count).ok());
  EXPECT_EQ(count, 200u);
  EXPECT_TRUE(index.initialized());
  EXPECT_EQ(index.num_partitions(), 10000u / 1024 + 1);
  EXPECT_TRUE(index.ValidateStructure());
}

TEST_F(HybridTest, CountAndSumMatchOracle) {
  HybridCrackSortIndex index(&column_, SmallPartitions());
  Rng rng(18);
  for (int i = 0; i < 150; ++i) {
    Value lo = rng.UniformRange(0, 10000);
    Value hi = rng.UniformRange(0, 10000);
    if (lo > hi) std::swap(lo, hi);
    QueryContext ctx;
    uint64_t count;
    int64_t sum;
    ASSERT_TRUE(index.RangeCount(ValueRange{lo, hi}, &ctx, &count).ok());
    ASSERT_EQ(count, oracle_->Count(lo, hi));
    ASSERT_TRUE(index.RangeSum(ValueRange{lo, hi}, &ctx, &sum).ok());
    ASSERT_EQ(sum, oracle_->Sum(lo, hi));
  }
  EXPECT_TRUE(index.ValidateStructure());
}

TEST_F(HybridTest, ExtractionDrainsInitialPartitions) {
  HybridCrackSortIndex index(&column_, SmallPartitions());
  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{0, 5000}, &ctx, &count).ok());
  // Half the domain moved out of the initial partitions.
  EXPECT_EQ(index.ResidualEntries(), 5000u);
  ASSERT_TRUE(index.RangeCount(ValueRange{5000, 10000}, &ctx, &count).ok());
  EXPECT_EQ(index.ResidualEntries(), 0u);
  EXPECT_TRUE(index.ValidateStructure());
}

TEST_F(HybridTest, RepeatedRangeNeedsNoFurtherWork) {
  HybridCrackSortIndex index(&column_, SmallPartitions());
  QueryContext ctx1;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{2000, 2500}, &ctx1, &count).ok());
  EXPECT_GT(ctx1.stats.cracks, 0u);
  QueryContext ctx2;
  ASSERT_TRUE(index.RangeCount(ValueRange{2000, 2500}, &ctx2, &count).ok());
  EXPECT_EQ(ctx2.stats.cracks, 0u);
  EXPECT_EQ(count, 500u);
}

TEST_F(HybridTest, OverlappingQueriesNoDoubleCounting) {
  HybridCrackSortIndex index(&column_, SmallPartitions());
  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{1000, 3000}, &ctx, &count).ok());
  EXPECT_EQ(count, 2000u);
  ASSERT_TRUE(index.RangeCount(ValueRange{2000, 4000}, &ctx, &count).ok());
  EXPECT_EQ(count, 2000u);
  ASSERT_TRUE(index.RangeCount(ValueRange{0, 10000}, &ctx, &count).ok());
  EXPECT_EQ(count, 10000u);
}

TEST_F(HybridTest, RowIdsSurviveExtraction) {
  HybridCrackSortIndex index(&column_, SmallPartitions());
  QueryContext ctx;
  std::vector<RowId> ids;
  ASSERT_TRUE(index.RangeRowIds(ValueRange{4000, 4500}, &ctx, &ids).ok());
  ASSERT_EQ(ids.size(), 500u);
  for (RowId id : ids) {
    EXPECT_GE(column_[id], 4000);
    EXPECT_LT(column_[id], 4500);
  }
}

TEST_F(HybridTest, ConcurrentQueriesMatchOracle) {
  HybridCrackSortIndex index(&column_, SmallPartitions());
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(300 + t);
      for (int i = 0; i < 80 && ok.load(); ++i) {
        Value lo = rng.UniformRange(0, 10000);
        Value hi = rng.UniformRange(0, 10000);
        if (lo > hi) std::swap(lo, hi);
        QueryContext ctx;
        uint64_t count = 0;
        if (!index.RangeCount(ValueRange{lo, hi}, &ctx, &count).ok() ||
            count != oracle_->Count(lo, hi)) {
          ok.store(false);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_TRUE(index.ValidateStructure());
}

TEST(HybridEdgeTest, DuplicateValues) {
  Column col = Column::UniformRandom("A", 5000, 0, 15, 21);
  RangeOracle oracle(col);
  HybridOptions opts;
  opts.partition_size = 512;
  HybridCrackSortIndex index(&col, opts);
  Rng rng(22);
  for (int i = 0; i < 60; ++i) {
    Value lo = rng.UniformRange(-2, 17);
    Value hi = rng.UniformRange(-2, 17);
    if (lo > hi) std::swap(lo, hi);
    QueryContext ctx;
    uint64_t count;
    ASSERT_TRUE(index.RangeCount(ValueRange{lo, hi}, &ctx, &count).ok());
    ASSERT_EQ(count, oracle.Count(lo, hi));
  }
  EXPECT_TRUE(index.ValidateStructure());
}

TEST(HybridEdgeTest, WholeDomainInOneQuery) {
  Column col = Column::UniqueRandom("A", 3000, 23);
  HybridOptions opts;
  opts.partition_size = 500;
  HybridCrackSortIndex index(&col, opts);
  QueryContext ctx;
  int64_t sum;
  ASSERT_TRUE(index.RangeSum(ValueRange{-5, 5000}, &ctx, &sum).ok());
  EXPECT_EQ(sum, 2999 * 3000 / 2);
  EXPECT_EQ(index.ResidualEntries(), 0u);
  EXPECT_EQ(index.num_segments(), 1u);
}

TEST(HybridEdgeTest, TinyColumn) {
  Column col("A", {5, 3, 9});
  HybridCrackSortIndex index(&col);
  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{4, 10}, &ctx, &count).ok());
  EXPECT_EQ(count, 2u);
}

}  // namespace
}  // namespace adaptidx
