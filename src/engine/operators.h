#ifndef ADAPTIDX_ENGINE_OPERATORS_H_
#define ADAPTIDX_ENGINE_OPERATORS_H_

#include <cstdint>
#include <vector>

#include "core/adaptive_index.h"
#include "storage/column.h"
#include "workload/workload.h"

namespace adaptidx {

/// \brief Result of one query: `count`/`sum` for the aggregate kinds,
/// `row_ids` for QueryKind::kRowIds submissions (empty otherwise).
struct QueryResult {
  QueryType type = QueryType::kCount;
  uint64_t count = 0;
  int64_t sum = 0;
  std::vector<RowId> row_ids;

  friend bool operator==(const QueryResult& a, const QueryResult& b) {
    return a.type == b.type && a.count == b.count && a.sum == b.sum &&
           a.row_ids == b.row_ids;
  }
};

/// \brief Bulk select-(project)-aggregate execution of one query over an
/// index (Figure 6's operator-at-a-time plan collapsed into the index's
/// count/sum entry points).
Status ExecuteQuery(AdaptiveIndex* index, const RangeQuery& query,
                    QueryContext* ctx, QueryResult* result);

/// \brief Index-free oracle used to verify results in tests and examples.
QueryResult OracleExecute(const Column& column, const RangeQuery& query);

/// \brief The two-column plan of Figure 6: `select sum(B) from R where
/// lo <= A < hi`. The index on A materializes qualifying rowIDs (select
/// operator); the aggregation fetches B positionally (fetch + sum
/// operators). B must be aligned with A's base column.
Status FetchSum(AdaptiveIndex* a_index, const Column& b_column,
                const RangeQuery& query, QueryContext* ctx, int64_t* sum);

/// \brief Oracle for FetchSum.
int64_t OracleFetchSum(const Column& a_column, const Column& b_column,
                       const RangeQuery& query);

}  // namespace adaptidx

#endif  // ADAPTIDX_ENGINE_OPERATORS_H_
