#include "engine/operators.h"

#include <algorithm>
#include <vector>

namespace adaptidx {

Status ExecuteQuery(AdaptiveIndex* index, const RangeQuery& query,
                    QueryContext* ctx, QueryResult* result) {
  return index->Execute(Query::From("", "", query), ctx, result);
}

QueryResult OracleExecute(const Column& column, const Query& query,
                          const Column* agg) {
  QueryResult r;
  r.Reset(query.kind);
  MinMaxAccumulator acc;
  for (size_t i = 0; i < column.size(); ++i) {
    const Value v = column[i];
    if (!query.range.Contains(v)) continue;
    switch (query.kind) {
      case QueryKind::kCount:
        ++r.count;
        break;
      case QueryKind::kSum:
        r.sum += v;
        break;
      case QueryKind::kSumOther:
        r.sum += (*agg)[i];
        break;
      case QueryKind::kRowIds:
        r.row_ids.push_back(static_cast<RowId>(i));
        ++r.count;
        break;
      case QueryKind::kMinMax:
        acc.Feed(v);
        break;
    }
  }
  if (query.kind == QueryKind::kMinMax) acc.Store(&r);
  return r;
}

QueryResult OracleExecute(const Column& column, const RangeQuery& query) {
  return OracleExecute(column, Query::From("", "", query));
}

Status FetchSum(AdaptiveIndex* a_index, const Column& b_column,
                const RangeQuery& query, QueryContext* ctx, int64_t* sum) {
  // Select: qualifying positions as rowIDs, through the adaptive index.
  std::vector<RowId> ids;
  Status s = a_index->RangeRowIds(ValueRange{query.lo, query.hi}, ctx, &ids);
  if (!s.ok()) return s;
  // Fetch + aggregate: positional access into the aligned column B; the
  // base columns are immutable, so this phase needs no latches — the
  // column-store property that lets adaptive indexing hold latches only
  // for the brief select phase (Section 5.1).
  int64_t total = 0;
  for (const RowId id : ids) total += b_column[id];
  *sum = total;
  return Status::OK();
}

int64_t OracleFetchSum(const Column& a_column, const Column& b_column,
                       const RangeQuery& query) {
  int64_t total = 0;
  for (size_t i = 0; i < a_column.size(); ++i) {
    const Value v = a_column[i];
    if (v >= query.lo && v < query.hi) total += b_column[i];
  }
  return total;
}

}  // namespace adaptidx
