#ifndef ADAPTIDX_CORE_CRACKING_INDEX_H_
#define ADAPTIDX_CORE_CRACKING_INDEX_H_

#include <atomic>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/adaptive_index.h"
#include "core/strategies.h"
#include "cracking/avl_tree.h"
#include "cracking/crack_policy.h"
#include "cracking/cracker_array.h"
#include "cracking/piece_map.h"
#include "latch/wait_queue_latch.h"
#include "storage/column.h"

namespace adaptidx {

class LockManager;
class ThreadPool;

/// \brief Concurrency control mode for the cracking index (Section 5.3,
/// plus the optimistic extensions layered on the piece-latch protocol).
enum class ConcurrencyMode {
  /// No latching at all — only valid for single-threaded execution; used to
  /// measure the administrative overhead of concurrency control (Figure 13).
  kNone,
  /// One read-write latch covering the whole cracker index ("Column
  /// latches"): crack selects are serialized, aggregations share.
  kColumnLatch,
  /// A read-write latch per piece ("Piece-wise latches"): queries crack
  /// different pieces concurrently and aggregate within pieces concurrently.
  kPieceLatch,
  /// Piece-wise latches for crackers, but aggregation readers take NO latch
  /// at all: each piece carries a seqlock-style version counter (even =
  /// stable, odd = crack in progress) that writers bump around every
  /// reorganization; readers validate version and extent after reading and
  /// retry on mismatch, falling back to the latched path after
  /// OptimisticReadPolicy::max_retries failures so writers cannot livelock
  /// them. Removes both read-latch mutex round-trips from the dominant
  /// aggregation path (the Figure 13 admin cost).
  kOptimistic,
  /// Starts as kOptimistic and demotes individual hot pieces to latched
  /// reads when their measured retry rate crosses the policy threshold,
  /// re-promoting once contention subsides (periodic probing).
  kAdaptive,
};

std::string ToString(ConcurrencyMode mode);

/// \brief Tunables of the cracking index; defaults reproduce the paper's
/// best configuration (piece latches, middle-out scheduling, pair-of-arrays
/// layout, crack-in-three).
struct CrackingOptions {
  ConcurrencyMode mode = ConcurrencyMode::kPieceLatch;
  SchedulingPolicy scheduling = SchedulingPolicy::kMiddleOut;
  ArrayLayout layout = ArrayLayout::kPairOfArrays;

  /// Kernel implementation tier for cracks and scans (kernel_tiers.h);
  /// kAuto resolves to the best tier the CPU supports.
  KernelTier kernel_tier = KernelTier::kAuto;

  /// Crack both bounds of a range in a single pass when they fall into the
  /// same piece.
  bool use_crack_in_three = true;

  /// Section 5.3 "Optimizations": when the piece of the first bound is
  /// busy, proceed with the second bound first ("even if there is a conflict
  /// for one of them the query actually proceeds with the second bound").
  bool swap_bound_on_conflict = true;

  /// Section 7 "Dynamic Algorithms": while holding a piece's write latch,
  /// additionally crack on the bounds of queries queued behind it
  /// ("algorithms that in one step refine the index for multiple query
  /// requests"), up to `group_crack_max` extra cracks.
  bool group_crack = false;
  size_t group_crack_max = 3;

  /// Refinement strategy (Section 7): standard / lazy / active / dynamic.
  RefinementStrategy strategy = RefinementStrategy::kStandard;
  /// Pieces at or below this size are fully sorted by the active strategy.
  size_t sort_piece_threshold = 128;

  /// Coarse-granular cracking: pieces at or below this size are sorted in
  /// place instead of split — whatever the strategy — so the piece map (and
  /// its latch population) stops growing once pieces reach the floor. The
  /// sort publishes no crack; the piece simply answers future bounds by
  /// binary search. 0 disables the floor.
  size_t min_piece_size = 128;

  /// Intra-query parallel cracking: a crack over a piece of at least this
  /// many elements is split into contiguous chunks cracked concurrently on
  /// `pool` and repaired with a swap-based refined merge (parallel_crack.h).
  /// Only first-touch-scale cracks qualify by default; the threshold keeps
  /// steady-state cracks on the cheap sequential kernel.
  size_t parallel_crack_min_piece = 1u << 17;
  /// Chunk fan-out for parallel cracks; 0 derives pool->num_threads() + 1
  /// (every worker plus the submitting query thread).
  size_t parallel_crack_chunks = 0;
  /// Shared pool for parallel cracks; not owned. When null, a process-wide
  /// lazily created pool is used if the machine has more than one hardware
  /// thread, else cracks stay sequential.
  ThreadPool* pool = nullptr;

  /// Pivot-selection policy for reorganizations (crack_policy.h): plain
  /// exact-bound cracking, or one of the stochastic variants of [16] —
  /// DDC/DDR add recursive data-driven pivots before the bound crack,
  /// MDD1R replaces the bound crack of large pieces with one random crack
  /// and a materialized (filtered-scan) answer — keeping convergence robust
  /// against adversarial query sequences.
  CrackPolicy crack_policy = CrackPolicy::kExact;
  /// Recursion floor of the policy: sub-ranges at or below this size get no
  /// extra pivots, and kMDD1R reverts to exact bound cracking there (so the
  /// index still converges to precise cracks, which the coarse floor below
  /// then sorts).
  size_t policy_min_piece = 1u << 16;
  /// Seed of the per-index deterministic pivot RNG consulted by kDDR and
  /// kMDD1R. Pivot choices are derived per call from (seed, extent, bound),
  /// so runs are reproducible from this seed alone, independent of thread
  /// interleaving.
  uint64_t policy_seed = 2012;

  /// Retry/fallback bounds and kAdaptive demotion thresholds of the
  /// optimistic read path; consulted only under kOptimistic/kAdaptive.
  OptimisticReadPolicy optimistic;

  /// When set, refinement first verifies that no user transaction holds a
  /// conflicting lock (Section 3.3, "Conflict Avoidance") on
  /// `lock_resource`; on conflict the query answers by scanning and skips
  /// refinement.
  LockManager* lock_manager = nullptr;
  std::string lock_resource;

  /// Display name used in benchmark output.
  std::string name = "crack";
};

/// \brief Database cracking with concurrency control — the paper's primary
/// experimental subject (Sections 5 and 6).
///
/// Structure:
///  - a CrackerArray (auxiliary copy of the column, lazily created by the
///    first query),
///  - an AvlTree mapping crack values to positions (table of contents),
///  - a PieceMap carrying one WaitQueueLatch per piece.
///
/// The AVL tree and the piece map change together under `structure_mu_`
/// (shared for lookups, exclusive for crack publication); array
/// reorganization happens under piece write latches (or the column latch).
/// Latch ordering: piece latches are never requested while holding
/// `structure_mu_`, and multi-piece acquisitions proceed in ascending
/// position order, so the latch graph is acyclic.
class CrackingIndex : public AdaptiveIndex {
 public:
  explicit CrackingIndex(const Column* column, CrackingOptions opts = {});

  std::string Name() const override { return opts_.name; }

  size_t NumPieces() const override;

  /// \brief Number of cracks currently in the table of contents.
  size_t NumCracks() const;

  /// \brief True once the first query has materialized the cracker array.
  bool initialized() const {
    return initialized_.load(std::memory_order_acquire);
  }

  const CrackingOptions& options() const { return opts_; }

  /// \brief Piece sizes in position order (diagnostics/benchmarks).
  std::vector<size_t> PieceSizes() const;

  /// \brief Exhaustively checks structural invariants: AVL validity, piece
  /// tiling, and that every piece's values lie within its bounds (sorted
  /// pieces actually sorted). Requires a quiesced index; O(n).
  bool ValidateStructure() const;

  // ---- durability: adapted-state capture/restore -------------------------

  /// \brief One piece of a captured tiling: its positional extent, value
  /// bounds, and whether it was known sorted.
  struct AdaptedPiece {
    Position begin = 0;
    Position end = 0;
    Value lo_value = 0;
    Value hi_value = 0;
    bool sorted = false;
  };

  /// \brief A consistent image of the cracked state: the reorganized
  /// array contents plus the piece tiling over them. Empty `pieces` means
  /// the index had not been initialized (no query touched it yet).
  struct AdaptedState {
    std::vector<Value> values;   ///< cracker-array values, position order
    std::vector<RowId> row_ids;  ///< matching rowIDs
    std::vector<AdaptedPiece> pieces;  ///< tiling of [0, values.size())
  };

  /// \brief Captures the cracked state while queries keep running: walks
  /// the tiling left to right taking each piece's read latch (or the column
  /// latch under kColumnLatch), copying its extent, bounds, and sorted flag.
  /// Piece begins are immutable and cracks never move values across a
  /// published crack, so piecewise copies taken at different moments still
  /// concatenate into a valid tiling — the image is SOME state between the
  /// walk's start and end, exactly what a checkpoint needs. Thread-safe.
  Status ExportAdaptedState(AdaptedState* out) const;

  /// \brief Rebuilds the cracked state from a captured image — the recovery
  /// path that makes adaptation *inherited*: the first post-restart query
  /// answers by binary search over the restored cracks instead of paying
  /// the cold full-column crack again. Call before any query traffic (the
  /// index must be pristine); the image must describe this index's column.
  /// InvalidArgument on a size/tiling mismatch.
  Status RestoreAdaptedState(const AdaptedState& state);

 protected:
  Status ExecuteImpl(const Query& query, QueryContext* ctx,
                     QueryResult* result) override;

 private:
  /// How a bound resolution may acquire the piece write latch.
  enum class Attempt {
    kBlocking,     ///< wait for the latch
    kTryThenScan,  ///< try once; on failure return an inexact result
    kTryThenFail,  ///< try once; on failure report failure to the caller
  };

  /// Result of resolving one bound value to a crack position.
  struct BoundResult {
    bool exact = false;
    bool latch_busy = false;  ///< only under Attempt::kTryThenFail
    Position pos = 0;         ///< valid when exact
    /// When inexact: scan [scan_begin, scan_end) with the query's value
    /// filter. The region is delimited by cracks present at resolution time
    /// and therefore contains a fixed set of values forever after.
    Position scan_begin = 0;
    Position scan_end = 0;
  };

  /// Lazily builds the cracker array, value domain, and piece map.
  void EnsureInitialized(QueryContext* ctx);

  /// Piece whose value interval contains `v`. structure_mu_ held (shared).
  std::shared_ptr<Piece> PieceForValueLocked(Value v) const;

  /// Inserts a crack into the AVL tree and splits the piece map.
  /// structure_mu_ held exclusively.
  void PublishCrackLocked(Value v, Position pos);

  /// Resolves `v` to a position, cracking as a side effect; the full
  /// protocol of Section 5.3 including revalidation after wake-up
  /// (Figure 10). `refine_allowed=false` forces the scan fallback.
  BoundResult ResolveBound(Value v, QueryContext* ctx, Attempt attempt,
                           bool refine_allowed);

  /// Resolves both bounds, applying crack-in-three and bound swapping.
  void ResolveBounds(const ValueRange& range, QueryContext* ctx,
                     bool refine_allowed, BoundResult* lo, BoundResult* hi);

  /// Attempts a combined crack-in-three when both bounds fall into one
  /// piece; returns false when the precondition evaporated (caller falls
  /// back to per-bound resolution). Under kMDD1R on a large piece the step
  /// publishes one random crack instead of the bound cracks and returns
  /// inexact results (both bounds scan the sub-range holding the range).
  bool TryCrackInThree(const ValueRange& range, QueryContext* ctx,
                       BoundResult* lo, BoundResult* hi);

  /// Result of one reorganization step over a piece: an exact position for
  /// the bound, or — when the crack policy answers by scan (kMDD1R) — the
  /// crack-delimited sub-range still holding the bound, whose value set is
  /// fixed forever (the contract BoundResult requires of inexact answers).
  struct CrackOutcome {
    bool exact = true;
    Position pos = 0;
    Position scan_begin = 0;
    Position scan_end = 0;
  };

  /// Reorganizes `piece` (already write-latched by the caller unless mode
  /// is kNone/kColumnLatch) for bound `v` over its current extent and
  /// publishes: the crack-policy pivots first (each routed through
  /// CrackRange like a bound pivot), then the bound crack when the policy
  /// calls for one.
  CrackOutcome CrackPieceLocked(const std::shared_ptr<Piece>& piece, Value v,
                                const RefinementDirective& directive,
                                QueryContext* ctx);

  /// The pool used for intra-query parallel cracks: the configured one, or
  /// a lazily created process-wide pool on multi-core machines, or null
  /// (sequential cracks) on single-core machines.
  ThreadPool* CrackPool() const;

  /// Two-way crack of [begin, end): chunked-parallel on the crack pool when
  /// the range reaches parallel_crack_min_piece, else the sequential kernel.
  /// Identical split position either way.
  Position CrackRange(Position begin, Position end, Value pivot);

  /// Three-way companion of CrackRange (same threshold and dispatch).
  std::pair<Position, Position> CrackRangeThree(Position begin, Position end,
                                                Value lo, Value hi);

  /// Coarse-granular floor, applied inside the seqlock odd window after the
  /// cracks of one refinement step: sorts every crack-delimited sub-range of
  /// [begin, end) whose size is at or below min_piece_size and appends its
  /// bounds to `out` so the publication step can mark the matching piece
  /// sorted. `cracks` holds the step's crack positions in ascending order.
  void SortCoarseSubRanges(Position begin, Position end,
                           const std::map<Value, Position>& cracks,
                           std::vector<std::pair<Position, Position>>* out);

  /// True when a user transaction holds a lock conflicting with structural
  /// refinement (Section 3.3's verification step).
  bool UserLockConflict(QueryContext* ctx) const;

  /// True for every mode that cracks under per-piece write latches
  /// (kPieceLatch and the optimistic modes, whose writers keep the latched
  /// protocol and only the read side changes).
  bool PieceLatchedMode() const {
    return opts_.mode == ConcurrencyMode::kPieceLatch ||
           opts_.mode == ConcurrencyMode::kOptimistic ||
           opts_.mode == ConcurrencyMode::kAdaptive;
  }

  /// True when piece versions must be maintained and readers may go
  /// latch-free.
  bool OptimisticMode() const {
    return opts_.mode == ConcurrencyMode::kOptimistic ||
           opts_.mode == ConcurrencyMode::kAdaptive;
  }

  /// Whether this guarded read of `piece` should attempt the optimistic
  /// path (always under kOptimistic; contention-gated with periodic probing
  /// under kAdaptive).
  bool UseOptimisticRead(Piece* piece);

  /// kAdaptive bookkeeping after a validated / retry-exhausted read.
  void NoteOptimisticSuccess(Piece* piece);
  void NoteOptimisticFallback(Piece* piece);

  /// Streams the positional region [b, e) into `agg` piece by piece,
  /// guarding each piece read per the mode — read latch (kPieceLatch),
  /// version-validated latch-free read with latched fallback
  /// (kOptimistic/kAdaptive) — and retrying on pieces that split under us.
  /// `needs_guard` is false when the aggregation touches no data (positional
  /// counts), which skips all guarding.
  template <typename Aggregator>
  void ProcessRegion(Position b, Position e, bool filtered,
                     const ValueRange& filter, bool needs_guard,
                     QueryContext* ctx, Aggregator* agg);

  /// Shared driver for count/sum/rowids/minmax.
  template <typename Aggregator>
  Status ExecuteRange(const ValueRange& range, QueryContext* ctx,
                      Aggregator* agg);

  const Column* column_;
  CrackingOptions opts_;
  RefinementPolicy policy_;
  CrackDecision decision_;

  mutable std::shared_mutex structure_mu_;
  std::atomic<bool> initialized_{false};
  std::unique_ptr<CrackerArray> array_;
  AvlTree avl_;
  std::unique_ptr<PieceMap> pieces_;
  Value domain_lo_ = 0;  ///< min value in the column
  Value domain_hi_ = 0;  ///< max value + 1

  /// Mutable: ExportAdaptedState (const — a read) latches it under
  /// kColumnLatch, like the mutable structure latch above.
  mutable WaitQueueLatch column_latch_{SchedulingPolicy::kFifo};
};

}  // namespace adaptidx

#endif  // ADAPTIDX_CORE_CRACKING_INDEX_H_
