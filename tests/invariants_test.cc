#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/cracking_index.h"
#include "core/index_factory.h"
#include "engine/driver.h"
#include "test_util.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace adaptidx {
namespace {

/// Cross-cutting invariants that hold across modules — the properties the
/// concurrency arguments of the paper (and of this implementation) lean on.

// Crack positions, once published, never move: every piece boundary is a
// permanent fact about the array.
TEST(InvariantsTest, CracksAreImmutableAcrossQueries) {
  Column col = Column::UniqueRandom("A", 10000, 90);
  CrackingIndex index(&col);
  Rng rng(91);
  std::map<size_t, std::vector<size_t>> history;  // not needed; keep simple
  std::vector<size_t> prev_sizes;
  std::map<Value, Position> seen_cracks;
  for (int i = 0; i < 60; ++i) {
    const Value lo = rng.UniformRange(0, 9000);
    QueryContext ctx;
    uint64_t count;
    ASSERT_TRUE(
        index.RangeCount(ValueRange{lo, lo + 500}, &ctx, &count).ok());
    // Piece sizes: the multiset may only refine (pieces split, never merge).
    auto sizes = index.PieceSizes();
    size_t total = 0;
    for (size_t s : sizes) total += s;
    ASSERT_EQ(total, 10000u);
    ASSERT_GE(sizes.size(), prev_sizes.size());
    prev_sizes = sizes;
  }
  EXPECT_TRUE(index.ValidateStructure());
}

// The number of pieces is exactly the number of cracks plus one (pieces
// tile the array between cracks).
TEST(InvariantsTest, PiecesEqualCracksPlusOne) {
  Column col = Column::UniqueRandom("A", 5000, 92);
  CrackingIndex index(&col);
  Rng rng(93);
  for (int i = 0; i < 40; ++i) {
    const Value lo = rng.UniformRange(0, 4500);
    QueryContext ctx;
    uint64_t count;
    ASSERT_TRUE(
        index.RangeCount(ValueRange{lo, lo + 200}, &ctx, &count).ok());
    ASSERT_EQ(index.NumPieces(), index.NumCracks() + 1);
  }
}

// Both physical layouts of the cracker array (Figure 7) must produce
// identical crack positions for the same query sequence — the layout is
// representation, not semantics.
TEST(InvariantsTest, LayoutsProduceIdenticalCracks) {
  Column col = Column::UniqueRandom("A", 5000, 94);
  CrackingOptions pairs;
  pairs.layout = ArrayLayout::kRowIdValuePairs;
  CrackingOptions split;
  split.layout = ArrayLayout::kPairOfArrays;
  CrackingIndex a(&col, pairs);
  CrackingIndex b(&col, split);
  Rng rng(95);
  for (int i = 0; i < 50; ++i) {
    Value lo = rng.UniformRange(0, 5000);
    Value hi = rng.UniformRange(0, 5000);
    if (lo > hi) std::swap(lo, hi);
    QueryContext ca;
    QueryContext cb;
    uint64_t na;
    uint64_t nb;
    ASSERT_TRUE(a.RangeCount(ValueRange{lo, hi}, &ca, &na).ok());
    ASSERT_TRUE(b.RangeCount(ValueRange{lo, hi}, &cb, &nb).ok());
    ASSERT_EQ(na, nb);
  }
  EXPECT_EQ(a.NumCracks(), b.NumCracks());
  EXPECT_EQ(a.PieceSizes(), b.PieceSizes());
}

// Plain cracking performs at most two crack actions per query (one per
// bound); with crack-in-three the two bounds of a fresh piece cost one pass
// but still count as two bound refinements.
TEST(InvariantsTest, AtMostTwoCracksPerQuery) {
  Column col = Column::UniqueRandom("A", 5000, 96);
  CrackingOptions opts;
  opts.crack_policy = CrackPolicy::kExact;
  opts.group_crack = false;
  CrackingIndex index(&col, opts);
  Rng rng(97);
  for (int i = 0; i < 60; ++i) {
    Value lo = rng.UniformRange(0, 5000);
    Value hi = rng.UniformRange(0, 5000);
    if (lo > hi) std::swap(lo, hi);
    QueryContext ctx;
    uint64_t count;
    ASSERT_TRUE(index.RangeCount(ValueRange{lo, hi}, &ctx, &count).ok());
    ASSERT_LE(ctx.stats.cracks, 2u);
  }
}

// Degenerate data: a column where every value is identical.
TEST(InvariantsTest, AllEqualValuesColumn) {
  std::vector<Value> values(1000, 7);
  Column col("A", std::move(values));
  for (IndexMethod m :
       {IndexMethod::kScan, IndexMethod::kSort, IndexMethod::kCrack,
        IndexMethod::kAdaptiveMerge, IndexMethod::kHybrid,
        IndexMethod::kBTreeMerge}) {
    IndexConfig config;
    config.method = m;
    config.merge.run_size = 128;
    config.hybrid.partition_size = 128;
    config.btree.run_size = 128;
    auto index = MakeIndex(&col, config);
    QueryContext ctx;
    uint64_t count;
    ASSERT_TRUE(index->RangeCount(ValueRange{7, 8}, &ctx, &count).ok())
        << ToString(m);
    EXPECT_EQ(count, 1000u) << ToString(m);
    ASSERT_TRUE(index->RangeCount(ValueRange{0, 7}, &ctx, &count).ok());
    EXPECT_EQ(count, 0u) << ToString(m);
    ASSERT_TRUE(index->RangeCount(ValueRange{8, 100}, &ctx, &count).ok());
    EXPECT_EQ(count, 0u) << ToString(m);
  }
}

// Two-valued column: crack positions collapse onto the single boundary.
TEST(InvariantsTest, TwoValuedColumn) {
  Column col = Column::UniformRandom("A", 2000, 0, 2, 98);
  RangeOracle oracle(col);
  CrackingIndex index(&col);
  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{0, 1}, &ctx, &count).ok());
  EXPECT_EQ(count, oracle.Count(0, 1));
  ASSERT_TRUE(index.RangeCount(ValueRange{1, 2}, &ctx, &count).ok());
  EXPECT_EQ(count, oracle.Count(1, 2));
  EXPECT_TRUE(index.ValidateStructure());
}

// Workload generator honesty: for a dense unique-integer column, a query of
// selectivity s must qualify exactly round(s * n) rows.
TEST(InvariantsTest, SelectivityIsExactOnDenseDomain) {
  const size_t n = 100000;
  Column col = Column::UniqueRandom("A", n, 99);
  CrackingIndex index(&col);
  WorkloadGenerator gen(0, static_cast<Value>(n));
  for (double sel : {0.0001, 0.001, 0.01, 0.10, 0.50, 0.90}) {
    WorkloadOptions wopts;
    wopts.num_queries = 8;
    wopts.selectivity = sel;
    wopts.seed = 17;
    for (const auto& q : gen.Generate(wopts)) {
      QueryContext ctx;
      uint64_t count;
      ASSERT_TRUE(index.RangeCount(ValueRange{q.lo, q.hi}, &ctx, &count).ok());
      EXPECT_EQ(count, static_cast<uint64_t>(
                           static_cast<double>(n) * sel))
          << "sel=" << sel;
    }
  }
}

// Driver stats are internally consistent: finishes ordered, responses
// non-negative, component times bounded by response time.
TEST(InvariantsTest, DriverStatsConsistency) {
  Column col = Column::UniqueRandom("A", 50000, 100);
  CrackingIndex index(&col);
  WorkloadGenerator gen(0, 50000);
  WorkloadOptions wopts;
  wopts.num_queries = 128;
  wopts.selectivity = 0.01;
  wopts.type = QueryType::kSum;
  DriverOptions dopts;
  dopts.num_clients = 4;
  RunResult r = Driver::Run(&index, gen.Generate(wopts), dopts);
  ASSERT_TRUE(r.status.ok());
  for (const auto& rec : r.records) {
    EXPECT_GE(rec.stats.response_ns, 0);
    EXPECT_LE(rec.stats.start_ns, rec.stats.finish_ns);
    EXPECT_LE(rec.stats.wait_ns, rec.stats.response_ns);
    EXPECT_LE(rec.stats.crack_ns, rec.stats.response_ns);
  }
  EXPECT_EQ(r.response_hist.count(), 128u);
  EXPECT_GE(r.total_crack_ns, 0);
}

// Latch statistics of an index add up: acquires >= conflicts, and a
// sequential run produces zero conflicts.
TEST(InvariantsTest, SequentialRunHasNoConflicts) {
  Column col = Column::UniqueRandom("A", 20000, 101);
  CrackingIndex index(&col);
  Rng rng(102);
  for (int i = 0; i < 100; ++i) {
    const Value lo = rng.UniformRange(0, 19000);
    QueryContext ctx;
    int64_t sum;
    ASSERT_TRUE(index.RangeSum(ValueRange{lo, lo + 500}, &ctx, &sum).ok());
    ASSERT_EQ(ctx.stats.conflicts, 0u);
    ASSERT_EQ(ctx.stats.wait_ns, 0);
  }
  EXPECT_EQ(index.latch_stats().total_conflicts(), 0u);
  EXPECT_GT(index.latch_stats().write_acquires(), 0u);
}

// A fully-refined index (active strategy driven to sorted pieces) answers
// without any further refinement — state 5 of Figure 5.
TEST(InvariantsTest, FullRefinementReachesQuiescence) {
  Column col = Column::UniqueRandom("A", 2000, 103);
  CrackingOptions opts;
  opts.strategy = RefinementStrategy::kActive;
  opts.sort_piece_threshold = 4000;  // first touch sorts everything
  CrackingIndex index(&col, opts);
  QueryContext warm;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{500, 600}, &warm, &count).ok());
  // Every further query lands in sorted pieces: binary search, no movement.
  Rng rng(104);
  for (int i = 0; i < 50; ++i) {
    Value lo = rng.UniformRange(0, 2000);
    Value hi = rng.UniformRange(0, 2000);
    if (lo > hi) std::swap(lo, hi);
    QueryContext ctx;
    ASSERT_TRUE(index.RangeCount(ValueRange{lo, hi}, &ctx, &count).ok());
    ASSERT_EQ(ctx.stats.crack_ns, 0)
        << "sorted pieces must not be reorganized";
    ASSERT_EQ(count, static_cast<uint64_t>(hi - lo));
  }
  EXPECT_TRUE(index.ValidateStructure());
}

}  // namespace
}  // namespace adaptidx
