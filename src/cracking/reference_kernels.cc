// Reference-tier kernel instantiations. This TU is deliberately compiled
// without auto-vectorization (the pragma below, plus -fno-tree-vectorize
// from CMake) so the reference tier stays a stable scalar baseline: the
// differential tests exercise true one-element-at-a-time semantics, and the
// micro-benchmark ratios measure the explicit predication/SIMD work in the
// other tiers rather than whatever the optimizer happens to do to this one.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC optimize("no-tree-vectorize")
#endif

#include "cracking/reference_kernels.h"

#include "cracking/crack_kernels.h"

namespace adaptidx {
namespace reference {

Position CrackInTwoSplit(Value* values, RowId* row_ids, Position begin,
                         Position end, Value pivot) {
  SplitAccessor a(values, row_ids);
  return CrackInTwo(a, begin, end, pivot);
}

std::pair<Position, Position> CrackInThreeSplit(Value* values, RowId* row_ids,
                                                Position begin, Position end,
                                                Value lo, Value hi) {
  SplitAccessor a(values, row_ids);
  return CrackInThree(a, begin, end, lo, hi);
}

uint64_t ScanCountSplit(const Value* values, Position begin, Position end,
                        Value lo, Value hi) {
  SplitAccessor a(const_cast<Value*>(values), nullptr);
  return ScanCount(a, begin, end, lo, hi);
}

int64_t ScanSumSplit(const Value* values, Position begin, Position end,
                     Value lo, Value hi) {
  SplitAccessor a(const_cast<Value*>(values), nullptr);
  return ScanSum(a, begin, end, lo, hi);
}

int64_t PositionalSumSplit(const Value* values, Position begin, Position end) {
  SplitAccessor a(const_cast<Value*>(values), nullptr);
  return PositionalSum(a, begin, end);
}

Position CrackInTwoPairs(CrackerEntry* entries, Position begin, Position end,
                         Value pivot) {
  PairAccessor a(entries);
  return CrackInTwo(a, begin, end, pivot);
}

std::pair<Position, Position> CrackInThreePairs(CrackerEntry* entries,
                                                Position begin, Position end,
                                                Value lo, Value hi) {
  PairAccessor a(entries);
  return CrackInThree(a, begin, end, lo, hi);
}

uint64_t ScanCountPairs(const CrackerEntry* entries, Position begin,
                        Position end, Value lo, Value hi) {
  PairAccessor a(const_cast<CrackerEntry*>(entries));
  return ScanCount(a, begin, end, lo, hi);
}

int64_t ScanSumPairs(const CrackerEntry* entries, Position begin, Position end,
                     Value lo, Value hi) {
  PairAccessor a(const_cast<CrackerEntry*>(entries));
  return ScanSum(a, begin, end, lo, hi);
}

int64_t PositionalSumPairs(const CrackerEntry* entries, Position begin,
                           Position end) {
  PairAccessor a(const_cast<CrackerEntry*>(entries));
  return PositionalSum(a, begin, end);
}

}  // namespace reference
}  // namespace adaptidx
