/// \file Read-write interplay (Sections 3.3 and 4.2): analytic queries keep
/// cracking a column while updater user transactions insert and delete
/// through the differential-file layer. Measures query throughput at
/// increasing update rates and reports how often refinement was forgone
/// because a user transaction held a conflicting lock.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/updatable_index.h"
#include "util/stopwatch.h"

namespace adaptidx {
namespace bench {
namespace {

struct MixResult {
  double seconds;
  uint64_t queries;
  uint64_t updates;
  uint64_t skipped;
};

MixResult RunMix(const Column& column, size_t query_threads,
                 size_t update_threads, size_t ops_per_thread) {
  LockManager lm;
  IndexConfig config;
  config.method = IndexMethod::kCrack;
  UpdatableIndex index(column, config, &lm, "R/A");
  const Value domain = static_cast<Value>(column.size());

  std::atomic<uint64_t> txn{1};
  std::atomic<uint64_t> skipped{0};
  std::vector<std::thread> threads;
  StopWatch wall;
  for (size_t t = 0; t < query_threads + update_threads; ++t) {
    const bool updater = t >= query_threads;
    threads.emplace_back([&, t, updater] {
      Rng rng(t * 31 + 7);
      QueryContext ctx;
      for (size_t i = 0; i < ops_per_thread; ++i) {
        ctx.txn_id = txn.fetch_add(1);
        if (updater) {
          (void)index.Insert(rng.UniformRange(0, domain), &ctx);
        } else {
          const Value lo = rng.UniformRange(0, domain - domain / 100);
          ctx.stats.refinement_skipped = false;
          int64_t sum = 0;
          (void)index.RangeSum(ValueRange{lo, lo + domain / 100}, &ctx, &sum);
          if (ctx.stats.refinement_skipped) skipped.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  return MixResult{wall.ElapsedSeconds(), query_threads * ops_per_thread,
                   update_threads * ops_per_thread, skipped.load()};
}

void Run() {
  const size_t rows = EnvSize("AI_BENCH_ROWS", 1000000);
  const size_t ops = EnvSize("AI_BENCH_UPDATE_OPS", 200);
  PrintHeader("Read-write mix: cracking queries vs. updater transactions",
              "rows=" + std::to_string(rows) + " ops/thread=" +
                  std::to_string(ops) +
                  " query selectivity=1%; updates via differential files "
                  "with X key locks");

  Column column = MakeUniqueRandomColumn(rows);
  std::printf("\n%-22s %10s %10s %12s %16s\n", "mix (readers+writers)",
              "total (s)", "queries", "updates", "refine skipped");
  struct {
    size_t readers;
    size_t writers;
  } mixes[] = {{6, 0}, {5, 1}, {4, 2}, {2, 4}};
  for (const auto& mix : mixes) {
    MixResult r = RunMix(column, mix.readers, mix.writers, ops);
    char label[32];
    std::snprintf(label, sizeof(label), "%zu readers + %zu writers",
                  mix.readers, mix.writers);
    std::printf("%-22s %10.3f %10llu %12llu %16llu\n", label, r.seconds,
                static_cast<unsigned long long>(r.queries),
                static_cast<unsigned long long>(r.updates),
                static_cast<unsigned long long>(r.skipped));
  }
  std::printf(
      "\nReading guide: refinement skips appear only while an updater "
      "transaction holds its key lock (intention-exclusive on the column); "
      "queries always answer correctly by scanning instead, and refinement "
      "resumes the moment the locks clear — optional structural updates in "
      "action (Section 3.3).\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptidx

int main() {
  adaptidx::bench::Run();
  return 0;
}
