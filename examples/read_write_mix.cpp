/// \file Read-write mix: an order stream updates a column through the
/// differential-file layer (Section 4.2) while analysts keep querying it.
/// Shows the paper's transactional split in action: updates are user
/// transactions under the lock manager; index refinement is a latch-only
/// system transaction that politely steps aside while conflicting user
/// locks exist. The final phase contrasts latched reads with MVCC
/// snapshot reads (docs/CONCURRENCY.md): a long scan concurrent with an
/// update stream, printing how much side-table blocking each read mode
/// inflicts on the writers.
///
///   $ ./build/examples/read_write_mix

#include <atomic>
#include <cstdio>
#include <thread>

#include "core/updatable_index.h"
#include "storage/column.h"

using namespace adaptidx;

namespace {

/// Phase 5 worker: one analyst loops full-range sums (with or without
/// snapshot reads) while one updater streams inserts; returns the
/// side-table writer blocked-wait the updater accumulated.
double MeasureInterferenceMs(bool snapshot_reads) {
  constexpr size_t kRows = 500'000;
  constexpr int kUpdates = 1'500;
  IndexConfig config;
  config.method = IndexMethod::kScan;   // every read = full O(n) scan
  config.snapshot_reads = true;         // maintain the version chain
  UpdatableIndex orders(Column::UniqueRandom("amount", kRows, 7), config);

  std::atomic<bool> stop{false};
  std::thread analyst([&] {
    QueryContext ctx;
    ctx.snapshot_reads = snapshot_reads;
    while (!stop.load(std::memory_order_acquire)) {
      int64_t sum = 0;
      (void)orders.RangeSum(ValueRange{0, static_cast<Value>(2 * kRows)},
                            &ctx, &sum);
    }
  });
  QueryContext uctx;
  for (int i = 0; i < kUpdates; ++i) {
    uctx.txn_id = 100 + static_cast<uint64_t>(i);
    (void)orders.Insert(static_cast<Value>(kRows + i), &uctx);
  }
  stop.store(true, std::memory_order_release);
  analyst.join();
  std::printf("  %-8s reads: updater blocked %7.3f ms on the side-table "
              "latch (%llu blocked acquisitions, %llu snapshot reads, "
              "max epoch lag %llu)\n",
              snapshot_reads ? "snapshot" : "latched",
              static_cast<double>(orders.latch_stats().write_wait_ns()) / 1e6,
              static_cast<unsigned long long>(
                  orders.latch_stats().write_conflicts()),
              static_cast<unsigned long long>(
                  orders.latch_stats().snapshot_reads()),
              static_cast<unsigned long long>(
                  orders.latch_stats().snapshot_max_epoch_lag()));
  return static_cast<double>(orders.latch_stats().write_wait_ns()) / 1e6;
}

}  // namespace

int main() {
  constexpr size_t kRows = 500'000;
  LockManager lm;
  IndexConfig config;
  config.method = IndexMethod::kCrack;
  UpdatableIndex orders(Column::UniqueRandom("amount", kRows, 5), config,
                        &lm, "orders/amount");
  std::printf("orders table: %zu rows, cracking index with lock-manager "
              "probe\n\n", orders.num_rows());

  QueryContext ctx;
  ctx.txn_id = 1;

  // 1. Plain analytics: cracks as a side effect.
  uint64_t count = 0;
  (void)orders.RangeCount(ValueRange{100'000, 200'000}, &ctx, &count);
  std::printf("count(amount in [100k,200k))          = %llu   "
              "(refined: %s)\n",
              static_cast<unsigned long long>(count),
              ctx.stats.refinement_skipped ? "no" : "yes");

  // 2. An open user transaction locks a key range it intends to update.
  (void)lm.Acquire(42, "orders/amount/key:150000", LockMode::kX);
  QueryContext ctx2;
  ctx2.txn_id = 2;
  (void)orders.RangeCount(ValueRange{100'000, 200'000}, &ctx2, &count);
  std::printf("same query while txn 42 holds X lock  = %llu   "
              "(refined: %s — system txn forgoes optimization)\n",
              static_cast<unsigned long long>(count),
              ctx2.stats.refinement_skipped ? "no" : "yes");
  lm.ReleaseAll(42);

  // 3. Auto-commit updates through differential files / anti-matter.
  QueryContext uctx;
  uctx.txn_id = 3;
  RowId fresh;
  (void)orders.Insert(150'500, &uctx, &fresh);
  uctx.txn_id = 4;
  (void)orders.Insert(150'501, &uctx);
  std::printf("\ninserted 2 orders -> pending inserts  = %zu\n",
              orders.pending_inserts());

  QueryContext ctx3;
  ctx3.txn_id = 5;
  (void)orders.RangeCount(ValueRange{100'000, 200'000}, &ctx3, &count);
  std::printf("count after inserts                   = %llu   "
              "(base + differentials)\n",
              static_cast<unsigned long long>(count));

  uctx.txn_id = 6;
  (void)orders.Delete(150'500, fresh, &uctx);
  std::printf("deleted one pending order -> pending  = %zu inserts, %zu "
              "anti-matter\n",
              orders.pending_inserts(), orders.pending_deletes());

  // 4. Checkpoint: fold differentials into a fresh base and rebuild.
  (void)orders.Checkpoint();
  QueryContext ctx4;
  ctx4.txn_id = 7;
  (void)orders.RangeCount(ValueRange{100'000, 200'000}, &ctx4, &count);
  std::printf("\nafter checkpoint: rows=%zu pending=0, count = %llu "
              "(index rebuilt, re-cracks on demand)\n",
              orders.num_rows(), static_cast<unsigned long long>(count));

  // 5. MVCC snapshot reads: a long analytical scan beside an update
  //    stream. Latched reads hold the side-table latch for the whole scan,
  //    so every in-flight scan blocks the writers; snapshot reads pin an
  //    epoch in O(1) and read latch-free, so the writers never wait on a
  //    reader (docs/CONCURRENCY.md, "MVCC snapshot reads").
  std::printf("\nlong scan vs update stream (500k-row scans, 1500 "
              "inserts):\n");
  const double latched_ms = MeasureInterferenceMs(false);
  const double snapshot_ms = MeasureInterferenceMs(true);
  std::printf("  -> snapshot reads removed %.3f ms of writer blocking\n",
              latched_ms - snapshot_ms);
  return 0;
}
