#include "core/cracking_index.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>

#include "cracking/optimistic_kernels.h"
#include "cracking/parallel_crack.h"
#include "lock/lock_manager.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace adaptidx {

std::string ToString(ConcurrencyMode mode) {
  switch (mode) {
    case ConcurrencyMode::kNone:
      return "none";
    case ConcurrencyMode::kColumnLatch:
      return "column-latch";
    case ConcurrencyMode::kPieceLatch:
      return "piece-latch";
    case ConcurrencyMode::kOptimistic:
      return "optimistic";
    case ConcurrencyMode::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

namespace {

/// Structure-latch guards that compile to no-ops when concurrency control is
/// disabled (Figure 13 measures exactly this administrative difference).
class MaybeSharedLock {
 public:
  MaybeSharedLock(std::shared_mutex* mu, bool enabled)
      : mu_(enabled ? mu : nullptr) {
    if (mu_ != nullptr) mu_->lock_shared();
  }
  ~MaybeSharedLock() {
    if (mu_ != nullptr) mu_->unlock_shared();
  }
  MaybeSharedLock(const MaybeSharedLock&) = delete;
  MaybeSharedLock& operator=(const MaybeSharedLock&) = delete;

 private:
  std::shared_mutex* mu_;
};

class MaybeUniqueLock {
 public:
  MaybeUniqueLock(std::shared_mutex* mu, bool enabled)
      : mu_(enabled ? mu : nullptr) {
    if (mu_ != nullptr) mu_->lock();
  }
  ~MaybeUniqueLock() {
    if (mu_ != nullptr) mu_->unlock();
  }
  MaybeUniqueLock(const MaybeUniqueLock&) = delete;
  MaybeUniqueLock& operator=(const MaybeUniqueLock&) = delete;

 private:
  std::shared_mutex* mu_;
};

/// Value-bound snapshot of a piece captured at revalidation time; see the
/// publication-safety argument in CrackPieceLocked.
struct PieceSnapshot {
  Position begin = 0;
  Position end = 0;
  Value lo_value = 0;
  Value hi_value = 0;
  bool sorted = false;
};

// Each aggregator offers the latched bulk entry points (Positional /
// Filtered), their latch-free optimistic twins (*Opt, routed through the
// uninstrumented kernels of optimistic_kernels.h), and a one-deep
// checkpoint/rollback so a read that fails seqlock validation can be
// discarded without corrupting the running aggregate.

struct CountAggregator {
  static constexpr bool kNeedsRead = false;
  uint64_t result = 0;
  uint64_t saved = 0;
  void Positional(const CrackerArray& a, Position b, Position e) {
    (void)a;
    result += e - b;
  }
  void Filtered(const CrackerArray& a, Position b, Position e,
                const ValueRange& r) {
    result += a.ScanCountRange(b, e, r.lo, r.hi);
  }
  void PositionalOpt(const CrackerArray& a, Position b, Position e) {
    Positional(a, b, e);
  }
  void FilteredOpt(const CrackerArray& a, Position b, Position e,
                   const ValueRange& r) {
    result += optkern::CountFiltered(a, b, e, r);
  }
  void Checkpoint() { saved = result; }
  void Rollback() { result = saved; }
};

struct SumAggregator {
  static constexpr bool kNeedsRead = true;
  int64_t result = 0;
  int64_t saved = 0;
  void Positional(const CrackerArray& a, Position b, Position e) {
    result += a.PositionalSumRange(b, e);
  }
  void Filtered(const CrackerArray& a, Position b, Position e,
                const ValueRange& r) {
    result += a.ScanSumRange(b, e, r.lo, r.hi);
  }
  void PositionalOpt(const CrackerArray& a, Position b, Position e) {
    result += optkern::SumPositional(a, b, e);
  }
  void FilteredOpt(const CrackerArray& a, Position b, Position e,
                   const ValueRange& r) {
    result += optkern::SumFiltered(a, b, e, r);
  }
  void Checkpoint() { saved = result; }
  void Rollback() { result = saved; }
};

struct RowIdAggregator {
  static constexpr bool kNeedsRead = true;
  std::vector<RowId>* out;
  size_t saved = 0;
  void Positional(const CrackerArray& a, Position b, Position e) {
    a.CollectRowIds(b, e, out);
  }
  void Filtered(const CrackerArray& a, Position b, Position e,
                const ValueRange& r) {
    a.CollectRowIdsFiltered(b, e, r, out);
  }
  void PositionalOpt(const CrackerArray& a, Position b, Position e) {
    optkern::CollectRowIds(a, b, e, out);
  }
  void FilteredOpt(const CrackerArray& a, Position b, Position e,
                   const ValueRange& r) {
    optkern::CollectRowIdsFiltered(a, b, e, r, out);
  }
  void Checkpoint() { saved = out->size(); }
  void Rollback() { out->resize(saved); }
};

struct MinMaxAggregator {
  static constexpr bool kNeedsRead = true;
  MinMaxAccumulator acc;
  MinMaxAccumulator saved;
  void Positional(const CrackerArray& a, Position b, Position e) {
    Value lo;
    Value hi;
    a.MinMax(b, e, &lo, &hi);
    acc.Feed(lo, hi);
  }
  void Filtered(const CrackerArray& a, Position b, Position e,
                const ValueRange& r) {
    Value lo;
    Value hi;
    if (a.MinMaxFiltered(b, e, r, &lo, &hi)) acc.Feed(lo, hi);
  }
  void PositionalOpt(const CrackerArray& a, Position b, Position e) {
    Value lo;
    Value hi;
    optkern::MinMaxPositional(a, b, e, &lo, &hi);
    acc.Feed(lo, hi);
  }
  void FilteredOpt(const CrackerArray& a, Position b, Position e,
                   const ValueRange& r) {
    Value lo;
    Value hi;
    if (optkern::MinMaxFiltered(a, b, e, r, &lo, &hi)) acc.Feed(lo, hi);
  }
  void Checkpoint() { saved = acc; }
  void Rollback() { acc = saved; }
};

struct Region {
  Position begin;
  Position end;
  bool filtered;
};

/// Process-wide pool for parallel cracks of indexes that were not handed an
/// explicit pool. Null on single-core machines, where chunking would only
/// add dispatch overhead; created on first use and shared by every index so
/// the thread population stays bounded regardless of index count.
ThreadPool* SharedCrackPool() {
  static ThreadPool* pool = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw <= 1) return static_cast<ThreadPool*>(nullptr);
    static ThreadPool p(hw);
    return &p;
  }();
  return pool;
}

}  // namespace

CrackingIndex::CrackingIndex(const Column* column, CrackingOptions opts)
    : column_(column),
      opts_(std::move(opts)),
      policy_(opts_.strategy, opts_.sort_piece_threshold,
              opts_.min_piece_size),
      decision_(opts_.crack_policy, opts_.policy_min_piece,
                opts_.policy_seed) {}

ThreadPool* CrackingIndex::CrackPool() const {
  if (opts_.parallel_crack_min_piece == 0) return nullptr;
  return opts_.pool != nullptr ? opts_.pool : SharedCrackPool();
}

Position CrackingIndex::CrackRange(Position begin, Position end, Value pivot) {
  ThreadPool* pool = CrackPool();
  if (pool == nullptr || end - begin < opts_.parallel_crack_min_piece) {
    return array_->CrackTwo(begin, end, pivot);
  }
  const size_t chunks = opts_.parallel_crack_chunks != 0
                            ? opts_.parallel_crack_chunks
                            : pool->num_threads() + 1;
  ParallelCrackStats stats;
  const Position pos =
      ParallelCrackTwo(array_.get(), begin, end, pivot, pool, chunks, &stats);
  if (stats.chunks > 0) {
    latch_stats_.RecordParallelCrack(stats.chunks, stats.merge_ns);
  }
  return pos;
}

std::pair<Position, Position> CrackingIndex::CrackRangeThree(Position begin,
                                                             Position end,
                                                             Value lo,
                                                             Value hi) {
  ThreadPool* pool = CrackPool();
  if (pool == nullptr || end - begin < opts_.parallel_crack_min_piece) {
    return array_->CrackThree(begin, end, lo, hi);
  }
  const size_t chunks = opts_.parallel_crack_chunks != 0
                            ? opts_.parallel_crack_chunks
                            : pool->num_threads() + 1;
  ParallelCrackStats stats;
  const auto pp = ParallelCrackThree(array_.get(), begin, end, lo, hi, pool,
                                     chunks, &stats);
  if (stats.chunks > 0) {
    latch_stats_.RecordParallelCrack(stats.chunks, stats.merge_ns);
  }
  return pp;
}

void CrackingIndex::SortCoarseSubRanges(
    Position begin, Position end, const std::map<Value, Position>& cracks,
    std::vector<std::pair<Position, Position>>* out) {
  if (opts_.min_piece_size == 0) return;
  Position prev = begin;
  auto consider = [&](Position b, Position e) {
    if (b >= e || e - b > opts_.min_piece_size) return;
    array_->SortRange(b, e);
    out->emplace_back(b, e);
    latch_stats_.RecordCoarseSortHit();
  };
  // Crack positions ascend with their values, so this walks the
  // crack-delimited sub-ranges of [begin, end) left to right.
  for (const auto& [cv, cp] : cracks) {
    consider(prev, cp);
    prev = cp;
  }
  consider(prev, end);
}

void CrackingIndex::EnsureInitialized(QueryContext* ctx) {
  if (initialized_.load(std::memory_order_acquire)) return;
  const int64_t wait_start = NowNanos();
  std::unique_lock<std::shared_mutex> lk(structure_mu_);
  if (initialized_.load(std::memory_order_relaxed)) {
    // Another query built the index while we blocked; that blocking is
    // genuine concurrency wait (the "first query latches the complete
    // column" effect of Figure 15).
    ctx->stats.wait_ns += NowNanos() - wait_start;
    return;
  }
  ScopedTimer init_timer(&ctx->stats.init_ns);
  array_ = std::make_unique<CrackerArray>(*column_, opts_.layout,
                                          opts_.kernel_tier);
  Value lo = 0;
  Value hi = 0;
  if (array_->size() > 0) {
    array_->MinMax(0, array_->size(), &lo, &hi);
  }
  domain_lo_ = lo;
  domain_hi_ = hi + 1;
  pieces_ = std::make_unique<PieceMap>(array_->size(), domain_lo_, domain_hi_,
                                       opts_.scheduling);
  initialized_.store(true, std::memory_order_release);
}

std::shared_ptr<Piece> CrackingIndex::PieceForValueLocked(Value v) const {
  AvlTree::Entry e;
  const Position begin = avl_.Floor(v, &e) ? e.pos : 0;
  auto piece = pieces_->FindByBegin(begin);
  if (piece == nullptr) piece = pieces_->FindByPosition(begin);
  return piece;
}

void CrackingIndex::PublishCrackLocked(Value v, Position pos) {
  if (!avl_.Insert(v, pos)) return;  // crack already known; positions final
  const size_t n = array_->size();
  if (n == 0) return;
  if (pos >= n) {
    auto last = pieces_->FindByPosition(n - 1);
    pieces_->Split(last, last->end, v);
    return;
  }
  auto piece = pieces_->FindByPosition(pos);
  pieces_->Split(piece, pos, v);
}

bool CrackingIndex::UserLockConflict(QueryContext* ctx) const {
  if (opts_.lock_manager == nullptr) return false;
  return opts_.lock_manager->HasConflicting(opts_.lock_resource, LockMode::kX,
                                            ctx->txn_id);
}

CrackingIndex::CrackOutcome CrackingIndex::CrackPieceLocked(
    const std::shared_ptr<Piece>& piece, Value v,
    const RefinementDirective& directive, QueryContext* ctx) {
  // The caller holds the piece's write latch (piece mode) or is the only
  // writer (column/none mode): begin/end are stable. Value bounds are read
  // under the structure latch; neighbor cracks can only tighten them toward
  // the actual content afterwards, so the snapshot below is conservative.
  PieceSnapshot snap;
  {
    MaybeSharedLock sl(&structure_mu_,
                       opts_.mode != ConcurrencyMode::kNone);
    snap.begin = piece->begin;
    snap.end = piece->end;
    snap.lo_value = piece->lo_value;
    snap.hi_value = piece->hi_value;
    snap.sorted = piece->sorted;
  }

  // Open the seqlock odd window before the first data movement. The
  // publication below also changes the piece's extent, and extent changes
  // must be inside the window too — otherwise an optimistic reader could
  // pair a stale extent with an unchanged version and stray into a
  // successor piece whose cracks this piece's version does not observe.
  // The sorted fast path moves no data but still publishes (extent change),
  // so it bumps as well.
  const bool bump_version = OptimisticMode();
  if (bump_version) piece->version.fetch_add(1, std::memory_order_acq_rel);

  // Cracks produced in this step: (value, position), published atomically.
  // Publication safety: the target bound v satisfies v in
  // [snap.lo_value, snap.hi_value); extra cracks are filtered to the open
  // interval (snap.lo_value, snap.hi_value). Any crack value in that
  // interval can never be contradicted by concurrent neighbor cracks, whose
  // pivots always stay outside the interval.
  std::map<Value, Position> local;
  bool mark_sorted = false;
  CrackOutcome out;
  // Sub-ranges sorted under the coarse floor; the matching pieces are
  // flagged sorted during publication, once their bounds became piece
  // boundaries.
  std::vector<std::pair<Position, Position>> coarse_sorted;
  const bool coarse_piece =
      opts_.min_piece_size > 0 &&
      snap.end - snap.begin <= opts_.min_piece_size;

  if (snap.sorted) {
    out.pos = array_->LowerBoundInSorted(snap.begin, snap.end, v);
    // A coarse piece answers by binary search and publishes nothing: a
    // crack would split it below the floor and grow the piece map for no
    // scan saving (the position is exact and stable either way, since a
    // sorted piece's data never moves again).
    if (!coarse_piece) local.emplace(v, out.pos);
  } else if (directive.sort_piece) {
    ScopedTimer t(&ctx->stats.crack_ns);
    array_->SortRange(snap.begin, snap.end);
    out.pos = array_->LowerBoundInSorted(snap.begin, snap.end, v);
    if (!directive.coarse) local.emplace(v, out.pos);
    if (directive.coarse) latch_stats_.RecordCoarseSortHit();
    mark_sorted = true;
    ++ctx->stats.cracks;
  } else {
    ScopedTimer t(&ctx->stats.crack_ns);
    Position lo_pos = snap.begin;
    Position hi_pos = snap.end;
    // Crack-policy pivots (crack_policy.h): each proposed data-driven
    // pivot is filtered against the publication-safety invariant above
    // (open piece value interval, not the bound itself), cracked through
    // the same CrackRange dispatch as the bound — so the parallel path
    // applies — and narrows the sub-range still holding v.
    Value pv = 0;
    for (size_t step = 0;
         decision_.NextPivot(*array_, lo_pos, hi_pos, v, step, &pv); ++step) {
      if (pv == v || pv <= snap.lo_value || pv >= snap.hi_value) break;
      const Position pp = CrackRange(lo_pos, hi_pos, pv);
      // A repeated pivot value (possible on duplicate-heavy data) cannot
      // narrow the range further; stop rather than spin.
      if (!local.emplace(pv, pp).second) break;
      ++ctx->stats.cracks;
      if (v < pv) {
        hi_pos = pp;
      } else {
        lo_pos = pp;
      }
    }
    // The bound crack — skipped only when the policy answers by scan
    // (kMDD1R above its floor) AND a pivot crack actually landed; without
    // that fallback an all-equal or bound-hugging piece would never shrink.
    if (decision_.CracksBound(snap.end - snap.begin) || local.empty()) {
      out.pos = CrackRange(lo_pos, hi_pos, v);
      local.emplace(v, out.pos);
      ++ctx->stats.cracks;
    } else {
      out.exact = false;
      out.scan_begin = lo_pos;
      out.scan_end = hi_pos;
    }

    if (out.exact && opts_.group_crack && PieceLatchedMode()) {
      // Section 7 "Dynamic Algorithms": refine for the queries queued on
      // this piece in the same step, so they find their crack ready.
      std::vector<Value> pending = piece->latch.PendingWriterBounds();
      std::sort(pending.begin(), pending.end());
      pending.erase(std::unique(pending.begin(), pending.end()),
                    pending.end());
      size_t done = 0;
      for (Value w : pending) {
        if (done >= opts_.group_crack_max) break;
        if (w <= snap.lo_value || w >= snap.hi_value) continue;
        if (local.count(w) > 0) continue;
        // Narrow to the sub-range between the cracks already made.
        Position wb = snap.begin;
        Position we = snap.end;
        auto it = local.lower_bound(w);
        if (it != local.end()) we = it->second;
        if (it != local.begin()) wb = std::prev(it)->second;
        const Position wpos = CrackRange(wb, we, w);
        local.emplace(w, wpos);
        ++ctx->stats.cracks;
        ++done;
      }
    }

    // Coarse floor: sub-ranges this step pushed to the floor are sorted
    // right away, inside the same odd window, so the pieces they become are
    // born sorted and never reorganized or split again.
    SortCoarseSubRanges(snap.begin, snap.end, local, &coarse_sorted);
  }

  {
    MaybeUniqueLock xl(&structure_mu_, opts_.mode != ConcurrencyMode::kNone);
    if (mark_sorted) piece->sorted = true;  // before splits: halves inherit
    for (const auto& [cv, cp] : local) PublishCrackLocked(cv, cp);
    // The eagerly sorted sub-ranges are now pieces of exactly those bounds
    // (their delimiting cracks were just published); flag them. A bound
    // mismatch means a crack at the array edge collapsed into a boundary
    // tightening — then the range is a strict sub-range of a piece, still
    // physically sorted but not flaggable, which only costs future sorts.
    for (const auto& [sb, se] : coarse_sorted) {
      auto sp = pieces_->FindByBegin(sb);
      if (sp != nullptr && sp->end == se) sp->sorted = true;
    }
  }
  // Close the odd window only after publication: pieces split off above are
  // born stable (their data moved before they became findable), and this
  // piece's extent is final again.
  if (bump_version) piece->version.fetch_add(1, std::memory_order_release);
  return out;
}

CrackingIndex::BoundResult CrackingIndex::ResolveBound(Value v,
                                                       QueryContext* ctx,
                                                       Attempt attempt,
                                                       bool refine_allowed) {
  const size_t n = array_->size();
  const bool latched_mode = opts_.mode != ConcurrencyMode::kNone;
  LatchAcquireContext lat = ctx->LatchCtx(&latch_stats_);

  for (;;) {
    std::shared_ptr<Piece> piece;
    size_t piece_size = 0;
    {
      MaybeSharedLock sl(&structure_mu_, latched_mode);
      if (v <= domain_lo_) {
        BoundResult r;
        r.exact = true;
        r.pos = 0;
        return r;
      }
      if (v >= domain_hi_) {
        BoundResult r;
        r.exact = true;
        r.pos = n;
        return r;
      }
      Position p;
      if (avl_.Find(v, &p)) {
        BoundResult r;
        r.exact = true;
        r.pos = p;
        return r;
      }
      piece = PieceForValueLocked(v);
      if (piece->sorted) {
        // Sorted-piece fast path: binary search answers the bound exactly
        // with no write latch and no publication. Safe under the shared
        // structure latch alone: `sorted` is set exclusively, after the
        // final data movement, so an observed flag means the data is
        // frozen. Globally correct: every position before piece->begin
        // holds a value < lo_value <= v's floor crack, every position at or
        // past end holds one >= hi_value > all piece values.
        BoundResult r;
        r.exact = true;
        r.pos = array_->LowerBoundInSorted(piece->begin, piece->end, v);
        return r;
      }
      piece_size = piece->end - piece->begin;
      if (!refine_allowed) {
        ctx->stats.refinement_skipped = true;
        BoundResult r;
        r.scan_begin = piece->begin;
        r.scan_end = piece->end;
        return r;
      }
    }

    const RefinementDirective directive = policy_.OnCrack(piece_size);
    const bool use_try = attempt != Attempt::kBlocking || directive.try_only;

    if (PieceLatchedMode()) {
      if (use_try) {
        if (!piece->latch.TryWriteLock(lat)) {
          policy_.OnConflict();
          ++ctx->stats.conflicts;
          if (attempt == Attempt::kTryThenFail) {
            BoundResult r;
            r.latch_busy = true;
            return r;
          }
          // Conflict avoidance (Section 3.3): forgo the refinement and
          // answer by scanning the piece extent as of now.
          ctx->stats.refinement_skipped = true;
          MaybeSharedLock sl(&structure_mu_, latched_mode);
          BoundResult r;
          r.scan_begin = piece->begin;
          r.scan_end = piece->end;
          return r;
        }
      } else {
        piece->latch.WriteLock(v, lat);
      }

      // Revalidate after acquisition (Figure 10): while we waited, earlier
      // queries may have cracked this piece; the crack we want may now
      // exist, or our bound may have moved to a successor piece.
      bool have_exact = false;
      Position exact_pos = 0;
      bool still_ours = true;
      {
        MaybeSharedLock sl(&structure_mu_, latched_mode);
        Position p;
        if (avl_.Find(v, &p)) {
          have_exact = true;
          exact_pos = p;
        } else if (PieceForValueLocked(v).get() != piece.get()) {
          still_ours = false;
        }
      }
      if (have_exact) {
        piece->latch.WriteUnlock();
        BoundResult r;
        r.exact = true;
        r.pos = exact_pos;
        return r;
      }
      if (!still_ours) {
        piece->latch.WriteUnlock();
        continue;  // walk to the piece now containing v and retry
      }
      const CrackOutcome oc = CrackPieceLocked(piece, v, directive, ctx);
      piece->latch.WriteUnlock();
      policy_.OnSuccess();
      BoundResult r;
      r.exact = oc.exact;
      r.pos = oc.pos;
      r.scan_begin = oc.scan_begin;
      r.scan_end = oc.scan_end;
      return r;
    }

    // Column-latch / no-CC modes: the caller serializes writers (column
    // write latch or single-threaded execution), so crack directly.
    const CrackOutcome oc = CrackPieceLocked(piece, v, directive, ctx);
    BoundResult r;
    r.exact = oc.exact;
    r.pos = oc.pos;
    r.scan_begin = oc.scan_begin;
    r.scan_end = oc.scan_end;
    return r;
  }
}

bool CrackingIndex::TryCrackInThree(const ValueRange& range, QueryContext* ctx,
                                    BoundResult* lo, BoundResult* hi) {
  const bool latched_mode = opts_.mode != ConcurrencyMode::kNone;
  LatchAcquireContext lat = ctx->LatchCtx(&latch_stats_);

  std::shared_ptr<Piece> piece;
  size_t piece_size = 0;
  {
    MaybeSharedLock sl(&structure_mu_, latched_mode);
    if (range.lo <= domain_lo_ || range.hi >= domain_hi_) return false;
    Position p;
    if (avl_.Find(range.lo, &p) || avl_.Find(range.hi, &p)) return false;
    auto pl = PieceForValueLocked(range.lo);
    auto ph = PieceForValueLocked(range.hi);
    if (pl.get() != ph.get()) return false;
    // Sorted pieces take the per-bound path: its fast path answers both
    // bounds by binary search without latching or publishing.
    if (pl->sorted) return false;
    piece = pl;
    piece_size = piece->end - piece->begin;
  }
  const RefinementDirective directive = policy_.OnCrack(piece_size);
  if (directive.try_only || directive.sort_piece) {
    return false;  // lazy/active handling goes through per-bound resolution
  }

  if (PieceLatchedMode()) {
    piece->latch.WriteLock(range.lo, lat);
  }

  PieceSnapshot snap;
  bool valid = true;
  {
    MaybeSharedLock sl(&structure_mu_, latched_mode);
    Position p;
    if (avl_.Find(range.lo, &p) || avl_.Find(range.hi, &p) ||
        PieceForValueLocked(range.lo).get() != piece.get() ||
        PieceForValueLocked(range.hi).get() != piece.get() ||
        piece->sorted) {
      // `piece->sorted` covers the race where the piece was sorted while we
      // waited for its write latch: cracks must not target sorted pieces
      // (a coarse piece would be split below the floor); the per-bound
      // sorted fast path answers instead.
      valid = false;
    } else {
      snap.begin = piece->begin;
      snap.end = piece->end;
      snap.lo_value = piece->lo_value;
      snap.hi_value = piece->hi_value;
      snap.sorted = piece->sorted;
    }
  }
  if (!valid) {
    if (PieceLatchedMode()) piece->latch.WriteUnlock();
    return false;
  }

  // Seqlock odd window around data movement and extent publication (same
  // argument as in CrackPieceLocked).
  const bool bump_version = OptimisticMode();
  if (bump_version) piece->version.fetch_add(1, std::memory_order_acq_rel);

  Position p1 = 0;
  Position p2 = 0;
  bool exact = true;
  Position lo_pos = snap.begin;
  Position hi_pos = snap.end;
  std::map<Value, Position> cracks;
  std::vector<std::pair<Position, Position>> coarse_sorted;
  {
    ScopedTimer t(&ctx->stats.crack_ns);
    // Crack-policy pivots narrow toward the range from outside; a pivot
    // landing strictly inside (range.lo, range.hi) cannot narrow further
    // without separating the bounds, so it ends the recursion. When the
    // step finishes with the three-way bound crack below, such a pivot must
    // not be cracked at all — the three-way pass would move elements back
    // across it, contradicting the published position. Only kMDD1R (which
    // skips the bound crack and answers by scan) keeps an inside pivot.
    const bool bound_crack = decision_.CracksBound(snap.end - snap.begin);
    Value pv = 0;
    for (size_t step = 0;
         decision_.NextPivot(*array_, lo_pos, hi_pos, range.lo, step, &pv);
         ++step) {
      if (pv <= snap.lo_value || pv >= snap.hi_value) break;
      if (pv == range.lo || pv == range.hi) break;
      const bool inside = pv > range.lo && pv < range.hi;
      if (inside && bound_crack) break;
      const Position pp = CrackRange(lo_pos, hi_pos, pv);
      if (!cracks.emplace(pv, pp).second) break;
      ++ctx->stats.cracks;
      if (pv < range.lo) {
        lo_pos = pp;
      } else if (pv > range.hi) {
        hi_pos = pp;
      } else {
        break;  // kMDD1R's single pivot landed inside the target range
      }
    }
    if (bound_crack || cracks.empty()) {
      std::tie(p1, p2) = CrackRangeThree(lo_pos, hi_pos, range.lo, range.hi);
      cracks.emplace(range.lo, p1);
      cracks.emplace(range.hi, p2);
      ctx->stats.cracks += 2;
    } else {
      // kMDD1R: the random pivot is the step's only crack; both bounds
      // answer by a filtered scan of [lo_pos, hi_pos), a region delimited
      // by published cracks (or the piece's immutable boundaries) whose
      // value set is therefore fixed forever.
      exact = false;
    }
    SortCoarseSubRanges(snap.begin, snap.end, cracks, &coarse_sorted);
  }
  {
    MaybeUniqueLock xl(&structure_mu_, latched_mode);
    for (const auto& [cv, cp] : cracks) PublishCrackLocked(cv, cp);
    for (const auto& [sb, se] : coarse_sorted) {
      auto sp = pieces_->FindByBegin(sb);
      if (sp != nullptr && sp->end == se) sp->sorted = true;
    }
  }
  if (bump_version) piece->version.fetch_add(1, std::memory_order_release);
  if (PieceLatchedMode()) piece->latch.WriteUnlock();
  policy_.OnSuccess();

  if (exact) {
    lo->exact = true;
    lo->pos = p1;
    hi->exact = true;
    hi->pos = p2;
  } else {
    lo->exact = false;
    lo->scan_begin = lo_pos;
    lo->scan_end = hi_pos;
    hi->exact = false;
    hi->scan_begin = lo_pos;
    hi->scan_end = hi_pos;
  }
  return true;
}

void CrackingIndex::ResolveBounds(const ValueRange& range, QueryContext* ctx,
                                  bool refine_allowed, BoundResult* lo,
                                  BoundResult* hi) {
  if (!refine_allowed) {
    *lo = ResolveBound(range.lo, ctx, Attempt::kBlocking, false);
    *hi = ResolveBound(range.hi, ctx, Attempt::kBlocking, false);
    return;
  }
  if (opts_.use_crack_in_three && TryCrackInThree(range, ctx, lo, hi)) {
    return;
  }
  if (PieceLatchedMode() && opts_.swap_bound_on_conflict) {
    // Section 5.3 optimization: if the first bound's piece is busy, proceed
    // with the second bound first, then come back.
    BoundResult first =
        ResolveBound(range.lo, ctx, Attempt::kTryThenFail, true);
    if (first.latch_busy) {
      *hi = ResolveBound(range.hi, ctx, Attempt::kBlocking, true);
      *lo = ResolveBound(range.lo, ctx, Attempt::kBlocking, true);
    } else {
      *lo = first;
      *hi = ResolveBound(range.hi, ctx, Attempt::kBlocking, true);
    }
    return;
  }
  *lo = ResolveBound(range.lo, ctx, Attempt::kBlocking, true);
  *hi = ResolveBound(range.hi, ctx, Attempt::kBlocking, true);
}

bool CrackingIndex::UseOptimisticRead(Piece* piece) {
  if (opts_.mode == ConcurrencyMode::kOptimistic) return true;
  // kAdaptive: pieces whose measured retry rate crossed the threshold read
  // pessimistically, except for a periodic probe that lets them re-promote
  // once the cracking front has moved on.
  const int32_t c = piece->contention.load(std::memory_order_relaxed);
  if (!opts_.optimistic.Demoted(c)) return true;
  const uint32_t tick =
      piece->probe_ticks.fetch_add(1, std::memory_order_relaxed) + 1;
  return opts_.optimistic.ProbeNow(tick);
}

void CrackingIndex::NoteOptimisticSuccess(Piece* piece) {
  if (opts_.mode != ConcurrencyMode::kAdaptive) return;
  int32_t c = piece->contention.load(std::memory_order_relaxed);
  if (c <= 0) return;
  // Single-shot CAS: a lost race just delays the decay by one read.
  piece->contention.compare_exchange_weak(c, opts_.optimistic.AfterSuccess(c),
                                          std::memory_order_relaxed,
                                          std::memory_order_relaxed);
}

void CrackingIndex::NoteOptimisticFallback(Piece* piece) {
  if (opts_.mode != ConcurrencyMode::kAdaptive) return;
  int32_t c = piece->contention.load(std::memory_order_relaxed);
  piece->contention.compare_exchange_weak(c, opts_.optimistic.AfterFallback(c),
                                          std::memory_order_relaxed,
                                          std::memory_order_relaxed);
}

template <typename Aggregator>
void CrackingIndex::ProcessRegion(Position b, Position e, bool filtered,
                                  const ValueRange& filter, bool needs_guard,
                                  QueryContext* ctx, Aggregator* agg) {
  if (b >= e) return;
  if (!needs_guard) {
    ScopedTimer t(&ctx->stats.read_ns);
    if (filtered) {
      agg->Filtered(*array_, b, e, filter);
    } else {
      agg->Positional(*array_, b, e);
    }
    ++ctx->stats.pieces_touched;
    return;
  }
  const bool optimistic = OptimisticMode();
  const int max_retries = opts_.optimistic.max_retries;
  // Batched per region walk so the latch-free fast path pays one atomic
  // round into the global stats instead of one per piece.
  uint64_t opt_attempts = 0;
  uint64_t opt_retries = 0;
  uint64_t opt_fallbacks = 0;
  uint64_t lookups_snapshot = 0;
  uint64_t lookups_locked = 0;
  // Optimistic readers locate pieces through the latch-free published
  // snapshot of the piece map (piece_map.h), so the steady-state read path
  // acquires structure_mu_ zero times. A stale hit (the position moved past
  // the snapshot piece's current end) flips the rest of this walk to the
  // locked lookup: re-loading the same stale snapshot could spin, and one
  // region walk rarely outlives more than one split.
  bool use_snapshot = optimistic;
  LatchAcquireContext lat = ctx->LatchCtx(&latch_stats_);
  Position pos = b;
  while (pos < e) {
    std::shared_ptr<Piece> piece;
    if (use_snapshot) {
      piece = pieces_->AcquireSnapshot()->FindByPosition(pos);
      ++lookups_snapshot;
    } else {
      MaybeSharedLock sl(&structure_mu_, true);
      piece = pieces_->FindByPosition(pos);
      ++lookups_locked;
    }

    if (optimistic && UseOptimisticRead(piece.get())) {
      // Seqlock read (protocol in piece_map.h): version, then extent, then
      // data, then version again. An unchanged even version proves the
      // extent was stable and nothing in [pos, upto) moved during the read.
      bool accepted = false;
      bool stale_piece = false;
      int failures = 0;
      while (failures < max_retries) {
        const uint64_t v1 = piece->version.load(std::memory_order_acquire);
        if ((v1 & 1) != 0) {
          // A crack is reorganizing the piece right now: an attempt that
          // failed before any data was read. Counting it in both attempts
          // and retries keeps retries/attempts a true failure rate.
          ++failures;
          ++opt_attempts;
          ++opt_retries;
          std::this_thread::yield();
          continue;
        }
        const Position piece_end = piece->end.load(std::memory_order_acquire);
        if (piece_end <= pos) {
          // The piece split before we arrived; our position now belongs to
          // a successor. Not contention — re-resolve the piece.
          stale_piece = true;
          break;
        }
        const Position upto = std::min(piece_end, e);
        ++opt_attempts;
        agg->Checkpoint();
        {
          ScopedTimer t(&ctx->stats.read_ns);
          if (filtered) {
            agg->FilteredOpt(*array_, pos, upto, filter);
          } else {
            agg->PositionalOpt(*array_, pos, upto);
          }
        }
        std::atomic_thread_fence(std::memory_order_acquire);
        if (piece->version.load(std::memory_order_relaxed) == v1) {
          NoteOptimisticSuccess(piece.get());
          ++ctx->stats.pieces_touched;
          pos = upto;
          accepted = true;
          break;
        }
        // A crack raced the read: the aggregate may have seen a value
        // twice or not at all. Discard and retry.
        agg->Rollback();
        ++failures;
        ++opt_retries;
      }
      if (accepted) continue;
      if (stale_piece) {
        // The piece split before we arrived. With a snapshot lookup this
        // also means the snapshot itself is behind; finish the walk on the
        // locked path rather than risk re-reading the same stale view.
        use_snapshot = false;
        continue;  // re-lookup, no penalty
      }
      // Retry budget exhausted: a cracker is hammering this piece. Degrade
      // to the latched read so writers cannot livelock us.
      ++opt_fallbacks;
      NoteOptimisticFallback(piece.get());
    }

    piece->latch.ReadLock(lat);
    const Position piece_end = piece->end;  // stable under the read latch
    if (pos >= piece_end) {
      // The piece split between lookup and latch; look up again (and stop
      // trusting the snapshot, which is evidently behind).
      piece->latch.ReadUnlock();
      use_snapshot = false;
      continue;
    }
    const Position upto = std::min(piece_end, e);
    {
      ScopedTimer t(&ctx->stats.read_ns);
      if (filtered) {
        agg->Filtered(*array_, pos, upto, filter);
      } else {
        agg->Positional(*array_, pos, upto);
      }
    }
    piece->latch.ReadUnlock();
    ++ctx->stats.pieces_touched;
    pos = upto;
  }
  if (optimistic) {
    latch_stats_.RecordOptimisticReads(opt_attempts, opt_retries,
                                       opt_fallbacks);
  }
  if (lookups_snapshot + lookups_locked > 0) {
    latch_stats_.RecordPieceLookups(lookups_snapshot, lookups_locked);
  }
}

template <typename Aggregator>
Status CrackingIndex::ExecuteRange(const ValueRange& range, QueryContext* ctx,
                                   Aggregator* agg) {
  if (range.Empty()) return Status::OK();
  EnsureInitialized(ctx);
  const bool refine_allowed = !UserLockConflict(ctx);
  if (!refine_allowed) ctx->stats.refinement_skipped = true;
  LatchAcquireContext lat = ctx->LatchCtx(&latch_stats_);

  BoundResult lo;
  BoundResult hi;
  if (opts_.mode == ConcurrencyMode::kColumnLatch) {
    bool do_refine = refine_allowed;
    if (do_refine) {
      const RefinementDirective d = policy_.OnCrack(array_->size());
      if (d.try_only) {
        if (!column_latch_.TryWriteLock(lat)) {
          policy_.OnConflict();
          ++ctx->stats.conflicts;
          ctx->stats.refinement_skipped = true;
          do_refine = false;
        }
      } else {
        column_latch_.WriteLock(range.lo, lat);
      }
    }
    if (do_refine) {
      ResolveBounds(range, ctx, true, &lo, &hi);
      column_latch_.WriteUnlock();
      policy_.OnSuccess();
    } else {
      ResolveBounds(range, ctx, false, &lo, &hi);
    }
  } else {
    ResolveBounds(range, ctx, refine_allowed, &lo, &hi);
  }

  // Assemble up to three disjoint position regions in ascending order; a
  // running cursor prevents overlap when boundary-piece extents captured at
  // different moments intersect.
  Region regions[3];
  int num_regions = 0;
  Position cursor = 0;
  auto push = [&](Position rb, Position re, bool f) {
    rb = std::max(rb, cursor);
    if (rb >= re) return;
    regions[num_regions++] = Region{rb, re, f};
    cursor = re;
  };
  if (lo.exact && hi.exact) {
    push(lo.pos, hi.pos, false);
  } else if (!lo.exact && !hi.exact && lo.scan_begin == hi.scan_begin) {
    push(lo.scan_begin, std::max(lo.scan_end, hi.scan_end), true);
  } else {
    if (!lo.exact) push(lo.scan_begin, lo.scan_end, true);
    const Position core_b = lo.exact ? lo.pos : lo.scan_end;
    const Position core_e = hi.exact ? hi.pos : hi.scan_begin;
    push(core_b, core_e, false);
    if (!hi.exact) push(hi.scan_begin, hi.scan_end, true);
  }

  bool any_filtered = false;
  for (int i = 0; i < num_regions; ++i) any_filtered |= regions[i].filtered;

  if (opts_.mode == ConcurrencyMode::kColumnLatch) {
    const bool need_latch = Aggregator::kNeedsRead || any_filtered;
    if (need_latch) column_latch_.ReadLock(lat);
    for (int i = 0; i < num_regions; ++i) {
      ScopedTimer t(&ctx->stats.read_ns);
      if (regions[i].filtered) {
        agg->Filtered(*array_, regions[i].begin, regions[i].end, range);
      } else {
        agg->Positional(*array_, regions[i].begin, regions[i].end);
      }
      ++ctx->stats.pieces_touched;
    }
    if (need_latch) column_latch_.ReadUnlock();
    return Status::OK();
  }

  for (int i = 0; i < num_regions; ++i) {
    // Data-touching reads need a guard in every piece-latched mode; the
    // optimistic modes then satisfy it latch-free inside ProcessRegion.
    const bool needs_guard = PieceLatchedMode() &&
                             (Aggregator::kNeedsRead || regions[i].filtered);
    ProcessRegion(regions[i].begin, regions[i].end, regions[i].filtered,
                  range, needs_guard, ctx, agg);
  }
  return Status::OK();
}

Status CrackingIndex::ExecuteImpl(const Query& query, QueryContext* ctx,
                                  QueryResult* result) {
  switch (query.kind) {
    case QueryKind::kCount: {
      CountAggregator agg;
      Status s = ExecuteRange(query.range, ctx, &agg);
      result->count = agg.result;
      return s;
    }
    case QueryKind::kSum: {
      SumAggregator agg;
      Status s = ExecuteRange(query.range, ctx, &agg);
      result->sum = agg.result;
      return s;
    }
    case QueryKind::kRowIds: {
      RowIdAggregator agg{&result->row_ids};
      return ExecuteRange(query.range, ctx, &agg);
    }
    case QueryKind::kMinMax: {
      MinMaxAggregator agg;
      Status s = ExecuteRange(query.range, ctx, &agg);
      agg.acc.Store(result);
      return s;
    }
    case QueryKind::kSumOther:
      return Status::NotSupported("crack holds no second column");
  }
  return Status::InvalidArgument("unknown query kind");
}

size_t CrackingIndex::NumPieces() const {
  if (!initialized_.load(std::memory_order_acquire)) return 0;
  std::shared_lock<std::shared_mutex> sl(structure_mu_);
  return pieces_->num_pieces();
}

size_t CrackingIndex::NumCracks() const {
  if (!initialized_.load(std::memory_order_acquire)) return 0;
  std::shared_lock<std::shared_mutex> sl(structure_mu_);
  return avl_.size();
}

std::vector<size_t> CrackingIndex::PieceSizes() const {
  std::vector<size_t> sizes;
  if (!initialized_.load(std::memory_order_acquire)) return sizes;
  std::shared_lock<std::shared_mutex> sl(structure_mu_);
  pieces_->ForEach([&sizes](const Piece& p) { sizes.push_back(p.size()); });
  return sizes;
}

bool CrackingIndex::ValidateStructure() const {
  if (!initialized_.load(std::memory_order_acquire)) return true;
  std::shared_lock<std::shared_mutex> sl(structure_mu_);
  if (!avl_.Validate()) return false;
  if (!pieces_->Validate()) return false;
  // Every crack position must delimit correctly: elements before < value,
  // elements at/after >= value. Verified via piece content bounds.
  bool ok = true;
  pieces_->ForEach([&](const Piece& p) {
    Value prev = p.lo_value;
    for (Position i = p.begin; i < p.end && ok; ++i) {
      const Value v = array_->ValueAt(i);
      if (v < p.lo_value || v >= p.hi_value) ok = false;
      if (p.sorted) {
        if (v < prev) ok = false;
        prev = v;
      }
    }
  });
  if (!ok) return false;
  // AVL entries must agree with piece boundaries.
  std::vector<AvlTree::Entry> cracks;
  avl_.InOrder(&cracks);
  for (const auto& c : cracks) {
    for (Position i = 0; i < c.pos; ++i) {
      if (array_->ValueAt(i) >= c.value) return false;
    }
    for (Position i = c.pos; i < array_->size(); ++i) {
      if (array_->ValueAt(i) < c.value) return false;
    }
  }
  return true;
}

Status CrackingIndex::ExportAdaptedState(AdaptedState* out) const {
  out->values.clear();
  out->row_ids.clear();
  out->pieces.clear();
  if (!initialized_.load(std::memory_order_acquire)) {
    // No query has touched the index: nothing adapted to save. The caller
    // records "no adapted state" and recovery starts cold, as the original
    // run would have.
    return Status::OK();
  }
  const size_t n = [&] {
    std::shared_lock<std::shared_mutex> sl(structure_mu_);
    return array_->size();
  }();
  out->values.reserve(n);
  out->row_ids.reserve(n);

  LatchAcquireContext lat{};
  const bool column_mode = opts_.mode == ConcurrencyMode::kColumnLatch;
  if (column_mode) column_latch_.ReadLock(lat);
  const bool piece_latched = PieceLatchedMode();
  Position pos = 0;
  while (pos < n) {
    std::shared_ptr<Piece> piece;
    {
      // Shared structure latch for the lookup only — piece latches are
      // never requested under structure_mu_ (the global latch order).
      MaybeSharedLock sl(&structure_mu_,
                         opts_.mode != ConcurrencyMode::kNone);
      piece = pieces_->FindByPosition(pos);
    }
    if (piece_latched) piece->latch.ReadLock(lat);
    const Position piece_end = piece->end.load(std::memory_order_acquire);
    if (pos >= piece_end) {
      // The piece split between lookup and latch; pos belongs to a
      // successor carved off the tail. Re-resolve.
      if (piece_latched) piece->latch.ReadUnlock();
      continue;
    }
    // Under the read latch extent, bounds, sorted flag, and data are one
    // consistent view. pos always equals piece->begin here: begins are
    // immutable, the walk starts at 0, and each step advances to the
    // captured end — which is the begin of the next piece at capture time
    // and, begins being immutable, forever after (a later split of that
    // successor only adds more begins to its right).
    AdaptedPiece ap;
    ap.begin = piece->begin;
    ap.end = piece_end;
    ap.lo_value = piece->lo_value;
    ap.hi_value = piece->hi_value;
    ap.sorted = piece->sorted;
    for (Position i = pos; i < piece_end; ++i) {
      out->values.push_back(array_->ValueAt(i));
      out->row_ids.push_back(array_->RowIdAt(i));
    }
    if (piece_latched) piece->latch.ReadUnlock();
    out->pieces.push_back(ap);
    pos = piece_end;
  }
  if (column_mode) column_latch_.ReadUnlock();
  return Status::OK();
}

Status CrackingIndex::RestoreAdaptedState(const AdaptedState& state) {
  if (state.pieces.empty()) return Status::OK();  // nothing was adapted
  const size_t n = column_->size();
  if (state.values.size() != n || state.row_ids.size() != n) {
    return Status::InvalidArgument("adapted image size mismatch");
  }
  Position expect = 0;
  for (const auto& p : state.pieces) {
    if (p.begin != expect || p.end <= p.begin || p.end > n) {
      return Status::InvalidArgument("adapted image tiling is broken");
    }
    expect = p.end;
  }
  if (expect != n) {
    return Status::InvalidArgument("adapted image tiling is incomplete");
  }
  std::unique_lock<std::shared_mutex> lk(structure_mu_);
  if (initialized_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("index already initialized");
  }
  std::vector<CrackerEntry> entries(n);
  for (size_t i = 0; i < n; ++i) {
    entries[i] = CrackerEntry{state.row_ids[i], state.values[i]};
  }
  array_ = std::make_unique<CrackerArray>(std::move(entries), opts_.layout,
                                          opts_.kernel_tier);
  // Same column, same values: MinMax reproduces the original domain.
  Value lo = 0;
  Value hi = 0;
  if (n > 0) array_->MinMax(0, n, &lo, &hi);
  domain_lo_ = lo;
  domain_hi_ = hi + 1;
  pieces_ = std::make_unique<PieceMap>(n, domain_lo_, domain_hi_,
                                       opts_.scheduling);
  // Re-publish each interior boundary as a crack: begins strictly ascend
  // and each piece's lo_value is the pivot that originally cut it, so the
  // splits replay left to right against the always-rightmost piece.
  for (size_t i = 1; i < state.pieces.size(); ++i) {
    PublishCrackLocked(state.pieces[i].lo_value, state.pieces[i].begin);
  }
  // Overwrite bounds and sorted flags with the captured ones: edge pieces
  // may carry tighter bounds than the splits imply (a crack at position 0
  // or n raises/lowers a bound without adding a piece).
  for (const auto& p : state.pieces) {
    auto piece = pieces_->FindByBegin(p.begin);
    if (piece == nullptr ||
        piece->end.load(std::memory_order_relaxed) != p.end) {
      return Status::InvalidArgument("adapted image replay diverged");
    }
    piece->lo_value = p.lo_value;
    piece->hi_value = p.hi_value;
    piece->sorted = p.sorted;
  }
  // Boundary cracks that moved an edge piece's bound live in the AVL
  // table of contents without a piece split; re-create them so future
  // bound resolutions keep finding them.
  const auto& first = state.pieces.front();
  const auto& last = state.pieces.back();
  if (first.lo_value > domain_lo_) avl_.Insert(first.lo_value, 0);
  if (last.hi_value < domain_hi_) avl_.Insert(last.hi_value, n);
  initialized_.store(true, std::memory_order_release);
  return Status::OK();
}

}  // namespace adaptidx
