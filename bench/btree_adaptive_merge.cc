/// \file Section 4 experiment: adaptive merging on a partitioned B-tree.
/// The first query loads sorted runs as partitions of a single B-tree;
/// subsequent queries merge their key ranges into the final partition via
/// instantly-committed system transactions, ghost-deleting from the run
/// partitions. Reports the adaptive decay of merge work and the partition
/// count converging to 1.

#include <cstdio>

#include "bench_common.h"
#include "btree/btree_index.h"
#include "util/stopwatch.h"

namespace adaptidx {
namespace bench {
namespace {

void Run() {
  const size_t rows = EnvSize("AI_BENCH_BTREE_ROWS", 262144);
  const size_t num_queries = EnvSize("AI_BENCH_BTREE_QUERIES", 256);
  PrintHeader("Section 4: adaptive merging in a partitioned B-tree",
              "rows=" + std::to_string(rows) +
                  " queries=" + std::to_string(num_queries) +
                  " selectivity=1% type=Q1(count) clients=1");

  Column column = MakeUniqueRandomColumn(rows);
  WorkloadGenerator gen(0, static_cast<Value>(rows));
  WorkloadOptions wopts;
  wopts.num_queries = num_queries;
  wopts.selectivity = 0.01;
  wopts.type = QueryType::kCount;
  wopts.seed = 23;
  const auto queries = gen.Generate(wopts);

  BTreeMergeOptions opts;
  opts.run_size = rows / 16 + 1;
  BTreeMergeIndex index(&column, opts);

  std::printf("\n%-8s %14s %14s %14s %10s\n", "query#", "response (ms)",
              "merge (ms)", "partitions", "ghosts");
  size_t step = 1;
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryContext ctx;
    uint64_t count = 0;
    StopWatch sw;
    (void)index.RangeCount(ValueRange{queries[i].lo, queries[i].hi}, &ctx,
                           &count);
    const double ms = sw.ElapsedMillis();
    if (i % step == 0 || i + 1 == queries.size()) {
      std::printf("%-8zu %14.3f %14.3f %14zu %10zu\n", i + 1, ms,
                  static_cast<double>(ctx.stats.crack_ns) / 1e6,
                  index.NumPieces(), index.tree().num_ghosts());
    }
    if (i + 1 >= 16) step = 16;
  }

  // Drive to full convergence, then purge ghosts (maintenance transaction).
  QueryContext ctx;
  uint64_t count = 0;
  (void)index.RangeCount(ValueRange{0, static_cast<Value>(rows)}, &ctx,
                         &count);
  std::printf("\nafter full-domain query: fully merged=%s partitions=%zu\n",
              index.FullyMerged() ? "yes" : "no", index.NumPieces());
  std::printf("B-tree: height=%d leaves=%zu live=%zu ghosts=%zu\n",
              index.tree().height(), index.tree().num_leaves(),
              index.tree().size(), index.tree().num_ghosts());
  std::printf(
      "\npaper-shape check: converged to the single final partition: %s\n",
      index.NumPieces() == 1 ? "yes" : "NO");
}

}  // namespace
}  // namespace bench
}  // namespace adaptidx

int main() {
  adaptidx::bench::Run();
  return 0;
}
