#ifndef ADAPTIDX_CORE_INDEX_FACTORY_H_
#define ADAPTIDX_CORE_INDEX_FACTORY_H_

#include <memory>
#include <string>

#include "btree/btree_index.h"
#include "core/adaptive_index.h"
#include "core/cracking_index.h"
#include "hybrid/crack_sort.h"
#include "merging/adaptive_merge.h"

namespace adaptidx {

class ThreadPool;

/// \brief All access methods evaluated in the paper: the two baselines of
/// Section 6.1, database cracking (Section 5), adaptive merging (in-memory
/// runs, Figure 3; and its partitioned-B-tree realization, Section 4), and
/// hybrid crack-sort (Figure 4).
enum class IndexMethod {
  kScan,
  kSort,
  kCrack,
  kAdaptiveMerge,
  kHybrid,
  kBTreeMerge,
};

/// \brief Display name of an access method ("scan", "crack", ...).
std::string ToString(IndexMethod method);

/// \brief How `UpdatableIndex` publishes each committed update to the MVCC
/// version chain when `IndexConfig::snapshot_reads` is on.
enum class SnapshotPublication {
  /// One O(1) delta node per commit, folded by readers over the last
  /// consolidated base; a consolidation step bounds the chain (default —
  /// publication cost independent of the pending side-store size).
  kDeltaChain,
  /// A full flat copy of both side stores per commit — O(pending) inside
  /// the writer latch. Kept as the ablation baseline.
  kCopyChain,
};

/// \brief Aggregate configuration; only the block matching `method` is
/// consulted.
///
/// Thread-safety: a plain value type — configure it before handing it to
/// `MakeIndex`/`SessionOptions`; the engine copies it and never mutates a
/// caller's instance.
struct IndexConfig {
  IndexMethod method = IndexMethod::kCrack;

  /// Number of range-partitioned shards. 1 (the default) instantiates the
  /// method directly; >1 wraps it in a `PartitionedIndex` that splits the
  /// column into `partitions` value ranges, runs one independent inner
  /// index of `method` per shard (each with its own latch hierarchy), fans
  /// query fragments out on a thread pool, and merges the partial results.
  size_t partitions = 1;

  /// Fan-out floor: when `partitions > 1` but the column holds fewer than
  /// `partitions * min_rows_per_shard` rows, the partition wrapper is
  /// skipped and the method is instantiated directly — shards that small
  /// pay scatter, routing and merge overhead without ever amortizing it.
  /// 0 disables the floor (always honor `partitions`).
  size_t min_rows_per_shard = 4096;

  /// Hardware floor: partitioned fan-out is a parallelism play, so on a
  /// machine with a single hardware thread the shards all share one core
  /// and the scatter, routing and merge are pure overhead. When true (the
  /// default), `partitions > 1` is honored only on multi-hardware-thread
  /// machines; structural tests that need the partitioned shape regardless
  /// of the host set this false.
  bool partition_needs_cores = true;

  /// Fan-out pool for partitioned execution (not owned; must outlive every
  /// index built from this config). Null lets the partitioned index lazily
  /// create its own pool. Execution resource only — deliberately not part
  /// of `IndexConfigKey`, since it does not change the physical index the
  /// config denotes.
  ThreadPool* pool = nullptr;

  /// Differential-layer option, consulted by `UpdatableIndex` only: when
  /// true the write path maintains an epoch-stamped version chain of the
  /// side stores (`core/snapshot.h`), making snapshot capture O(1) so
  /// reads requesting `QueryContext::snapshot_reads` never hold the
  /// side-table latch for the duration of the read. Publication cost per
  /// commit is set by `snapshot_publication`. Participates in
  /// `IndexConfigKey` (the maintained chain is physical state).
  bool snapshot_reads = false;

  /// Commit-publication mode of the maintained chain (with
  /// `snapshot_reads`): O(1) delta nodes with periodic consolidation
  /// (default) or the O(pending) flat copy per commit kept as the ablation
  /// baseline. Participates in `IndexConfigKey`.
  SnapshotPublication snapshot_publication = SnapshotPublication::kDeltaChain;

  /// Delta-chain consolidation floor: a flat base is materialized no
  /// earlier than this many chained deltas, so tiny side stores don't
  /// consolidate on every other commit. The effective threshold is
  /// max(floor, pending/8) capped by `snapshot_consolidate_max` — O(1)
  /// amortized publication while bounding the suffix readers fold.
  size_t snapshot_consolidate_min = 64;

  /// Delta-chain consolidation ceiling: the chain never grows past this
  /// many deltas regardless of pending size, bounding per-read fold work.
  size_t snapshot_consolidate_max = 4096;

  CrackingOptions cracking;
  MergeOptions merge;
  HybridOptions hybrid;
  BTreeMergeOptions btree;
};

/// \brief Canonical catalog-key fingerprint of a configuration: the method
/// plus every option that changes the physical index it denotes. Two
/// configs that produce different indexes (e.g. differing only in
/// `ConcurrencyMode`) yield distinct keys; display-only fields (`name`) do
/// not participate.
std::string IndexConfigKey(const IndexConfig& config);

/// \brief Instantiates the access method for a base column.
std::unique_ptr<AdaptiveIndex> MakeIndex(const Column* column,
                                         const IndexConfig& config);

}  // namespace adaptidx

#endif  // ADAPTIDX_CORE_INDEX_FACTORY_H_
