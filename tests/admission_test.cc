#include "server/admission.h"

#include <gtest/gtest.h>

namespace adaptidx {
namespace server {
namespace {

TEST(AdmissionTest, GlobalAndPerConnectionCapsAreAllOrNothing) {
  AdmissionOptions opts;
  opts.global_inflight = 4;
  opts.per_connection_inflight = 2;
  AdmissionController ac(opts);

  EXPECT_TRUE(ac.TryAdmit(1));
  EXPECT_TRUE(ac.TryAdmit(1));
  // Per-connection cap: connection 1 is full, others still fit.
  EXPECT_FALSE(ac.TryAdmit(1));
  EXPECT_TRUE(ac.TryAdmit(2));
  EXPECT_TRUE(ac.TryAdmit(3));
  // Global cap: everything refuses now, even a fresh connection.
  EXPECT_FALSE(ac.TryAdmit(4));
  EXPECT_EQ(ac.global_in_flight(), 4u);
  EXPECT_EQ(ac.shed_total(), 2u);
  EXPECT_EQ(ac.state(), OverloadState::kCritical);

  ac.Release(1, 2);
  EXPECT_EQ(ac.connection_in_flight(1), 0u);
  // All-or-nothing: a 3-unit batch exceeds the per-connection cap, so
  // nothing of it is admitted; a 2-unit batch fits whole.
  EXPECT_FALSE(ac.TryAdmit(4, 3));
  EXPECT_TRUE(ac.TryAdmit(4, 2));
  EXPECT_EQ(ac.global_in_flight(), 4u);

  ac.Release(2);
  ac.Release(3);
  ac.Release(4, 2);
  EXPECT_EQ(ac.global_in_flight(), 0u);
  EXPECT_EQ(ac.state(), OverloadState::kNormal);
  EXPECT_EQ(ac.admitted_total(), 6u);
}

TEST(AdmissionTest, OverloadGaugeWalksThreeStates) {
  AdmissionOptions opts;
  opts.global_inflight = 8;
  opts.elevated_fraction = 0.5;
  AdmissionController ac(opts);
  EXPECT_EQ(ac.state(), OverloadState::kNormal);
  ASSERT_TRUE(ac.TryAdmit(1, 3));
  EXPECT_EQ(ac.state(), OverloadState::kNormal);
  ASSERT_TRUE(ac.TryAdmit(2, 2));
  EXPECT_EQ(ac.state(), OverloadState::kElevated);  // 5/8 >= 0.5
  ASSERT_TRUE(ac.TryAdmit(3, 3));
  EXPECT_EQ(ac.state(), OverloadState::kCritical);  // at the cap
  ac.Release(3, 3);
  ac.Release(2, 2);
  ac.Release(1, 3);
  EXPECT_EQ(ac.state(), OverloadState::kNormal);
}

TEST(AdmissionTest, RssMonitorShedsWhenOverBudget) {
  AdmissionOptions opts;
  opts.global_inflight = 100;
  opts.max_rss_bytes = 1;  // any real process is over this immediately
  opts.rss_sample_period = 1;
  AdmissionController ac(opts);
  EXPECT_GT(ac.sampled_rss_bytes(), 1u);  // eager first sample
  EXPECT_FALSE(ac.TryAdmit(1));
  EXPECT_EQ(ac.state(), OverloadState::kCritical);
  EXPECT_EQ(ac.shed_total(), 1u);
}

TEST(AdmissionTest, ReadRssReportsALiveProcess) {
  // /proc/self/statm exists on every Linux this repo targets; a resident
  // set below one page would mean the parse failed.
  EXPECT_GT(AdmissionController::ReadRssBytes(), 4096u);
}

}  // namespace
}  // namespace server
}  // namespace adaptidx
