#ifndef ADAPTIDX_CRACKING_SIDEWAYS_H_
#define ADAPTIDX_CRACKING_SIDEWAYS_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/adaptive_index.h"
#include "cracking/avl_tree.h"
#include "latch/wait_queue_latch.h"
#include "storage/column.h"

namespace adaptidx {

/// \brief One record of a cracker map: the selection value, the projected
/// value, and the original row id.
struct MapEntry {
  Value a;
  Value b;
  RowId row_id;
};

/// \brief Sideways cracking [22] (mentioned in Section 5 as the evolution of
/// selection cracking toward multi-column plans): a *cracker map* stores
/// aligned (A, B) pairs and physically reorganizes them on A as a side
/// effect of queries, so that `sum(B) where lo <= A < hi` reads B
/// contiguously from the qualifying stretch — no post-selection positional
/// fetches into the base column, hence no random access.
///
/// The paper's experiments cover selection cracking only ("for simplicity
/// of presentation"); this module is the natural extension exercised by the
/// two-column plan of Figure 6. Concurrency uses the column-latch protocol
/// of Section 5.3 (one WaitQueueLatch over the map: crack selects are
/// exclusive, aggregations share); the piece-grained refinement of the
/// selection cracker applies to maps identically and is evaluated there.
class SidewaysIndex : public AdaptiveIndex {
 public:
  /// \brief `a` is the selection column, `b` the aggregated column; they
  /// must be positionally aligned (same table).
  SidewaysIndex(const Column* a, const Column* b,
                std::string name = "sideways");

  std::string Name() const override { return name_; }

  /// \brief The cracker-map specialty: sum(B) where lo <= A < hi, read
  /// contiguously from the map. Unlike single-column methods, the map holds
  /// its second column, so kSumOther executes natively through `Execute`;
  /// this wrapper mirrors the base class's per-kind conveniences.
  Status RangeSumOther(const ValueRange& range, QueryContext* ctx,
                       int64_t* sum_b);

  size_t NumPieces() const override;
  size_t NumCracks() const;
  bool initialized() const {
    return initialized_.load(std::memory_order_acquire);
  }

  /// \brief Structural invariants; requires a quiesced index.
  bool ValidateStructure() const;

 protected:
  Status ExecuteImpl(const Query& query, QueryContext* ctx,
                     QueryResult* result) override;

 private:
  /// Accessor over the map entries for the shared crack kernels; cracks
  /// order by the selection value A.
  class Accessor {
   public:
    explicit Accessor(MapEntry* d) : d_(d) {}
    Value ValueAt(Position i) const { return d_[i].a; }
    void Swap(Position i, Position j) { std::swap(d_[i], d_[j]); }

   private:
    MapEntry* d_;
  };

  void EnsureInitialized(QueryContext* ctx);

  /// Resolves one bound to its crack position, cracking under the caller's
  /// exclusive latch.
  Position ResolveBoundLocked(Value v, QueryContext* ctx);

  /// Resolves both bounds (crack-in-three when they share a piece) under a
  /// single exclusive acquisition; returns the qualifying stretch.
  void CrackSelect(const ValueRange& range, QueryContext* ctx, Position* lo,
                   Position* hi);

  const Column* a_;
  const Column* b_;
  const std::string name_;

  std::atomic<bool> initialized_{false};
  mutable std::shared_mutex structure_mu_;  // guards avl_ + entries_ extent
  mutable WaitQueueLatch latch_{SchedulingPolicy::kFifo};
  std::vector<MapEntry> entries_;
  AvlTree avl_;
  Value domain_lo_ = 0;
  Value domain_hi_ = 0;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_CRACKING_SIDEWAYS_H_
