#include "core/snapshot.h"

#include <algorithm>
#include <cassert>

namespace adaptidx {

namespace {

/// First element of a (value, rowID)-sorted vector with value >= lo.
std::vector<std::pair<Value, RowId>>::const_iterator LowerBound(
    const std::vector<std::pair<Value, RowId>>& entries, Value lo) {
  return std::lower_bound(entries.begin(), entries.end(),
                          std::make_pair(lo, RowId{0}));
}

void CountSumIn(const std::vector<std::pair<Value, RowId>>& entries,
                const ValueRange& range, uint64_t* count, int64_t* sum) {
  *count = 0;
  *sum = 0;
  for (auto it = LowerBound(entries, range.lo);
       it != entries.end() && it->first < range.hi; ++it) {
    ++*count;
    *sum += it->first;
  }
}

}  // namespace

// ------------------------------------------------------ SideStoreVersion

void SideStoreVersion::InsertCountSum(const ValueRange& range,
                                      uint64_t* count, int64_t* sum) const {
  CountSumIn(inserts, range, count, sum);
}

void SideStoreVersion::AntiMatterCountSum(const ValueRange& range,
                                          uint64_t* count,
                                          int64_t* sum) const {
  CountSumIn(anti_matter, range, count, sum);
}

bool SideStoreVersion::HidesRow(Value v, RowId id) const {
  return std::binary_search(anti_matter.begin(), anti_matter.end(),
                            std::make_pair(v, id));
}

size_t SideStoreVersion::FirstInsertAtOrAbove(Value lo) const {
  return static_cast<size_t>(LowerBound(inserts, lo) - inserts.begin());
}

bool SideStoreVersion::AnyAntiMatterIn(const ValueRange& range) const {
  auto it = LowerBound(anti_matter, range.lo);
  return it != anti_matter.end() && it->first < range.hi;
}

// -------------------------------------------------------- SideStoreDelta

SideStoreDelta::~SideStoreDelta() {
  // Unlink predecessors this node solely owns, iteratively: letting the
  // member shared_ptrs cascade would recurse one destructor frame per
  // node, and a chain is as long as the consolidation threshold allows.
  // A use_count of 1 means this local handle is the only owner (there are
  // no weak_ptrs), so nobody can resurrect the node while we dismantle it.
  std::shared_ptr<const SideStoreDelta> node = std::move(prev);
  while (node != nullptr && node.use_count() == 1) {
    std::shared_ptr<const SideStoreDelta> next = std::move(node->prev);
    node = std::move(next);
  }
}

// -------------------------------------------------------------- Snapshot

Snapshot& Snapshot::operator=(Snapshot&& other) noexcept {
  if (this != &other) {
    Release();
    mgr_ = other.mgr_;
    version_ = std::move(other.version_);
    head_ = std::move(other.head_);
    chain_length_ = other.chain_length_;
    epoch_ = other.epoch_;
    next_row_id_ = other.next_row_id_;
    base_generation_ = other.base_generation_;
    other.mgr_ = nullptr;
    other.version_ = nullptr;
    other.head_ = nullptr;
  }
  return *this;
}

void Snapshot::Release() {
  if (mgr_ != nullptr && version_ != nullptr) {
    mgr_->Release(epoch_);
  }
  mgr_ = nullptr;
  version_ = nullptr;
  head_ = nullptr;
}

SideStoreVersion Snapshot::Materialize() const {
  assert(valid());
  SideStoreVersion flat;
  flat.epoch = epoch_;
  flat.next_row_id = next_row_id_;
  flat.inserts = version_->inserts;
  flat.anti_matter = version_->anti_matter;
  if (head_ == nullptr) return flat;
  // Collect the era-local suffix oldest-first, then replay it. (value,
  // rowID) pairs are unique — row ids are never reused — so a cancel
  // names exactly one pending insert, wherever it sits.
  std::vector<const SideStoreDelta*> chain;
  chain.reserve(chain_length_);
  for (const SideStoreDelta* d = head_.get(); d != nullptr;
       d = d->prev.get()) {
    chain.push_back(d);
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const SideStoreDelta* d = *it;
    const std::pair<Value, RowId> entry{d->value, d->row_id};
    switch (d->op) {
      case SideStoreDelta::Op::kInsert:
        flat.inserts.push_back(entry);
        break;
      case SideStoreDelta::Op::kAntiMatter:
        flat.anti_matter.push_back(entry);
        break;
      case SideStoreDelta::Op::kCancelInsert: {
        auto pos =
            std::find(flat.inserts.begin(), flat.inserts.end(), entry);
        assert(pos != flat.inserts.end());
        flat.inserts.erase(pos);
        break;
      }
    }
  }
  std::sort(flat.inserts.begin(), flat.inserts.end());
  std::sort(flat.anti_matter.begin(), flat.anti_matter.end());
  return flat;
}

// ------------------------------------------------------- SnapshotManager

SnapshotManager::SnapshotManager()
    : current_(std::make_shared<SideStoreVersion>()) {}

void SnapshotManager::Publish(std::shared_ptr<const SideStoreVersion> version) {
  std::lock_guard<std::mutex> lk(mu_);
  assert(version->epoch >= current_epoch_);
  assert(head_ == nullptr);  // copy-chain mode never grows a delta chain
  retired_.push_back(std::move(current_));
  ++retired_total_;
  current_epoch_ = version->epoch;
  current_next_row_id_ = version->next_row_id;
  current_ = std::move(version);
  ++published_;
  ReclaimLocked();
}

size_t SnapshotManager::PublishDelta(SideStoreDelta::Op op, Value v,
                                     RowId row_id, uint64_t epoch,
                                     RowId next_row_id) {
  std::lock_guard<std::mutex> lk(mu_);
  assert(epoch > current_epoch_);
  head_ = std::make_shared<const SideStoreDelta>(op, v, row_id, epoch,
                                                 next_row_id,
                                                 std::move(head_));
  ++chain_length_;
  ++deltas_published_;
  current_epoch_ = epoch;
  current_next_row_id_ = next_row_id;
  return chain_length_;
}

void SnapshotManager::Consolidate(
    std::shared_ptr<const SideStoreVersion> version) {
  std::lock_guard<std::mutex> lk(mu_);
  // Equal on a chain-triggered consolidation; greater when recovery
  // re-seeds the state wholesale (`UpdatableIndex::RestoreState`).
  assert(version->epoch >= current_epoch_);
  // The new base covers every chained delta; pinned snapshots keep their
  // own suffix alive, everything unpinned dies with this head reset (the
  // delta destructor unlinks iteratively).
  current_epoch_ = version->epoch;
  current_ = std::move(version);
  current_next_row_id_ = current_->next_row_id;
  head_ = nullptr;
  chain_length_ = 0;
  ++consolidations_;
  ++published_;
}

Snapshot SnapshotManager::Acquire() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] { return !rebasing_; });
  ++active_[current_epoch_];
  return Snapshot(this, current_, head_, chain_length_, current_epoch_,
                  current_next_row_id_, base_generation_);
}

Snapshot SnapshotManager::TryAcquireMaterialized(
    std::shared_ptr<const SideStoreVersion> version) {
  std::lock_guard<std::mutex> lk(mu_);
  // Refuse rather than wait: the caller materialized under the index latch
  // and the rebasing thread is about to need it exclusively.
  if (rebasing_) return Snapshot();
  const uint64_t epoch = version->epoch;
  const RowId next_row_id = version->next_row_id;
  ++active_[epoch];
  return Snapshot(this, std::move(version), nullptr, 0, epoch, next_row_id,
                  base_generation_);
}

void SnapshotManager::AwaitRebaseComplete() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] { return !rebasing_; });
}

void SnapshotManager::BeginRebase() {
  std::unique_lock<std::mutex> lk(mu_);
  // One rebase at a time: a second checkpoint parks here until the first
  // completes, then establishes its own drain.
  cv_.wait(lk, [this] { return !rebasing_; });
  rebasing_ = true;
  cv_.wait(lk, [this] { return active_.empty(); });
}

void SnapshotManager::CompleteRebase(
    std::shared_ptr<const SideStoreVersion> version) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    // The retired chain and delta chain belong to the pre-checkpoint base
    // generation; no snapshot can reference them anymore (the drain
    // guaranteed that), so they are reclaimed wholesale rather than epoch
    // by epoch.
    reclaimed_ += retired_.size();
    retired_.clear();
    head_ = nullptr;
    chain_length_ = 0;
    current_epoch_ = version->epoch;
    current_next_row_id_ = version->next_row_id;
    current_ = std::move(version);
    ++published_;
    ++base_generation_;
    rebasing_ = false;
  }
  cv_.notify_all();
}

void SnapshotManager::Release(uint64_t epoch) {
  bool drained = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = active_.find(epoch);
    assert(it != active_.end());
    if (--it->second == 0) active_.erase(it);
    ReclaimLocked();
    drained = active_.empty();
  }
  // A draining BeginRebase only cares about the registry emptying.
  if (drained) cv_.notify_all();
}

void SnapshotManager::ReclaimLocked() {
  // Keep only retired versions whose epoch an active snapshot still pins.
  // The pin's own shared_ptr keeps its version alive regardless, so
  // holding unpinned intermediates would be pure retention: a long-held
  // snapshot beside a fast update stream must not accumulate one full
  // side-store copy per commit.
  for (auto it = retired_.begin(); it != retired_.end();) {
    if (active_.count((*it)->epoch) > 0) {
      ++it;
    } else {
      it = retired_.erase(it);
      ++reclaimed_;
    }
  }
}

uint64_t SnapshotManager::base_generation() const {
  std::lock_guard<std::mutex> lk(mu_);
  return base_generation_;
}

uint64_t SnapshotManager::current_epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return current_epoch_;
}

size_t SnapshotManager::active_snapshots() const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t n = 0;
  for (const auto& [epoch, pins] : active_) n += pins;
  return n;
}

uint64_t SnapshotManager::oldest_active_epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return active_.empty() ? current_epoch_ : active_.begin()->first;
}

uint64_t SnapshotManager::versions_published() const {
  std::lock_guard<std::mutex> lk(mu_);
  return published_;
}

uint64_t SnapshotManager::versions_retired() const {
  std::lock_guard<std::mutex> lk(mu_);
  return retired_total_;
}

uint64_t SnapshotManager::versions_reclaimed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return reclaimed_;
}

size_t SnapshotManager::retired_chain_length() const {
  std::lock_guard<std::mutex> lk(mu_);
  return retired_.size();
}

uint64_t SnapshotManager::deltas_published() const {
  std::lock_guard<std::mutex> lk(mu_);
  return deltas_published_;
}

uint64_t SnapshotManager::consolidations() const {
  std::lock_guard<std::mutex> lk(mu_);
  return consolidations_;
}

size_t SnapshotManager::chain_length() const {
  std::lock_guard<std::mutex> lk(mu_);
  return chain_length_;
}

// --------------------------------------------------------- SnapshotScope

const Snapshot* SnapshotScope::Find(const void* index) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (closed_) return nullptr;
  auto it = pins_.find(index);
  return it != pins_.end() ? &it->second : nullptr;
}

const Snapshot* SnapshotScope::Adopt(const void* index, Snapshot snap) {
  std::lock_guard<std::mutex> lk(mu_);
  if (closed_) return nullptr;  // snap's destructor releases the pin
  // A racing query may have adopted a pin for this index already: keep
  // the winner (every query of the scope must read one epoch); ours is
  // then released when `snap` dies at scope exit.
  auto it = pins_.try_emplace(index, std::move(snap)).first;
  return &it->second;
}

void SnapshotScope::Close() {
  std::lock_guard<std::mutex> lk(mu_);
  closed_ = true;
  pins_.clear();
}

size_t SnapshotScope::pinned() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_ ? 0 : pins_.size();
}

}  // namespace adaptidx
