/// \file End-to-end crash-recovery tests: restart inheritance of the
/// adapted (cracked) state, WAL replay without a checkpoint, torn-tail
/// handling on real recovery, checkpoint-corruption fallback, and the
/// kill-mid-stream suite — a child process is SIGKILLed at a random point
/// of its commit stream and every acknowledged commit must be recovered
/// with no lost and no phantom rows.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/cracking_index.h"
#include "core/updatable_index.h"
#include "durability/checkpoint.h"
#include "durability/durable_index.h"
#include "durability/wal.h"
#include "test_util.h"
#include "util/rng.h"

// The kill suite forks and runs full engine threads in the child;
// ThreadSanitizer's runtime does not support that shape, so those tests
// skip under TSAN (the concurrent-committer races are covered without
// fork in durability_test.cc, which TSAN does run).
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ADAPTIDX_TSAN 1
#endif
#endif
#if !defined(ADAPTIDX_TSAN) && defined(__SANITIZE_THREAD__)
#define ADAPTIDX_TSAN 1
#endif

namespace adaptidx {
namespace {

namespace fs = std::filesystem;

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("adaptidx_rec_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir_;
};

IndexConfig CrackConfig() {
  IndexConfig config;
  config.method = IndexMethod::kCrack;
  return config;
}

Status OpenDurable(const std::string& dir, const Column& seed,
                   LockManager* lm, std::unique_ptr<DurableIndex>* out,
                   uint64_t checkpoint_interval = 0) {
  DurabilityOptions opts;
  opts.data_dir = dir;
  opts.checkpoint_interval = checkpoint_interval;
  return DurableIndex::Open(seed, CrackConfig(), opts, lm, "t", out);
}

TEST_F(RecoveryTest, FreshDirectorySeedsAndServes) {
  Column seed = Column::UniqueRandom("A", 1000, 3);
  RangeOracle oracle(seed);
  LockManager lm;
  std::unique_ptr<DurableIndex> di;
  ASSERT_TRUE(OpenDurable(dir_, seed, &lm, &di).ok());
  EXPECT_FALSE(di->recovery_stats().checkpoint_loaded);
  EXPECT_EQ(di->recovery_stats().records_replayed, 0u);
  EXPECT_EQ(di->recovery_stats().next_lsn, 1u);
  QueryContext ctx;
  uint64_t count = 0;
  ASSERT_TRUE(di->index()->RangeCount(ValueRange{100, 600}, &ctx, &count).ok());
  EXPECT_EQ(count, oracle.Count(100, 600));
}

TEST_F(RecoveryTest, ReplayWithoutCheckpointRestoresEverything) {
  Column seed = Column::UniqueRandom("A", 1000, 5);
  LockManager lm;
  RowId deleted_row = 0;
  {
    std::unique_ptr<DurableIndex> di;
    ASSERT_TRUE(OpenDurable(dir_, seed, &lm, &di).ok());
    QueryContext ctx;
    ctx.txn_id = 1;
    for (int i = 0; i < 30; ++i) {
      RowId id = 0;
      ASSERT_TRUE(di->index()->Insert(10000 + i, &ctx, &id).ok());
      if (i == 7) deleted_row = id;
    }
    ASSERT_TRUE(di->index()->Delete(10007, deleted_row, &ctx).ok());
  }
  std::unique_ptr<DurableIndex> di;
  ASSERT_TRUE(OpenDurable(dir_, seed, &lm, &di).ok());
  const RecoveryStats& rs = di->recovery_stats();
  EXPECT_FALSE(rs.checkpoint_loaded);
  EXPECT_EQ(rs.records_replayed, 31u);
  EXPECT_EQ(rs.next_lsn, 32u);
  EXPECT_EQ(di->index()->commit_epoch(), 31u);
  QueryContext ctx;
  uint64_t count = 0;
  ASSERT_TRUE(
      di->index()->RangeCount(ValueRange{10000, 10030}, &ctx, &count).ok());
  EXPECT_EQ(count, 29u);  // 30 inserts, one deleted
  // Row-id sequence resumes exactly where the first run stopped.
  RowId next = 0;
  ctx.txn_id = 2;
  ASSERT_TRUE(di->index()->Insert(20000, &ctx, &next).ok());
  EXPECT_EQ(next, 1030u);
}

TEST_F(RecoveryTest, RestartInheritsAdaptedStateAndAnswers) {
  Column seed = Column::UniqueRandom("A", 8000, 7);
  RangeOracle oracle(seed);
  LockManager lm;
  size_t pieces_before = 0;
  uint64_t epoch_before = 0;
  {
    std::unique_ptr<DurableIndex> di;
    ASSERT_TRUE(OpenDurable(dir_, seed, &lm, &di).ok());
    QueryContext ctx;
    ctx.txn_id = 1;
    Rng rng(42);
    for (int i = 0; i < 80; ++i) {
      const Value lo = static_cast<Value>(rng.Uniform(7500));
      uint64_t count = 0;
      ASSERT_TRUE(
          di->index()->RangeCount(ValueRange{lo, lo + 200}, &ctx, &count).ok());
      ASSERT_EQ(count, oracle.Count(lo, lo + 200));
    }
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(di->index()->Insert(100000 + i, &ctx).ok());
    }
    pieces_before = di->index()->NumPieces();
    ASSERT_GT(pieces_before, 10u);
    epoch_before = di->index()->commit_epoch();
    ASSERT_TRUE(di->Checkpoint().ok());
  }
  std::unique_ptr<DurableIndex> di;
  ASSERT_TRUE(OpenDurable(dir_, seed, &lm, &di).ok());
  const RecoveryStats& rs = di->recovery_stats();
  EXPECT_TRUE(rs.checkpoint_loaded);
  EXPECT_TRUE(rs.adapted_restored);
  EXPECT_EQ(rs.checkpoint_epoch, epoch_before);
  EXPECT_EQ(rs.records_replayed, 0u);
  // Inheritance, not re-adaptation: the piece map is back verbatim before
  // any post-restart query ran. A cold restart would sit at one piece.
  EXPECT_EQ(di->index()->NumPieces(), pieces_before);
  EXPECT_EQ(di->index()->commit_epoch(), epoch_before);
  QueryContext ctx;
  Rng rng(43);
  for (int i = 0; i < 40; ++i) {
    const Value lo = static_cast<Value>(rng.Uniform(7500));
    uint64_t count = 0;
    ASSERT_TRUE(
        di->index()->RangeCount(ValueRange{lo, lo + 333}, &ctx, &count).ok());
    ASSERT_EQ(count, oracle.Count(lo, lo + 333));
  }
  uint64_t count = 0;
  ASSERT_TRUE(di->index()
                  ->RangeCount(ValueRange{100000, 100010}, &ctx, &count)
                  .ok());
  EXPECT_EQ(count, 10u);
}

TEST_F(RecoveryTest, CheckpointPlusWalSuffixReplays) {
  Column seed = Column::UniqueRandom("A", 1000, 11);
  LockManager lm;
  {
    std::unique_ptr<DurableIndex> di;
    ASSERT_TRUE(OpenDurable(dir_, seed, &lm, &di).ok());
    QueryContext ctx;
    ctx.txn_id = 1;
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(di->index()->Insert(50000 + i, &ctx).ok());
    }
    ASSERT_TRUE(di->Checkpoint().ok());
    for (int i = 20; i < 35; ++i) {
      ASSERT_TRUE(di->index()->Insert(50000 + i, &ctx).ok());
    }
  }
  std::unique_ptr<DurableIndex> di;
  ASSERT_TRUE(OpenDurable(dir_, seed, &lm, &di).ok());
  const RecoveryStats& rs = di->recovery_stats();
  EXPECT_TRUE(rs.checkpoint_loaded);
  EXPECT_EQ(rs.checkpoint_epoch, 20u);
  EXPECT_EQ(rs.records_replayed, 15u);
  EXPECT_EQ(di->index()->commit_epoch(), 35u);
  QueryContext ctx;
  uint64_t count = 0;
  ASSERT_TRUE(
      di->index()->RangeCount(ValueRange{50000, 50035}, &ctx, &count).ok());
  EXPECT_EQ(count, 35u);
}

TEST_F(RecoveryTest, FoldInLogReplaysDeterministically) {
  Column seed = Column::UniqueRandom("A", 500, 13);
  LockManager lm;
  size_t rows_before = 0;
  {
    std::unique_ptr<DurableIndex> di;
    ASSERT_TRUE(OpenDurable(dir_, seed, &lm, &di).ok());
    QueryContext ctx;
    ctx.txn_id = 1;
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(di->index()->Insert(70000 + i, &ctx).ok());
    }
    // The fold rebuilds the base and re-assigns row ids; its WAL marker
    // must replay to the identical state.
    ASSERT_TRUE(di->index()->Checkpoint().ok());
    for (int i = 10; i < 15; ++i) {
      ASSERT_TRUE(di->index()->Insert(70000 + i, &ctx).ok());
    }
    rows_before = di->index()->num_rows();
  }
  std::unique_ptr<DurableIndex> di;
  ASSERT_TRUE(OpenDurable(dir_, seed, &lm, &di).ok());
  EXPECT_EQ(di->recovery_stats().records_replayed, 16u);  // 15 inserts + fold
  EXPECT_EQ(di->index()->num_rows(), rows_before);
  EXPECT_EQ(di->index()->pending_inserts(), 5u);  // post-fold suffix
  QueryContext ctx;
  uint64_t count = 0;
  ASSERT_TRUE(
      di->index()->RangeCount(ValueRange{70000, 70015}, &ctx, &count).ok());
  EXPECT_EQ(count, 15u);
}

TEST_F(RecoveryTest, TornTailIsTruncatedAndPrefixKept) {
  Column seed = Column::UniqueRandom("A", 500, 17);
  LockManager lm;
  {
    std::unique_ptr<DurableIndex> di;
    ASSERT_TRUE(OpenDurable(dir_, seed, &lm, &di).ok());
    QueryContext ctx;
    ctx.txn_id = 1;
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(di->index()->Insert(30000 + i, &ctx).ok());
    }
  }
  // Simulate a crash mid-append: chop the newest segment inside its last
  // record.
  auto segments = ListWalSegments(dir_);
  ASSERT_EQ(segments.size(), 1u);
  const auto size = fs::file_size(segments[0].second);
  fs::resize_file(segments[0].second, size - 5);

  std::unique_ptr<DurableIndex> di;
  ASSERT_TRUE(OpenDurable(dir_, seed, &lm, &di).ok());
  const RecoveryStats& rs = di->recovery_stats();
  EXPECT_GT(rs.truncated_bytes, 0u);
  EXPECT_EQ(rs.records_replayed, 9u);  // the torn 10th is gone
  QueryContext ctx;
  uint64_t count = 0;
  ASSERT_TRUE(
      di->index()->RangeCount(ValueRange{30000, 30010}, &ctx, &count).ok());
  EXPECT_EQ(count, 9u);
  // The truncation is persistent: a third open replays the same prefix
  // and the log grows cleanly from there.
  di.reset();
  std::unique_ptr<DurableIndex> again;
  ASSERT_TRUE(OpenDurable(dir_, seed, &lm, &again).ok());
  EXPECT_EQ(again->recovery_stats().truncated_bytes, 0u);
  EXPECT_EQ(again->index()->commit_epoch(), 9u);
}

TEST_F(RecoveryTest, CorruptNewestCheckpointFallsBackToPrevious) {
  Column seed = Column::UniqueRandom("A", 500, 19);
  LockManager lm;
  {
    std::unique_ptr<DurableIndex> di;
    ASSERT_TRUE(OpenDurable(dir_, seed, &lm, &di).ok());
    QueryContext ctx;
    ctx.txn_id = 1;
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(di->index()->Insert(40000 + i, &ctx).ok());
    }
    ASSERT_TRUE(di->Checkpoint().ok());  // epoch 5
    for (int i = 5; i < 12; ++i) {
      ASSERT_TRUE(di->index()->Insert(40000 + i, &ctx).ok());
    }
    ASSERT_TRUE(di->Checkpoint().ok());  // epoch 12
  }
  auto checkpoints = ListCheckpoints(dir_);
  ASSERT_EQ(checkpoints.size(), 2u);
  // Flip a byte deep inside the newest image.
  {
    std::fstream f(checkpoints[1].second,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(100);
    char b = 0;
    f.seekg(100);
    f.get(b);
    f.seekp(100);
    f.put(static_cast<char>(b ^ 0x20));
  }
  std::unique_ptr<DurableIndex> di;
  ASSERT_TRUE(OpenDurable(dir_, seed, &lm, &di).ok());
  const RecoveryStats& rs = di->recovery_stats();
  EXPECT_TRUE(rs.checkpoint_loaded);
  EXPECT_EQ(rs.invalid_checkpoints, 1u);
  EXPECT_EQ(rs.checkpoint_epoch, 5u);  // the fallback image
  // The WAL still covers epochs 6..12: checkpoint 12's truncation only
  // removed segments below epoch 12's *rotation* point, and every record
  // past epoch 5 that survives replays. The net state must be complete.
  EXPECT_EQ(di->index()->commit_epoch(), 12u);
  QueryContext ctx;
  uint64_t count = 0;
  ASSERT_TRUE(
      di->index()->RangeCount(ValueRange{40000, 40012}, &ctx, &count).ok());
  EXPECT_EQ(count, 12u);
}

#if !defined(ADAPTIDX_TSAN)

/// Child body of the kill suite: open the durable index, stream inserts,
/// and report each *acknowledged* commit over the pipe only after Insert
/// returned OK (i.e. after WaitDurable). Never returns.
[[noreturn]] void KillChildMain(const std::string& dir, const Column& seed,
                                int pipe_fd, Value base, int max_ops) {
  LockManager lm;
  std::unique_ptr<DurableIndex> di;
  DurabilityOptions opts;
  opts.data_dir = dir;
  // Group commit: the ack over the pipe is the durability claim under test.
  Status s = DurableIndex::Open(seed, CrackConfig(), opts, &lm, "t", &di);
  if (!s.ok()) _exit(3);
  QueryContext ctx;
  ctx.txn_id = 1;
  for (int i = 0; i < max_ops; ++i) {
    const Value v = base + i;
    if (!di->index()->Insert(v, &ctx).ok()) _exit(4);
    // Acked: the commit is durable. Tell the parent.
    int64_t wire = v;
    if (::write(pipe_fd, &wire, sizeof(wire)) != sizeof(wire)) _exit(5);
  }
  // Finished every op without being killed; the parent treats this as a
  // clean (still verifiable) run.
  _exit(0);
}

TEST_F(RecoveryTest, KillMidStreamLosesNoAckedCommit) {
  Column seed = Column::UniqueRandom("A", 2000, 23);
  constexpr Value kBase = 1 << 20;
  constexpr int kMaxOps = 5000;
  Rng rng(2012);
  for (int round = 0; round < 4; ++round) {
    const std::string dir = dir_ + "/round" + std::to_string(round);
    fs::create_directories(dir);
    int pipe_fds[2];
    ASSERT_EQ(::pipe(pipe_fds), 0);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::close(pipe_fds[0]);
      KillChildMain(dir, seed, pipe_fds[1], kBase, kMaxOps);
    }
    ::close(pipe_fds[1]);
    // Let the child commit for a random slice, then kill it dead —
    // SIGKILL, not a graceful anything — at an arbitrary stream offset.
    const int run_ms = 20 + static_cast<int>(rng.Uniform(150));
    std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));
    ::kill(pid, SIGKILL);
    // Every value in the pipe was written strictly after its commit was
    // acknowledged durable. Drain to EOF (the kill closes the write end).
    std::set<Value> acked;
    int64_t wire = 0;
    ssize_t n = 0;
    std::string buf;
    char chunk[4096];
    while ((n = ::read(pipe_fds[0], chunk, sizeof(chunk))) > 0) {
      buf.append(chunk, static_cast<size_t>(n));
    }
    ::close(pipe_fds[0]);
    for (size_t off = 0; off + sizeof(wire) <= buf.size();
         off += sizeof(wire)) {
      std::memcpy(&wire, buf.data() + off, sizeof(wire));
      acked.insert(static_cast<Value>(wire));
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);

    // Recover what the child left behind.
    LockManager lm;
    std::unique_ptr<DurableIndex> di;
    ASSERT_TRUE(OpenDurable(dir, seed, &lm, &di).ok())
        << "round " << round << " after " << acked.size() << " acks";
    QueryContext ctx;
    // No lost rows: every acked value is present exactly once.
    for (Value v : acked) {
      uint64_t count = 0;
      ASSERT_TRUE(
          di->index()->RangeCount(ValueRange{v, v + 1}, &ctx, &count).ok());
      ASSERT_EQ(count, 1u) << "acked value " << v << " lost (round " << round
                           << ")";
    }
    // No phantoms: everything recovered beyond the acked set can only be
    // the (durable-but-unacked) continuation of the stream — contiguous
    // values from the attempted range, each present at most once.
    uint64_t recovered = 0;
    ASSERT_TRUE(di->index()
                    ->RangeCount(ValueRange{kBase, kBase + kMaxOps}, &ctx,
                                 &recovered)
                    .ok());
    ASSERT_GE(recovered, acked.size());
    const uint64_t epoch = di->index()->commit_epoch();
    ASSERT_EQ(epoch, recovered);  // one commit per insert, nothing else
    for (uint64_t i = 0; i < recovered; ++i) {
      uint64_t count = 0;
      const Value v = kBase + static_cast<Value>(i);
      ASSERT_TRUE(
          di->index()->RangeCount(ValueRange{v, v + 1}, &ctx, &count).ok());
      ASSERT_EQ(count, 1u) << "stream not contiguous at " << v;
    }
  }
}

TEST_F(RecoveryTest, KillMidStreamWithCheckpointsStillRecovers) {
  // Same contract with the auto-checkpointer racing the kill: a crash may
  // land mid-checkpoint (torn temp file, half-pruned WAL) and recovery
  // must still produce every acked commit.
  Column seed = Column::UniqueRandom("A", 2000, 29);
  constexpr Value kBase = 1 << 21;
  constexpr int kMaxOps = 5000;
  Rng rng(4242);
  for (int round = 0; round < 3; ++round) {
    const std::string dir = dir_ + "/round" + std::to_string(round);
    fs::create_directories(dir);
    int pipe_fds[2];
    ASSERT_EQ(::pipe(pipe_fds), 0);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::close(pipe_fds[0]);
      LockManager lm;
      std::unique_ptr<DurableIndex> di;
      DurabilityOptions opts;
      opts.data_dir = dir;
      opts.checkpoint_interval = 64;  // keep the checkpointer busy
      Status s =
          DurableIndex::Open(seed, CrackConfig(), opts, &lm, "t", &di);
      if (!s.ok()) _exit(3);
      QueryContext ctx;
      ctx.txn_id = 1;
      for (int i = 0; i < kMaxOps; ++i) {
        const Value v = kBase + i;
        if (!di->index()->Insert(v, &ctx).ok()) _exit(4);
        int64_t wire = v;
        if (::write(pipe_fds[1], &wire, sizeof(wire)) != sizeof(wire)) {
          _exit(5);
        }
      }
      _exit(0);
    }
    ::close(pipe_fds[1]);
    const int run_ms = 120 + static_cast<int>(rng.Uniform(250));
    std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));
    ::kill(pid, SIGKILL);
    std::set<Value> acked;
    std::string buf;
    char chunk[4096];
    ssize_t n = 0;
    while ((n = ::read(pipe_fds[0], chunk, sizeof(chunk))) > 0) {
      buf.append(chunk, static_cast<size_t>(n));
    }
    ::close(pipe_fds[0]);
    int64_t wire = 0;
    for (size_t off = 0; off + sizeof(wire) <= buf.size();
         off += sizeof(wire)) {
      std::memcpy(&wire, buf.data() + off, sizeof(wire));
      acked.insert(static_cast<Value>(wire));
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);

    LockManager lm;
    std::unique_ptr<DurableIndex> di;
    ASSERT_TRUE(OpenDurable(dir, seed, &lm, &di).ok())
        << "round " << round << " after " << acked.size() << " acks";
    QueryContext ctx;
    for (Value v : acked) {
      uint64_t count = 0;
      ASSERT_TRUE(
          di->index()->RangeCount(ValueRange{v, v + 1}, &ctx, &count).ok());
      ASSERT_EQ(count, 1u) << "acked value " << v << " lost (round " << round
                           << ")";
    }
  }
}

#else  // ADAPTIDX_TSAN

TEST_F(RecoveryTest, KillMidStreamLosesNoAckedCommit) {
  GTEST_SKIP() << "fork-based kill suite is not runnable under TSAN";
}

TEST_F(RecoveryTest, KillMidStreamWithCheckpointsStillRecovers) {
  GTEST_SKIP() << "fork-based kill suite is not runnable under TSAN";
}

#endif  // ADAPTIDX_TSAN

}  // namespace
}  // namespace adaptidx
