#ifndef ADAPTIDX_CORE_UPDATABLE_INDEX_H_
#define ADAPTIDX_CORE_UPDATABLE_INDEX_H_

#include <map>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/index_factory.h"
#include "lock/lock_manager.h"

namespace adaptidx {

/// \brief Read-write layer over an adaptive index, built on differential
/// files (Section 4.2): "adaptive merging relies on a form of differential
/// files for high update rates ... updates and deletions may be applied
/// immediately in place or they may be deferred by insertion of
/// 'anti-matter' (deletion markers)".
///
/// Design:
///  - The base column stays immutable, so the wrapped adaptive index keeps
///    refining it with latch-only system transactions, untouched by updates.
///  - Insertions accumulate in a value-ordered side store; deletions become
///    anti-matter markers (deleting a still-pending insertion cancels it
///    directly).
///  - Queries combine the base index's answer with the differentials under
///    a short shared latch.
///  - `Checkpoint()` is a maintenance system transaction that folds the
///    differentials into a fresh base column, rebuilds the adaptive index
///    from scratch (re-entering state 4 of Figure 5), and re-assigns row
///    ids — the rebuild "can exploit knowledge gained during earlier query
///    execution" only in the sense that queries will re-crack it adaptively.
///
/// Transactional interplay (Section 3.3): when a LockManager is configured,
/// every update runs as a *user transaction* taking an exclusive key lock
/// under the column resource. While such locks are held, the wrapped
/// cracking index's refinement probe sees the conflict and forgoes
/// optimization; queries still answer correctly by scanning.
class UpdatableIndex : public AdaptiveIndex {
 public:
  /// \brief Takes ownership of the base data. `config` selects and
  /// configures the wrapped adaptive method. When `lock_manager` is given,
  /// it is wired into both the update path (user transactions) and, for
  /// cracking, the refinement conflict probe on `lock_resource`.
  UpdatableIndex(Column base, IndexConfig config,
                 LockManager* lock_manager = nullptr,
                 std::string lock_resource = "");

  std::string Name() const override;

  /// \brief Inserts a new tuple with value `v` as user transaction
  /// `ctx->txn_id`; a fresh row id is assigned and returned via `*row_id`
  /// (optional).
  Status Insert(Value v, QueryContext* ctx, RowId* row_id = nullptr);

  /// \brief Deletes the tuple (`v`, `row_id`) by planting anti-matter (or
  /// cancelling a pending insertion). NotFound when no such live tuple
  /// exists.
  Status Delete(Value v, RowId row_id, QueryContext* ctx);

  /// \brief Folds differentials into a fresh base column and rebuilds the
  /// adaptive index; row ids are re-assigned (a rebuild, as in dropping and
  /// re-creating an optional index, Section 4.2).
  Status Checkpoint();

  /// \brief Logical row count (base − anti-matter + pending inserts).
  size_t num_rows() const;
  size_t pending_inserts() const;
  size_t pending_deletes() const;

  /// \brief The wrapped adaptive index (for inspection in tests/benchmarks).
  AdaptiveIndex* base_index() { return index_.get(); }

  size_t NumPieces() const override { return index_->NumPieces(); }

 protected:
  Status ExecuteImpl(const Query& query, QueryContext* ctx,
                     QueryResult* result) override;

 private:
  /// Re-wires config/lock settings and builds the wrapped index. Requires
  /// mu_ held exclusively (or construction).
  void RebuildIndexLocked();

  /// Differential corrections for [lo, hi): count/sum of pending inserts
  /// and anti-matter. mu_ held (shared suffices).
  void DiffCountSumLocked(const ValueRange& range, uint64_t* ins_count,
                          int64_t* ins_sum, uint64_t* del_count,
                          int64_t* del_sum) const;

  IndexConfig config_;
  LockManager* lock_manager_;
  std::string lock_resource_;

  mutable std::shared_mutex mu_;
  std::unique_ptr<Column> base_;
  std::unique_ptr<AdaptiveIndex> index_;
  /// Pending insertions, value-ordered: value -> row id.
  std::multimap<Value, RowId> inserts_;
  /// Anti-matter markers against base rows, ordered by (value, row id).
  std::set<std::pair<Value, RowId>> anti_matter_;
  RowId next_row_id_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_CORE_UPDATABLE_INDEX_H_
