#ifndef ADAPTIDX_MERGING_SEGMENT_STORE_H_
#define ADAPTIDX_MERGING_SEGMENT_STORE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "cracking/cracker_array.h"
#include "storage/types.h"

namespace adaptidx {

/// \brief The "final partition" of adaptive merging and hybrid crack-sort
/// (Figures 3 and 4): a collection of sorted, non-overlapping value segments.
///
/// A segment covering [lo, hi) asserts that *every* base-table value in that
/// range lives in the segment, fully sorted — the result of a completed
/// merge step. Query ranges are answered from covered parts by binary
/// search; uncovered gaps are either merged now (creating new segments) or
/// answered from the initial runs/partitions read-only.
///
/// Not internally synchronized; the owning index guards it with its latch.
class SegmentStore {
 public:
  struct Segment {
    Value lo;   ///< inclusive value coverage start
    Value hi;   ///< exclusive value coverage end
    std::vector<CrackerEntry> entries;  ///< sorted by value
  };

  /// \brief Decomposition of a queried range into covered parts and gaps.
  struct CoveredPart {
    const Segment* segment;
    Value lo;  ///< sub-range of the query inside this segment
    Value hi;
  };

  SegmentStore() = default;

  /// \brief Inserts a merged segment. `entries` must be sorted by value and
  /// the coverage [lo, hi) must not overlap existing segments. Adjacent
  /// segments are coalesced to keep lookup shallow.
  void Insert(Value lo, Value hi, std::vector<CrackerEntry> entries);

  /// \brief Splits [lo, hi) into covered parts (in value order) and
  /// uncovered gaps.
  void Decompose(Value lo, Value hi, std::vector<CoveredPart>* covered,
                 std::vector<ValueRange>* gaps) const;

  /// \brief True when [lo, hi) is fully covered by segments.
  bool Covers(Value lo, Value hi) const;

  /// \brief Count of entries with value in [part.lo, part.hi) inside the
  /// part's segment (binary search).
  static uint64_t CountIn(const CoveredPart& part);

  /// \brief Sum of entries with value in [part.lo, part.hi).
  static int64_t SumIn(const CoveredPart& part);

  /// \brief Appends rowIDs of entries with value in [part.lo, part.hi).
  static void CollectRowIds(const CoveredPart& part, std::vector<RowId>* out);

  /// \brief Min and max entry value in [part.lo, part.hi); false when the
  /// part holds no entry. O(log n): segment entries are sorted, so the
  /// extremes sit at the ends of the qualifying stretch.
  static bool MinMaxIn(const CoveredPart& part, Value* mn, Value* mx);

  size_t num_segments() const { return segments_.size(); }
  size_t num_entries() const;

  /// \brief Checks ordering/coverage invariants; used by tests.
  bool Validate() const;

 private:
  /// First entry index in `seg` with value >= v.
  static size_t LowerBound(const Segment& seg, Value v);

  // Keyed by segment lo; non-overlapping, coalesced when adjacent.
  std::map<Value, Segment> segments_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_MERGING_SEGMENT_STORE_H_
