#include "storage/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace adaptidx {

namespace {
constexpr char kMagic[8] = {'A', 'D', 'I', 'X', 'C', 'O', 'L', '1'};
}  // namespace

Status WriteColumn(const Column& column, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open for write: " + path);
  }
  const uint64_t count = column.size();
  bool ok = std::fwrite(kMagic, sizeof(kMagic), 1, f) == 1;
  ok = ok && std::fwrite(&count, sizeof(count), 1, f) == 1;
  if (count > 0) {
    ok = ok && std::fwrite(column.data(), sizeof(Value), count, f) == count;
  }
  ok = ok && std::fclose(f) == 0;
  if (!ok) return Status::Corruption("short write: " + path);
  return Status::OK();
}

Status ReadColumn(const std::string& path, const std::string& name,
                  Column* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open: " + path);
  char magic[8];
  uint64_t count = 0;
  bool ok = std::fread(magic, sizeof(magic), 1, f) == 1;
  ok = ok && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
  ok = ok && std::fread(&count, sizeof(count), 1, f) == 1;
  if (!ok) {
    std::fclose(f);
    return Status::Corruption("bad column header: " + path);
  }
  std::vector<Value> values(count);
  if (count > 0 && std::fread(values.data(), sizeof(Value), count, f) !=
                       count) {
    std::fclose(f);
    return Status::Corruption("truncated column body: " + path);
  }
  // Trailing garbage means the file was not written by WriteColumn.
  char extra;
  if (std::fread(&extra, 1, 1, f) == 1) {
    std::fclose(f);
    return Status::Corruption("trailing bytes: " + path);
  }
  std::fclose(f);
  *out = Column(name, std::move(values));
  return Status::OK();
}

Status WriteTable(const Table& table, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::InvalidArgument("cannot create dir: " + dir);
  std::ofstream manifest(dir + "/manifest.txt", std::ios::trunc);
  if (!manifest) {
    return Status::InvalidArgument("cannot write manifest in " + dir);
  }
  for (size_t i = 0; i < table.num_columns(); ++i) {
    const Column* col = table.GetColumnAt(i);
    Status s = WriteColumn(*col, dir + "/" + col->name() + ".col");
    if (!s.ok()) return s;
    manifest << col->name() << "\n";
  }
  manifest.close();
  if (!manifest) return Status::Corruption("manifest write failed: " + dir);
  return Status::OK();
}

Status ReadTable(const std::string& dir, const std::string& table_name,
                 std::unique_ptr<Table>* out) {
  std::ifstream manifest(dir + "/manifest.txt");
  if (!manifest) return Status::NotFound("no manifest in " + dir);
  auto table = std::make_unique<Table>(table_name);
  std::string name;
  while (std::getline(manifest, name)) {
    if (name.empty()) continue;
    Column col;
    Status s = ReadColumn(dir + "/" + name + ".col", name, &col);
    if (!s.ok()) return s;
    s = table->AddColumn(std::move(col));
    if (!s.ok()) return s;
  }
  *out = std::move(table);
  return Status::OK();
}

Status SyncFd(int fd) {
  int rc;
  do {
#if defined(__APPLE__)
    rc = ::fsync(fd);
#else
    rc = ::fdatasync(fd);
#endif
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Status::Corruption(std::string("fdatasync failed: ") +
                              std::strerror(errno));
  }
  return Status::OK();
}

Status SyncPath(const std::string& path) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::NotFound("cannot open for sync: " + path);
  }
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  const int saved = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::Corruption("fsync failed: " + path + ": " +
                              std::strerror(saved));
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, const void* data,
                       size_t size) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  int fd;
  do {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open for write: " + tmp);
  }
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t left = size;
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Corruption("short write: " + tmp);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  // Full fsync, not fdatasync: the temp file is new, so its metadata (the
  // size) must be durable before the rename can publish it.
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 || ::close(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Corruption("fsync failed: " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::Corruption("rename failed: " + tmp + " -> " + path);
  }
  // Make the rename itself durable.
  const auto parent = std::filesystem::path(path).parent_path();
  return SyncPath(parent.empty() ? "." : parent.string());
}

}  // namespace adaptidx
