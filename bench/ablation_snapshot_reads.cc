/// \file Ablation of MVCC snapshot reads over the differential-file layer
/// (Section 4.2/4.3): a long analytical scan runs concurrently with an
/// update stream through one `UpdatableIndex`, once with latched reads
/// (every query holds the side-table latch shared for its whole duration,
/// so each in-flight scan blocks every writer) and once with snapshot reads
/// (the scan pins an epoch snapshot in O(1) and reads latch-free, so
/// writers only ever wait on each other).
///
/// The base method is a plain scan so every analytical read costs a full
/// O(rows) pass — the paper's long-reader/short-writer interference pattern
/// at its most extreme. Reported per mode: scan throughput, update
/// throughput, and the update-latency distribution (p50/p99/max); the
/// acceptance signal is p99 update latency improving under snapshots (on a
/// single-hardware-thread VM the improvement shrinks toward the scheduler
/// quantum — see docs/BENCHMARKS.md).
///
/// Writes BENCH_snapshot.json (override with AI_BENCH_SNAPSHOT_JSON).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/updatable_index.h"
#include "util/stopwatch.h"

namespace adaptidx {
namespace bench {
namespace {

struct ModeResult {
  std::string name;
  double seconds = 0;
  uint64_t scans = 0;
  uint64_t updates = 0;
  double update_p50_us = 0;
  double update_p99_us = 0;
  double update_max_us = 0;
  double write_wait_ms = 0;  ///< side-table latch: writers blocked (total)
  uint64_t write_conflicts = 0;
  uint64_t snapshot_reads = 0;
  uint64_t max_epoch_lag = 0;
};

double Percentile(std::vector<int64_t>* ns, double p) {
  if (ns->empty()) return 0;
  const size_t k = std::min(
      ns->size() - 1, static_cast<size_t>(p * static_cast<double>(ns->size())));
  std::nth_element(ns->begin(), ns->begin() + static_cast<long>(k), ns->end());
  return static_cast<double>((*ns)[k]) / 1e3;
}

ModeResult RunMode(const Column& column, bool snapshot_reads,
                   size_t update_threads, size_t updates_per_thread) {
  IndexConfig config;
  // Full scan per analytical read: the longest read the layer can produce.
  config.method = IndexMethod::kScan;
  config.snapshot_reads = true;  // chain maintained in both modes; only the
                                 // read path differs, so the write-side COW
                                 // cost is identical and cancels out.
  UpdatableIndex index(column, config);
  const Value domain = static_cast<Value>(column.size());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> txn{1};
  std::atomic<uint64_t> scans{0};
  std::vector<std::vector<int64_t>> latencies(update_threads);

  StopWatch wall;
  std::vector<std::thread> threads;
  // One long-scanner: repeated full-range sums until the updaters finish.
  threads.emplace_back([&] {
    QueryContext ctx;
    ctx.snapshot_reads = snapshot_reads;
    while (!stop.load(std::memory_order_acquire)) {
      int64_t sum = 0;
      (void)index.RangeSum(ValueRange{0, domain * 2}, &ctx, &sum);
      scans.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t u = 0; u < update_threads; ++u) {
    threads.emplace_back([&, u] {
      Rng rng(u * 17 + 3);
      QueryContext ctx;
      auto& lat = latencies[u];
      lat.reserve(updates_per_thread);
      for (size_t i = 0; i < updates_per_thread; ++i) {
        ctx.txn_id = txn.fetch_add(1);
        const Value v = rng.UniformRange(0, domain);
        const int64_t t0 = NowNanos();
        (void)index.Insert(v, &ctx);
        lat.push_back(NowNanos() - t0);
      }
    });
  }
  // Join updaters (threads[1..]), then stop the scanner.
  for (size_t t = 1; t < threads.size(); ++t) threads[t].join();
  stop.store(true, std::memory_order_release);
  threads[0].join();

  ModeResult r;
  r.name = snapshot_reads ? "snapshot" : "latched";
  r.seconds = wall.ElapsedSeconds();
  r.scans = scans.load();
  r.updates = update_threads * updates_per_thread;
  std::vector<int64_t> all;
  for (auto& lat : latencies) all.insert(all.end(), lat.begin(), lat.end());
  r.update_p50_us = Percentile(&all, 0.50);
  r.update_p99_us = Percentile(&all, 0.99);
  r.update_max_us =
      all.empty() ? 0 : static_cast<double>(*std::max_element(all.begin(),
                                                              all.end())) /
                            1e3;
  r.write_wait_ms =
      static_cast<double>(index.latch_stats().write_wait_ns()) / 1e6;
  r.write_conflicts = index.latch_stats().write_conflicts();
  r.snapshot_reads = index.latch_stats().snapshot_reads();
  r.max_epoch_lag = index.latch_stats().snapshot_max_epoch_lag();
  return r;
}

void Run() {
  const size_t rows = EnvSize("AI_BENCH_ROWS", 2000000);
  // One updater by default: with a single writer, every nanosecond of
  // side-table write blocked-wait is time spent behind an in-flight *read*
  // — exactly the interference under ablation. More updaters add
  // writer-writer serialization to both modes and blur the signal.
  const size_t update_threads = EnvSize("AI_BENCH_SNAPSHOT_UPDATERS", 1);
  const size_t updates_per_thread =
      EnvSize("AI_BENCH_SNAPSHOT_UPDATES", 2000);
  PrintHeader(
      "Ablation: MVCC snapshot reads vs latched reads (long-scan/update "
      "interference)",
      "rows=" + std::to_string(rows) + " base=scan scanners=1 updaters=" +
          std::to_string(update_threads) + " updates/thread=" +
          std::to_string(updates_per_thread));

  Column column = MakeUniqueRandomColumn(rows);
  // Interleave the two modes over three repetitions and keep each mode's
  // best run (by the primary blocked-wait signal), so machine drift biases
  // neither (same rationale as fig13).
  ModeResult latched;
  ModeResult snapshot;
  latched.write_wait_ms = 1e100;
  snapshot.write_wait_ms = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    ModeResult l = RunMode(column, false, update_threads, updates_per_thread);
    if (l.write_wait_ms < latched.write_wait_ms) latched = l;
    ModeResult s = RunMode(column, true, update_threads, updates_per_thread);
    if (s.write_wait_ms < snapshot.write_wait_ms) snapshot = s;
  }

  std::printf("\n%-10s %8s %8s %10s %11s %11s %12s %9s %8s\n", "read_mode",
              "secs", "scans", "updates/s", "upd_p50_us", "upd_p99_us",
              "upd_max_us", "w_wait_ms", "max_lag");
  for (const ModeResult* r : {&latched, &snapshot}) {
    std::printf(
        "%-10s %8.3f %8llu %10.0f %11.1f %11.1f %12.1f %9.2f %8llu\n",
        r->name.c_str(), r->seconds,
        static_cast<unsigned long long>(r->scans),
        static_cast<double>(r->updates) / r->seconds, r->update_p50_us,
        r->update_p99_us, r->update_max_us, r->write_wait_ms,
        static_cast<unsigned long long>(r->max_epoch_lag));
  }

  const double improvement = snapshot.update_p99_us > 0
                                 ? latched.update_p99_us /
                                       snapshot.update_p99_us
                                 : 0.0;
  const bool improved = snapshot.update_p99_us <= latched.update_p99_us;
  // Primary interference signal: total time writers spent *blocked* on the
  // side-table latch. Unlike wall-clock p99 — which on a single hardware
  // thread is dominated by scheduler-quantum noise (a writer deschedules
  // behind a CPU-burning scanner whether or not any latch is involved) —
  // blocked-wait is attributed at the latch itself, so it isolates exactly
  // what snapshot reads remove: writers waiting out in-flight reads.
  const bool wait_reduced = snapshot.write_wait_ms <= latched.write_wait_ms;
  std::printf(
      "\nside-table writer blocked-wait, latched -> snapshot: %.2f ms -> "
      "%.2f ms (%s)\n",
      latched.write_wait_ms, snapshot.write_wait_ms,
      wait_reduced ? "reduced" : "NOT reduced");
  std::printf(
      "p99 update latency, latched/snapshot: %.2fx (wall-clock; meaningful "
      "on multi-core only — %u hardware threads here)\n",
      improvement, std::thread::hardware_concurrency());

  const char* json_env = std::getenv("AI_BENCH_SNAPSHOT_JSON");
  const std::string json_path = json_env != nullptr && *json_env != '\0'
                                    ? json_env
                                    : "BENCH_snapshot.json";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"ablation_snapshot_reads\",\n"
               "  \"rows\": %zu,\n  \"scan_threads\": 1,\n"
               "  \"update_threads\": %zu,\n  \"updates_per_thread\": %zu,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"results\": [\n",
               rows, update_threads, updates_per_thread,
               std::thread::hardware_concurrency());
  bool first = true;
  for (const ModeResult* r : {&latched, &snapshot}) {
    std::fprintf(
        f,
        "%s    {\"read_mode\": \"%s\", \"total_secs\": %.6f, "
        "\"scans\": %llu, \"updates_per_sec\": %.1f, "
        "\"update_p50_us\": %.3f, \"update_p99_us\": %.3f, "
        "\"update_max_us\": %.3f, \"write_wait_ms\": %.4f, "
        "\"write_conflicts\": %llu, \"snapshot_reads\": %llu, "
        "\"max_epoch_lag\": %llu}",
        first ? "" : ",\n", r->name.c_str(), r->seconds,
        static_cast<unsigned long long>(r->scans),
        static_cast<double>(r->updates) / r->seconds, r->update_p50_us,
        r->update_p99_us, r->update_max_us, r->write_wait_ms,
        static_cast<unsigned long long>(r->write_conflicts),
        static_cast<unsigned long long>(r->snapshot_reads),
        static_cast<unsigned long long>(r->max_epoch_lag));
    first = false;
  }
  std::fprintf(f,
               "\n  ],\n  \"p99_latched_over_snapshot\": %.4f,\n"
               "  \"snapshot_p99_le_latched\": %s,\n"
               "  \"snapshot_wait_le_latched\": %s\n}\n",
               improvement, improved ? "true" : "false",
               wait_reduced ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace adaptidx

int main() {
  adaptidx::bench::Run();
  return 0;
}
