/// \file Ablation of the Section 4.3 multi-version commit for adaptive
/// merging: standard merge steps hold the index write latch for the whole
/// gather+sort+publish, while the MVCC variant gathers under shared access
/// against the immutable runs and takes the write latch only for a short
/// revalidated publication. Under concurrent clients the MVCC variant
/// accumulates far less exclusive-latch wait.

#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "merging/adaptive_merge.h"

namespace adaptidx {
namespace bench {
namespace {

void Run() {
  const size_t rows = EnvSize("AI_BENCH_ROWS", 2000000);
  const size_t num_queries = EnvSize("AI_BENCH_QUERIES", 512);
  const size_t clients = EnvSize("AI_BENCH_ABLATION_CLIENTS", 8);
  PrintHeader("Ablation: merge-step commit protocol (Section 4.3 MVCC)",
              "rows=" + std::to_string(rows) +
                  " queries=" + std::to_string(num_queries) +
                  " selectivity=2% type=Q2(sum) clients=" +
                  std::to_string(clients) + " overlap-heavy workload");

  Column column = MakeUniqueRandomColumn(rows);
  WorkloadGenerator gen(0, static_cast<Value>(rows));
  WorkloadOptions wopts;
  wopts.num_queries = num_queries;
  wopts.selectivity = 0.02;
  wopts.type = QueryType::kSum;
  wopts.seed = 29;
  const auto queries = gen.Generate(wopts);

  std::printf("\n%-22s %12s %14s %12s %12s\n", "commit protocol", "total (s)",
              "wait (ms)", "conflicts", "merge steps");
  double waits[2];
  int i = 0;
  for (bool mvcc : {false, true}) {
    IndexConfig config;
    config.method = IndexMethod::kAdaptiveMerge;
    config.merge.run_size = rows / 16 + 1;
    config.merge.mvcc_commit = mvcc;
    config.merge.early_termination = false;  // isolate the commit protocol
    // batch_size 1: wait-dynamics comparison under the paper's
    // synchronous clients (see fig15).
    RunResult r = RunWorkload(column, config, queries, clients,
                              /*record_per_query=*/false,
                              /*batch_size=*/1);
    waits[i++] = static_cast<double>(r.total_wait_ns) / 1e6;
    std::printf("%-22s %12.3f %14.3f %12llu %12llu\n",
                mvcc ? "mvcc (short commit)" : "standard (long X)",
                r.total_seconds, static_cast<double>(r.total_wait_ns) / 1e6,
                static_cast<unsigned long long>(r.total_conflicts),
                static_cast<unsigned long long>(r.total_cracks));
  }
  std::printf(
      "\npaper-shape check: mvcc commit does not wait more than the "
      "standard long write latch (the *gain* requires readers that can "
      "overlap the gather on other cores; this host has %u): %s\n",
      std::thread::hardware_concurrency(),
      waits[1] <= waits[0] * 1.15 ? "yes" : "NO");
}

}  // namespace
}  // namespace bench
}  // namespace adaptidx

int main() {
  adaptidx::bench::Run();
  return 0;
}
