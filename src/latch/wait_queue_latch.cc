#include "latch/wait_queue_latch.h"

#include <algorithm>

#include "util/stopwatch.h"

namespace adaptidx {

namespace {

void RecordRead(const LatchAcquireContext& ctx, int64_t wait_ns,
                bool blocked) {
  if (ctx.global != nullptr) ctx.global->RecordRead(wait_ns, blocked);
  if (blocked) {
    if (ctx.wait_ns != nullptr) *ctx.wait_ns += wait_ns;
    if (ctx.conflicts != nullptr) ++*ctx.conflicts;
  }
}

void RecordWrite(const LatchAcquireContext& ctx, int64_t wait_ns,
                 bool blocked) {
  if (ctx.global != nullptr) ctx.global->RecordWrite(wait_ns, blocked);
  if (blocked) {
    if (ctx.wait_ns != nullptr) *ctx.wait_ns += wait_ns;
    if (ctx.conflicts != nullptr) ++*ctx.conflicts;
  }
}

}  // namespace

WaitQueueLatch::WaitQueueLatch(SchedulingPolicy policy) : policy_(policy) {}

bool WaitQueueLatch::WriterOverdueLocked() const {
  return !writer_queue_.empty() &&
         readers_admitted_past_writer_ >= kWriterStarvationReaderLimit;
}

bool WaitQueueLatch::CanAdmitReaderLocked() const {
  return !active_writer_ && !WriterOverdueLocked();
}

void WaitQueueLatch::ReadLock(const LatchAcquireContext& ctx) {
  std::unique_lock<std::mutex> lk(mu_);
  if (CanAdmitReaderLocked()) {
    ++active_readers_;
    if (!writer_queue_.empty()) ++readers_admitted_past_writer_;
    RecordRead(ctx, 0, /*blocked=*/false);
    return;
  }
  const int64_t start = NowNanos();
  ++waiting_readers_;
  // Only a batch published AFTER we enqueued may admit us: a reader queued
  // behind an overdue writer must not consume a grant meant for the
  // already-waiting batch (that would both strand a batch member and slip
  // this reader past the starvation backstop).
  const uint64_t my_generation = grant_generation_;
  cv_.wait(lk, [this, my_generation] {
    return (granted_readers_ > 0 && grant_generation_ > my_generation) ||
           CanAdmitReaderLocked();
  });
  --waiting_readers_;
  // Consume one grant of the batch (if any); batch admissions were already
  // counted against the starvation limit when the batch was granted.
  if (granted_readers_ > 0 && grant_generation_ > my_generation) {
    --granted_readers_;
  }
  ++active_readers_;
  RecordRead(ctx, NowNanos() - start, /*blocked=*/true);
}

bool WaitQueueLatch::TryReadLock(const LatchAcquireContext& ctx) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!CanAdmitReaderLocked()) {
    if (ctx.global != nullptr) ctx.global->RecordTryFailure();
    return false;
  }
  ++active_readers_;
  if (!writer_queue_.empty()) ++readers_admitted_past_writer_;
  RecordRead(ctx, 0, /*blocked=*/false);
  return true;
}

void WaitQueueLatch::ReadUnlock() {
  std::lock_guard<std::mutex> lk(mu_);
  --active_readers_;
  if (active_readers_ == 0) GrantLocked();
}

void WaitQueueLatch::WriteLock(Value bound, const LatchAcquireContext& ctx) {
  std::unique_lock<std::mutex> lk(mu_);
  // Barging guard: active holds alone do not prove the latch is claimable.
  // After a reader-batch grant the woken readers have not yet converted
  // their grants into active holds (granted_readers_ > 0), and queued
  // writers must not be bypassed — the fast path would otherwise steal the
  // batch's grant and jump the kMiddleOut schedule.
  if (!active_writer_ && active_readers_ == 0 && granted_readers_ == 0 &&
      writer_queue_.empty()) {
    active_writer_ = true;
    RecordWrite(ctx, 0, /*blocked=*/false);
    return;
  }
  const int64_t start = NowNanos();
  WriterWaiter self{bound, next_ticket_++};
  if (policy_ == SchedulingPolicy::kMiddleOut) {
    // Insertion sort by bound (Section 5.3: "insert in the queue the queries
    // with an insertion sort on their bounds").
    auto it = std::upper_bound(
        writer_queue_.begin(), writer_queue_.end(), bound,
        [](Value b, const WriterWaiter* w) { return b < w->bound; });
    writer_queue_.insert(it, &self);
  } else {
    writer_queue_.push_back(&self);
  }
  cv_.wait(lk, [&self] { return self.granted; });
  RecordWrite(ctx, NowNanos() - start, /*blocked=*/true);
}

bool WaitQueueLatch::TryWriteLock(const LatchAcquireContext& ctx) {
  std::lock_guard<std::mutex> lk(mu_);
  // Same barging guard as WriteLock's fast path: an outstanding reader-batch
  // grant or a queued writer means the latch is spoken for.
  if (active_writer_ || active_readers_ > 0 || granted_readers_ > 0 ||
      !writer_queue_.empty()) {
    if (ctx.global != nullptr) ctx.global->RecordTryFailure();
    return false;
  }
  active_writer_ = true;
  RecordWrite(ctx, 0, /*blocked=*/false);
  return true;
}

void WaitQueueLatch::WriteUnlock() {
  std::lock_guard<std::mutex> lk(mu_);
  active_writer_ = false;
  GrantLocked();
}

void WaitQueueLatch::GrantLocked() {
  // An outstanding reader-batch grant counts as a hold: the latch is only
  // re-grantable after every woken reader has converted its grant.
  if (active_writer_ || active_readers_ > 0 || granted_readers_ > 0) return;
  if (waiting_readers_ > 0 && !WriterOverdueLocked()) {
    // Reader batch: all waiting readers proceed together; writers keep
    // waiting (Figure 8: Q1 and Q2 aggregate in parallel while Q3 waits).
    // Publishing the batch size here (before any reader has re-acquired
    // mu_) closes the exclusive fast path for the whole wakeup window.
    granted_readers_ = waiting_readers_;
    ++grant_generation_;
    if (!writer_queue_.empty()) {
      readers_admitted_past_writer_ +=
          static_cast<uint64_t>(waiting_readers_);
    }
    cv_.notify_all();
    return;
  }
  if (!writer_queue_.empty()) {
    const size_t idx = PickWriterLocked();
    WriterWaiter* w = writer_queue_[idx];
    writer_queue_.erase(writer_queue_.begin() + static_cast<long>(idx));
    w->granted = true;
    active_writer_ = true;
    readers_admitted_past_writer_ = 0;
    cv_.notify_all();
  }
}

size_t WaitQueueLatch::PickWriterLocked() const {
  if (policy_ == SchedulingPolicy::kMiddleOut) {
    // Median waiter: splitting the piece near its middle lets the remaining
    // waiters proceed in parallel on the two halves.
    return writer_queue_.size() / 2;
  }
  return 0;
}

std::vector<Value> WaitQueueLatch::PendingWriterBounds() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Value> bounds;
  bounds.reserve(writer_queue_.size());
  for (const WriterWaiter* w : writer_queue_) bounds.push_back(w->bound);
  return bounds;
}

bool WaitQueueLatch::HasWaiters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return waiting_readers_ > 0 || !writer_queue_.empty();
}

}  // namespace adaptidx
