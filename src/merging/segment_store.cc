#include "merging/segment_store.h"

#include <algorithm>

#include "cracking/span_kernels.h"

namespace adaptidx {

void SegmentStore::Insert(Value lo, Value hi, std::vector<CrackerEntry> entries) {
  if (lo >= hi) return;
  Segment seg{lo, hi, std::move(entries)};

  // Coalesce with an adjacent predecessor (prev.hi == lo).
  auto it = segments_.lower_bound(lo);
  if (it != segments_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.hi == lo) {
      prev->second.entries.insert(prev->second.entries.end(),
                                  seg.entries.begin(), seg.entries.end());
      prev->second.hi = hi;
      seg = std::move(prev->second);
      segments_.erase(prev);
    }
  }
  // Coalesce with an adjacent successor (hi == next.lo).
  it = segments_.find(hi);
  if (it != segments_.end() && it->second.lo == seg.hi) {
    seg.entries.insert(seg.entries.end(), it->second.entries.begin(),
                       it->second.entries.end());
    seg.hi = it->second.hi;
    segments_.erase(it);
  }
  segments_.emplace(seg.lo, std::move(seg));
}

void SegmentStore::Decompose(Value lo, Value hi,
                             std::vector<CoveredPart>* covered,
                             std::vector<ValueRange>* gaps) const {
  covered->clear();
  gaps->clear();
  if (lo >= hi) return;
  Value cursor = lo;
  // Start from the segment that might contain `lo`.
  auto it = segments_.upper_bound(lo);
  if (it != segments_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.hi > lo) it = prev;
  }
  for (; it != segments_.end() && it->second.lo < hi; ++it) {
    const Segment& seg = it->second;
    if (seg.hi <= cursor) continue;
    if (seg.lo > cursor) {
      gaps->push_back(ValueRange{cursor, std::min(seg.lo, hi)});
      cursor = std::min(seg.lo, hi);
      if (cursor >= hi) break;
    }
    const Value part_lo = std::max(cursor, seg.lo);
    const Value part_hi = std::min(hi, seg.hi);
    if (part_lo < part_hi) {
      covered->push_back(CoveredPart{&seg, part_lo, part_hi});
      cursor = part_hi;
    }
    if (cursor >= hi) break;
  }
  if (cursor < hi) gaps->push_back(ValueRange{cursor, hi});
}

bool SegmentStore::Covers(Value lo, Value hi) const {
  std::vector<CoveredPart> covered;
  std::vector<ValueRange> gaps;
  Decompose(lo, hi, &covered, &gaps);
  return gaps.empty();
}

size_t SegmentStore::LowerBound(const Segment& seg, Value v) {
  return static_cast<size_t>(
      std::lower_bound(seg.entries.begin(), seg.entries.end(), v,
                       [](const CrackerEntry& e, Value x) {
                         return e.value < x;
                       }) -
      seg.entries.begin());
}

uint64_t SegmentStore::CountIn(const CoveredPart& part) {
  return LowerBound(*part.segment, part.hi) -
         LowerBound(*part.segment, part.lo);
}

int64_t SegmentStore::SumIn(const CoveredPart& part) {
  const size_t b = LowerBound(*part.segment, part.lo);
  const size_t e = LowerBound(*part.segment, part.hi);
  return PositionalSumEntries(part.segment->entries.data(), b, e);
}

bool SegmentStore::MinMaxIn(const CoveredPart& part, Value* mn, Value* mx) {
  const size_t b = LowerBound(*part.segment, part.lo);
  const size_t e = LowerBound(*part.segment, part.hi);
  if (b >= e) return false;
  *mn = part.segment->entries[b].value;
  *mx = part.segment->entries[e - 1].value;
  return true;
}

void SegmentStore::CollectRowIds(const CoveredPart& part,
                                 std::vector<RowId>* out) {
  const size_t b = LowerBound(*part.segment, part.lo);
  const size_t e = LowerBound(*part.segment, part.hi);
  out->reserve(out->size() + (e - b));
  for (size_t i = b; i < e; ++i) {
    out->push_back(part.segment->entries[i].row_id);
  }
}

size_t SegmentStore::num_entries() const {
  size_t n = 0;
  for (const auto& [lo, seg] : segments_) n += seg.entries.size();
  return n;
}

bool SegmentStore::Validate() const {
  Value prev_hi = 0;
  bool first = true;
  for (const auto& [lo, seg] : segments_) {
    if (lo != seg.lo) return false;
    if (seg.lo >= seg.hi) return false;
    if (!first && seg.lo < prev_hi) return false;
    for (size_t i = 0; i < seg.entries.size(); ++i) {
      const Value v = seg.entries[i].value;
      if (v < seg.lo || v >= seg.hi) return false;
      if (i > 0 && v < seg.entries[i - 1].value) return false;
    }
    prev_hi = seg.hi;
    first = false;
  }
  return true;
}

}  // namespace adaptidx
