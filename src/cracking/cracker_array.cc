#include "cracking/cracker_array.h"

#include <algorithm>

#include "cracking/crack_kernels.h"
#include "cracking/reference_kernels.h"
#include "cracking/span_kernels.h"

namespace adaptidx {

namespace {

/// Ranges at or below this size are sorted with a tandem insertion sort
/// instead of a zip-sort-unzip round trip. Matches the magnitude of
/// CrackingOptions::sort_piece_threshold (128), the piece size below which
/// the active strategy sorts instead of cracking.
constexpr size_t kInsertionSortCutoff = 128;

void InsertionSortEntries(CrackerEntry* e, Position begin, Position end) {
  for (Position i = begin + 1; i < end; ++i) {
    const CrackerEntry key = e[i];
    Position j = i;
    while (j > begin && e[j - 1].value > key.value) {
      e[j] = e[j - 1];
      --j;
    }
    e[j] = key;
  }
}

void InsertionSortSplit(Value* v, RowId* r, Position begin, Position end) {
  for (Position i = begin + 1; i < end; ++i) {
    const Value kv = v[i];
    const RowId kr = r[i];
    Position j = i;
    while (j > begin && v[j - 1] > kv) {
      v[j] = v[j - 1];
      r[j] = r[j - 1];
      --j;
    }
    v[j] = kv;
    r[j] = kr;
  }
}

}  // namespace

CrackerArray::CrackerArray(const Column& column, ArrayLayout layout,
                           KernelTier tier)
    : layout_(layout), tier_(ResolveKernelTier(tier)), size_(column.size()) {
  if (layout_ == ArrayLayout::kRowIdValuePairs) {
    pairs_.resize(size_);
    for (Position i = 0; i < size_; ++i) {
      pairs_[i] = CrackerEntry{static_cast<RowId>(i), column[i]};
    }
  } else {
    values_.assign(column.values().begin(), column.values().end());
    row_ids_.resize(size_);
    for (Position i = 0; i < size_; ++i) {
      row_ids_[i] = static_cast<RowId>(i);
    }
  }
}

CrackerArray::CrackerArray(std::vector<CrackerEntry> entries,
                           ArrayLayout layout, KernelTier tier)
    : layout_(layout), tier_(ResolveKernelTier(tier)), size_(entries.size()) {
  if (layout_ == ArrayLayout::kRowIdValuePairs) {
    pairs_ = std::move(entries);
  } else {
    values_.reserve(size_);
    row_ids_.reserve(size_);
    for (const auto& e : entries) {
      values_.push_back(e.value);
      row_ids_.push_back(e.row_id);
    }
  }
}

void CrackerArray::set_kernel_tier(KernelTier tier) {
  tier_ = ResolveKernelTier(tier);
}

Position CrackerArray::CrackTwo(Position begin, Position end, Value pivot) {
  if (layout_ == ArrayLayout::kRowIdValuePairs) {
    if (tier_ == KernelTier::kReference) {
      return reference::CrackInTwoPairs(pairs_.data(), begin, end, pivot);
    }
    return CrackInTwoEntries(pairs_.data(), begin, end, pivot);
  }
  return CrackInTwoSpan(values_.data(), row_ids_.data(), begin, end, pivot,
                        tier_);
}

std::pair<Position, Position> CrackerArray::CrackThree(Position begin,
                                                       Position end, Value lo,
                                                       Value hi) {
  if (layout_ == ArrayLayout::kRowIdValuePairs) {
    if (tier_ == KernelTier::kReference) {
      return reference::CrackInThreePairs(pairs_.data(), begin, end, lo, hi);
    }
    return CrackInThreeEntries(pairs_.data(), begin, end, lo, hi);
  }
  return CrackInThreeSpan(values_.data(), row_ids_.data(), begin, end, lo, hi,
                          tier_);
}

void CrackerArray::SortRange(Position begin, Position end) {
  if (end - begin <= 1) return;
  const size_t n = end - begin;
  if (layout_ == ArrayLayout::kRowIdValuePairs) {
    if (n <= kInsertionSortCutoff) {
      InsertionSortEntries(pairs_.data(), begin, end);
      return;
    }
    std::sort(pairs_.begin() + static_cast<long>(begin),
              pairs_.begin() + static_cast<long>(end),
              [](const CrackerEntry& a, const CrackerEntry& b) {
                return a.value < b.value;
              });
    return;
  }
  if (n <= kInsertionSortCutoff) {
    InsertionSortSplit(values_.data(), row_ids_.data(), begin, end);
    return;
  }
  // Pair-of-arrays layout, large range: zip into contiguous entries, sort,
  // unzip. Compared to sorting an index permutation this keeps the
  // comparator free of indirection and touches each array linearly.
  std::vector<CrackerEntry> tmp(n);
  for (size_t i = 0; i < n; ++i) {
    tmp[i] = CrackerEntry{row_ids_[begin + i], values_[begin + i]};
  }
  std::sort(tmp.begin(), tmp.end(),
            [](const CrackerEntry& a, const CrackerEntry& b) {
              return a.value < b.value;
            });
  for (size_t i = 0; i < n; ++i) {
    values_[begin + i] = tmp[i].value;
    row_ids_[begin + i] = tmp[i].row_id;
  }
}

uint64_t CrackerArray::ScanCountRange(Position begin, Position end, Value lo,
                                      Value hi) const {
  if (layout_ == ArrayLayout::kRowIdValuePairs) {
    if (tier_ == KernelTier::kReference) {
      return reference::ScanCountPairs(pairs_.data(), begin, end, lo, hi);
    }
    return ScanCountEntries(pairs_.data(), begin, end, lo, hi);
  }
  return ScanCountSpan(values_.data(), begin, end, lo, hi, tier_);
}

int64_t CrackerArray::ScanSumRange(Position begin, Position end, Value lo,
                                   Value hi) const {
  if (layout_ == ArrayLayout::kRowIdValuePairs) {
    if (tier_ == KernelTier::kReference) {
      return reference::ScanSumPairs(pairs_.data(), begin, end, lo, hi);
    }
    return ScanSumEntries(pairs_.data(), begin, end, lo, hi);
  }
  return ScanSumSpan(values_.data(), begin, end, lo, hi, tier_);
}

int64_t CrackerArray::PositionalSumRange(Position begin, Position end) const {
  if (layout_ == ArrayLayout::kRowIdValuePairs) {
    if (tier_ == KernelTier::kReference) {
      return reference::PositionalSumPairs(pairs_.data(), begin, end);
    }
    return PositionalSumEntries(pairs_.data(), begin, end);
  }
  return PositionalSumSpan(values_.data(), begin, end, tier_);
}

void CrackerArray::MinMax(Position begin, Position end, Value* lo,
                          Value* hi) const {
  if (layout_ == ArrayLayout::kRowIdValuePairs) {
    Value mn = pairs_[begin].value;
    Value mx = mn;
    for (Position i = begin + 1; i < end; ++i) {
      const Value v = pairs_[i].value;
      mn = v < mn ? v : mn;
      mx = v > mx ? v : mx;
    }
    *lo = mn;
    *hi = mx;
    return;
  }
  MinMaxSpan(values_.data(), begin, end, lo, hi);
}

bool CrackerArray::MinMaxFiltered(Position begin, Position end,
                                  const ValueRange& range, Value* mn,
                                  Value* mx) const {
  bool any = false;
  Value lo = 0;
  Value hi = 0;
  auto feed = [&](Value v) {
    if (v < range.lo || v >= range.hi) return;
    if (!any) {
      lo = v;
      hi = v;
      any = true;
    } else {
      lo = v < lo ? v : lo;
      hi = v > hi ? v : hi;
    }
  };
  if (layout_ == ArrayLayout::kRowIdValuePairs) {
    for (Position i = begin; i < end; ++i) feed(pairs_[i].value);
  } else {
    const Value* values = values_.data();
    for (Position i = begin; i < end; ++i) feed(values[i]);
  }
  if (any) {
    *mn = lo;
    *mx = hi;
  }
  return any;
}

void CrackerArray::CollectRowIds(Position begin, Position end,
                                 std::vector<RowId>* out) const {
  out->reserve(out->size() + (end - begin));
  if (layout_ == ArrayLayout::kRowIdValuePairs) {
    for (Position i = begin; i < end; ++i) out->push_back(pairs_[i].row_id);
    return;
  }
  out->insert(out->end(), row_ids_.begin() + static_cast<long>(begin),
              row_ids_.begin() + static_cast<long>(end));
}

void CrackerArray::CollectRowIdsFiltered(Position begin, Position end,
                                         const ValueRange& range,
                                         std::vector<RowId>* out) const {
  if (range.Empty()) return;  // the unsigned width below would wrap
  if (layout_ == ArrayLayout::kRowIdValuePairs) {
    for (Position i = begin; i < end; ++i) {
      const Value v = pairs_[i].value;
      if (v >= range.lo && v < range.hi) out->push_back(pairs_[i].row_id);
    }
    return;
  }
  const Value* v = values_.data();
  const RowId* r = row_ids_.data();
  const uint64_t width =
      static_cast<uint64_t>(range.hi) - static_cast<uint64_t>(range.lo);
  for (Position i = begin; i < end; ++i) {
    if ((static_cast<uint64_t>(v[i]) - static_cast<uint64_t>(range.lo)) <
        width) {
      out->push_back(r[i]);
    }
  }
}

void CrackerArray::SwapRanges(Position a, Position b, size_t n) {
  if (n == 0) return;
  if (layout_ == ArrayLayout::kRowIdValuePairs) {
    std::swap_ranges(pairs_.begin() + static_cast<long>(a),
                     pairs_.begin() + static_cast<long>(a + n),
                     pairs_.begin() + static_cast<long>(b));
    return;
  }
  std::swap_ranges(values_.begin() + static_cast<long>(a),
                   values_.begin() + static_cast<long>(a + n),
                   values_.begin() + static_cast<long>(b));
  std::swap_ranges(row_ids_.begin() + static_cast<long>(a),
                   row_ids_.begin() + static_cast<long>(a + n),
                   row_ids_.begin() + static_cast<long>(b));
}

Position CrackerArray::LowerBoundInSorted(Position begin, Position end,
                                          Value v) const {
  Position lo = begin;
  Position hi = end;
  while (lo < hi) {
    Position mid = lo + (hi - lo) / 2;
    if (ValueAt(mid) < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace adaptidx
