#include "core/scan_index.h"

#include "cracking/span_kernels.h"
#include "util/stopwatch.h"

namespace adaptidx {

Status ScanIndex::RangeCount(const ValueRange& range, QueryContext* ctx,
                             uint64_t* count) {
  ScopedTimer read_timer(&ctx->stats.read_ns);
  *count = ScanCountSpan(column_->data(), 0, column_->size(), range.lo,
                         range.hi, KernelTier::kAuto);
  return Status::OK();
}

Status ScanIndex::RangeSum(const ValueRange& range, QueryContext* ctx,
                           int64_t* sum) {
  ScopedTimer read_timer(&ctx->stats.read_ns);
  *sum = ScanSumSpan(column_->data(), 0, column_->size(), range.lo, range.hi,
                     KernelTier::kAuto);
  return Status::OK();
}

Status ScanIndex::RangeRowIds(const ValueRange& range, QueryContext* ctx,
                              std::vector<RowId>* row_ids) {
  ScopedTimer read_timer(&ctx->stats.read_ns);
  row_ids->clear();
  if (range.Empty()) return Status::OK();  // width below would wrap
  const Value* data = column_->data();
  const size_t n = column_->size();
  const uint64_t width =
      static_cast<uint64_t>(range.hi) - static_cast<uint64_t>(range.lo);
  for (size_t i = 0; i < n; ++i) {
    if ((static_cast<uint64_t>(data[i]) - static_cast<uint64_t>(range.lo)) <
        width) {
      row_ids->push_back(static_cast<RowId>(i));
    }
  }
  return Status::OK();
}

}  // namespace adaptidx
