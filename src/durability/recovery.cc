#include "durability/recovery.h"

#include <unistd.h>

#include <filesystem>
#include <utility>
#include <vector>

#include "core/cracking_index.h"
#include "durability/checkpoint.h"
#include "durability/wal.h"
#include "storage/file_io.h"

namespace adaptidx {

namespace {

/// Applies one WAL record through the index's normal commit path.
Status ReplayRecord(const WalRecord& rec, UpdatableIndex* index) {
  QueryContext ctx;
  ctx.txn_id = rec.lsn;  // distinct txn per replayed commit
  switch (rec.op) {
    case CommitSink::OpType::kInsert: {
      RowId assigned = 0;
      Status s = index->Insert(rec.value, &ctx, &assigned);
      if (!s.ok()) return s;
      if (assigned != rec.row_id) {
        // The lockstep invariant (log order == commit order == row-id
        // order) broke: the log does not describe this state.
        return Status::Corruption(
            "replay row-id divergence at lsn " + std::to_string(rec.lsn) +
            ": assigned " + std::to_string(assigned) + ", logged " +
            std::to_string(rec.row_id));
      }
      return Status::OK();
    }
    case CommitSink::OpType::kDelete: {
      Status s = index->Delete(rec.value, rec.row_id, &ctx);
      if (!s.ok()) {
        // The delete was acknowledged in the original run, so it must
        // apply cleanly against the replayed state.
        return Status::Corruption("replay delete failed at lsn " +
                                  std::to_string(rec.lsn) + ": " +
                                  s.message());
      }
      return Status::OK();
    }
    case CommitSink::OpType::kFold:
      // Folding is a pure function of the current state, so replaying the
      // marker reproduces the original fold bit for bit (same base, same
      // re-assigned row ids).
      return index->Checkpoint();
  }
  return Status::Corruption("unknown wal op at lsn " +
                            std::to_string(rec.lsn));
}

}  // namespace

Status RecoverIndex(const std::string& data_dir, const Column& seed,
                    const IndexConfig& config, LockManager* lock_manager,
                    const std::string& lock_resource,
                    std::unique_ptr<UpdatableIndex>* out,
                    RecoveryStats* stats) {
  *stats = RecoveryStats{};
  std::error_code ec;
  std::filesystem::create_directories(data_dir, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create data dir: " + data_dir);
  }

  // 1. Newest valid checkpoint, falling back across corrupt images.
  CheckpointImage image;
  auto checkpoints = ListCheckpoints(data_dir);
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    Status s = LoadCheckpoint(it->second, &image);
    if (s.ok()) {
      stats->checkpoint_loaded = true;
      stats->checkpoint_epoch = image.epoch;
      break;
    }
    ++stats->invalid_checkpoints;
  }

  // 2. Construct the index at the image's state (or the seed, epoch 0).
  std::unique_ptr<UpdatableIndex> index;
  if (stats->checkpoint_loaded) {
    Column base(image.column_name.empty() ? seed.name() : image.column_name,
                std::move(image.base_values));
    index = std::make_unique<UpdatableIndex>(std::move(base), config,
                                             lock_manager, lock_resource);
    index->RestoreState(image.inserts, image.anti_matter, image.next_row_id,
                        image.epoch);
    if (image.has_adapted) {
      auto* cracking =
          dynamic_cast<CrackingIndex*>(index->base_index());
      if (cracking != nullptr) {
        Status s = cracking->RestoreAdaptedState(image.adapted);
        if (!s.ok()) return s;
        stats->adapted_restored = true;
      }
      // A non-cracking wrapped method just starts cold; the logical state
      // above is complete without the adapted image.
    }
  } else {
    index = std::make_unique<UpdatableIndex>(
        Column(seed.name(), seed.values()), config, lock_manager,
        lock_resource);
  }

  // 3+4. Scan segments in order; truncate a torn tail on the newest one;
  // replay everything past the image's epoch.
  uint64_t last_lsn = stats->checkpoint_epoch;
  auto segments = ListWalSegments(data_dir);
  for (size_t i = 0; i < segments.size(); ++i) {
    WalSegmentScan scan;
    Status s = ScanWalSegment(segments[i].second, &scan);
    if (!s.ok()) {
      // An unreadable header on the newest segment means the crash hit
      // inside the header write of a fresh segment: nothing in it was ever
      // acknowledged. Anywhere else it is real corruption.
      if (i + 1 == segments.size() && s.IsCorruption()) {
        std::filesystem::remove(segments[i].second, ec);
        continue;
      }
      return s;
    }
    if (scan.torn) {
      if (i + 1 < segments.size()) {
        // A sealed segment (a successor exists, so Rotate completed and
        // fsynced it) cannot legitimately hold a bad record.
        return Status::Corruption("corrupt record mid-log in " +
                                  segments[i].second);
      }
      // Crash tore the newest segment's tail: cut it off so the next
      // recovery sees a clean log.
      const uint64_t file_size =
          std::filesystem::file_size(segments[i].second, ec);
      if (!ec && file_size > scan.valid_bytes) {
        stats->truncated_bytes += file_size - scan.valid_bytes;
      }
      if (::truncate(segments[i].second.c_str(),
                     static_cast<off_t>(scan.valid_bytes)) != 0) {
        return Status::Corruption("cannot truncate torn wal tail: " +
                                  segments[i].second);
      }
      Status ts = SyncPath(segments[i].second);
      if (!ts.ok()) return ts;
    }
    for (const WalRecord& rec : scan.records) {
      if (rec.lsn <= stats->checkpoint_epoch) {
        ++stats->records_skipped;
        continue;
      }
      if (rec.lsn != last_lsn + 1) {
        return Status::Corruption("wal gap: expected lsn " +
                                  std::to_string(last_lsn + 1) + ", found " +
                                  std::to_string(rec.lsn));
      }
      Status rs = ReplayRecord(rec, index.get());
      if (!rs.ok()) return rs;
      ++stats->records_replayed;
      last_lsn = rec.lsn;
    }
  }

  // Lockstep acceptance: every replayed commit advanced the epoch once, so
  // the recovered epoch must equal the last applied LSN.
  if (index->commit_epoch() != last_lsn) {
    return Status::Corruption(
        "epoch/lsn lockstep broken after replay: epoch " +
        std::to_string(index->commit_epoch()) + ", last lsn " +
        std::to_string(last_lsn));
  }
  stats->next_lsn = last_lsn + 1;
  *out = std::move(index);
  return Status::OK();
}

}  // namespace adaptidx
