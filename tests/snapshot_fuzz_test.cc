// Randomized differential harness for delta-chain MVCC publication and
// transactional snapshot scopes.
//
// Shape: 2-8 threads (seed-derived) run concurrent role loops against one
// UpdatableIndex — serialized writers committing inserts / base deletes /
// cancellations, readers pinning epochs and verifying them long after the
// live state has moved on, sessions holding multi-query snapshot scopes,
// and a checkpointer folding the differential layer mid-stream. A logical
// live-set oracle is kept in lockstep with the commit stream under one
// mutex; every pin copies the oracle AT CAPTURE TIME, and every query the
// pin (or scope) answers later is compared against that frozen copy for
// count, sum, rowID set, and min/max. Consolidation thresholds are set low
// so chains fold repeatedly behind held pins.
//
// Reproduction: the seed is printed on every run; replay a failure with
//   AI_FUZZ_SEED=<seed> ./snapshot_fuzz_test
// Per-thread op streams are fully determined by the seed (the interleaving
// is not, but every verification is interleaving-independent: a pinned
// epoch must equal its capture-time oracle copy under any schedule).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "core/updatable_index.h"
#include "engine/session.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace adaptidx {
namespace {

uint64_t FuzzSeed() {
  if (const char* env = std::getenv("AI_FUZZ_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  // Derived from wall time rather than std::random_device so the printed
  // seed is the ONLY entropy source — pasting it back replays the run.
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

/// The answer a range query must produce at one pinned epoch, computed from
/// a frozen copy of the live set.
struct RangeAnswer {
  uint64_t count = 0;
  int64_t sum = 0;
  std::vector<RowId> ids;
  Value min = 0;
  Value max = 0;
  bool found = false;
};

RangeAnswer OracleAnswer(const std::vector<std::pair<Value, RowId>>& live,
                         Value lo, Value hi) {
  RangeAnswer a;
  for (const auto& [v, id] : live) {
    if (v < lo || v >= hi) continue;
    ++a.count;
    a.sum += v;
    a.ids.push_back(id);
    if (!a.found) {
      a.min = a.max = v;
      a.found = true;
    } else {
      if (v < a.min) a.min = v;
      if (v > a.max) a.max = v;
    }
  }
  std::sort(a.ids.begin(), a.ids.end());
  return a;
}

constexpr Value kDomain = 4000;
constexpr size_t kBaseRows = 1500;

/// Shared state: the index plus a logical oracle advanced in lockstep with
/// every commit (and every checkpoint fold) under `mu`. Readers copy the
/// oracle while holding `mu` together with their pin capture, so copy and
/// epoch correspond exactly.
///
/// The oracle mirrors the index's two layers rather than a flat multiset
/// because a checkpoint RENUMBERS rowIDs: the fold compacts anti-mattered
/// base rows away and appends pending inserts in value order, and rowIDs
/// are positions in the new base. Tracking base/pending separately lets the
/// oracle replay that deterministic renumbering exactly (see Fold()).
struct Harness {
  /// A pending insert: `seq` is the commit order among equal values, the
  /// tiebreak the index's value-ordered side store preserves at fold time.
  struct Pending {
    Value v;
    RowId id;
    uint64_t seq;
  };

  explicit Harness(uint64_t seed)
      : column(Column::UniformRandom("A", kBaseRows, 0, kDomain,
                                     static_cast<uint64_t>(seed | 1))),
        index(column, Config()) {
    base_vals = column.values();
  }

  static IndexConfig Config() {
    IndexConfig config;
    config.method = IndexMethod::kCrack;
    config.snapshot_reads = true;
    // Low thresholds: chains consolidate every handful of commits, so pins
    // routinely survive multiple consolidations behind them.
    config.snapshot_consolidate_min = 4;
    config.snapshot_consolidate_max = 64;
    return config;
  }

  /// Live set as (value, rowid) pairs — the per-epoch verification input.
  std::vector<std::pair<Value, RowId>> LiveLocked() const {
    std::vector<std::pair<Value, RowId>> out;
    out.reserve(base_vals.size() + pending.size());
    for (size_t i = 0; i < base_vals.size(); ++i) {
      const RowId id = static_cast<RowId>(i);
      if (base_dead.count(id) == 0) out.emplace_back(base_vals[i], id);
    }
    for (const Pending& p : pending) out.emplace_back(p.v, p.id);
    return out;
  }

  /// Replays the index's checkpoint fold on the oracle: surviving base rows
  /// in position order, then pending inserts in (value, commit) order, all
  /// renumbered to their position in the new base.
  void FoldLocked() {
    std::vector<Value> next;
    next.reserve(base_vals.size() + pending.size());
    for (size_t i = 0; i < base_vals.size(); ++i) {
      if (base_dead.count(static_cast<RowId>(i)) == 0) {
        next.push_back(base_vals[i]);
      }
    }
    std::stable_sort(pending.begin(), pending.end(),
                     [](const Pending& a, const Pending& b) {
                       return a.v < b.v || (a.v == b.v && a.seq < b.seq);
                     });
    for (const Pending& p : pending) next.push_back(p.v);
    base_vals = std::move(next);
    base_dead.clear();
    pending.clear();
  }

  Column column;
  UpdatableIndex index;
  std::mutex mu;                    // commits + folds + oracle, atomically
  std::vector<Value> base_vals;     // oracle base layer (rowid = position)
  std::set<RowId> base_dead;        // anti-mattered base positions
  std::vector<Pending> pending;     // oracle side store
  uint64_t next_seq = 0;
  std::atomic<uint64_t> txn{1};
  std::atomic<bool> failed{false};
};

/// One committed mutation under the oracle mutex: insert (60%), else delete
/// of a uniformly random live row (base delete or pending cancellation,
/// whatever the pick happens to be).
void CommitOne(Harness* h, Rng* rng, QueryContext* ctx) {
  std::lock_guard<std::mutex> lk(h->mu);
  ctx->txn_id = h->txn.fetch_add(1);
  const size_t base_live = h->base_vals.size() - h->base_dead.size();
  const size_t live_total = base_live + h->pending.size();
  if (rng->Uniform(10) < 6 || live_total == 0) {
    const Value v = rng->UniformRange(0, kDomain);
    RowId id;
    ASSERT_TRUE(h->index.Insert(v, ctx, &id).ok());
    h->pending.push_back({v, id, h->next_seq++});
  } else {
    size_t pick = rng->Uniform(live_total);
    if (pick < h->pending.size()) {  // cancel a pending insert
      const auto [v, id, seq] = h->pending[pick];
      ASSERT_TRUE(h->index.Delete(v, id, ctx).ok());
      h->pending.erase(h->pending.begin() + static_cast<long>(pick));
    } else {  // anti-matter a live base row
      pick -= h->pending.size();
      size_t seen = 0;
      for (size_t i = 0; i < h->base_vals.size(); ++i) {
        const RowId id = static_cast<RowId>(i);
        if (h->base_dead.count(id) > 0) continue;
        if (seen++ < pick) continue;
        ASSERT_TRUE(h->index.Delete(h->base_vals[i], id, ctx).ok());
        h->base_dead.insert(id);
        break;
      }
    }
  }
}

void WriterLoop(Harness* h, uint64_t seed, int commits) {
  Rng rng(seed);
  QueryContext ctx;
  for (int i = 0; i < commits && !h->failed.load(); ++i) {
    CommitOne(h, &rng, &ctx);
  }
}

/// Pins an epoch (oracle copy + capture atomically), then verifies random
/// ranges against the frozen copy across all four query kinds while other
/// threads commit, consolidate, and checkpoint behind the pin.
void PinReaderLoop(Harness* h, uint64_t seed, int pins, int ranges_per_pin) {
  Rng rng(seed);
  QueryContext ctx;
  for (int p = 0; p < pins && !h->failed.load(); ++p) {
    std::vector<std::pair<Value, RowId>> frozen;
    Snapshot snap;
    {
      std::lock_guard<std::mutex> lk(h->mu);
      snap = h->index.CaptureSnapshot();
      frozen = h->LiveLocked();
      if (!snap.valid() || snap.epoch() != h->index.commit_epoch()) {
        h->failed.store(true);
        return;
      }
    }
    for (int q = 0; q < ranges_per_pin; ++q) {
      Value lo = rng.UniformRange(0, kDomain);
      Value hi = rng.UniformRange(0, kDomain);
      if (lo > hi) std::swap(lo, hi);
      const RangeAnswer want = OracleAnswer(frozen, lo, hi);
      QueryResult r;
      if (!h->index.ExecuteSnapshot(Query::Count("", "", lo, hi), snap, &ctx,
                                    &r)
               .ok() ||
          r.count != want.count) {
        ADD_FAILURE() << "count mismatch at epoch " << snap.epoch() << " ["
                      << lo << "," << hi << "): got " << r.count << " want "
                      << want.count;
        h->failed.store(true);
        return;
      }
      if (!h->index.ExecuteSnapshot(Query::Sum("", "", lo, hi), snap, &ctx,
                                    &r)
               .ok() ||
          r.sum != want.sum) {
        ADD_FAILURE() << "sum mismatch at epoch " << snap.epoch();
        h->failed.store(true);
        return;
      }
      if (!h->index.ExecuteSnapshot(Query::RowIds("", "", lo, hi), snap,
                                    &ctx, &r)
               .ok()) {
        h->failed.store(true);
        return;
      }
      std::sort(r.row_ids.begin(), r.row_ids.end());
      if (r.row_ids != want.ids) {
        ADD_FAILURE() << "rowid set mismatch at epoch " << snap.epoch();
        h->failed.store(true);
        return;
      }
      if (!h->index.ExecuteSnapshot(Query::MinMax("", "", lo, hi), snap,
                                    &ctx, &r)
               .ok()) {
        h->failed.store(true);
        return;
      }
      if (r.has_minmax != want.found ||
          (want.found &&
           (r.min_value != want.min || r.max_value != want.max))) {
        ADD_FAILURE() << "minmax mismatch at epoch " << snap.epoch();
        h->failed.store(true);
        return;
      }
    }
    snap.Release();
  }
}

/// Opens a session scope, adopts its pin with a first query under the
/// oracle mutex (scope epoch == copy), then verifies the scope repeats the
/// copy's answers across later queries; commits a little itself between
/// scopes so scoped sessions also drive the update stream.
void ScopedReaderLoop(Harness* h, uint64_t seed, int scopes,
                      int queries_per_scope) {
  Rng rng(seed);
  ThreadPool pool(1);
  SessionOptions sopts;
  sopts.snapshot_reads = true;
  auto session = Session::OnIndex(&h->index, &pool, sopts);
  QueryContext uctx;
  for (int s = 0; s < scopes && !h->failed.load(); ++s) {
    std::vector<std::pair<Value, RowId>> frozen;
    {
      std::lock_guard<std::mutex> lk(h->mu);
      ASSERT_TRUE(session->BeginSnapshot().ok());
      uint64_t c = 0;
      ASSERT_TRUE(session->Count("", "", 0, kDomain, &c).ok());  // adopt pin
      frozen = h->LiveLocked();
      if (c != frozen.size()) {
        ADD_FAILURE() << "scope adoption count " << c << " != live "
                      << frozen.size();
        h->failed.store(true);
      }
    }
    for (int q = 0; q < queries_per_scope && !h->failed.load(); ++q) {
      Value lo = rng.UniformRange(0, kDomain);
      Value hi = rng.UniformRange(0, kDomain);
      if (lo > hi) std::swap(lo, hi);
      const RangeAnswer want = OracleAnswer(frozen, lo, hi);
      uint64_t c = 0;
      int64_t sum = 0;
      std::vector<RowId> ids;
      Value mn = 0, mx = 0;
      bool found = false;
      if (!session->Count("", "", lo, hi, &c).ok() || c != want.count ||
          !session->Sum("", "", lo, hi, &sum).ok() || sum != want.sum ||
          !session->RowIds("", "", lo, hi, &ids).ok() ||
          !session->MinMax("", "", lo, hi, &mn, &mx, &found).ok()) {
        ADD_FAILURE() << "scoped query mismatch at scope " << s;
        h->failed.store(true);
        break;
      }
      std::sort(ids.begin(), ids.end());
      if (ids != want.ids || found != want.found ||
          (want.found && (mn != want.min || mx != want.max))) {
        ADD_FAILURE() << "scoped rowid/minmax mismatch at scope " << s;
        h->failed.store(true);
        break;
      }
    }
    ASSERT_TRUE(session->EndSnapshot().ok());
    CommitOne(h, &rng, &uctx);
  }
}

/// Folds the differential layer mid-stream; each fold drains every pin in
/// flight, rebases the chain, renumbers rowIDs, and bumps the base
/// generation. The oracle mutex covers the whole fold so the oracle's
/// replayed renumbering lands atomically with the index's — a pin drain in
/// progress only ever waits on readers, which never take the mutex while
/// pinned.
void CheckpointerLoop(Harness* h, int checkpoints) {
  for (int c = 0; c < checkpoints && !h->failed.load(); ++c) {
    {
      std::lock_guard<std::mutex> lk(h->mu);
      ASSERT_TRUE(h->index.Checkpoint().ok());
      h->FoldLocked();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TEST(SnapshotFuzzTest, RandomizedCommitSnapshotDifferential) {
  const uint64_t seed = FuzzSeed();
  std::printf("[snapshot_fuzz] seed=%" PRIu64
              "  (replay: AI_FUZZ_SEED=%" PRIu64 ")\n",
              seed, seed);
  Rng meta(seed);
  const int n_threads = 2 + static_cast<int>(meta.Uniform(7));  // 2..8
  Harness h(seed);

  std::vector<std::thread> threads;
  // Thread 0 is always a writer, thread 1 always a pinning reader; extra
  // threads cycle writer / scoped reader / pin reader / checkpointer.
  threads.emplace_back(WriterLoop, &h, seed * 31 + 1, 500);
  threads.emplace_back(PinReaderLoop, &h, seed * 31 + 2, 60, 4);
  for (int t = 2; t < n_threads; ++t) {
    const uint64_t tseed = seed * 31 + static_cast<uint64_t>(t) + 1;
    switch (t % 4) {
      case 0:
        threads.emplace_back(WriterLoop, &h, tseed, 300);
        break;
      case 1:
        threads.emplace_back(CheckpointerLoop, &h, 8);
        break;
      case 2:
        threads.emplace_back(ScopedReaderLoop, &h, tseed, 25, 6);
        break;
      default:
        threads.emplace_back(PinReaderLoop, &h, tseed, 40, 4);
        break;
    }
  }
  for (auto& t : threads) t.join();
  ASSERT_FALSE(h.failed.load()) << "replay with AI_FUZZ_SEED=" << seed;

  // Quiescent differential: the index agrees with the final oracle state.
  const auto final_live = h.LiveLocked();
  QueryContext ctx;
  uint64_t count = 0;
  ASSERT_TRUE(h.index.RangeCount(ValueRange{0, kDomain}, &ctx, &count).ok());
  EXPECT_EQ(count, final_live.size());
  int64_t sum = 0;
  int64_t want_sum = 0;
  for (const auto& [v, id] : final_live) want_sum += v;
  ASSERT_TRUE(h.index.RangeSum(ValueRange{0, kDomain}, &ctx, &sum).ok());
  EXPECT_EQ(sum, want_sum);
  EXPECT_EQ(h.index.snapshots().active_snapshots(), 0u);
  // The stream was long enough to exercise the fold machinery.
  EXPECT_GE(h.index.snapshots().deltas_published(), 500u);
  EXPECT_GT(h.index.snapshots().consolidations(), 0u);
}

TEST(SnapshotFuzzTest, FixedSeedReplaysDeterministically) {
  // A pinned regression seed: two runs of the single-writer configuration
  // must produce identical commit streams and final logical state. This is
  // the replay property the printed seed relies on.
  auto run = [](uint64_t seed) {
    Harness h(seed);
    Rng rng(seed * 31 + 1);
    QueryContext ctx;
    for (int i = 0; i < 400; ++i) CommitOne(&h, &rng, &ctx);
    std::vector<std::pair<Value, RowId>> out = h.LiveLocked();
    std::sort(out.begin(), out.end());
    return out;
  };
  const auto a = run(1234567);
  const auto b = run(1234567);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

}  // namespace
}  // namespace adaptidx
