#!/usr/bin/env python3
"""Warnings-as-errors documentation check for the public engine surface.

Every public method/function declared in the checked headers must be
preceded by a Doxygen comment block containing \\brief (a `///<` trailing
comment on the same line also counts for simple accessors/fields), and
every class-level doc block of the core API types must state its
thread-safety contract. An undocumented public declaration fails the
build (non-zero exit), keeping the API reference from rotting — the
grep-based stand-in for a full `doxygen` warnings-as-errors run, with no
doxygen binary needed in CI.

Usage: python3 tools/check_api_docs.py [repo_root]
"""

import re
import sys
from pathlib import Path

CHECKED_HEADERS = [
    "src/engine/session.h",
    "src/core/query.h",
    "src/core/adaptive_index.h",
    "src/core/index_factory.h",
    "src/core/snapshot.h",
    "src/core/updatable_index.h",
    "src/cracking/crack_policy.h",
    "src/server/server.h",
    "src/server/client.h",
    "src/durability/wal.h",
    "src/durability/durable_index.h",
]

# Classes whose *class-level* doc comment must mention thread safety.
THREAD_SAFETY_CLASSES = {
    "Session",
    "QueryTicket",
    "AdaptiveIndex",
    "Query",
    "QueryResult",
    "IndexConfig",
    "CrackDecision",
    "Snapshot",
    "SnapshotManager",
    "SnapshotScope",
    "UpdatableIndex",
    "Server",
    "Client",
    "WriteAheadLog",
    "DurableIndex",
}

# A declaration-looking line: optional specifiers, a return type, an
# identifier (or operator), then an open paren.
DECL_RE = re.compile(
    r"^\s*(?:\[\[.*?\]\]\s*)?"
    r"(?:template\s*<.*>\s*)?"
    r"(?:virtual\s+|static\s+|explicit\s+|friend\s+|constexpr\s+|inline\s+)*"
    r"[A-Za-z_][\w:<>,&*\s]*?"
    r"(?:\boperator\s*[^\s(]+|\b[A-Za-z_]\w*)\s*\("
)
ACCESS_RE = re.compile(r"^\s*(public|protected|private)\s*:")
CLASS_RE = re.compile(r"^\s*(?:class|struct)\s+([A-Za-z_]\w*)")
NON_DECL_STARTS = (
    "return", "if", "for", "while", "switch", "case", "}", "{", "assert",
    "using", "typedef",
)


class Scope:
    def __init__(self, name, depth, declared_public):
        self.name = name
        self.depth = depth  # brace depth *inside* the class body
        self.declared_public = declared_public  # class itself publicly visible
        self.access = "public"  # current section; caller overrides for class


def is_exempt(line: str) -> bool:
    """Defaulted/deleted members, destructors, and macros need no \\brief."""
    stripped = line.strip()
    return (
        "= default" in stripped
        or "= delete" in stripped
        or stripped.startswith("~")
        or stripped.startswith("#")
        or stripped.startswith("ADAPTIDX_")
    )


def check_header(path: Path) -> list:
    errors = []
    depth = 0
    scopes = []  # innermost last
    pending_doc = []  # the /// block accumulated directly above
    continuation = False

    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        stripped = raw.strip()
        if not stripped:
            continue

        if stripped.startswith("///"):
            pending_doc.append(stripped)
            continue
        if stripped.startswith("//"):
            continue

        opens = stripped.count("{")
        closes = stripped.count("}")

        cm = CLASS_RE.match(stripped)
        is_class_def = cm and not stripped.endswith(";") and (
            "enum" not in stripped)
        if is_class_def:
            name = cm.group(1)
            if name in THREAD_SAFETY_CLASSES:
                doc = " ".join(pending_doc).lower()
                if "thread" not in doc:
                    errors.append(
                        f"{path}:{lineno}: {name} doc comment does not state "
                        "its thread-safety contract"
                    )
            parent_public = (not scopes) or (
                scopes[-1].declared_public
                and scopes[-1].access == "public"
            )
            scope = Scope(name, depth + 1, parent_public)
            scope.access = (
                "public" if stripped.startswith("struct") else "private")
            scopes.append(scope)
            depth += opens - closes
            pending_doc = []
            continuation = False
            continue

        am = ACCESS_RE.match(stripped)
        if am and scopes:
            scopes[-1].access = am.group(1)
            pending_doc = []
            continue

        # Public = at namespace scope (free function) or inside a chain of
        # publicly visible classes with the current section public.
        if scopes:
            in_public = scopes[-1].declared_public and (
                scopes[-1].access == "public")
            at_member_depth = depth == scopes[-1].depth
        else:
            in_public = True
            at_member_depth = True  # namespace braces don't matter here

        looks_like_decl = (
            DECL_RE.match(stripped)
            and not continuation
            and not stripped.startswith(NON_DECL_STARTS)
            and not stripped[0] in "=&|"
        )
        if (in_public and at_member_depth and looks_like_decl
                and not is_exempt(stripped)):
            if pending_doc:
                if "\\brief" not in " ".join(pending_doc):
                    errors.append(
                        f"{path}:{lineno}: doc comment above public "
                        f"declaration has no \\brief: {stripped[:70]}"
                    )
            elif "///<" not in stripped:
                errors.append(
                    f"{path}:{lineno}: public declaration lacks a /// "
                    f"\\brief doc comment: {stripped[:70]}"
                )

        depth += opens - closes
        while scopes and depth < scopes[-1].depth:
            scopes.pop()
        continuation = stripped.endswith((",", "(", "&&", "||")) or (
            stripped.count("(") > stripped.count(")"))
        pending_doc = []
    return errors


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        __file__).resolve().parent.parent
    all_errors = []
    for rel in CHECKED_HEADERS:
        path = root / rel
        if not path.exists():
            all_errors.append(f"{path}: checked header missing")
            continue
        all_errors.extend(check_header(path))
    if all_errors:
        print(f"API doc check FAILED ({len(all_errors)} problems):")
        for e in all_errors:
            print(f"  {e}")
        return 1
    print(f"API doc check passed: {len(CHECKED_HEADERS)} headers clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
