#include "core/query.h"

#include <algorithm>

namespace adaptidx {

std::string ToString(QueryKind kind) {
  switch (kind) {
    case QueryKind::kCount:
      return "count";
    case QueryKind::kSum:
      return "sum";
    case QueryKind::kSumOther:
      return "sum-other";
    case QueryKind::kRowIds:
      return "row-ids";
    case QueryKind::kMinMax:
      return "min-max";
  }
  return "unknown";
}

void QueryResult::Merge(const QueryResult& other) {
  count += other.count;
  sum += other.sum;
  row_ids.insert(row_ids.end(), other.row_ids.begin(), other.row_ids.end());
  if (other.has_minmax) {
    if (has_minmax) {
      min_value = std::min(min_value, other.min_value);
      max_value = std::max(max_value, other.max_value);
    } else {
      min_value = other.min_value;
      max_value = other.max_value;
      has_minmax = true;
    }
  }
}

std::vector<Query> ToQueries(const std::string& table,
                             const std::string& column,
                             const std::vector<RangeQuery>& queries) {
  std::vector<Query> out;
  out.reserve(queries.size());
  for (const RangeQuery& q : queries) {
    out.push_back(Query::From(table, column, q));
  }
  return out;
}

}  // namespace adaptidx
