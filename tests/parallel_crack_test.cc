/// \file Suite for intra-query parallel cracking (parallel_crack.h) and its
/// integration: chunked crack/sort differentials against the sequential
/// kernels, the claim-based ParallelRun harness under pool saturation, the
/// coarse-granular piece floor, the versioned (latch-free) piece-map lookup
/// of the optimistic read path, the partition fan-out floor, the parallel
/// first-touch scatter, and the LatchStats plumbing through Session.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/cracking_index.h"
#include "core/index_factory.h"
#include "core/partitioned_index.h"
#include "cracking/cracker_array.h"
#include "cracking/parallel_crack.h"
#include "engine/session.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace adaptidx {
namespace {

// ------------------------------------------------- kernel differentials

std::vector<CrackerEntry> MakeEntries(const std::vector<Value>& values) {
  std::vector<CrackerEntry> entries;
  entries.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    entries.push_back(CrackerEntry{static_cast<RowId>(i), values[i]});
  }
  return entries;
}

std::vector<Value> RandomValues(size_t n, uint64_t seed, Value domain) {
  Rng rng(seed);
  std::vector<Value> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = rng.UniformRange(0, domain);
  return v;
}

/// The (value, rowID) multiset of [begin, end) in canonical order. Chunked
/// cracks permute within partitions, so all comparisons are per-region
/// multiset comparisons.
std::vector<std::pair<Value, RowId>> RegionPairs(const CrackerArray& a,
                                                 Position begin,
                                                 Position end) {
  std::vector<std::pair<Value, RowId>> pairs;
  pairs.reserve(end - begin);
  for (Position i = begin; i < end; ++i) {
    pairs.emplace_back(a.ValueAt(i), a.RowIdAt(i));
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

/// ParallelCrackTwo must return the sequential kernel's split position,
/// satisfy the normalized crack contract, and preserve the per-partition
/// (value, rowID) multisets of the sequential crack.
void CheckCrackTwo(const std::vector<Value>& values, ArrayLayout layout,
                   Value pivot, ThreadPool* pool, size_t chunks) {
  CrackerArray seq(MakeEntries(values), layout);
  CrackerArray par(MakeEntries(values), layout);
  const Position n = static_cast<Position>(values.size());

  const Position want = seq.CrackTwo(0, n, pivot);
  ParallelCrackStats stats;
  const Position got = ParallelCrackTwo(&par, 0, n, pivot, pool, chunks,
                                        &stats);

  ASSERT_EQ(want, got);
  for (Position i = 0; i < got; ++i) ASSERT_LT(par.ValueAt(i), pivot);
  for (Position i = got; i < n; ++i) ASSERT_GE(par.ValueAt(i), pivot);
  EXPECT_EQ(RegionPairs(seq, 0, want), RegionPairs(par, 0, got));
  EXPECT_EQ(RegionPairs(seq, want, n), RegionPairs(par, got, n));
}

TEST(ParallelCrackTwoTest, MatchesSequentialKernelAcrossShapes) {
  ThreadPool pool(3);
  // Sizes straddle the internal chunk-size clamp (1 << 12): below it the
  // call degrades to one chunk; at multiples +/- 1 the chunk boundaries
  // land on every alignment the merge has to repair.
  const size_t sizes[] = {0,    1,    2,     100,   4095,
                          4096, 4097, 16384, 16385, 50000};
  const ArrayLayout layouts[] = {ArrayLayout::kPairOfArrays,
                                 ArrayLayout::kRowIdValuePairs};
  for (ArrayLayout layout : layouts) {
    for (size_t n : sizes) {
      SCOPED_TRACE("n=" + std::to_string(n));
      const auto values =
          RandomValues(n, 11 * n + 7, static_cast<Value>(n + 1));
      for (size_t chunks : {size_t{2}, size_t{4}, size_t{7}}) {
        CheckCrackTwo(values, layout, static_cast<Value>(n / 2), &pool,
                      chunks);
      }
    }
  }
}

TEST(ParallelCrackTwoTest, HostileDistributions) {
  ThreadPool pool(3);
  const size_t n = 20000;
  // Duplicate-heavy: many elements equal the pivot on both sides of every
  // chunk split.
  std::vector<Value> dups(n);
  Rng rng(5);
  for (size_t i = 0; i < n; ++i) dups[i] = rng.UniformRange(0, 8);
  CheckCrackTwo(dups, ArrayLayout::kPairOfArrays, 4, &pool, 4);

  // All-equal: the split is 0 or n depending on the pivot side.
  std::vector<Value> equal(n, 42);
  CheckCrackTwo(equal, ArrayLayout::kPairOfArrays, 42, &pool, 4);
  CheckCrackTwo(equal, ArrayLayout::kPairOfArrays, 43, &pool, 4);

  // Sorted and reverse-sorted: every misplaced element is concentrated in
  // one run per chunk — the merge's worst and best cases.
  std::vector<Value> sorted(n);
  for (size_t i = 0; i < n; ++i) sorted[i] = static_cast<Value>(i);
  CheckCrackTwo(sorted, ArrayLayout::kRowIdValuePairs,
                static_cast<Value>(n / 3), &pool, 4);
  std::vector<Value> reversed(sorted.rbegin(), sorted.rend());
  CheckCrackTwo(reversed, ArrayLayout::kRowIdValuePairs,
                static_cast<Value>(n / 3), &pool, 4);
}

TEST(ParallelCrackTwoTest, NullPoolFallsBackToSequential) {
  const auto values = RandomValues(10000, 3, 10000);
  CheckCrackTwo(values, ArrayLayout::kPairOfArrays, 5000, nullptr, 8);
}

TEST(ParallelCrackThreeTest, MatchesSequentialKernel) {
  ThreadPool pool(3);
  const size_t sizes[] = {0, 1, 1000, 4097, 30000};
  for (size_t n : sizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const auto values = RandomValues(n, 13 * n + 1, static_cast<Value>(n + 1));
    const Value lo = static_cast<Value>(n / 4);
    const Value hi = static_cast<Value>(3 * n / 4);

    CrackerArray seq(MakeEntries(values), ArrayLayout::kPairOfArrays);
    CrackerArray par(MakeEntries(values), ArrayLayout::kPairOfArrays);
    const auto want = seq.CrackThree(0, static_cast<Position>(n), lo, hi);
    ParallelCrackStats stats;
    const auto got = ParallelCrackThree(&par, 0, static_cast<Position>(n),
                                        lo, hi, &pool, 4, &stats);

    ASSERT_EQ(want, got);
    for (Position i = 0; i < got.first; ++i) ASSERT_LT(par.ValueAt(i), lo);
    for (Position i = got.first; i < got.second; ++i) {
      ASSERT_GE(par.ValueAt(i), lo);
      ASSERT_LT(par.ValueAt(i), hi);
    }
    for (Position i = got.second; i < static_cast<Position>(n); ++i) {
      ASSERT_GE(par.ValueAt(i), hi);
    }
    EXPECT_EQ(RegionPairs(seq, 0, want.first), RegionPairs(par, 0, got.first));
    EXPECT_EQ(RegionPairs(seq, want.first, want.second),
              RegionPairs(par, got.first, got.second));
    EXPECT_EQ(RegionPairs(seq, want.second, static_cast<Position>(n)),
              RegionPairs(par, got.second, static_cast<Position>(n)));
  }
}

TEST(ParallelSortValuesTest, SortsLikeStdSort) {
  ThreadPool pool(3);
  const size_t sizes[] = {0, 1, 2, 3, 1000, 4095, 4097, 65536, 70001};
  for (size_t n : sizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    auto values = RandomValues(n, 17 * n + 3, static_cast<Value>(n / 2 + 1));
    auto want = values;
    std::sort(want.begin(), want.end());
    ParallelSortValues(&values, &pool, 5);
    EXPECT_EQ(want, values);
  }
}

TEST(ParallelRunTest, CompletesNestedRunsOnSaturatedPool) {
  // Claim-based execution: even when every pool worker is itself blocked
  // inside an inner ParallelRun, the submitting threads drain the task
  // counters themselves — no deadlock, no lost task.
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  ParallelRun(&pool, 4, [&](size_t) {
    ParallelRun(&pool, 8, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 32u);

  // Null pool and single task degrade to serial loops.
  std::atomic<size_t> serial{0};
  ParallelRun(nullptr, 5, [&](size_t) { serial.fetch_add(1); });
  ParallelRun(&pool, 1, [&](size_t) { serial.fetch_add(1); });
  EXPECT_EQ(serial.load(), 6u);
}

// ------------------------------------------------- coarse-granular floor

TEST(CoarseFloorTest, CapsPieceMapGrowthAndStaysCorrect) {
  constexpr size_t kRows = 30000;
  Column column = Column::UniqueRandom("A", kRows, 77);
  RangeOracle oracle(column);

  CrackingOptions coarse;
  coarse.mode = ConcurrencyMode::kNone;
  coarse.min_piece_size = 256;
  CrackingOptions unbounded = coarse;
  unbounded.min_piece_size = 0;
  unbounded.sort_piece_threshold = 0;

  CrackingIndex floor_index(&column, coarse);
  CrackingIndex free_index(&column, unbounded);

  Rng rng(123);
  for (int i = 0; i < 4000; ++i) {
    Value lo = rng.UniformRange(0, kRows);
    Value hi = std::min<Value>(static_cast<Value>(kRows), lo + 50);
    for (CrackingIndex* index : {&floor_index, &free_index}) {
      QueryContext ctx;
      QueryResult result;
      ASSERT_TRUE(
          index->Execute(Query::Sum("", "", lo, hi), &ctx, &result).ok());
      ASSERT_EQ(result.sum, oracle.Sum(lo, hi)) << "query " << i;
    }
  }

  // The floor must have fired, capped the piece count well below the
  // unbounded index's, and left a structurally valid index (sorted pieces
  // actually sorted, tiling intact).
  EXPECT_GT(floor_index.latch_stats().coarse_sort_hits(), 0u);
  EXPECT_LT(floor_index.NumPieces(), free_index.NumPieces());
  EXPECT_TRUE(floor_index.ValidateStructure());
  EXPECT_TRUE(free_index.ValidateStructure());

  // Quiescence: with 4000 50-wide queries over 30000 rows every piece has
  // been driven at or below the floor, so the piece map has stopped
  // growing; the unbounded index keeps accumulating pieces.
  const size_t settled = floor_index.NumPieces();
  for (int i = 0; i < 500; ++i) {
    Value lo = rng.UniformRange(0, kRows);
    QueryContext ctx;
    QueryResult result;
    ASSERT_TRUE(floor_index
                    .Execute(Query::Sum("", "", lo,
                                        std::min<Value>(
                                            static_cast<Value>(kRows),
                                            lo + 50)),
                             &ctx, &result)
                    .ok());
  }
  EXPECT_EQ(floor_index.NumPieces(), settled);
}

// ----------------------------------------- versioned piece-map lookups

TEST(VersionedPieceMapTest, SingleThreadOptimisticNeverLocksLookups) {
  // The point of the published boundary snapshot: an uncontended optimistic
  // reader locates every piece it streams without a single structure_mu_
  // acquisition. kSum reads data (needs_guard), so each region walk records
  // its lookups.
  constexpr size_t kRows = 20000;
  Column column = Column::UniqueRandom("A", kRows, 9);
  RangeOracle oracle(column);

  CrackingOptions opts;
  opts.mode = ConcurrencyMode::kOptimistic;
  CrackingIndex index(&column, opts);

  Rng rng(31);
  for (int i = 0; i < 300; ++i) {
    Value lo = rng.UniformRange(0, kRows);
    Value hi = rng.UniformRange(0, kRows);
    if (lo > hi) std::swap(lo, hi);
    QueryContext ctx;
    QueryResult result;
    ASSERT_TRUE(
        index.Execute(Query::Sum("", "", lo, hi), &ctx, &result).ok());
    ASSERT_EQ(result.sum, oracle.Sum(lo, hi));
  }

  EXPECT_GT(index.latch_stats().piece_lookups_snapshot(), 0u);
  EXPECT_EQ(index.latch_stats().piece_lookups_locked(), 0u);
}

TEST(VersionedPieceMapTest, ConcurrentReadersAgreeWithOracleWhileSplitting) {
  // Readers racing crackers resolve pieces against possibly-stale
  // snapshots; staleness must only ever cost a retry through the locked
  // path, never a wrong answer. Every answer is checked against the oracle
  // while all threads keep splitting pieces.
  constexpr size_t kRows = 50000;
  Column column = Column::UniqueRandom("A", kRows, 321);
  RangeOracle oracle(column);

  CrackingOptions opts;
  opts.mode = ConcurrencyMode::kOptimistic;
  opts.min_piece_size = 64;
  CrackingIndex index(&column, opts);

  std::atomic<bool> ok{true};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(500 + static_cast<uint64_t>(c) * 17);
      for (int i = 0; i < 400 && ok.load(std::memory_order_relaxed); ++i) {
        Value lo = rng.UniformRange(0, kRows);
        Value hi = rng.UniformRange(0, kRows);
        if (lo > hi) std::swap(lo, hi);
        QueryContext ctx;
        QueryResult result;
        if (!index.Execute(Query::Sum("", "", lo, hi), &ctx, &result).ok() ||
            result.sum != oracle.Sum(lo, hi)) {
          ok.store(false);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_GT(index.latch_stats().piece_lookups_snapshot(), 0u);
  EXPECT_TRUE(index.ValidateStructure());
}

// ------------------------------------------------- LatchStats plumbing

TEST(ParallelCrackStatsTest, CountersSurfaceThroughSession) {
  constexpr size_t kRows = 100000;
  Column column = Column::UniqueRandom("A", kRows, 55);
  RangeOracle oracle(column);
  ThreadPool pool(3);

  CrackingOptions opts;
  opts.mode = ConcurrencyMode::kPieceLatch;
  opts.pool = &pool;
  opts.parallel_crack_min_piece = 1024;  // first-touch cracks qualify
  opts.min_piece_size = 64;
  CrackingIndex index(&column, opts);

  auto session = Session::OnIndex(&index, nullptr);
  Rng rng(8);
  for (int i = 0; i < 600; ++i) {
    Value lo = rng.UniformRange(0, kRows);
    Value hi = std::min<Value>(static_cast<Value>(kRows), lo + 100);
    int64_t sum = 0;
    ASSERT_TRUE(session->Sum("", "", lo, hi, &sum).ok());
    ASSERT_EQ(sum, oracle.Sum(lo, hi));
  }

  const LatchStats* stats = session->IndexLatchStats("", "");
  ASSERT_NE(stats, nullptr);
  // The first query cracked the whole 100k-row piece through the chunked
  // path; each parallel crack dispatched at least two chunk tasks.
  EXPECT_GT(stats->parallel_cracks(), 0u);
  EXPECT_GE(stats->parallel_crack_chunks(), 2 * stats->parallel_cracks());
  EXPECT_GE(stats->parallel_crack_merge_ns(), 0);
  // 600 narrow queries over 100k rows drive pieces down to the floor.
  EXPECT_GT(stats->coarse_sort_hits(), 0u);
  EXPECT_TRUE(index.ValidateStructure());
}

// ------------------------------------------------- partition fan-out

TEST(FanOutFloorTest, SmallColumnSkipsPartitioning) {
  Column small = Column::UniqueRandom("A", 1000, 2);
  IndexConfig config;
  config.method = IndexMethod::kCrack;
  config.partitions = 4;
  config.partition_needs_cores = false;  // isolate the row floor

  // 1000 rows < 4 * 4096: the wrapper is skipped, the method built direct.
  auto direct = MakeIndex(&small, config);
  EXPECT_EQ(direct->Name(), "crack");

  // Disabling the floor restores the requested fan-out.
  config.min_rows_per_shard = 0;
  auto partitioned = MakeIndex(&small, config);
  EXPECT_EQ(partitioned->Name(), "crack-p4");

  // The hardware floor: on a single-hardware-thread host fan-out is pure
  // overhead and the wrapper is skipped even with the row floor disabled.
  IndexConfig hw_gated = config;
  hw_gated.partition_needs_cores = true;
  auto gated = MakeIndex(&small, hw_gated);
  EXPECT_EQ(gated->Name(), std::thread::hardware_concurrency() > 1
                               ? "crack-p4"
                               : "crack");

  // Both floors participate in physical identity: configs that materialize
  // differently must not collide on one catalog entry.
  IndexConfig floored = config;
  floored.min_rows_per_shard = 4096;
  EXPECT_NE(IndexConfigKey(config), IndexConfigKey(floored));
  EXPECT_NE(IndexConfigKey(config), IndexConfigKey(hw_gated));
}

TEST(ParallelScatterTest, MatchesSerialClassificationAndOracle) {
  // Large enough that EnsureInitialized takes the two-phase parallel
  // scatter (n >= 1 << 16 with a pool); the chunk-ordered concatenation
  // must reproduce the serial scatter exactly, which the routing invariant
  // below and the oracle differential witness.
  constexpr size_t kRows = 1u << 17;
  Column column = Column::UniqueRandom("A", kRows, 99);
  RangeOracle oracle(column);
  ThreadPool pool(3);

  IndexConfig config;
  config.method = IndexMethod::kCrack;
  config.partitions = 4;
  config.min_rows_per_shard = 0;
  config.pool = &pool;
  PartitionedIndex index(&column, config);

  QueryContext ctx;
  QueryResult result;
  ASSERT_TRUE(index
                  .Execute(Query::Count("", "", 0,
                                        static_cast<Value>(kRows)),
                           &ctx, &result)
                  .ok());
  EXPECT_EQ(result.count, kRows);

  // Every row lands in the shard its value routes to, in base order: the
  // per-shard sizes must equal a serial classification over the bounds.
  const std::vector<Value> bounds = index.ShardBounds();
  const std::vector<size_t> sizes = index.ShardSizes();
  ASSERT_EQ(sizes.size(), bounds.size() + 1);
  std::vector<size_t> want(sizes.size(), 0);
  for (size_t i = 0; i < kRows; ++i) {
    const size_t s = static_cast<size_t>(
        std::upper_bound(bounds.begin(), bounds.end(),
                         column.data()[i]) -
        bounds.begin());
    ++want[s];
  }
  EXPECT_EQ(sizes, want);

  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    Value lo = rng.UniformRange(0, kRows);
    Value hi = rng.UniformRange(0, kRows);
    if (lo > hi) std::swap(lo, hi);
    QueryContext qctx;
    QueryResult r;
    ASSERT_TRUE(index.Execute(Query::RowIds("", "", lo, hi), &qctx, &r).ok());
    ASSERT_TRUE(oracle.CheckRowIds(lo, hi, r.row_ids));
  }
}

}  // namespace
}  // namespace adaptidx
