#ifndef ADAPTIDX_ENGINE_DATABASE_H_
#define ADAPTIDX_ENGINE_DATABASE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/index_factory.h"
#include "durability/durable_index.h"
#include "engine/operators.h"
#include "engine/session.h"
#include "lock/lock_manager.h"
#include "storage/catalog.h"
#include "util/thread_pool.h"

namespace adaptidx {

/// \brief Small embedded-database facade tying the catalog, adaptive
/// indexes, the lock manager, and the shared execution pool together; this
/// is the public entry point.
///
/// Queries flow through sessions: `OpenSession` hands out a `Session` that
/// owns client/transaction identity, pins an access-method configuration,
/// and submits `Query` descriptors asynchronously (`Submit`/`SubmitBatch`,
/// executed on the database's shared thread pool) or synchronously via
/// typed wrappers. (The pre-session one-shot `Count`/`Sum`/`SumOther`
/// shims are gone; the build enforces `-Werror=deprecated-declarations` so
/// retired APIs cannot linger at call sites.)
///
/// Index life cycle follows Section 5.3: query execution latches the catalog
/// (the global structure) only to locate or register the index for a column,
/// then all further coordination happens on the index's own latches.
class Database {
 public:
  Database() = default;

  /// \brief Creates a table from a set of aligned columns.
  Status CreateTable(const std::string& name, std::vector<Column> columns);

  Table* GetTable(const std::string& name) {
    return catalog_.GetTable(name);
  }

  /// \brief Opens a session. Sessions must be closed (destroyed) before the
  /// database; closing drains the session's in-flight queries.
  std::unique_ptr<Session> OpenSession(SessionOptions opts = {});

  /// \brief The shared query-execution pool, created on first use (one
  /// thread per hardware context). Synchronous-only workloads never touch
  /// it.
  ThreadPool* pool();

  /// \brief Returns the shared adaptive index for `table`.`column` under
  /// `config`, creating it on first use. Distinct methods — or identical
  /// methods under distinguishing options (see IndexConfigKey) — coexist on
  /// the same column as distinct catalog entries, which is how benchmarks
  /// compare configurations on identical data.
  std::shared_ptr<AdaptiveIndex> GetOrCreateIndex(const std::string& table,
                                                  const std::string& column,
                                                  const IndexConfig& config);

  /// \brief Drops the index entry; adaptive indexes "can be dropped at any
  /// time" (Section 4.2).
  bool DropIndex(const std::string& table, const std::string& column,
                 const IndexConfig& config);

  /// \brief Opens (recovering if the directory holds state) a durable,
  /// WAL-backed updatable index named `name`, seeded from `seed` on a
  /// virgin data directory. The database owns it; repeated calls with the
  /// same name return the already-open instance. The durable index uses
  /// this database's lock manager with `name` as the lock resource.
  Status OpenDurableIndex(const std::string& name, const Column& seed,
                          const IndexConfig& config,
                          const DurabilityOptions& opts, DurableIndex** out);

  Catalog* catalog() { return &catalog_; }
  LockManager* lock_manager() { return &lock_manager_; }

 private:
  static std::string IndexKey(const std::string& table,
                              const std::string& column,
                              const IndexConfig& config);

  Catalog catalog_;
  LockManager lock_manager_;
  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;
  std::mutex durable_mu_;
  std::map<std::string, std::unique_ptr<DurableIndex>> durable_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_ENGINE_DATABASE_H_
