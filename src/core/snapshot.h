#ifndef ADAPTIDX_CORE_SNAPSHOT_H_
#define ADAPTIDX_CORE_SNAPSHOT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "storage/types.h"

namespace adaptidx {

/// \brief One immutable, epoch-stamped copy of the differential side
/// stores of an `UpdatableIndex` (pending inserts + anti-matter) — the
/// multi-version representation behind snapshot reads.
///
/// The paper's Section 4.2/4.3 design treats adaptive merging's
/// differential files as the natural place for multi-version concurrency:
/// the base column is immutable between checkpoints, so versioning the
/// *differentials* versions the whole logical column. Every committed
/// `Insert`/`Delete` builds the next version under the writer's exclusive
/// latch (copy-on-write — versions share nothing and are never mutated
/// after publication); readers that captured an earlier version keep
/// reading it latch-free while writers race ahead.
///
/// Thread-safety: immutable after construction; any number of threads may
/// read one version concurrently without synchronization.
struct SideStoreVersion {
  /// The commit epoch this version materializes: the state after the
  /// `epoch`-th committed update (epoch 0 = pristine base).
  uint64_t epoch = 0;
  /// The next row id the index would assign at this epoch. Checkpoints
  /// persist it so recovery resumes the id sequence exactly where the
  /// captured state left off (replayed WAL inserts must reproduce the row
  /// ids the original run acknowledged).
  RowId next_row_id = 0;
  /// Pending insertions, sorted by (value, rowID).
  std::vector<std::pair<Value, RowId>> inserts;
  /// Anti-matter (deletion markers against base rows), sorted by
  /// (value, rowID).
  std::vector<std::pair<Value, RowId>> anti_matter;

  /// \brief Count and sum of pending inserts falling in [range.lo,
  /// range.hi).
  void InsertCountSum(const ValueRange& range, uint64_t* count,
                      int64_t* sum) const;

  /// \brief Count and sum of anti-matter markers falling in [range.lo,
  /// range.hi).
  void AntiMatterCountSum(const ValueRange& range, uint64_t* count,
                          int64_t* sum) const;

  /// \brief Whether base row (`v`, `id`) is hidden by an anti-matter
  /// marker in this version.
  bool HidesRow(Value v, RowId id) const;

  /// \brief Index of the first pending insert with value >= `lo`
  /// (for in-range iteration: advance while `inserts[i].first < hi`).
  size_t FirstInsertAtOrAbove(Value lo) const;

  /// \brief True when at least one anti-matter marker falls in the range —
  /// the predicate that decides whether a min/max answer from the base
  /// index can be trusted.
  bool AnyAntiMatterIn(const ValueRange& range) const;
};

class SnapshotManager;

/// \brief A pinned, consistent view of an `UpdatableIndex` at one commit
/// epoch and base generation — the read end of the MVCC layer.
///
/// A snapshot is captured in O(1) (a short pin on the manager, no
/// side-table latch) and holds exactly the differential state of its
/// `epoch()`: updates committed after capture are invisible, so re-running
/// a query against the same snapshot always returns the identical answer
/// (repeatable read). The base column/index referenced by
/// `base_generation()` is guaranteed stable while the snapshot is held:
/// `UpdatableIndex::Checkpoint()` drains (waits for) every outstanding
/// snapshot before swapping the base.
///
/// Because checkpoints — and the index destructor — wait on outstanding
/// snapshots, a thread must never call `Checkpoint()` on, or destroy, the
/// index while itself holding one of its snapshots (self-deadlock).
/// Release (destroy) snapshots promptly; a pin held by another thread
/// simply blocks the checkpoint/destruction until released, it never
/// dangles.
///
/// Thread-safety: a Snapshot is a move-only value owned by one thread;
/// concurrent snapshots of the same index are independent and may be
/// captured/read/released from any number of threads.
class Snapshot {
 public:
  /// \brief An empty (invalid) snapshot; pins nothing.
  Snapshot() = default;

  /// \brief Releases the pin (unblocking a draining checkpoint and making
  /// retired versions reclaimable).
  ~Snapshot() { Release(); }

  Snapshot(Snapshot&& other) noexcept { *this = std::move(other); }
  Snapshot& operator=(Snapshot&& other) noexcept;
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  /// \brief False for default-constructed or released snapshots.
  bool valid() const { return version_ != nullptr; }

  /// \brief The commit epoch this snapshot reads at.
  uint64_t epoch() const { return version_ != nullptr ? version_->epoch : 0; }

  /// \brief The base-column generation (bumped by every checkpoint) this
  /// snapshot's rowIDs and base answers are expressed against.
  uint64_t base_generation() const { return base_generation_; }

  /// \brief The pinned immutable differential state. Requires `valid()`.
  const SideStoreVersion& version() const { return *version_; }

  /// \brief Explicitly drops the pin early (idempotent).
  void Release();

 private:
  friend class SnapshotManager;
  friend class UpdatableIndex;  ///< validates snapshot/index pairing

  Snapshot(SnapshotManager* mgr,
           std::shared_ptr<const SideStoreVersion> version,
           uint64_t base_generation)
      : mgr_(mgr),
        version_(std::move(version)),
        base_generation_(base_generation) {}

  SnapshotManager* mgr_ = nullptr;
  std::shared_ptr<const SideStoreVersion> version_;
  uint64_t base_generation_ = 0;
};

/// \brief Publishes, pins, drains, and reclaims `SideStoreVersion`s — the
/// version-chain bookkeeping of the MVCC layer.
///
/// Writer protocol: after mutating the side stores under the index's
/// exclusive latch, the writer calls `Publish` with the next version; the
/// previous current version is *retired* (it may still be pinned by
/// readers). Reader protocol: `Acquire` pins the current version under a
/// short internal mutex — the "short pin" — and the returned `Snapshot`
/// releases it on destruction. Checkpoint protocol: `BeginRebase` blocks
/// new acquisitions and waits until every outstanding snapshot is
/// released, the caller swaps the base, then `CompleteRebase` installs the
/// post-checkpoint version under the next base generation and re-admits
/// readers.
///
/// Reclamation is epoch-based: a retired version is dropped from the chain
/// as soon as no active snapshot pins its epoch — immediately on
/// retirement in the common no-reader case. A pinned version stays alive
/// through the snapshot's own reference regardless, so the chain holds at
/// most one entry per actively pinned epoch and a long-held snapshot
/// beside a fast update stream retains O(pinned epochs), not O(commits),
/// versions. The `versions_*` counters make retirement/reclamation
/// observable to tests.
///
/// Thread-safety: fully synchronized internally; all methods may be called
/// from any thread. `BeginRebase`/`CompleteRebase` must be paired and are
/// mutually exclusive with each other (the index's exclusive latch
/// provides that).
class SnapshotManager {
 public:
  SnapshotManager();

  /// \brief Installs `version` as current (its epoch must be monotonically
  /// increasing); the previous current version is retired and reclamation
  /// runs.
  void Publish(std::shared_ptr<const SideStoreVersion> version);

  /// \brief Pins the current version. Blocks while a rebase (checkpoint
  /// drain) is in progress.
  Snapshot Acquire();

  /// \brief Pins an externally materialized version (the capture path of an
  /// index that does not maintain the chain, see
  /// `IndexConfig::snapshot_reads`) — the version joins the active registry
  /// so checkpoint drains account for it. Returns an *invalid* snapshot
  /// instead of blocking when a rebase is in progress: the caller typically
  /// holds the index latch while materializing, and waiting under it would
  /// deadlock against the rebase. Drop the latch, `AwaitRebaseComplete`,
  /// re-materialize, retry.
  Snapshot TryAcquireMaterialized(
      std::shared_ptr<const SideStoreVersion> version);

  /// \brief Blocks while a rebase is in progress. Must be called WITHOUT
  /// holding any latch the rebasing thread needs.
  void AwaitRebaseComplete();

  /// \brief Checkpoint entry: serializes against other rebases, blocks new
  /// acquisitions, then waits until no snapshot is active. Must be called
  /// WITHOUT holding the index latch — snapshot holders may need it to
  /// finish the read their pin protects (see `UpdatableIndex::Checkpoint`
  /// for the ordering).
  void BeginRebase();

  /// \brief Checkpoint exit: installs the post-checkpoint `version`, bumps
  /// the base generation, drops the (now meaningless) retired chain, and
  /// re-admits readers.
  void CompleteRebase(std::shared_ptr<const SideStoreVersion> version);

  /// \brief Generation of the base column current snapshots read against;
  /// bumped by every `CompleteRebase`.
  uint64_t base_generation() const;

  /// \brief Epoch of the currently published version.
  uint64_t current_epoch() const;

  /// \brief Number of snapshots currently pinned.
  size_t active_snapshots() const;

  /// \brief Oldest epoch pinned by an active snapshot; `current_epoch()`
  /// when none is active.
  uint64_t oldest_active_epoch() const;

  // ---- reclamation observability (tests/benchmarks) --------------------

  uint64_t versions_published() const;  ///< `Publish`/`CompleteRebase` calls
  uint64_t versions_retired() const;    ///< versions superseded while current
  uint64_t versions_reclaimed() const;  ///< retired versions dropped again
  size_t retired_chain_length() const;  ///< retired versions still held

 private:
  friend class Snapshot;

  /// Unpins one snapshot at `epoch`; runs reclamation and wakes a draining
  /// rebase when the registry empties.
  void Release(uint64_t epoch);

  /// Drops every retired version whose epoch no active snapshot pins.
  /// Requires mu_ held.
  void ReclaimLocked();

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< drain progress + rebase completion
  bool rebasing_ = false;
  std::shared_ptr<const SideStoreVersion> current_;
  uint64_t base_generation_ = 0;
  /// Pin counts per epoch of every active snapshot.
  std::map<uint64_t, size_t> active_;
  /// Superseded versions whose epoch is still pinned, oldest first.
  std::deque<std::shared_ptr<const SideStoreVersion>> retired_;
  uint64_t published_ = 0;
  uint64_t retired_total_ = 0;
  uint64_t reclaimed_ = 0;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_CORE_SNAPSHOT_H_
