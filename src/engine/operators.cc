#include "engine/operators.h"

#include <vector>

namespace adaptidx {

Status ExecuteQuery(AdaptiveIndex* index, const RangeQuery& query,
                    QueryContext* ctx, QueryResult* result) {
  result->type = query.type;
  const ValueRange range{query.lo, query.hi};
  if (query.type == QueryType::kCount) {
    return index->RangeCount(range, ctx, &result->count);
  }
  return index->RangeSum(range, ctx, &result->sum);
}

QueryResult OracleExecute(const Column& column, const RangeQuery& query) {
  QueryResult r;
  r.type = query.type;
  for (size_t i = 0; i < column.size(); ++i) {
    const Value v = column[i];
    if (v >= query.lo && v < query.hi) {
      ++r.count;
      r.sum += v;
    }
  }
  if (query.type == QueryType::kCount) r.sum = 0;
  if (query.type == QueryType::kSum) r.count = 0;
  return r;
}

Status FetchSum(AdaptiveIndex* a_index, const Column& b_column,
                const RangeQuery& query, QueryContext* ctx, int64_t* sum) {
  // Select: qualifying positions as rowIDs, through the adaptive index.
  std::vector<RowId> ids;
  Status s = a_index->RangeRowIds(ValueRange{query.lo, query.hi}, ctx, &ids);
  if (!s.ok()) return s;
  // Fetch + aggregate: positional access into the aligned column B; the
  // base columns are immutable, so this phase needs no latches — the
  // column-store property that lets adaptive indexing hold latches only
  // for the brief select phase (Section 5.1).
  int64_t total = 0;
  for (const RowId id : ids) total += b_column[id];
  *sum = total;
  return Status::OK();
}

int64_t OracleFetchSum(const Column& a_column, const Column& b_column,
                       const RangeQuery& query) {
  int64_t total = 0;
  for (size_t i = 0; i < a_column.size(); ++i) {
    const Value v = a_column[i];
    if (v >= query.lo && v < query.hi) total += b_column[i];
  }
  return total;
}

}  // namespace adaptidx
