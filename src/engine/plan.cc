#include "engine/plan.h"

#include "util/stopwatch.h"

namespace adaptidx {

PlanBuilder::PlanBuilder(Database* db, std::string table)
    : db_(db), table_(std::move(table)) {}

PlanBuilder::PlanBuilder(Session* session, std::string table)
    : db_(session->database()), session_(session), table_(std::move(table)) {
  if (db_ == nullptr) {
    deferred_error_ = Status::InvalidArgument(
        "session-bound plans require a database session");
  }
}

PlanBuilder& PlanBuilder::SelectRange(const std::string& column, Value lo,
                                      Value hi) {
  if (session_ == nullptr) {
    deferred_error_ = Status::InvalidArgument(
        "SelectRange without a config requires a session-bound plan");
    return *this;
  }
  return SelectRange(column, lo, hi, session_->config());
}

PlanBuilder& PlanBuilder::SelectRange(const std::string& column, Value lo,
                                      Value hi, const IndexConfig& config) {
  if (has_select_) {
    deferred_error_ =
        Status::InvalidArgument("SelectRange may only start a plan once");
    return *this;
  }
  has_select_ = true;
  select_column_ = column;
  select_lo_ = lo;
  select_hi_ = hi;
  select_config_ = config;
  return *this;
}

PlanBuilder& PlanBuilder::FilterRange(const std::string& column, Value lo,
                                      Value hi) {
  filters_.push_back(FilterStep{column, lo, hi});
  return *this;
}

Status PlanBuilder::Execute(QueryContext* ctx) {
  if (!deferred_error_.ok()) return deferred_error_;
  if (executed_) return Status::InvalidArgument("plan already executed");
  if (!has_select_) {
    return Status::InvalidArgument("plan needs a SelectRange operator");
  }
  executed_ = true;

  // Session-bound plans execute under the session's identity.
  if (session_ != nullptr) {
    ctx->client_id = session_->client_id();
    ctx->txn_id = session_->txn_id();
    ctx->session_id = session_->session_id();
  }

  Table* table = db_->GetTable(table_);
  if (table == nullptr) return Status::NotFound("no such table: " + table_);

  // Select operator: the only one that touches the adaptive index (and its
  // latches); it finishes before any other operator starts, operator-at-a-
  // time style.
  auto index = db_->GetOrCreateIndex(table_, select_column_, select_config_);
  if (index == nullptr) {
    return Status::NotFound("no such column: " + select_column_);
  }
  Status s =
      index->RangeRowIds(ValueRange{select_lo_, select_hi_}, ctx, &ids_);
  if (!s.ok()) return s;

  // Filter operators: bulk positional refinement over immutable base
  // columns; latch-free by construction.
  for (const FilterStep& f : filters_) {
    const Column* col = table->GetColumn(f.column);
    if (col == nullptr) return Status::NotFound("no such column: " + f.column);
    ScopedTimer t(&ctx->stats.read_ns);
    size_t kept = 0;
    for (const RowId id : ids_) {
      const Value v = (*col)[id];
      if (v >= f.lo && v < f.hi) ids_[kept++] = id;
    }
    ids_.resize(kept);
  }
  return Status::OK();
}

Status PlanBuilder::Count(QueryContext* ctx, uint64_t* count) {
  Status s = Execute(ctx);
  if (!s.ok()) return s;
  *count = ids_.size();
  return Status::OK();
}

Status PlanBuilder::Sum(const std::string& column, QueryContext* ctx,
                        int64_t* sum) {
  Status s = Execute(ctx);
  if (!s.ok()) return s;
  const Column* col = db_->GetTable(table_)->GetColumn(column);
  if (col == nullptr) return Status::NotFound("no such column: " + column);
  ScopedTimer t(&ctx->stats.read_ns);
  int64_t total = 0;
  for (const RowId id : ids_) total += (*col)[id];
  *sum = total;
  return Status::OK();
}

Status PlanBuilder::Collect(const std::string& column, QueryContext* ctx,
                            std::vector<Value>* values) {
  Status s = Execute(ctx);
  if (!s.ok()) return s;
  const Column* col = db_->GetTable(table_)->GetColumn(column);
  if (col == nullptr) return Status::NotFound("no such column: " + column);
  ScopedTimer t(&ctx->stats.read_ns);
  values->clear();
  values->reserve(ids_.size());
  for (const RowId id : ids_) values->push_back((*col)[id]);
  return Status::OK();
}

Status PlanBuilder::RowIds(QueryContext* ctx, std::vector<RowId>* row_ids) {
  Status s = Execute(ctx);
  if (!s.ok()) return s;
  *row_ids = ids_;
  return Status::OK();
}

}  // namespace adaptidx
