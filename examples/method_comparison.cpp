/// \file Method comparison on a drifting workload: a business day where
/// analysts first explore uniformly, then pile onto one hot region. Shows
/// how every access method of the paper behaves on identical queries:
/// scan (no learning), sort (all cost up front), cracking (lazy, steady
/// improvement), adaptive merging (heavy first query, fast convergence),
/// hybrid crack-sort (lazy start *and* fast convergence), and the
/// partitioned-B-tree realization of merging.
///
///   $ ./build/examples/method_comparison

#include <cstdio>
#include <memory>
#include <vector>

#include "core/index_factory.h"
#include "engine/operators.h"
#include "util/stopwatch.h"
#include "workload/workload.h"

using namespace adaptidx;

namespace {

struct PhaseResult {
  double first_ms = 0;
  double total_ms = 0;
};

PhaseResult RunPhase(AdaptiveIndex* index,
                     const std::vector<RangeQuery>& queries) {
  PhaseResult out;
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryContext ctx;
    QueryResult result;
    StopWatch sw;
    (void)ExecuteQuery(index, queries[i], &ctx, &result);
    const double ms = sw.ElapsedMillis();
    if (i == 0) out.first_ms = ms;
    out.total_ms += ms;
  }
  return out;
}

}  // namespace

int main() {
  constexpr size_t kRows = 2'000'000;
  Column column = Column::UniqueRandom("A", kRows, 31);

  // Morning: 128 uniform exploratory queries over the whole domain.
  WorkloadGenerator whole(0, kRows);
  WorkloadOptions morning_opts;
  morning_opts.num_queries = 128;
  morning_opts.selectivity = 0.002;
  morning_opts.type = QueryType::kSum;
  morning_opts.seed = 41;
  const auto morning = whole.Generate(morning_opts);

  // Afternoon: 256 queries hammering the hottest 5% of the domain.
  WorkloadGenerator hot(0, kRows / 20);
  WorkloadOptions noon_opts;
  noon_opts.num_queries = 256;
  noon_opts.selectivity = 0.01;
  noon_opts.type = QueryType::kSum;
  noon_opts.seed = 43;
  const auto afternoon = hot.Generate(noon_opts);

  std::printf("Drifting workload: %zu rows; morning = %zu uniform queries, "
              "afternoon = %zu hot-spot queries\n\n",
              kRows, morning.size(), afternoon.size());
  std::printf("%-12s %14s %14s %14s %12s\n", "method", "first query",
              "morning total", "afternoon tot", "pieces");

  for (IndexMethod m :
       {IndexMethod::kScan, IndexMethod::kSort, IndexMethod::kCrack,
        IndexMethod::kAdaptiveMerge, IndexMethod::kHybrid,
        IndexMethod::kBTreeMerge}) {
    IndexConfig config;
    config.method = m;
    config.merge.run_size = kRows / 16;
    config.hybrid.partition_size = kRows / 16;
    config.btree.run_size = 1u << 15;
    // The B-tree substrate pays per-record insertion costs; keep it at a
    // fraction of the data so the example stays snappy.
    std::unique_ptr<Column> small;
    const Column* data = &column;
    if (m == IndexMethod::kBTreeMerge) {
      small = std::make_unique<Column>(
          Column::UniqueRandom("A", kRows / 8, 31));
      data = small.get();
    }
    auto index = MakeIndex(data, config);
    const PhaseResult am = RunPhase(index.get(), morning);
    const PhaseResult pm = RunPhase(index.get(), afternoon);
    std::printf("%-12s %12.1fms %12.1fms %12.1fms %12zu\n",
                ToString(m).c_str(), am.first_ms, am.total_ms, pm.total_ms,
                index->NumPieces());
  }

  std::printf(
      "\nHow to read this: scan never improves; sort spends everything on\n"
      "query 1; crack starts cheap and keeps improving where queries go;\n"
      "merge invests in sorted runs up front and converges fast; hybrid\n"
      "starts cheap like cracking but pays physical extraction costs while\n"
      "ranges drain out of its initial partitions. The afternoon hot spot\n"
      "is where the adaptive methods shine — they only ever optimized the\n"
      "regions the workload actually touched.\n");
  return 0;
}
