#ifndef ADAPTIDX_SERVER_EVENT_LOOP_H_
#define ADAPTIDX_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace adaptidx {
namespace server {

/// \brief Single-threaded poll(2) reactor: the server's one I/O thread.
///
/// All file descriptors and their callbacks are owned by the loop thread;
/// the only cross-thread entry points are `Post` (enqueue a closure the
/// loop runs at the top of its next iteration, waking it via a pipe) and
/// `Stop`. Everything else — `Register`/`EnableWrite`/`Unregister` and the
/// I/O callbacks themselves — must run on the loop thread, which is what
/// makes per-connection state machines plain unsynchronized code.
///
/// Engine worker threads never touch a socket: they `Post` the encoded
/// response bytes back here, and the loop writes them out. That keeps the
/// thread-safety story one sentence long and leaves the engine pool free
/// of blocking socket I/O.
class EventLoop {
 public:
  /// \brief Readiness callback; `readable`/`writable` mirror poll revents
  /// (POLLHUP/POLLERR are folded into `readable` so the handler observes
  /// EOF through its read).
  using IoCallback = std::function<void(bool readable, bool writable)>;

  EventLoop() = default;
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// \brief Creates the wake pipe; must precede `Run`.
  Status Init();

  /// \brief Runs the reactor on the calling thread until `Stop`. Pending
  /// posted closures are drained before each poll.
  void Run();

  /// \brief Requests loop exit; thread-safe and idempotent. The loop
  /// finishes its current iteration (running already-posted closures).
  void Stop();

  /// \brief Enqueues a closure for the loop thread and wakes it;
  /// thread-safe. Closures posted after the loop stopped are discarded on
  /// destruction without running.
  void Post(std::function<void()> fn);

  /// \brief Registers `fd` for read readiness with `cb`. Loop thread only.
  void Register(int fd, IoCallback cb);

  /// \brief Adds/removes write-readiness interest for `fd`. Loop thread
  /// only.
  void EnableWrite(int fd, bool enable);

  /// \brief Drops `fd` from the poll set (the caller closes it). Loop
  /// thread only; safe to call from inside `fd`'s own callback.
  void Unregister(int fd);

  /// \brief True when called on the thread currently inside `Run`.
  bool InLoopThread() const {
    return std::this_thread::get_id() == loop_tid_.load();
  }

 private:
  struct FdEntry {
    IoCallback cb;
    bool want_write = false;
  };

  void DrainWakePipe();
  void RunPosted();

  int wake_fds_[2] = {-1, -1};  // [0] read end polled, [1] written by Post
  std::atomic<bool> stop_{false};
  std::atomic<std::thread::id> loop_tid_{};

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;

  std::unordered_map<int, FdEntry> fds_;  // loop thread only
};

}  // namespace server
}  // namespace adaptidx

#endif  // ADAPTIDX_SERVER_EVENT_LOOP_H_
