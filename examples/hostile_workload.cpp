/// \file Hostile workload demo: plain (exact-bound) cracking against the
/// MDD1R stochastic policy under a sequentially sliding query window — the
/// workload that defeats plain cracking. Exact cracking only ever splits
/// the array at the sweep's current position, so the unindexed remainder
/// stays one huge piece that every next query re-scans; MDD1R injects one
/// random crack per touched large piece and answers from a filtered scan,
/// chopping the remainder as a side effect. The demo runs the identical
/// query sequence under both policies and prints per-phase mean and
/// worst-case per-query latency: plain stays flat and high, MDD1R decays.
///
///   $ ./build/example_hostile_workload

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/cracking_index.h"
#include "storage/column.h"
#include "util/stopwatch.h"
#include "workload/workload.h"

using namespace adaptidx;

namespace {

struct PhaseStats {
  double mean_ms = 0;
  double max_ms = 0;
};

/// Runs the query sequence single-threaded and folds per-query latencies
/// into `phases` buckets. The first query pays the one-off column copy-in
/// under every policy; it stays in the numbers (phase 1 is simply
/// dominated by data arrival for both policies alike).
std::vector<PhaseStats> RunPolicy(const Column& col, CrackPolicy policy,
                                  const std::vector<RangeQuery>& queries,
                                  size_t phases) {
  CrackingOptions opts;
  opts.crack_policy = policy;
  opts.policy_min_piece = 2048;
  CrackingIndex index(&col, opts);
  std::vector<double> latency_ms;
  latency_ms.reserve(queries.size());
  for (const RangeQuery& q : queries) {
    QueryContext ctx;
    int64_t sum = 0;
    StopWatch sw;
    (void)index.RangeSum(ValueRange{q.lo, q.hi}, &ctx, &sum);
    latency_ms.push_back(sw.ElapsedSeconds() * 1e3);
  }
  std::vector<PhaseStats> out(phases);
  for (size_t p = 0; p < phases; ++p) {
    const size_t from = latency_ms.size() * p / phases;
    const size_t to = latency_ms.size() * (p + 1) / phases;
    PhaseStats& s = out[p];
    for (size_t i = from; i < to; ++i) {
      s.mean_ms += latency_ms[i];
      s.max_ms = std::max(s.max_ms, latency_ms[i]);
    }
    if (to > from) s.mean_ms /= static_cast<double>(to - from);
  }
  return out;
}

}  // namespace

int main() {
  constexpr size_t kRows = 2'000'000;
  constexpr size_t kQueries = 256;
  constexpr size_t kPhases = 8;

  Column col = Column::UniqueRandom("A", kRows, /*seed=*/2012);
  WorkloadGenerator gen(0, static_cast<Value>(kRows));
  WorkloadOptions wopts;
  wopts.num_queries = kQueries;
  wopts.selectivity = 0.001;
  wopts.distribution = QueryDistribution::kSequential;
  const auto queries = gen.Generate(wopts);

  std::printf("sequential sweep over %zu rows, %zu sum queries, 0.1%% "
              "selectivity\n\n", kRows, kQueries);
  const auto plain = RunPolicy(col, CrackPolicy::kExact, queries, kPhases);
  const auto mdd1r = RunPolicy(col, CrackPolicy::kMDD1R, queries, kPhases);

  std::printf("%-8s | %12s %12s | %12s %12s\n", "phase", "exact mean",
              "exact max", "mdd1r mean", "mdd1r max");
  std::printf("%-8s | %12s %12s | %12s %12s\n", "", "(ms)", "(ms)", "(ms)",
              "(ms)");
  double plain_worst = 0;
  double mdd1r_worst = 0;
  for (size_t p = 0; p < kPhases; ++p) {
    std::printf("%-8zu | %12.3f %12.3f | %12.3f %12.3f\n", p + 1,
                plain[p].mean_ms, plain[p].max_ms, mdd1r[p].mean_ms,
                mdd1r[p].max_ms);
    // Steady state only: phase 1 contains the shared data-arrival cost.
    if (p > 0) {
      plain_worst = std::max(plain_worst, plain[p].max_ms);
      mdd1r_worst = std::max(mdd1r_worst, mdd1r[p].max_ms);
    }
  }
  std::printf("\nsteady-state worst-case per-query latency: exact %.3f ms, "
              "mdd1r %.3f ms (%.1fx better)\n",
              plain_worst, mdd1r_worst,
              mdd1r_worst > 0 ? plain_worst / mdd1r_worst : 0.0);
  std::printf("exact cracking never splits the unqueried remainder, so the "
              "sweep pays for it on every query; one random crack per touch "
              "is enough to break the quadratic pattern.\n");
  return 0;
}
