#include "cracking/crack_policy.h"

#include "util/rng.h"

namespace adaptidx {

std::string ToString(CrackPolicy policy) {
  switch (policy) {
    case CrackPolicy::kExact:
      return "exact";
    case CrackPolicy::kDDC:
      return "ddc";
    case CrackPolicy::kDDR:
      return "ddr";
    case CrackPolicy::kMDD1R:
      return "mdd1r";
  }
  return "unknown";
}

namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Median of the first, middle, and last element values — the cheap center
/// estimate DDC recurses on. An exact median would cost a selection pass per
/// recursion level; three probes approximate it well enough to halve the
/// sub-range in expectation on non-degenerate data.
Value CenterEstimate(const CrackerArray& array, Position begin, Position end) {
  const Value a = array.ValueAt(begin);
  const Value b = array.ValueAt(begin + (end - begin) / 2);
  const Value c = array.ValueAt(end - 1);
  if (a < b) {
    if (b < c) return b;
    return a < c ? c : a;
  }
  if (a < c) return a;
  return b < c ? c : b;
}

}  // namespace

bool CrackDecision::NextPivot(const CrackerArray& array, Position begin,
                              Position end, Value bound, size_t step,
                              Value* pivot) const {
  if (policy_ == CrackPolicy::kExact) return false;
  if (end - begin <= min_piece_) return false;
  if (policy_ == CrackPolicy::kMDD1R && step > 0) return false;
  if (policy_ == CrackPolicy::kDDC) {
    *pivot = CenterEstimate(array, begin, end);
    return true;
  }
  // kDDR / kMDD1R: the pivot is the value of a uniformly drawn element.
  // The generator is re-derived per call from (seed, extent, bound, step):
  // stateless, so concurrent cracks on different pieces never contend on
  // shared RNG state, and a run is reproducible from the seed alone
  // regardless of thread interleaving.
  Rng rng(Mix64(seed_ ^ Mix64(begin ^ (static_cast<uint64_t>(end) << 20) ^
                              (static_cast<uint64_t>(bound) << 1) ^
                              (static_cast<uint64_t>(step) << 50))));
  const Position rp = begin + static_cast<Position>(rng.Uniform(end - begin));
  *pivot = array.ValueAt(rp);
  return true;
}

}  // namespace adaptidx
