#include "merging/adaptive_merge.h"

#include <algorithm>

#include "cracking/span_kernels.h"
#include "util/stopwatch.h"

namespace adaptidx {

namespace {

struct CountAgg {
  uint64_t result = 0;
  void Covered(const SegmentStore::CoveredPart& p) {
    result += SegmentStore::CountIn(p);
  }
  void RunPart(const std::vector<CrackerEntry>& entries, size_t b, size_t e) {
    (void)entries;
    result += e - b;
  }
};

struct SumAgg {
  int64_t result = 0;
  void Covered(const SegmentStore::CoveredPart& p) {
    result += SegmentStore::SumIn(p);
  }
  void RunPart(const std::vector<CrackerEntry>& entries, size_t b, size_t e) {
    result += PositionalSumEntries(entries.data(), b, e);
  }
};

struct RowIdAgg {
  std::vector<RowId>* out;
  void Covered(const SegmentStore::CoveredPart& p) {
    SegmentStore::CollectRowIds(p, out);
  }
  void RunPart(const std::vector<CrackerEntry>& entries, size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) out->push_back(entries[i].row_id);
  }
};

struct MinMaxAgg {
  MinMaxAccumulator acc;
  void Covered(const SegmentStore::CoveredPart& p) {
    Value lo;
    Value hi;
    if (SegmentStore::MinMaxIn(p, &lo, &hi)) acc.Feed(lo, hi);
  }
  void RunPart(const std::vector<CrackerEntry>& entries, size_t b, size_t e) {
    // Runs are sorted by value, so the range extremes sit at the ends.
    acc.Feed(entries[b].value, entries[e - 1].value);
  }
};

}  // namespace

AdaptiveMergeIndex::AdaptiveMergeIndex(const Column* column, MergeOptions opts)
    : column_(column), opts_(std::move(opts)) {}

void AdaptiveMergeIndex::EnsureInitialized(QueryContext* ctx) {
  if (initialized_.load(std::memory_order_acquire)) return;
  const bool cc = opts_.concurrency_control;
  LatchAcquireContext lat = ctx->LatchCtx(&latch_stats_);
  if (cc) latch_.WriteLock(0, lat);
  if (!initialized_.load(std::memory_order_relaxed)) {
    ScopedTimer init_timer(&ctx->stats.init_ns);
    const size_t n = column_->size();
    const size_t run_size = std::max<size_t>(1, opts_.run_size);
    Value lo = 0;
    Value hi = 0;
    if (n > 0) {
      lo = (*column_)[0];
      hi = (*column_)[0];
    }
    for (size_t base = 0; base < n; base += run_size) {
      const size_t end = std::min(n, base + run_size);
      Run run;
      run.entries.reserve(end - base);
      for (size_t i = base; i < end; ++i) {
        const Value v = (*column_)[i];
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        run.entries.push_back(CrackerEntry{static_cast<RowId>(i), v});
      }
      std::sort(run.entries.begin(), run.entries.end(),
                [](const CrackerEntry& a, const CrackerEntry& b) {
                  return a.value < b.value;
                });
      runs_.push_back(std::move(run));
    }
    domain_lo_ = lo;
    domain_hi_ = hi + 1;
    initialized_.store(true, std::memory_order_release);
  }
  if (cc) latch_.WriteUnlock();
}

void AdaptiveMergeIndex::RunRange(const Run& run, Value lo, Value hi,
                                  size_t* begin, size_t* end) {
  auto cmp = [](const CrackerEntry& e, Value v) { return e.value < v; };
  *begin = static_cast<size_t>(
      std::lower_bound(run.entries.begin(), run.entries.end(), lo, cmp) -
      run.entries.begin());
  *end = static_cast<size_t>(
      std::lower_bound(run.entries.begin(), run.entries.end(), hi, cmp) -
      run.entries.begin());
}

std::vector<CrackerEntry> AdaptiveMergeIndex::GatherGap(
    Value lo, Value hi, QueryContext* ctx) const {
  ScopedTimer t(&ctx->stats.crack_ns);
  // K-way merge of the qualifying ranges of all runs — "each subsequent
  // query then applies at most one additional merge step to each record in
  // the desired key range".
  struct Cursor {
    const Run* run;
    size_t pos;
    size_t end;
  };
  std::vector<Cursor> cursors;
  size_t total = 0;
  for (const Run& run : runs_) {
    size_t b;
    size_t e;
    RunRange(run, lo, hi, &b, &e);
    if (b < e) {
      cursors.push_back(Cursor{&run, b, e});
      total += e - b;
    }
  }
  std::vector<CrackerEntry> merged;
  merged.reserve(total);
  while (!cursors.empty()) {
    size_t best = 0;
    for (size_t i = 1; i < cursors.size(); ++i) {
      if (cursors[i].run->entries[cursors[i].pos].value <
          cursors[best].run->entries[cursors[best].pos].value) {
        best = i;
      }
    }
    merged.push_back(cursors[best].run->entries[cursors[best].pos]);
    if (++cursors[best].pos == cursors[best].end) {
      cursors.erase(cursors.begin() + static_cast<long>(best));
    }
  }
  return merged;
}

void AdaptiveMergeIndex::MergeGapLocked(Value lo, Value hi,
                                        QueryContext* ctx) {
  final_.Insert(lo, hi, GatherGap(lo, hi, ctx));
  ++ctx->stats.cracks;
}

template <typename Agg>
void AdaptiveMergeIndex::MergeGapMvcc(const ValueRange& gap,
                                      QueryContext* ctx, Agg* agg) {
  const bool cc = opts_.concurrency_control;
  LatchAcquireContext lat = ctx->LatchCtx(&latch_stats_);

  // Expensive phase under shared access: runs are immutable, so the gather
  // is correct no matter what concurrent merges commit meanwhile.
  if (cc) latch_.ReadLock(lat);
  std::vector<CrackerEntry> gathered = GatherGap(gap.lo, gap.hi, ctx);
  if (cc) latch_.ReadUnlock();

  // Short exclusive commit with revalidation: concurrent queries may have
  // covered parts of the gap while we gathered; their versions win and the
  // corresponding slice of our private result is discarded.
  if (cc) latch_.WriteLock(gap.lo, lat);
  std::vector<SegmentStore::CoveredPart> sub_covered;
  std::vector<ValueRange> sub_gaps;
  final_.Decompose(gap.lo, gap.hi, &sub_covered, &sub_gaps);
  auto value_less = [](const CrackerEntry& e, Value v) {
    return e.value < v;
  };
  for (const ValueRange& g : sub_gaps) {
    auto first = std::lower_bound(gathered.begin(), gathered.end(), g.lo,
                                  value_less);
    auto last = std::lower_bound(gathered.begin(), gathered.end(), g.hi,
                                 value_less);
    final_.Insert(g.lo, g.hi, std::vector<CrackerEntry>(first, last));
    ++ctx->stats.cracks;
  }
  {
    // The gap is fully covered now; aggregate it in one pass.
    ScopedTimer t(&ctx->stats.read_ns);
    std::vector<SegmentStore::CoveredPart> covered_now;
    std::vector<ValueRange> none;
    final_.Decompose(gap.lo, gap.hi, &covered_now, &none);
    for (const auto& part : covered_now) agg->Covered(part);
    ctx->stats.pieces_touched += covered_now.size();
  }
  if (cc) latch_.WriteUnlock();
}

template <typename Agg>
Status AdaptiveMergeIndex::ExecuteRange(const ValueRange& range,
                                        QueryContext* ctx, Agg* agg) {
  if (range.Empty()) return Status::OK();
  EnsureInitialized(ctx);
  const Value lo = std::max(range.lo, domain_lo_);
  const Value hi = std::min(range.hi, domain_hi_);
  if (lo >= hi) return Status::OK();

  const bool cc = opts_.concurrency_control;
  LatchAcquireContext lat = ctx->LatchCtx(&latch_stats_);

  // Pass 1: consume already-covered parts, remember the gaps.
  std::vector<SegmentStore::CoveredPart> covered;
  std::vector<ValueRange> gaps;
  if (cc) latch_.ReadLock(lat);
  {
    ScopedTimer t(&ctx->stats.read_ns);
    final_.Decompose(lo, hi, &covered, &gaps);
    for (const auto& part : covered) agg->Covered(part);
    ctx->stats.pieces_touched += covered.size();
  }
  if (cc) latch_.ReadUnlock();

  // Pass 2: handle each gap as its own instantly-committed system
  // transaction (Section 4.3: "conflicts can be avoided or resolved by
  // instantly committing an active merge step and its result").
  bool merging_stopped = false;
  for (const ValueRange& gap : gaps) {
    if (opts_.mvcc_commit && !merging_stopped) {
      MergeGapMvcc(gap, ctx, agg);
      continue;
    }
    const bool merge_now = !merging_stopped;
    if (merge_now) {
      if (cc) latch_.WriteLock(gap.lo, lat);
      // Recheck under the latch: a concurrent query may have merged parts
      // of this gap while we were not holding it.
      std::vector<SegmentStore::CoveredPart> sub_covered;
      std::vector<ValueRange> sub_gaps;
      final_.Decompose(gap.lo, gap.hi, &sub_covered, &sub_gaps);
      {
        ScopedTimer t(&ctx->stats.read_ns);
        for (const auto& part : sub_covered) agg->Covered(part);
      }
      for (const ValueRange& g : sub_gaps) MergeGapLocked(g.lo, g.hi, ctx);
      // The whole gap is covered now; aggregate the freshly merged parts.
      if (!sub_gaps.empty()) {
        std::vector<SegmentStore::CoveredPart> fresh;
        std::vector<ValueRange> none;
        for (const ValueRange& g : sub_gaps) {
          final_.Decompose(g.lo, g.hi, &fresh, &none);
          ScopedTimer t(&ctx->stats.read_ns);
          for (const auto& part : fresh) agg->Covered(part);
        }
      }
      ctx->stats.pieces_touched += sub_covered.size() + sub_gaps.size();
      const bool contended = cc && latch_.HasWaiters();
      if (cc) latch_.WriteUnlock();
      if (opts_.early_termination && contended) {
        // Adaptive early termination: commit what we merged, answer the
        // remaining gaps read-only, let future queries finish the work.
        merging_stopped = true;
        ctx->stats.refinement_skipped = true;
      }
    } else {
      // Read-only fallback: answer from the runs without merging.
      if (cc) latch_.ReadLock(lat);
      std::vector<SegmentStore::CoveredPart> sub_covered;
      std::vector<ValueRange> sub_gaps;
      final_.Decompose(gap.lo, gap.hi, &sub_covered, &sub_gaps);
      {
        ScopedTimer t(&ctx->stats.read_ns);
        for (const auto& part : sub_covered) agg->Covered(part);
        for (const ValueRange& g : sub_gaps) {
          for (const Run& run : runs_) {
            size_t b;
            size_t e;
            RunRange(run, g.lo, g.hi, &b, &e);
            if (b < e) agg->RunPart(run.entries, b, e);
          }
        }
      }
      ctx->stats.pieces_touched += sub_covered.size() + sub_gaps.size();
      if (cc) latch_.ReadUnlock();
    }
  }
  return Status::OK();
}

Status AdaptiveMergeIndex::ExecuteImpl(const Query& query, QueryContext* ctx,
                                       QueryResult* result) {
  switch (query.kind) {
    case QueryKind::kCount: {
      CountAgg agg;
      Status s = ExecuteRange(query.range, ctx, &agg);
      result->count = agg.result;
      return s;
    }
    case QueryKind::kSum: {
      SumAgg agg;
      Status s = ExecuteRange(query.range, ctx, &agg);
      result->sum = agg.result;
      return s;
    }
    case QueryKind::kRowIds: {
      RowIdAgg agg{&result->row_ids};
      return ExecuteRange(query.range, ctx, &agg);
    }
    case QueryKind::kMinMax: {
      MinMaxAgg agg;
      Status s = ExecuteRange(query.range, ctx, &agg);
      agg.acc.Store(result);
      return s;
    }
    case QueryKind::kSumOther:
      return Status::NotSupported("merge holds no second column");
  }
  return Status::InvalidArgument("unknown query kind");
}

size_t AdaptiveMergeIndex::NumPieces() const {
  return num_runs() + num_segments();
}

size_t AdaptiveMergeIndex::num_runs() const {
  if (!initialized_.load(std::memory_order_acquire)) return 0;
  return runs_.size();
}

size_t AdaptiveMergeIndex::num_segments() const {
  if (!initialized_.load(std::memory_order_acquire)) return 0;
  latch_.ReadLock();
  const size_t n = final_.num_segments();
  latch_.ReadUnlock();
  return n;
}

bool AdaptiveMergeIndex::FullyMerged() const {
  if (!initialized_.load(std::memory_order_acquire)) return false;
  latch_.ReadLock();
  const bool full = final_.Covers(domain_lo_, domain_hi_);
  latch_.ReadUnlock();
  return full;
}

bool AdaptiveMergeIndex::ValidateStructure() const {
  if (!initialized_.load(std::memory_order_acquire)) return true;
  for (const Run& run : runs_) {
    for (size_t i = 1; i < run.entries.size(); ++i) {
      if (run.entries[i].value < run.entries[i - 1].value) return false;
    }
  }
  return final_.Validate();
}

}  // namespace adaptidx
