#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/cracking_index.h"
#include "core/index_factory.h"
#include "engine/driver.h"
#include "test_util.h"
#include "util/stopwatch.h"
#include "workload/workload.h"

namespace adaptidx {
namespace {

/// All adaptive and baseline methods must agree with each other and the
/// oracle on an identical query sequence — the precondition for every
/// benchmark comparison in Section 6.
TEST(IntegrationTest, AllMethodsAgreeOnSameWorkload) {
  Column col = Column::UniqueRandom("A", 20000, 80);
  RangeOracle oracle(col);
  WorkloadGenerator gen(0, 20000);
  WorkloadOptions wopts;
  wopts.num_queries = 128;
  wopts.selectivity = 0.02;
  wopts.type = QueryType::kSum;
  auto queries = gen.Generate(wopts);

  for (IndexMethod m :
       {IndexMethod::kScan, IndexMethod::kSort, IndexMethod::kCrack,
        IndexMethod::kAdaptiveMerge, IndexMethod::kHybrid,
        IndexMethod::kBTreeMerge}) {
    IndexConfig config;
    config.method = m;
    config.merge.run_size = 4096;
    config.hybrid.partition_size = 4096;
    config.btree.run_size = 4096;
    auto index = MakeIndex(&col, config);
    for (const auto& q : queries) {
      QueryContext ctx;
      int64_t sum = 0;
      ASSERT_TRUE(index->RangeSum(ValueRange{q.lo, q.hi}, &ctx, &sum).ok());
      ASSERT_EQ(sum, oracle.Sum(q.lo, q.hi))
          << ToString(m) << " on [" << q.lo << "," << q.hi << ")";
    }
  }
}

TEST(IntegrationTest, AdaptiveMethodsAgreeUnderConcurrency) {
  Column col = Column::UniqueRandom("A", 20000, 81);
  RangeOracle oracle(col);
  WorkloadGenerator gen(0, 20000);
  WorkloadOptions wopts;
  wopts.num_queries = 192;
  wopts.selectivity = 0.01;
  wopts.type = QueryType::kCount;
  auto queries = gen.Generate(wopts);

  for (IndexMethod m : {IndexMethod::kCrack, IndexMethod::kAdaptiveMerge,
                        IndexMethod::kHybrid, IndexMethod::kBTreeMerge}) {
    IndexConfig config;
    config.method = m;
    config.merge.run_size = 4096;
    config.hybrid.partition_size = 4096;
    config.btree.run_size = 4096;
    auto index = MakeIndex(&col, config);
    DriverOptions dopts;
    dopts.num_clients = 6;
    RunResult result = Driver::Run(index.get(), queries, dopts);
    ASSERT_TRUE(result.status.ok()) << ToString(m);
    ASSERT_EQ(result.records.size(), queries.size()) << ToString(m);
    for (const auto& rec : result.records) {
      ASSERT_EQ(rec.result.count, oracle.Count(rec.query.lo, rec.query.hi))
          << ToString(m);
    }
  }
}

/// Figure 8, top (column latches): Q1/Q2/Q3 arrive concurrently on the same
/// column, each cracks then aggregates. All must serialize correctly.
TEST(IntegrationTest, Figure8ColumnLatchScenario) {
  Column col = Column::UniqueRandom("A", 10000, 82);
  RangeOracle oracle(col);
  CrackingOptions opts;
  opts.mode = ConcurrencyMode::kColumnLatch;
  CrackingIndex index(&col, opts);

  std::vector<RangeQuery> queries = {
      {7000, 9000, QueryType::kSum},   // Q1: crack at [70, 90)
      {1500, 3000, QueryType::kSum},   // Q2: crack at [15, 30)
      {4000, 5500, QueryType::kSum},   // Q3: crack at [40, 55)
  };
  DriverOptions dopts;
  dopts.num_clients = 3;
  RunResult result = Driver::Run(&index, queries, dopts);
  ASSERT_TRUE(result.status.ok());
  for (const auto& rec : result.records) {
    EXPECT_EQ(rec.result.sum, oracle.Sum(rec.query.lo, rec.query.hi));
  }
  EXPECT_TRUE(index.ValidateStructure());
}

/// Figure 8, middle/bottom (piece latches): overlapping queries including a
/// wide range spanning several pieces.
TEST(IntegrationTest, Figure8PieceLatchScenario) {
  Column col = Column::UniqueRandom("A", 10000, 83);
  RangeOracle oracle(col);
  CrackingIndex index(&col);  // piece latches by default

  std::vector<RangeQuery> queries = {
      {1500, 9000, QueryType::kSum},  // Q1': wide range
      {3000, 4000, QueryType::kSum},  // Q2': nested range
      {7000, 9000, QueryType::kSum},
      {1500, 3000, QueryType::kSum},
      {4000, 5500, QueryType::kSum},
  };
  DriverOptions dopts;
  dopts.num_clients = 5;
  RunResult result = Driver::Run(&index, queries, dopts);
  ASSERT_TRUE(result.status.ok());
  for (const auto& rec : result.records) {
    EXPECT_EQ(rec.result.sum, oracle.Sum(rec.query.lo, rec.query.hi));
  }
  EXPECT_TRUE(index.ValidateStructure());
}

/// The CC-overhead experiment (Figure 13): sequential execution with and
/// without concurrency control must produce identical results; the overhead
/// is measured by the benchmarks, correctness is asserted here.
TEST(IntegrationTest, CcEnabledAndDisabledAgreeSequentially) {
  Column col = Column::UniqueRandom("A", 20000, 84);
  WorkloadGenerator gen(0, 20000);
  WorkloadOptions wopts;
  wopts.num_queries = 128;
  wopts.selectivity = 0.001;
  wopts.type = QueryType::kSum;
  auto queries = gen.Generate(wopts);

  CrackingOptions with_cc;
  with_cc.mode = ConcurrencyMode::kPieceLatch;
  CrackingOptions no_cc;
  no_cc.mode = ConcurrencyMode::kNone;
  CrackingIndex a(&col, with_cc);
  CrackingIndex b(&col, no_cc);
  for (const auto& q : queries) {
    QueryContext ca;
    QueryContext cb;
    int64_t sa = 0;
    int64_t sb = 0;
    ASSERT_TRUE(a.RangeSum(ValueRange{q.lo, q.hi}, &ca, &sa).ok());
    ASSERT_TRUE(b.RangeSum(ValueRange{q.lo, q.hi}, &cb, &sb).ok());
    ASSERT_EQ(sa, sb);
  }
  // Identical refinement: same crack count either way.
  EXPECT_EQ(a.NumCracks(), b.NumCracks());
}

/// Adaptivity invariant (Figure 11): per-query response time of cracking
/// trends downward; by the end of the sequence a query is much cheaper than
/// the first.
TEST(IntegrationTest, CrackingResponseTimeTrendsDown) {
  Column col = Column::UniqueRandom("A", 500000, 85);
  CrackingIndex index(&col);
  WorkloadGenerator gen(0, 500000);
  WorkloadOptions wopts;
  wopts.num_queries = 64;
  wopts.selectivity = 0.1;
  wopts.type = QueryType::kCount;
  auto queries = gen.Generate(wopts);
  std::vector<int64_t> response;
  for (const auto& q : queries) {
    QueryContext ctx;
    uint64_t count;
    const int64_t t0 = NowNanos();
    ASSERT_TRUE(index.RangeCount(ValueRange{q.lo, q.hi}, &ctx, &count).ok());
    response.push_back(NowNanos() - t0);
  }
  int64_t tail_avg = 0;
  for (size_t i = response.size() - 8; i < response.size(); ++i) {
    tail_avg += response[i];
  }
  tail_avg /= 8;
  EXPECT_LT(tail_avg, response.front() / 4);
}

/// Convergence comparison (Figures 2-4): after the same query sequence,
/// hybrid leaves less unmerged data than nothing, and merging converges to
/// a fully sorted final partition while cracking keeps refining in place.
TEST(IntegrationTest, MethodConvergenceShapes) {
  Column col = Column::UniqueRandom("A", 30000, 86);
  WorkloadGenerator gen(0, 30000);
  WorkloadOptions wopts;
  wopts.num_queries = 60;
  wopts.selectivity = 0.05;
  auto queries = gen.Generate(wopts);

  CrackingIndex crack(&col);
  MergeOptions mopts;
  mopts.run_size = 4096;
  AdaptiveMergeIndex merge(&col, mopts);
  HybridOptions hopts;
  hopts.partition_size = 4096;
  HybridCrackSortIndex hybrid(&col, hopts);

  for (const auto& q : queries) {
    QueryContext c1;
    QueryContext c2;
    QueryContext c3;
    uint64_t n1;
    uint64_t n2;
    uint64_t n3;
    ASSERT_TRUE(crack.RangeCount(ValueRange{q.lo, q.hi}, &c1, &n1).ok());
    ASSERT_TRUE(merge.RangeCount(ValueRange{q.lo, q.hi}, &c2, &n2).ok());
    ASSERT_TRUE(hybrid.RangeCount(ValueRange{q.lo, q.hi}, &c3, &n3).ok());
    ASSERT_EQ(n1, n2);
    ASSERT_EQ(n1, n3);
  }
  // Cracking refined pieces in place: piece count grew with queries.
  EXPECT_GT(crack.NumPieces(), 30u);
  // Hybrid moved the touched ranges out of its initial partitions.
  EXPECT_LT(hybrid.ResidualEntries(), 30000u);
  // Merging built segments covering the touched ranges.
  EXPECT_GT(merge.num_segments(), 0u);
  EXPECT_TRUE(crack.ValidateStructure());
  EXPECT_TRUE(merge.ValidateStructure());
  EXPECT_TRUE(hybrid.ValidateStructure());
}

/// Middle-out scheduling (Figure 10's queue example) under real contention:
/// correctness plus structural validity with many waiters per piece.
TEST(IntegrationTest, MiddleOutSchedulingUnderHotSpot) {
  Column col = Column::UniqueRandom("A", 50000, 87);
  RangeOracle oracle(col);
  CrackingOptions opts;
  opts.scheduling = SchedulingPolicy::kMiddleOut;
  CrackingIndex index(&col, opts);
  // Everyone hammers the same hot 10% of the domain.
  WorkloadGenerator gen(0, 5000);
  WorkloadOptions wopts;
  wopts.num_queries = 200;
  wopts.selectivity = 0.02;
  wopts.type = QueryType::kSum;
  auto queries = gen.Generate(wopts);
  DriverOptions dopts;
  dopts.num_clients = 8;
  RunResult result = Driver::Run(&index, queries, dopts);
  ASSERT_TRUE(result.status.ok());
  for (const auto& rec : result.records) {
    ASSERT_EQ(rec.result.sum, oracle.Sum(rec.query.lo, rec.query.hi));
  }
  EXPECT_TRUE(index.ValidateStructure());
}

/// Group cracking (Section 7) under contention: queued bounds get cracked
/// by the latch holder; everything stays correct.
TEST(IntegrationTest, GroupCrackUnderContention) {
  Column col = Column::UniqueRandom("A", 50000, 88);
  RangeOracle oracle(col);
  CrackingOptions opts;
  opts.group_crack = true;
  CrackingIndex index(&col, opts);
  WorkloadGenerator gen(0, 50000);
  WorkloadOptions wopts;
  wopts.num_queries = 200;
  wopts.selectivity = 0.005;
  wopts.type = QueryType::kCount;
  auto queries = gen.Generate(wopts);
  DriverOptions dopts;
  dopts.num_clients = 8;
  RunResult result = Driver::Run(&index, queries, dopts);
  ASSERT_TRUE(result.status.ok());
  for (const auto& rec : result.records) {
    ASSERT_EQ(rec.result.count, oracle.Count(rec.query.lo, rec.query.hi));
  }
  EXPECT_TRUE(index.ValidateStructure());
}

}  // namespace
}  // namespace adaptidx
