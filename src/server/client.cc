#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace adaptidx {
namespace server {

Client::~Client() { Close(); }

Status Client::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::InvalidArgument("client already connected");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Corruption("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Corruption("connect() failed: " +
                              std::string(strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  recv_buf_.clear();
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::SendRaw(const void* data, size_t size) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::write(fd_, p + sent, size - sent);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Corruption("write() failed: " +
                              std::string(strerror(errno)));
  }
  return Status::OK();
}

Status Client::ReadFrame(Frame* out) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  for (;;) {
    size_t consumed = 0;
    Status s = TryDecodeFrame(
        reinterpret_cast<const uint8_t*>(recv_buf_.data()), recv_buf_.size(),
        kDefaultMaxFrameBytes, out, &consumed);
    if (!s.ok()) return s;
    if (consumed > 0) {
      recv_buf_.erase(0, consumed);
      return Status::OK();
    }
    char buf[64 * 1024];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      recv_buf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::NotFound("server closed the connection");
    if (errno == EINTR) continue;
    return Status::Corruption("read() failed: " +
                              std::string(strerror(errno)));
  }
}

Status Client::Rpc(FrameType type, const std::string& payload,
                   FrameType expect, Frame* reply) {
  const uint64_t id = next_request_id_++;
  const std::string frame = EncodeFrame(type, id, payload);
  Status s = SendRaw(frame.data(), frame.size());
  if (!s.ok()) return s;
  for (;;) {
    s = ReadFrame(reply);
    if (!s.ok()) return s;
    if (reply->type == FrameType::kError) {
      // Connection-level breach report: decode the carried status; the
      // server closes after flushing it.
      ResultMsg m;
      Status d = m.Decode(reply->payload);
      Close();
      return d.ok() ? m.ToStatus() : d;
    }
    if (reply->request_id != id) {
      // A blocking client never has a second request outstanding, so a
      // stray id means the stream is out of sync.
      return Status::Corruption("response id does not match request");
    }
    if (reply->type == FrameType::kServerBusy) {
      ++busy_seen_;
      BusyMsg busy;
      if (busy.Decode(reply->payload).ok()) last_busy_ = busy;
      return Status::Busy("server shed the request");
    }
    if (reply->type != expect) {
      return Status::Corruption("unexpected response frame type");
    }
    return Status::OK();
  }
}

Status Client::OpenSession(bool snapshot_reads, uint32_t client_id) {
  OpenSessionReq req;
  if (snapshot_reads) req.flags |= OpenSessionReq::kFlagSnapshotReads;
  req.client_id = client_id;
  Frame reply;
  Status s = Rpc(FrameType::kOpenSession, req.Encode(), FrameType::kOpenOk,
                 &reply);
  if (!s.ok()) return s;
  OpenOkMsg ok;
  s = ok.Decode(reply.payload);
  if (!s.ok()) return s;
  session_id_ = ok.session_id;
  return Status::OK();
}

Status Client::RunQuery(const QueryReq& req, ResultMsg* out) {
  Frame reply;
  Status s = Rpc(FrameType::kQuery, req.Encode(), FrameType::kResult, &reply);
  if (!s.ok()) return s;
  s = out->Decode(reply.payload);
  if (!s.ok()) return s;
  return out->ToStatus();
}

Status Client::Count(Value lo, Value hi, uint64_t* out) {
  QueryReq req{QueryKind::kCount, lo, hi};
  ResultMsg m;
  Status s = RunQuery(req, &m);
  if (s.ok()) *out = m.count;
  return s;
}

Status Client::Sum(Value lo, Value hi, int64_t* out) {
  QueryReq req{QueryKind::kSum, lo, hi};
  ResultMsg m;
  Status s = RunQuery(req, &m);
  if (s.ok()) *out = m.sum;
  return s;
}

Status Client::MinMax(Value lo, Value hi, Value* min, Value* max,
                      bool* found) {
  QueryReq req{QueryKind::kMinMax, lo, hi};
  ResultMsg m;
  Status s = RunQuery(req, &m);
  if (!s.ok()) return s;
  *found = m.has_minmax != 0;
  if (*found) {
    *min = m.min_value;
    *max = m.max_value;
  }
  return s;
}

Status Client::RowIds(Value lo, Value hi, std::vector<RowId>* out) {
  QueryReq req{QueryKind::kRowIds, lo, hi};
  ResultMsg m;
  Status s = RunQuery(req, &m);
  if (s.ok()) *out = std::move(m.row_ids);
  return s;
}

Status Client::Insert(Value v, RowId* row_id) {
  InsertReq req;
  req.value = v;
  Frame reply;
  Status s = Rpc(FrameType::kInsert, req.Encode(), FrameType::kResult, &reply);
  if (!s.ok()) return s;
  ResultMsg m;
  s = m.Decode(reply.payload);
  if (!s.ok()) return s;
  s = m.ToStatus();
  if (s.ok() && row_id != nullptr) *row_id = m.row_id;
  return s;
}

Status Client::Delete(Value v, RowId row_id) {
  DeleteReq req;
  req.value = v;
  req.row_id = row_id;
  Frame reply;
  Status s = Rpc(FrameType::kDelete, req.Encode(), FrameType::kResult, &reply);
  if (!s.ok()) return s;
  ResultMsg m;
  s = m.Decode(reply.payload);
  if (!s.ok()) return s;
  return m.ToStatus();
}

Status Client::Batch(const std::vector<QueryReq>& queries,
                     std::vector<ResultMsg>* out) {
  BatchReq req;
  req.queries = queries;
  Frame reply;
  Status s = Rpc(FrameType::kBatch, req.Encode(), FrameType::kBatchResult,
                 &reply);
  if (!s.ok()) return s;
  BatchResultMsg batch;
  s = batch.Decode(reply.payload);
  if (!s.ok()) return s;
  *out = std::move(batch.results);
  return Status::OK();
}

Status Client::Stats(StatsMsg* out) {
  Frame reply;
  Status s = Rpc(FrameType::kStats, "", FrameType::kStatsResult, &reply);
  if (!s.ok()) return s;
  return out->Decode(reply.payload);
}

Status Client::Checkpoint(uint64_t* epoch) {
  Frame reply;
  Status s = Rpc(FrameType::kCheckpoint, "", FrameType::kResult, &reply);
  if (!s.ok()) return s;
  ResultMsg m;
  s = m.Decode(reply.payload);
  if (!s.ok()) return s;
  s = m.ToStatus();
  if (s.ok() && epoch != nullptr) *epoch = m.count;
  return s;
}

Status Client::CloseSession() {
  Frame reply;
  Status s = Rpc(FrameType::kClose, "", FrameType::kCloseOk, &reply);
  Close();
  return s;
}

}  // namespace server
}  // namespace adaptidx
