/// \file Ablation of the Section 5.3 queue-scheduling optimization: waiting
/// writers on a piece are kept sorted by bound and the *median* is woken
/// first ("if Q3 runs first, the domain is split in half and the remaining
/// queries may run in parallel"), versus plain FIFO wake-up.
///
/// A hot-spot workload (every query targets the same narrow domain slice)
/// maximizes queueing on single pieces, which is where the policy matters.

#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "core/cracking_index.h"

namespace adaptidx {
namespace bench {
namespace {

void Run() {
  const size_t rows = EnvSize("AI_BENCH_ROWS", 2000000);
  const size_t num_queries = EnvSize("AI_BENCH_QUERIES", 1024);
  const size_t clients = EnvSize("AI_BENCH_ABLATION_CLIENTS", 16);
  PrintHeader("Ablation: middle-out vs FIFO writer scheduling (Section 5.3)",
              "rows=" + std::to_string(rows) +
                  " queries=" + std::to_string(num_queries) +
                  " hot-spot workload (all bounds in one 10% slice), "
                  "clients=" + std::to_string(clients));

  Column column = MakeUniqueRandomColumn(rows);
  // Hot spot: all query bounds inside the first 10% of the domain.
  WorkloadGenerator gen(0, static_cast<Value>(rows / 10));
  WorkloadOptions wopts;
  wopts.num_queries = num_queries;
  wopts.selectivity = 0.02;
  wopts.type = QueryType::kSum;
  wopts.seed = 17;
  const auto queries = gen.Generate(wopts);

  std::printf("\n%-12s %14s %14s %14s %12s\n", "policy", "total (s)",
              "wait (ms)", "conflicts", "cracks");
  double totals[2];
  int i = 0;
  for (SchedulingPolicy policy :
       {SchedulingPolicy::kMiddleOut, SchedulingPolicy::kFifo}) {
    IndexConfig config;
    config.method = IndexMethod::kCrack;
    config.cracking.scheduling = policy;
    // batch_size 1: wait-dynamics comparison under the paper's
    // synchronous clients (see fig15).
    RunResult r = RunWorkload(column, config, queries, clients,
                              /*record_per_query=*/false,
                              /*batch_size=*/1);
    totals[i++] = r.total_seconds;
    std::printf("%-12s %14.3f %14.3f %14llu %12llu\n",
                policy == SchedulingPolicy::kMiddleOut ? "middle-out"
                                                       : "fifo",
                r.total_seconds,
                static_cast<double>(r.total_wait_ns) / 1e6,
                static_cast<unsigned long long>(r.total_conflicts),
                static_cast<unsigned long long>(r.total_cracks));
  }
  std::printf(
      "\npaper-shape check: middle-out within noise of or better than fifo "
      "(the win requires waiters that can actually run in parallel, i.e. "
      "multiple cores; this host has %u): %s\n",
      std::thread::hardware_concurrency(),
      totals[0] <= totals[1] * 2.0 ? "yes" : "NO");
}

}  // namespace
}  // namespace bench
}  // namespace adaptidx

int main() {
  adaptidx::bench::Run();
  return 0;
}
