#include "engine/query.h"

namespace adaptidx {

std::string ToString(QueryKind kind) {
  switch (kind) {
    case QueryKind::kCount:
      return "count";
    case QueryKind::kSum:
      return "sum";
    case QueryKind::kSumOther:
      return "sum-other";
    case QueryKind::kRowIds:
      return "row-ids";
  }
  return "unknown";
}

std::vector<Query> ToQueries(const std::string& table,
                             const std::string& column,
                             const std::vector<RangeQuery>& queries) {
  std::vector<Query> out;
  out.reserve(queries.size());
  for (const RangeQuery& q : queries) {
    out.push_back(Query::From(table, column, q));
  }
  return out;
}

}  // namespace adaptidx
