#ifndef ADAPTIDX_SERVER_SERVER_H_
#define ADAPTIDX_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "core/index_factory.h"
#include "core/updatable_index.h"
#include "durability/durable_index.h"
#include "lock/lock_manager.h"
#include "server/admission.h"
#include "server/event_loop.h"
#include "server/listener.h"
#include "server/protocol.h"
#include "storage/column.h"
#include "util/thread_pool.h"

namespace adaptidx {
namespace server {

/// \brief Server configuration.
struct ServerOptions {
  /// Listen address; loopback by default (tests, benches, the CLI).
  std::string host = "127.0.0.1";
  /// Listen port; 0 binds an ephemeral port readable via `Server::port()`.
  uint16_t port = 0;
  /// Per-frame size cap, enforced by the decoder before any payload
  /// buffer is reserved.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Engine execution pool size; 0 sizes it to the hardware with one
  /// context reserved for the I/O loop thread
  /// (`ThreadPool::DefaultConcurrency(1)`).
  size_t engine_threads = 0;
  /// Completion threads that block in `QueryTicket::WaitFor` and hand
  /// encoded responses back to the I/O loop — out-of-order completion by
  /// request id comes from here. Minimum 1.
  size_t completion_threads = 3;
  /// Per-request deadline: a request not complete this many ms after
  /// admission is answered TimedOut (the ticket is not detached; the
  /// engine-side execution still finishes and is drained on session
  /// close). 0 disables deadlines.
  int64_t request_deadline_ms = 30000;
  /// Round-robin fairness quantum: at most this many buffered frames are
  /// dispatched per connection per loop pass before the connection yields
  /// to its peers. Minimum 1.
  size_t fairness_quantum = 8;
  /// Admission control (bounded in-flight queues, overload gauge, RSS
  /// monitor).
  AdmissionOptions admission;
  /// Access method configuration of the served index (the base column is
  /// wrapped in an `UpdatableIndex` of this config, so INSERT/DELETE work
  /// over the wire).
  IndexConfig index_config;
  /// Durability of the served index. With a non-empty `data_dir` the
  /// server recovers from (or seeds) that directory at `Start`, binds the
  /// WAL to every commit, and answers CHECKPOINT frames; the constructor's
  /// base column then only seeds a virgin directory. Default: volatile.
  DurabilityOptions durability;
};

/// \brief TCP front-end putting one served table (an `UpdatableIndex`
/// over a base column) behind the wire protocol of `protocol.h`.
///
/// Architecture: a single poll-reactor I/O thread (`EventLoop`) owns every
/// socket and all per-connection state. Frames map onto the engine's
/// session API — OPEN_SESSION opens a `Session` (one per connection,
/// carrying client identity and the snapshot-reads flag), QUERY/BATCH
/// become `Session::Submit`/`SubmitBatch`, INSERT/DELETE become
/// session-transactional updates against the served `UpdatableIndex`.
/// Admitted tickets are awaited on a small completion pool
/// (`QueryTicket::WaitFor` enforcing the per-request deadline), so
/// responses complete *out of order* by request id — a long scan never
/// head-of-line-blocks a point query pipelined behind it.
///
/// Overload: every request passes `AdmissionController::TryAdmit` first;
/// refusals are answered SERVER_BUSY immediately (load-shed at the edge,
/// before engine queues or latch waits absorb the excess), and the STATS
/// frame serializes the shed counters, the three-state overload gauge,
/// per-session counters, and the served index's `LatchStats` — the whole
/// concurrency stack observable over the wire.
///
/// Thread-safety: `Start`/`Stop` and the observability accessors may be
/// called from any thread; everything socket-facing is confined to the
/// internal I/O thread.
class Server {
 public:
  /// \brief Takes ownership of the base column to serve; `opts` selects
  /// the wrapped access method and all server tuning.
  explicit Server(Column base, ServerOptions opts = {});

  /// \brief Stops (drains) if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// \brief Binds, listens, and starts the I/O thread; after OK the bound
  /// port is readable via `port()`. One-shot: a stopped server is not
  /// restartable.
  Status Start();

  /// \brief Stops accepting, closes every connection, drains in-flight
  /// requests, and joins all threads; idempotent.
  void Stop();

  /// \brief The bound port (meaningful after `Start`).
  uint16_t port() const { return port_; }

  /// \brief The served updatable index (tests inspect pending counters;
  /// not valid after destruction). Thread-safe pointer read; null before
  /// `Start` when durability is configured (recovery happens in `Start`).
  UpdatableIndex* index() { return index_; }

  /// \brief The durability wrapper, or null when serving volatile
  /// (`ServerOptions::durability.data_dir` empty). Valid after `Start`.
  DurableIndex* durable() { return durable_.get(); }

  /// \brief Admission gauges/counters (thread-safe).
  const AdmissionController& admission() const { return admission_; }

  /// \brief Connections currently open (thread-safe, approximate).
  size_t connections() const {
    return connections_.load(std::memory_order_relaxed);
  }

  /// \brief Protocol violations that closed a connection (thread-safe).
  uint64_t protocol_errors() const {
    return protocol_errors_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;

  // ---- loop-thread handlers --------------------------------------------
  void OnAcceptReady();
  void OnConnectionIo(uint64_t conn_id, bool readable, bool writable);
  void ProcessFrames(const std::shared_ptr<Connection>& conn);
  void DispatchFrame(const std::shared_ptr<Connection>& conn,
                     const Frame& frame);
  void HandleOpenSession(const std::shared_ptr<Connection>& conn,
                         const Frame& frame);
  void HandleQuery(const std::shared_ptr<Connection>& conn,
                   const Frame& frame);
  void HandleBatch(const std::shared_ptr<Connection>& conn,
                   const Frame& frame);
  void HandleUpdate(const std::shared_ptr<Connection>& conn,
                    const Frame& frame);
  void HandleStats(const std::shared_ptr<Connection>& conn,
                   const Frame& frame);
  void HandleCheckpoint(const std::shared_ptr<Connection>& conn,
                        const Frame& frame);
  void SendBusy(const std::shared_ptr<Connection>& conn, uint64_t request_id);
  void SendFrame(const std::shared_ptr<Connection>& conn, FrameType type,
                 uint64_t request_id, const std::string& payload);
  void FlushWrites(const std::shared_ptr<Connection>& conn);
  void ProtocolError(const std::shared_ptr<Connection>& conn,
                     const Status& error);
  void CloseConnection(uint64_t conn_id);

  // Thread-safe: encode on any thread, then post bytes to the loop.
  void PostResponse(uint64_t conn_id, FrameType type, uint64_t request_id,
                    std::string payload);

  int64_t DeadlineMs() const { return opts_.request_deadline_ms; }

  ServerOptions opts_;
  LockManager lock_manager_;
  // Exactly one of the two owners below is set: `owned_index_` when
  // serving volatile (constructed in the ctor, as before), `durable_` when
  // a data dir is configured (opened — recovery included — in `Start`).
  // `index_` always points at whichever index serves traffic.
  std::unique_ptr<Column> seed_;  ///< held until Start opens durable_
  std::unique_ptr<DurableIndex> durable_;
  std::unique_ptr<UpdatableIndex> owned_index_;
  UpdatableIndex* index_ = nullptr;
  std::unique_ptr<ThreadPool> engine_pool_;
  std::unique_ptr<ThreadPool> completion_pool_;
  AdmissionController admission_;

  EventLoop loop_;
  Listener listener_;
  std::thread io_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  uint16_t port_ = 0;

  // Loop-thread-only connection table, keyed by connection id (not fd:
  // ids are never reused, so a completion racing a close can only miss,
  // never hit a recycled descriptor).
  std::unordered_map<uint64_t, std::shared_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;

  std::atomic<size_t> connections_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> responses_sent_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> deadline_expired_{0};
};

}  // namespace server
}  // namespace adaptidx

#endif  // ADAPTIDX_SERVER_SERVER_H_
