#ifndef ADAPTIDX_UTIL_THREAD_POOL_H_
#define ADAPTIDX_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adaptidx {

/// \brief Fixed-size thread pool used by the multi-client driver and by
/// parallel merge helpers.
///
/// Tasks are `std::function<void()>`; `WaitIdle` blocks until every submitted
/// task has finished. The pool is not work-stealing — experiments submit
/// coarse tasks (one per client), so a simple mutex-protected deque suffices.
class ThreadPool {
 public:
  /// \brief Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  /// \brief Hardware-derived worker count with `reserve_threads` contexts
  /// left free (never below 1). The network server sizes its engine pool
  /// with `DefaultConcurrency(1)` so the I/O event-loop thread keeps a
  /// hardware context of its own instead of time-slicing against a fully
  /// subscribed execution pool.
  static size_t DefaultConcurrency(size_t reserve_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// \brief Blocks until the queue is empty and all workers are idle.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_UTIL_THREAD_POOL_H_
