#include "core/partitioned_index.h"

#include <algorithm>
#include <condition_variable>
#include <thread>
#include <utility>

#include "cracking/parallel_crack.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace adaptidx {

namespace {

/// Display base name of the method a config selects (the inner indexes'
/// own Name() is unavailable before first touch).
std::string MethodDisplayName(const IndexConfig& config) {
  switch (config.method) {
    case IndexMethod::kScan:
      return "scan";
    case IndexMethod::kSort:
      return "sort";
    case IndexMethod::kCrack:
      return config.cracking.name;
    case IndexMethod::kAdaptiveMerge:
      return config.merge.name;
    case IndexMethod::kHybrid:
      return config.hybrid.name;
    case IndexMethod::kBTreeMerge:
      return config.btree.name;
  }
  return "unknown";
}

}  // namespace

/// One query's fan-out ledger. Shared (via shared_ptr) between the
/// submitting thread and the helper tasks it enqueues: helpers that wake
/// after all fragments are claimed touch only this struct, never the query
/// or the index, so the submitter may return as soon as `done` reaches the
/// fragment count.
struct PartitionedIndex::FanState {
  Query query;
  struct Fragment {
    size_t shard = 0;
    QueryContext ctx;
    QueryResult result;
    Status status;
  };
  std::vector<Fragment> frags;
  std::atomic<size_t> next{0};
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;
};

PartitionedIndex::PartitionedIndex(const Column* column,
                                   const IndexConfig& config)
    : column_(column),
      inner_config_(config),
      num_partitions_(std::max<size_t>(1, config.partitions)),
      name_(MethodDisplayName(config) + "-p" +
            std::to_string(std::max<size_t>(1, config.partitions))),
      external_pool_(config.pool) {
  inner_config_.partitions = 1;  // the shards are the partitioning
  inner_config_.pool = nullptr;
}

PartitionedIndex::~PartitionedIndex() = default;

void PartitionedIndex::EnsureInitialized(QueryContext* ctx) {
  if (initialized_.load(std::memory_order_acquire)) return;
  const int64_t wait_start = NowNanos();
  std::lock_guard<std::mutex> lk(init_mu_);
  if (initialized_.load(std::memory_order_relaxed)) {
    // Another query built the shards while we blocked — genuine wait, as
    // with the monolithic cracker's first-touch latch.
    ctx->stats.wait_ns += NowNanos() - wait_start;
    return;
  }
  ScopedTimer init_timer(&ctx->stats.init_ns);

  const size_t n = column_->size();
  const size_t p = num_partitions_;

  // Quantile boundaries from a deterministic sample — an O(sample log
  // sample) estimate, not a full sort, so the first touch stays cheap.
  // Strictly-increasing dedup absorbs duplicate-heavy data; collapsed
  // quantiles simply yield fewer (larger) shards.
  if (n > 0 && p > 1) {
    const size_t target = std::min(n, std::max<size_t>(p * 256, 4096));
    const size_t step = std::max<size_t>(1, n / target);
    std::vector<Value> sample;
    sample.reserve(n / step + 1);
    const Value* data = column_->data();
    for (size_t i = 0; i < n; i += step) sample.push_back(data[i]);
    std::sort(sample.begin(), sample.end());
    for (size_t k = 1; k < p; ++k) {
      const Value cut = sample[k * sample.size() / p];
      // A cut at or below the global minimum would leave its left shard
      // provably empty; strictly-increasing cuts above the minimum give
      // every shard at least one sampled value.
      if (cut > sample.front() && (bounds_.empty() || cut > bounds_.back())) {
        bounds_.push_back(cut);
      }
    }
  }

  // Scatter rows to shards by binary search over the boundaries; every
  // shard remembers the base row id of each of its rows.
  const size_t num_shards = bounds_.size() + 1;
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->column = Column(column_->name() + "#p" + std::to_string(s));
    shards_.push_back(std::move(shard));
  }

  // The pool exists before the scatter so the first touch itself — the
  // single most expensive step of partitioned cracking — can use it. A
  // single-hardware-thread host gets no pool at all: fragments then run
  // inline and the scatter stays serial, avoiding handoff overhead that
  // parallelism can never pay back there.
  if (external_pool_ == nullptr && num_shards > 1) {
    const size_t workers = std::min<size_t>(
        num_shards, std::thread::hardware_concurrency());
    if (workers > 1) {
      owned_pool_ = std::make_unique<ThreadPool>(workers);
    }
  }
  ThreadPool* pool = external_pool_ != nullptr ? external_pool_
                                               : owned_pool_.get();

  const Value* data = column_->data();
  const size_t chunks =
      pool == nullptr || num_shards == 1 || n < (1u << 16)
          ? 1
          : std::min(pool->num_threads() + 1, n / (1u << 14));
  if (chunks <= 1) {
    for (size_t i = 0; i < n; ++i) {
      const Value v = data[i];
      const size_t s = static_cast<size_t>(
          std::upper_bound(bounds_.begin(), bounds_.end(), v) -
          bounds_.begin());
      shards_[s]->column.Append(v);
      shards_[s]->to_global.push_back(static_cast<RowId>(i));
    }
  } else {
    // Two-phase parallel scatter. Phase 1: each chunk task classifies its
    // contiguous row range into chunk-local per-shard buffers. Phase 2: one
    // task per shard concatenates that shard's buffers in chunk order —
    // yielding exactly the row order of the serial scatter, so the shard
    // contents (and every downstream crack position) stay deterministic.
    std::vector<std::vector<std::vector<std::pair<Value, RowId>>>> parts(
        chunks, std::vector<std::vector<std::pair<Value, RowId>>>(num_shards));
    ParallelRun(pool, chunks, [&](size_t c) {
      const size_t cb = n * c / chunks;
      const size_t ce = n * (c + 1) / chunks;
      auto& mine = parts[c];
      for (size_t i = cb; i < ce; ++i) {
        const Value v = data[i];
        const size_t s = static_cast<size_t>(
            std::upper_bound(bounds_.begin(), bounds_.end(), v) -
            bounds_.begin());
        mine[s].emplace_back(v, static_cast<RowId>(i));
      }
    });
    ParallelRun(pool, num_shards, [&](size_t s) {
      Shard& shard = *shards_[s];
      size_t rows = 0;
      for (size_t c = 0; c < chunks; ++c) rows += parts[c][s].size();
      shard.to_global.reserve(rows);
      for (size_t c = 0; c < chunks; ++c) {
        for (const auto& [v, id] : parts[c][s]) {
          shard.column.Append(v);
          shard.to_global.push_back(id);
        }
      }
    });
  }

  // Inner indexes are built over the (now address-stable) shard columns;
  // each gets its own latch hierarchy and refines independently. Cracking
  // shards share the fan-out pool for their own intra-query parallel
  // cracks — a first-touch crack of one shard can then use every core, not
  // just the fragment's thread.
  if (inner_config_.method == IndexMethod::kCrack) {
    inner_config_.cracking.pool = pool;
  }
  for (auto& shard : shards_) {
    shard->index = MakeIndex(&shard->column, inner_config_);
  }
  initialized_.store(true, std::memory_order_release);
}

void PartitionedIndex::RouteRange(const ValueRange& range, size_t* begin,
                                  size_t* end) const {
  // Shard s covers [bounds_[s-1], bounds_[s]); a shard intersects the
  // query range iff its interval does. Integer bounds make "first bound
  // >= hi" exactly the one-past-the-last intersecting shard.
  *begin = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), range.lo) -
      bounds_.begin());
  *end = static_cast<size_t>(
             std::lower_bound(bounds_.begin(), bounds_.end(), range.hi) -
             bounds_.begin()) +
         1;
}

void PartitionedIndex::RunFragments(const std::shared_ptr<FanState>& state) {
  const size_t total = state->frags.size();
  for (;;) {
    const size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= total) return;
    FanState::Fragment& f = state->frags[i];
    f.status = shards_[f.shard]->index->Execute(state->query, &f.ctx,
                                                &f.result);
    if (f.status.ok() && state->query.kind == QueryKind::kRowIds) {
      // Inner indexes answer in shard-local row ids; translate to base
      // row ids here, inside the parallel fragment, not on the merge path.
      const std::vector<RowId>& map = shards_[f.shard]->to_global;
      for (RowId& id : f.result.row_ids) id = map[id];
    }
    std::lock_guard<std::mutex> lk(state->mu);
    if (++state->done == total) state->cv.notify_all();
  }
}

Status PartitionedIndex::ExecuteImpl(const Query& query, QueryContext* ctx,
                                     QueryResult* result) {
  if (query.kind == QueryKind::kSumOther) {
    return Status::NotSupported(name_ + " holds no second column");
  }
  EnsureInitialized(ctx);

  // Execute() guarantees a non-empty range, so lo < hi here and RouteRange
  // yields a well-formed, in-bounds shard interval (end <= shard count).
  size_t s_begin;
  size_t s_end;
  RouteRange(query.range, &s_begin, &s_end);

  if (s_end - s_begin == 1) {
    // Single-shard query: execute inline on the caller — the common case
    // for selective queries, and the one where disjoint-range clients
    // never meet. Stats flow into the caller's context directly.
    Shard& shard = *shards_[s_begin];
    Status s = shard.index->Execute(query, ctx, result);
    if (s.ok() && query.kind == QueryKind::kRowIds) {
      for (RowId& id : result->row_ids) id = shard.to_global[id];
    }
    return s;
  }

  auto state = std::make_shared<FanState>();
  state->query = query;
  state->frags.resize(s_end - s_begin);
  for (size_t s = s_begin; s < s_end; ++s) {
    FanState::Fragment& f = state->frags[s - s_begin];
    f.shard = s;
    f.ctx = ctx->SpawnFragment();
  }

  // Enqueue one helper per fragment beyond the one this thread takes;
  // helpers and submitter claim fragments from the shared counter, so the
  // query proceeds at full speed when the pool is idle and degrades to
  // inline execution (never deadlock) when the pool is saturated with
  // other queries doing the same.
  ThreadPool* pool = external_pool_ != nullptr ? external_pool_
                                               : owned_pool_.get();
  if (pool != nullptr) {
    const size_t helpers = state->frags.size() - 1;
    for (size_t h = 0; h < helpers; ++h) {
      pool->Submit([this, state] { RunFragments(state); });
    }
  }
  RunFragments(state);
  {
    std::unique_lock<std::mutex> lk(state->mu);
    if (state->done != state->frags.size()) {
      // Blocking on fragments still running elsewhere is wait like any
      // other: charge it, as every latch and init path does.
      const int64_t wait_start = NowNanos();
      state->cv.wait(lk,
                     [&] { return state->done == state->frags.size(); });
      ctx->stats.wait_ns += NowNanos() - wait_start;
    }
  }

  Status status;
  for (const FanState::Fragment& f : state->frags) {
    ctx->stats.Accumulate(f.ctx.stats);
    if (status.ok() && !f.status.ok()) status = f.status;
    if (f.status.ok()) result->Merge(f.result);
  }
  return status;
}

size_t PartitionedIndex::NumPieces() const {
  if (!initialized_.load(std::memory_order_acquire)) return 0;
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->index->NumPieces();
  return total;
}

std::vector<Value> PartitionedIndex::ShardBounds() const {
  if (!initialized_.load(std::memory_order_acquire)) return {};
  return bounds_;
}

std::vector<size_t> PartitionedIndex::ShardSizes() const {
  std::vector<size_t> sizes;
  if (!initialized_.load(std::memory_order_acquire)) return sizes;
  for (const auto& shard : shards_) sizes.push_back(shard->column.size());
  return sizes;
}

}  // namespace adaptidx
