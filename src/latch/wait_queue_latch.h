#ifndef ADAPTIDX_LATCH_WAIT_QUEUE_LATCH_H_
#define ADAPTIDX_LATCH_WAIT_QUEUE_LATCH_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "latch/latch_stats.h"
#include "storage/types.h"

namespace adaptidx {

/// \brief Policy for choosing the next waiting *writer* to wake up
/// (Section 5.3, "Optimizations").
enum class SchedulingPolicy {
  /// Wake writers in arrival order.
  kFifo,
  /// Keep waiting writers insertion-sorted by their crack bound and wake the
  /// median one, so the piece splits in half and the remaining waiters can
  /// proceed in parallel on the two sub-pieces. This is the paper's queue
  /// scheduling optimization.
  kMiddleOut,
};

/// \brief Read-write latch with an explicit wait queue, used for both the
/// column latch and the per-piece latches of Section 5.3.
///
/// Semantics (matching the behaviour narrated around Figure 8):
///  - Multiple readers share the latch ("two or more queries may perform
///    aggregations in parallel in the same piece").
///  - Writers are exclusive ("each distinct column piece can be accessed by
///    one query at a time for cracking").
///  - Readers are preferred: a read acquisition succeeds whenever no writer
///    is active, and on write release *all* waiting readers are granted as a
///    batch before the next writer. In the paper's column-latch example, Q1
///    and Q2 aggregate in parallel while writer Q3 keeps waiting. Writer
///    starvation is rare in the paper's workload (every cracking query
///    performs one short write burst followed by reads), but a pure reader
///    stream can still starve a queued writer indefinitely, so a backstop
///    applies: once `kWriterStarvationReaderLimit` readers have been
///    admitted past a queued writer, new readers queue instead of sharing
///    and the writer is granted at the next release.
///  - Writers register the crack *bound* they intend to apply; under
///    kMiddleOut the queue is maintained sorted by bound via insertion sort
///    and the median waiter is granted on release.
///
/// Grant protocol: a reader batch is granted by publishing the batch size in
/// `granted_readers_` before the wakeup; each woken reader converts one
/// grant into an active hold. Until every grant is converted the latch is
/// NOT free — the exclusive fast paths (`WriteLock`, `TryWriteLock`) refuse
/// whenever `granted_readers_ > 0` or writers are queued, otherwise a writer
/// arriving in the window between the wakeup and the readers' re-acquisition
/// of the internal mutex would silently steal the grant (and bypass queued
/// writers, breaking kMiddleOut's median scheduling).
///
/// Each acquisition may carry a LatchAcquireContext so that wait time and
/// conflicts are attributed both globally and to the acquiring query.
class WaitQueueLatch {
 public:
  explicit WaitQueueLatch(SchedulingPolicy policy = SchedulingPolicy::kFifo);

  WaitQueueLatch(const WaitQueueLatch&) = delete;
  WaitQueueLatch& operator=(const WaitQueueLatch&) = delete;

  /// \brief Acquires the latch in shared mode; blocks while a writer is
  /// active.
  void ReadLock(const LatchAcquireContext& ctx = {});

  /// \brief Non-blocking shared acquisition; returns false when a writer is
  /// active.
  bool TryReadLock(const LatchAcquireContext& ctx = {});

  /// \brief Releases a shared acquisition.
  void ReadUnlock();

  /// \brief Acquires the latch in exclusive mode. `bound` is the crack bound
  /// this writer intends to apply; it feeds kMiddleOut scheduling and is
  /// ignored under kFifo.
  void WriteLock(Value bound, const LatchAcquireContext& ctx = {});

  /// \brief Non-blocking exclusive acquisition (conflict avoidance,
  /// Section 3.3). Returns false when any holder exists.
  bool TryWriteLock(const LatchAcquireContext& ctx = {});

  /// \brief Releases the exclusive acquisition and grants waiters: all
  /// waiting readers first, otherwise one writer chosen by the policy.
  void WriteUnlock();

  /// \brief Snapshot of the bounds of currently waiting writers, used by the
  /// group-cracking strategy (Section 7, "Dynamic Algorithms") to refine for
  /// multiple queued requests in one step.
  std::vector<Value> PendingWriterBounds() const;

  /// \brief True when any thread is blocked on this latch. Used by merge
  /// steps for adaptive early termination (Section 3.3): an active system
  /// transaction commits and stops when contention appears.
  bool HasWaiters() const;

  SchedulingPolicy policy() const { return policy_; }

 private:
  struct WriterWaiter {
    Value bound;
    uint64_t ticket;
    bool granted = false;
  };

  /// Writer-starvation backstop: after this many reader admissions slip past
  /// a queued writer, new readers queue instead of sharing so the writer is
  /// admitted at the next release. Large enough that the paper's Figure 8
  /// reader sharing (a handful of aggregations overlapping one waiting
  /// writer) is never curtailed, small enough that a continuous reader
  /// stream cannot starve a writer for more than a bounded number of reads.
  static constexpr uint64_t kWriterStarvationReaderLimit = 64;

  /// Grants waiters after a release. Caller holds mu_.
  void GrantLocked();

  /// Picks the index of the next writer in writer_queue_. Caller holds mu_.
  size_t PickWriterLocked() const;

  /// True when the head writer has waited through the starvation limit and
  /// must be admitted before any further readers. Caller holds mu_.
  bool WriterOverdueLocked() const;

  /// True when a reader may be admitted immediately (no active writer, no
  /// overdue queued writer). Caller holds mu_.
  bool CanAdmitReaderLocked() const;

  const SchedulingPolicy policy_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  int active_readers_ = 0;
  bool active_writer_ = false;
  int waiting_readers_ = 0;
  /// Readers woken by a batch grant but not yet accounted in
  /// active_readers_; the latch is not free while any grant is outstanding.
  int granted_readers_ = 0;
  /// Incremented on every reader-batch grant. A waiting reader may consume
  /// a grant only if it enqueued before the batch was published (its
  /// recorded generation is older) — otherwise a reader that queued behind
  /// an overdue writer could steal a grant meant for the batch and stride
  /// past the starvation backstop.
  uint64_t grant_generation_ = 0;
  /// Readers admitted (shared) while at least one writer was queued; reset
  /// on every writer grant. Feeds the starvation backstop.
  uint64_t readers_admitted_past_writer_ = 0;
  uint64_t next_ticket_ = 0;
  std::vector<WriterWaiter*> writer_queue_;  // sorted by bound under
                                             // kMiddleOut, arrival order
                                             // under kFifo
};

/// \brief RAII shared guard.
class ReadLatchGuard {
 public:
  ReadLatchGuard(WaitQueueLatch* latch, const LatchAcquireContext& ctx = {})
      : latch_(latch) {
    latch_->ReadLock(ctx);
  }
  ~ReadLatchGuard() { Release(); }

  ReadLatchGuard(const ReadLatchGuard&) = delete;
  ReadLatchGuard& operator=(const ReadLatchGuard&) = delete;

  /// \brief Early release (idempotent).
  void Release() {
    if (latch_ != nullptr) {
      latch_->ReadUnlock();
      latch_ = nullptr;
    }
  }

 private:
  WaitQueueLatch* latch_;
};

/// \brief RAII exclusive guard.
class WriteLatchGuard {
 public:
  WriteLatchGuard(WaitQueueLatch* latch, Value bound,
                  const LatchAcquireContext& ctx = {})
      : latch_(latch) {
    latch_->WriteLock(bound, ctx);
  }
  ~WriteLatchGuard() { Release(); }

  WriteLatchGuard(const WriteLatchGuard&) = delete;
  WriteLatchGuard& operator=(const WriteLatchGuard&) = delete;

  void Release() {
    if (latch_ != nullptr) {
      latch_->WriteUnlock();
      latch_ = nullptr;
    }
  }

 private:
  WaitQueueLatch* latch_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_LATCH_WAIT_QUEUE_LATCH_H_
