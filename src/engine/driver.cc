#include "engine/driver.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "engine/session.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace adaptidx {

namespace {

/// Start barrier: all client threads begin issuing queries at once.
class StartBarrier {
 public:
  explicit StartBarrier(size_t parties) : remaining_(parties) {}

  void ArriveAndWait() {
    std::unique_lock<std::mutex> lk(mu_);
    if (--remaining_ == 0) {
      cv_.notify_all();
      return;
    }
    cv_.wait(lk, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t remaining_;
};

}  // namespace

StatTotals SumStats(const std::vector<PerQueryRecord>& records, size_t from,
                    size_t to) {
  StatTotals totals;
  to = std::min(to, records.size());
  for (size_t i = from; i < to; ++i) totals.Add(records[i].stats);
  return totals;
}

RunResult Driver::Run(AdaptiveIndex* index,
                      const std::vector<RangeQuery>& queries,
                      const DriverOptions& opts) {
  RunResult result;
  result.num_queries = queries.size();
  result.num_clients = std::max<size_t>(1, opts.num_clients);
  if (queries.empty()) return result;

  const size_t num_clients = std::min(result.num_clients, queries.size());
  result.num_clients = num_clients;
  const size_t batch_size = std::max<size_t>(1, opts.batch_size);

  // Contiguous partitioning of the sequence across clients, paper-style.
  const auto slices = SplitStreams(queries.size(), num_clients);

  // Clients are sessions over a shared pool with one worker per client:
  // aggregate parallelism equals the paper's one-thread-per-client set-up.
  // Each client thread submits its stream strictly batch-at-a-time (submit
  // `batch_size` queries, collect all answers, submit the next batch): a
  // blocked query throttles its own client's stream exactly as the paper's
  // synchronous clients do, which bounds writer starvation under the
  // reader-preferring latches, while the queued batch keeps crack bounds
  // visible to group-aware refinement.
  ThreadPool pool(num_clients);

  std::vector<std::vector<PerQueryRecord>> client_records(num_clients);
  std::atomic<bool> failed{false};
  StartBarrier barrier(num_clients + 1);

  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      SessionOptions sopts;
      sopts.client_id = static_cast<uint32_t>(c + 1);
      auto session = Session::OnIndex(index, &pool, std::move(sopts));
      auto& records = client_records[c];
      records.reserve(slices[c].second - slices[c].first);
      size_t seq = 0;
      // Collects one completed batch. Waits back-to-front: the batch
      // executes roughly FIFO, so blocking on the last ticket first leaves
      // the earlier waits non-blocking — one sleep per batch instead of one
      // per query, which matters when clients outnumber cores.
      auto drain = [&](std::vector<QueryTicket>& tickets,
                       size_t base) -> bool {
        for (size_t i = tickets.size(); i-- > 0;) tickets[i].Wait();
        for (size_t i = 0; i < tickets.size(); ++i) {
          if (!tickets[i].status().ok()) {
            failed.store(true, std::memory_order_relaxed);
            return false;
          }
          PerQueryRecord rec;
          rec.query = queries[base + i];
          rec.result = tickets[i].result();
          rec.stats = tickets[i].stats();
          rec.client_id = static_cast<uint32_t>(c);
          rec.client_seq = seq++;
          records.push_back(std::move(rec));
        }
        return true;
      };
      // batch_size 1 is the paper's strictly synchronous client. Larger
      // batches model batch admission and double-buffer (batch k+1 is
      // submitted before batch k is collected) so the pool never idles at a
      // batch boundary.
      const bool pipelined = batch_size > 1;
      std::vector<QueryTicket> pending;
      size_t pending_base = 0;
      barrier.ArriveAndWait();
      for (size_t b = slices[c].first;
           b < slices[c].second && !failed.load(std::memory_order_relaxed);
           b += batch_size) {
        const size_t e = std::min(slices[c].second, b + batch_size);
        std::vector<Query> batch;
        batch.reserve(e - b);
        for (size_t i = b; i < e; ++i) {
          batch.push_back(Query::From("", "", queries[i]));
        }
        auto tickets = session->SubmitBatch(std::move(batch));
        if (!pipelined) {
          if (!drain(tickets, b)) return;
          continue;
        }
        if (!pending.empty() && !drain(pending, pending_base)) {
          return;  // session close drains whatever is still in flight
        }
        pending = std::move(tickets);
        pending_base = b;
      }
      if (!pending.empty() && !failed.load(std::memory_order_relaxed)) {
        drain(pending, pending_base);
      }
    });
  }

  // The reported total time is "the time perceived by the last client to
  // receive all answers".
  StopWatch wall;
  barrier.ArriveAndWait();
  wall.Reset();
  for (auto& t : clients) t.join();
  result.total_seconds = wall.ElapsedSeconds();
  result.throughput_qps =
      result.total_seconds > 0
          ? static_cast<double>(queries.size()) / result.total_seconds
          : 0;
  if (failed.load()) {
    result.status = Status::Aborted("a client query failed");
    return result;
  }

  StatTotals totals;
  for (auto& records : client_records) {
    for (auto& rec : records) {
      result.response_hist.Add(rec.stats.response_ns);
      totals.Add(rec.stats);
      if (opts.record_per_query) result.records.push_back(std::move(rec));
    }
  }
  result.total_conflicts = totals.conflicts;
  result.total_wait_ns = totals.wait_ns;
  result.total_crack_ns = totals.crack_ns;
  result.total_init_ns = totals.init_ns;
  result.total_read_ns = totals.read_ns;
  result.total_cracks = totals.cracks;
  result.refinements_skipped = totals.refinements_skipped;
  if (opts.record_per_query) {
    std::sort(result.records.begin(), result.records.end(),
              [](const PerQueryRecord& a, const PerQueryRecord& b) {
                return a.stats.finish_ns < b.stats.finish_ns;
              });
  }
  return result;
}

}  // namespace adaptidx
