#include "core/snapshot.h"

#include <algorithm>
#include <cassert>

namespace adaptidx {

namespace {

/// First element of a (value, rowID)-sorted vector with value >= lo.
std::vector<std::pair<Value, RowId>>::const_iterator LowerBound(
    const std::vector<std::pair<Value, RowId>>& entries, Value lo) {
  return std::lower_bound(entries.begin(), entries.end(),
                          std::make_pair(lo, RowId{0}));
}

void CountSumIn(const std::vector<std::pair<Value, RowId>>& entries,
                const ValueRange& range, uint64_t* count, int64_t* sum) {
  *count = 0;
  *sum = 0;
  for (auto it = LowerBound(entries, range.lo);
       it != entries.end() && it->first < range.hi; ++it) {
    ++*count;
    *sum += it->first;
  }
}

}  // namespace

// ------------------------------------------------------ SideStoreVersion

void SideStoreVersion::InsertCountSum(const ValueRange& range,
                                      uint64_t* count, int64_t* sum) const {
  CountSumIn(inserts, range, count, sum);
}

void SideStoreVersion::AntiMatterCountSum(const ValueRange& range,
                                          uint64_t* count,
                                          int64_t* sum) const {
  CountSumIn(anti_matter, range, count, sum);
}

bool SideStoreVersion::HidesRow(Value v, RowId id) const {
  return std::binary_search(anti_matter.begin(), anti_matter.end(),
                            std::make_pair(v, id));
}

size_t SideStoreVersion::FirstInsertAtOrAbove(Value lo) const {
  return static_cast<size_t>(LowerBound(inserts, lo) - inserts.begin());
}

bool SideStoreVersion::AnyAntiMatterIn(const ValueRange& range) const {
  auto it = LowerBound(anti_matter, range.lo);
  return it != anti_matter.end() && it->first < range.hi;
}

// -------------------------------------------------------------- Snapshot

Snapshot& Snapshot::operator=(Snapshot&& other) noexcept {
  if (this != &other) {
    Release();
    mgr_ = other.mgr_;
    version_ = std::move(other.version_);
    base_generation_ = other.base_generation_;
    other.mgr_ = nullptr;
    other.version_ = nullptr;
  }
  return *this;
}

void Snapshot::Release() {
  if (mgr_ != nullptr && version_ != nullptr) {
    mgr_->Release(version_->epoch);
  }
  mgr_ = nullptr;
  version_ = nullptr;
}

// ------------------------------------------------------- SnapshotManager

SnapshotManager::SnapshotManager()
    : current_(std::make_shared<SideStoreVersion>()) {}

void SnapshotManager::Publish(std::shared_ptr<const SideStoreVersion> version) {
  std::lock_guard<std::mutex> lk(mu_);
  assert(version->epoch >= current_->epoch);
  retired_.push_back(std::move(current_));
  ++retired_total_;
  current_ = std::move(version);
  ++published_;
  ReclaimLocked();
}

Snapshot SnapshotManager::Acquire() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] { return !rebasing_; });
  ++active_[current_->epoch];
  return Snapshot(this, current_, base_generation_);
}

Snapshot SnapshotManager::TryAcquireMaterialized(
    std::shared_ptr<const SideStoreVersion> version) {
  std::lock_guard<std::mutex> lk(mu_);
  // Refuse rather than wait: the caller materialized under the index latch
  // and the rebasing thread is about to need it exclusively.
  if (rebasing_) return Snapshot();
  ++active_[version->epoch];
  return Snapshot(this, std::move(version), base_generation_);
}

void SnapshotManager::AwaitRebaseComplete() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] { return !rebasing_; });
}

void SnapshotManager::BeginRebase() {
  std::unique_lock<std::mutex> lk(mu_);
  // One rebase at a time: a second checkpoint parks here until the first
  // completes, then establishes its own drain.
  cv_.wait(lk, [this] { return !rebasing_; });
  rebasing_ = true;
  cv_.wait(lk, [this] { return active_.empty(); });
}

void SnapshotManager::CompleteRebase(
    std::shared_ptr<const SideStoreVersion> version) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    // The retired chain belongs to the pre-checkpoint base generation; no
    // snapshot can reference it anymore (the drain guaranteed that), so it
    // is reclaimed wholesale rather than epoch by epoch.
    reclaimed_ += retired_.size();
    retired_.clear();
    current_ = std::move(version);
    ++published_;
    ++base_generation_;
    rebasing_ = false;
  }
  cv_.notify_all();
}

void SnapshotManager::Release(uint64_t epoch) {
  bool drained = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = active_.find(epoch);
    assert(it != active_.end());
    if (--it->second == 0) active_.erase(it);
    ReclaimLocked();
    drained = active_.empty();
  }
  // A draining BeginRebase only cares about the registry emptying.
  if (drained) cv_.notify_all();
}

void SnapshotManager::ReclaimLocked() {
  // Keep only retired versions whose epoch an active snapshot still pins.
  // The pin's own shared_ptr keeps its version alive regardless, so
  // holding unpinned intermediates would be pure retention: a long-held
  // snapshot beside a fast update stream must not accumulate one full
  // side-store copy per commit.
  for (auto it = retired_.begin(); it != retired_.end();) {
    if (active_.count((*it)->epoch) > 0) {
      ++it;
    } else {
      it = retired_.erase(it);
      ++reclaimed_;
    }
  }
}

uint64_t SnapshotManager::base_generation() const {
  std::lock_guard<std::mutex> lk(mu_);
  return base_generation_;
}

uint64_t SnapshotManager::current_epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return current_->epoch;
}

size_t SnapshotManager::active_snapshots() const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t n = 0;
  for (const auto& [epoch, pins] : active_) n += pins;
  return n;
}

uint64_t SnapshotManager::oldest_active_epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return active_.empty() ? current_->epoch : active_.begin()->first;
}

uint64_t SnapshotManager::versions_published() const {
  std::lock_guard<std::mutex> lk(mu_);
  return published_;
}

uint64_t SnapshotManager::versions_retired() const {
  std::lock_guard<std::mutex> lk(mu_);
  return retired_total_;
}

uint64_t SnapshotManager::versions_reclaimed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return reclaimed_;
}

size_t SnapshotManager::retired_chain_length() const {
  std::lock_guard<std::mutex> lk(mu_);
  return retired_.size();
}

}  // namespace adaptidx
