#ifndef ADAPTIDX_BTREE_BTREE_H_
#define ADAPTIDX_BTREE_BTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "cracking/cracker_array.h"
#include "storage/types.h"

namespace adaptidx {

/// \brief Composite key of a partitioned B-tree (Section 4.1): "a
/// traditional B-tree index with an artificial leading key field that
/// captures partition identifiers". The rowID participates in ordering to
/// make keys unique under duplicate values.
struct BTreeKey {
  uint32_t partition;
  Value value;
  RowId row_id;

  friend bool operator<(const BTreeKey& a, const BTreeKey& b) {
    if (a.partition != b.partition) return a.partition < b.partition;
    if (a.value != b.value) return a.value < b.value;
    return a.row_id < b.row_id;
  }
  friend bool operator==(const BTreeKey& a, const BTreeKey& b) {
    return a.partition == b.partition && a.value == b.value &&
           a.row_id == b.row_id;
  }
};

/// \brief In-memory B+-tree keyed by BTreeKey, the storage substrate for
/// adaptive merging in Section 4.
///
/// Properties matching the paper's design:
///  - Partitions "appear and disappear simply by insertion and deletion of
///    records with appropriate values in the artificial leading key field" —
///    there is no partition catalog; `Partitions()` derives the live set.
///  - Deletion uses "pseudo-deleted ghost records" (Section 3.1): ghosts
///    stay in place, scans skip them, and `PurgeGhosts` (a maintenance
///    system transaction) rebuilds the tree compactly.
///
/// The tree itself is not synchronized; the owning index serializes
/// structural changes with its latch (see BTreeMergeIndex). This mirrors the
/// paper's split between data structure and concurrency protocol.
class PartitionedBTree {
 public:
  explicit PartitionedBTree(size_t node_capacity = 64);
  ~PartitionedBTree();

  PartitionedBTree(const PartitionedBTree&) = delete;
  PartitionedBTree& operator=(const PartitionedBTree&) = delete;

  /// \brief Inserts one record (duplicate keys are ignored; a ghost with the
  /// same key is resurrected).
  void Insert(const BTreeKey& key);

  /// \brief Appends a sorted run as partition `pid`. `sorted` must be
  /// ordered by (value, row_id); the partition must not already contain
  /// records.
  void BulkLoadPartition(uint32_t pid, const std::vector<CrackerEntry>& sorted);

  /// \brief Visits live records of `pid` with value in [lo, hi) in key
  /// order.
  void ScanRange(uint32_t pid, Value lo, Value hi,
                 const std::function<void(const BTreeKey&)>& fn) const;

  /// \brief Ghost-deletes live records of `pid` with value in [lo, hi).
  /// \return number of records deleted.
  size_t DeleteRange(uint32_t pid, Value lo, Value hi);

  /// \brief Rebuilds the tree without ghosts (maintenance transaction).
  void PurgeGhosts();

  /// \brief Live (non-ghost) record count.
  size_t size() const { return live_count_; }
  size_t num_ghosts() const { return ghost_count_; }
  size_t num_leaves() const;
  int height() const;

  /// \brief Distinct partition ids with live records, ascending.
  std::vector<uint32_t> Partitions() const;

  /// \brief Checks B+-tree invariants: key order within and across leaves,
  /// separator correctness, child counts. Used by tests.
  bool Validate() const;

 private:
  struct Node {
    bool is_leaf;
    explicit Node(bool leaf) : is_leaf(leaf) {}
  };
  struct LeafNode : Node {
    LeafNode() : Node(true) {}
    std::vector<BTreeKey> keys;       // sorted
    std::vector<uint8_t> ghost;       // parallel to keys
    LeafNode* next = nullptr;
  };
  struct InnerNode : Node {
    InnerNode() : Node(false) {}
    // children.size() == seps.size() + 1; seps[i] is the smallest key
    // reachable under children[i + 1].
    std::vector<BTreeKey> seps;
    std::vector<Node*> children;
  };

  /// Recursive insert; returns a new right sibling + separator on split.
  struct SplitResult {
    Node* right = nullptr;
    BTreeKey sep;
  };
  SplitResult InsertRec(Node* node, const BTreeKey& key, bool* inserted);

  /// Leftmost leaf that may contain `key`.
  const LeafNode* FindLeaf(const BTreeKey& key) const;

  static void DestroyRec(Node* node);
  static size_t CountLeavesRec(const Node* node);
  static int HeightRec(const Node* node);
  bool ValidateRec(const Node* node, const BTreeKey* lo, const BTreeKey* hi,
                   int depth, int leaf_depth) const;
  int LeafDepth() const;

  /// Rebuilds bottom-up from sorted live keys.
  void BuildFromSorted(const std::vector<BTreeKey>& keys);

  const size_t node_capacity_;
  Node* root_;
  size_t live_count_ = 0;
  size_t ghost_count_ = 0;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_BTREE_BTREE_H_
