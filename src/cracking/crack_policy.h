#ifndef ADAPTIDX_CRACKING_CRACK_POLICY_H_
#define ADAPTIDX_CRACKING_CRACK_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "cracking/cracker_array.h"
#include "storage/types.h"

namespace adaptidx {

/// \brief Pivot-selection policy for one reorganization step of a cracking
/// index: given the piece holding a query bound, which pivots are cracked
/// before (or instead of) the bound itself. kExact is the paper's plain
/// cracking; the other three are the stochastic variants of "Stochastic
/// Database Cracking" (Halim et al., VLDB 2012), which keep convergence
/// robust when the query sequence is adversarial (sequential/skewed bounds
/// collapse plain cracking to quadratic total cost).
enum class CrackPolicy {
  /// Crack on the query bound only — plain database cracking.
  kExact,
  /// Data-driven center: before the bound crack, recursively crack the
  /// sub-range holding the bound at a cheap center estimate (median of the
  /// first/middle/last element values) until it is at or below the policy
  /// floor. Deterministic: no randomness consulted.
  kDDC,
  /// Data-driven random: like kDDC but each recursion pivot is the value of
  /// a uniformly drawn element of the current sub-range.
  kDDR,
  /// Materialize-and-one-random-crack: one random data-driven crack per
  /// touched piece and NO bound crack; the query answers by a filtered scan
  /// of the crack-delimited sub-range still holding the bound (the
  /// "materialized answer" of the paper, expressed through the engine's
  /// inexact-bound scan path). Pieces at or below the policy floor fall
  /// back to exact bound cracking so the index still converges to precise
  /// cracks where it matters.
  kMDD1R,
};

/// \brief Human-readable policy name ("exact", "ddc", "ddr", "mdd1r").
std::string ToString(CrackPolicy policy);

/// \brief The crack-decision seam: decides the data-driven pivot sequence of
/// one reorganization step. The index drives the loop — it asks for the next
/// pivot, cracks on it (through the same sequential-or-parallel kernel
/// dispatch as a bound pivot), narrows to the sub-range still holding the
/// query bound, and asks again — so the policy never touches index
/// structures and every pivot obeys the caller's publication protocol.
///
/// Thread-safety: stateless after construction and therefore safe to share
/// across threads. Randomized policies derive a fresh RNG per call from
/// (seed, sub-range extent, bound), so pivot choices are reproducible from
/// `seed` alone, independent of how concurrent queries interleave.
class CrackDecision {
 public:
  /// \brief A decision layer for `policy`; sub-ranges at or below
  /// `min_piece` elements receive no extra pivots (and kMDD1R reverts to
  /// exact bound cracking there). `seed` is the per-index RNG seed.
  CrackDecision(CrackPolicy policy, size_t min_piece, uint64_t seed)
      : policy_(policy), min_piece_(min_piece), seed_(seed) {}

  CrackPolicy policy() const { return policy_; }  ///< \brief Configured policy.
  size_t min_piece() const { return min_piece_; }  ///< \brief Recursion floor.
  uint64_t seed() const { return seed_; }  ///< \brief Per-index RNG seed.

  /// \brief True when the reorganization step over a piece of `piece_size`
  /// elements must finish with an exact crack at the query bound. False only
  /// for kMDD1R above the floor, whose step answers by scan instead; the
  /// caller must still fall back to the bound crack when no pivot crack was
  /// actually published (e.g. all-equal data), or the piece would never
  /// shrink.
  bool CracksBound(size_t piece_size) const {
    return policy_ != CrackPolicy::kMDD1R || piece_size <= min_piece_;
  }

  /// \brief Proposes the next data-driven pivot for the current sub-range
  /// [begin, end) of `array`, known to contain the query bound `bound`.
  /// `step` counts pivots already taken this reorganization step. Returns
  /// false when the policy wants no (further) pivot: kExact always, any
  /// sub-range at or below the floor, and kMDD1R after its single pivot.
  /// The proposed pivot is an element value drawn from the sub-range; the
  /// caller remains responsible for filtering it against its publication
  /// invariants (open piece value interval, pivot != bound).
  bool NextPivot(const CrackerArray& array, Position begin, Position end,
                 Value bound, size_t step, Value* pivot) const;

 private:
  CrackPolicy policy_;
  size_t min_piece_;
  uint64_t seed_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_CRACKING_CRACK_POLICY_H_
