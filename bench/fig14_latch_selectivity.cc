/// \file Reproduces Figure 14: column vs. piece latches for count (Q1) and
/// sum (Q2) queries across selectivities and client counts. Four panels:
///   (a) Q1 column latch   (b) Q1 piece latch
///   (c) Q2 column latch   (d) Q2 piece latch
///
/// Expected shapes: piece latches beat column latches, most visibly for sum
/// queries at low selectivity (long read latches on the whole column
/// serialize everything); with piece latches, cracking and aggregation of
/// different pieces proceed in parallel.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/cracking_index.h"

namespace adaptidx {
namespace bench {
namespace {

/// Returns the aggregate latch-wait time (ms) summed over the panel, the
/// hardware-independent contention signal behind the paper's wall-clock
/// gaps (on a 1-core host, wall-clock differences between latch modes
/// largely vanish; the wait totals still show the contention structure).
double RunPanel(const char* label, const Column& column, QueryType type,
                ConcurrencyMode mode, size_t num_queries,
                size_t max_clients) {
  const double selectivities[] = {0.0001, 0.001, 0.01, 0.10, 0.50, 0.90};
  std::vector<size_t> client_counts;
  for (size_t c = 1; c <= max_clients; c *= 2) client_counts.push_back(c);

  std::printf("\n%s\n", label);
  std::printf("%-8s", "clients");
  for (double sel : selectivities) std::printf(" %11.2f%%", sel * 100);
  std::printf("\n");

  double panel_wait_ms = 0;
  WorkloadGenerator gen(0, static_cast<Value>(column.size()));
  for (size_t clients : client_counts) {
    std::printf("%-8zu", clients);
    for (double sel : selectivities) {
      WorkloadOptions wopts;
      wopts.num_queries = num_queries;
      wopts.selectivity = sel;
      wopts.type = type;
      wopts.seed = 7;
      const auto queries = gen.Generate(wopts);
      IndexConfig config;
      config.method = IndexMethod::kCrack;
      config.cracking.mode = mode;
      // batch_size 1: wait-dynamics comparison under the paper's
      // synchronous clients (see fig15).
      RunResult r = RunWorkload(column, config, queries, clients,
                                /*record_per_query=*/false,
                                /*batch_size=*/1);
      panel_wait_ms += static_cast<double>(r.total_wait_ns) / 1e6;
      std::printf(" %11.3fs", r.total_seconds);
    }
    std::printf("\n");
  }
  return panel_wait_ms;
}

void Run() {
  const size_t rows = EnvSize("AI_BENCH_ROWS", 1000000);
  const size_t num_queries = EnvSize("AI_BENCH_FIG14_QUERIES", 512);
  const size_t max_clients = EnvSize("AI_BENCH_MAX_CLIENTS", 32);
  PrintHeader("Figure 14: column and piece latches, count and sum queries",
              "rows=" + std::to_string(rows) +
                  " queries=" + std::to_string(num_queries) +
                  " selectivity in {0.01,0.1,1,10,50,90}% clients=1.." +
                  std::to_string(max_clients) +
                  " (total time for all queries)");

  Column column = MakeUniqueRandomColumn(rows);
  const double wait_a =
      RunPanel("(a) Count query (Q1), column latch", column,
               QueryType::kCount, ConcurrencyMode::kColumnLatch, num_queries,
               max_clients);
  const double wait_b =
      RunPanel("(b) Count query (Q1), piece latch", column, QueryType::kCount,
               ConcurrencyMode::kPieceLatch, num_queries, max_clients);
  const double wait_c =
      RunPanel("(c) Sum query (Q2), column latch", column, QueryType::kSum,
               ConcurrencyMode::kColumnLatch, num_queries, max_clients);
  const double wait_d =
      RunPanel("(d) Sum query (Q2), piece latch", column, QueryType::kSum,
               ConcurrencyMode::kPieceLatch, num_queries, max_clients);

  std::printf(
      "\nAggregate latch-wait per panel (contention signal; the paper's "
      "wall-clock gaps follow this on multicore hosts):\n");
  std::printf("  (a) Q1 column latch: %10.1f ms\n", wait_a);
  std::printf("  (b) Q1 piece latch:  %10.1f ms\n", wait_b);
  std::printf("  (c) Q2 column latch: %10.1f ms\n", wait_c);
  std::printf("  (d) Q2 piece latch:  %10.1f ms\n", wait_d);
  std::printf(
      "\npaper-shape check: piece latches wait less than column latches for "
      "Q1: %s, for Q2: %s\n",
      wait_b <= wait_a ? "yes" : "NO", wait_d <= wait_c ? "yes" : "NO");
}

}  // namespace
}  // namespace bench
}  // namespace adaptidx

int main() {
  adaptidx::bench::Run();
  return 0;
}
