#ifndef ADAPTIDX_UTIL_INTERVAL_SET_H_
#define ADAPTIDX_UTIL_INTERVAL_SET_H_

#include <algorithm>
#include <map>
#include <vector>

#include "storage/types.h"

namespace adaptidx {

/// \brief Disjoint, coalesced set of half-open value intervals. Tracks which
/// key ranges have been merged into a final partition (the table-of-contents
/// role of Section 4.2's partitioned B-tree, value-domain flavor).
///
/// Not internally synchronized.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// \brief Adds [lo, hi), merging with overlapping/adjacent intervals.
  void Add(Value lo, Value hi) {
    if (lo >= hi) return;
    // Absorb any interval that overlaps or touches [lo, hi).
    auto it = ivals_.upper_bound(lo);
    if (it != ivals_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= lo) it = prev;
    }
    while (it != ivals_.end() && it->first <= hi) {
      lo = std::min(lo, it->first);
      hi = std::max(hi, it->second);
      it = ivals_.erase(it);
    }
    ivals_.emplace(lo, hi);
  }

  /// \brief Splits [lo, hi) into covered sub-ranges and uncovered gaps, both
  /// in ascending order.
  void Decompose(Value lo, Value hi, std::vector<ValueRange>* covered,
                 std::vector<ValueRange>* gaps) const {
    if (covered != nullptr) covered->clear();
    if (gaps != nullptr) gaps->clear();
    if (lo >= hi) return;
    Value cursor = lo;
    auto it = ivals_.upper_bound(lo);
    if (it != ivals_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > lo) it = prev;
    }
    for (; it != ivals_.end() && it->first < hi; ++it) {
      if (it->second <= cursor) continue;
      if (it->first > cursor) {
        if (gaps != nullptr) {
          gaps->push_back(ValueRange{cursor, std::min(it->first, hi)});
        }
        cursor = std::min(it->first, hi);
        if (cursor >= hi) break;
      }
      const Value part_hi = std::min(hi, it->second);
      if (cursor < part_hi) {
        if (covered != nullptr) covered->push_back(ValueRange{cursor, part_hi});
        cursor = part_hi;
      }
      if (cursor >= hi) break;
    }
    if (cursor < hi && gaps != nullptr) {
      gaps->push_back(ValueRange{cursor, hi});
    }
  }

  /// \brief True when [lo, hi) is fully covered.
  bool Covers(Value lo, Value hi) const {
    std::vector<ValueRange> gaps;
    Decompose(lo, hi, nullptr, &gaps);
    return gaps.empty();
  }

  size_t size() const { return ivals_.size(); }
  bool empty() const { return ivals_.empty(); }
  void Clear() { ivals_.clear(); }

 private:
  std::map<Value, Value> ivals_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_UTIL_INTERVAL_SET_H_
