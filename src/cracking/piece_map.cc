#include "cracking/piece_map.h"

namespace adaptidx {

PieceMap::PieceMap(size_t array_size, Value domain_lo, Value domain_hi,
                   SchedulingPolicy policy)
    : array_size_(array_size), policy_(policy) {
  by_begin_.emplace(0, std::make_shared<Piece>(0, array_size, domain_lo,
                                               domain_hi, policy));
  PublishSnapshot();
}

void PieceMap::PublishSnapshot() {
  auto snap = std::make_shared<PieceMapSnapshot>();
  snap->begins.reserve(by_begin_.size());
  snap->pieces.reserve(by_begin_.size());
  for (const auto& [begin, piece] : by_begin_) {
    snap->begins.push_back(begin);
    snap->pieces.push_back(piece);
  }
  std::atomic_store(&snapshot_,
                    std::shared_ptr<const PieceMapSnapshot>(std::move(snap)));
}

std::shared_ptr<Piece> PieceMap::FindByPosition(Position pos) const {
  auto it = by_begin_.upper_bound(pos);
  if (it == by_begin_.begin()) return nullptr;
  --it;
  return it->second;
}

std::shared_ptr<Piece> PieceMap::FindByBegin(Position begin) const {
  auto it = by_begin_.find(begin);
  return it == by_begin_.end() ? nullptr : it->second;
}

std::shared_ptr<Piece> PieceMap::NextPiece(const Piece& p) const {
  auto it = by_begin_.upper_bound(p.begin);
  return it == by_begin_.end() ? nullptr : it->second;
}

std::shared_ptr<Piece> PieceMap::Split(const std::shared_ptr<Piece>& p,
                                       Position split_pos, Value pivot) {
  if (split_pos == p->begin) {
    // Nothing below the pivot inside this piece; the crack coincides with
    // the piece's begin and the whole piece is the ">= pivot" side. The
    // predecessor's values are all < pivot, so its upper bound tightens too.
    if (pivot > p->lo_value) p->lo_value = pivot;
    auto it = by_begin_.find(p->begin);
    if (it != by_begin_.begin()) {
      Piece* prev = std::prev(it)->second.get();
      if (pivot < prev->hi_value) prev->hi_value = pivot;
    }
    return p;
  }
  if (split_pos == p->end) {
    // Everything in this piece is below the pivot; the successor's values
    // are all >= pivot, so its lower bound tightens too.
    if (pivot < p->hi_value) p->hi_value = pivot;
    if (split_pos >= array_size_) return nullptr;
    auto it = by_begin_.find(split_pos);
    if (it == by_begin_.end()) return nullptr;
    if (pivot > it->second->lo_value) it->second->lo_value = pivot;
    return it->second;
  }
  auto right = std::make_shared<Piece>(split_pos, p->end, pivot, p->hi_value,
                                       policy_);
  right->sorted = p->sorted;
  p->end = split_pos;
  p->hi_value = pivot;
  by_begin_.emplace(split_pos, right);
  // Only the interior split changes the set of piece begins; the two
  // boundary cases above merely tighten value bounds, which optimistic
  // readers never take from the snapshot.
  PublishSnapshot();
  return right;
}

void PieceMap::ForEach(const std::function<void(const Piece&)>& fn) const {
  for (const auto& [begin, piece] : by_begin_) fn(*piece);
}

bool PieceMap::Validate() const {
  Position expected_begin = 0;
  Value prev_hi = 0;
  bool first = true;
  for (const auto& [begin, piece] : by_begin_) {
    if (begin != piece->begin) return false;
    if (piece->begin != expected_begin) return false;
    if (piece->end <= piece->begin) return false;
    if (piece->lo_value >= piece->hi_value) return false;
    if (!first && piece->lo_value < prev_hi) return false;
    expected_begin = piece->end;
    prev_hi = piece->hi_value;
    first = false;
  }
  return expected_begin == array_size_;
}

}  // namespace adaptidx
