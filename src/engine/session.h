#ifndef ADAPTIDX_ENGINE_SESSION_H_
#define ADAPTIDX_ENGINE_SESSION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/index_factory.h"
#include "engine/operators.h"
#include "engine/query.h"
#include "util/thread_pool.h"

namespace adaptidx {

class Database;
class Session;
class UpdatableIndex;

/// \brief Options pinned for the lifetime of a session.
struct SessionOptions {
  /// Access method used to resolve every query the session submits; one
  /// session = one index configuration, so method comparisons open one
  /// session per method.
  IndexConfig config;
  /// Client identity recorded in every QueryContext; 0 auto-assigns the
  /// session id.
  uint32_t client_id = 0;
  /// User-transaction identity for update operations; 0 auto-assigns a
  /// globally unique id that cannot collide with small hand-picked test ids.
  uint64_t txn_id = 0;
  /// MVCC reads: stamp `QueryContext::snapshot_reads` on every query this
  /// session submits, so an `UpdatableIndex` answers it against a pinned
  /// epoch snapshot of its differential side stores instead of holding the
  /// side-table latch across the read. Capture is per query execution —
  /// each ticket of an async batch pins its own epoch, so every answer is
  /// individually consistent (repeatable against its snapshot) while the
  /// batch as a whole observes the update stream progressing. Pair with
  /// `IndexConfig::snapshot_reads` on the index for O(1) captures; indexes
  /// without a differential layer ignore the flag.
  bool snapshot_reads = false;
};

/// \brief Future-like handle to one submitted query.
///
/// Tickets are cheap to copy (shared state) and remain valid after the
/// session that issued them is closed: closing a session drains in-flight
/// work, so a surviving ticket is always complete and readable. The
/// accessors `status()/result()/stats()` implicitly `Wait()`. A
/// default-constructed (never-submitted) ticket behaves as terminally
/// failed: `done()` is true, `status()` is InvalidArgument, the result and
/// stats are empty.
///
/// Thread-safety: fully synchronized — any number of threads may wait on
/// and read the same ticket (and its copies) concurrently.
class QueryTicket {
 public:
  QueryTicket() = default;

  /// \brief False for default-constructed (never-submitted) tickets.
  bool valid() const { return state_ != nullptr; }

  /// \brief Blocks until the query has executed.
  void Wait() const;

  /// \brief Timed wait: blocks until the query has executed or `timeout`
  /// elapses, whichever comes first, and reports whether it completed.
  /// The deadline-enforcement primitive of the network server: a false
  /// return lets the caller answer TimedOut *without detaching* — the
  /// ticket stays valid, the query keeps executing, and a later
  /// `Wait()`/accessor observes the eventual (late) completion. Never-
  /// submitted tickets are terminally failed and return true immediately.
  bool WaitFor(std::chrono::milliseconds timeout) const;

  /// \brief Non-blocking completion probe.
  bool done() const;

  /// \brief Execution status (waits for completion).
  const Status& status() const;

  /// \brief The answer (waits for completion). `count`/`sum`/`row_ids` are
  /// populated per the query's kind.
  const QueryResult& result() const;

  /// \brief Per-query instrumentation (waits for completion).
  const QueryStats& stats() const;

 private:
  friend class Session;

  struct State {
    mutable std::mutex mu;
    mutable std::condition_variable cv;
    bool done = false;
    Status status;
    QueryResult result;
    QueryStats stats;
  };

  explicit QueryTicket(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// \brief A client's connection to the engine: owns the client/transaction
/// identity, pins an IndexConfig, and submits queries — asynchronously onto
/// the shared thread pool (`Submit`/`SubmitBatch`) or synchronously inline
/// (`Execute` and the typed convenience wrappers).
///
/// Batch submission is the admission path that batch-aware refinement
/// (CrackingOptions::group_crack, Section 7 "Dynamic Algorithms") feeds on:
/// all queries of a batch are enqueued before any result is awaited, so
/// concurrent executions pile their crack bounds into the piece-latch wait
/// queues where a refining query can serve them in one step.
///
/// Thread safety: a session may be used from multiple threads; identity is
/// immutable after open. Closing (destroying) a session blocks until every
/// submitted query has finished; tickets stay readable afterwards. Sessions
/// must not outlive the Database (or, for direct sessions, the index and
/// pool) they were opened on.
class Session {
 public:
  ~Session();  // drains in-flight queries

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// \brief Opens a session directly over one index, bypassing catalog
  /// resolution — the driver's and benchmarks' path. Table/column names in
  /// descriptors are ignored; kSumOther reaches the bound index directly
  /// (answered natively by indexes holding a second column, NotSupported
  /// otherwise). `pool` may be null for synchronous-only use — async
  /// submissions then fail their tickets with InvalidArgument.
  static std::unique_ptr<Session> OnIndex(AdaptiveIndex* index,
                                          ThreadPool* pool,
                                          SessionOptions opts = {});

  /// \brief Draws the next process-global session id (shared by database
  /// and direct sessions so ids never alias).
  static uint32_t NextSessionId();

  // ---- asynchronous submission ----------------------------------------

  /// \brief Enqueues one query onto the shared pool; never blocks.
  QueryTicket Submit(Query query);

  /// \brief Enqueues every query of the batch before returning, so the
  /// batch executes concurrently (pool permitting) and queued crack bounds
  /// become visible to group cracking. Tickets are in submission order.
  std::vector<QueryTicket> SubmitBatch(std::vector<Query> batch);

  // ---- synchronous execution ------------------------------------------

  /// \brief Executes `query` inline on the calling thread (no pool
  /// round-trip) — the path behind the typed one-liner wrappers below.
  /// Thread-safe, like all submission entry points.
  Status Execute(const Query& query, QueryResult* result,
                 QueryStats* stats = nullptr);

  /// \brief `select count(*) from table where lo <= column < hi`.
  Status Count(const std::string& table, const std::string& column, Value lo,
               Value hi, uint64_t* out, QueryStats* stats = nullptr);

  /// \brief `select sum(column) from table where lo <= column < hi`.
  Status Sum(const std::string& table, const std::string& column, Value lo,
             Value hi, int64_t* out, QueryStats* stats = nullptr);

  /// \brief `select sum(agg_column) from table where lo <= column < hi`.
  Status SumOther(const std::string& table, const std::string& column,
                  const std::string& agg_column, Value lo, Value hi,
                  int64_t* out, QueryStats* stats = nullptr);

  /// \brief Materializes qualifying rowIDs.
  Status RowIds(const std::string& table, const std::string& column, Value lo,
                Value hi, std::vector<RowId>* out,
                QueryStats* stats = nullptr);

  /// \brief `select min(column), max(column) from table where
  /// lo <= column < hi`. `*found` reports whether any row qualified;
  /// `*min`/`*max` are written only when it did.
  Status MinMax(const std::string& table, const std::string& column, Value lo,
                Value hi, Value* min, Value* max, bool* found,
                QueryStats* stats = nullptr);

  // ---- transactional snapshot scopes ----------------------------------

  /// \brief Opens a transactional read scope: until `EndSnapshot()`, every
  /// query this session submits (sync, async, and the two-column kSumOther
  /// plan) reads at ONE pinned epoch per updatable index — the epoch the
  /// scope's first query on that index captured — giving a multi-query
  /// read transaction repeatable reads instead of per-query capture.
  /// Scopes do not nest: InvalidArgument while one is already open.
  /// While the scope holds a pin, a `Checkpoint()` of the pinned index
  /// blocks until `EndSnapshot()` — never checkpoint the index from the
  /// scope-holding thread. Indexes without a differential layer are
  /// unaffected. Thread-safe.
  Status BeginSnapshot();

  /// \brief Closes the open scope, releasing every pinned epoch
  /// (unblocking draining checkpoints); queries submitted afterwards
  /// observe the live state again. InvalidArgument when no scope is
  /// open. In-flight async queries that raced the close fall back to
  /// per-query behavior. Thread-safe.
  Status EndSnapshot();

  /// \brief Whether a snapshot scope is currently open. Thread-safe.
  bool InSnapshotScope() const;

  // ---- updates as session operations ----------------------------------

  /// \brief Inserts `v` through `index` as a user transaction carrying this
  /// session's txn identity; the index wires the transaction into its
  /// LockManager (exclusive key lock, auto-commit).
  Status Insert(UpdatableIndex* index, Value v, RowId* row_id = nullptr);

  /// \brief Deletes (`v`, `row_id`) through `index` under this session's
  /// txn identity.
  Status Delete(UpdatableIndex* index, Value v, RowId row_id);

  // ---- identity & introspection ---------------------------------------

  /// \brief A QueryContext pre-stamped with this session's identity.
  QueryContext MakeContext() const;

  uint32_t session_id() const { return session_id_; }   ///< \brief Unique session id.
  uint32_t client_id() const { return client_id_; }     ///< \brief Client identity stamped on contexts.
  uint64_t txn_id() const { return txn_id_; }           ///< \brief User-transaction identity of updates.
  const IndexConfig& config() const { return opts_.config; }  ///< \brief The pinned access-method config.

  /// \brief The database this session was opened on; null for direct-index
  /// sessions.
  Database* database() const { return db_; }

  /// \brief Latch statistics of the index this session resolves
  /// (table, column) to under its pinned config — including the optimistic
  /// attempt/retry/fallback counters of ConcurrencyMode::kOptimistic /
  /// kAdaptive, so per-mode concurrency cost is observable through the
  /// session layer. Direct-index sessions ignore the names and report the
  /// bound index. Resolving may create the index (like a query would);
  /// returns null when the table/column does not exist. The pointer stays
  /// valid for the session's lifetime.
  const LatchStats* IndexLatchStats(const std::string& table,
                                    const std::string& column);

  /// \brief Queries submitted over the session's lifetime (async + sync).
  size_t queries_submitted() const;

  /// \brief Async queries currently executing or queued.
  size_t in_flight() const;

 private:
  friend class Database;

  Session(Database* db, AdaptiveIndex* direct_index, ThreadPool* pool,
          SessionOptions opts, uint32_t session_id);

  /// Shared execution core for the sync and async paths. `ctx` carries the
  /// session identity; timing fields are managed by the caller.
  Status ExecuteWithContext(const Query& query, QueryContext* ctx,
                            QueryResult* result);

  /// Resolves (table, column) to the session's index under the pinned
  /// config: the bound index for direct sessions, a memoized catalog lookup
  /// otherwise. Null when the table/column does not exist; the returned
  /// pointer stays valid for the session's lifetime (the cache pins it).
  AdaptiveIndex* ResolveIndex(const std::string& table,
                              const std::string& column);

  Database* db_;               ///< null for direct-index sessions
  AdaptiveIndex* direct_;      ///< non-null for direct-index sessions
  ThreadPool* pool_;           ///< direct sessions' pool; db sessions use
                               ///< db_->pool()
  SessionOptions opts_;
  uint32_t session_id_;
  uint32_t client_id_;
  uint64_t txn_id_;

  // Per-session resolution cache: the session pins one config, so each
  // (table, column) resolves through the catalog once; the shared_ptr keeps
  // the index alive (and correct — base columns are immutable) even if the
  // entry is dropped concurrently. A DropIndex takes effect for sessions
  // opened afterwards.
  std::mutex resolve_mu_;
  std::unordered_map<std::string, std::shared_ptr<AdaptiveIndex>> resolved_;

  // The open transactional read scope, shared into every QueryContext the
  // session stamps while it is open (shared_ptr: an async query that
  // outlives EndSnapshot finds a closed scope, never a dangling one). The
  // destructor closes it after the drain so scope pins can't outlive the
  // session.
  mutable std::mutex scope_mu_;
  std::shared_ptr<SnapshotScope> scope_;

  // submitted_ is relaxed bookkeeping; in_flight_ transitions happen under
  // mu_ so the close-time drain cannot race a completing worker (see
  // Submit).
  std::mutex mu_;
  std::condition_variable drained_cv_;
  std::atomic<size_t> in_flight_{0};
  std::atomic<size_t> submitted_{0};
};

}  // namespace adaptidx

#endif  // ADAPTIDX_ENGINE_SESSION_H_
