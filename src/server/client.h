#ifndef ADAPTIDX_SERVER_CLIENT_H_
#define ADAPTIDX_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "server/protocol.h"
#include "storage/types.h"
#include "util/status.h"

namespace adaptidx {
namespace server {

/// \brief Blocking client for the wire protocol of `protocol.h`, used by
/// the CLI, the server tests, and the fig16 scaling bench.
///
/// One synchronous request/response exchange per call: each RPC stamps a
/// fresh request id, writes one frame, and reads frames until the matching
/// response arrives. A SERVER_BUSY answer surfaces as `Status::Busy`
/// (inspect `busy_seen()` / `last_busy()` for the shed telemetry), an
/// ERROR frame as the decoded engine status with the connection considered
/// dead. The raw escape hatches (`SendRaw`, `ReadFrame`) let tests pipeline
/// hand-built — including deliberately malformed — byte sequences.
///
/// Thread-safety: none; confine each Client to one thread (open one client
/// per worker, as the tests and the bench do).
class Client {
 public:
  Client() = default;

  /// \brief Closes the socket if still open.
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// \brief Movable (socket ownership transfers; the source disconnects).
  Client(Client&& other) noexcept { *this = std::move(other); }
  /// \brief Move assignment; any open socket of the target is closed.
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
      recv_buf_ = std::move(other.recv_buf_);
      next_request_id_ = other.next_request_id_;
      session_id_ = other.session_id_;
      busy_seen_ = other.busy_seen_;
      last_busy_ = other.last_busy_;
    }
    return *this;
  }

  /// \brief Connects the blocking socket; no frame is exchanged yet.
  Status Connect(const std::string& host, uint16_t port);

  /// \brief Closes the socket; idempotent.
  void Close();

  /// \brief Socket is open (says nothing about server-side state).
  bool connected() const { return fd_ >= 0; }

  /// \brief OPEN_SESSION handshake; records the server-assigned session id
  /// in `session_id()`.
  Status OpenSession(bool snapshot_reads = false, uint32_t client_id = 0);

  /// \brief Server-assigned session id (0 before `OpenSession`).
  uint32_t session_id() const { return session_id_; }

  /// \brief COUNT over [lo, hi).
  Status Count(Value lo, Value hi, uint64_t* out);
  /// \brief SUM over [lo, hi).
  Status Sum(Value lo, Value hi, int64_t* out);
  /// \brief MIN/MAX over [lo, hi); `*found` false when no row matched.
  Status MinMax(Value lo, Value hi, Value* min, Value* max, bool* found);
  /// \brief Matching row ids over [lo, hi).
  Status RowIds(Value lo, Value hi, std::vector<RowId>* out);
  /// \brief INSERT `v`; returns the assigned row id.
  Status Insert(Value v, RowId* row_id);
  /// \brief DELETE the tuple addressed by (v, row_id).
  Status Delete(Value v, RowId row_id);
  /// \brief BATCH: submits all queries as one admission unit; `out` gets
  /// one ResultMsg per query in submission order.
  Status Batch(const std::vector<QueryReq>& queries,
               std::vector<ResultMsg>* out);
  /// \brief STATS snapshot of the server's counter/gauge list.
  Status Stats(StatsMsg* out);
  /// \brief CHECKPOINT: asks a durable server to take a checkpoint now;
  /// `epoch` (optional) receives the captured commit epoch. NotSupported
  /// when the server runs without durability.
  Status Checkpoint(uint64_t* epoch = nullptr);
  /// \brief Graceful CLOSE handshake (the server acks, then closes).
  Status CloseSession();

  /// \brief SERVER_BUSY responses seen so far.
  uint64_t busy_seen() const { return busy_seen_; }
  /// \brief Telemetry of the most recent SERVER_BUSY response.
  const BusyMsg& last_busy() const { return last_busy_; }

  // ---- raw access for protocol tests and the overload bench --------------

  /// \brief Writes raw bytes to the socket verbatim (no framing added).
  Status SendRaw(const void* data, size_t size);
  /// \brief Blocking read of the next complete frame; Corruption on a
  /// malformed stream, NotFound on clean EOF (server closed).
  Status ReadFrame(Frame* out);
  /// \brief Claims the next request id (what the next RPC would use).
  uint64_t NextRequestId() { return next_request_id_++; }

 private:
  /// One exchange: send `type` with a fresh id, read until the response
  /// with that id, require `expect` (Busy/Error handled uniformly).
  Status Rpc(FrameType type, const std::string& payload, FrameType expect,
             Frame* reply);
  /// Query RPC + ResultMsg decode + status lift.
  Status RunQuery(const QueryReq& req, ResultMsg* out);

  int fd_ = -1;
  std::string recv_buf_;
  uint64_t next_request_id_ = 1;
  uint32_t session_id_ = 0;
  uint64_t busy_seen_ = 0;
  BusyMsg last_busy_;
};

}  // namespace server
}  // namespace adaptidx

#endif  // ADAPTIDX_SERVER_CLIENT_H_
