#include "engine/driver.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "util/stopwatch.h"

namespace adaptidx {

namespace {

/// Start barrier: all client threads begin issuing queries at once.
class StartBarrier {
 public:
  explicit StartBarrier(size_t parties) : remaining_(parties) {}

  void ArriveAndWait() {
    std::unique_lock<std::mutex> lk(mu_);
    if (--remaining_ == 0) {
      cv_.notify_all();
      return;
    }
    cv_.wait(lk, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t remaining_;
};

}  // namespace

RunResult Driver::Run(AdaptiveIndex* index,
                      const std::vector<RangeQuery>& queries,
                      const DriverOptions& opts) {
  RunResult result;
  result.num_queries = queries.size();
  result.num_clients = std::max<size_t>(1, opts.num_clients);
  if (queries.empty()) return result;

  const size_t num_clients = std::min(result.num_clients, queries.size());
  result.num_clients = num_clients;

  // Contiguous partitioning of the sequence across clients, paper-style.
  std::vector<std::pair<size_t, size_t>> slices;
  const size_t per = queries.size() / num_clients;
  const size_t extra = queries.size() % num_clients;
  size_t cursor = 0;
  for (size_t c = 0; c < num_clients; ++c) {
    const size_t len = per + (c < extra ? 1 : 0);
    slices.emplace_back(cursor, cursor + len);
    cursor += len;
  }

  std::vector<std::vector<PerQueryRecord>> client_records(num_clients);
  std::atomic<bool> failed{false};
  StartBarrier barrier(num_clients + 1);

  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      auto& records = client_records[c];
      records.reserve(slices[c].second - slices[c].first);
      barrier.ArriveAndWait();
      for (size_t i = slices[c].first; i < slices[c].second; ++i) {
        PerQueryRecord rec;
        rec.query = queries[i];
        rec.client_id = static_cast<uint32_t>(c);
        rec.client_seq = i - slices[c].first;
        QueryContext ctx;
        ctx.client_id = static_cast<uint32_t>(c);
        ctx.stats.start_ns = NowNanos();
        Status s = ExecuteQuery(index, queries[i], &ctx, &rec.result);
        ctx.stats.finish_ns = NowNanos();
        ctx.stats.response_ns = ctx.stats.finish_ns - ctx.stats.start_ns;
        if (!s.ok()) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        rec.stats = ctx.stats;
        records.push_back(rec);
      }
    });
  }

  StopWatch wall;
  barrier.ArriveAndWait();
  wall.Reset();
  for (auto& t : clients) t.join();
  result.total_seconds = wall.ElapsedSeconds();
  result.throughput_qps =
      result.total_seconds > 0
          ? static_cast<double>(queries.size()) / result.total_seconds
          : 0;
  if (failed.load()) {
    result.status = Status::Aborted("a client query failed");
    return result;
  }

  for (auto& records : client_records) {
    for (auto& rec : records) {
      result.response_hist.Add(rec.stats.response_ns);
      result.total_conflicts += rec.stats.conflicts;
      result.total_wait_ns += rec.stats.wait_ns;
      result.total_crack_ns += rec.stats.crack_ns;
      result.total_init_ns += rec.stats.init_ns;
      result.total_cracks += rec.stats.cracks;
      result.refinements_skipped += rec.stats.refinement_skipped ? 1 : 0;
      if (opts.record_per_query) result.records.push_back(std::move(rec));
    }
  }
  if (opts.record_per_query) {
    std::sort(result.records.begin(), result.records.end(),
              [](const PerQueryRecord& a, const PerQueryRecord& b) {
                return a.stats.finish_ns < b.stats.finish_ns;
              });
  }
  return result;
}

}  // namespace adaptidx
