/// \file Interactive REPL over the wire protocol — the smallest end-to-end
/// driver of the server stack, and a handy manual probe for a running
/// instance.
///
/// Two modes:
///
///   adaptidx_cli --serve [--rows N] [--port P] [--data-dir DIR]
///       Starts an in-process server over a fresh unique-random column
///       (ephemeral port by default), connects to it, and drops into the
///       REPL — a self-contained demo needing no second terminal. With
///       --data-dir the served index is durable: the directory is
///       recovered on start (the random column only seeds a virgin dir),
///       every insert/delete is WAL-logged, and `checkpoint` persists the
///       cracked state — quit, restart with the same dir, and the data
///       plus its adaptation survive.
///
///   adaptidx_cli --connect HOST:PORT
///       Connects the REPL to an already-running server.
///
/// Commands:
///   count LO HI | sum LO HI | minmax LO HI | rowids LO HI
///   insert VALUE | del VALUE ROWID
///   batch N LO HI       (N counts over [LO,HI), one admission unit)
///   stats               (dump the server's counter/gauge list)
///   checkpoint          (durable servers: write a checkpoint now)
///   help | quit

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "server/client.h"
#include "server/server.h"
#include "storage/column.h"

namespace adaptidx {
namespace {

using server::Client;
using server::QueryReq;
using server::ResultMsg;
using server::Server;
using server::ServerOptions;
using server::StatsMsg;

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  count LO HI     rows with LO <= value < HI\n"
      "  sum LO HI       sum of qualifying values\n"
      "  minmax LO HI    min/max qualifying value\n"
      "  rowids LO HI    qualifying row ids (count + first few)\n"
      "  insert VALUE    insert a value; prints the assigned row id\n"
      "  del VALUE ROWID delete the tuple (VALUE, ROWID)\n"
      "  batch N LO HI   N counts over [LO,HI) as one admission unit\n"
      "  stats           server counters/gauges over the wire\n"
      "  checkpoint      write a durable checkpoint (durable servers only)\n"
      "  help            this text\n"
      "  quit            close the session and exit\n");
}

int Repl(Client* client) {
  std::printf("session %u open; type 'help' for commands\n",
              client->session_id());
  std::string line;
  while (true) {
    std::printf("adaptidx> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
      continue;
    }
    if (cmd == "checkpoint") {
      uint64_t epoch = 0;
      Status s = client->Checkpoint(&epoch);
      if (s.ok()) {
        std::printf("checkpoint at epoch %llu\n",
                    static_cast<unsigned long long>(epoch));
      } else {
        std::printf("error: %s\n", s.ToString().c_str());
      }
      continue;
    }
    if (cmd == "stats") {
      StatsMsg stats;
      Status s = client->Stats(&stats);
      if (!s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
        continue;
      }
      for (const auto& [key, value] : stats.entries) {
        std::printf("  %-32s %llu\n", key.c_str(),
                    static_cast<unsigned long long>(value));
      }
      continue;
    }
    Value lo = 0, hi = 0;
    if (cmd == "count" || cmd == "sum" || cmd == "minmax" ||
        cmd == "rowids") {
      if (!(in >> lo >> hi)) {
        std::printf("usage: %s LO HI\n", cmd.c_str());
        continue;
      }
      Status s;
      if (cmd == "count") {
        uint64_t count = 0;
        s = client->Count(lo, hi, &count);
        if (s.ok()) {
          std::printf("%llu\n", static_cast<unsigned long long>(count));
        }
      } else if (cmd == "sum") {
        int64_t sum = 0;
        s = client->Sum(lo, hi, &sum);
        if (s.ok()) std::printf("%lld\n", static_cast<long long>(sum));
      } else if (cmd == "minmax") {
        Value mn = 0, mx = 0;
        bool found = false;
        s = client->MinMax(lo, hi, &mn, &mx, &found);
        if (s.ok()) {
          if (found) {
            std::printf("min=%lld max=%lld\n", static_cast<long long>(mn),
                        static_cast<long long>(mx));
          } else {
            std::printf("(empty range)\n");
          }
        }
      } else {
        std::vector<RowId> ids;
        s = client->RowIds(lo, hi, &ids);
        if (s.ok()) {
          std::printf("%zu row id(s)", ids.size());
          for (size_t i = 0; i < ids.size() && i < 8; ++i) {
            std::printf("%s%u", i == 0 ? ": " : ", ", ids[i]);
          }
          std::printf(ids.size() > 8 ? ", ...\n" : "\n");
        }
      }
      if (!s.ok()) std::printf("error: %s\n", s.ToString().c_str());
      continue;
    }
    if (cmd == "insert") {
      Value v = 0;
      if (!(in >> v)) {
        std::printf("usage: insert VALUE\n");
        continue;
      }
      RowId id = 0;
      Status s = client->Insert(v, &id);
      if (s.ok()) {
        std::printf("row id %u\n", id);
      } else {
        std::printf("error: %s\n", s.ToString().c_str());
      }
      continue;
    }
    if (cmd == "del") {
      Value v = 0;
      unsigned long id = 0;
      if (!(in >> v >> id)) {
        std::printf("usage: del VALUE ROWID\n");
        continue;
      }
      Status s = client->Delete(v, static_cast<RowId>(id));
      std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
      continue;
    }
    if (cmd == "batch") {
      size_t n = 0;
      if (!(in >> n >> lo >> hi) || n == 0) {
        std::printf("usage: batch N LO HI\n");
        continue;
      }
      std::vector<QueryReq> queries(n, QueryReq{QueryKind::kCount, lo, hi});
      std::vector<ResultMsg> results;
      Status s = client->Batch(queries, &results);
      if (!s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
        continue;
      }
      std::printf("%zu result(s); first count=%llu\n", results.size(),
                  static_cast<unsigned long long>(
                      results.empty() ? 0 : results[0].count));
      continue;
    }
    std::printf("unknown command '%s'; type 'help'\n", cmd.c_str());
  }
  if (client->connected()) client->CloseSession();
  return 0;
}

int Main(int argc, char** argv) {
  bool serve = false;
  size_t rows = 1000000;
  uint16_t port = 0;
  std::string connect_to;
  std::string data_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--serve") {
      serve = true;
    } else if (arg == "--rows" && i + 1 < argc) {
      rows = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--connect" && i + 1 < argc) {
      connect_to = argv[++i];
    } else if (arg == "--data-dir" && i + 1 < argc) {
      data_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s --serve [--rows N] [--port P] [--data-dir DIR]"
                   " | --connect HOST:PORT\n",
                   argv[0]);
      return 1;
    }
  }

  std::unique_ptr<Server> server;
  std::string host = "127.0.0.1";
  if (serve) {
    ServerOptions opts;
    opts.port = port;
    opts.durability.data_dir = data_dir;
    server = std::make_unique<Server>(
        Column::UniqueRandom("A", rows, /*seed=*/2012), opts);
    Status s = server->Start();
    if (!s.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
      return 1;
    }
    port = server->port();
    if (data_dir.empty()) {
      std::printf("serving %zu rows on 127.0.0.1:%u (volatile)\n", rows,
                  port);
    } else {
      const auto& rs = server->durable()->recovery_stats();
      std::printf(
          "serving on 127.0.0.1:%u from %s (checkpoint epoch %llu, "
          "%llu records replayed)\n",
          port, data_dir.c_str(),
          static_cast<unsigned long long>(rs.checkpoint_epoch),
          static_cast<unsigned long long>(rs.records_replayed));
    }
  } else if (!connect_to.empty()) {
    const size_t colon = connect_to.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--connect wants HOST:PORT\n");
      return 1;
    }
    host = connect_to.substr(0, colon);
    port = static_cast<uint16_t>(
        std::strtoul(connect_to.c_str() + colon + 1, nullptr, 10));
  } else {
    std::fprintf(stderr,
                 "usage: %s --serve [--rows N] [--port P] | "
                 "--connect HOST:PORT\n",
                 argv[0]);
    return 1;
  }

  Client client;
  Status s = client.Connect(host, port);
  if (s.ok()) s = client.OpenSession();
  if (!s.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const int rc = Repl(&client);
  if (server != nullptr) server->Stop();
  return rc;
}

}  // namespace
}  // namespace adaptidx

int main(int argc, char** argv) { return adaptidx::Main(argc, argv); }
