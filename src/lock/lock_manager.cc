#include "lock/lock_manager.h"

#include <algorithm>

namespace adaptidx {

const char* ToString(LockMode mode) {
  switch (mode) {
    case LockMode::kIS:
      return "IS";
    case LockMode::kIX:
      return "IX";
    case LockMode::kS:
      return "S";
    case LockMode::kSIX:
      return "SIX";
    case LockMode::kX:
      return "X";
  }
  return "?";
}

bool LockModesCompatible(LockMode held, LockMode requested) {
  // Rows: held; columns: requested.            IS     IX     S      SIX    X
  static constexpr bool kMatrix[5][5] = {
      /* IS  */ {true, true, true, true, false},
      /* IX  */ {true, true, false, false, false},
      /* S   */ {true, false, true, false, false},
      /* SIX */ {true, false, false, false, false},
      /* X   */ {false, false, false, false, false},
  };
  return kMatrix[static_cast<int>(held)][static_cast<int>(requested)];
}

LockMode IntentionFor(LockMode mode) {
  switch (mode) {
    case LockMode::kIS:
    case LockMode::kS:
      return LockMode::kIS;
    case LockMode::kIX:
    case LockMode::kSIX:
    case LockMode::kX:
      return LockMode::kIX;
  }
  return LockMode::kIS;
}

namespace {

/// Strength order used for upgrade decisions: IS < IX < S < SIX < X is not a
/// total order in general (IX vs S are incomparable), but the supremum table
/// below gives the conventional combined mode.
LockMode Supremum(LockMode a, LockMode b) {
  if (a == b) return a;
  auto is = [](LockMode m, LockMode x) { return m == x; };
  if (is(a, LockMode::kX) || is(b, LockMode::kX)) return LockMode::kX;
  if ((is(a, LockMode::kS) && is(b, LockMode::kIX)) ||
      (is(a, LockMode::kIX) && is(b, LockMode::kS))) {
    return LockMode::kSIX;
  }
  if (is(a, LockMode::kSIX) || is(b, LockMode::kSIX)) return LockMode::kSIX;
  if (is(a, LockMode::kS) || is(b, LockMode::kS)) return LockMode::kS;
  if (is(a, LockMode::kIX) || is(b, LockMode::kIX)) return LockMode::kIX;
  return LockMode::kIS;
}

bool IsPrefixPath(const std::string& ancestor, const std::string& path) {
  return path.size() > ancestor.size() &&
         path.compare(0, ancestor.size(), ancestor) == 0 &&
         path[ancestor.size()] == '/';
}

}  // namespace

std::vector<std::string> LockManager::Ancestors(const std::string& resource) {
  std::vector<std::string> out;
  size_t pos = 0;
  while ((pos = resource.find('/', pos)) != std::string::npos) {
    out.push_back(resource.substr(0, pos));
    ++pos;
  }
  return out;
}

bool LockManager::GrantableLocked(const ResourceState& rs, uint64_t txn_id,
                                  LockMode mode) const {
  for (const Holder& h : rs.holders) {
    if (h.txn_id == txn_id) continue;  // self-compatibility via upgrade path
    if (!LockModesCompatible(h.mode, mode)) return false;
  }
  return true;
}

Status LockManager::AcquireOneLocked(std::unique_lock<std::mutex>* lk,
                                     uint64_t txn_id,
                                     const std::string& resource,
                                     LockMode mode, bool blocking) {
  ResourceState& rs = resources_[resource];

  // Re-acquisition / upgrade handling.
  for (Holder& h : rs.holders) {
    if (h.txn_id != txn_id) continue;
    const LockMode target = Supremum(h.mode, mode);
    if (target == h.mode) return Status::OK();  // equal or weaker: no-op
    if (GrantableLocked(rs, txn_id, target)) {
      h.mode = target;
      return Status::OK();
    }
    if (!blocking) return Status::Busy("upgrade conflict on " + resource);
    // Blocking upgrades park like fresh waiters below, requesting the
    // combined mode; the holder entry stays so nobody else sneaks to X.
    mode = target;
    break;
  }

  const bool already_holds =
      std::any_of(rs.holders.begin(), rs.holders.end(),
                  [txn_id](const Holder& h) { return h.txn_id == txn_id; });

  // Fairness: block behind earlier waiters unless we already hold the
  // resource (upgrades may overtake to avoid trivial self-deadlock).
  if ((rs.waiters.empty() || already_holds) &&
      GrantableLocked(rs, txn_id, mode)) {
    if (already_holds) {
      for (Holder& h : rs.holders) {
        if (h.txn_id == txn_id) h.mode = Supremum(h.mode, mode);
      }
    } else {
      rs.holders.push_back(Holder{txn_id, mode});
      txn_locks_[txn_id].push_back(resource);
    }
    return Status::OK();
  }

  if (!blocking) return Status::Busy("lock conflict on " + resource);

  // Deadlock detection before waiting. We will wait behind the current
  // holders and every waiter already queued (FIFO), so the wait edges point
  // at both; abort if any of them (transitively) waits for us.
  std::unordered_set<uint64_t> blockers;
  for (const Holder& h : rs.holders) {
    if (h.txn_id != txn_id) blockers.insert(h.txn_id);
  }
  for (const Waiter* w : rs.waiters) {
    if (w->txn_id != txn_id) blockers.insert(w->txn_id);
  }
  for (uint64_t b : blockers) {
    std::unordered_set<uint64_t> visited;
    if (PathExistsLocked(b, txn_id, &visited)) {
      ++deadlocks_;
      return Status::Aborted("deadlock: txn " + std::to_string(txn_id) +
                             " waiting on " + resource);
    }
  }

  Waiter self{txn_id, mode};
  rs.waiters.push_back(&self);
  waits_for_[txn_id] = blockers;
  cv_.wait(*lk, [&self] { return self.granted || self.aborted; });
  waits_for_.erase(txn_id);
  if (self.aborted) {
    ++deadlocks_;
    return Status::Aborted("deadlock victim: txn " + std::to_string(txn_id));
  }
  // Granter added us to holders; record ownership (skip if upgrade).
  if (!already_holds) txn_locks_[txn_id].push_back(resource);
  return Status::OK();
}

Status LockManager::Acquire(uint64_t txn_id, const std::string& resource,
                            LockMode mode) {
  std::unique_lock<std::mutex> lk(mu_);
  for (const std::string& anc : Ancestors(resource)) {
    Status s = AcquireOneLocked(&lk, txn_id, anc, IntentionFor(mode),
                                /*blocking=*/true);
    if (!s.ok()) return s;
  }
  return AcquireOneLocked(&lk, txn_id, resource, mode, /*blocking=*/true);
}

Status LockManager::TryAcquire(uint64_t txn_id, const std::string& resource,
                               LockMode mode) {
  std::unique_lock<std::mutex> lk(mu_);
  // Probe the full path first so a failed leaf doesn't leave stray
  // intention locks behind.
  std::vector<std::pair<std::string, LockMode>> plan;
  for (const std::string& anc : Ancestors(resource)) {
    plan.emplace_back(anc, IntentionFor(mode));
  }
  plan.emplace_back(resource, mode);
  for (const auto& [res, m] : plan) {
    auto it = resources_.find(res);
    if (it == resources_.end()) continue;
    bool held = std::any_of(
        it->second.holders.begin(), it->second.holders.end(),
        [txn_id](const Holder& h) { return h.txn_id == txn_id; });
    LockMode probe = m;
    if (held) {
      for (const Holder& h : it->second.holders) {
        if (h.txn_id == txn_id) probe = Supremum(h.mode, m);
      }
    }
    if (!GrantableLocked(it->second, txn_id, probe)) {
      return Status::Busy("lock conflict on " + res);
    }
    if (!held && !it->second.waiters.empty()) {
      return Status::Busy("waiters queued on " + res);
    }
  }
  for (const auto& [res, m] : plan) {
    Status s = AcquireOneLocked(&lk, txn_id, res, m, /*blocking=*/false);
    if (!s.ok()) return s;  // unreachable given the probe above
  }
  return Status::OK();
}

void LockManager::Release(uint64_t txn_id, const std::string& resource) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = resources_.find(resource);
  if (it == resources_.end()) return;
  auto& holders = it->second.holders;
  holders.erase(std::remove_if(holders.begin(), holders.end(),
                               [txn_id](const Holder& h) {
                                 return h.txn_id == txn_id;
                               }),
                holders.end());
  auto tl = txn_locks_.find(txn_id);
  if (tl != txn_locks_.end()) {
    auto& v = tl->second;
    v.erase(std::remove(v.begin(), v.end(), resource), v.end());
  }
  GrantWaitersLocked(resource);
  if (it->second.holders.empty() && it->second.waiters.empty()) {
    resources_.erase(it);
  }
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto tl = txn_locks_.find(txn_id);
  if (tl == txn_locks_.end()) return;
  // Leaf-to-root: reverse acquisition order.
  std::vector<std::string> owned = tl->second;
  txn_locks_.erase(tl);
  for (auto rit = owned.rbegin(); rit != owned.rend(); ++rit) {
    auto it = resources_.find(*rit);
    if (it == resources_.end()) continue;
    auto& holders = it->second.holders;
    holders.erase(std::remove_if(holders.begin(), holders.end(),
                                 [txn_id](const Holder& h) {
                                   return h.txn_id == txn_id;
                                 }),
                  holders.end());
    GrantWaitersLocked(*rit);
    if (it->second.holders.empty() && it->second.waiters.empty()) {
      resources_.erase(it);
    }
  }
}

void LockManager::GrantWaitersLocked(const std::string& resource) {
  auto it = resources_.find(resource);
  if (it == resources_.end()) return;
  ResourceState& rs = it->second;
  bool granted_any = false;
  // FIFO scan: grant the longest compatible prefix of waiters.
  while (!rs.waiters.empty()) {
    Waiter* w = rs.waiters.front();
    bool held = std::any_of(
        rs.holders.begin(), rs.holders.end(),
        [w](const Holder& h) { return h.txn_id == w->txn_id; });
    LockMode target = w->mode;
    if (held) {
      for (const Holder& h : rs.holders) {
        if (h.txn_id == w->txn_id) target = Supremum(h.mode, w->mode);
      }
    }
    if (!GrantableLocked(rs, w->txn_id, target)) break;
    if (held) {
      for (Holder& h : rs.holders) {
        if (h.txn_id == w->txn_id) h.mode = target;
      }
    } else {
      rs.holders.push_back(Holder{w->txn_id, w->mode});
    }
    w->granted = true;
    rs.waiters.erase(rs.waiters.begin());
    granted_any = true;
  }
  if (granted_any) cv_.notify_all();
}

bool LockManager::PathExistsLocked(uint64_t from, uint64_t to,
                                   std::unordered_set<uint64_t>* visited) const {
  if (from == to) return true;
  if (!visited->insert(from).second) return false;
  auto it = waits_for_.find(from);
  if (it == waits_for_.end()) return false;
  for (uint64_t next : it->second) {
    if (PathExistsLocked(next, to, visited)) return true;
  }
  return false;
}

bool LockManager::HasConflicting(const std::string& resource, LockMode mode,
                                 uint64_t self_txn) const {
  std::lock_guard<std::mutex> lk(mu_);
  // 1) The resource itself.
  auto it = resources_.find(resource);
  if (it != resources_.end()) {
    for (const Holder& h : it->second.holders) {
      if (h.txn_id != self_txn && !LockModesCompatible(h.mode, mode)) {
        return true;
      }
    }
  }
  // 2) Covering (non-intention) locks on ancestors: an S/SIX/X on the column
  // covers every piece below it.
  for (const std::string& anc : Ancestors(resource)) {
    auto ait = resources_.find(anc);
    if (ait == resources_.end()) continue;
    for (const Holder& h : ait->second.holders) {
      if (h.txn_id == self_txn) continue;
      if (h.mode == LockMode::kIS || h.mode == LockMode::kIX) continue;
      if (!LockModesCompatible(h.mode, mode)) return true;
    }
  }
  // 3) Locks on descendants: X on a piece conflicts with any lock inside it.
  for (auto dit = resources_.upper_bound(resource);
       dit != resources_.end() && IsPrefixPath(resource, dit->first); ++dit) {
    for (const Holder& h : dit->second.holders) {
      if (h.txn_id == self_txn) continue;
      // The requested mode's coverage of the subtree behaves like the mode
      // itself at each descendant.
      if (!LockModesCompatible(h.mode, mode)) return true;
    }
  }
  return false;
}

bool LockManager::HeldMode(uint64_t txn_id, const std::string& resource,
                           LockMode* mode) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = resources_.find(resource);
  if (it == resources_.end()) return false;
  for (const Holder& h : it->second.holders) {
    if (h.txn_id == txn_id) {
      if (mode != nullptr) *mode = h.mode;
      return true;
    }
  }
  return false;
}

size_t LockManager::num_locked_resources() const {
  std::lock_guard<std::mutex> lk(mu_);
  return resources_.size();
}

}  // namespace adaptidx
