/// \file Micro-benchmarks for the hot kernels:
///  - crack-in-two / crack-in-three on both cracker-array layouts
///    (Figure 7's representation question), reference vs branchless/SIMD
///    tiers,
///  - the scan fallback kernels (count / sum / positional sum),
///  - latch acquire/release cost (the per-operation ingredient of the
///    Figure 13 overhead),
///  - AVL table-of-contents lookups.
///
/// Results are printed as a table and written to a machine-readable JSON
/// file (default BENCH_kernels.json, override with AI_BENCH_JSON) so the
/// kernel-tier speedups are recorded in the repo's perf trajectory:
///   {"kernel", "layout", "tier", "n", "melem_per_s", "speedup_vs_reference"}
///
/// Size sweep: 2^12 .. 2^24 (even exponents plus 2^22, the acceptance
/// point); trim with AI_BENCH_MAX_EXP for smoke runs.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cracking/avl_tree.h"
#include "cracking/cracker_array.h"
#include "cracking/kernel_tiers.h"
#include "cracking/reference_kernels.h"
#include "cracking/span_kernels.h"
#include "latch/wait_queue_latch.h"
#include "storage/column.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace adaptidx {
namespace {

struct BenchRecord {
  std::string kernel;
  std::string layout;
  std::string tier;
  size_t n;
  double melem_per_s;
  double speedup_vs_reference;  // 1.0 for the reference rows themselves
};

std::vector<BenchRecord> g_records;

size_t EnvSize(const char* name, size_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  return end == v ? def : static_cast<size_t>(parsed);
}

/// Times `fn` (already warmed) and returns the best-of-reps seconds.
template <typename Fn>
double BestOf(int reps, Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const int64_t t0 = NowNanos();
    fn();
    const int64_t t1 = NowNanos();
    best = std::min(best, static_cast<double>(t1 - t0) * 1e-9);
  }
  return best;
}

int RepsFor(size_t n) { return n >= (1u << 22) ? 5 : 9; }

void Record(const std::string& kernel, const std::string& layout,
            const std::string& tier, size_t n, double secs, double ref_secs) {
  const double melem = static_cast<double>(n) / secs / 1e6;
  const double speedup = ref_secs / secs;
  g_records.push_back(BenchRecord{kernel, layout, tier, n, melem, speedup});
  std::printf("  %-14s %-6s %-10s %9.3f ms  %8.1f Melem/s  %5.2fx\n",
              kernel.c_str(), layout.c_str(), tier.c_str(), secs * 1e3, melem,
              speedup);
}

// --------------------------------------------------------------- scans

void BenchScansSplit(const std::vector<Value>& values, size_t n) {
  const Value lo = static_cast<Value>(n / 4);
  const Value hi = static_cast<Value>(n / 2);
  const Value* v = values.data();
  volatile uint64_t sink = 0;
  const int reps = RepsFor(n);

  sink += reference::ScanCountSplit(v, 0, n, lo, hi);
  const double ref_cnt =
      BestOf(reps, [&] { sink += reference::ScanCountSplit(v, 0, n, lo, hi); });
  Record("ScanCount", "split", "reference", n, ref_cnt, ref_cnt);
  sink += detail::ScanCountBranchless(v, 0, n, lo, hi);
  Record("ScanCount", "split", "branchless", n,
         BestOf(reps,
                [&] { sink += detail::ScanCountBranchless(v, 0, n, lo, hi); }),
         ref_cnt);
#ifdef ADAPTIDX_X86_SIMD
  if (detail::HaveAvx2()) {
    sink += detail::ScanCountAvx2(v, 0, n, lo, hi);
    Record("ScanCount", "split", "avx2", n,
           BestOf(reps,
                  [&] { sink += detail::ScanCountAvx2(v, 0, n, lo, hi); }),
           ref_cnt);
  }
#endif

  sink += static_cast<uint64_t>(reference::ScanSumSplit(v, 0, n, lo, hi));
  const double ref_sum = BestOf(reps, [&] {
    sink += static_cast<uint64_t>(reference::ScanSumSplit(v, 0, n, lo, hi));
  });
  Record("ScanSum", "split", "reference", n, ref_sum, ref_sum);
  Record("ScanSum", "split", "branchless", n, BestOf(reps, [&] {
           sink += static_cast<uint64_t>(
               detail::ScanSumBranchless(v, 0, n, lo, hi));
         }),
         ref_sum);
#ifdef ADAPTIDX_X86_SIMD
  if (detail::HaveAvx2()) {
    Record("ScanSum", "split", "avx2", n, BestOf(reps, [&] {
             sink +=
                 static_cast<uint64_t>(detail::ScanSumAvx2(v, 0, n, lo, hi));
           }),
           ref_sum);
  }
#endif

  sink += static_cast<uint64_t>(reference::PositionalSumSplit(v, 0, n));
  const double ref_pos = BestOf(reps, [&] {
    sink += static_cast<uint64_t>(reference::PositionalSumSplit(v, 0, n));
  });
  Record("PositionalSum", "split", "reference", n, ref_pos, ref_pos);
  Record("PositionalSum", "split", "branchless", n, BestOf(reps, [&] {
           sink +=
               static_cast<uint64_t>(detail::PositionalSumUnrolled(v, 0, n));
         }),
         ref_pos);
#ifdef ADAPTIDX_X86_SIMD
  if (detail::HaveAvx2()) {
    Record("PositionalSum", "split", "avx2", n, BestOf(reps, [&] {
             sink += static_cast<uint64_t>(detail::PositionalSumAvx2(v, 0, n));
           }),
           ref_pos);
  }
#endif
}

void BenchScansPairs(const std::vector<CrackerEntry>& entries, size_t n) {
  const Value lo = static_cast<Value>(n / 4);
  const Value hi = static_cast<Value>(n / 2);
  const CrackerEntry* e = entries.data();
  volatile uint64_t sink = 0;
  const int reps = RepsFor(n);

  sink += reference::ScanCountPairs(e, 0, n, lo, hi);
  const double ref_cnt =
      BestOf(reps, [&] { sink += reference::ScanCountPairs(e, 0, n, lo, hi); });
  Record("ScanCount", "pairs", "reference", n, ref_cnt, ref_cnt);
  Record("ScanCount", "pairs", "branchless", n,
         BestOf(reps, [&] { sink += ScanCountEntries(e, 0, n, lo, hi); }),
         ref_cnt);

  sink += static_cast<uint64_t>(reference::ScanSumPairs(e, 0, n, lo, hi));
  const double ref_sum = BestOf(reps, [&] {
    sink += static_cast<uint64_t>(reference::ScanSumPairs(e, 0, n, lo, hi));
  });
  Record("ScanSum", "pairs", "reference", n, ref_sum, ref_sum);
  Record("ScanSum", "pairs", "branchless", n, BestOf(reps, [&] {
           sink += static_cast<uint64_t>(ScanSumEntries(e, 0, n, lo, hi));
         }),
         ref_sum);

  sink += static_cast<uint64_t>(reference::PositionalSumPairs(e, 0, n));
  const double ref_pos = BestOf(reps, [&] {
    sink += static_cast<uint64_t>(reference::PositionalSumPairs(e, 0, n));
  });
  Record("PositionalSum", "pairs", "reference", n, ref_pos, ref_pos);
  Record("PositionalSum", "pairs", "branchless", n, BestOf(reps, [&] {
           sink += static_cast<uint64_t>(PositionalSumEntries(e, 0, n));
         }),
         ref_pos);
}

// --------------------------------------------------------------- cracks
//
// Crack kernels mutate their input, so every timed run partitions a fresh
// copy of the pristine data; the copy happens outside the timed section.

struct SplitData {
  std::vector<Value> values;
  std::vector<RowId> row_ids;
};

template <typename Fn>
double BestOfCrackSplit(const SplitData& pristine, SplitData* work, int reps,
                        Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    work->values = pristine.values;
    work->row_ids = pristine.row_ids;
    const int64_t t0 = NowNanos();
    fn(work);
    const int64_t t1 = NowNanos();
    best = std::min(best, static_cast<double>(t1 - t0) * 1e-9);
  }
  return best;
}

void BenchCracksSplit(const SplitData& pristine, size_t n) {
  const Value pivot = static_cast<Value>(n / 2);
  const Value lo3 = static_cast<Value>(n / 3);
  const Value hi3 = static_cast<Value>(2 * n / 3);
  SplitData work;
  volatile uint64_t sink = 0;
  const int reps = n >= (1u << 22) ? 3 : 7;

  const double ref2 = BestOfCrackSplit(pristine, &work, reps, [&](SplitData* w) {
    sink += reference::CrackInTwoSplit(w->values.data(), w->row_ids.data(), 0,
                                       n, pivot);
  });
  Record("CrackInTwo", "split", "reference", n, ref2, ref2);
  Record("CrackInTwo", "split", "predicated", n,
         BestOfCrackSplit(pristine, &work, reps,
                          [&](SplitData* w) {
                            sink += detail::CrackInTwoPredSpan(
                                w->values.data(), w->row_ids.data(), 0, n,
                                pivot);
                          }),
         ref2);
#ifdef ADAPTIDX_X86_SIMD
  if (detail::HaveAvx512()) {
    Record("CrackInTwo", "split", "avx512", n,
           BestOfCrackSplit(pristine, &work, reps,
                            [&](SplitData* w) {
                              sink += detail::CrackInTwoAvx512(
                                  w->values.data(), w->row_ids.data(), 0, n,
                                  pivot);
                            }),
           ref2);
  }
#endif

  const double ref3 = BestOfCrackSplit(pristine, &work, reps, [&](SplitData* w) {
    sink += reference::CrackInThreeSplit(w->values.data(), w->row_ids.data(),
                                         0, n, lo3, hi3)
                .first;
  });
  Record("CrackInThree", "split", "reference", n, ref3, ref3);
  const KernelTier best_tier = BestKernelTier();
  Record("CrackInThree", "split", KernelTierName(best_tier), n,
         BestOfCrackSplit(pristine, &work, reps,
                          [&](SplitData* w) {
                            sink += CrackInThreeSpan(w->values.data(),
                                                     w->row_ids.data(), 0, n,
                                                     lo3, hi3, best_tier)
                                        .first;
                          }),
         ref3);
}

void BenchCracksPairs(const std::vector<CrackerEntry>& pristine, size_t n) {
  const Value pivot = static_cast<Value>(n / 2);
  const Value lo3 = static_cast<Value>(n / 3);
  const Value hi3 = static_cast<Value>(2 * n / 3);
  std::vector<CrackerEntry> work;
  volatile uint64_t sink = 0;
  const int reps = n >= (1u << 22) ? 3 : 7;

  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    work = pristine;
    const int64_t t0 = NowNanos();
    sink += reference::CrackInTwoPairs(work.data(), 0, n, pivot);
    best = std::min(best, static_cast<double>(NowNanos() - t0) * 1e-9);
  }
  const double ref2 = best;
  Record("CrackInTwo", "pairs", "reference", n, ref2, ref2);

  best = 1e100;
  for (int r = 0; r < reps; ++r) {
    work = pristine;
    const int64_t t0 = NowNanos();
    sink += CrackInTwoEntries(work.data(), 0, n, pivot);
    best = std::min(best, static_cast<double>(NowNanos() - t0) * 1e-9);
  }
  Record("CrackInTwo", "pairs", "predicated", n, best, ref2);

  best = 1e100;
  for (int r = 0; r < reps; ++r) {
    work = pristine;
    const int64_t t0 = NowNanos();
    sink += reference::CrackInThreePairs(work.data(), 0, n, lo3, hi3).first;
    best = std::min(best, static_cast<double>(NowNanos() - t0) * 1e-9);
  }
  const double ref3 = best;
  Record("CrackInThree", "pairs", "reference", n, ref3, ref3);

  best = 1e100;
  for (int r = 0; r < reps; ++r) {
    work = pristine;
    const int64_t t0 = NowNanos();
    sink += CrackInThreeEntries(work.data(), 0, n, lo3, hi3).first;
    best = std::min(best, static_cast<double>(NowNanos() - t0) * 1e-9);
  }
  Record("CrackInThree", "pairs", "predicated", n, best, ref3);
}

// ------------------------------------------------- latch / AVL micro

void BenchLatchAndAvl() {
  std::printf("\n== latch / AVL micro ==\n");
  constexpr int kIters = 2'000'000;
  {
    WaitQueueLatch latch;
    const int64_t t0 = NowNanos();
    for (int i = 0; i < kIters; ++i) {
      latch.WriteLock(0);
      latch.WriteUnlock();
    }
    std::printf("  uncontended write lock/unlock: %6.1f ns\n",
                static_cast<double>(NowNanos() - t0) / kIters);
  }
  {
    WaitQueueLatch latch;
    const int64_t t0 = NowNanos();
    for (int i = 0; i < kIters; ++i) {
      latch.ReadLock();
      latch.ReadUnlock();
    }
    std::printf("  uncontended read lock/unlock:  %6.1f ns\n",
                static_cast<double>(NowNanos() - t0) / kIters);
  }
  for (size_t cracks : {64u, 1024u, 16384u}) {
    AvlTree tree;
    Rng rng(21);
    while (tree.size() < cracks) {
      const Value v = rng.UniformRange(0, 1 << 26);
      tree.Insert(v, static_cast<Position>(v));
    }
    Value probe = 1;
    volatile uint64_t sink = 0;
    constexpr int kLookups = 2'000'000;
    const int64_t t0 = NowNanos();
    for (int i = 0; i < kLookups; ++i) {
      AvlTree::Entry e;
      sink += tree.Floor(probe, &e) ? e.pos : 0;
      probe = static_cast<Value>(
          (static_cast<uint64_t>(probe) * 2862933555777941757ULL +
           3037000493ULL) &
          ((1 << 26) - 1));
    }
    std::printf("  AVL floor lookup (%5zu cracks): %6.1f ns\n", cracks,
                static_cast<double>(NowNanos() - t0) / kLookups);
  }
}

// ----------------------------------------------------------- reporting

void WriteJson(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"best_tier\": \"%s\",\n",
               KernelTierName(BestKernelTier()));
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < g_records.size(); ++i) {
    const BenchRecord& r = g_records[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"layout\": \"%s\", \"tier\": "
                 "\"%s\", \"n\": %zu, \"melem_per_s\": %.1f, "
                 "\"speedup_vs_reference\": %.3f}%s\n",
                 r.kernel.c_str(), r.layout.c_str(), r.tier.c_str(), r.n,
                 r.melem_per_s, r.speedup_vs_reference,
                 i + 1 == g_records.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu records)\n", path.c_str(), g_records.size());
}

/// Best non-reference speedup for (kernel, layout) at size n.
double BestSpeedup(const std::string& kernel, const std::string& layout,
                   size_t n) {
  double best = 0.0;
  for (const BenchRecord& r : g_records) {
    if (r.kernel == kernel && r.layout == layout && r.n == n &&
        r.tier != "reference") {
      best = std::max(best, r.speedup_vs_reference);
    }
  }
  return best;
}

void PrintVerdicts(size_t acceptance_n) {
  struct Check {
    const char* kernel;
    const char* layout;
    double threshold;
  };
  const Check checks[] = {
      {"ScanCount", "split", 1.5},
      {"ScanSum", "split", 1.5},
      {"CrackInTwo", "split", 1.2},
  };
  std::printf("\n== acceptance @ n=%zu ==\n", acceptance_n);
  for (const Check& c : checks) {
    const double s = BestSpeedup(c.kernel, c.layout, acceptance_n);
    std::printf("  %-10s %-6s best %.2fx (need %.1fx): %s\n", c.kernel,
                c.layout, s, c.threshold, s >= c.threshold ? "PASS" : "FAIL");
  }
}

}  // namespace
}  // namespace adaptidx

int main() {
  using namespace adaptidx;

  std::printf("kernel micro-benchmarks; best supported tier: %s\n",
              KernelTierName(BestKernelTier()));

  const size_t max_exp = EnvSize("AI_BENCH_MAX_EXP", 24);
  std::vector<size_t> exps;
  for (size_t e = 12; e <= max_exp && e <= 24; e += 2) exps.push_back(e);
  // 2^22 is the acceptance point; make sure it is always in the sweep.
  if (max_exp >= 22 &&
      std::find(exps.begin(), exps.end(), 22u) == exps.end()) {
    exps.push_back(22);
    std::sort(exps.begin(), exps.end());
  }

  for (size_t e : exps) {
    const size_t n = static_cast<size_t>(1) << e;
    std::printf("\n== n = 2^%zu = %zu ==\n", e, n);
    Column col = Column::UniqueRandom("A", n, 3);

    SplitData split;
    split.values.assign(col.values().begin(), col.values().end());
    split.row_ids.resize(n);
    for (size_t i = 0; i < n; ++i) split.row_ids[i] = static_cast<RowId>(i);

    std::vector<CrackerEntry> pairs(n);
    for (size_t i = 0; i < n; ++i) {
      pairs[i] = CrackerEntry{static_cast<RowId>(i), col[i]};
    }

    BenchScansSplit(split.values, n);
    BenchScansPairs(pairs, n);
    BenchCracksSplit(split, n);
    BenchCracksPairs(pairs, n);
  }

  BenchLatchAndAvl();

  const char* json_path = std::getenv("AI_BENCH_JSON");
  WriteJson(json_path != nullptr && *json_path != '\0' ? json_path
                                                       : "BENCH_kernels.json");
  if (max_exp >= 22) PrintVerdicts(static_cast<size_t>(1) << 22);
  return 0;
}
