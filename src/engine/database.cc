#include "engine/database.h"

#include <algorithm>
#include <thread>

namespace adaptidx {

Status Database::CreateTable(const std::string& name,
                             std::vector<Column> columns) {
  auto table = std::make_unique<Table>(name);
  for (auto& col : columns) {
    Status s = table->AddColumn(std::move(col));
    if (!s.ok()) return s;
  }
  return catalog_.AddTable(std::move(table));
}

std::unique_ptr<Session> Database::OpenSession(SessionOptions opts) {
  // The pool is bound lazily inside Session::Submit, so opening a session
  // for synchronous use starts no worker threads.
  return std::unique_ptr<Session>(new Session(
      this, nullptr, nullptr, std::move(opts), Session::NextSessionId()));
}

ThreadPool* Database::pool() {
  std::call_once(pool_once_, [this] {
    const size_t n =
        std::max<size_t>(2, std::thread::hardware_concurrency());
    pool_ = std::make_unique<ThreadPool>(n);
  });
  return pool_.get();
}

std::string Database::IndexKey(const std::string& table,
                               const std::string& column,
                               const IndexConfig& config) {
  return table + "/" + column + "#" + IndexConfigKey(config);
}

std::shared_ptr<AdaptiveIndex> Database::GetOrCreateIndex(
    const std::string& table, const std::string& column,
    const IndexConfig& config) {
  Table* t = catalog_.GetTable(table);
  if (t == nullptr) return nullptr;
  const Column* col = t->GetColumn(column);
  if (col == nullptr) return nullptr;
  // Partitioned indexes fan query fragments out on the database's shared
  // pool (claim-based, so a pool-resident query fanning out to the same
  // pool cannot deadlock); the pool pointer is an execution resource and
  // deliberately not part of the catalog key.
  IndexConfig effective = config;
  if (effective.partitions > 1 && effective.pool == nullptr) {
    effective.pool = pool();
  }
  auto entry = catalog_.GetOrCreateIndexEntry(
      IndexKey(table, column, effective),
      [col, &effective]() -> std::shared_ptr<void> {
        return std::shared_ptr<void>(MakeIndex(col, effective).release(),
                                     [](void* p) {
                                       delete static_cast<AdaptiveIndex*>(p);
                                     });
      });
  return std::shared_ptr<AdaptiveIndex>(
      entry, static_cast<AdaptiveIndex*>(entry.get()));
}

bool Database::DropIndex(const std::string& table, const std::string& column,
                         const IndexConfig& config) {
  return catalog_.DropIndexEntry(IndexKey(table, column, config));
}

Status Database::OpenDurableIndex(const std::string& name, const Column& seed,
                                  const IndexConfig& config,
                                  const DurabilityOptions& opts,
                                  DurableIndex** out) {
  std::lock_guard<std::mutex> lk(durable_mu_);
  auto it = durable_.find(name);
  if (it != durable_.end()) {
    *out = it->second.get();
    return Status::OK();
  }
  std::unique_ptr<DurableIndex> di;
  Status s = DurableIndex::Open(seed, config, opts, &lock_manager_, name, &di);
  if (!s.ok()) return s;
  *out = di.get();
  durable_.emplace(name, std::move(di));
  return Status::OK();
}

}  // namespace adaptidx
