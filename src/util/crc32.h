#ifndef ADAPTIDX_UTIL_CRC32_H_
#define ADAPTIDX_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace adaptidx {

/// \brief CRC-32 (IEEE 802.3 polynomial, reflected) over `n` bytes,
/// continuing from `seed` (pass a previous result to checksum data in
/// chunks; 0 starts a fresh checksum).
///
/// Guards every WAL record and checkpoint image against torn writes and
/// bit rot: recovery accepts a record only when the stored checksum
/// matches the recomputed one. The byte-at-a-time table implementation is
/// plenty for the log path — record payloads are tens of bytes and the
/// checkpoint image is checksummed once per checkpoint, not per commit.
///
/// Thread-safety: pure function; the lookup table is built once under the
/// C++ magic-static guarantee.
inline uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0) {
  struct Table {
    uint32_t entry[256];
    Table() {
      for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
          c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        }
        entry[i] = c;
      }
    }
  };
  static const Table table;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table.entry[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace adaptidx

#endif  // ADAPTIDX_UTIL_CRC32_H_
